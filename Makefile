# Developer entry points. `make ci` is what a pipeline should run: static
# checks, a full build, the whole test suite, and the race detector over
# the concurrency-bearing packages (worker pool, in-process MPI runtime,
# pencil transposes).

GO ?= go

.PHONY: ci vet build test race bench bench-alloc

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short channeldns/internal/par channeldns/internal/mpi channeldns/internal/pencil

# Paper-table benchmarks with allocation reporting; see README
# "Performance notes" for how to read the allocs/op columns.
bench:
	$(GO) test -run xxx -bench 'Table|Figure|Ablation' -benchmem -benchtime 200ms .

bench-alloc:
	$(GO) test -run xxx -bench 'Table5|Table6|Table9' -benchmem -benchtime 200ms .
