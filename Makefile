# Developer entry points. `make ci` is what a pipeline should run: static
# checks, a full build, the whole test suite, and the race detector over
# the concurrency-bearing packages (worker pool, in-process MPI runtime,
# pencil transposes).

GO ?= go

.PHONY: ci vet build test race bench bench-alloc bench-smoke bench-diff ckpt-smoke tcp-smoke obs-smoke serve-smoke clean

ci: vet build test race bench-smoke bench-diff ckpt-smoke tcp-smoke obs-smoke serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short channeldns/internal/par channeldns/internal/mpi channeldns/internal/pencil channeldns/internal/telemetry channeldns/internal/trace channeldns/internal/ckpt channeldns/internal/server
	$(GO) test -race -run 'Overlap|Workload|Registry|Isotropic|Scalar' channeldns/internal/core

# Paper-table benchmarks with allocation reporting; see README
# "Performance notes" for how to read the allocs/op columns.
bench:
	$(GO) test -run xxx -bench 'Table|Figure|Ablation' -benchmem -benchtime 200ms .

bench-alloc:
	$(GO) test -run xxx -bench 'Table5|Table6|Table9' -benchmem -benchtime 200ms .

# Tiny end-to-end run of every bench tool, validating the emitted
# BENCH_*.json artifacts against the channeldns/bench/v1 schema (including
# each report's declarative schedule block, cross-checked against its own
# comm table). Keeps the telemetry report path from bit-rotting without
# burning CI minutes.
bench-smoke:
	rm -rf .bench-smoke && mkdir -p .bench-smoke
	$(GO) run ./cmd/bench-solver -n 128 -reps 1 -json .bench-smoke/BENCH_table1.json > /dev/null
	$(GO) run ./cmd/bench-node -json .bench-smoke/BENCH_table2_3_4.json > /dev/null
	$(GO) run ./cmd/bench-comm -overlap -json .bench-smoke/BENCH_table5.json > /dev/null
	$(GO) run ./cmd/bench-fft -overlap -json .bench-smoke/BENCH_table6.json > /dev/null
	$(GO) run ./cmd/bench-timestep -nx 16 -ny 17 -nz 16 -steps 2 -json .bench-smoke/BENCH_table9.json -trace .bench-smoke/table9.trace.json > /dev/null
	$(GO) run ./cmd/bench-timestep -overlap -nx 16 -ny 17 -nz 16 -steps 2 -json .bench-smoke/BENCH_table9_overlap.json -trace .bench-smoke/table9_overlap.trace.json > /dev/null
	$(GO) run ./cmd/dns -nx 16 -ny 17 -nz 16 -steps 2 -pa 2 -pb 2 -trace .bench-smoke/dns.trace.json -report .bench-smoke/BENCH_dns.json > /dev/null
	$(GO) run ./cmd/dns -overlap -nx 16 -ny 17 -nz 16 -steps 2 -pa 2 -pb 2 -trace .bench-smoke/dns_overlap.trace.json -report .bench-smoke/BENCH_dns_overlap.json > /dev/null
	$(GO) run ./cmd/dns -workload isotropic -nx 16 -ny 16 -nz 16 -steps 2 -pa 2 -pb 2 -report .bench-smoke/BENCH_dns_isotropic.json > /dev/null
	$(GO) run ./cmd/dns -workload scalar -nx 16 -ny 17 -nz 16 -steps 2 -pa 2 -pb 2 -report .bench-smoke/BENCH_dns_scalar.json > /dev/null
	$(GO) run ./cmd/bench-timestep -nx 16 -ny 17 -nz 16 -schedule > /dev/null
	$(GO) run ./cmd/bench-timestep -workload isotropic -nx 16 -ny 16 -nz 16 -schedule > /dev/null
	$(GO) run ./cmd/bench-timestep -workload scalar -nx 16 -ny 17 -nz 16 -schedule > /dev/null
	$(GO) run ./cmd/bench-comm -schedule > /dev/null
	$(GO) run ./cmd/bench-fft -schedule > /dev/null
	$(GO) run ./cmd/bench-validate .bench-smoke/BENCH_*.json
	$(GO) run ./cmd/bench-validate -trace .bench-smoke/*.trace.json

# Perf-regression gate: compare the fresh bench-smoke timestep report
# against the committed baseline. The table9 comparison gates for real:
# timing ratios are warned about inside bench-diff's tolerance logic, but
# structural mismatches (schema, missing phases/comm channels, a dropped
# schedule block) fail the build. table5 stays warn-only — its baseline's
# comm shape depends more on the measuring machine. The -model pass
# compares measured phase seconds against the machine model of the
# schedule block — advisory only, never gates.
bench-diff: bench-smoke
	$(GO) run ./cmd/bench-diff BENCH_table9.json .bench-smoke/BENCH_table9.json
	$(GO) run ./cmd/bench-diff -warn-only BENCH_table5.json .bench-smoke/BENCH_table5.json
	$(GO) run ./cmd/bench-diff -model .bench-smoke/BENCH_table9.json
	$(GO) run ./cmd/bench-diff -model .bench-smoke/BENCH_table9_overlap.json

# Crash-restart drill: checkpoint a tiny multi-rank run every 2 steps,
# flip a bit in the newest checkpoint's shard (manifest left intact — the
# silent-corruption case), and require the auto-resume to fall back to the
# previous good checkpoint and finish cleanly. The resume run's telemetry
# report must also pass the checkpoint-I/O accounting cross-check.
ckpt-smoke:
	rm -rf .ckpt-smoke && mkdir -p .ckpt-smoke
	$(GO) run ./cmd/dns -nx 16 -ny 17 -nz 16 -steps 4 -pa 2 -pb 2 -ckpt-dir .ckpt-smoke/run.ckpt -ckpt-every 2 > /dev/null
	$(GO) run ./cmd/ckpt corrupt -dir .ckpt-smoke/run.ckpt
	$(GO) run ./cmd/ckpt ls -dir .ckpt-smoke/run.ckpt
	$(GO) run ./cmd/dns -nx 16 -ny 17 -nz 16 -steps 2 -pa 1 -pb 2 -ckpt-dir .ckpt-smoke/run.ckpt -resume -report .ckpt-smoke/BENCH_resume.json > .ckpt-smoke/resume.out
	grep -q "resumed from step-0000000002" .ckpt-smoke/resume.out
	$(GO) run ./cmd/bench-validate .ckpt-smoke/BENCH_resume.json

# Distributed-transport drill: dnsrun spawns a four-process 2x2 run over
# localhost TCP, the script kills the world after its first committed
# checkpoint, a two-process world resumes it (elastic re-shard over the
# wire), and the resume's cross-process telemetry report must validate.
tcp-smoke:
	sh scripts/tcp_smoke.sh

# Distributed-observability drill: a four-process world with heartbeats
# and per-rank tracing; scrape the live /metrics + /status dashboard
# mid-run, then trace-merge the four rank timelines into one Perfetto
# file and validate its tracks and flow arrows.
obs-smoke:
	sh scripts/obs_smoke.sh

# DNS-as-a-service drill: start dnsserve, submit jobs over the HTTP API
# with stream watchers attached, SIGKILL the server after the first
# checkpoint, and require the restarted server to auto-resume the
# interrupted job and finish it; stored reports must bench-validate and a
# final SIGTERM must drain cleanly.
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	rm -rf .bench-smoke .ckpt-smoke .tcp-smoke .obs-smoke .serve-smoke
	rm -f *.trace.json
