#!/bin/sh
# obs-smoke: the distributed-observability CI drill. dnsrun launches a
# four-process 2x2 DNS with per-rank tracing, heartbeats and a live
# endpoint; while the run is in flight we scrape rank 0's /metrics and
# /status world dashboard off the wire. After the clean exit, trace-merge
# joins the four per-rank trace files into one aligned Perfetto timeline,
# which must self-validate, pass bench-validate -trace (per-track
# monotonicity plus flow referential integrity), and carry cross-rank
# flow arrows.
set -eu

GO=${GO:-go}
dir=.obs-smoke
rm -rf "$dir"
mkdir -p "$dir"
$GO build -o "$dir/dns" ./cmd/dns
$GO build -o "$dir/dnsrun" ./cmd/dnsrun
$GO build -o "$dir/trace-merge" ./cmd/trace-merge

# Enough steps that the run is still alive while we scrape mid-flight.
"$dir/dnsrun" -n 4 -bin "$dir/dns" -- -nx 16 -ny 17 -nz 16 -pa 2 -pb 2 \
    -steps 800 -listen 127.0.0.1:0 -heartbeat-every 2 \
    -trace "$dir/dns.trace.json" \
    > "$dir/run.out" 2>&1 &
pid=$!

# Rank 0 prints its live endpoint once it is listening.
addr=''
i=0
while [ -z "$addr" ]; do
    addr=$(sed -n 's|^\[rank 0\] telemetry endpoint: http://\([^/]*\)/.*|\1|p' "$dir/run.out")
    if [ -z "$addr" ]; then
        if ! kill -0 "$pid" 2> /dev/null; then
            echo "obs-smoke: dnsrun exited before announcing its endpoint" >&2
            cat "$dir/run.out" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "obs-smoke: no telemetry endpoint after 30s" >&2
            kill "$pid" 2> /dev/null || true
            cat "$dir/run.out" >&2
            exit 1
        fi
        sleep 0.1
    fi
done

# Scrape the world dashboard mid-run: the first heartbeat gather lands
# after a couple of steps, so retry until per-rank step counters appear.
# Match an actual series sample ("{rank=...}"), not the # HELP line the
# endpoint serves before any heartbeat has been heard.
i=0
until curl -sf "http://$addr/metrics" > "$dir/metrics.out" 2> /dev/null \
    && grep -q 'channeldns_rank_steps_total{' "$dir/metrics.out"; do
    if ! kill -0 "$pid" 2> /dev/null; then
        echo "obs-smoke: run ended before /metrics showed rank step counters" >&2
        cat "$dir/run.out" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "obs-smoke: /metrics never showed rank step counters" >&2
        kill "$pid" 2> /dev/null || true
        cat "$dir/metrics.out" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q 'channeldns_world_size 4' "$dir/metrics.out"
grep -q 'channeldns_rank_wire_frames_out_total' "$dir/metrics.out"

curl -sf "http://$addr/status" > "$dir/status.out"
grep -q '"world": 4' "$dir/status.out"
grep -q '"heard": true' "$dir/status.out"

wait "$pid"

# Merge the four per-rank timelines (rank 0 wrote dns.trace.json, the
# rest dns.trace.json.rankN) and validate the world file.
"$dir/trace-merge" -o "$dir/merged.trace.json" -summary \
    "$dir/dns.trace.json" \
    "$dir/dns.trace.json.rank1" \
    "$dir/dns.trace.json.rank2" \
    "$dir/dns.trace.json.rank3" \
    > "$dir/merge.out"
grep -q 'merged 4 ranks' "$dir/merge.out"
# At least one cross-rank flow arrow must have been linked.
if grep -q 'merged 4 ranks, [0-9]* events, 0 flow arrows' "$dir/merge.out"; then
    echo "obs-smoke: merged trace carries no flow arrows" >&2
    cat "$dir/merge.out" >&2
    exit 1
fi
grep -q '"ph": "s"' "$dir/merged.trace.json"
$GO run ./cmd/bench-validate -trace "$dir/merged.trace.json"
echo "obs-smoke: ok"
