#!/bin/sh
# serve-smoke: the DNS-as-a-service CI drill. Start dnsserve, submit a
# throttled channel job and an isotropic job over the HTTP API, attach two
# stream watchers, and SIGKILL the server the moment the channel job's
# first checkpoint manifest is published. A fresh server on the same run
# store must rediscover the interrupted job from its on-disk record,
# auto-resume it from the checkpoint, and run every job to completion; the
# stored BENCH reports must pass bench-validate, the stream watchers must
# have seen live status events, and a final SIGTERM must drain cleanly.
set -eu

GO=${GO:-go}
dir=.serve-smoke
rm -rf "$dir"
mkdir -p "$dir"
$GO build -o "$dir/dnsserve" ./cmd/dnsserve

data="$dir/runs"

start_server() {
    rm -f "$dir/addr"
    "$dir/dnsserve" -listen localhost:0 -data "$data" -addr-file "$dir/addr" \
        > "$dir/server$1.log" 2>&1 &
    pid=$!
    i=0
    until [ -s "$dir/addr" ]; do
        if ! kill -0 "$pid" 2> /dev/null; then
            echo "serve-smoke: server $1 died on startup" >&2
            cat "$dir/server$1.log" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: server $1 never wrote its address" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(cat "$dir/addr")
}

# job_id FILE: pull the job id out of a submit response.
job_id() {
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# wait_done ID: poll one job's status until it reports done.
wait_done() {
    i=0
    while true; do
        curl -s "http://$addr/v1/jobs/$1" > "$dir/status.json"
        if grep -q '"state": *"done"' "$dir/status.json"; then
            return 0
        fi
        if grep -q '"state": *"failed"\|"state": *"cancelled"' "$dir/status.json"; then
            echo "serve-smoke: job $1 went terminal without finishing:" >&2
            cat "$dir/status.json" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "serve-smoke: job $1 did not finish in 60s:" >&2
            cat "$dir/status.json" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_server 1

# A throttled channel job (the crash victim: slow enough that the SIGKILL
# lands mid-flight, checkpointing every 2 steps) and a quick isotropic job
# (exercises the registry's workload dispatch end to end).
curl -s -d '{"nx":16,"ny":24,"nz":16,"steps":30,"ckpt_every":2,"step_delay_ms":25}' \
    "http://$addr/v1/jobs" > "$dir/submit_channel.json"
curl -s -d '{"workload":"isotropic","nx":16,"ny":16,"nz":16,"re_tau":100,"steps":6,"ckpt_every":2}' \
    "http://$addr/v1/jobs" > "$dir/submit_iso.json"
chan=$(job_id "$dir/submit_channel.json")
iso=$(job_id "$dir/submit_iso.json")
if [ -z "$chan" ] || [ -z "$iso" ]; then
    echo "serve-smoke: submit failed" >&2
    cat "$dir/submit_channel.json" "$dir/submit_iso.json" >&2
    exit 1
fi

# Two live stream watchers on the channel job. They die with the SIGKILL;
# their captured output must show real status events.
curl -s -N "http://$addr/v1/jobs/$chan/stream" > "$dir/watch1.out" 2> /dev/null &
curl -s -N "http://$addr/v1/jobs/$chan/stream" > "$dir/watch2.out" 2> /dev/null &

# A checkpoint is published by its MANIFEST.json rename; the first one
# means the channel job is resumable. Then pull the plug, hard.
i=0
until ls "$data/$chan"/ckpt/step-*/MANIFEST.json > /dev/null 2>&1; do
    if ! kill -0 "$pid" 2> /dev/null; then
        echo "serve-smoke: server died before the first checkpoint" >&2
        cat "$dir/server1.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "serve-smoke: no checkpoint after 60s" >&2
        exit 1
    fi
    sleep 0.1
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

grep -q "^event: status" "$dir/watch1.out"
grep -q "^event: status" "$dir/watch2.out"

# Restart on the same store: recovery must re-enqueue the interrupted
# channel job (status.json still claims running/queued) and finish it.
start_server 2
wait_done "$chan"
wait_done "$iso"

# The recovered job really did resume from its checkpoint rather than
# restart from scratch.
curl -s "http://$addr/v1/jobs/$chan" > "$dir/final_channel.json"
grep -q '"resumes": *[1-9]' "$dir/final_channel.json"
grep -q '"step": *30' "$dir/final_channel.json"

# Stored artifacts: every completed run's BENCH report must validate.
$GO run ./cmd/bench-validate "$data/$chan/report.json" "$data/$iso/report.json"

# The run-store listing tool sees both runs as done.
$GO run ./cmd/ckpt ls -runs "$data" > "$dir/ls_runs.out"
grep -q "$chan  done" "$dir/ls_runs.out"
grep -q "$iso  done" "$dir/ls_runs.out"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: graceful shutdown exited non-zero" >&2
    cat "$dir/server2.log" >&2
    exit 1
fi
echo "serve-smoke: ok"
