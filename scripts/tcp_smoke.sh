#!/bin/sh
# tcp-smoke: the distributed-transport CI drill. dnsrun launches a
# four-process 2x2 DNS over real localhost sockets, the run checkpoints
# every few steps, we kill the whole world mid-flight once a committed
# checkpoint exists, then a two-process world resumes the latest good
# checkpoint (the elastic P=4 -> P=2 re-shard) and its telemetry report —
# merged across processes over the wire — must pass bench-validate.
set -eu

GO=${GO:-go}
dir=.tcp-smoke
rm -rf "$dir"
mkdir -p "$dir"
$GO build -o "$dir/dns" ./cmd/dns
$GO build -o "$dir/dnsrun" ./cmd/dnsrun

# Far more steps than we intend to run: the kill below is the exit path.
"$dir/dnsrun" -n 4 -bin "$dir/dns" -- -nx 16 -ny 17 -nz 16 -pa 2 -pb 2 \
    -steps 2000 -ckpt-dir "$dir/run.ckpt" -ckpt-every 2 \
    > "$dir/run.out" 2>&1 &
pid=$!

# A checkpoint is published by its MANIFEST.json rename, so the first
# manifest means a complete, resumable snapshot is on disk.
i=0
until ls "$dir"/run.ckpt/step-*/MANIFEST.json > /dev/null 2>&1; do
    if ! kill -0 "$pid" 2> /dev/null; then
        echo "tcp-smoke: dnsrun exited before its first checkpoint" >&2
        cat "$dir/run.out" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "tcp-smoke: no checkpoint after 60s" >&2
        kill "$pid" 2> /dev/null || true
        cat "$dir/run.out" >&2
        exit 1
    fi
    sleep 0.1
done

kill "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# Elastic resume at half the world size. ResumeLatest skips any
# checkpoint the kill left unpublished.
"$dir/dnsrun" -n 2 -bin "$dir/dns" -- -nx 16 -ny 17 -nz 16 -pa 1 -pb 2 \
    -steps 2 -ckpt-dir "$dir/run.ckpt" -resume \
    -report "$dir/BENCH_tcp_resume.json" \
    > "$dir/resume.out" 2>&1
grep -q "resumed from step-" "$dir/resume.out"
$GO run ./cmd/bench-validate "$dir/BENCH_tcp_resume.json"
echo "tcp-smoke: ok"
