module channeldns

go 1.22
