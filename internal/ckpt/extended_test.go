package ckpt

import (
	"bytes"
	"strings"
	"testing"

	"channeldns/internal/mpi"
)

// Tests of the extended shard layout (workload-specific extra fields) and
// the workload identity checks on the restore path.

// addExtras attaches nExtra complex fields and, on mean-carrying states,
// nExtraMean mean profiles, filled from the same sample generator with
// field ids continuing past the channel's four.
func addExtras(st *State, nExtra, nExtraMean int) {
	nkz := st.Kzhi - st.Kzlo
	for e := 0; e < nExtra; e++ {
		f := make([][]complex128, st.NW())
		for w := range f {
			ikx := st.Kxlo + w/nkz
			ikz := st.Kzlo + w%nkz
			line := make([]complex128, st.Ny)
			for iy := range line {
				line[iy] = sample(4+e, ikx, ikz, iy)
			}
			f[w] = line
		}
		st.Extra = append(st.Extra, f)
	}
	if st.HasMean {
		for e := 0; e < nExtraMean; e++ {
			p := make([]float64, st.Ny)
			for iy := range p {
				p[iy] = real(sample(9, 4+e, 0, iy))
			}
			st.ExtraMean = append(st.ExtraMean, p)
		}
	}
}

// emptyExtras attaches zero-filled extras of the same shape.
func emptyExtras(st *State, nExtra, nExtraMean int) {
	for e := 0; e < nExtra; e++ {
		f := make([][]complex128, st.NW())
		for w := range f {
			f[w] = make([]complex128, st.Ny)
		}
		st.Extra = append(st.Extra, f)
	}
	if st.HasMean {
		for e := 0; e < nExtraMean; e++ {
			st.ExtraMean = append(st.ExtraMean, make([]float64, st.Ny))
		}
	}
}

// checkExtras verifies every extra sample of st's window.
func checkExtras(t *testing.T, st *State) {
	t.Helper()
	nkz := st.Kzhi - st.Kzlo
	for e, field := range st.Extra {
		for w, line := range field {
			ikx := st.Kxlo + w/nkz
			ikz := st.Kzlo + w%nkz
			for iy, got := range line {
				if want := sample(4+e, ikx, ikz, iy); got != want {
					t.Fatalf("extra %d mode (%d,%d) iy=%d: got %v, want %v", e, ikx, ikz, iy, got, want)
				}
			}
		}
	}
	for e, p := range st.ExtraMean {
		for iy, got := range p {
			if want := real(sample(9, 4+e, 0, iy)); got != want {
				t.Fatalf("extra mean %d iy=%d: got %v, want %v", e, iy, got, want)
			}
		}
	}
}

func TestExtendedShardRoundTrip(t *testing.T) {
	src := makeState(5, 0, 8, 0, 6, true)
	addExtras(src, 2, 2)
	var buf bytes.Buffer
	n, _, err := EncodeShard(&buf, src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if want := shardSize(src.NW(), src.Ny, true, 2, 2); n != want {
		t.Fatalf("encoded %d bytes, want %d", n, want)
	}
	dst := emptyLike(src, 0, 8, 0, 6, true)
	emptyExtras(dst, 2, 2)
	if err := DecodeShard(&buf, dst); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkWindow(t, dst)
	checkExtras(t, dst)
	if dst.Step != src.Step || dst.Time != src.Time || dst.Dt != src.Dt {
		t.Fatalf("run position lost: step %d t %v dt %v", dst.Step, dst.Time, dst.Dt)
	}
}

func TestExtendedShardWithoutExtrasIsV1(t *testing.T) {
	// A state without extras must keep the original 80-byte header with
	// the extended flag clear, so pre-extension readers and writers agree
	// on channel checkpoints byte for byte.
	src := makeState(5, 0, 8, 0, 6, true)
	var buf bytes.Buffer
	if _, _, err := EncodeShard(&buf, src); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[76]&flagExtended != 0 {
		t.Fatal("extras-free shard carries the extended flag")
	}
	h, err := parseShard(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Extended || h.NExtra != 0 || h.NExtraMean != 0 || h.headerLen() != headerSize {
		t.Fatalf("extras-free shard parsed as extended: %+v", h)
	}
}

func TestExtendedReshardCopyOverlap(t *testing.T) {
	// Shards written on a 2-way split restore onto the full window with
	// extras intact (the re-sharded resume path).
	var shards [][]byte
	for i, w := range [][4]int{{0, 4, 0, 6}, {4, 8, 0, 6}} {
		src := makeState(5, w[0], w[1], w[2], w[3], i == 0)
		addExtras(src, 2, 1)
		var buf bytes.Buffer
		if _, _, err := EncodeShard(&buf, src); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, buf.Bytes())
	}
	dst := emptyLike(makeState(5, 0, 8, 0, 6, true), 0, 8, 0, 6, true)
	emptyExtras(dst, 2, 1)
	for _, sb := range shards {
		h, err := parseShard(sb)
		if err != nil {
			t.Fatal(err)
		}
		copyOverlap(sb, h, dst)
	}
	checkWindow(t, dst)
	checkExtras(t, dst)
}

func TestDecodeShardExtraCountMismatch(t *testing.T) {
	src := makeState(5, 0, 8, 0, 6, true)
	addExtras(src, 2, 2)
	var buf bytes.Buffer
	if _, _, err := EncodeShard(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := emptyLike(src, 0, 8, 0, 6, true)
	emptyExtras(dst, 1, 1)
	err := DecodeShard(&buf, dst)
	if err == nil || !strings.Contains(err.Error(), "extra") {
		t.Fatalf("extra-count mismatch accepted: %v", err)
	}
}

func TestStoreRejectsWorkloadMismatch(t *testing.T) {
	// A checkpoint written by one workload must not restore into another,
	// and the error must name both workloads — resuming a scalar run
	// against a channel store is a configuration error, not an empty
	// store.
	dir := t.TempDir()
	mpi.Run(1, func(c *mpi.Comm) {
		st := makeState(5, 0, 8, 0, 6, true)
		st.Workload = "channel"
		store := NewStore(dir)
		name, err := store.Write(c, st)
		if err != nil {
			t.Errorf("write: %v", err)
			return
		}

		other := emptyLike(st, 0, 8, 0, 6, true)
		other.Workload = "scalar"
		other.Fingerprint = st.Fingerprint + 1 // workload is part of the config hash
		emptyExtras(other, 2, 2)

		// Named restore: the workload line must lead the error.
		err = store.Restore(c, name, other)
		if err == nil {
			t.Error("cross-workload restore accepted")
			return
		}
		if !strings.Contains(err.Error(), `"channel"`) || !strings.Contains(err.Error(), `"scalar"`) {
			t.Errorf("restore error does not name both workloads: %v", err)
		}

		// Resume: a healthy checkpoint of the wrong workload is a loud
		// error, not ErrNoCheckpoint (which callers treat as start-fresh).
		_, err = store.Resume(c, other)
		if err == nil || err == ErrNoCheckpoint {
			t.Errorf("cross-workload resume: %v", err)
			return
		}
		if !strings.Contains(err.Error(), `"channel"`) || !strings.Contains(err.Error(), `"scalar"`) {
			t.Errorf("resume error does not name both workloads: %v", err)
		}

		// The same-workload state still resumes.
		back := emptyLike(st, 0, 8, 0, 6, true)
		back.Workload = "channel"
		if _, err := store.Resume(c, back); err != nil {
			t.Errorf("same-workload resume: %v", err)
		}
	})
}
