// Transport acceptance: the wire must be invisible to the physics. A
// trajectory computed over the TCP transport (real sockets, payloads
// serialized at the frame boundary) must be bit-identical to the same
// run on the channel transport, and the elastic restart story — a
// checkpoint written by P processes resumed by a different P — must hold
// when both runs cross the wire.
package ckpt_test

import (
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// TestTCPTrajectoryBitIdenticalToChan: P=4 over TCP vs P=4 over
// channels, exact == on every spline coefficient of every mode. The
// wire codec moves float64/complex128 as raw IEEE-754 bits, so any
// mismatch here means a message was reordered, truncated, or re-rounded
// in flight.
func TestTCPTrajectoryBitIdenticalToChan(t *testing.T) {
	const steps = 4
	run := func(runner func(int, func(*mpi.Comm))) *snapshot {
		sn := newSnapshot()
		runner(4, func(c *mpi.Comm) {
			s, err := core.New(c, eqCfg(2, 2))
			if err != nil {
				t.Error(err)
				return
			}
			initState(s)
			s.Advance(steps)
			sn.collect(s)
		})
		return sn
	}
	ref := run(mpi.Run)
	if t.Failed() {
		t.Fatal("channel-transport reference failed")
	}
	got := run(mpi.RunTCP)
	if t.Failed() {
		t.Fatal("tcp-transport run failed")
	}
	mustEqual(t, got, ref, "tcp vs chan")
}

// TestTCPElasticRestart: checkpoint at P=4 over TCP, resume at P=2 over
// TCP (the re-sharded read path plus the wire), and land bit-identical
// to an uninterrupted channel-transport P=4 run — the end-to-end elastic
// multi-process restart the distributed launcher relies on.
func TestTCPElasticRestart(t *testing.T) {
	ref := newSnapshot()
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(2, 2))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		s.Advance(6)
		ref.collect(s)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}

	dir := t.TempDir()
	mpi.RunTCP(4, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(2, 2))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		s.Advance(3)
		if _, err := s.WriteCheckpoint(s.NewCheckpointStore(dir, 0)); err != nil {
			t.Errorf("rank %d: write: %v", c.Rank(), err)
		}
	})
	if t.Failed() {
		t.Fatal("tcp checkpoint run failed")
	}

	got := newSnapshot()
	mpi.RunTCP(2, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(1, 2))
		if err != nil {
			t.Error(err)
			return
		}
		name, err := s.ResumeLatest(s.NewCheckpointStore(dir, 0))
		if err != nil {
			t.Errorf("rank %d: resume: %v", c.Rank(), err)
			return
		}
		if name != "step-0000000003" {
			t.Errorf("resumed from %q, want step-0000000003", name)
		}
		s.Advance(3)
		got.collect(s)
	})
	if t.Failed() {
		t.FailNow()
	}
	mustEqual(t, got, ref, "tcp elastic P=4 -> P=2")
}
