package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ManifestName is the file, inside a checkpoint directory, whose atomic
// appearance publishes the checkpoint. Discovery keys on it: a directory
// without (or with an unreadable) manifest is an unfinished or torn
// attempt and is never restored from.
const ManifestName = "MANIFEST.json"

// ShardInfo is one shard's entry in a manifest: where it is, which
// wavenumber window it covers, and the integrity data (size + CRC32C of
// the whole file) Verify checks before a checkpoint is trusted.
type ShardInfo struct {
	File    string `json:"file"`
	Kxlo    int    `json:"kxlo"`
	Kxhi    int    `json:"kxhi"`
	Kzlo    int    `json:"kzlo"`
	Kzhi    int    `json:"kzhi"`
	HasMean bool   `json:"has_mean,omitempty"`
	Bytes   int64  `json:"bytes"`
	CRC32C  string `json:"crc32c"`
}

// Manifest describes one published checkpoint: the configuration identity
// it belongs to, the run position it froze, and every shard with its
// checksum. It is written by rank 0 only after all shards have landed.
type Manifest struct {
	Format      int         `json:"format"`
	Fingerprint string      `json:"fingerprint"` // %016x of State.Fingerprint
	Workload    string      `json:"workload,omitempty"`
	Nx          int         `json:"nx"`
	Ny          int         `json:"ny"`
	Nz          int         `json:"nz"`
	NKx         int         `json:"nkx"`
	Step        int64       `json:"step"`
	Time        float64     `json:"time"`
	Dt          float64     `json:"dt"`
	Ranks       int         `json:"ranks"`
	Shards      []ShardInfo `json:"shards"`
}

// fingerprintString formats a fingerprint the way manifests store it.
func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// Validate checks the manifest's internal shape: format generation, sane
// grid, one shard per rank, windows inside the grid that tile it exactly
// (every (kx, kz) mode covered once), and at most one mean-carrying shard
// (workloads without mean profiles, like isotropic turbulence, have none).
func (m *Manifest) Validate() error {
	if m.Format != FormatVersion {
		return fmt.Errorf("ckpt: manifest format %d, reader supports %d", m.Format, FormatVersion)
	}
	if m.Nx <= 0 || m.Ny <= 0 || m.Nz <= 0 || m.NKx <= 0 {
		return fmt.Errorf("ckpt: manifest carries degenerate grid %dx%dx%d", m.Nx, m.Ny, m.Nz)
	}
	if m.Ranks != len(m.Shards) || m.Ranks == 0 {
		return fmt.Errorf("ckpt: manifest lists %d shards for %d ranks", len(m.Shards), m.Ranks)
	}
	covered := 0
	meanShards := 0
	type window struct{ kxlo, kxhi, kzlo, kzhi int }
	seen := map[window]bool{}
	for i, sh := range m.Shards {
		if sh.File == "" || filepath.Base(sh.File) != sh.File {
			return fmt.Errorf("ckpt: shard %d: bad file name %q (must be dir-local)", i, sh.File)
		}
		if sh.Kxlo < 0 || sh.Kxhi > m.NKx || sh.Kxlo > sh.Kxhi ||
			sh.Kzlo < 0 || sh.Kzhi > m.Nz || sh.Kzlo > sh.Kzhi {
			return fmt.Errorf("ckpt: shard %d: window kx[%d,%d) kz[%d,%d) outside grid",
				i, sh.Kxlo, sh.Kxhi, sh.Kzlo, sh.Kzhi)
		}
		w := window{sh.Kxlo, sh.Kxhi, sh.Kzlo, sh.Kzhi}
		if seen[w] && w.kxlo != w.kxhi && w.kzlo != w.kzhi {
			return fmt.Errorf("ckpt: shard %d: duplicate window kx[%d,%d) kz[%d,%d)",
				i, sh.Kxlo, sh.Kxhi, sh.Kzlo, sh.Kzhi)
		}
		seen[w] = true
		covered += (sh.Kxhi - sh.Kxlo) * (sh.Kzhi - sh.Kzlo)
		if sh.HasMean {
			meanShards++
		}
	}
	if covered != m.NKx*m.Nz {
		return fmt.Errorf("ckpt: shards cover %d of %d modes", covered, m.NKx*m.Nz)
	}
	if meanShards > 1 {
		return fmt.Errorf("ckpt: %d shards carry the mean profiles, want at most 1", meanShards)
	}
	return nil
}

// readManifest loads and validates the manifest of one checkpoint
// directory.
func readManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("ckpt: parsing %s: %w", ManifestName, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Deterministic shard order for iteration regardless of gather order.
	sort.Slice(m.Shards, func(i, j int) bool {
		a, b := m.Shards[i], m.Shards[j]
		if a.Kxlo != b.Kxlo {
			return a.Kxlo < b.Kxlo
		}
		return a.Kzlo < b.Kzlo
	})
	return &m, nil
}

// encodeManifest renders the canonical (deterministic, indented) JSON.
func encodeManifest(m *Manifest) ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
