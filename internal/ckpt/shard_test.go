package ckpt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fill gives every (field, ikx, ikz, iy) sample a unique deterministic
// value so misplaced lines are detected, not just missing ones.
func sample(field, ikx, ikz, iy int) complex128 {
	return complex(float64(1+field)*1000+float64(ikx)*100+float64(ikz)*10+float64(iy),
		-float64(field)-float64(ikx*ikz*iy)/7)
}

// makeState builds a State for the window with every buffer filled from
// sample. hasMean attaches mean profiles filled from sample(9, ...).
func makeState(ny int, kxlo, kxhi, kzlo, kzhi int, hasMean bool) *State {
	st := &State{
		Nx: 16, Ny: ny, Nz: 6, NKx: 8,
		Kxlo: kxlo, Kxhi: kxhi, Kzlo: kzlo, Kzhi: kzhi,
		Step: 40, Time: 1.25, Dt: 0.003,
		Fingerprint: 0xfeedbeefcafe0001,
		HasMean:     hasMean,
	}
	nkz := kzhi - kzlo
	alloc := func(field int) [][]complex128 {
		f := make([][]complex128, st.NW())
		for w := range f {
			ikx := kxlo + w/nkz
			ikz := kzlo + w%nkz
			line := make([]complex128, ny)
			for iy := range line {
				line[iy] = sample(field, ikx, ikz, iy)
			}
			f[w] = line
		}
		return f
	}
	st.CV, st.CW, st.HgPrev, st.HvPrev = alloc(0), alloc(1), alloc(2), alloc(3)
	if hasMean {
		profile := func(which int) []float64 {
			p := make([]float64, ny)
			for iy := range p {
				p[iy] = real(sample(9, which, 0, iy))
			}
			return p
		}
		st.MeanU, st.MeanW = profile(0), profile(1)
		st.MeanHxPrev, st.MeanHzPrev = profile(2), profile(3)
	}
	return st
}

// emptyLike returns a zero-filled State with the same shape and identity.
func emptyLike(src *State, kxlo, kxhi, kzlo, kzhi int, hasMean bool) *State {
	st := &State{
		Nx: src.Nx, Ny: src.Ny, Nz: src.Nz, NKx: src.NKx,
		Kxlo: kxlo, Kxhi: kxhi, Kzlo: kzlo, Kzhi: kzhi,
		Fingerprint: src.Fingerprint,
		HasMean:     hasMean,
	}
	alloc := func() [][]complex128 {
		f := make([][]complex128, st.NW())
		for w := range f {
			f[w] = make([]complex128, st.Ny)
		}
		return f
	}
	st.CV, st.CW, st.HgPrev, st.HvPrev = alloc(), alloc(), alloc(), alloc()
	if hasMean {
		st.MeanU = make([]float64, st.Ny)
		st.MeanW = make([]float64, st.Ny)
		st.MeanHxPrev = make([]float64, st.Ny)
		st.MeanHzPrev = make([]float64, st.Ny)
	}
	return st
}

// checkWindow verifies every sample of st's window matches the generator.
func checkWindow(t *testing.T, st *State) {
	t.Helper()
	nkz := st.Kzhi - st.Kzlo
	for f, field := range [][][]complex128{st.CV, st.CW, st.HgPrev, st.HvPrev} {
		for w, line := range field {
			ikx := st.Kxlo + w/nkz
			ikz := st.Kzlo + w%nkz
			for iy, got := range line {
				if want := sample(f, ikx, ikz, iy); got != want {
					t.Fatalf("field %d mode (%d,%d) iy=%d: got %v, want %v", f, ikx, ikz, iy, got, want)
				}
			}
		}
	}
	if st.HasMean {
		for which, p := range [][]float64{st.MeanU, st.MeanW, st.MeanHxPrev, st.MeanHzPrev} {
			for iy, got := range p {
				if want := real(sample(9, which, 0, iy)); got != want {
					t.Fatalf("mean %d iy=%d: got %v, want %v", which, iy, got, want)
				}
			}
		}
	}
}

func TestShardRoundTrip(t *testing.T) {
	src := makeState(5, 0, 8, 0, 6, true)
	var buf bytes.Buffer
	n, crc, err := EncodeShard(&buf, src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if want := shardSize(src.NW(), src.Ny, true, 0, 0); n != want {
		t.Fatalf("encoded %d bytes, want %d", n, want)
	}
	if crc == 0 {
		t.Fatal("CRC is zero (suspicious)")
	}
	dst := emptyLike(src, 0, 8, 0, 6, true)
	if err := DecodeShard(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkWindow(t, dst)
	if dst.Step != src.Step || dst.Time != src.Time || dst.Dt != src.Dt {
		t.Fatalf("run position not restored: got step=%d t=%v dt=%v", dst.Step, dst.Time, dst.Dt)
	}
}

func TestShardEncodingIsDeterministic(t *testing.T) {
	src := makeState(5, 2, 6, 1, 4, false)
	var a, b bytes.Buffer
	if _, _, err := EncodeShard(&a, src); err != nil {
		t.Fatal(err)
	}
	if _, _, err := EncodeShard(&b, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestShardDetectsCorruption(t *testing.T) {
	src := makeState(5, 0, 4, 0, 6, true)
	var buf bytes.Buffer
	if _, _, err := EncodeShard(&buf, src); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		errWant string
	}{
		{"bit flip in payload", func(b []byte) []byte {
			b[len(b)/2] ^= 1
			return b
		}, "CRC32C mismatch"},
		{"bit flip in header", func(b []byte) []byte {
			b[61] ^= 0x80 // time field: header stays parseable, CRC convicts
			return b
		}, "CRC32C mismatch"},
		{"truncated mid-payload", func(b []byte) []byte {
			return b[:len(b)-100]
		}, "bytes, header implies"},
		{"truncated inside header", func(b []byte) []byte {
			return b[:40]
		}, "truncated"},
		{"wrong magic", func(b []byte) []byte {
			copy(b, "NOTCKPT!")
			return b
		}, "bad shard magic"},
		{"future format version", func(b []byte) []byte {
			b[8] = 0xff
			return b
		}, "format version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, err := parseShard(b)
			if err == nil {
				t.Fatal("corrupt shard parsed without error")
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
}

func TestDecodeShardRejectsMismatch(t *testing.T) {
	src := makeState(5, 0, 4, 0, 6, false)
	var buf bytes.Buffer
	if _, _, err := EncodeShard(&buf, src); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*State)
	}{
		{"fingerprint", func(st *State) { st.Fingerprint++ }},
		{"grid", func(st *State) { st.Nx = 32; st.NKx = 16 }},
		{"mean presence", func(st *State) {
			st.HasMean = true
			st.MeanU = make([]float64, st.Ny)
			st.MeanW = make([]float64, st.Ny)
			st.MeanHxPrev = make([]float64, st.Ny)
			st.MeanHzPrev = make([]float64, st.Ny)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := emptyLike(src, 0, 4, 0, 6, false)
			tc.mutate(dst)
			if err := DecodeShard(bytes.NewReader(buf.Bytes()), dst); err == nil {
				t.Fatal("mismatched decode succeeded")
			}
		})
	}
	t.Run("window", func(t *testing.T) {
		dst := emptyLike(src, 0, 2, 0, 6, false)
		if err := DecodeShard(bytes.NewReader(buf.Bytes()), dst); err == nil {
			t.Fatal("window-mismatched decode succeeded (DecodeShard must be exact; re-shard via Store)")
		}
	})
}

// TestCopyOverlapReShard splits a window into shards along one axis and
// reassembles them into windows split along the other axis — the core of
// the re-sharded resume path, without the store machinery.
func TestCopyOverlapReShard(t *testing.T) {
	// Source: 2 shards split in kx. Destination: 3 windows split in kz.
	shards := [][]byte{}
	for _, w := range [][4]int{{0, 4, 0, 6}, {4, 8, 0, 6}} {
		src := makeState(5, w[0], w[1], w[2], w[3], w[0] == 0)
		var buf bytes.Buffer
		if _, _, err := EncodeShard(&buf, src); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, buf.Bytes())
	}
	full := makeState(5, 0, 8, 0, 6, true)
	for i, w := range [][4]int{{0, 8, 0, 2}, {0, 8, 2, 4}, {0, 8, 4, 6}} {
		dst := emptyLike(full, w[0], w[1], w[2], w[3], i == 0)
		for _, sb := range shards {
			h, err := parseShard(sb)
			if err != nil {
				t.Fatal(err)
			}
			copyOverlap(sb, h, dst)
		}
		checkWindow(t, dst)
	}
}

func TestManifestValidate(t *testing.T) {
	mk := func() *Manifest {
		return &Manifest{
			Format: FormatVersion, Fingerprint: fingerprintString(1),
			Nx: 16, Ny: 5, Nz: 6, NKx: 8, Step: 10, Ranks: 2,
			Shards: []ShardInfo{
				{File: "shard-0000.ckpt", Kxlo: 0, Kxhi: 4, Kzlo: 0, Kzhi: 6, HasMean: true, Bytes: 1, CRC32C: "0"},
				{File: "shard-0001.ckpt", Kxlo: 4, Kxhi: 8, Kzlo: 0, Kzhi: 6, Bytes: 1, CRC32C: "0"},
			},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	// Zero mean shards is legal: workloads without mean profiles
	// (isotropic turbulence) write none.
	noMean := mk()
	noMean.Shards[0].HasMean = false
	if err := noMean.Validate(); err != nil {
		t.Fatalf("mean-free manifest rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"future format", func(m *Manifest) { m.Format = 99 }},
		{"rank count mismatch", func(m *Manifest) { m.Ranks = 3 }},
		{"gap in coverage", func(m *Manifest) { m.Shards[1].Kxlo = 5 }},
		{"overlapping windows", func(m *Manifest) { m.Shards[1].Kxlo = 3 }},
		{"two mean shards", func(m *Manifest) { m.Shards[1].HasMean = true }},
		{"escaping file name", func(m *Manifest) { m.Shards[0].File = "../evil" }},
		{"window outside grid", func(m *Manifest) { m.Shards[1].Kxhi = 9 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mk()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("invalid manifest accepted")
			}
		})
	}
}

func TestShardSizeFormula(t *testing.T) {
	// Keep the documented layout honest: header + fields + mean + CRC,
	// with the 88-byte extended header only when extras are present.
	for _, tc := range []struct {
		nw, ny             int
		hasMean            bool
		nExtra, nExtraMean int
		want               int64
	}{
		{1, 1, false, 0, 0, 80 + 4*16 + 4},
		{1, 1, true, 0, 0, 80 + 4*16 + 4*8 + 4},
		{6, 5, true, 0, 0, 80 + 4*6*5*16 + 4*5*8 + 4},
		{1, 1, false, 2, 0, 88 + 6*16 + 4},
		{6, 5, true, 2, 2, 88 + 6*6*5*16 + 6*5*8 + 4},
	} {
		if got := shardSize(tc.nw, tc.ny, tc.hasMean, tc.nExtra, tc.nExtraMean); got != tc.want {
			t.Errorf("shardSize(%d,%d,%v,%d,%d) = %d, want %d",
				tc.nw, tc.ny, tc.hasMean, tc.nExtra, tc.nExtraMean, got, tc.want)
		}
	}
}

func TestCheckpointNameRoundTrip(t *testing.T) {
	for _, step := range []int64{0, 7, 123456789} {
		name := checkpointName(step)
		got, ok := stepOfName(name)
		if !ok || got != step {
			t.Errorf("stepOfName(%q) = %d,%v, want %d,true", name, got, ok, step)
		}
	}
	for _, bad := range []string{"foo", "step-", "step-xyz", "ckpt-12"} {
		if _, ok := stepOfName(bad); ok {
			t.Errorf("stepOfName(%q) accepted", bad)
		}
	}
	if name := checkpointName(40); name != fmt.Sprintf("step-%010d", 40) {
		t.Errorf("unexpected name %q", name)
	}
}
