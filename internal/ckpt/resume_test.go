// Kill-and-resume equivalence: a run interrupted by a checkpoint must
// continue bit-identically — on the same rank count, on a different rank
// count (the re-sharded resume path), and after falling back past a
// corrupted checkpoint. These are the subsystem's acceptance tests, driven
// through the real solver rather than synthetic states.
package ckpt_test

import (
	"sync"
	"testing"

	"channeldns/internal/ckpt"
	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

func eqCfg(pa, pb int) core.Config {
	return core.Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1, PA: pa, PB: pb}
}

// snapshot is a decomposition-independent image of the global solver
// state, assembled concurrently by all ranks (each writes its own modes).
type snapshot struct {
	mu     sync.Mutex
	cv, cw map[[2]int][]complex128
	meanU  []float64
	step   int
	time   float64
	dt     float64
}

func newSnapshot() *snapshot {
	return &snapshot{cv: map[[2]int][]complex128{}, cw: map[[2]int][]complex128{}}
}

func (sn *snapshot) collect(s *core.Solver) {
	kxlo, kxhi := s.D.KxRange()
	kzlo, kzhi := s.D.KzRangeY()
	sn.mu.Lock()
	defer sn.mu.Unlock()
	for ikx := kxlo; ikx < kxhi; ikx++ {
		for ikz := kzlo; ikz < kzhi; ikz++ {
			k := [2]int{ikx, ikz}
			sn.cv[k] = append([]complex128(nil), s.VCoef(ikx, ikz)...)
			sn.cw[k] = append([]complex128(nil), s.OmegaCoef(ikx, ikz)...)
		}
	}
	if s.OwnsMean() {
		sn.meanU = append([]float64(nil), s.MeanUCoef()...)
		sn.step, sn.time, sn.dt = s.Step, s.Time, s.Cfg.Dt
	}
}

// mustEqual demands bit-identical snapshots: every spline coefficient of
// every mode, the mean profile, and the run position.
func mustEqual(t *testing.T, got, want *snapshot, label string) {
	t.Helper()
	if got.step != want.step || got.time != want.time || got.dt != want.dt {
		t.Fatalf("%s: run position step=%d t=%v dt=%v, want step=%d t=%v dt=%v",
			label, got.step, got.time, got.dt, want.step, want.time, want.dt)
	}
	if len(got.cv) != len(want.cv) {
		t.Fatalf("%s: %d modes, want %d", label, len(got.cv), len(want.cv))
	}
	for k, w := range want.cv {
		g, ok := got.cv[k]
		if !ok {
			t.Fatalf("%s: mode (%d,%d) missing", label, k[0], k[1])
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: cv(%d,%d)[%d] = %v, want %v (not bit-identical)",
					label, k[0], k[1], i, g[i], w[i])
			}
		}
		for i, wv := range want.cw[k] {
			if got.cw[k][i] != wv {
				t.Fatalf("%s: cw(%d,%d)[%d] = %v, want %v (not bit-identical)",
					label, k[0], k[1], i, got.cw[k][i], wv)
			}
		}
	}
	for i := range want.meanU {
		if got.meanU[i] != want.meanU[i] {
			t.Fatalf("%s: meanU[%d] = %v, want %v (not bit-identical)",
				label, i, got.meanU[i], want.meanU[i])
		}
	}
}

func initState(s *core.Solver) {
	s.SetLaminar()
	s.Perturb(0.3, 2, 2, 13)
}

// TestResumeBitIdenticalAcrossRankCounts: a P=4 run checkpoints mid-flight
// and the remaining steps are replayed from the checkpoint on 1, 2, 4 and
// 8 ranks; every trajectory must be bit-identical to the uninterrupted
// P=4 reference.
func TestResumeBitIdenticalAcrossRankCounts(t *testing.T) {
	ref := newSnapshot()
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(2, 2))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		s.Advance(6)
		ref.collect(s)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}

	dir := t.TempDir()
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(2, 2))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		s.Advance(3)
		if _, err := s.WriteCheckpoint(s.NewCheckpointStore(dir, 0)); err != nil {
			t.Errorf("rank %d: write: %v", c.Rank(), err)
		}
		// The run "dies" here: the solver is discarded mid-flight.
	})
	if t.Failed() {
		t.Fatal("interrupted run failed")
	}

	for _, pg := range []struct{ pa, pb int }{{1, 1}, {1, 2}, {2, 2}, {2, 4}} {
		p := pg.pa * pg.pb
		got := newSnapshot()
		mpi.Run(p, func(c *mpi.Comm) {
			s, err := core.New(c, eqCfg(pg.pa, pg.pb))
			if err != nil {
				t.Error(err)
				return
			}
			name, err := s.ResumeLatest(s.NewCheckpointStore(dir, 0))
			if err != nil {
				t.Errorf("P=%d rank %d: resume: %v", p, c.Rank(), err)
				return
			}
			if name != "step-0000000003" {
				t.Errorf("P=%d: resumed from %q, want step-0000000003", p, name)
			}
			if s.Step != 3 {
				t.Errorf("P=%d: resumed at step %d, want 3", p, s.Step)
			}
			s.Advance(3)
			got.collect(s)
		})
		if t.Failed() {
			t.FailNow()
		}
		mustEqual(t, got, ref, string(rune('0'+p))+" ranks")
	}
}

// TestResumeFallbackAfterCorruption: with two published checkpoints and a
// bit flip in the newest one's shard, auto-resume must fall back to the
// older checkpoint and still reproduce the uninterrupted trajectory
// bit-identically — just replaying more steps.
func TestResumeFallbackAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	ref := newSnapshot()
	var newest string
	mpi.Run(2, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(1, 2))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		store := s.NewCheckpointStore(dir, 0)
		s.Advance(2)
		if _, err := s.WriteCheckpoint(store); err != nil {
			t.Errorf("rank %d: write@2: %v", c.Rank(), err)
			return
		}
		s.Advance(2)
		name, err := s.WriteCheckpoint(store)
		if err != nil {
			t.Errorf("rank %d: write@4: %v", c.Rank(), err)
			return
		}
		if c.Rank() == 0 {
			newest = name
		}
		s.Advance(2)
		ref.collect(s)
	})
	if t.Failed() {
		t.FailNow()
	}

	// Silent bit rot lands in the newest checkpoint's second shard.
	store := ckpt.NewStore(dir)
	if err := store.CorruptShard(newest, 1, -1); err != nil {
		t.Fatal(err)
	}

	got := newSnapshot()
	mpi.Run(2, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(1, 2))
		if err != nil {
			t.Error(err)
			return
		}
		name, err := s.ResumeLatest(s.NewCheckpointStore(dir, 0))
		if err != nil {
			t.Errorf("rank %d: resume: %v", c.Rank(), err)
			return
		}
		if name != "step-0000000002" {
			t.Errorf("resumed from %q, want fallback to step-0000000002", name)
		}
		s.Advance(4)
		got.collect(s)
	})
	if t.Failed() {
		t.FailNow()
	}
	mustEqual(t, got, ref, "fallback resume")
}

// TestResumeRestoresAdaptiveDt: AdvanceAdaptive retunes Dt mid-run; the
// checkpoint must carry the adjusted value so the resumed trajectory uses
// the same time step (a prerequisite for bit-identical continuation).
func TestResumeRestoresAdaptiveDt(t *testing.T) {
	dir := t.TempDir()
	var wantDt float64
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(1, 1))
		if err != nil {
			t.Error(err)
			return
		}
		initState(s)
		s.AdvanceAdaptive(4, 0.5, 1)
		wantDt = s.Cfg.Dt
		if _, err := s.WriteCheckpoint(s.NewCheckpointStore(dir, 0)); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	if wantDt == 1e-3 {
		t.Log("adaptive advance left Dt unchanged; test still checks the restore path")
	}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := core.New(c, eqCfg(1, 1))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.ResumeLatest(s.NewCheckpointStore(dir, 0)); err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		if s.Cfg.Dt != wantDt {
			t.Errorf("resumed Dt = %v, want the adaptively adjusted %v", s.Cfg.Dt, wantDt)
		}
	})
}
