package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// WriteOption injects a failure into one collective Store.Write. The
// options model the three corruption classes the recovery tests (and the
// `cmd/ckpt corrupt` drill tool) exercise: torn shard writes, silent bit
// rot, and manifest loss. Options compose; a zero-option Write is the
// production path.
type WriteOption func(*writePlan)

// writePlan is the resolved injection schedule for one Write.
type writePlan struct {
	tornRank, tornKeep int   // truncate published shard to tornKeep bytes
	flipRank           int   // flip one bit of the published shard...
	flipByte           int64 // ...at this byte offset
	crashRank          int   // abort this rank's write mid-shard...
	crashKeep          int   // ...after crashKeep bytes of the temp file
	dropManifest       bool  // shards land, manifest never written
}

func newWritePlan(opts []WriteOption) *writePlan {
	p := &writePlan{tornRank: -1, flipRank: -1, crashRank: -1}
	for _, o := range opts {
		o(p)
	}
	return p
}

// TornWrite truncates rank's shard to keepBytes AFTER the checkpoint
// publishes: the manifest exists and records the full size, but the shard
// on disk is short — the signature of storage that lied about durability.
// Write itself succeeds; Verify/Latest must detect and skip the damage.
func TornWrite(rank, keepBytes int) WriteOption {
	return func(p *writePlan) { p.tornRank, p.tornKeep = rank, keepBytes }
}

// BitFlip flips one bit (bit 0 of the byte at byteOff) of rank's shard
// after the checkpoint publishes: size and header stay plausible, only
// the CRC32C trailer can convict it.
func BitFlip(rank int, byteOff int64) WriteOption {
	return func(p *writePlan) { p.flipRank, p.flipByte = rank, byteOff }
}

// CrashDuringShard aborts rank's shard write after keepBytes of the
// temporary file: the temp is never renamed and no manifest is written.
// Write returns an error on every rank and the checkpoint is invisible —
// the atomicity guarantee under a mid-write crash.
func CrashDuringShard(rank, keepBytes int) WriteOption {
	return func(p *writePlan) { p.crashRank, p.crashKeep = rank, keepBytes }
}

// DropManifest lets every shard land but suppresses the manifest: a crash
// in the instant between the last shard rename and publication. Write
// returns an error and discovery never sees the attempt.
func DropManifest() WriteOption {
	return func(p *writePlan) { p.dropManifest = true }
}

// crashShard writes the truncated temp-file debris a mid-write crash
// leaves behind.
func (p *writePlan) crashShard(path string, st *State) error {
	var buf bytes.Buffer
	if _, _, err := EncodeShard(&buf, st); err != nil {
		return err
	}
	keep := min(p.crashKeep, buf.Len())
	return os.WriteFile(path+tmpSuffix, buf.Bytes()[:keep], 0o644)
}

// corruptPublished applies this rank's post-publication damage, if any.
func (p *writePlan) corruptPublished(dir string, rank int) error {
	path := filepath.Join(dir, shardFileName(rank))
	if p.tornRank == rank {
		if err := os.Truncate(path, int64(p.tornKeep)); err != nil {
			return fmt.Errorf("ckpt: injecting torn write: %w", err)
		}
	}
	if p.flipRank == rank {
		if err := FlipBit(path, p.flipByte); err != nil {
			return fmt.Errorf("ckpt: injecting bit flip: %w", err)
		}
	}
	return nil
}

// FlipBit flips bit 0 of the byte at off in the file at path. Offsets are
// taken modulo the file size so callers can damage "somewhere in the
// payload" without knowing the exact length. Exposed for tests and the
// cmd/ckpt corruption drill.
func FlipBit(path string, off int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("ckpt: %s is empty, nothing to flip", path)
	}
	off %= int64(len(b))
	if off < 0 {
		off += int64(len(b))
	}
	b[off] ^= 1
	return os.WriteFile(path, b, 0o644)
}

// CorruptShard damages one shard of a published checkpoint in place:
// truncation when keepBytes >= 0, otherwise a bit flip mid-payload. Used
// by the recovery tests and `cmd/ckpt corrupt` to drill the fallback
// path. The manifest is left intact — that is the point: discovery must
// convict the shard by size or CRC, not by a missing manifest.
func (s *Store) CorruptShard(name string, shard int, keepBytes int64) error {
	path := filepath.Join(s.dir, name, shardFileName(shard))
	if keepBytes >= 0 {
		return os.Truncate(path, keepBytes)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return FlipBit(path, fi.Size()/2)
}
