package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The shard binary layout (all little-endian):
//
//	offset  size  field
//	0       8     magic "CDNSCKPT"
//	8       4     format version (u32)
//	12      8     config fingerprint (u64)
//	20      4     nx (u32)        24  4  ny        28  4  nz
//	32      4     nkx (u32)
//	36      4     kxlo            40  4  kxhi      44  4  kzlo   48  4  kzhi
//	52      8     step (u64)
//	60      8     time (f64)      68  8  dt (f64)
//	76      4     flags (u32; bit 0 = mean block present, bit 1 = extended)
//	80      -     payload: 4 complex fields (cv, cw, hgPrev, hvPrev), each
//	              nw mode lines of ny complex128 (re, im as f64), followed
//	              by the mean block when flagged: 4 real profiles (meanU,
//	              meanW, meanHxPrev, meanHzPrev) of ny f64 each
//	end-4   4     CRC32C (Castagnoli) over every preceding byte
//
// When the extended flag (bit 1) is set — the shard carries workload-
// specific fields beyond the channel's four — the header grows by two
// counters and the payload shifts accordingly:
//
//	80      4     nExtra (u32): extra complex fields after hvPrev
//	84      4     nExtraMean (u32): extra mean profiles after meanHzPrev
//	88      -     payload as above, with 4+nExtra complex fields and, when
//	              the mean flag is set, 4+nExtraMean mean profiles
//
// A state without extras encodes byte-identically to the original v1
// layout (the extended flag stays clear), so channel checkpoints written
// before and after the extension are interchangeable.
//
// The header is self-describing: a reader can locate any (field, ikx, ikz)
// line from the header alone, which is what the re-sharded resume path
// relies on to read exactly the overlapping slices of a shard.

const (
	shardMagic    = "CDNSCKPT"
	headerSize    = 80
	extHeaderSize = 88
	flagHasMean   = 1 << 0
	flagExtended  = 1 << 1
)

// castagnoli is the CRC32C table (the polynomial storage hardware
// accelerates and iSCSI/ext4 use for integrity trailers).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nComplexFields is the number of complex spectral fields in a shard, in
// on-disk order: cv, cw, hgPrev, hvPrev.
const nComplexFields = 4

// shardSize returns the on-disk size of a shard with the given shape.
func shardSize(nw, ny int, hasMean bool, nExtra, nExtraMean int) int64 {
	n := int64(headerSize)
	if nExtra > 0 || nExtraMean > 0 {
		n = extHeaderSize
	}
	n += int64(nComplexFields+nExtra) * int64(nw) * int64(ny) * 16
	if hasMean {
		n += int64(4+nExtraMean) * int64(ny) * 8
	}
	return n + 4 // CRC trailer
}

// EncodeShard writes st as one shard and returns the byte count and the
// CRC32C recorded in the trailer. The encoding is deterministic: the same
// state always produces the same bytes.
func EncodeShard(w io.Writer, st *State) (int64, uint32, error) {
	if err := st.validate(); err != nil {
		return 0, 0, err
	}
	nw, ny := st.NW(), st.Ny
	nExtra, nExtraMean := len(st.Extra), len(st.ExtraMean)
	b := make([]byte, shardSize(nw, ny, st.HasMean, nExtra, nExtraMean))
	copy(b[0:8], shardMagic)
	le := binary.LittleEndian
	le.PutUint32(b[8:], FormatVersion)
	le.PutUint64(b[12:], st.Fingerprint)
	le.PutUint32(b[20:], uint32(st.Nx))
	le.PutUint32(b[24:], uint32(st.Ny))
	le.PutUint32(b[28:], uint32(st.Nz))
	le.PutUint32(b[32:], uint32(st.NKx))
	le.PutUint32(b[36:], uint32(st.Kxlo))
	le.PutUint32(b[40:], uint32(st.Kxhi))
	le.PutUint32(b[44:], uint32(st.Kzlo))
	le.PutUint32(b[48:], uint32(st.Kzhi))
	le.PutUint64(b[52:], uint64(st.Step))
	le.PutUint64(b[60:], math.Float64bits(st.Time))
	le.PutUint64(b[68:], math.Float64bits(st.Dt))
	var flags uint32
	if st.HasMean {
		flags |= flagHasMean
	}
	off := int64(headerSize)
	if nExtra > 0 || nExtraMean > 0 {
		flags |= flagExtended
		le.PutUint32(b[80:], uint32(nExtra))
		le.PutUint32(b[84:], uint32(nExtraMean))
		off = extHeaderSize
	}
	le.PutUint32(b[76:], flags)

	for _, f := range append([][][]complex128{st.CV, st.CW, st.HgPrev, st.HvPrev}, st.Extra...) {
		for _, line := range f {
			putComplexLine(b[off:], line)
			off += int64(ny) * 16
		}
	}
	if st.HasMean {
		for _, m := range append([][]float64{st.MeanU, st.MeanW, st.MeanHxPrev, st.MeanHzPrev}, st.ExtraMean...) {
			putRealLine(b[off:], m)
			off += int64(ny) * 8
		}
	}
	crc := crc32.Checksum(b[:off], castagnoli)
	le.PutUint32(b[off:], crc)
	n, err := w.Write(b)
	return int64(n), crc, err
}

func putComplexLine(b []byte, line []complex128) {
	le := binary.LittleEndian
	for i, c := range line {
		le.PutUint64(b[i*16:], math.Float64bits(real(c)))
		le.PutUint64(b[i*16+8:], math.Float64bits(imag(c)))
	}
}

func putRealLine(b []byte, line []float64) {
	le := binary.LittleEndian
	for i, v := range line {
		le.PutUint64(b[i*8:], math.Float64bits(v))
	}
}

func getComplexLine(b []byte, dst []complex128) {
	le := binary.LittleEndian
	for i := range dst {
		dst[i] = complex(
			math.Float64frombits(le.Uint64(b[i*16:])),
			math.Float64frombits(le.Uint64(b[i*16+8:])))
	}
}

func getRealLine(b []byte, dst []float64) {
	le := binary.LittleEndian
	for i := range dst {
		dst[i] = math.Float64frombits(le.Uint64(b[i*8:]))
	}
}

// shardHeader is the decoded fixed header of a shard.
type shardHeader struct {
	Fingerprint            uint64
	Nx, Ny, Nz, NKx        int
	Kxlo, Kxhi, Kzlo, Kzhi int
	Step                   int64
	Time, Dt               float64
	HasMean                bool
	Extended               bool
	NExtra, NExtraMean     int
}

func (h *shardHeader) nw() int { return (h.Kxhi - h.Kxlo) * (h.Kzhi - h.Kzlo) }

// headerLen returns the on-disk header length this shard was written with.
func (h *shardHeader) headerLen() int64 {
	if h.Extended {
		return extHeaderSize
	}
	return headerSize
}

// parseShard validates magic, version, size and the CRC32C trailer of a
// complete in-memory shard image and returns its header. Every corruption
// mode the fault-injection layer produces (truncation, bit flip, garbage)
// lands here as an error.
func parseShard(b []byte) (shardHeader, error) {
	var h shardHeader
	if len(b) < headerSize+4 {
		return h, fmt.Errorf("ckpt: shard truncated to %d bytes (header is %d)", len(b), headerSize)
	}
	if string(b[0:8]) != shardMagic {
		return h, fmt.Errorf("ckpt: bad shard magic %q", b[0:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(b[8:]); v != FormatVersion {
		return h, fmt.Errorf("ckpt: shard format version %d, reader supports %d", v, FormatVersion)
	}
	h.Fingerprint = le.Uint64(b[12:])
	h.Nx = int(le.Uint32(b[20:]))
	h.Ny = int(le.Uint32(b[24:]))
	h.Nz = int(le.Uint32(b[28:]))
	h.NKx = int(le.Uint32(b[32:]))
	h.Kxlo = int(le.Uint32(b[36:]))
	h.Kxhi = int(le.Uint32(b[40:]))
	h.Kzlo = int(le.Uint32(b[44:]))
	h.Kzhi = int(le.Uint32(b[48:]))
	h.Step = int64(le.Uint64(b[52:]))
	h.Time = math.Float64frombits(le.Uint64(b[60:]))
	h.Dt = math.Float64frombits(le.Uint64(b[68:]))
	flags := le.Uint32(b[76:])
	h.HasMean = flags&flagHasMean != 0
	h.Extended = flags&flagExtended != 0
	if h.Extended {
		if len(b) < extHeaderSize+4 {
			return h, fmt.Errorf("ckpt: extended shard truncated to %d bytes (header is %d)", len(b), extHeaderSize)
		}
		h.NExtra = int(le.Uint32(b[80:]))
		h.NExtraMean = int(le.Uint32(b[84:]))
		if h.NExtra > 1024 || h.NExtraMean > 1024 {
			return h, fmt.Errorf("ckpt: shard header claims %d extra fields, %d extra means", h.NExtra, h.NExtraMean)
		}
	}
	if h.Ny <= 0 || h.nw() < 0 || h.Kxlo > h.Kxhi || h.Kzlo > h.Kzhi {
		return h, fmt.Errorf("ckpt: shard header carries degenerate window kx[%d,%d) kz[%d,%d)",
			h.Kxlo, h.Kxhi, h.Kzlo, h.Kzhi)
	}
	if want := shardSize(h.nw(), h.Ny, h.HasMean, h.NExtra, h.NExtraMean); int64(len(b)) != want || h.Extended != (h.NExtra > 0 || h.NExtraMean > 0) {
		return h, fmt.Errorf("ckpt: shard is %d bytes, header implies %d", len(b), want)
	}
	if got, want := crc32.Checksum(b[:len(b)-4], castagnoli), le.Uint32(b[len(b)-4:]); got != want {
		return h, fmt.Errorf("ckpt: shard CRC32C mismatch (stored %08x, computed %08x)", want, got)
	}
	return h, nil
}

// copyOverlap copies every mode line in the intersection of the shard's
// window and dst's window (and the mean block when both sides carry it)
// from the verified shard image into dst's slices. Returns the number of
// mode lines copied per field.
func copyOverlap(b []byte, h shardHeader, dst *State) int {
	kxlo := max(h.Kxlo, dst.Kxlo)
	kxhi := min(h.Kxhi, dst.Kxhi)
	kzlo := max(h.Kzlo, dst.Kzlo)
	kzhi := min(h.Kzhi, dst.Kzhi)
	ny := h.Ny
	srcNkz := h.Kzhi - h.Kzlo
	dstNkz := dst.Kzhi - dst.Kzlo
	fields := append([][][]complex128{dst.CV, dst.CW, dst.HgPrev, dst.HvPrev}, dst.Extra...)
	lines := 0
	for f := range fields {
		fieldOff := h.headerLen() + int64(f)*int64(h.nw())*int64(ny)*16
		for ikx := kxlo; ikx < kxhi; ikx++ {
			for ikz := kzlo; ikz < kzhi; ikz++ {
				srcW := (ikx-h.Kxlo)*srcNkz + (ikz - h.Kzlo)
				dstW := (ikx-dst.Kxlo)*dstNkz + (ikz - dst.Kzlo)
				off := fieldOff + int64(srcW)*int64(ny)*16
				getComplexLine(b[off:], fields[f][dstW])
				if f == 0 {
					lines++
				}
			}
		}
	}
	if h.HasMean && dst.HasMean {
		off := h.headerLen() + int64(nComplexFields+h.NExtra)*int64(h.nw())*int64(ny)*16
		for _, m := range append([][]float64{dst.MeanU, dst.MeanW, dst.MeanHxPrev, dst.MeanHzPrev}, dst.ExtraMean...) {
			getRealLine(b[off:], m)
			off += int64(ny) * 8
		}
	}
	return lines
}

// DecodeShard reads one complete shard from r and restores it into dst,
// whose window, grid and fingerprint must match the shard exactly (the
// single-rank save/load path; re-sharded restores go through Store). The
// decoded values are copied into dst's existing slices.
func DecodeShard(r io.Reader, dst *State) error {
	if err := dst.validate(); err != nil {
		return err
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("ckpt: reading shard: %w", err)
	}
	h, err := parseShard(b)
	if err != nil {
		return err
	}
	if h.Fingerprint != dst.Fingerprint {
		return fmt.Errorf("ckpt: shard fingerprint %016x does not match configuration %016x",
			h.Fingerprint, dst.Fingerprint)
	}
	if h.Nx != dst.Nx || h.Ny != dst.Ny || h.Nz != dst.Nz || h.NKx != dst.NKx {
		return fmt.Errorf("ckpt: shard grid %dx%dx%d does not match solver %dx%dx%d",
			h.Nx, h.Ny, h.Nz, dst.Nx, dst.Ny, dst.Nz)
	}
	if h.Kxlo != dst.Kxlo || h.Kxhi != dst.Kxhi || h.Kzlo != dst.Kzlo || h.Kzhi != dst.Kzhi {
		return fmt.Errorf("ckpt: shard window kx[%d,%d) kz[%d,%d) does not match rank window kx[%d,%d) kz[%d,%d)",
			h.Kxlo, h.Kxhi, h.Kzlo, h.Kzhi, dst.Kxlo, dst.Kxhi, dst.Kzlo, dst.Kzhi)
	}
	if h.HasMean != dst.HasMean {
		return fmt.Errorf("ckpt: shard mean-profile presence (%v) does not match rank (%v)",
			h.HasMean, dst.HasMean)
	}
	if h.NExtra != len(dst.Extra) || (dst.HasMean && h.NExtraMean != len(dst.ExtraMean)) {
		return fmt.Errorf("ckpt: shard carries %d extra fields / %d extra means, solver expects %d / %d",
			h.NExtra, h.NExtraMean, len(dst.Extra), len(dst.ExtraMean))
	}
	copyOverlap(b, h, dst)
	dst.Step, dst.Time, dst.Dt = h.Step, h.Time, h.Dt
	return nil
}
