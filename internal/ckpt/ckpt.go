// Package ckpt is the checkpoint/restart subsystem: versioned, sharded,
// atomically published snapshots of the distributed solver state, and the
// re-sharded resume path that restores them on any rank count.
//
// Production DNS campaigns live and die by restartability — the paper's
// Re_tau=5200 run spans ~650,000 RK3 steps — so the subsystem treats
// restart files as first-class artifacts with explicit failure semantics:
//
//   - Each rank writes one self-describing binary shard (magic, format
//     version, config fingerprint, little-endian field payloads, CRC32C
//     trailer) covering exactly its owned wavenumber window.
//   - Shards are written to a temporary name, fsynced, then renamed; after
//     every shard has landed, rank 0 writes a manifest listing each shard
//     with its checksum, again via temp + fsync + rename. A checkpoint
//     EXISTS only once its manifest lands — a crash at any earlier point
//     leaves the previous checkpoint untouched and the torn attempt
//     invisible to discovery.
//   - Resume maps each restoring rank's owned wavenumber ranges onto the
//     manifest's shard ranges and reads exactly the overlapping slices, so
//     a run checkpointed on P ranks restores bit-identically on any other
//     rank count.
//   - A Store owns a directory of checkpoints with rolling retention and
//     corruption-aware discovery: Latest skips manifests whose shards are
//     missing, truncated or fail their CRC, falling back to the newest
//     good checkpoint, and Resume re-verifies at read time.
//   - Fault injection (torn write at byte N, bit flip, manifest loss) is a
//     WriteOption layer used by the recovery tests and the `cmd/ckpt
//     corrupt` drill tool.
//
// The package sits below internal/core (which adapts solver state into a
// State and back) and above internal/mpi (shard writes are collective over
// the world communicator). Checkpoint I/O is telemetry-visible: every
// shard or manifest transfer is a PhaseCheckpoint span paired with one
// CommCheckpoint byte-count record.
package ckpt

import (
	"errors"
	"fmt"
)

// FormatVersion is the shard/manifest format generation. Bump it when the
// binary layout changes incompatibly; readers reject other versions.
const FormatVersion = 1

// ErrNoCheckpoint is returned by Latest and Resume when the store directory
// holds no valid checkpoint (empty, missing, or everything corrupt).
var ErrNoCheckpoint = errors.New("ckpt: no valid checkpoint")

// State is one rank's checkpointable solver state: the spline coefficients
// of v-hat and omega_y-hat plus the previous-substep nonlinear terms for
// every locally owned wavenumber, and the mean-flow profiles on the rank
// that owns the (0,0) mode. The slices alias caller-owned storage in both
// directions — writes read from them, restores copy INTO them — so the
// solver's workspace-arena-backed buffers survive a restore.
type State struct {
	// Workload names the registered scenario (core.WorkloadNames) that
	// produced this state. Checkpoints restore only into the same
	// workload; a mismatch is a structural error, not a fallback case.
	Workload string

	// Global grid extents and the one-sided x mode count.
	Nx, Ny, Nz int
	NKx        int

	// This rank's owned wavenumber window: one-sided kx in [Kxlo, Kxhi),
	// wrapped kz in [Kzlo, Kzhi).
	Kxlo, Kxhi, Kzlo, Kzhi int

	// Run position. Dt is carried so an adaptively adjusted time step
	// survives a restart (required for bit-identical trajectories).
	Step int64
	Time float64
	Dt   float64

	// Fingerprint is a stable hash of the identity-defining configuration
	// (grid, physics, discretization — NOT the process grid or Dt).
	// Checkpoints only restore into a matching configuration.
	Fingerprint uint64

	// Spectral state, indexed [w][iy] with w = (ikx-Kxlo)*(Kzhi-Kzlo) +
	// (ikz-Kzlo): v-hat and omega_y-hat spline coefficients and the
	// previous-substep nonlinear terms.
	CV, CW, HgPrev, HvPrev [][]complex128

	// Mean-flow profiles, present only on the (0,0)-owning rank.
	HasMean                              bool
	MeanU, MeanW, MeanHxPrev, MeanHzPrev []float64

	// Workload-specific additions beyond the four channel fields: Extra
	// holds further complex spectral fields shaped exactly like CV (the
	// passive scalar stores its coefficients and previous-substep term
	// here); ExtraMean holds further mean profiles and may be non-empty
	// only when HasMean. Both empty reproduces the original v1 shard
	// bytes exactly.
	Extra     [][][]complex128
	ExtraMean [][]float64
}

// NW returns the local mode count of the window.
func (st *State) NW() int {
	return (st.Kxhi - st.Kxlo) * (st.Kzhi - st.Kzlo)
}

// validate checks the window and slice shapes agree.
func (st *State) validate() error {
	if st.Nx <= 0 || st.Ny <= 0 || st.Nz <= 0 || st.NKx <= 0 {
		return fmt.Errorf("ckpt: bad grid %dx%dx%d (nkx %d)", st.Nx, st.Ny, st.Nz, st.NKx)
	}
	if st.Kxlo < 0 || st.Kxhi > st.NKx || st.Kxlo > st.Kxhi ||
		st.Kzlo < 0 || st.Kzhi > st.Nz || st.Kzlo > st.Kzhi {
		return fmt.Errorf("ckpt: window kx[%d,%d) kz[%d,%d) outside grid (nkx %d, nz %d)",
			st.Kxlo, st.Kxhi, st.Kzlo, st.Kzhi, st.NKx, st.Nz)
	}
	nw := st.NW()
	fields := append([][][]complex128{st.CV, st.CW, st.HgPrev, st.HvPrev}, st.Extra...)
	for _, f := range fields {
		if len(f) != nw {
			return fmt.Errorf("ckpt: field carries %d modes, window owns %d", len(f), nw)
		}
		for _, line := range f {
			if len(line) != st.Ny {
				return fmt.Errorf("ckpt: mode line length %d, want Ny=%d", len(line), st.Ny)
			}
		}
	}
	if !st.HasMean && len(st.ExtraMean) > 0 {
		return fmt.Errorf("ckpt: %d extra mean profiles on a rank without the mean block", len(st.ExtraMean))
	}
	if st.HasMean {
		means := append([][]float64{st.MeanU, st.MeanW, st.MeanHxPrev, st.MeanHzPrev}, st.ExtraMean...)
		for _, m := range means {
			if len(m) != st.Ny {
				return fmt.Errorf("ckpt: mean profile length %d, want Ny=%d", len(m), st.Ny)
			}
		}
	}
	return nil
}
