package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// chunk is the contiguous block decomposition the pencil layer uses.
func chunk(n, p, r int) (lo, hi int) { return r * n / p, (r + 1) * n / p }

// rankState builds rank r's kx-sliced window of the canonical test state
// (grid 16x5x6, NKx=8) with the mean profiles on rank 0.
func rankState(p, r int, step int64) *State {
	lo, hi := chunk(8, p, r)
	st := makeState(5, lo, hi, 0, 6, r == 0)
	st.Step = step
	st.Time = float64(step) * 0.003
	return st
}

// blankRankState is rankState with zeroed buffers, ready to restore into.
func blankRankState(p, r int) *State {
	full := makeState(5, 0, 8, 0, 6, true)
	lo, hi := chunk(8, p, r)
	return emptyLike(full, lo, hi, 0, 6, r == 0)
}

// writeCheckpoint runs one collective Write at size p.
func writeCheckpoint(t *testing.T, s *Store, p int, step int64, opts ...WriteOption) (string, error) {
	t.Helper()
	var name string
	var werr error
	mpi.Run(p, func(c *mpi.Comm) {
		n, err := s.Write(c, rankState(p, c.Rank(), step), opts...)
		if c.Rank() == 0 {
			name, werr = n, err
		}
	})
	return name, werr
}

func TestStoreWriteRestoreReShard(t *testing.T) {
	s := NewStore(t.TempDir())
	name, err := writeCheckpoint(t, s, 4, 40)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if name != checkpointName(40) {
		t.Fatalf("checkpoint named %q, want %q", name, checkpointName(40))
	}
	// A P=4 checkpoint must restore bit-identically on 1, 2, 4 and 8 ranks.
	for _, p := range []int{1, 2, 4, 8} {
		mpi.Run(p, func(c *mpi.Comm) {
			dst := blankRankState(p, c.Rank())
			if err := s.Restore(c, name, dst); err != nil {
				t.Errorf("P=%d rank %d: restore: %v", p, c.Rank(), err)
				return
			}
			checkWindow(t, dst)
			if dst.Step != 40 || dst.Time != 40*0.003 || dst.Dt != 0.003 {
				t.Errorf("P=%d rank %d: run position step=%d t=%v dt=%v", p, c.Rank(), dst.Step, dst.Time, dst.Dt)
			}
		})
	}
}

func TestStoreResumePicksNewest(t *testing.T) {
	s := NewStore(t.TempDir())
	for _, step := range []int64{10, 20, 30} {
		if _, err := writeCheckpoint(t, s, 2, step); err != nil {
			t.Fatal(err)
		}
	}
	mpi.Run(2, func(c *mpi.Comm) {
		dst := blankRankState(2, c.Rank())
		name, err := s.Resume(c, dst)
		if err != nil {
			t.Errorf("rank %d: resume: %v", c.Rank(), err)
			return
		}
		if name != checkpointName(30) || dst.Step != 30 {
			t.Errorf("rank %d: resumed %q step %d, want newest step 30", c.Rank(), name, dst.Step)
		}
	})
}

func TestStoreRetention(t *testing.T) {
	s := NewStore(t.TempDir(), WithRetention(2))
	for _, step := range []int64{10, 20, 30, 40} {
		if _, err := writeCheckpoint(t, s, 1, step); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != checkpointName(40) || names[1] != checkpointName(30) {
		t.Fatalf("after 4 writes with keep=2, store holds %v", names)
	}
}

func TestStoreCorruptionFallback(t *testing.T) {
	cases := []struct {
		name string
		opts []WriteOption
	}{
		{"torn write", []WriteOption{TornWrite(1, 100)}},
		{"torn to zero bytes", []WriteOption{TornWrite(0, 0)}},
		{"bit flip", []WriteOption{BitFlip(1, 500)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(t.TempDir())
			if _, err := writeCheckpoint(t, s, 2, 10); err != nil {
				t.Fatal(err)
			}
			// The newest checkpoint publishes, then its shard rots on disk.
			if _, err := writeCheckpoint(t, s, 2, 20, tc.opts...); err != nil {
				t.Fatalf("post-publication corruption must not fail the write: %v", err)
			}
			name, m, err := s.Latest()
			if err != nil {
				t.Fatalf("latest: %v", err)
			}
			if name != checkpointName(10) || m.Step != 10 {
				t.Fatalf("Latest picked %q (step %d), want fallback to step 10", name, m.Step)
			}
			mpi.Run(2, func(c *mpi.Comm) {
				dst := blankRankState(2, c.Rank())
				got, err := s.Resume(c, dst)
				if err != nil {
					t.Errorf("rank %d: resume: %v", c.Rank(), err)
					return
				}
				if got != checkpointName(10) || dst.Step != 10 {
					t.Errorf("rank %d: resumed %q step %d, want step 10", c.Rank(), got, dst.Step)
					return
				}
				checkWindow(t, dst)
			})
		})
	}
}

func TestStoreAtomicity(t *testing.T) {
	t.Run("manifest loss hides the attempt", func(t *testing.T) {
		s := NewStore(t.TempDir())
		if _, err := writeCheckpoint(t, s, 2, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := writeCheckpoint(t, s, 2, 20, DropManifest()); err == nil {
			t.Fatal("injected manifest loss reported success")
		}
		// Shards landed but without a manifest the checkpoint must not exist.
		if _, err := os.Stat(filepath.Join(s.Dir(), checkpointName(20), shardFileName(0))); err != nil {
			t.Fatalf("shard should have landed: %v", err)
		}
		name, _, err := s.Latest()
		if err != nil || name != checkpointName(10) {
			t.Fatalf("Latest = %q, %v; want the previous checkpoint", name, err)
		}
	})
	t.Run("crash during shard write", func(t *testing.T) {
		s := NewStore(t.TempDir())
		if _, err := writeCheckpoint(t, s, 2, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := writeCheckpoint(t, s, 2, 20, CrashDuringShard(1, 64)); err == nil {
			t.Fatal("injected crash reported success")
		}
		dir := filepath.Join(s.Dir(), checkpointName(20))
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
			t.Fatalf("crashed attempt has a manifest (err=%v)", err)
		}
		if _, err := os.Stat(filepath.Join(dir, shardFileName(1))); !os.IsNotExist(err) {
			t.Fatalf("crashed rank's temp file was renamed into place (err=%v)", err)
		}
		name, _, err := s.Latest()
		if err != nil || name != checkpointName(10) {
			t.Fatalf("Latest = %q, %v; want the previous checkpoint", name, err)
		}
		// The next successful write sweeps the stale attempt.
		if _, err := writeCheckpoint(t, s, 2, 30); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Fatalf("stale torn attempt survived the next write (err=%v)", err)
		}
	})
}

func TestStoreEverythingCorruptIsErrNoCheckpoint(t *testing.T) {
	s := NewStore(t.TempDir())
	if _, err := writeCheckpoint(t, s, 2, 10, BitFlip(0, 200)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on all-corrupt store: %v, want ErrNoCheckpoint", err)
	}
	mpi.Run(2, func(c *mpi.Comm) {
		dst := blankRankState(2, c.Rank())
		if _, err := s.Resume(c, dst); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("rank %d: resume on all-corrupt store: %v, want ErrNoCheckpoint", c.Rank(), err)
		}
	})
}

func TestStoreResumeEmpty(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "never-created"))
	mpi.Run(1, func(c *mpi.Comm) {
		dst := blankRankState(1, c.Rank())
		if _, err := s.Resume(c, dst); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("resume on empty store: %v, want ErrNoCheckpoint", err)
		}
	})
}

func TestStoreRejectsForeignFingerprint(t *testing.T) {
	s := NewStore(t.TempDir())
	name, err := writeCheckpoint(t, s, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	mpi.Run(1, func(c *mpi.Comm) {
		dst := blankRankState(1, 0)
		dst.Fingerprint++ // a different physical configuration
		if err := s.Restore(c, name, dst); err == nil {
			t.Error("restore into a foreign configuration succeeded")
		}
		if _, err := s.Resume(c, dst); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("resume into a foreign configuration: %v, want ErrNoCheckpoint", err)
		}
	})
}

func TestStoreTelemetry(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	mpi.Run(2, func(c *mpi.Comm) {
		s := NewStore(dir, WithTelemetry(reg.Rank(c.Rank())))
		if _, err := s.Write(c, rankState(2, c.Rank(), 10)); err != nil {
			t.Errorf("rank %d: write: %v", c.Rank(), err)
			return
		}
		dst := blankRankState(2, c.Rank())
		if _, err := s.Resume(c, dst); err != nil {
			t.Errorf("rank %d: resume: %v", c.Rank(), err)
		}
	})
	for r := 0; r < 2; r++ {
		col := reg.Rank(r)
		spans := col.PhaseCalls(telemetry.PhaseCheckpoint)
		calls, msgs, bytes := col.CommCounts(telemetry.CommCheckpoint)
		if spans == 0 || bytes == 0 {
			t.Errorf("rank %d: checkpoint I/O invisible to telemetry (spans=%d bytes=%d)", r, spans, bytes)
		}
		if calls != spans || msgs != calls {
			t.Errorf("rank %d: %d spans vs %d comm records (want 1:1)", r, spans, calls)
		}
	}
}

func TestStoreCorruptShardHelper(t *testing.T) {
	s := NewStore(t.TempDir())
	name, err := writeCheckpoint(t, s, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(name); err != nil {
		t.Fatalf("fresh checkpoint fails verify: %v", err)
	}
	if err := s.CorruptShard(name, 1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(name); err == nil {
		t.Fatal("bit-flipped checkpoint passes verify")
	}
}
