package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// Store owns a directory of checkpoints:
//
//	<dir>/step-0000000040/shard-0000.ckpt
//	                      shard-0001.ckpt
//	                      MANIFEST.json      <- written last; publishes the checkpoint
//	<dir>/step-0000000080/...
//
// Writes are collective over an mpi communicator (one shard per rank),
// discovery and retention are local filesystem scans. A Store is a
// per-rank value: construct one on every rank with the same directory.
type Store struct {
	dir  string
	keep int
	tel  *telemetry.Collector
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRetention keeps only the newest k published checkpoints, pruning
// older ones (and stale unpublished attempts) after each successful write.
// k <= 0 keeps everything.
func WithRetention(k int) StoreOption { return func(s *Store) { s.keep = k } }

// WithTelemetry attaches this rank's collector: every shard or manifest
// transfer becomes a PhaseCheckpoint span paired with one CommCheckpoint
// byte-count record. Nil (the default) disables instrumentation.
func WithTelemetry(c *telemetry.Collector) StoreOption { return func(s *Store) { s.tel = c } }

// NewStore returns a store rooted at dir. The directory is created on
// first write; a missing directory is an empty store.
func NewStore(dir string, opts ...StoreOption) *Store {
	s := &Store{dir: dir}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

const (
	ckptDirPrefix = "step-"
	tmpSuffix     = ".tmp"
)

// checkpointName returns the directory name of the checkpoint at a step.
func checkpointName(step int64) string {
	return fmt.Sprintf("%s%010d", ckptDirPrefix, step)
}

// stepOfName inverts checkpointName; ok is false for foreign names.
func stepOfName(name string) (int64, bool) {
	if !strings.HasPrefix(name, ckptDirPrefix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(name, ckptDirPrefix), 10, 64)
	return n, err == nil
}

func shardFileName(rank int) string { return fmt.Sprintf("shard-%04d.ckpt", rank) }

// shardMeta is the per-rank write result gathered on rank 0 to assemble
// the manifest. Fixed-shape so it can ride mpi.Gather.
type shardMeta struct {
	Info ShardInfo
	Err  string
}

// The gather crosses process boundaries on the TCP transport; exported
// fields make it gob-encodable for the wire codec.
func init() { mpi.RegisterWire[shardMeta]() }

// writeFileAtomic writes data to path through a same-directory temp file,
// fsyncs it, renames it into place, and best-effort fsyncs the directory
// so the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory, ignoring errors (not all platforms support
// directory fsync; the rename is still atomic without it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Write publishes one checkpoint collectively: every rank of c writes its
// shard of st, then rank 0 writes the manifest once all shards have
// landed. Returns the checkpoint name (identical on every rank). On any
// failure no manifest is written and the previous checkpoint remains the
// latest — a checkpoint is never partially visible.
func (s *Store) Write(c *mpi.Comm, st *State, opts ...WriteOption) (string, error) {
	plan := newWritePlan(opts)
	name := checkpointName(st.Step)
	dir := filepath.Join(s.dir, name)

	// Rank 0 prepares the directory (and retracts any manifest from an
	// earlier checkpoint at the same step, so a failure mid-rewrite cannot
	// leave a manifest describing mixed shard generations).
	var prep string
	if c.Rank() == 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			prep = err.Error()
		} else if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
			prep = err.Error()
		}
	}
	prep = mpi.Bcast(c, 0, []string{prep})[0]
	if prep != "" {
		return "", fmt.Errorf("ckpt: preparing %s: %s", name, prep)
	}

	meta := s.writeShard(dir, c.Rank(), st, plan)
	metas := mpi.Gather(c, 0, []shardMeta{meta})

	var status string
	if c.Rank() == 0 {
		status = s.publish(dir, st, metas, plan)
	}
	status = mpi.Bcast(c, 0, []string{status})[0]
	if status != "" {
		return "", fmt.Errorf("ckpt: %s: %s", name, status)
	}

	// Post-publication corruption injection: models silent disk damage
	// that happens after a successful write (the recovery tests' subject).
	if err := plan.corruptPublished(dir, c.Rank()); err != nil {
		return "", err
	}
	return name, nil
}

// writeShard writes this rank's shard (temp, fsync, rename) and returns
// its manifest entry, or an error wrapped in the meta.
func (s *Store) writeShard(dir string, rank int, st *State, plan *writePlan) shardMeta {
	meta := shardMeta{Info: ShardInfo{
		File: shardFileName(rank),
		Kxlo: st.Kxlo, Kxhi: st.Kxhi, Kzlo: st.Kzlo, Kzhi: st.Kzhi,
		HasMean: st.HasMean,
	}}
	path := filepath.Join(dir, meta.Info.File)

	if plan.crashRank == rank {
		// Simulated crash mid-write: a truncated temp file, never renamed.
		if err := plan.crashShard(path, st); err != nil {
			meta.Err = err.Error()
		} else {
			meta.Err = "injected crash during shard write"
		}
		return meta
	}

	sp := s.tel.Begin(telemetry.PhaseCheckpoint)
	n, crc, err := encodeShardAtomic(path, st)
	sp.End()
	s.tel.AddComm(telemetry.CommCheckpoint, n, 1)
	if err != nil {
		meta.Err = err.Error()
		return meta
	}
	meta.Info.Bytes = n
	meta.Info.CRC32C = fmt.Sprintf("%08x", crc)
	return meta
}

// encodeShardAtomic encodes st into path via temp + fsync + rename.
func encodeShardAtomic(path string, st *State) (int64, uint32, error) {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	n, crc, err := EncodeShard(f, st)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return n, crc, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return n, crc, err
	}
	syncDir(filepath.Dir(path))
	return n, crc, nil
}

// publish runs on rank 0 once every rank's meta has been gathered: checks
// them, writes the manifest atomically, and applies retention. Returns ""
// on success or the error text to broadcast.
func (s *Store) publish(dir string, st *State, metas []shardMeta, plan *writePlan) string {
	for _, m := range metas {
		if m.Err != "" {
			return fmt.Sprintf("shard %s: %s (manifest not written)", m.Info.File, m.Err)
		}
	}
	if plan.dropManifest {
		return "injected manifest loss (shards landed, checkpoint unpublished)"
	}
	man := &Manifest{
		Format:      FormatVersion,
		Fingerprint: fingerprintString(st.Fingerprint),
		Workload:    st.Workload,
		Nx:          st.Nx, Ny: st.Ny, Nz: st.Nz, NKx: st.NKx,
		Step: st.Step, Time: st.Time, Dt: st.Dt,
		Ranks: len(metas),
	}
	for _, m := range metas {
		man.Shards = append(man.Shards, m.Info)
	}
	if err := man.Validate(); err != nil {
		return err.Error()
	}
	data, err := encodeManifest(man)
	if err != nil {
		return err.Error()
	}
	sp := s.tel.Begin(telemetry.PhaseCheckpoint)
	err = writeFileAtomic(filepath.Join(dir, ManifestName), data)
	sp.End()
	s.tel.AddComm(telemetry.CommCheckpoint, int64(len(data)), 1)
	if err != nil {
		return err.Error()
	}
	s.prune(st.Step)
	return ""
}

// prune enforces rolling retention after the checkpoint at justWrote
// published: published checkpoints beyond the newest keep are removed,
// as are unpublished (torn, crashed) attempts older than justWrote.
// Best-effort: removal errors leave extra data behind, never break a
// successful write.
func (s *Store) prune(justWrote int64) {
	names, err := s.Checkpoints()
	if err != nil {
		return
	}
	published := 0
	for _, name := range names { // names are newest-first
		step, _ := stepOfName(name)
		dir := filepath.Join(s.dir, name)
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
			published++
			if s.keep > 0 && published > s.keep {
				os.RemoveAll(dir)
			}
			continue
		}
		if step < justWrote {
			os.RemoveAll(dir) // stale torn attempt
		}
	}
}

// Checkpoints returns the names of every checkpoint directory in the
// store (published or not), newest step first. A missing store directory
// is an empty store.
func (s *Store) Checkpoints() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	type cand struct {
		name string
		step int64
	}
	var cands []cand
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if step, ok := stepOfName(e.Name()); ok {
			cands = append(cands, cand{e.Name(), step})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].step > cands[j].step })
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.name
	}
	return names, nil
}

// Verify fully checks one checkpoint: the manifest parses and is
// internally consistent, and every listed shard exists with the recorded
// size, a matching header, and a valid CRC32C. Returns the manifest on
// success.
func (s *Store) Verify(name string) (*Manifest, error) {
	dir := filepath.Join(s.dir, name)
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, sh := range m.Shards {
		if err := s.verifyShard(dir, m, sh); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// verifyShard reads one shard completely and checks it against its
// manifest entry.
func (s *Store) verifyShard(dir string, m *Manifest, sh ShardInfo) error {
	b, err := s.readShardFile(filepath.Join(dir, sh.File))
	if err != nil {
		return fmt.Errorf("ckpt: shard %s: %w", sh.File, err)
	}
	if int64(len(b)) != sh.Bytes {
		return fmt.Errorf("ckpt: shard %s: %d bytes on disk, manifest records %d",
			sh.File, len(b), sh.Bytes)
	}
	h, err := parseShard(b)
	if err != nil {
		return fmt.Errorf("ckpt: shard %s: %w", sh.File, err)
	}
	if fingerprintString(h.Fingerprint) != m.Fingerprint {
		return fmt.Errorf("ckpt: shard %s: fingerprint %016x does not match manifest %s",
			sh.File, h.Fingerprint, m.Fingerprint)
	}
	if h.Kxlo != sh.Kxlo || h.Kxhi != sh.Kxhi || h.Kzlo != sh.Kzlo || h.Kzhi != sh.Kzhi ||
		h.HasMean != sh.HasMean {
		return fmt.Errorf("ckpt: shard %s: header window disagrees with manifest entry", sh.File)
	}
	if h.Step != m.Step || h.Nx != m.Nx || h.Ny != m.Ny || h.Nz != m.Nz || h.NKx != m.NKx {
		return fmt.Errorf("ckpt: shard %s: header identity disagrees with manifest", sh.File)
	}
	return nil
}

// readShardFile reads a whole shard under a telemetry span.
func (s *Store) readShardFile(path string) ([]byte, error) {
	sp := s.tel.Begin(telemetry.PhaseCheckpoint)
	b, err := os.ReadFile(path)
	sp.End()
	s.tel.AddComm(telemetry.CommCheckpoint, int64(len(b)), 1)
	return b, err
}

// Latest returns the newest checkpoint that passes Verify, skipping over
// corrupt or unpublished attempts. ErrNoCheckpoint when none qualifies.
func (s *Store) Latest() (string, *Manifest, error) {
	names, err := s.Checkpoints()
	if err != nil {
		return "", nil, err
	}
	for _, name := range names {
		if m, err := s.Verify(name); err == nil {
			return name, m, nil
		}
	}
	return "", nil, ErrNoCheckpoint
}

// LatestManifest is one-shot discovery for callers that hold only a
// directory, not a live run: the newest fully verified checkpoint in dir
// and its manifest (workload, grid, step, shard inventory). The job
// server's restart recovery and `ckpt ls -runs` both key on it, so the
// drill tool and the server cannot drift. ErrNoCheckpoint when the
// directory holds nothing usable (including when it does not exist).
func LatestManifest(dir string) (string, *Manifest, error) {
	return NewStore(dir).Latest()
}

// matches reports whether a manifest belongs to the configuration dst
// describes (workload + fingerprint + grid identity; the process grid is
// free to differ — that is the point of re-sharded resume).
func (m *Manifest) matches(dst *State) bool {
	return m.Workload == dst.Workload &&
		m.Fingerprint == fingerprintString(dst.Fingerprint) &&
		m.Nx == dst.Nx && m.Ny == dst.Ny && m.Nz == dst.Nz && m.NKx == dst.NKx
}

// Restore collectively reads the named checkpoint into dst on every rank
// of c, re-sharding as needed: each rank reads exactly the shards whose
// windows overlap its own (plus the mean-carrying shard on the mean-owner
// rank), verifies each shard's CRC before trusting a byte of it, and
// copies the overlapping mode lines into dst's existing slices. On
// success dst.Step/Time/Dt carry the checkpoint's run position. The error
// is collective: if any rank fails, every rank returns an error.
func (s *Store) Restore(c *mpi.Comm, name string, dst *State) error {
	err := s.restoreLocal(name, dst)
	flag := 0
	if err != nil {
		flag = 1
	}
	if mpi.Allreduce(c, mpi.OpMax, []int{flag})[0] != 0 {
		if err != nil {
			return err
		}
		return fmt.Errorf("ckpt: restore of %s failed on another rank", name)
	}
	return nil
}

// restoreLocal is the per-rank body of Restore.
func (s *Store) restoreLocal(name string, dst *State) error {
	if err := dst.validate(); err != nil {
		return err
	}
	dir := filepath.Join(s.dir, name)
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	if m.Workload != dst.Workload {
		return fmt.Errorf("ckpt: checkpoint %s belongs to workload %q, not %q",
			name, m.Workload, dst.Workload)
	}
	if !m.matches(dst) {
		return fmt.Errorf("ckpt: checkpoint %s belongs to configuration %s grid %dx%dx%d, not ours",
			name, m.Fingerprint, m.Nx, m.Ny, m.Nz)
	}
	for _, sh := range m.Shards {
		overlaps := max(sh.Kxlo, dst.Kxlo) < min(sh.Kxhi, dst.Kxhi) &&
			max(sh.Kzlo, dst.Kzlo) < min(sh.Kzhi, dst.Kzhi)
		wantMean := dst.HasMean && sh.HasMean
		if !overlaps && !wantMean {
			continue
		}
		b, err := s.readShardFile(filepath.Join(dir, sh.File))
		if err != nil {
			return fmt.Errorf("ckpt: shard %s: %w", sh.File, err)
		}
		h, err := parseShard(b)
		if err != nil {
			return fmt.Errorf("ckpt: shard %s: %w", sh.File, err)
		}
		if h.Ny != dst.Ny {
			return fmt.Errorf("ckpt: shard %s: Ny %d, want %d", sh.File, h.Ny, dst.Ny)
		}
		if h.NExtra != len(dst.Extra) || (wantMean && h.NExtraMean != len(dst.ExtraMean)) {
			return fmt.Errorf("ckpt: shard %s: carries %d extra fields / %d extra means, solver expects %d / %d",
				sh.File, h.NExtra, h.NExtraMean, len(dst.Extra), len(dst.ExtraMean))
		}
		copyOverlap(b, h, dst)
	}
	dst.Step, dst.Time, dst.Dt = m.Step, m.Time, m.Dt
	return nil
}

// Resume collectively restores the newest valid checkpoint compatible
// with dst, falling back to progressively older checkpoints when a
// candidate turns out corrupt (rank-0 verification catches torn writes
// and bit flips; read-time CRC failures on any rank demote the candidate
// too). Returns the name restored from, or ErrNoCheckpoint when the store
// holds nothing usable.
func (s *Store) Resume(c *mpi.Comm, dst *State) (string, error) {
	tried := map[string]bool{}
	for {
		pair := []string{"", ""}
		if c.Rank() == 0 {
			pair[0], pair[1] = s.nextValid(tried, dst)
		}
		pair = mpi.Bcast(c, 0, pair)
		name, mismatch := pair[0], pair[1]
		if name == "" {
			if mismatch != "" {
				// A healthy checkpoint exists but belongs to another
				// workload: that is a configuration error the caller must
				// see, not an empty store to silently start fresh from.
				return "", fmt.Errorf("ckpt: %s", mismatch)
			}
			return "", ErrNoCheckpoint
		}
		if err := s.Restore(c, name, dst); err == nil {
			return name, nil
		}
		tried[name] = true // only consulted on rank 0
	}
}

// nextValid returns the newest untried checkpoint that passes Verify and
// belongs to dst's configuration, or "". The second return is a
// description of the newest valid checkpoint rejected purely for a
// workload mismatch, when no matching checkpoint exists at all.
func (s *Store) nextValid(tried map[string]bool, dst *State) (string, string) {
	names, err := s.Checkpoints()
	if err != nil {
		return "", ""
	}
	mismatch := ""
	for _, name := range names {
		if tried[name] {
			continue
		}
		m, err := s.Verify(name)
		if err != nil {
			continue
		}
		if !m.matches(dst) {
			if mismatch == "" && m.Workload != dst.Workload &&
				m.Nx == dst.Nx && m.Ny == dst.Ny && m.Nz == dst.Nz {
				mismatch = fmt.Sprintf("checkpoint %s belongs to workload %q, not %q",
					name, m.Workload, dst.Workload)
			}
			continue
		}
		return name, ""
	}
	return "", mismatch
}
