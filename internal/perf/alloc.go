package perf

import "runtime"

// Allocation accounting: the zero-allocation steady state is a measurable
// property, so the benchmark tools sample the Go runtime's allocation
// counters around kernels the same way the section timers sample wall
// clock. Readings are process-wide (runtime.ReadMemStats): a delta
// attributes allocations from EVERY goroutine that ran in the interval,
// not just the caller's, so exact counts are only meaningful around serial
// regions; around concurrent ones they are whole-process rates. For
// attributing allocations to a specific phase of the timestep, use the
// telemetry package's per-phase probe (Collector.SetAllocTracking), which
// carries the same serial-only caveat and is what the BENCH_*.json
// allocs_per_step field restates.

// AllocSample is a snapshot of the runtime's cumulative allocation
// counters.
type AllocSample struct {
	// Bytes is cumulative heap bytes allocated (MemStats.TotalAlloc).
	Bytes uint64
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
}

// ReadAllocs samples the runtime allocation counters. It stops the world
// briefly; do not call it inside a hot loop, only around one.
func ReadAllocs() AllocSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return AllocSample{Bytes: ms.TotalAlloc, Mallocs: ms.Mallocs}
}

// AllocDelta is the allocation traffic between two samples.
type AllocDelta struct {
	Bytes   uint64
	Mallocs uint64
}

// Sub returns the traffic between an earlier sample old and this one.
func (a AllocSample) Sub(old AllocSample) AllocDelta {
	return AllocDelta{Bytes: a.Bytes - old.Bytes, Mallocs: a.Mallocs - old.Mallocs}
}

// MeasureAllocs runs fn and returns the process-wide allocation traffic it
// caused. Traffic from other goroutines running concurrently is included —
// measure serial regions for exact numbers.
func MeasureAllocs(fn func()) AllocDelta {
	before := ReadAllocs()
	fn()
	return ReadAllocs().Sub(before)
}
