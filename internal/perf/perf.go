// Package perf provides the instrumentation the benchmark harness reports
// with: section timers mirroring the paper's Transpose / FFT / N-S advance
// breakdown, software flop and byte counters standing in for the IBM HPM
// hardware counters of Table 2, and plain-text table rendering.
package perf

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sections partitions run time the way the paper's tables do.
type Sections struct {
	mu        sync.Mutex
	Transpose time.Duration
	FFT       time.Duration
	Advance   time.Duration
	Other     time.Duration
}

// AddTranspose accumulates transpose time (thread-safe).
func (s *Sections) AddTranspose(d time.Duration) { s.add(&s.Transpose, d) }

// AddFFT accumulates FFT time.
func (s *Sections) AddFFT(d time.Duration) { s.add(&s.FFT, d) }

// AddAdvance accumulates Navier-Stokes time-advance time.
func (s *Sections) AddAdvance(d time.Duration) { s.add(&s.Advance, d) }

// AddOther accumulates unclassified time.
func (s *Sections) AddOther(d time.Duration) { s.add(&s.Other, d) }

func (s *Sections) add(dst *time.Duration, d time.Duration) {
	s.mu.Lock()
	*dst += d
	s.mu.Unlock()
}

// Total returns the sum of all sections.
func (s *Sections) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Transpose + s.FFT + s.Advance + s.Other
}

// Counters tallies floating-point operations and memory traffic. The DNS
// kernels report their operation counts here so single-core performance can
// be summarized as in Table 2.
type Counters struct {
	mu    sync.Mutex
	Flops int64
	Bytes int64
}

// AddFlops adds floating-point operations.
func (c *Counters) AddFlops(n int64) {
	c.mu.Lock()
	c.Flops += n
	c.mu.Unlock()
}

// AddBytes adds memory traffic in bytes.
func (c *Counters) AddBytes(n int64) {
	c.mu.Lock()
	c.Bytes += n
	c.mu.Unlock()
}

// GFlops returns the rate over elapsed time.
func (c *Counters) GFlops(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Flops) / elapsed.Seconds() / 1e9
}

// BytesPerSec returns the memory traffic rate.
func (c *Counters) BytesPerSec(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Bytes) / elapsed.Seconds()
}

// Table renders aligned text tables for the benchmark tools.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats with %.4g).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(4, total-2)) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Stopwatch measures named laps; useful in benchmark mains.
type Stopwatch struct {
	start time.Time
	laps  map[string]time.Duration
}

// NewStopwatch starts a stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{start: time.Now(), laps: map[string]time.Duration{}}
}

// Lap records time since the last lap (or start) under the given name.
func (sw *Stopwatch) Lap(name string) time.Duration {
	now := time.Now()
	d := now.Sub(sw.start)
	sw.start = now
	sw.laps[name] += d
	return d
}

// Laps returns the recorded laps sorted by name.
func (sw *Stopwatch) Laps() []struct {
	Name string
	D    time.Duration
} {
	names := make([]string, 0, len(sw.laps))
	for n := range sw.laps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name string
		D    time.Duration
	}, len(names))
	for i, n := range names {
		out[i].Name = n
		out[i].D = sw.laps[n]
	}
	return out
}
