package perf

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSectionsConcurrent(t *testing.T) {
	var s Sections
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.AddTranspose(time.Millisecond)
			s.AddFFT(2 * time.Millisecond)
			s.AddAdvance(3 * time.Millisecond)
		}()
	}
	wg.Wait()
	if s.Total() != 50*6*time.Millisecond {
		t.Errorf("total %v", s.Total())
	}
}

func TestCountersRates(t *testing.T) {
	var c Counters
	c.AddFlops(2e9)
	c.AddBytes(4e9)
	if g := c.GFlops(time.Second); g != 2 {
		t.Errorf("GFlops %g", g)
	}
	if b := c.BytesPerSec(2 * time.Second); b != 2e9 {
		t.Errorf("bytes/s %g", b)
	}
	if c.GFlops(0) != 0 || c.BytesPerSec(-time.Second) != 0 {
		t.Error("zero elapsed must not divide")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 3.14159)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "alpha", "3.142"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestStopwatchLaps(t *testing.T) {
	sw := NewStopwatch()
	sw.Lap("a")
	sw.Lap("b")
	sw.Lap("a")
	laps := sw.Laps()
	if len(laps) != 2 || laps[0].Name != "a" || laps[1].Name != "b" {
		t.Errorf("laps %v", laps)
	}
	if laps[0].D < 0 {
		t.Error("negative lap")
	}
}
