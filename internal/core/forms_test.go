package core

import (
	"math"
	"math/cmplx"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// TestFormsAgreeWhenResolved: for a smooth low-mode divergence-free field
// at generous resolution, the divergence and convective forms of h_g/h_v
// must agree to interpolation accuracy (they are analytically identical).
func TestFormsAgreeWhenResolved(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 48, Nz: 16, ReTau: 100, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.4, 2, 2, 9)

	ny := cfg.Ny
	hgD, hvD := allocCoef(s.nw, ny), allocCoef(s.nw, ny)
	mxD, mzD := make([]float64, ny), make([]float64, ny)
	s.divergenceTerms(hgD, hvD, mxD, mzD)
	hgC, hvC := allocCoef(s.nw, ny), allocCoef(s.nw, ny)
	mxC, mzC := make([]float64, ny), make([]float64, ny)
	s.convectiveTerms(hgC, hvC, mxC, mzC)
	_, _ = mzD, mzC
	maxHg, maxHv, scale := 0.0, 0.0, 0.0
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		for i := range hgD[w] {
			if d := cmplx.Abs(hgD[w][i] - hgC[w][i]); d > maxHg {
				maxHg = d
			}
			if d := cmplx.Abs(hvD[w][i] - hvC[w][i]); d > maxHv {
				maxHv = d
			}
			if a := cmplx.Abs(hvD[w][i]); a > scale {
				scale = a
			}
		}
	}
	if maxHg > 1e-5*scale {
		t.Errorf("h_g forms differ by %g (scale %g)", maxHg, scale)
	}
	if maxHv > 1e-4*scale {
		t.Errorf("h_v forms differ by %g (scale %g)", maxHv, scale)
	}
	// Mean forcing: -<v du/dy> vs -d<uv>/dy agree by parts.
	for i := range mxD {
		if math.Abs(mxD[i]-mxC[i]) > 1e-6*(1+math.Abs(mxD[i])) {
			t.Errorf("mean H_x forms differ at %d: %g vs %g", i, mxD[i], mxC[i])
		}
	}
}

// TestSkewFormEnergyConservation: at numerically zero viscosity the
// skew-symmetric form must conserve energy at least as well as the
// divergence form.
func TestSkewFormEnergyConservation(t *testing.T) {
	run := func(form Form) float64 {
		cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 1e10, Dt: 2e-4,
			Forcing: 0, Nonlinear: form}
		s := serialSolver(t, cfg)
		s.Perturb(0.2, 2, 2, 11)
		e0 := s.TotalEnergy()
		s.Advance(20)
		return math.Abs(s.TotalEnergy()-e0) / e0
	}
	dDiv := run(FormDivergence)
	dSkew := run(FormSkewSymmetric)
	if dSkew > 2e-3 {
		t.Errorf("skew-symmetric drift %g too large", dSkew)
	}
	if dSkew > 5*dDiv+1e-12 {
		t.Errorf("skew drift %g should not be much worse than divergence %g", dSkew, dDiv)
	}
}

// TestConvectiveFormSerialMatchesParallel: the gradient pipeline must be
// decomposition-independent like the product pipeline.
func TestConvectiveFormSerialMatchesParallel(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Nonlinear: FormConvective}
	steps := 3
	ref := map[[2]int][]complex128{}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 77)
		s.Advance(steps)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			ref[[2]int{ikx, ikz}] = append([]complex128(nil), s.cv[w]...)
		}
	})
	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	pcfg.Pool = par.NewPool(2)
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, pcfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 77)
		s.Advance(steps)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			want := ref[[2]int{ikx, ikz}]
			for i := range want {
				if cmplx.Abs(s.cv[w][i]-want[i]) > 1e-12 {
					t.Errorf("mode (%d,%d) coef %d differs", ikx, ikz, i)
					return
				}
			}
		}
	})
}

// TestSkewFormSurvivesMarginalResolution: the regression behind the form
// option — at the marginal Ny where the divergence form blows up through
// wall-normal aliasing during transition, the skew-symmetric form must
// keep the energy budget bounded. Long; skipped with -short.
func TestSkewFormSurvivesMarginalResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("transition run is slow")
	}
	cfg := Config{Nx: 32, Ny: 49, Nz: 32, ReTau: 180, Dt: 4e-4, Forcing: 1,
		Nonlinear: FormSkewSymmetric, Pool: par.NewPool(4)}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLaminar()
		s.Perturb(0.8, 3, 3, 2024)
		e0 := s.TotalEnergy()
		for b := 0; b < 6; b++ {
			s.AdvanceAdaptive(50, 0.8, 5)
			e := s.TotalEnergy()
			if math.IsNaN(e) || e > 3*e0 {
				t.Fatalf("skew form blew up at t=%g: E=%g", s.Time, e)
			}
		}
	})
}

// TestGeneralSolverAblationMatches: the general pivoted banded solver and
// the customized compact solver must produce identical trajectories.
func TestGeneralSolverAblationMatches(t *testing.T) {
	base := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	run := func(cfg Config) [][]complex128 {
		s := serialSolver(t, cfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 5)
		s.Advance(5)
		out := make([][]complex128, s.nw)
		for w := range out {
			out[w] = append([]complex128(nil), s.cv[w]...)
		}
		return out
	}
	a := run(base)
	gcfg := base
	gcfg.UseGeneralSolver = true
	b := run(gcfg)
	for w := range a {
		for i := range a[w] {
			if cmplx.Abs(a[w][i]-b[w][i]) > 1e-9 {
				t.Fatalf("solver backends disagree at mode %d coef %d: %g",
					w, i, cmplx.Abs(a[w][i]-b[w][i]))
			}
		}
	}
}
