package core

import (
	"fmt"

	"channeldns/internal/banded"
)

// bandSolver is the factored-operator interface the time advance uses;
// the customized compact solver is the default, the general pivoted banded
// solver the ablation alternative (Config.UseGeneralSolver).
type bandSolver interface {
	SolveComplex(b []complex128)
	SolveReal(b []float64)
}

// realGB adapts banded.Real: complex right-hand sides go through the
// two-sequential-real-solves workaround of Table 1's "MKL^R" column.
type realGB struct{ m *banded.Real }

func (r realGB) SolveComplex(b []complex128) { r.m.SolveComplexTwoReal(b) }
func (r realGB) SolveReal(b []float64)       { r.m.Solve(b) }

// wnOps caches the factored implicit operators for one wavenumber at one
// time step size: the three substep Helmholtz solves of paper Eq. (3)
// sharing a single matrix structure, the v-recovery operator of Eq. (4),
// and the influence-matrix data that enforces v = v' = 0 at the walls.
type wnOps struct {
	k2 float64
	// lhs[s] = B0 - beta_s*dt*nu*(B2 - k2*B0) with value rows at the walls.
	lhs [3]bandSolver
	// helm = B2 - k2*B0 with value rows at the walls (only for k2 > 0).
	helm bandSolver
	// Influence data per substep: homogeneous v solutions and the inverse
	// influence matrix mapping wall values of phi to wall slopes of v.
	cv1, cv2 [3][]float64
	minv     [3][2][2]float64
}

// fillOperator writes the rows of an implicit operator through set: interior
// rows combine the value/second-derivative collocation rows as
// a0*B0 - a2*B2, and the first and last rows are the wall value rows.
func (s *Solver) fillOperator(set func(i, j int, v float64), a0, a2 float64) {
	ny := s.Cfg.Ny
	deg := s.B.Degree()
	for i := 1; i < ny-1; i++ {
		start, ders := s.B.RowAt(s.grev[i], 2)
		for j := 0; j <= deg; j++ {
			set(i, start+j, a0*ders[0][j]-a2*ders[2][j])
		}
	}
	for j := 0; j <= deg; j++ {
		set(0, s.wall.LowerValStart+j, s.wall.LowerVal[j])
		set(ny-1, s.wall.UpperValStart+j, s.wall.UpperVal[j])
	}
}

// factorOperator materializes a0*B0 - a2*B2 (with wall value rows) in the
// configured backend and factors it.
func (s *Solver) factorOperator(a0, a2 float64) (bandSolver, error) {
	ny := s.Cfg.Ny
	deg := s.B.Degree()
	if s.Cfg.UseGeneralSolver {
		m := banded.NewReal(ny, deg, deg)
		s.fillOperator(m.Set, a0, a2)
		return realGB{m}, m.Factor()
	}
	m := banded.NewCompact(ny, deg)
	s.fillOperator(m.Set, a0, a2)
	return m, m.Factor()
}

// assembleLHS builds B0 - c*(B2 - k2*B0) = (1 + c*k2)*B0 - c*B2 with
// Dirichlet value rows at both walls, factored in the configured backend.
func (s *Solver) assembleLHS(c, k2 float64) (bandSolver, error) {
	return s.factorOperator(1+c*k2, c)
}

// assembleHelm builds B2 - k2*B0 with Dirichlet value rows at both walls,
// i.e. -k2*B0 + B2 = -(k2*B0 - B2): assembled as a0 = -k2, a2 = -1.
func (s *Solver) assembleHelm(k2 float64) (bandSolver, error) {
	return s.factorOperator(-k2, -1)
}

// wallDeriv returns v'(-1) and v'(+1) for a complex coefficient vector.
func (s *Solver) wallDeriv(c []complex128) (lo, hi complex128) {
	for j, a := range s.wall.LowerDer {
		col := s.wall.LowerDerStart + j
		if col >= 0 && col < len(c) {
			lo += complex(a, 0) * c[col]
		}
	}
	for j, a := range s.wall.UpperDer {
		col := s.wall.UpperDerStart + j
		if col >= 0 && col < len(c) {
			hi += complex(a, 0) * c[col]
		}
	}
	return lo, hi
}

func (s *Solver) wallDerivReal(c []float64) (lo, hi float64) {
	for j, a := range s.wall.LowerDer {
		col := s.wall.LowerDerStart + j
		if col >= 0 && col < len(c) {
			lo += a * c[col]
		}
	}
	for j, a := range s.wall.UpperDer {
		col := s.wall.UpperDerStart + j
		if col >= 0 && col < len(c) {
			hi += a * c[col]
		}
	}
	return lo, hi
}

// buildOps (re)builds the per-wavenumber operator cache for time step dt.
func (s *Solver) buildOps(dt float64) {
	s.ops = make([]*wnOps, s.nw)
	s.opsDt = dt
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue // Nyquist never advanced; mean handled separately
		}
		k2 := s.G.K2(ikx, ikz)
		op := &wnOps{k2: k2}
		helm, err := s.assembleHelm(k2)
		if err != nil {
			panic(fmt.Sprintf("core: singular Helmholtz operator k2=%g: %v", k2, err))
		}
		op.helm = helm
		for sub := 0; sub < 3; sub++ {
			c := rkBeta[sub] * dt * s.nu
			lhs, err := s.assembleLHS(c, k2)
			if err != nil {
				panic(fmt.Sprintf("core: singular implicit operator k2=%g: %v", k2, err))
			}
			op.lhs[sub] = lhs
			s.buildInfluence(op, sub)
		}
		s.ops[w] = op
	}
	// Mean-flow implicit operators: B0 - beta*dt*nu*B2 with U(+-1)=0.
	for sub := 0; sub < 3; sub++ {
		c := rkBeta[sub] * dt * s.nu
		m, err := s.assembleLHS(c, 0)
		if err != nil {
			panic(fmt.Sprintf("core: singular mean operator: %v", err))
		}
		s.meanOps[sub] = m
	}
}

// buildInfluence computes the homogeneous influence solutions for substep
// sub: phi_m solves lhs*phi = 0 with phi(wall_m) = 1, then v_m solves
// helm*v = B0*phi_m with v(+-1) = 0. The 2x2 influence matrix maps the
// homogeneous phi wall values to v wall slopes; its inverse corrects the
// provisional solution so that v'(+-1) = 0.
func (s *Solver) buildInfluence(op *wnOps, sub int) {
	ny := s.Cfg.Ny
	solveHom := func(wallRow int) []float64 {
		rhs := make([]float64, ny)
		rhs[wallRow] = 1
		op.lhs[sub].SolveReal(rhs) // rhs now holds phi coefficients
		// v from phi: interior rows get B0*phi values; wall rows 0.
		vals := make([]float64, ny)
		s.b0.MulVec(vals, rhs)
		vals[0], vals[ny-1] = 0, 0
		op.helm.SolveReal(vals)
		return vals
	}
	cv1 := solveHom(0)
	cv2 := solveHom(ny - 1)
	l1, h1 := s.wallDerivReal(cv1)
	l2, h2 := s.wallDerivReal(cv2)
	det := l1*h2 - l2*h1
	if det == 0 {
		panic("core: singular influence matrix")
	}
	op.cv1[sub] = cv1
	op.cv2[sub] = cv2
	op.minv[sub] = [2][2]float64{
		{h2 / det, -l2 / det},
		{-h1 / det, l1 / det},
	}
}

// ensureOps rebuilds the operator cache when the time step changes.
func (s *Solver) ensureOps(dt float64) {
	if s.ops == nil || s.opsDt != dt {
		s.buildOps(dt)
	}
}

// applyHelmValues computes (B2 - k2*B0)*c as collocation values, using tmp
// (length >= len(c)) as scratch so the per-substep hot path allocates
// nothing.
func (s *Solver) applyHelmValues(dst, c []complex128, k2 float64, tmp []complex128) {
	s.b2.MulVecComplex(dst, c)
	s.b0.MulVecComplex(tmp, c)
	ck2 := complex(k2, 0)
	for i := range dst {
		dst[i] -= ck2 * tmp[i]
	}
}
