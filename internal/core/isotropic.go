package core

// Triply-periodic isotropic turbulence: the second registered workload.
// All three directions are Fourier, so the wall-normal B-spline machinery
// disappears entirely — the implicit viscous solve degenerates to a
// diagonal per-mode division and incompressibility is enforced by
// projecting the nonlinear term onto the divergence-free subspace. The
// nonlinear evaluation reuses the channel's pencil substrate unchanged:
// an inverse y FFT brings each locally owned (kx, kz) line to y-physical
// space, the same four global transposes and padded z/x transforms form
// the six dealiased quadratic products, and a forward y FFT (with a
// 2/3-rule truncation in y, where the transposes carry no padding) returns
// them to fully spectral space. Time advance is the same SMR'91 IMEX RK3.
//
// Layout matches the channel solver everywhere: y-pencil state is
// [w][j] with w the local (kx, kz) slot and j the wrapped y mode, so the
// pencil transposes, telemetry instrumentation and checkpoint re-sharding
// all see exactly the shapes they were built for.

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"time"

	"channeldns/internal/ckpt"
	"channeldns/internal/fft"
	"channeldns/internal/field"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// IsoSolver holds the distributed state of an isotropic-turbulence run:
// the three spectral velocity components per locally owned (kx, kz) mode
// column, plus the previous-substep nonlinear terms.
type IsoSolver struct {
	Cfg Config
	G   field.Grid
	D   *pencil.Decomp
	nu  float64

	kxlo, kxhi, kzlo, kzhi int
	nw                     int

	// Spectral velocity, [w][j] over wrapped y modes.
	cu, cv, cw [][]complex128
	// Previous-substep projected nonlinear terms, one set per component.
	hPrev [3][][]complex128

	// Wrapped y wavenumbers and the 2/3-rule dealiasing mask.
	ky     []float64
	kyKeep []bool

	padZ  *fft.PaddedComplex
	padX  *fft.PaddedReal
	planY *fft.Plan

	ws *isoWS

	// Physical |u_i| maxima harvested during the last nonlinear pass.
	physMaxMu      sync.Mutex
	physMax        [3]float64
	physMaxCurrent bool

	tel       *telemetry.Collector
	stepFlops int64
	trc       *trace.Recorder

	Time float64
	Step int
}

type isoWorker struct {
	phys  [3][]float64
	prod  []float64
	xscr  []complex128
	zscr  []complex128
	yline []complex128
}

type isoWS struct {
	velY   [][]complex128 // 3 fields, nw*ny
	zpVel  [][]complex128 // 3 fields, linesZ*nz
	zphys  [][]complex128 // 3 fields, linesZ*mz
	xp     [][]complex128 // 3 fields, linesX*nkx
	prodX  [][]complex128 // nProducts, linesX*nkx
	zpProd [][]complex128 // nProducts, linesZ*mz
	zspec  [][]complex128 // nProducts, linesZ*nz
	prodsY [][]complex128 // nProducts, nw*ny

	// Current-substep nonlinear terms, swapped with IsoSolver.hPrev.
	hCur [3][][]complex128

	workers []isoWorker
}

// NewIsotropic constructs the isotropic workload collectively. Every rank
// of the PA x PB grid must call it with identical configuration.
func NewIsotropic(world *mpi.Comm, cfg Config) (*IsoSolver, error) {
	cfg.fillDefaults()
	cfg.Workload = WorkloadIsotropic
	if cfg.ReTau <= 0 {
		return nil, fmt.Errorf("core: ReTau must be positive, got %g", cfg.ReTau)
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("core: Dt must be positive, got %g", cfg.Dt)
	}
	if cfg.Overlap {
		return nil, fmt.Errorf("core: the isotropic workload runs the serial exchange only (Overlap unsupported)")
	}
	if cfg.Nonlinear != FormDivergence {
		return nil, fmt.Errorf("core: the isotropic workload supports only the divergence form")
	}
	g := field.NewGrid(cfg.Nx, cfg.Ny, cfg.Nz, cfg.Lx, cfg.Lz)
	s := &IsoSolver{
		Cfg: cfg,
		G:   g,
		nu:  1 / cfg.ReTau,
	}

	if cfg.Trace != nil && cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
		s.Cfg.Telemetry = cfg.Telemetry
	}
	if cfg.Telemetry != nil {
		s.tel = cfg.Telemetry.Rank(world.Rank())
		world.SetTelemetry(s.tel)
		s.stepFlops = int64(cfg.IsotropicSchedule().TotalFlops() / float64(world.Size()))
	}
	if cfg.Trace != nil {
		s.trc = cfg.Trace.Rank(world.Rank())
		world.SetTracer(s.trc)
		s.tel.SetTracer(s.trc)
	}
	s.D = pencil.New(world, cfg.PA, cfg.PB, g.NKx(), g.Nz, g.Ny, cfg.Pool)
	s.D.Telemetry = s.tel
	s.D.Trace = s.trc
	s.kxlo, s.kxhi = s.D.KxRange()
	s.kzlo, s.kzhi = s.D.KzRangeY()
	s.nw = (s.kxhi - s.kxlo) * (s.kzhi - s.kzlo)

	ny := cfg.Ny
	s.cu = allocCoef(s.nw, ny)
	s.cv = allocCoef(s.nw, ny)
	s.cw = allocCoef(s.nw, ny)
	for c := range s.hPrev {
		s.hPrev[c] = allocCoef(s.nw, ny)
	}

	s.ky = make([]float64, ny)
	s.kyKeep = make([]bool, ny)
	by := 2 * math.Pi / cfg.Ly
	for j := 0; j < ny; j++ {
		idx := s.kyIndex(j)
		s.ky[j] = by * float64(idx)
		a := idx
		if a < 0 {
			a = -a
		}
		s.kyKeep[j] = 3*a <= ny
	}

	s.padZ = fft.NewPaddedComplex(g.Nz, g.MZ())
	s.padX = fft.NewPaddedReal(g.NKx(), g.MX())
	s.planY = fft.NewPlan(ny)
	s.ws = s.newIsoWorkspace()
	return s, nil
}

// kyIndex returns the signed y mode number of wrap slot j (the even-Ny
// Nyquist slot maps to -Ny/2 and is always dealiased away).
func (s *IsoSolver) kyIndex(j int) int {
	if 2*j < s.Cfg.Ny {
		return j
	}
	return j - s.Cfg.Ny
}

func (s *IsoSolver) newIsoWorkspace() *isoWS {
	ny := s.Cfg.Ny
	g := s.G
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()

	kxloc := s.kxhi - s.kxlo
	yl, yh := s.D.YRange()
	nyLoc := yh - yl
	linesZ := kxloc * nyLoc
	zxl, zxh := s.D.ZRangeX(mz)
	linesX := nyLoc * (zxh - zxl)

	ws := &isoWS{
		velY:   allocFieldsC(3, s.nw*ny),
		zpVel:  allocFieldsC(3, linesZ*nz),
		zphys:  allocFieldsC(3, linesZ*mz),
		xp:     allocFieldsC(3, linesX*nkx),
		prodX:  allocFieldsC(nProducts, linesX*nkx),
		zpProd: allocFieldsC(nProducts, linesZ*mz),
		zspec:  allocFieldsC(nProducts, linesZ*nz),
		prodsY: allocFieldsC(nProducts, s.nw*ny),
	}
	for c := range ws.hCur {
		ws.hCur[c] = allocCoef(s.nw, ny)
	}
	ws.workers = make([]isoWorker, s.pool().Workers())
	for i := range ws.workers {
		w := &ws.workers[i]
		for j := range w.phys {
			w.phys[j] = make([]float64, mx)
		}
		w.prod = make([]float64, mx)
		w.xscr = make([]complex128, s.padX.ScratchLen())
		w.zscr = make([]complex128, s.padZ.ScratchLen())
		w.yline = make([]complex128, ny)
	}
	return ws
}

func (s *IsoSolver) pool() *par.Pool { return s.Cfg.Pool }

// widx maps global mode indices to the local slot, or -1.
func (s *IsoSolver) widx(ikx, ikz int) int {
	if ikx < s.kxlo || ikx >= s.kxhi || ikz < s.kzlo || ikz >= s.kzhi {
		return -1
	}
	return (ikx-s.kxlo)*(s.kzhi-s.kzlo) + (ikz - s.kzlo)
}

// modeOf inverts widx: local slot -> global (ikx, ikz).
func (s *IsoSolver) modeOf(w int) (int, int) {
	nkz := s.kzhi - s.kzlo
	return s.kxlo + w/nkz, s.kzlo + w%nkz
}

// World returns the full communicator backing the process grid.
func (s *IsoSolver) World() *mpi.Comm { return s.D.Cart.Comm }

// Telemetry returns this rank's collector (nil when unset).
func (s *IsoSolver) Telemetry() *telemetry.Collector { return s.tel }

// Nu returns the kinematic viscosity 1/ReTau.
func (s *IsoSolver) Nu() float64 { return s.nu }

// Workload interface accessors.
func (s *IsoSolver) WorkloadName() string { return WorkloadIsotropic }
func (s *IsoSolver) CurrentStep() int     { return s.Step }
func (s *IsoSolver) CurrentTime() float64 { return s.Time }
func (s *IsoSolver) CurrentDt() float64   { return s.Cfg.Dt }

// VelCoef returns one component's spectral column for a locally owned
// (ikx, ikz) mode (nil if not owned). The slice aliases solver state.
func (s *IsoSolver) VelCoef(comp, ikx, ikz int) []complex128 {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return nil
	}
	return [3][][]complex128{s.cu, s.cv, s.cw}[comp][w]
}

// InitDefault seeds a deterministic divergence-free large-scale velocity
// field: unit-magnitude random phases of amplitude amp on every mode with
// |index| <= 2 in each direction, conjugate-paired on the kx = 0 plane and
// projected onto the divergence-free subspace. Reproducible across process
// grids.
func (s *IsoSolver) InitDefault(amp float64, seed int64) {
	const kmax = 2
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || ikx > kmax {
			continue
		}
		kzIdx := s.G.KzIndex(ikz)
		if kzIdx > kmax || kzIdx < -kmax {
			continue
		}
		for j := 0; j < s.Cfg.Ny; j++ {
			kyIdx := s.kyIndex(j)
			if kyIdx > kmax || kyIdx < -kmax || !s.kyKeep[j] {
				continue
			}
			if ikx == 0 && kyIdx == 0 && kzIdx == 0 {
				continue
			}
			var a [3]complex128
			for c := 0; c < 3; c++ {
				if ikx == 0 && (kzIdx < 0 || (kzIdx == 0 && kyIdx < 0)) {
					// Conjugate partner of (0, -ky, -kz): reality.
					a[c] = conj(isoPhase(seed, 0, -kyIdx, -kzIdx, c))
				} else {
					a[c] = isoPhase(seed, ikx, kyIdx, kzIdx, c)
				}
				a[c] *= complex(amp, 0)
			}
			// Project out the compressible part: a -= k (k.a)/k2.
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			kyv := s.ky[j]
			k2 := kx*kx + kyv*kyv + kz*kz
			div := (complex(kx, 0)*a[0] + complex(kyv, 0)*a[1] + complex(kz, 0)*a[2]) / complex(k2, 0)
			s.cu[w][j] = a[0] - complex(kx, 0)*div
			s.cv[w][j] = a[1] - complex(kyv, 0)*div
			s.cw[w][j] = a[2] - complex(kz, 0)*div
		}
	}
}

// isoPhase is a deterministic unit-magnitude complex number keyed by
// (seed, 3-D mode, component).
func isoPhase(seed int64, ikx, kyIdx, kzIdx, comp int) complex128 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(ikx+1)*0xbf58476d1ce4e5b9 +
		uint64(kyIdx+1000)*0x94d049bb133111eb + uint64(kzIdx+2000)*0xd6e8feb86659fd93 +
		uint64(comp+1)*0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	theta := 2 * math.Pi * float64(h%1000003) / 1000003
	sn, cs := math.Sincos(theta)
	return complex(cs, sn)
}

// isoNonlinear fills ws.prodsY with the fully spectral dealiased product
// fields uu, uv, uw, vv, vw, ww of the current state.
func (s *IsoSolver) isoNonlinear() {
	d := s.D
	ws := s.ws
	g := s.G
	ny := s.Cfg.Ny
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()

	// Inverse y FFT: spectral columns -> y-physical lines, per component.
	sp := s.tel.Begin(telemetry.PhaseFFTInverse)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			_, ikz := s.modeOf(w)
			if g.IsNyquistZ(ikz) {
				continue // stays zero
			}
			base := w * ny
			s.planY.Inverse(ws.velY[0][base:base+ny], s.cu[w])
			s.planY.Inverse(ws.velY[1][base:base+ny], s.cv[w])
			s.planY.Inverse(ws.velY[2][base:base+ny], s.cw[w])
		}
	})
	sp.End()

	// y-pencils -> z-pencils, padded inverse z transform.
	d.YtoZ(ws.zpVel, ws.velY)
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := (s.kxhi - s.kxlo) * nyLoc
	sp = s.tel.Begin(telemetry.PhaseFFTInverse)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		scratch := ws.workers[blk].zscr
		for f := 0; f < 3; f++ {
			src, dst := ws.zpVel[f], ws.zphys[f]
			for l := lo; l < hi; l++ {
				s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], src[l*nz:(l+1)*nz], scratch)
			}
		}
	})
	sp.End()

	// z-pencils -> x-pencils, the fused x excursion: inverse transform,
	// pointwise products, forward truncated transform.
	d.ZtoX(ws.xp, ws.zphys, mz)
	zxl, zxh := d.ZRangeX(mz)
	linesX := nyLoc * (zxh - zxl)
	var maxMu sync.Mutex
	var gMax [3]float64
	sp = s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(linesX, func(blk, lo, hi int) {
		w := &ws.workers[blk]
		pu, pv, pw := w.phys[0], w.phys[1], w.phys[2]
		pp := w.prod
		scratch := w.xscr
		var bMax [3]float64
		for l := lo; l < hi; l++ {
			s.padX.InversePaddedScratch(pu, ws.xp[0][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pv, ws.xp[1][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pw, ws.xp[2][l*nkx:(l+1)*nkx], scratch)
			for i := 0; i < mx; i++ {
				bMax[0] = math.Max(bMax[0], math.Abs(pu[i]))
				bMax[1] = math.Max(bMax[1], math.Abs(pv[i]))
				bMax[2] = math.Max(bMax[2], math.Abs(pw[i]))
			}
			forward := func(f int, a, b []float64) {
				for i := 0; i < mx; i++ {
					pp[i] = a[i] * b[i]
				}
				s.padX.ForwardTruncatedScratch(ws.prodX[f][l*nkx:(l+1)*nkx], pp, scratch)
			}
			forward(pUU, pu, pu)
			forward(pUV, pu, pv)
			forward(pUW, pu, pw)
			forward(pVV, pv, pv)
			forward(pVW, pv, pw)
			forward(pWW, pw, pw)
		}
		maxMu.Lock()
		for c := 0; c < 3; c++ {
			gMax[c] = math.Max(gMax[c], bMax[c])
		}
		maxMu.Unlock()
	})
	sp.End()
	s.physMaxMu.Lock()
	s.physMax = gMax
	s.physMaxCurrent = true
	s.physMaxMu.Unlock()

	// Reverse path: x-pencils -> z-pencils, truncated forward z transform,
	// back to y-pencils.
	d.XtoZ(ws.zpProd, ws.prodX, mz)
	sp = s.tel.Begin(telemetry.PhaseFFTForward)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		scratch := ws.workers[blk].zscr
		for f := 0; f < nProducts; f++ {
			src, dst := ws.zpProd[f], ws.zspec[f]
			for l := lo; l < hi; l++ {
				s.padZ.ForwardTruncatedScratch(dst[l*nz:(l+1)*nz], src[l*mz:(l+1)*mz], scratch)
			}
		}
	})
	sp.End()
	d.ZtoY(ws.prodsY, ws.zspec)

	// Forward y FFT with the 2/3-rule truncation, folding in the 1/Ny
	// normalization of the round trip.
	inv := 1 / float64(ny)
	sp = s.tel.Begin(telemetry.PhaseFFTForward)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		yline := ws.workers[blk].yline
		for w := wlo; w < whi; w++ {
			_, ikz := s.modeOf(w)
			if g.IsNyquistZ(ikz) {
				continue
			}
			base := w * ny
			for f := 0; f < nProducts; f++ {
				line := ws.prodsY[f][base : base+ny]
				copy(yline, line)
				s.planY.Forward(line, yline)
				for j := 0; j < ny; j++ {
					if s.kyKeep[j] {
						line[j] *= complex(inv, 0)
					} else {
						line[j] = 0
					}
				}
			}
		}
	})
	sp.End()
}

// isoAdvance assembles the divergence-form nonlinear term from the product
// spectra, projects it divergence-free, stores it for the next substep's
// explicit combination, and performs the diagonal IMEX advance
//
//	u_new = (u*(1 - alpha*dt*nu*k2) + dt*(gamma*N + zeta*N_prev)) / (1 + beta*dt*nu*k2).
//
// The k = 0 mode (no mean flow) and all dealiased slots stay pinned at zero.
func (s *IsoSolver) isoAdvance(sub int, dt float64) {
	sp := s.tel.Begin(telemetry.PhaseViscousSolve)
	ws := s.ws
	g := s.G
	ny := s.Cfg.Ny
	ga := complex(rkGamma[sub], 0)
	ze := complex(rkZeta[sub], 0)
	al := rkAlpha[sub] * dt * s.nu
	be := rkBeta[sub] * dt * s.nu
	cdt := complex(dt, 0)
	nl := !s.Cfg.DisableNonlinear
	iC := complex(0, 1)

	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if g.IsNyquistZ(ikz) {
				continue
			}
			kx, kz := g.Kx(ikx), g.Kz(ikz)
			base := w * ny
			cuw, cvw, cww := s.cu[w], s.cv[w], s.cw[w]
			hu, hv, hw := ws.hCur[0][w], ws.hCur[1][w], ws.hCur[2][w]
			pu, pv, pw := s.hPrev[0][w], s.hPrev[1][w], s.hPrev[2][w]
			for j := 0; j < ny; j++ {
				if !s.kyKeep[j] {
					continue // dealiased slot, stays zero
				}
				kyv := s.ky[j]
				k2 := kx*kx + kyv*kyv + kz*kz
				if k2 == 0 {
					continue // zero mode pinned
				}
				var nu, nv, nw complex128
				if nl {
					ckx, cky, ckz := complex(kx, 0), complex(kyv, 0), complex(kz, 0)
					// N_i = -i k_j (u_j u_i)-hat from the six products.
					nu = -iC * (ckx*ws.prodsY[pUU][base+j] + cky*ws.prodsY[pUV][base+j] + ckz*ws.prodsY[pUW][base+j])
					nv = -iC * (ckx*ws.prodsY[pUV][base+j] + cky*ws.prodsY[pVV][base+j] + ckz*ws.prodsY[pVW][base+j])
					nw = -iC * (ckx*ws.prodsY[pUW][base+j] + cky*ws.prodsY[pVW][base+j] + ckz*ws.prodsY[pWW][base+j])
					// Pressure projection: N -= k (k.N)/k2.
					div := (ckx*nu + cky*nv + ckz*nw) / complex(k2, 0)
					nu -= ckx * div
					nv -= cky * div
					nw -= ckz * div
				}
				hu[j], hv[j], hw[j] = nu, nv, nw
				expl := complex(1-al*k2, 0)
				den := complex(1+be*k2, 0)
				cuw[j] = (cuw[j]*expl + cdt*(ga*nu+ze*pu[j])) / den
				cvw[j] = (cvw[j]*expl + cdt*(ga*nv+ze*pv[j])) / den
				cww[j] = (cww[j]*expl + cdt*(ga*nw+ze*pw[j])) / den
			}
		}
	})
	sp.End()
}

// StepOnce advances the solution by one full time step (three substeps).
func (s *IsoSolver) StepOnce() {
	t0 := time.Now()
	dt := s.Cfg.Dt
	s.trc.BeginStep(int64(s.Step))
	for sub := 0; sub < 3; sub++ {
		s.trc.SetStage(sub)
		if !s.Cfg.DisableNonlinear {
			s.isoNonlinear()
		}
		s.isoAdvance(sub, dt)
		s.hPrev, s.ws.hCur = s.ws.hCur, s.hPrev
	}
	s.trc.SetStage(-1)
	s.trc.EndStep(t0, time.Now())
	s.Time += dt
	s.Step++
	s.tel.StepDone(time.Since(t0))
	s.tel.AddFlops(s.stepFlops)
}

// Advance runs n full time steps.
func (s *IsoSolver) Advance(n int) {
	for i := 0; i < n; i++ {
		s.StepOnce()
	}
}

// AdvanceAdaptive runs n steps with the same deterministic collective dt
// adjustment the channel solver uses. Returns the final dt.
func (s *IsoSolver) AdvanceAdaptive(n int, targetCFL float64, checkEvery int) float64 {
	if targetCFL <= 0 {
		panic("core: targetCFL must be positive")
	}
	if checkEvery < 1 {
		checkEvery = 1
	}
	for i := 0; i < n; i++ {
		if i%checkEvery == 0 {
			cfl := s.CFLEstimate()
			if cfl > 0 {
				scale := targetCFL / cfl
				if scale < 0.9 || scale > 1.5 {
					if scale > 2 {
						scale = 2
					}
					if scale < 0.3 {
						scale = 0.3
					}
					s.Cfg.Dt *= scale
				}
			}
		}
		s.StepOnce()
	}
	return s.Cfg.Dt
}

// CFLEstimate returns a bound on the convective CFL number at the current
// dt: exact physical maxima when a nonlinear pass has run, else the
// triangle-inequality bound from spectral amplitudes. Collective.
func (s *IsoSolver) CFLEstimate() float64 {
	var m [3]float64
	s.physMaxMu.Lock()
	current := s.physMaxCurrent
	m = s.physMax
	s.physMaxMu.Unlock()
	if current {
		r := mpi.Allreduce(s.World(), mpi.OpMax, m[:])
		copy(m[:], r)
	} else {
		for c := range m {
			m[c] = 0
		}
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) {
				continue
			}
			wt := 2.0
			if ikx == 0 {
				wt = 1.0
			}
			for j := 0; j < s.Cfg.Ny; j++ {
				m[0] += wt * cmplx.Abs(s.cu[w][j])
				m[1] += wt * cmplx.Abs(s.cv[w][j])
				m[2] += wt * cmplx.Abs(s.cw[w][j])
			}
		}
		r := mpi.Allreduce(s.World(), mpi.OpSum, m[:])
		copy(m[:], r)
	}
	dx := s.Cfg.Lx / float64(s.G.MX())
	dy := s.Cfg.Ly / float64(s.Cfg.Ny)
	dz := s.Cfg.Lz / float64(s.G.MZ())
	return s.Cfg.Dt * (m[0]/dx + m[1]/dy + m[2]/dz)
}

// TotalEnergy returns the volume-averaged kinetic energy by Parseval:
// (1/2) sum over modes of |u|^2+|v|^2+|w|^2, one-sided kx weighted by two.
// Collective.
func (s *IsoSolver) TotalEnergy() float64 {
	e := 0.0
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) {
			continue
		}
		wt := 2.0
		if ikx == 0 {
			wt = 1.0
		}
		for j := 0; j < s.Cfg.Ny; j++ {
			e += wt * (sq(s.cu[w][j]) + sq(s.cv[w][j]) + sq(s.cw[w][j]))
		}
	}
	return mpi.Allreduce(s.World(), mpi.OpSum, []float64{e})[0] / 2
}

// DivergenceResidual returns the largest |k . u-hat| over all modes — zero
// to rounding for a correctly projected field. Collective.
func (s *IsoSolver) DivergenceResidual() float64 {
	m := 0.0
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) {
			continue
		}
		kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
		for j := 0; j < s.Cfg.Ny; j++ {
			d := complex(kx, 0)*s.cu[w][j] + complex(s.ky[j], 0)*s.cv[w][j] + complex(kz, 0)*s.cw[w][j]
			if a := cmplx.Abs(d); a > m {
				m = a
			}
		}
	}
	return mpi.Allreduce(s.World(), mpi.OpMax, []float64{m})[0]
}

// StatusLine summarizes the run: energy and the spectral divergence
// residual. Collective.
func (s *IsoSolver) StatusLine() string {
	e := s.TotalEnergy()
	div := s.DivergenceResidual()
	return fmt.Sprintf("step %6d  t=%8.4f  E=%10.6f  div=%.2e", s.Step, s.Time, e, div)
}

// CheckpointState returns this rank's state as a ckpt.State aliasing the
// solver's buffers. The base four complex fields carry u, v, w and the
// first previous-substep nonlinear component; the remaining two components
// ride the extended-field block. No mean profiles: the k = 0 mode is zero.
func (s *IsoSolver) CheckpointState() *ckpt.State {
	return &ckpt.State{
		Workload: WorkloadIsotropic,
		Nx:       s.Cfg.Nx, Ny: s.Cfg.Ny, Nz: s.Cfg.Nz, NKx: s.G.NKx(),
		Kxlo: s.kxlo, Kxhi: s.kxhi, Kzlo: s.kzlo, Kzhi: s.kzhi,
		Step: int64(s.Step), Time: s.Time, Dt: s.Cfg.Dt,
		Fingerprint: s.Cfg.Fingerprint(),
		CV:          s.cu, CW: s.cv, HgPrev: s.cw, HvPrev: s.hPrev[0],
		Extra:       [][][]complex128{s.hPrev[1], s.hPrev[2]},
	}
}

func (s *IsoSolver) applyRestored(st *ckpt.State) {
	s.Time, s.Step = st.Time, int(st.Step)
	s.Cfg.Dt = st.Dt
	s.physMaxCurrent = false
}

// NewCheckpointStore builds this rank's handle on a checkpoint directory.
func (s *IsoSolver) NewCheckpointStore(dir string, keep int) *ckpt.Store {
	return ckpt.NewStore(dir, ckpt.WithRetention(keep), ckpt.WithTelemetry(s.tel))
}

// WriteCheckpoint collectively publishes one checkpoint of the state.
func (s *IsoSolver) WriteCheckpoint(store *ckpt.Store, opts ...ckpt.WriteOption) (string, error) {
	return store.Write(s.D.Cart.Comm, s.CheckpointState(), opts...)
}

// RestoreCheckpoint collectively restores the named checkpoint.
func (s *IsoSolver) RestoreCheckpoint(store *ckpt.Store, name string) error {
	st := s.CheckpointState()
	if err := store.Restore(s.D.Cart.Comm, name, st); err != nil {
		return err
	}
	s.applyRestored(st)
	return nil
}

// ResumeLatest collectively restores the newest valid checkpoint.
func (s *IsoSolver) ResumeLatest(store *ckpt.Store) (string, error) {
	st := s.CheckpointState()
	name, err := store.Resume(s.D.Cart.Comm, st)
	if err != nil {
		return "", err
	}
	s.applyRestored(st)
	return name, nil
}
