package core

import (
	"math"
	"math/cmplx"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

func serialSolver(t *testing.T, cfg Config) *Solver {
	t.Helper()
	var s *Solver
	mpi.Run(1, func(c *mpi.Comm) {
		var err error
		s, err = New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	return s
}

// evalC evaluates a complex coefficient vector at y.
func evalC(s *Solver, c []complex128, y float64) complex128 {
	ny := len(c)
	re := make([]float64, ny)
	im := make([]float64, ny)
	for i := range c {
		re[i] = real(c[i])
		im[i] = imag(c[i])
	}
	return complex(s.B.Eval(re, y), s.B.Eval(im, y))
}

// TestPoiseuilleSteadyState: with unit forcing the mean flow must converge
// to U(y) = ReTau*(1-y^2)/2, which is exactly representable in the spline
// space, and then stay there.
func TestPoiseuilleSteadyState(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 1, Dt: 0.02, Forcing: 1}
	s := serialSolver(t, cfg)
	s.Advance(600) // t = 12, slowest decay rate nu*(pi/2)^2 => e^-29
	for i, y := range s.CollocationPoints() {
		want := (1 - y*y) / 2
		got := s.MeanProfile()[i]
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("U(%.3f) = %.8f, want %.8f", y, got, want)
		}
	}
	// Exactness: starting at the parabola, one step must not move it.
	s2 := serialSolver(t, cfg)
	s2.SetLaminar()
	before := s2.MeanProfile()
	s2.Advance(5)
	after := s2.MeanProfile()
	for i := range before {
		if math.Abs(after[i]-before[i]) > 1e-10 {
			t.Errorf("laminar profile drifted at %d: %g -> %g", i, before[i], after[i])
		}
	}
}

// TestStokesDecayOmega: with the nonlinear terms frozen, an omega_y
// eigenmode sin(n*pi*(y+1)/2) at wavenumber k decays at exactly
// nu*(k^2 + (n*pi/2)^2).
func TestStokesDecayOmega(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 32, Nz: 8, ReTau: 1, Dt: 5e-4, Forcing: 0, DisableNonlinear: true}
	s := serialSolver(t, cfg)
	ikx, ikz := 1, 1
	n := 1.0
	s.SetModeOmega(ikx, ikz, func(y float64) complex128 {
		return complex(math.Sin(n*math.Pi*(y+1)/2), 0)
	})
	y0 := 0.0
	a0 := evalC(s, s.OmegaCoef(ikx, ikz), y0)
	steps := 400
	s.Advance(steps)
	a1 := evalC(s, s.OmegaCoef(ikx, ikz), y0)
	T := float64(steps) * cfg.Dt
	k2 := s.G.K2(ikx, ikz)
	lambda := s.Nu() * (k2 + (n*math.Pi/2)*(n*math.Pi/2))
	want := math.Exp(-lambda * T)
	got := cmplx.Abs(a1) / cmplx.Abs(a0)
	if math.Abs(got-want) > 2e-4*want {
		t.Errorf("omega decay ratio %.8f, want %.8f (lambda=%g)", got, want, lambda)
	}
}

// TestVModeSelfConvergence: the full phi/v advance (with influence-matrix
// boundary coupling) must converge with order >= 2 in dt.
func TestVModeSelfConvergence(t *testing.T) {
	run := func(dt float64, steps int) complex128 {
		cfg := Config{Nx: 8, Ny: 24, Nz: 8, ReTau: 2, Dt: dt, Forcing: 0, DisableNonlinear: true}
		s := serialSolver(t, cfg)
		s.SetModeV(1, 1, func(y float64) complex128 {
			q := 1 - y*y
			return complex(q*q, 0.3*q*q*y)
		})
		s.Advance(steps)
		return evalC(s, s.VCoef(1, 1), 0.25)
	}
	T := 0.2
	ref := run(T/512, 512)
	e1 := cmplx.Abs(run(T/16, 16) - ref)
	e2 := cmplx.Abs(run(T/32, 32) - ref)
	order := math.Log2(e1 / e2)
	if order < 1.8 {
		t.Errorf("temporal order %.2f (e1=%g e2=%g), want >= 1.8", order, e1, e2)
	}
}

// TestDivergenceFreeRecovery: for arbitrary (v, omega) state the recovered
// velocities satisfy continuity and the vorticity definition identically.
func TestDivergenceFreeRecovery(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.Perturb(0.7, 3, 3, 42)
	ny := cfg.Ny
	for _, mode := range [][2]int{{1, 0}, {0, 1}, {2, 3}, {3, 14}, {1, 15}} {
		ikx, ikz := mode[0], mode[1]
		u, v, w := s.ModeVelocityValues(ikx, ikz)
		if u == nil {
			t.Fatalf("mode (%d,%d) not local in serial run", ikx, ikz)
		}
		if s.G.IsNyquistZ(ikz) {
			continue
		}
		kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
		vy := make([]complex128, ny)
		om := make([]complex128, ny)
		s.b1.MulVecComplex(vy, s.VCoef(ikx, ikz))
		s.b0.MulVecComplex(om, s.OmegaCoef(ikx, ikz))
		for i := 0; i < ny; i++ {
			div := complex(0, kx)*u[i] + vy[i] + complex(0, kz)*w[i]
			if cmplx.Abs(div) > 1e-11 {
				t.Errorf("mode (%d,%d) point %d: divergence %g", ikx, ikz, i, cmplx.Abs(div))
			}
			curl := complex(0, kz)*u[i] - complex(0, kx)*w[i]
			if cmplx.Abs(curl-om[i]) > 1e-11 {
				t.Errorf("mode (%d,%d) point %d: vorticity mismatch %g", ikx, ikz, i, cmplx.Abs(curl-om[i]))
			}
			_ = v
		}
	}
}

// TestBoundaryConditionsAfterSteps: after nonlinear time stepping, v, v'
// and omega must still vanish at the walls to solver precision.
func TestBoundaryConditionsAfterSteps(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.5, 2, 2, 7)
	s.Advance(10)
	if r := s.BCResidual(); r > 1e-9 {
		t.Errorf("BC residual %g after 10 steps", r)
	}
	if e := s.TotalEnergy(); math.IsNaN(e) || math.IsInf(e, 0) || e <= 0 {
		t.Errorf("bad total energy %g", e)
	}
}

// TestEnergyDecaysWithoutForcing: with no forcing and no mean flow, viscosity
// must drain the perturbation energy monotonically.
func TestEnergyDecaysWithoutForcing(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 10, Dt: 2e-3, Forcing: 0}
	s := serialSolver(t, cfg)
	s.Perturb(0.3, 2, 2, 3)
	prev := s.TotalEnergy()
	for i := 0; i < 5; i++ {
		s.Advance(10)
		e := s.TotalEnergy()
		if e >= prev {
			t.Errorf("energy did not decay: %g -> %g at block %d", prev, e, i)
		}
		prev = e
	}
}

// TestNonlinearEnergyConservation: at (numerically) zero viscosity and no
// forcing, the divergence-form convective terms conserve energy; drift over
// a short run must be small.
func TestNonlinearEnergyConservation(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 1e10, Dt: 2e-4, Forcing: 0}
	s := serialSolver(t, cfg)
	s.Perturb(0.2, 2, 2, 11)
	e0 := s.TotalEnergy()
	s.Advance(20)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / e0
	if drift > 2e-3 {
		t.Errorf("inviscid energy drift %.2e over 20 steps", drift)
	}
}

// TestHermitianSymmetryPreserved: conjugate pairs on the kx = 0 plane stay
// conjugate through nonlinear time stepping (reality of the physical field).
func TestHermitianSymmetryPreserved(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.4, 2, 4, 5)
	s.Advance(8)
	for kz := 1; kz < cfg.Nz/2; kz++ {
		kzc := s.G.ConjIndexZ(kz)
		a := s.VCoef(0, kz)
		b := s.VCoef(0, kzc)
		for i := range a {
			if cmplx.Abs(a[i]-complex(real(b[i]), -imag(b[i]))) > 1e-10 {
				t.Fatalf("kz=%d coef %d: Hermitian symmetry broken: %v vs %v", kz, i, a[i], b[i])
			}
		}
	}
}

// TestSerialMatchesParallel: the same initial condition advanced on 1 rank
// and on a 2x2 grid (with threading) must produce identical states.
func TestSerialMatchesParallel(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	steps := 4

	type modeState struct {
		ikx, ikz int
		cv, cw   []complex128
	}
	collect := func(s *Solver) []modeState {
		var out []modeState
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			out = append(out, modeState{ikx, ikz,
				append([]complex128(nil), s.cv[w]...),
				append([]complex128(nil), s.cw[w]...)})
		}
		return out
	}

	ref := map[[2]int]modeState{}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 99)
		s.Advance(steps)
		for _, m := range collect(s) {
			ref[[2]int{m.ikx, m.ikz}] = m
		}
	})

	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	pcfg.Pool = par.NewPool(2)
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, pcfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 99)
		s.Advance(steps)
		for _, m := range collect(s) {
			want, ok := ref[[2]int{m.ikx, m.ikz}]
			if !ok {
				t.Errorf("mode (%d,%d) missing from serial reference", m.ikx, m.ikz)
				continue
			}
			for i := range m.cv {
				if cmplx.Abs(m.cv[i]-want.cv[i]) > 1e-12 {
					t.Errorf("mode (%d,%d) cv[%d]: parallel %v serial %v", m.ikx, m.ikz, i, m.cv[i], want.cv[i])
					return
				}
				if cmplx.Abs(m.cw[i]-want.cw[i]) > 1e-12 {
					t.Errorf("mode (%d,%d) cw[%d]: parallel %v serial %v", m.ikx, m.ikz, i, m.cw[i], want.cw[i])
					return
				}
			}
		}
	})
}

// TestMeanMomentumBalance: in statistically steady conditions the friction
// velocity tends toward 1; over a short laminar startup the bulk velocity
// must grow under forcing.
func TestMeanMomentumBalance(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	ub0 := s.BulkVelocity()
	s.Advance(50)
	ub1 := s.BulkVelocity()
	if ub1 <= ub0 {
		t.Errorf("bulk velocity did not grow under forcing: %g -> %g", ub0, ub1)
	}
	// Growth rate at startup: dUb/dt = F = 1 (no wall stress yet at t=0+).
	rate := (ub1 - ub0) / (50 * cfg.Dt)
	if rate < 0.8 || rate > 1.05 {
		t.Errorf("startup acceleration %.3f, want about 1", rate)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nx: 8, Ny: 16, Nz: 8, ReTau: 0, Dt: 0.1},
		{Nx: 8, Ny: 16, Nz: 8, ReTau: 100, Dt: 0},
		{Nx: 8, Ny: 4, Nz: 8, ReTau: 100, Dt: 0.1}, // Ny too small for degree 7
	}
	for i, cfg := range bad {
		mpi.Run(1, func(c *mpi.Comm) {
			if _, err := New(c, cfg); err == nil {
				t.Errorf("config %d: expected error", i)
			}
		})
	}
}
