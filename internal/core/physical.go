package core

import "fmt"

// Physical-space extraction for visualization (paper Figures 7 and 8).
// These helpers run on a single-rank solver: they evaluate the spectral
// state on one wall-parallel plane and inverse transform it onto the
// dealiased MX x MZ physical grid.

// PhysicalComponent selects the field extracted by PhysicalPlane.
type PhysicalComponent int

// Extractable fields.
const (
	CompU      PhysicalComponent = iota // streamwise velocity
	CompV                               // wall-normal velocity
	CompW                               // spanwise velocity
	CompOmegaZ                          // spanwise vorticity dv/dx - du/dy
)

// PhysicalPlane evaluates the chosen component on the physical grid at
// collocation index yi and returns it as plane[z][x] with dimensions
// MZ x MX. It requires a single-rank solver (PA = PB = 1).
func (s *Solver) PhysicalPlane(comp PhysicalComponent, yi int) [][]float64 {
	if s.D.PA != 1 || s.D.PB != 1 {
		panic("core: PhysicalPlane requires a single-rank solver")
	}
	if yi < 0 || yi >= s.Cfg.Ny {
		panic(fmt.Sprintf("core: collocation index %d out of range", yi))
	}
	g := s.G
	ny := s.Cfg.Ny
	nkx, nz := g.NKx(), g.Nz
	mx, mz := g.MX(), g.MZ()

	// Spectral plane spec[kx][kz] of the component at yi.
	spec := make([]complex128, nkx*nz)
	vy := make([]complex128, ny)
	vyy := make([]complex128, ny)
	om := make([]complex128, ny)
	omy := make([]complex128, ny)
	vv := make([]complex128, ny)
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if g.IsNyquistZ(ikz) {
			continue
		}
		var val complex128
		if ikx == 0 && ikz == 0 {
			switch comp {
			case CompU:
				u := make([]float64, ny)
				s.b0.MulVec(u, s.meanU)
				val = complex(u[yi], 0)
			case CompW:
				wv := make([]float64, ny)
				s.b0.MulVec(wv, s.meanW)
				val = complex(wv[yi], 0)
			case CompOmegaZ:
				// -dU/dy for the mean.
				du := make([]float64, ny)
				s.b1.MulVec(du, s.meanU)
				val = complex(-du[yi], 0)
			}
		} else {
			kx, kz := g.Kx(ikx), g.Kz(ikz)
			k2 := kx*kx + kz*kz
			switch comp {
			case CompV:
				s.b0.MulVecComplex(vv, s.cv[w])
				val = vv[yi]
			case CompU, CompW:
				s.b1.MulVecComplex(vy, s.cv[w])
				s.b0.MulVecComplex(om, s.cw[w])
				if comp == CompU {
					val = complex(0, kx/k2)*vy[yi] - complex(0, kz/k2)*om[yi]
				} else {
					val = complex(0, kz/k2)*vy[yi] + complex(0, kx/k2)*om[yi]
				}
			case CompOmegaZ:
				// omega_z = i*kx*v - du/dy, du/dy = (i*kx*v'' - i*kz*om')/k2.
				s.b0.MulVecComplex(vv, s.cv[w])
				s.b2.MulVecComplex(vyy, s.cv[w])
				s.b1.MulVecComplex(omy, s.cw[w])
				duy := complex(0, kx/k2)*vyy[yi] - complex(0, kz/k2)*omy[yi]
				val = complex(0, kx)*vv[yi] - duy
			}
		}
		spec[ikx*nz+ikz] = val
	}

	// Inverse transform: z first (per kx line), then x (per z line).
	zline := make([]complex128, nz)
	zphys := make([]complex128, nkx*mz)
	for ikx := 0; ikx < nkx; ikx++ {
		copy(zline, spec[ikx*nz:(ikx+1)*nz])
		s.padZ.InversePadded(zphys[ikx*mz:(ikx+1)*mz], zline)
	}
	plane := make([][]float64, mz)
	xline := make([]complex128, nkx)
	for z := 0; z < mz; z++ {
		plane[z] = make([]float64, mx)
		for ikx := 0; ikx < nkx; ikx++ {
			xline[ikx] = zphys[ikx*mz+z]
		}
		s.padX.InversePadded(plane[z], xline)
	}
	return plane
}
