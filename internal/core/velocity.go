package core

import (
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
)

// Velocity recovery (paper §2.1): for each nonzero wavenumber the
// horizontal velocities follow from continuity and the definition of the
// wall-normal vorticity,
//
//	i*kx*u + i*kz*w = -dv/dy
//	i*kz*u - i*kx*w = omega_y
//
// giving u = (i*kx*v_y - i*kz*omega)/k2 and w = (i*kz*v_y + i*kx*omega)/k2.
// The kx = kz = 0 mode is the mean flow (U, W) carried separately.

// velocityValues evaluates the three velocity components at the collocation
// points for every locally owned mode, in the y-pencil layout
// [kxLoc][kzLoc][Ny] expected by the pencil transposes. Returns {u, v, w},
// backed by the arena's velocity buffers.
func (s *Solver) velocityValues() [][]complex128 {
	sp := s.tel.Begin(telemetry.PhasePressure)
	ny := s.Cfg.Ny
	ws := s.ws
	out := ws.velY[:3]
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		vy := wk.ln[0]
		om := wk.ln[1]
		vv := wk.ln[2]
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			base := w * ny
			if s.G.IsNyquistZ(ikz) {
				continue // stays zero
			}
			if ikx == 0 && ikz == 0 {
				if s.ownsMean {
					uvals := wk.rl[0]
					wvals := wk.rl[1]
					s.b0.MulVec(uvals, s.meanU)
					s.b0.MulVec(wvals, s.meanW)
					for i := 0; i < ny; i++ {
						out[0][base+i] = complex(uvals[i], 0)
						out[2][base+i] = complex(wvals[i], 0)
					}
				}
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			s.b1.MulVecComplex(vy, s.cv[w])
			s.b0.MulVecComplex(om, s.cw[w])
			s.b0.MulVecComplex(vv, s.cv[w])
			ikxC := complex(0, kx/k2)
			ikzC := complex(0, kz/k2)
			for i := 0; i < ny; i++ {
				out[0][base+i] = ikxC*vy[i] - ikzC*om[i]
				out[1][base+i] = vv[i]
				out[2][base+i] = ikzC*vy[i] + ikxC*om[i]
			}
		}
	})
	sp.End()
	return out
}

// ModeVelocityValues returns the velocity component values at the
// collocation points for one locally owned mode (nil if not owned). Used by
// statistics and tests.
func (s *Solver) ModeVelocityValues(ikx, ikz int) (u, v, w []complex128) {
	wi := s.widx(ikx, ikz)
	if wi < 0 {
		return nil, nil, nil
	}
	ny := s.Cfg.Ny
	u = make([]complex128, ny)
	v = make([]complex128, ny)
	w = make([]complex128, ny)
	if s.G.IsNyquistZ(ikz) {
		return u, v, w
	}
	if ikx == 0 && ikz == 0 {
		if s.ownsMean {
			uvals := make([]float64, ny)
			wvals := make([]float64, ny)
			s.b0.MulVec(uvals, s.meanU)
			s.b0.MulVec(wvals, s.meanW)
			for i := range uvals {
				u[i] = complex(uvals[i], 0)
				w[i] = complex(wvals[i], 0)
			}
		}
		return u, v, w
	}
	kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
	k2 := kx*kx + kz*kz
	vy := make([]complex128, ny)
	om := make([]complex128, ny)
	s.b1.MulVecComplex(vy, s.cv[wi])
	s.b0.MulVecComplex(om, s.cw[wi])
	s.b0.MulVecComplex(v, s.cv[wi])
	ikxC := complex(0, kx/k2)
	ikzC := complex(0, kz/k2)
	for i := 0; i < ny; i++ {
		u[i] = ikxC*vy[i] - ikzC*om[i]
		w[i] = ikzC*vy[i] + ikxC*om[i]
	}
	return u, v, w
}

// ModeVelocityGradValues returns the wall-normal derivatives of the
// velocity components at the collocation points for one locally owned mode
// (nil if not owned): du/dy, dv/dy, dw/dy. Used by the TKE budget.
func (s *Solver) ModeVelocityGradValues(ikx, ikz int) (uy, vy, wy []complex128) {
	wi := s.widx(ikx, ikz)
	if wi < 0 {
		return nil, nil, nil
	}
	ny := s.Cfg.Ny
	uy = make([]complex128, ny)
	vy = make([]complex128, ny)
	wy = make([]complex128, ny)
	if s.G.IsNyquistZ(ikz) {
		return uy, vy, wy
	}
	if ikx == 0 && ikz == 0 {
		if s.ownsMean {
			du := make([]float64, ny)
			dw := make([]float64, ny)
			s.b1.MulVec(du, s.meanU)
			s.b1.MulVec(dw, s.meanW)
			for i := range du {
				uy[i] = complex(du[i], 0)
				wy[i] = complex(dw[i], 0)
			}
		}
		return uy, vy, wy
	}
	kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
	k2 := kx*kx + kz*kz
	vyy := make([]complex128, ny)
	omy := make([]complex128, ny)
	s.b1.MulVecComplex(vy, s.cv[wi])
	s.b2.MulVecComplex(vyy, s.cv[wi])
	s.b1.MulVecComplex(omy, s.cw[wi])
	ikxC := complex(0, kx/k2)
	ikzC := complex(0, kz/k2)
	for i := 0; i < ny; i++ {
		uy[i] = ikxC*vyy[i] - ikzC*omy[i]
		wy[i] = ikzC*vyy[i] + ikxC*omy[i]
	}
	return uy, vy, wy
}

// MeanShear returns dU/dy at the collocation points, broadcast to all ranks.
func (s *Solver) MeanShear() []float64 {
	ny := s.Cfg.Ny
	vals := make([]float64, ny)
	if s.ownsMean {
		s.b1.MulVec(vals, s.meanU)
	}
	return mpi.Bcast(s.World(), 0, vals)
}

// SecondDerivativeValues maps a profile of collocation values to the values
// of its second derivative (interpolate, then differentiate the spline).
func (s *Solver) SecondDerivativeValues(vals []float64) []float64 {
	c := s.B.Interpolate(vals)
	out := make([]float64, len(vals))
	s.b2.MulVec(out, c)
	return out
}

// pool returns the worker pool; a nil *par.Pool runs serially.
func (s *Solver) pool() *par.Pool { return s.Cfg.Pool }
