package core

import (
	"bytes"
	"testing"

	"channeldns/internal/mpi"
)

// TestLoadCheckpointPreservesBufferIdentity: restoring must copy decoded
// values INTO the solver's existing workspace-arena-backed buffers, not
// swap in freshly allocated slices. The seed assigned the decoder's output
// straight to s.cv/s.cw, silently orphaning the arena and reintroducing
// steady-state allocations after every restart.
func TestLoadCheckpointPreservesBufferIdentity(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.3, 2, 2, 5)
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := serialSolver(t, cfg)
	before := [][]complex128{s2.cv[0], s2.cw[0], s2.hgPrev[0], s2.hvPrev[0]}
	meanBefore := s2.meanU
	if err := s2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	after := [][]complex128{s2.cv[0], s2.cw[0], s2.hgPrev[0], s2.hvPrev[0]}
	for i := range before {
		if &before[i][0] != &after[i][0] {
			t.Errorf("field %d: restore replaced the buffer instead of copying into it", i)
		}
	}
	if &meanBefore[0] != &s2.meanU[0] {
		t.Error("restore replaced the mean profile buffer")
	}
	// And the copied-into buffers must carry the checkpointed values.
	for i := range s.cv[0] {
		if s2.cv[0][i] != s.cv[0][i] {
			t.Fatalf("cv[0][%d] = %v, want %v", i, s2.cv[0][i], s.cv[0][i])
		}
	}
}

// TestRestoredSolverStaysWithinAllocBudget: the acceptance bar for the
// aliasing fix — a solver restored from a checkpoint (through the full
// store path) must run its warm RK3 step within the same steady-state
// allocation budget as a cold one.
func TestRestoredSolverStaysWithinAllocBudget(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	dir := t.TempDir()
	var s2 *Solver
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.2, 2, 2, 13)
		s.Advance(2)
		store := s.NewCheckpointStore(dir, 0)
		if _, err := s.WriteCheckpoint(store); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if s2, err = New(c, cfg); err != nil {
			t.Error(err)
			return
		}
		if _, err := s2.ResumeLatest(s2.NewCheckpointStore(dir, 0)); err != nil {
			t.Errorf("resume: %v", err)
		}
	})
	if t.Failed() {
		return
	}
	s2.Advance(2) // warm up plans and operator caches post-restore
	allocs := testing.AllocsPerRun(5, func() { s2.StepOnce() })
	if allocs > stepAllocBudget {
		t.Errorf("restored solver StepOnce: %v allocs per step, budget %d", allocs, stepAllocBudget)
	}
	t.Logf("restored solver StepOnce: %v allocs per step (budget %d)", allocs, stepAllocBudget)
}

// TestConfigFingerprint: identity-defining fields move the fingerprint,
// deployment knobs (process grid, time step) do not — that is what lets a
// checkpoint restore onto a different rank count or an adaptively
// adjusted Dt while still rejecting a physically different run.
func TestConfigFingerprint(t *testing.T) {
	base := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	fp := base.Fingerprint()
	if fp != base.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	same := base
	same.PA, same.PB = 2, 2
	same.Dt = 5e-4
	if same.Fingerprint() != fp {
		t.Error("process grid / Dt changed the fingerprint; checkpoints could not move across rank counts")
	}
	for name, mutate := range map[string]func(*Config){
		"Nx":      func(c *Config) { c.Nx = 32 },
		"ReTau":   func(c *Config) { c.ReTau = 550 },
		"Forcing": func(c *Config) { c.Forcing = 0 },
		"Degree":  func(c *Config) { c.Degree = 5 },
		"Form":    func(c *Config) { c.Nonlinear = FormSkewSymmetric },
	} {
		diff := base
		mutate(&diff)
		if diff.Fingerprint() == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	// The explicit default must fingerprint identically to the zero value
	// it fills in (a checkpoint from a defaulted run restores either way).
	expl := base
	expl.Degree = 7
	if expl.Fingerprint() != fp {
		t.Error("explicit default Degree fingerprints differently from the implicit one")
	}
}
