package core

import (
	"channeldns/internal/pencil"
	"channeldns/internal/schedule"
)

// Schedule returns the declarative op list of one RK3 timestep as this
// solver executes it: three substeps of the §2.3 transpose/FFT pipeline
// with the six independent quadratic products (uu, uv, uw, vv, vw, ww) of
// the divergence form carried through the forward path, Nyquist-dropped
// one-sided x modes, and 4-pass pack/unpack around every transpose. The
// convective and skew-symmetric forms move different forward-path traffic
// and are not described; the bench tools and the solver's flop accounting
// use the default divergence form. With Overlap set, the forward-path
// transposes are emitted as chunked Overlap ops fused with the FFT stages
// they hide under, with the same per-direction pipeline depths the live
// decomposition uses.
func (c Config) Schedule() *schedule.Schedule {
	c.fillDefaults()
	var ca, cb int
	if c.Overlap {
		ca, cb = pencil.OverlapChunksFor(c.Nx/2, c.Ny, c.PA, c.PB, c.PipelineChunks)
	}
	return schedule.Timestep(schedule.TimestepParams{
		Nx: c.Nx, Ny: c.Ny, Nz: c.Nz,
		PA: c.PA, PB: c.PB,
		Products:   nProducts,
		PackPasses: 4,
		ChunksA:    ca, ChunksB: cb,
	})
}

// IsotropicSchedule returns the declarative op list of one RK3 timestep of
// the isotropic-turbulence workload: the channel's transpose/FFT pipeline
// bracketed by y-direction FFTs, with a diagonal per-mode projection +
// advance in place of the banded wall-normal solve. The workload runs the
// serial exchange only (no overlap form).
func (c Config) IsotropicSchedule() *schedule.Schedule {
	c.fillDefaults()
	return schedule.IsotropicTimestep(schedule.TimestepParams{
		Nx: c.Nx, Ny: c.Ny, Nz: c.Nz,
		PA: c.PA, PB: c.PB,
		Products:   nProducts,
		PackPasses: 4,
	})
}

// ScalarSchedule returns the declarative op list of one RK3 timestep of
// the passive-scalar workload: the full channel timestep plus the scalar
// advection excursion (4 fields out, 3 flux products back) and the scalar's
// banded implicit solve per substep. Serial exchange only.
func (c Config) ScalarSchedule() *schedule.Schedule {
	c.fillDefaults()
	return schedule.ScalarTimestep(schedule.TimestepParams{
		Nx: c.Nx, Ny: c.Ny, Nz: c.Nz,
		PA: c.PA, PB: c.PB,
		Products:   nProducts,
		PackPasses: 4,
	})
}
