package core

import (
	"sync"

	"channeldns/internal/banded"
	"channeldns/internal/bspline"
	"channeldns/internal/fft"
	"channeldns/internal/field"
	"channeldns/internal/mpi"
	"channeldns/internal/pencil"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// Solver holds the distributed state of a channel DNS: B-spline coefficients
// of the wall-normal velocity v and wall-normal vorticity omega_y for every
// locally owned Fourier mode (y-pencil configuration), plus the mean-flow
// profiles on the rank that owns the (0,0) mode.
type Solver struct {
	Cfg  Config
	G    field.Grid
	D    *pencil.Decomp
	B    *bspline.Basis
	grev []float64
	nu   float64

	// Collocation operators (unfactored, used as matvecs) and the factored
	// interpolation matrix shared by every wavenumber.
	b0, b1, b2 *banded.Real
	b0fac      *banded.Compact
	wall       bspline.WallRows

	// Local wavenumber window (y-pencil): one-sided kx and wrapped kz.
	kxlo, kxhi, kzlo, kzhi int
	nw                     int // (kxhi-kxlo)*(kzhi-kzlo)

	// State: spline coefficients per local wavenumber.
	cv, cw [][]complex128
	// Previous-substep nonlinear terms (collocation values).
	hgPrev, hvPrev [][]complex128

	// Mean flow (only meaningful on the owner of kx=kz=0).
	ownsMean               bool
	meanU, meanW           []float64 // spline coefficients
	meanHxPrev, meanHzPrev []float64

	// Per-wavenumber factored operators, built lazily for the current Dt.
	ops     []*wnOps
	opsDt   float64
	meanOps [3]bandSolver

	// Fused dealiasing transforms.
	padZ *fft.PaddedComplex
	padX *fft.PaddedReal

	// Steady-state workspace arena (see workspace.go).
	ws *solverWS

	// Per-y maxima of |u|, |v|, |w| on the physical grid, harvested for
	// free during the most recent nonlinear evaluation (local to this
	// rank's y range; zero elsewhere). Used by CFLEstimate.
	physMaxMu      sync.Mutex
	physMaxU       []float64
	physMaxV       []float64
	physMaxW       []float64
	physMaxCurrent bool

	// Pipelined nonlinear-path hooks, bound once at construction so the
	// overlapped transposes hand completed chunk-axis line ranges to the
	// FFT stages without per-step closure allocation (see nonlinear.go).
	nlZInvFn, nlXFn, nlZFwdFn    func(lo, hi int)
	nlZInvBlk, nlXBlk, nlZFwdBlk func(blk, lo, hi int)
	nlLineOff                    int // first line of the current consume range
	nlYLo, nlYSpan               int // y window of the current forward-z range
	nlMaxMu                      sync.Mutex

	// tel is this rank's telemetry collector (nil when Config.Telemetry is
	// unset — every recording call is then a no-op); stepFlops is this
	// rank's share of the machine model's per-step operation count,
	// credited once per StepOnce.
	tel       *telemetry.Collector
	stepFlops int64
	// trc is this rank's flight recorder (nil when Config.Trace is unset).
	trc *trace.Recorder

	Time float64
	Step int
}

// New constructs a solver collectively on the world communicator. Every
// rank of the PA x PB grid must call it with identical configuration.
func New(world *mpi.Comm, cfg Config) (*Solver, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := field.NewGrid(cfg.Nx, cfg.Ny, cfg.Nz, cfg.Lx, cfg.Lz)
	s := &Solver{
		Cfg: cfg,
		G:   g,
		nu:  1 / cfg.ReTau,
		B:   bspline.NewFromBreakpoints(cfg.Degree, bspline.ChannelBreakpoints(cfg.Ny-cfg.Degree, cfg.Stretch)),
	}
	if s.B.NumBasis() != cfg.Ny {
		panic("core: basis size mismatch")
	}
	s.grev = s.B.Greville()
	s.b0 = s.B.CollocationMatrix(s.grev, 0)
	s.b1 = s.B.CollocationMatrix(s.grev, 1)
	s.b2 = s.B.CollocationMatrix(s.grev, 2)
	s.wall = s.B.WallRows()
	s.b0fac = compactFromRows(s.B, s.grev, func(i int, row0, row1, row2 []float64) []float64 {
		return row0
	})
	if err := s.b0fac.Factor(); err != nil {
		return nil, err
	}

	if cfg.Trace != nil && cfg.Telemetry == nil {
		// Phase events piggyback on telemetry spans, so tracing needs a
		// collector even when the caller did not ask for aggregates.
		cfg.Telemetry = telemetry.NewRegistry()
		s.Cfg.Telemetry = cfg.Telemetry
	}
	if cfg.Telemetry != nil {
		s.tel = cfg.Telemetry.Rank(world.Rank())
		// Attach before the cartesian splits below so CommA/CommB inherit
		// the collector for their collective instrumentation.
		world.SetTelemetry(s.tel)
		// Flop accounting comes from the same schedule that describes the
		// step's operations, divided evenly across ranks.
		s.stepFlops = int64(cfg.Schedule().TotalFlops() / float64(world.Size()))
	}
	if cfg.Trace != nil {
		s.trc = cfg.Trace.Rank(world.Rank())
		// Same pre-split attach, so the sub-communicators inherit the
		// recorder for their per-peer exchange events.
		world.SetTracer(s.trc)
		s.tel.SetTracer(s.trc)
	}
	s.D = pencil.New(world, cfg.PA, cfg.PB, g.NKx(), g.Nz, g.Ny, cfg.Pool)
	s.D.Telemetry = s.tel
	s.D.Trace = s.trc
	s.D.Overlap = cfg.Overlap
	s.D.PipelineChunks = cfg.PipelineChunks
	s.kxlo, s.kxhi = s.D.KxRange()
	s.kzlo, s.kzhi = s.D.KzRangeY()
	s.nw = (s.kxhi - s.kxlo) * (s.kzhi - s.kzlo)

	s.cv = allocCoef(s.nw, cfg.Ny)
	s.cw = allocCoef(s.nw, cfg.Ny)
	s.hgPrev = allocCoef(s.nw, cfg.Ny)
	s.hvPrev = allocCoef(s.nw, cfg.Ny)

	s.ownsMean = s.kxlo == 0 && s.kzlo == 0
	if s.ownsMean {
		s.meanU = make([]float64, cfg.Ny)
		s.meanW = make([]float64, cfg.Ny)
		s.meanHxPrev = make([]float64, cfg.Ny)
		s.meanHzPrev = make([]float64, cfg.Ny)
	}

	s.padZ = fft.NewPaddedComplex(g.Nz, g.MZ())
	s.padX = fft.NewPaddedReal(g.NKx(), g.MX())
	s.physMaxU = make([]float64, cfg.Ny)
	s.physMaxV = make([]float64, cfg.Ny)
	s.physMaxW = make([]float64, cfg.Ny)
	s.ws = s.newWorkspace()
	s.nlZInvFn = s.consumeNLZInv
	s.nlXFn = s.consumeNLX
	s.nlZFwdFn = s.consumeNLZFwd
	s.nlZInvBlk = s.nlZInvBlock
	s.nlXBlk = s.nlXBlock
	s.nlZFwdBlk = s.nlZFwdBlock
	return s, nil
}

func allocCoef(nw, ny int) [][]complex128 {
	out := make([][]complex128, nw)
	for i := range out {
		out[i] = make([]complex128, ny)
	}
	return out
}

// widx maps global mode indices to the local wavenumber slot, or -1.
func (s *Solver) widx(ikx, ikz int) int {
	if ikx < s.kxlo || ikx >= s.kxhi || ikz < s.kzlo || ikz >= s.kzhi {
		return -1
	}
	return (ikx-s.kxlo)*(s.kzhi-s.kzlo) + (ikz - s.kzlo)
}

// modeOf inverts widx: local slot -> global (ikx, ikz).
func (s *Solver) modeOf(w int) (int, int) {
	nkz := s.kzhi - s.kzlo
	return s.kxlo + w/nkz, s.kzlo + w%nkz
}

// OwnsMean reports whether this rank holds the kx=kz=0 mean-flow state.
func (s *Solver) OwnsMean() bool { return s.ownsMean }

// Telemetry returns this rank's collector (nil when Config.Telemetry was
// not set).
func (s *Solver) Telemetry() *telemetry.Collector { return s.tel }

// Basis returns the wall-normal B-spline basis.
func (s *Solver) Basis() *bspline.Basis { return s.B }

// CollocationPoints returns the Greville collocation points in y.
func (s *Solver) CollocationPoints() []float64 { return s.grev }

// Nu returns the kinematic viscosity 1/ReTau.
func (s *Solver) Nu() float64 { return s.nu }

// VCoef returns the spline coefficients of v-hat for a locally owned mode,
// or nil. The slice aliases solver state.
func (s *Solver) VCoef(ikx, ikz int) []complex128 {
	if w := s.widx(ikx, ikz); w >= 0 {
		return s.cv[w]
	}
	return nil
}

// OmegaCoef returns the spline coefficients of omega_y-hat for a locally
// owned mode, or nil. The slice aliases solver state.
func (s *Solver) OmegaCoef(ikx, ikz int) []complex128 {
	if w := s.widx(ikx, ikz); w >= 0 {
		return s.cw[w]
	}
	return nil
}

// MeanUCoef returns the spline coefficients of the mean streamwise profile
// (owner rank only; nil elsewhere). The slice aliases solver state.
func (s *Solver) MeanUCoef() []float64 { return s.meanU }

// MeanWCoef returns the spline coefficients of the mean spanwise profile.
func (s *Solver) MeanWCoef() []float64 { return s.meanW }

// compactFromRows assembles a Compact matrix whose interior rows are a
// combination of the 0th/1st/2nd-derivative collocation rows at each
// Greville point, as selected by pick.
func compactFromRows(b *bspline.Basis, pts []float64, pick func(i int, r0, r1, r2 []float64) []float64) *banded.Compact {
	n := len(pts)
	deg := b.Degree()
	c := banded.NewCompact(n, deg)
	for i, u := range pts {
		start, ders := b.RowAt(u, 2)
		row := pick(i, ders[0], ders[1], ders[2])
		// For Greville points the span satisfies i <= span <= i+deg, so
		// every nonzero column lies within [i-deg, i+deg]: always in band.
		for j := 0; j <= deg; j++ {
			c.Set(i, start+j, row[j])
		}
	}
	return c
}
