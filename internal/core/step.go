package core

import (
	"time"

	"channeldns/internal/telemetry"
)

// Time advance, paper §2.1: three IMEX Runge-Kutta substeps per step.
// Each substep solves, for every wavenumber, the pair of two-point boundary
// value problems of Eq. (3) for omega_y-hat and phi-hat with the customized
// banded solver, then recovers v-hat from phi-hat through Eq. (4) with the
// influence-matrix correction enforcing v = v' = 0 at the walls, and finally
// advances the mean-flow profiles.

// StepOnce advances the solution by one full time step (three substeps).
func (s *Solver) StepOnce() {
	t0 := time.Now()
	dt := s.Cfg.Dt
	s.ensureOps(dt)
	s.trc.BeginStep(int64(s.Step))
	for sub := 0; sub < 3; sub++ {
		s.trc.SetStage(sub)
		hg, hv, mHx, mHz := s.nonlinearTerms()
		s.advanceSubstep(sub, dt, hg, hv, mHx, mHz)
		// Swap current and previous nonlinear buffers instead of
		// reallocating; nonlinearTerms fully rewrites the current set.
		s.hgPrev, s.ws.hgCur = hg, s.hgPrev
		s.hvPrev, s.ws.hvCur = hv, s.hvPrev
		if s.ownsMean {
			s.meanHxPrev, s.ws.meanHxCur = mHx, s.meanHxPrev
			s.meanHzPrev, s.ws.meanHzCur = mHz, s.meanHzPrev
		}
	}
	s.trc.SetStage(-1)
	s.trc.EndStep(t0, time.Now())
	s.Time += dt
	s.Step++
	s.tel.StepDone(time.Since(t0))
	s.tel.AddFlops(s.stepFlops)
}

// Advance runs n full time steps.
func (s *Solver) Advance(n int) {
	for i := 0; i < n; i++ {
		s.StepOnce()
	}
}

// AdvanceAdaptive runs n full time steps, re-estimating the convective CFL
// bound every checkEvery steps and rescaling the time step to keep it near
// targetCFL. This is how production channel DNS survives transition, where
// fluctuation amplitudes grow by large factors before saturating. The
// adjustment is collective and deterministic across ranks; changing dt
// rebuilds the per-wavenumber operator cache. Returns the final dt.
func (s *Solver) AdvanceAdaptive(n int, targetCFL float64, checkEvery int) float64 {
	if targetCFL <= 0 {
		panic("core: targetCFL must be positive")
	}
	if checkEvery < 1 {
		checkEvery = 1
	}
	for i := 0; i < n; i++ {
		if i%checkEvery == 0 {
			cfl := s.CFLEstimate()
			if cfl > 0 {
				scale := targetCFL / cfl
				// Damp the adjustment and only act outside a dead band so
				// the operator cache is not rebuilt every check.
				if scale < 0.9 || scale > 1.5 {
					if scale > 2 {
						scale = 2
					}
					if scale < 0.3 {
						scale = 0.3
					}
					s.Cfg.Dt *= scale
				}
			}
		}
		s.StepOnce()
	}
	return s.Cfg.Dt
}

func (s *Solver) advanceSubstep(sub int, dt float64, hg, hv [][]complex128, mHx, mHz []float64) {
	sp := s.tel.Begin(telemetry.PhaseViscousSolve)
	ny := s.Cfg.Ny
	ga := rkGamma[sub]
	ze := rkZeta[sub]
	al := rkAlpha[sub] * dt * s.nu

	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &s.ws.workers[blk]
		rhs := wk.ln[0]
		vals := wk.ln[1]
		lap := wk.ln[2]
		cphi := wk.ln[3]
		helmTmp := wk.ln[4]
		for w := wlo; w < whi; w++ {
			op := s.ops[w]
			if op == nil {
				continue // mean or Nyquist
			}
			k2 := op.k2

			// --- omega_y advance ---
			s.b0.MulVecComplex(vals, s.cw[w]) // B0*c = values of omega
			s.applyHelmValues(lap, s.cw[w], k2, helmTmp)
			for i := 0; i < ny; i++ {
				rhs[i] = vals[i] + complex(al, 0)*lap[i] +
					complex(dt, 0)*(complex(ga, 0)*hg[w][i]+complex(ze, 0)*s.hgPrev[w][i])
			}
			rhs[0], rhs[ny-1] = 0, 0 // omega(+-1) = 0
			op.lhs[sub].SolveComplex(rhs)
			copy(s.cw[w], rhs)

			// --- phi advance ---
			// phi values at collocation points: (B2 - k2*B0)*c_v;
			// phi spline coefficients: B0^{-1} of those values.
			s.applyHelmValues(vals, s.cv[w], k2, helmTmp) // vals = phi values
			copy(cphi, vals)
			s.b0fac.SolveComplex(cphi)
			s.applyHelmValues(lap, cphi, k2, helmTmp) // (d2-k2) phi values
			for i := 0; i < ny; i++ {
				rhs[i] = vals[i] + complex(al, 0)*lap[i] +
					complex(dt, 0)*(complex(ga, 0)*hv[w][i]+complex(ze, 0)*s.hvPrev[w][i])
			}
			rhs[0], rhs[ny-1] = 0, 0      // provisional phi(+-1) = 0
			op.lhs[sub].SolveComplex(rhs) // rhs = c_phi (provisional)

			// --- v from phi (Eq. 4) with v(+-1) = 0 ---
			s.b0.MulVecComplex(vals, rhs) // phi values
			vals[0], vals[ny-1] = 0, 0
			op.helm.SolveComplex(vals) // vals = c_v (provisional)

			// --- influence-matrix correction: enforce v'(+-1) = 0 ---
			lo, hi := s.wallDeriv(vals)
			m := op.minv[sub]
			a := -(complex(m[0][0], 0)*lo + complex(m[0][1], 0)*hi)
			b := -(complex(m[1][0], 0)*lo + complex(m[1][1], 0)*hi)
			cv1, cv2 := op.cv1[sub], op.cv2[sub]
			cvw := s.cv[w]
			for i := 0; i < ny; i++ {
				cvw[i] = vals[i] + a*complex(cv1[i], 0) + b*complex(cv2[i], 0)
			}
		}
	})

	if s.ownsMean {
		s.advanceMean(sub, dt, mHx, mHz)
	}
	sp.End()
}

// advanceMean advances the kx = kz = 0 profiles:
//
//	dU/dt = F - d<uv>/dy + nu*d2U/dy2,   dW/dt = -d<vw>/dy + nu*d2W/dy2
//
// with U(+-1) = W(+-1) = 0 and F the imposed pressure gradient.
func (s *Solver) advanceMean(sub int, dt float64, mHx, mHz []float64) {
	ny := s.Cfg.Ny
	ga := rkGamma[sub]
	ze := rkZeta[sub]
	al := rkAlpha[sub] * dt * s.nu
	f := s.Cfg.Forcing

	adv := func(c []float64, h, hPrev []float64, forcing float64) {
		rhs := s.ws.meanS0
		lap := s.ws.meanS1
		s.b0.MulVec(rhs, c)
		s.b2.MulVec(lap, c)
		for i := 0; i < ny; i++ {
			rhs[i] += al*lap[i] + dt*(ga*(h[i]+forcing)+ze*(hPrev[i]+forcing))
		}
		rhs[0], rhs[ny-1] = 0, 0
		s.meanOps[sub].SolveReal(rhs)
		copy(c, rhs)
	}
	adv(s.meanU, mHx, s.meanHxPrev, f)
	adv(s.meanW, mHz, s.meanHzPrev, 0)
}
