package core

import (
	"fmt"
	"strings"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// Tests of the workload registry: name resolution, registration guards,
// bit-identity of the channel solver through the registry adapter, and
// schedule consistency of every registered workload on a multi-rank run.

func TestWorkloadNamesAndDescriptions(t *testing.T) {
	names := WorkloadNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("WorkloadNames not sorted: %v", names)
		}
	}
	for _, want := range []string{WorkloadChannel, WorkloadIsotropic, WorkloadScalar} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("built-in workload %q not registered (have %v)", want, names)
		}
		if WorkloadDescription(want) == "" {
			t.Errorf("workload %q has no description", want)
		}
	}
	if WorkloadDescription("nope") != "" {
		t.Error("unknown workload has a description")
	}
}

func TestUnknownWorkloadErrorListsRegistry(t *testing.T) {
	// The error is the command line's only hint after a typo, so it must
	// carry the full registry. The error path never builds a solver, so no
	// communicator is needed.
	_, err := NewWorkload(nil, Config{Workload: "nope"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range append([]string{`"nope"`}, WorkloadNames()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	if _, err := WorkloadSchedule(Config{Workload: "nope"}); err == nil {
		t.Fatal("WorkloadSchedule accepted an unknown workload")
	}
}

func TestRegisterWorkloadGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() {
		RegisterWorkload(WorkloadChannel, "imposter", nil, nil)
	})
	mustPanic("empty name", func() {
		RegisterWorkload("", "nameless", nil, nil)
	})
}

// TestChannelBitIdenticalThroughRegistry: the registry adapter must be a
// pure indirection — a channel run constructed through NewWorkload +
// InitDefault produces the same trajectory, to the last bit, as the direct
// New + SetLaminar + Perturb sequence it wraps.
func TestChannelBitIdenticalThroughRegistry(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 17, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		direct, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		direct.SetLaminar()
		direct.Perturb(0.3, 2, 2, 7)
		direct.Advance(3)

		wl, err := NewWorkload(c, cfg) // empty Workload selects "channel"
		if err != nil {
			t.Error(err)
			return
		}
		if wl.WorkloadName() != WorkloadChannel {
			t.Errorf("default workload resolved to %q", wl.WorkloadName())
			return
		}
		cf, ok := wl.(ChannelFlow)
		if !ok {
			t.Error("channel workload does not expose ChannelSolver")
			return
		}
		reg := cf.ChannelSolver()
		wl.InitDefault(0.3, 7)
		wl.Advance(3)

		for f, pair := range [][2][][]complex128{{direct.cv, reg.cv}, {direct.cw, reg.cw}} {
			for w := range pair[0] {
				for iy := range pair[0][w] {
					if pair[0][w][iy] != pair[1][w][iy] {
						t.Errorf("field %d mode %d iy=%d: direct %v registry %v",
							f, w, iy, pair[0][w][iy], pair[1][w][iy])
						return
					}
				}
			}
		}
		for iy := range direct.meanU {
			if direct.meanU[iy] != reg.meanU[iy] || direct.meanW[iy] != reg.meanW[iy] {
				t.Errorf("mean profile iy=%d: direct (%v,%v) registry (%v,%v)",
					iy, direct.meanU[iy], direct.meanW[iy], reg.meanU[iy], reg.meanW[iy])
				return
			}
		}
	})
}

// TestWorkloadSchedulesConsistent: every registered workload's declarative
// schedule block must match the comm traffic and flop count its solver
// actually generates on a small 2x2-rank run — the invariant bench-validate
// enforces on CI artifacts, checked here at the source for all entries.
func TestWorkloadSchedulesConsistent(t *testing.T) {
	for _, name := range WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			cfg := Config{Workload: name, Nx: 16, Ny: 17, Nz: 16,
				ReTau: 180, Dt: 1e-3, PA: 2, PB: 2, Telemetry: reg}
			if name == WorkloadIsotropic {
				cfg.Ny = 16 // periodic in y: no wall grid line
			} else {
				cfg.Forcing = 1
			}
			sched, err := WorkloadSchedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mpi.Run(4, func(c *mpi.Comm) {
				wl, err := NewWorkload(c, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				wl.InitDefault(0.3, 1)
				wl.Advance(1) // warm operator caches and wire arenas
				c.Barrier()
				if c.Rank() == 0 {
					reg.Reset()
				}
				c.Barrier()
				wl.Advance(2)
			})
			rep := telemetry.NewReport("test", reg, map[string]string{
				"workload": name,
			})
			rep.Schedule = sched
			if err := rep.CheckScheduleConsistency(); err != nil {
				t.Errorf("workload %q: %v", name, err)
			}
			if len(rep.Comm) == 0 {
				t.Errorf("workload %q recorded no comm traffic on 4 ranks", name)
			}
			if rep.Flops == 0 {
				t.Errorf("workload %q recorded no flops", name)
			}
			t.Logf("workload %q: %d schedule ops, %s flops/step declared",
				name, len(sched.Ops), fmt.Sprint(sched.TotalFlops()))
		})
	}
}
