// Package core implements the channel DNS itself: the Kim-Moin-Moser
// wall-normal velocity/vorticity formulation (paper §2.1) discretized with
// Fourier-Galerkin in x and z and B-spline collocation in y, advanced in
// time with the low-storage IMEX Runge-Kutta scheme of Spalart, Moser &
// Rogers (1991), with 3/2-rule dealiased nonlinear terms evaluated through
// the full transpose pipeline of paper §2.3.
//
// Nondimensionalization: lengths by the channel half-width (y in [-1, 1]),
// velocities by the friction velocity u_tau, so nu = 1/Re_tau and the
// driving mean pressure gradient is -dP/dx = 1.
package core

import (
	"fmt"

	"channeldns/internal/par"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// Config selects the workload, resolution, physics and parallel layout of
// a solver built through the workload registry (see workload.go).
type Config struct {
	// Workload selects the registered simulation scenario: "channel" (the
	// default), "isotropic", "scalar", or any name added through
	// RegisterWorkload. NewWorkload dispatches on it; the direct
	// constructors (New, NewIsotropic, NewScalar) ignore it beyond
	// stamping it into checkpoints and reports.
	Workload string
	// Spectral resolution: Nx, Nz full Fourier modes (even), Ny B-spline
	// basis functions (= wall-normal collocation points). The isotropic
	// workload reads Ny as its Fourier mode count in y instead.
	Nx, Ny, Nz int
	// Domain lengths of the periodic directions (half-width units).
	Lx, Lz float64
	// Ly is the y extent of the triply-periodic isotropic workload
	// (0 selects 2*pi). The channel workloads fix y to [-1, 1].
	Ly float64
	// Friction Reynolds number; nu = 1/ReTau.
	ReTau float64
	// Time step.
	Dt float64
	// B-spline degree; 0 selects the paper's degree 7.
	Degree int
	// Wall-normal grid stretching in [0, 1]; 0 selects 0.85.
	Stretch float64
	// Process grid: PA x PB must equal the world size. Zero values select
	// 1 x 1.
	PA, PB int
	// Worker pool for on-node parallel regions (nil = serial).
	Pool *par.Pool
	// DisableNonlinear freezes the convective terms (for linear and
	// validation runs).
	DisableNonlinear bool
	// Forcing is the imposed mean pressure gradient -dP/dx. For turbulent
	// channel runs this is 1 in wall units. NaN is invalid; zero disables.
	Forcing float64
	// Nonlinear selects the discrete convective-term form: the paper's
	// divergence form (default), the convective form, or their
	// skew-symmetric average (see convective.go).
	Nonlinear Form
	// Telemetry, when non-nil, attaches each rank's collector from this
	// registry to the solver, its pencil decomposition and its
	// communicators, so every timestep feeds the phase timers, comm
	// counters and FLOP accounting that telemetry.Report aggregates. Nil
	// (the default) disables instrumentation; the hot path is
	// allocation-free either way.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, attaches each rank's flight recorder so every
	// phase span, transpose exchange window, pairwise peer wait and
	// completed step lands in the per-rank event ring (see internal/trace).
	// Tracing implies telemetry: when Telemetry is nil a private registry
	// is created, since the phase events piggyback on the telemetry spans.
	Trace *trace.Trace
	// Overlap pipelines the nonlinear path's global transposes with the FFT
	// stages that consume them: each exchange moves in chunked per-peer
	// messages and the transform work for completed chunks runs while later
	// chunks are still on the wire (pencil.TransposePlan.RunPipelined).
	// Results are bit-identical to the serial exchange; the win appears at
	// 4+ ranks where wire time is worth hiding.
	Overlap bool
	// PipelineChunks overrides the overlapped exchange's pipeline depth
	// (0 = the default 4; clamped per direction to the chunk-axis extent).
	PipelineChunks int
	// Prandtl is the Prandtl number nu/kappa of the passive-scalar
	// workload (0 selects 1). Ignored by the other workloads.
	Prandtl float64
	// UseGeneralSolver replaces the customized compact banded solver in the
	// time advance with the general pivoted banded solver (complex right-
	// hand sides via two sequential real solves) — the configuration the
	// paper's Table 1 baseline corresponds to. An ablation knob; results
	// agree to rounding.
	UseGeneralSolver bool
}

func (c *Config) fillDefaults() {
	if c.Workload == "" {
		c.Workload = WorkloadChannel
	}
	if c.Degree == 0 {
		c.Degree = 7
	}
	if c.Stretch == 0 {
		c.Stretch = 0.85
	}
	if c.PA == 0 {
		c.PA = 1
	}
	if c.PB == 0 {
		c.PB = 1
	}
	if c.Lx == 0 {
		c.Lx = 2 * 3.141592653589793
	}
	if c.Lz == 0 {
		c.Lz = 3.141592653589793
	}
	if c.Ly == 0 {
		c.Ly = 2 * 3.141592653589793
	}
	if c.Prandtl == 0 {
		c.Prandtl = 1
	}
}

func (c *Config) validate() error {
	if c.ReTau <= 0 {
		return fmt.Errorf("core: ReTau must be positive, got %g", c.ReTau)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("core: Dt must be positive, got %g", c.Dt)
	}
	if c.Ny < c.Degree+2 {
		return fmt.Errorf("core: Ny=%d too small for degree %d", c.Ny, c.Degree)
	}
	return nil
}

// SMR'91 low-storage IMEX RK3 coefficients (paper §2.1 reference [23]).
// Explicit (convective): gamma, zeta; implicit (viscous): alpha = beta.
var (
	rkGamma = [3]float64{8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0}
	rkZeta  = [3]float64{0, -17.0 / 60.0, -5.0 / 12.0}
	rkAlpha = [3]float64{4.0 / 15.0, 1.0 / 15.0, 1.0 / 6.0}
	rkBeta  = [3]float64{4.0 / 15.0, 1.0 / 15.0, 1.0 / 6.0}
)
