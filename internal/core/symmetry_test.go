package core

import (
	"bytes"
	"fmt"
	"math/cmplx"
	"testing"

	"channeldns/internal/mpi"
)

// TestSpanwiseReflectionSymmetry: channel flow is statistically symmetric
// under z -> -z (with w -> -w). A z-mirror-symmetric initial condition must
// stay mirror symmetric under the full nonlinear time stepping: for every
// mode, v(kx, -kz) = v(kx, kz) and omega(kx, -kz) = -omega(kx, kz) when the
// initial data satisfy those relations. This exercises every sign in the
// nonlinear assembly at once.
func TestSpanwiseReflectionSymmetry(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 20, Nz: 16, ReTau: 50, Dt: 5e-4, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	// Build a mirror-symmetric disturbance: set (kx, +kz) and (kx, -kz)
	// together. Under z -> -z: u, v even; w odd => v-hat even in kz,
	// omega_y-hat (dzu - dxw) odd in kz.
	shapeV := func(y float64) complex128 {
		q := 1 - y*y
		return complex(0.2*q*q, 0.1*q*q*y)
	}
	shapeO := func(y float64) complex128 {
		q := 1 - y*y
		return complex(0.15*q, -0.05*q*y)
	}
	for _, mode := range [][2]int{{1, 1}, {2, 3}, {0, 2}} {
		ikx, kz := mode[0], mode[1]
		ikzPos := kz
		ikzNeg := s.G.ConjIndexZ(kz)
		s.SetModeV(ikx, ikzPos, shapeV)
		s.SetModeV(ikx, ikzNeg, shapeV) // even in kz
		s.SetModeOmega(ikx, ikzPos, shapeO)
		s.SetModeOmega(ikx, ikzNeg, func(y float64) complex128 { return -shapeO(y) }) // odd
	}
	// kx = 0 modes must also be Hermitian for reality: our (0,2)/(0,-2)
	// pair with even-real symmetric v is both Hermitian and mirror
	// symmetric only if the shape is real; adjust that mode.
	real2 := func(y float64) complex128 { q := 1 - y*y; return complex(0.2*q*q, 0) }
	s.SetModeV(0, 2, real2) // SetModeV replaces, overriding the loop above
	s.SetModeV(0, s.G.ConjIndexZ(2), real2)
	s.SetModeOmega(0, 2, func(y float64) complex128 { return complex(0, 0) })
	s.SetModeOmega(0, s.G.ConjIndexZ(2), func(y float64) complex128 { return complex(0, 0) })

	s.Advance(6)

	for ikx := 0; ikx < s.G.NKx(); ikx++ {
		for kz := 1; kz < s.G.Nz/2; kz++ {
			kzn := s.G.ConjIndexZ(kz)
			vp := s.VCoef(ikx, kz)
			vn := s.VCoef(ikx, kzn)
			op := s.OmegaCoef(ikx, kz)
			on := s.OmegaCoef(ikx, kzn)
			for i := range vp {
				if d := cmplx.Abs(vp[i] - vn[i]); d > 1e-10 {
					t.Fatalf("v mirror symmetry broken at (%d,%d) coef %d: %g", ikx, kz, i, d)
				}
				if d := cmplx.Abs(op[i] + on[i]); d > 1e-10 {
					t.Fatalf("omega mirror antisymmetry broken at (%d,%d) coef %d: %g", ikx, kz, i, d)
				}
			}
		}
	}
}

// TestCheckpointMultiRank: per-rank checkpoints on a 2x2 grid must restore
// and evolve identically.
func TestCheckpointMultiRank(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1, PA: 2, PB: 2}
	saved := make(map[int][]byte)
	after := make(map[string][]complex128)
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 13)
		s.Advance(2)
		var buf bytes.Buffer
		if err := s.SaveCheckpoint(&buf); err != nil {
			t.Error(err)
			return
		}
		saved[c.Rank()] = append([]byte(nil), buf.Bytes()...)
		s.Advance(3)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			after[fmt.Sprintf("%d,%d", ikx, ikz)] = append([]complex128(nil), s.cv[w]...)
		}
	})
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.LoadCheckpoint(bytes.NewReader(saved[c.Rank()])); err != nil {
			t.Error(err)
			return
		}
		s.Advance(3)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			want := after[fmt.Sprintf("%d,%d", ikx, ikz)]
			for i := range want {
				if cmplx.Abs(s.cv[w][i]-want[i]) > 1e-14 {
					t.Fatalf("restored run diverged at (%d,%d) coef %d", ikx, ikz, i)
				}
			}
		}
	})
}
