package core

import (
	"math"
	"testing"

	"channeldns/internal/mpi"
)

// Physics and state tests of the passive-scalar workload.

// TestScalarConductionEquilibrium: with no velocity fluctuations the
// conduction profile Theta(y) = -y is a steady solution of the mean scalar
// equation (B-splines represent linears exactly, so the discrete steady
// state is exact to roundoff): the profile, the unit wall flux and the zero
// scalar variance must all survive time stepping.
func TestScalarConductionEquilibrium(t *testing.T) {
	cfg := Config{Workload: WorkloadScalar, Nx: 16, Ny: 17, Nz: 16,
		ReTau: 180, Dt: 1e-3, Forcing: 1, Prandtl: 0.71}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := NewScalar(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if want := (1.0 / 180) / 0.71; math.Abs(s.Kappa()-want) > 1e-15 {
			t.Errorf("kappa = %g, want %g", s.Kappa(), want)
		}
		s.SetLaminar() // mean flow only; u theta is x-independent, so it cannot stir
		s.SetConduction()
		s.Advance(5)
		if v := s.ScalarVariance(); v > 1e-24 {
			t.Errorf("scalar variance %g grew from an unperturbed field", v)
		}
		if q := s.WallScalarFlux(); math.Abs(q-1) > 1e-10 {
			t.Errorf("wall scalar flux %g, want 1 (pure conduction)", q)
		}
		prof := s.MeanScalarProfile()
		for i, y := range s.grev {
			if math.Abs(prof[i]-(-y)) > 1e-10 {
				t.Errorf("mean scalar at y=%g: %g, want %g", y, prof[i], -y)
				return
			}
		}
	})
}

// TestScalarVarianceDecays: scalar fluctuations between fixed-temperature
// walls, advected by a decaying velocity field with no production
// mechanism strong enough to offset diffusion at this amplitude, must lose
// variance — the discrete advection term redistributes but the
// wall-flux-free fluctuation field has no source.
func TestScalarVarianceDecays(t *testing.T) {
	cfg := Config{Workload: WorkloadScalar, Nx: 16, Ny: 17, Nz: 16,
		ReTau: 180, Dt: 1e-3, Forcing: 1, Prandtl: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := NewScalar(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.InitDefault(0.05, 2)
		v0 := s.ScalarVariance()
		if v0 <= 0 {
			t.Errorf("initial variance %g, want positive", v0)
			return
		}
		s.Advance(10)
		if v := s.ScalarVariance(); v >= v0 || v <= 0 || math.IsNaN(v) {
			t.Errorf("variance after 10 steps %g, want in (0, %g)", v, v0)
		}
	})
}

// TestScalarCheckpointRoundTrip: the scalar state rides the extended
// checkpoint block (theta + its previous-substep term, mean profile + its
// term on the owner rank) — a restored run continues bit-identically.
// 1x2 ranks so one shard carries the mean block and one does not.
func TestScalarCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Workload: WorkloadScalar, Nx: 16, Ny: 17, Nz: 16,
		ReTau: 180, Dt: 1e-3, Forcing: 1, PA: 1, PB: 2}
	dir := t.TempDir()
	mpi.Run(2, func(c *mpi.Comm) {
		s, err := NewScalar(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.InitDefault(0.3, 1)
		s.Advance(2)
		store := s.NewCheckpointStore(dir, 2)
		if _, err := s.WriteCheckpoint(store); err != nil {
			t.Errorf("write: %v", err)
			return
		}

		r, err := NewScalar(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		name, err := r.ResumeLatest(store)
		if err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		if name == "" || r.Step != s.Step || r.Time != s.Time {
			t.Errorf("resumed %q at step %d t=%g, want step %d t=%g",
				name, r.Step, r.Time, s.Step, s.Time)
			return
		}
		// Exact trajectory continuation proves both the velocity state and
		// the scalar extension survived.
		s.Advance(2)
		r.Advance(2)
		for w := 0; w < s.nw; w++ {
			for iy := range s.cth[w] {
				if s.cth[w][iy] != r.cth[w][iy] {
					t.Errorf("rank %d theta w=%d iy=%d: original %v restored %v",
						c.Rank(), w, iy, s.cth[w][iy], r.cth[w][iy])
					return
				}
				if s.cv[w][iy] != r.cv[w][iy] || s.cw[w][iy] != r.cw[w][iy] {
					t.Errorf("rank %d velocity w=%d iy=%d diverged after resume", c.Rank(), w, iy)
					return
				}
			}
		}
		if s.ownsMean {
			for i := range s.meanTh {
				if s.meanTh[i] != r.meanTh[i] {
					t.Errorf("mean scalar coef %d: original %v restored %v", i, s.meanTh[i], r.meanTh[i])
					return
				}
			}
		}
	})
}
