package core

import (
	"math"
	"testing"

	"channeldns/internal/mpi"
)

// Physics and state tests of the isotropic-turbulence workload.

// TestIsotropicDivergenceFree: the initial projection and the per-substep
// pressure projection keep the field spectrally divergence-free, and with
// no forcing the kinetic energy can only decay.
func TestIsotropicDivergenceFree(t *testing.T) {
	cfg := Config{Workload: WorkloadIsotropic, Nx: 16, Ny: 16, Nz: 16,
		ReTau: 180, Dt: 1e-3}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := NewIsotropic(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.InitDefault(0.3, 1)
		e0 := s.TotalEnergy()
		if e0 <= 0 {
			t.Errorf("initial energy %g, want positive", e0)
			return
		}
		if div := s.DivergenceResidual(); div > 1e-12 {
			t.Errorf("initial divergence residual %g", div)
		}
		prev := e0
		for i := 0; i < 3; i++ {
			s.StepOnce()
			if div := s.DivergenceResidual(); div > 1e-10 {
				t.Errorf("step %d: divergence residual %g", s.Step, div)
			}
			e := s.TotalEnergy()
			if e >= prev {
				t.Errorf("step %d: energy %g did not decay from %g", s.Step, e, prev)
			}
			prev = e
		}
	})
}

// TestIsotropicViscousDecayExact: with the nonlinear term disabled the IMEX
// advance is diagonal, so every retained mode must decay by exactly
//
//	F(k2) = prod_s (1 - alpha_s dt nu k2) / (1 + beta_s dt nu k2)
//
// per step — the discrete analog of exp(-nu k2 dt) the scheme converges to.
func TestIsotropicViscousDecayExact(t *testing.T) {
	cfg := Config{Workload: WorkloadIsotropic, Nx: 16, Ny: 16, Nz: 16,
		ReTau: 180, Dt: 1e-3, DisableNonlinear: true}
	const steps = 4
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := NewIsotropic(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.InitDefault(0.5, 3)
		init := make([][][]complex128, 3)
		for f, field := range [][][]complex128{s.cu, s.cv, s.cw} {
			init[f] = make([][]complex128, s.nw)
			for w := range field {
				init[f][w] = append([]complex128(nil), field[w]...)
			}
		}
		s.Advance(steps)
		nu := s.Nu()
		dt := cfg.Dt
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) {
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			for j := 0; j < cfg.Ny; j++ {
				if !s.kyKeep[j] {
					continue
				}
				k2 := kx*kx + s.ky[j]*s.ky[j] + kz*kz
				if k2 == 0 {
					continue
				}
				factor := 1.0
				for sub := 0; sub < 3; sub++ {
					factor *= (1 - rkAlpha[sub]*dt*nu*k2) / (1 + rkBeta[sub]*dt*nu*k2)
				}
				factor = math.Pow(factor, steps)
				for f, field := range [][][]complex128{s.cu, s.cv, s.cw} {
					want := init[f][w][j] * complex(factor, 0)
					got := field[w][j]
					if d := cmplxAbs(got - want); d > 1e-13*(1+cmplxAbs(want)) {
						t.Fatalf("comp %d mode (%d,%d) j=%d: got %v, want %v (k2=%g)",
							f, ikx, ikz, j, got, want, k2)
					}
				}
			}
		}
	})
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// TestIsotropicCheckpointRoundTrip: the extended-field checkpoint captures
// the complete isotropic state — a restored run continues bit-identically
// to the run that wrote it.
func TestIsotropicCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Workload: WorkloadIsotropic, Nx: 16, Ny: 16, Nz: 16,
		ReTau: 180, Dt: 1e-3, PA: 2, PB: 1}
	dir := t.TempDir()
	mpi.Run(2, func(c *mpi.Comm) {
		s, err := NewIsotropic(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.InitDefault(0.3, 1)
		s.Advance(2)
		store := s.NewCheckpointStore(dir, 2)
		if _, err := s.WriteCheckpoint(store); err != nil {
			t.Errorf("write: %v", err)
			return
		}

		r, err := NewIsotropic(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		name, err := r.ResumeLatest(store)
		if err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		if name == "" || r.Step != s.Step || r.Time != s.Time {
			t.Errorf("resumed %q at step %d t=%g, want step %d t=%g",
				name, r.Step, r.Time, s.Step, s.Time)
			return
		}
		// Both solvers advance from the same state: trajectories must agree
		// exactly, which only happens if every field (including the
		// previous-substep nonlinear terms) survived the round trip.
		s.Advance(2)
		r.Advance(2)
		for f, pair := range [][2][][]complex128{{s.cu, r.cu}, {s.cv, r.cv}, {s.cw, r.cw}} {
			for w := range pair[0] {
				for j := range pair[0][w] {
					if pair[0][w][j] != pair[1][w][j] {
						t.Errorf("rank %d comp %d w=%d j=%d: original %v restored %v",
							c.Rank(), f, w, j, pair[0][w][j], pair[1][w][j])
						return
					}
				}
			}
		}
	})
}
