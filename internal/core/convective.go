package core

import (
	"fmt"
	"math"
	"sync"

	"channeldns/internal/telemetry"
)

// Alternative nonlinear-term forms. The paper evaluates the convective
// terms in divergence form, N_i = -d(u_i u_j)/dx_j (steps (g)-(h) of §2.3).
// This file adds the convective form N_i = -u_j du_i/dx_j and the
// skew-symmetric average of the two. Analytically all three are identical
// for divergence-free fields; discretely they differ through the wall-
// normal collocation (pointwise products alias in y), and the
// skew-symmetric form conserves energy much more faithfully at marginal
// resolution — the standard remedy in spectral DNS practice. The form is an
// ablation axis in DESIGN.md §7.

// Form selects the discrete form of the convective terms.
type Form int

// Convective-term forms.
const (
	// FormDivergence is the paper's form: -d(u_i u_j)/dx_j via six
	// quadratic products.
	FormDivergence Form = iota
	// FormConvective is -u_j du_i/dx_j via nine velocity-gradient fields.
	FormConvective
	// FormSkewSymmetric averages the two, conserving energy discretely.
	FormSkewSymmetric
)

// formNames maps the canonical command-line / job-spec spellings onto the
// forms; ParseForm and Form.String are its two directions.
var formNames = map[string]Form{
	"divergence": FormDivergence,
	"convective": FormConvective,
	"skew":       FormSkewSymmetric,
}

// ParseForm resolves the canonical spelling of a convective form
// ("divergence", "convective", "skew"); "" selects the paper's divergence
// form. Both cmd/dns and the job server's serializable specs go through
// this, so the two front ends cannot drift.
func ParseForm(name string) (Form, error) {
	if name == "" {
		return FormDivergence, nil
	}
	f, ok := formNames[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown nonlinear form %q (divergence | convective | skew)", name)
	}
	return f, nil
}

// String returns the canonical spelling ParseForm accepts.
func (f Form) String() string {
	for name, v := range formNames {
		if v == f {
			return name
		}
	}
	return fmt.Sprintf("Form(%d)", int(f))
}

// velocityAndGradValues evaluates {u, v, w, du/dy, dv/dy, dw/dy} at the
// collocation points for every locally owned mode, y-pencil layout. The
// returned fields are the arena's velocity buffers.
func (s *Solver) velocityAndGradValues() [][]complex128 {
	sp := s.tel.Begin(telemetry.PhasePressure)
	ny := s.Cfg.Ny
	ws := s.ws
	out := ws.velY[:6]
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		vy := wk.ln[0]
		vyy := wk.ln[1]
		om := wk.ln[2]
		omy := wk.ln[3]
		vv := wk.ln[4]
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			base := w * ny
			if s.G.IsNyquistZ(ikz) {
				continue
			}
			if ikx == 0 && ikz == 0 {
				if s.ownsMean {
					uv := wk.rl[0]
					wv := wk.rl[1]
					uyv := wk.rl[2]
					wyv := wk.rl[3]
					s.b0.MulVec(uv, s.meanU)
					s.b0.MulVec(wv, s.meanW)
					s.b1.MulVec(uyv, s.meanU)
					s.b1.MulVec(wyv, s.meanW)
					for i := 0; i < ny; i++ {
						out[0][base+i] = complex(uv[i], 0)
						out[2][base+i] = complex(wv[i], 0)
						out[3][base+i] = complex(uyv[i], 0)
						out[5][base+i] = complex(wyv[i], 0)
					}
				}
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			s.b1.MulVecComplex(vy, s.cv[w])
			s.b2.MulVecComplex(vyy, s.cv[w])
			s.b0.MulVecComplex(om, s.cw[w])
			s.b1.MulVecComplex(omy, s.cw[w])
			s.b0.MulVecComplex(vv, s.cv[w])
			ikxC := complex(0, kx/k2)
			ikzC := complex(0, kz/k2)
			for i := 0; i < ny; i++ {
				out[0][base+i] = ikxC*vy[i] - ikzC*om[i]
				out[1][base+i] = vv[i]
				out[2][base+i] = ikzC*vy[i] + ikxC*om[i]
				out[3][base+i] = ikxC*vyy[i] - ikzC*omy[i]
				out[4][base+i] = vy[i]
				out[5][base+i] = ikzC*vyy[i] + ikxC*omy[i]
			}
		}
	})
	sp.End()
	return out
}

// convectiveH computes H_i = -u_j du_i/dx_j as collocation values per local
// mode, returning three y-pencil fields {H_x, H_y, H_z}.
func (s *Solver) convectiveH() [][]complex128 {
	d := s.D
	g := s.G
	ws := s.ws
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()

	// Six fields to z-pencils: u, v, w and their y derivatives.
	vel := s.velocityAndGradValues()
	zp := d.YtoZ(ws.zpVel[:6], vel)

	kxloc := s.kxhi - s.kxlo
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := kxloc * nyLoc

	// Pad + inverse in z for all six, plus the three z derivatives of
	// u, v, w built by multiplying the spectral lines by i*kz.
	zphys := ws.zphys[:9]
	sp := s.tel.Begin(telemetry.PhaseFFTInverse)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		wk := &ws.workers[blk]
		scratch := wk.zscr
		dline := wk.zline
		for f := 0; f < 6; f++ {
			src, dst := zp[f], zphys[f]
			for l := lo; l < hi; l++ {
				line := src[l*nz : (l+1)*nz]
				s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], line, scratch)
				if f < 3 {
					// z derivative of u, v, w -> slots 6, 7, 8.
					for j := 0; j < nz; j++ {
						dline[j] = ws.kzMul[j] * line[j]
					}
					s.padZ.InversePaddedScratch(zphys[6+f][l*mz:(l+1)*mz], dline, scratch)
				}
			}
		}
	})
	sp.End()

	// Nine fields to x-pencils.
	xp := d.ZtoX(ws.xp[:9], zphys, mz)

	// One threaded block: inverse x transforms (twelve per line, three of
	// them the i*kx derivatives of u, v, w), the convective products, and
	// the forward transform of H_x, H_y, H_z.
	zxl, zxh := d.ZRangeX(mz)
	nzLoc := zxh - zxl
	linesX := nyLoc * nzLoc
	hX := ws.prodX[:3]
	yl0, _ := d.YRange()
	zeroF(ws.locMaxU)
	zeroF(ws.locMaxV)
	zeroF(ws.locMaxW)
	var maxMu sync.Mutex
	sp = s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(linesX, func(blk, lo, hi int) {
		wk := &ws.workers[blk]
		phys := &wk.phys // u v w uy vy wy uz vz wz ux vx wx
		hp := wk.prod
		scratch := wk.xscr
		dline := wk.xline
		blkU, blkV, blkW := wk.rl[0], wk.rl[1], wk.rl[2]
		zeroF(blkU)
		zeroF(blkV)
		zeroF(blkW)
		for l := lo; l < hi; l++ {
			for f := 0; f < 9; f++ {
				s.padX.InversePaddedScratch(phys[f], xp[f][l*nkx:(l+1)*nkx], scratch)
			}
			for f := 0; f < 3; f++ { // x derivatives of u, v, w
				line := xp[f][l*nkx : (l+1)*nkx]
				for k := 0; k < nkx; k++ {
					dline[k] = complex(0, s.G.Kx(k)) * line[k]
				}
				s.padX.InversePaddedScratch(phys[9+f], dline, scratch)
			}
			yg := yl0 + l/nzLoc
			for i := 0; i < mx; i++ {
				blkU[yg] = math.Max(blkU[yg], math.Abs(phys[0][i]))
				blkV[yg] = math.Max(blkV[yg], math.Abs(phys[1][i]))
				blkW[yg] = math.Max(blkW[yg], math.Abs(phys[2][i]))
			}
			// H_i = -(u*d_i/dx + v*d_i/dy + w*d_i/dz).
			for c := 0; c < 3; c++ {
				dx, dy, dz := phys[9+c], phys[3+c], phys[6+c]
				for i := 0; i < mx; i++ {
					hp[i] = -(phys[0][i]*dx[i] + phys[1][i]*dy[i] + phys[2][i]*dz[i])
				}
				s.padX.ForwardTruncatedScratch(hX[c][l*nkx:(l+1)*nkx], hp, scratch)
			}
		}
		maxMu.Lock()
		for y := range ws.locMaxU {
			ws.locMaxU[y] = math.Max(ws.locMaxU[y], blkU[y])
			ws.locMaxV[y] = math.Max(ws.locMaxV[y], blkV[y])
			ws.locMaxW[y] = math.Max(ws.locMaxW[y], blkW[y])
		}
		maxMu.Unlock()
	})
	sp.End()
	s.physMaxMu.Lock()
	copy(s.physMaxU, ws.locMaxU)
	copy(s.physMaxV, ws.locMaxV)
	copy(s.physMaxW, ws.locMaxW)
	s.physMaxCurrent = true
	s.physMaxMu.Unlock()

	// Reverse path for the three H fields.
	zp2 := d.XtoZ(ws.zpProd[:3], hX, mz)
	zspec := ws.zspec[:3]
	sp = s.tel.Begin(telemetry.PhaseFFTForward)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		scratch := ws.workers[blk].zscr
		for f := 0; f < 3; f++ {
			src, dst := zp2[f], zspec[f]
			for l := lo; l < hi; l++ {
				s.padZ.ForwardTruncatedScratch(dst[l*nz:(l+1)*nz], src[l*mz:(l+1)*mz], scratch)
			}
		}
	})
	sp.End()
	return d.ZtoY(ws.prodsY[:3], zspec)
}

// convectiveTerms assembles h_g and h_v from convective-form H values:
//
//	h_g = i*kz*H_x - i*kx*H_z
//	h_v = -k2*H_y - d/dy(i*kx*H_x + i*kz*H_z)
//
// plus the mean forcing profiles (H_x and H_z at kx = kz = 0 directly),
// written into the caller-provided output buffers.
func (s *Solver) convectiveTerms(hg, hv [][]complex128, meanHx, meanHz []float64) {
	ny := s.Cfg.Ny
	ws := s.ws
	h := s.convectiveH()
	sp := s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		p := wk.ln[0]
		tmp := wk.ln[1]
		cp := wk.ln[2]
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			base := w * ny
			ikxC := complex(0, kx)
			ikzC := complex(0, kz)
			hgw, hvw := hg[w], hv[w]
			for i := 0; i < ny; i++ {
				hgw[i] = ikzC*h[0][base+i] - ikxC*h[2][base+i]
				p[i] = ikxC*h[0][base+i] + ikzC*h[2][base+i]
			}
			copy(cp, p)
			s.b0fac.SolveComplex(cp)
			s.b1.MulVecComplex(tmp, cp)
			ck2 := complex(k2, 0)
			for i := 0; i < ny; i++ {
				hvw[i] = -ck2*h[1][base+i] - tmp[i]
			}
		}
	})
	if s.ownsMean {
		w00 := s.widx(0, 0)
		base := w00 * ny
		for i := 0; i < ny; i++ {
			meanHx[i] = real(h[0][base+i])
			meanHz[i] = real(h[2][base+i])
		}
	}
	sp.End()
}
