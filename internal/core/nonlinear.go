package core

// Nonlinear term evaluation, paper §2.3 steps (a)-(h): the three velocity
// components are transposed y->z, zero-padded to the 3/2 quadrature grid
// and inverse transformed in z, transposed z->x, padded and inverse
// transformed in x; the quadratic products are formed pointwise on the
// physical grid; the products then retrace the path with forward transforms
// and truncation. Products and transforms in x share one threaded block so
// lines stay in cache across the three operations, as in the paper.
//
// The paper forms five product fields; we carry the six independent
// components of u_i*u_j (uu, uv, uw, vv, vw, ww) for a direct assembly of
// the divergence-form right-hand sides — see DESIGN.md for the accounting
// difference, which the machine model (not this code) normalizes back to
// the paper's five.
//
// Every buffer in the pipeline comes from the solver's workspace arena
// (workspace.go); the steady state allocates nothing beyond the closure
// headers handed to the worker pool.

import (
	"math"

	"channeldns/internal/telemetry"
)

const (
	pUU = iota
	pUV
	pUW
	pVV
	pVW
	pWW
	nProducts
)

// products computes the six dealiased quadratic products as y-pencil
// collocation values, layout [kxLoc][kzLoc][Ny] per product.
//
// The three forward-path transposes run through the pipelined entry points:
// with Config.Overlap each exchange moves in chunks and the consume hooks
// below run the following transform stage on every completed chunk-axis
// line range while later chunks are still on the wire; with overlap off the
// same hooks run once over the full range after the one-shot exchange, so
// there is a single code path either way. The hooks and their pool-block
// bodies are method values bound at construction (solver.go), keeping the
// steady state free of per-step closure allocation beyond the pool headers.
func (s *Solver) products() [][]complex128 {
	d := s.D
	ws := s.ws
	mz := s.G.MZ()

	// (a)-(c) y-pencils -> z-pencils for u, v, w, the padded inverse z
	// transform consuming each completed chunk of local-kx lines.
	vel := s.velocityValues()
	d.YtoZPipelined(ws.zpVel[:3], vel, s.nlZInvFn)

	// (d)-(g) z-pencils -> x-pencils, the fused x excursion (inverse
	// transform, pointwise products, forward transform — one threaded block
	// per line so lines stay in cache) consuming each chunk of local-y
	// lines.
	zeroF(ws.locMaxU)
	zeroF(ws.locMaxV)
	zeroF(ws.locMaxW)
	d.ZtoXPipelined(ws.xp[:3], ws.zphys[:3], mz, s.nlXFn)
	s.physMaxMu.Lock()
	copy(s.physMaxU, ws.locMaxU)
	copy(s.physMaxV, ws.locMaxV)
	copy(s.physMaxW, ws.locMaxW)
	s.physMaxCurrent = true
	s.physMaxMu.Unlock()

	// (h) reverse path: x-pencils -> z-pencils with the truncated forward z
	// transform consuming each chunk of local-y lines, then back to
	// y-pencils (one-shot: nothing follows to hide the return leg under).
	d.XtoZPipelined(ws.zpProd, ws.prodX, mz, s.nlZFwdFn)
	return d.ZtoY(ws.prodsY, ws.zspec)
}

// consumeNLZInv is the YtoZ consume hook: pad and inverse transform in z
// the lines of local-kx range [lo, hi) — z-pencil lines are kx-major, so
// the range maps to the contiguous line window [lo, hi) * nyLoc.
func (s *Solver) consumeNLZInv(lo, hi int) {
	yl, yh := s.D.YRange()
	nyLoc := yh - yl
	s.nlLineOff = lo * nyLoc
	sp := s.tel.Begin(telemetry.PhaseFFTInverse)
	s.pool().ForBlocksIndexed((hi-lo)*nyLoc, s.nlZInvBlk)
	sp.End()
}

func (s *Solver) nlZInvBlock(blk, lo, hi int) {
	ws := s.ws
	nz, mz := s.G.Nz, s.G.MZ()
	scratch := ws.workers[blk].zscr
	lo += s.nlLineOff
	hi += s.nlLineOff
	for f := 0; f < 3; f++ {
		src, dst := ws.zpVel[f], ws.zphys[f]
		for l := lo; l < hi; l++ {
			s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], src[l*nz:(l+1)*nz], scratch)
		}
	}
}

// consumeNLX is the ZtoX consume hook: the fused x excursion for the
// local-y range [lo, hi) — x-pencil lines are y-major, so the range maps to
// the contiguous line window [lo, hi) * nzLoc.
func (s *Solver) consumeNLX(lo, hi int) {
	zxl, zxh := s.D.ZRangeX(s.G.MZ())
	nzLoc := zxh - zxl
	s.nlLineOff = lo * nzLoc
	sp := s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed((hi-lo)*nzLoc, s.nlXBlk)
	sp.End()
}

func (s *Solver) nlXBlock(blk, lo, hi int) {
	ws := s.ws
	g := s.G
	nkx, mx := g.NKx(), g.MX()
	zxl, zxh := s.D.ZRangeX(g.MZ())
	nzLoc := zxh - zxl
	yl0, _ := s.D.YRange()
	xp := ws.xp
	prodX := ws.prodX
	w := &ws.workers[blk]
	pu, pv, pw := w.phys[0], w.phys[1], w.phys[2]
	pp := w.prod
	scratch := w.xscr
	blkU, blkV, blkW := w.rl[0], w.rl[1], w.rl[2]
	zeroF(blkU)
	zeroF(blkV)
	zeroF(blkW)
	lo += s.nlLineOff
	hi += s.nlLineOff
	for l := lo; l < hi; l++ {
		s.padX.InversePaddedScratch(pu, xp[0][l*nkx:(l+1)*nkx], scratch)
		s.padX.InversePaddedScratch(pv, xp[1][l*nkx:(l+1)*nkx], scratch)
		s.padX.InversePaddedScratch(pw, xp[2][l*nkx:(l+1)*nkx], scratch)
		// Harvest physical velocity maxima for the CFL diagnostic;
		// line l sits at global collocation index yl0 + l/nzLoc.
		yg := yl0 + l/nzLoc
		for i := 0; i < mx; i++ {
			blkU[yg] = math.Max(blkU[yg], math.Abs(pu[i]))
			blkV[yg] = math.Max(blkV[yg], math.Abs(pv[i]))
			blkW[yg] = math.Max(blkW[yg], math.Abs(pw[i]))
		}
		forward := func(f int, a, b []float64) {
			for i := 0; i < mx; i++ {
				pp[i] = a[i] * b[i]
			}
			s.padX.ForwardTruncatedScratch(prodX[f][l*nkx:(l+1)*nkx], pp, scratch)
		}
		forward(pUU, pu, pu)
		forward(pUV, pu, pv)
		forward(pUW, pu, pw)
		forward(pVV, pv, pv)
		forward(pVW, pv, pw)
		forward(pWW, pw, pw)
	}
	s.nlMaxMu.Lock()
	for y := range ws.locMaxU {
		ws.locMaxU[y] = math.Max(ws.locMaxU[y], blkU[y])
		ws.locMaxV[y] = math.Max(ws.locMaxV[y], blkV[y])
		ws.locMaxW[y] = math.Max(ws.locMaxW[y], blkW[y])
	}
	s.nlMaxMu.Unlock()
}

// consumeNLZFwd is the XtoZ consume hook: truncated forward z transform
// for the local-y range [lo, hi). Unlike the inverse leg the destination
// lines are strided — line kx*nyLoc + y for every local kx and y in range —
// so the pool iterates a dense (kx, y-in-range) index.
func (s *Solver) consumeNLZFwd(lo, hi int) {
	s.nlYLo, s.nlYSpan = lo, hi-lo
	kxloc := s.kxhi - s.kxlo
	sp := s.tel.Begin(telemetry.PhaseFFTForward)
	s.pool().ForBlocksIndexed(kxloc*(hi-lo), s.nlZFwdBlk)
	sp.End()
}

func (s *Solver) nlZFwdBlock(blk, lo, hi int) {
	ws := s.ws
	nz, mz := s.G.Nz, s.G.MZ()
	yl, yh := s.D.YRange()
	nyLoc := yh - yl
	span := s.nlYSpan
	scratch := ws.workers[blk].zscr
	for f := 0; f < nProducts; f++ {
		src, dst := ws.zpProd[f], ws.zspec[f]
		for l := lo; l < hi; l++ {
			kx := l / span
			li := kx*nyLoc + s.nlYLo + (l - kx*span)
			s.padZ.ForwardTruncatedScratch(dst[li*nz:(li+1)*nz], src[li*mz:(li+1)*mz], scratch)
		}
	}
}

// nonlinearTerms evaluates h_g and h_v (collocation values per local
// wavenumber) and the mean-flow forcing profiles on the owner rank,
// dispatching on the configured convective-term form. With
// DisableNonlinear it returns zeros. The returned slices are the arena's
// current-substep buffers; StepOnce swaps them with the previous-substep
// buffers after the advance.
func (s *Solver) nonlinearTerms() (hg, hv [][]complex128, meanHx, meanHz []float64) {
	ny := s.Cfg.Ny
	ws := s.ws
	hg, hv = ws.hgCur, ws.hvCur
	meanHx, meanHz = ws.meanHxCur, ws.meanHzCur
	if s.Cfg.DisableNonlinear {
		for w := 0; w < s.nw; w++ {
			zeroC(hg[w])
			zeroC(hv[w])
		}
		if s.ownsMean {
			zeroF(meanHx)
			zeroF(meanHz)
		}
		return hg, hv, meanHx, meanHz
	}
	switch s.Cfg.Nonlinear {
	case FormConvective:
		s.convectiveTerms(hg, hv, meanHx, meanHz)
	case FormSkewSymmetric:
		s.ensureAlt()
		s.divergenceTerms(hg, hv, meanHx, meanHz)
		s.convectiveTerms(ws.hgAlt, ws.hvAlt, ws.meanHxAlt, ws.meanHzAlt)
		half := complex(0.5, 0)
		for w := 0; w < s.nw; w++ {
			for i := 0; i < ny; i++ {
				hg[w][i] = half * (hg[w][i] + ws.hgAlt[w][i])
				hv[w][i] = half * (hv[w][i] + ws.hvAlt[w][i])
			}
		}
		if s.ownsMean {
			for i := 0; i < ny; i++ {
				meanHx[i] = (meanHx[i] + ws.meanHxAlt[i]) / 2
				meanHz[i] = (meanHz[i] + ws.meanHzAlt[i]) / 2
			}
		}
	default:
		s.divergenceTerms(hg, hv, meanHx, meanHz)
	}
	return hg, hv, meanHx, meanHz
}

// divergenceTerms is the paper's path: six dealiased quadratic products,
// assembled into the caller-provided output buffers.
func (s *Solver) divergenceTerms(hg, hv [][]complex128, meanHx, meanHz []float64) {
	ny := s.Cfg.Ny
	ws := s.ws
	prods := s.products()

	sp := s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		sv := wk.ln[0]  // S  = i*kx*uv + i*kz*vw
		sg := wk.ln[1]  // Sg = i*kz*uv - i*kx*vw
		tv := wk.ln[2]  // T  = kx^2*uu + 2*kx*kz*uw + kz^2*ww
		vv := wk.ln[3]  // vv
		tmp := wk.ln[4] // derivative values
		sol := wk.ln[5] // banded-solve right-hand side
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			base := w * ny
			ikxC := complex(0, kx)
			ikzC := complex(0, kz)
			for i := 0; i < ny; i++ {
				uv := prods[pUV][base+i]
				vw := prods[pVW][base+i]
				sv[i] = ikxC*uv + ikzC*vw
				sg[i] = ikzC*uv - ikxC*vw
				tv[i] = complex(kx*kx, 0)*prods[pUU][base+i] +
					complex(2*kx*kz, 0)*prods[pUW][base+i] +
					complex(kz*kz, 0)*prods[pWW][base+i]
				vv[i] = prods[pVV][base+i]
			}
			// h_g = kx*kz*(uu-ww) - (kx^2-kz^2)*uw - d/dy(Sg)
			copy(sol, sg)
			s.b0fac.SolveComplex(sol)
			s.b1.MulVecComplex(tmp, sol)
			hgw := hg[w]
			for i := 0; i < ny; i++ {
				hgw[i] = complex(kx*kz, 0)*(prods[pUU][base+i]-prods[pWW][base+i]) -
					complex(kx*kx-kz*kz, 0)*prods[pUW][base+i] - tmp[i]
			}
			// h_v = k2*S + k2*d/dy(vv) - d/dy(T) + d2/dy2(S)
			hvw := hv[w]
			ck2 := complex(k2, 0)
			copy(sol, sv)
			s.b0fac.SolveComplex(sol)
			s.b2.MulVecComplex(tmp, sol)
			for i := 0; i < ny; i++ {
				hvw[i] = ck2*sv[i] + tmp[i]
			}
			copy(sol, vv)
			s.b0fac.SolveComplex(sol)
			s.b1.MulVecComplex(tmp, sol)
			for i := 0; i < ny; i++ {
				hvw[i] += ck2 * tmp[i]
			}
			copy(sol, tv)
			s.b0fac.SolveComplex(sol)
			s.b1.MulVecComplex(tmp, sol)
			for i := 0; i < ny; i++ {
				hvw[i] -= tmp[i]
			}
		}
	})

	if s.ownsMean {
		// Mean momentum: H_x(0,0) = -d<uv>/dy, H_z(0,0) = -d<vw>/dy.
		w00 := s.widx(0, 0)
		base := w00 * ny
		cuv := ws.meanS0
		cvw := ws.meanS1
		for i := 0; i < ny; i++ {
			cuv[i] = real(prods[pUV][base+i])
			cvw[i] = real(prods[pVW][base+i])
		}
		s.b0fac.SolveReal(cuv)
		s.b0fac.SolveReal(cvw)
		s.b1.MulVec(meanHx, cuv)
		s.b1.MulVec(meanHz, cvw)
		for i := 0; i < ny; i++ {
			meanHx[i] = -meanHx[i]
			meanHz[i] = -meanHz[i]
		}
	}
	sp.End()
}
