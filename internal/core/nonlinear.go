package core

// Nonlinear term evaluation, paper §2.3 steps (a)-(h): the three velocity
// components are transposed y->z, zero-padded to the 3/2 quadrature grid
// and inverse transformed in z, transposed z->x, padded and inverse
// transformed in x; the quadratic products are formed pointwise on the
// physical grid; the products then retrace the path with forward transforms
// and truncation. Products and transforms in x share one threaded block so
// lines stay in cache across the three operations, as in the paper.
//
// The paper forms five product fields; we carry the six independent
// components of u_i*u_j (uu, uv, uw, vv, vw, ww) for a direct assembly of
// the divergence-form right-hand sides — see DESIGN.md for the accounting
// difference, which the machine model (not this code) normalizes back to
// the paper's five.

import (
	"math"
	"sync"
)

const (
	pUU = iota
	pUV
	pUW
	pVV
	pVW
	pWW
	nProducts
)

// products computes the six dealiased quadratic products as y-pencil
// collocation values, layout [kxLoc][kzLoc][Ny] per product.
func (s *Solver) products() [][]complex128 {
	d := s.D
	g := s.G
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()

	// (a) y-pencils -> z-pencils for u, v, w.
	vel := s.velocityValues()
	zp := d.YtoZ(nil, vel)

	// (b)+(c) pad in z and inverse transform, line by line.
	kxloc := s.kxhi - s.kxlo
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := kxloc * nyLoc
	zphys := make([][]complex128, 3)
	for f := 0; f < 3; f++ {
		zphys[f] = make([]complex128, linesZ*mz)
		src, dst := zp[f], zphys[f]
		s.pool().ForBlocks(linesZ, func(lo, hi int) {
			scratch := make([]complex128, mz)
			for l := lo; l < hi; l++ {
				s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], src[l*nz:(l+1)*nz], scratch)
			}
		})
	}

	// (d) z-pencils -> x-pencils.
	xp := d.ZtoX(nil, zphys, mz)

	// (e)+(f)+(g)+(h-start): one threaded block spans the inverse x
	// transform, the pointwise products, and the forward x transform.
	zxl, zxh := d.ZRangeX(mz)
	nzLoc := zxh - zxl
	linesX := nyLoc * nzLoc
	prodX := make([][]complex128, nProducts)
	for f := range prodX {
		prodX[f] = make([]complex128, linesX*nkx)
	}
	yl0, _ := d.YRange()
	locMaxU := make([]float64, s.Cfg.Ny)
	locMaxV := make([]float64, s.Cfg.Ny)
	locMaxW := make([]float64, s.Cfg.Ny)
	var maxMu sync.Mutex
	s.pool().ForBlocks(linesX, func(lo, hi int) {
		pu := make([]float64, mx)
		pv := make([]float64, mx)
		pw := make([]float64, mx)
		pp := make([]float64, mx)
		scratch := make([]complex128, mx/2+1)
		blkU := make([]float64, s.Cfg.Ny)
		blkV := make([]float64, s.Cfg.Ny)
		blkW := make([]float64, s.Cfg.Ny)
		for l := lo; l < hi; l++ {
			s.padX.InversePaddedScratch(pu, xp[0][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pv, xp[1][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pw, xp[2][l*nkx:(l+1)*nkx], scratch)
			// Harvest physical velocity maxima for the CFL diagnostic;
			// line l sits at global collocation index yl0 + l/nzLoc.
			yg := yl0 + l/nzLoc
			for i := 0; i < mx; i++ {
				blkU[yg] = math.Max(blkU[yg], math.Abs(pu[i]))
				blkV[yg] = math.Max(blkV[yg], math.Abs(pv[i]))
				blkW[yg] = math.Max(blkW[yg], math.Abs(pw[i]))
			}
			forward := func(f int, a, b []float64) {
				for i := 0; i < mx; i++ {
					pp[i] = a[i] * b[i]
				}
				s.padX.ForwardTruncatedScratch(prodX[f][l*nkx:(l+1)*nkx], pp, scratch)
			}
			forward(pUU, pu, pu)
			forward(pUV, pu, pv)
			forward(pUW, pu, pw)
			forward(pVV, pv, pv)
			forward(pVW, pv, pw)
			forward(pWW, pw, pw)
		}
		maxMu.Lock()
		for y := range locMaxU {
			locMaxU[y] = math.Max(locMaxU[y], blkU[y])
			locMaxV[y] = math.Max(locMaxV[y], blkV[y])
			locMaxW[y] = math.Max(locMaxW[y], blkW[y])
		}
		maxMu.Unlock()
	})
	s.physMaxMu.Lock()
	s.physMaxU, s.physMaxV, s.physMaxW = locMaxU, locMaxV, locMaxW
	s.physMaxCurrent = true
	s.physMaxMu.Unlock()

	// (h) reverse path: x-pencils -> z-pencils, forward z with truncation,
	// z-pencils -> y-pencils.
	zp2 := d.XtoZ(nil, prodX, mz)
	zspec := make([][]complex128, nProducts)
	for f := range zspec {
		zspec[f] = make([]complex128, linesZ*nz)
		src, dst := zp2[f], zspec[f]
		s.pool().ForBlocks(linesZ, func(lo, hi int) {
			scratch := make([]complex128, mz)
			for l := lo; l < hi; l++ {
				s.padZ.ForwardTruncatedScratch(dst[l*nz:(l+1)*nz], src[l*mz:(l+1)*mz], scratch)
			}
		})
	}
	return d.ZtoY(nil, zspec)
}

// nonlinearTerms evaluates h_g and h_v (collocation values per local
// wavenumber) and the mean-flow forcing profiles on the owner rank,
// dispatching on the configured convective-term form. With
// DisableNonlinear it returns zeros.
func (s *Solver) nonlinearTerms() (hg, hv [][]complex128, meanHx, meanHz []float64) {
	ny := s.Cfg.Ny
	hg = allocCoef(s.nw, ny)
	hv = allocCoef(s.nw, ny)
	if s.ownsMean {
		meanHx = make([]float64, ny)
		meanHz = make([]float64, ny)
	}
	if s.Cfg.DisableNonlinear {
		return hg, hv, meanHx, meanHz
	}
	switch s.Cfg.Nonlinear {
	case FormConvective:
		return s.convectiveTerms()
	case FormSkewSymmetric:
		hgD, hvD, mxD, mzD := s.divergenceTerms()
		hgC, hvC, mxC, mzC := s.convectiveTerms()
		half := complex(0.5, 0)
		for w := 0; w < s.nw; w++ {
			for i := 0; i < ny; i++ {
				hgD[w][i] = half * (hgD[w][i] + hgC[w][i])
				hvD[w][i] = half * (hvD[w][i] + hvC[w][i])
			}
		}
		if s.ownsMean {
			for i := 0; i < ny; i++ {
				mxD[i] = (mxD[i] + mxC[i]) / 2
				mzD[i] = (mzD[i] + mzC[i]) / 2
			}
		}
		return hgD, hvD, mxD, mzD
	default:
		return s.divergenceTerms()
	}
}

// divergenceTerms is the paper's path: six dealiased quadratic products.
func (s *Solver) divergenceTerms() (hg, hv [][]complex128, meanHx, meanHz []float64) {
	ny := s.Cfg.Ny
	hg = allocCoef(s.nw, ny)
	hv = allocCoef(s.nw, ny)
	if s.ownsMean {
		meanHx = make([]float64, ny)
		meanHz = make([]float64, ny)
	}
	prods := s.products()

	s.pool().ForBlocks(s.nw, func(wlo, whi int) {
		sv := make([]complex128, ny)  // S  = i*kx*uv + i*kz*vw
		sg := make([]complex128, ny)  // Sg = i*kz*uv - i*kx*vw
		tv := make([]complex128, ny)  // T  = kx^2*uu + 2*kx*kz*uw + kz^2*ww
		vv := make([]complex128, ny)  // vv
		tmp := make([]complex128, ny) // derivative values
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			base := w * ny
			ikxC := complex(0, kx)
			ikzC := complex(0, kz)
			for i := 0; i < ny; i++ {
				uv := prods[pUV][base+i]
				vw := prods[pVW][base+i]
				sv[i] = ikxC*uv + ikzC*vw
				sg[i] = ikzC*uv - ikxC*vw
				tv[i] = complex(kx*kx, 0)*prods[pUU][base+i] +
					complex(2*kx*kz, 0)*prods[pUW][base+i] +
					complex(kz*kz, 0)*prods[pWW][base+i]
				vv[i] = prods[pVV][base+i]
			}
			// h_g = kx*kz*(uu-ww) - (kx^2-kz^2)*uw - d/dy(Sg)
			cSg := append([]complex128(nil), sg...)
			s.b0fac.SolveComplex(cSg)
			s.b1.MulVecComplex(tmp, cSg)
			hgw := hg[w]
			for i := 0; i < ny; i++ {
				hgw[i] = complex(kx*kz, 0)*(prods[pUU][base+i]-prods[pWW][base+i]) -
					complex(kx*kx-kz*kz, 0)*prods[pUW][base+i] - tmp[i]
			}
			// h_v = k2*S + k2*d/dy(vv) - d/dy(T) + d2/dy2(S)
			hvw := hv[w]
			ck2 := complex(k2, 0)
			cS := append([]complex128(nil), sv...)
			s.b0fac.SolveComplex(cS)
			s.b2.MulVecComplex(tmp, cS)
			for i := 0; i < ny; i++ {
				hvw[i] = ck2*sv[i] + tmp[i]
			}
			cV := append([]complex128(nil), vv...)
			s.b0fac.SolveComplex(cV)
			s.b1.MulVecComplex(tmp, cV)
			for i := 0; i < ny; i++ {
				hvw[i] += ck2 * tmp[i]
			}
			cT := append([]complex128(nil), tv...)
			s.b0fac.SolveComplex(cT)
			s.b1.MulVecComplex(tmp, cT)
			for i := 0; i < ny; i++ {
				hvw[i] -= tmp[i]
			}
		}
	})

	if s.ownsMean {
		// Mean momentum: H_x(0,0) = -d<uv>/dy, H_z(0,0) = -d<vw>/dy.
		w00 := s.widx(0, 0)
		base := w00 * ny
		cuv := make([]float64, ny)
		cvw := make([]float64, ny)
		for i := 0; i < ny; i++ {
			cuv[i] = real(prods[pUV][base+i])
			cvw[i] = real(prods[pVW][base+i])
		}
		s.b0fac.SolveReal(cuv)
		s.b0fac.SolveReal(cvw)
		s.b1.MulVec(meanHx, cuv)
		s.b1.MulVec(meanHz, cvw)
		for i := 0; i < ny; i++ {
			meanHx[i] = -meanHx[i]
			meanHz[i] = -meanHz[i]
		}
	}
	return hg, hv, meanHx, meanHz
}
