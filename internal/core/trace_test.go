package core

import (
	"bytes"
	"math"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// TestStepOnceSteadyStateAllocsTrace: with the flight recorder attached
// (phase spans, exchange wire intervals, peer waits and step markers all
// recording), the warm step must stay within the same budget as the
// uninstrumented path. Events land in preallocated atomic slots, so
// tracing itself contributes zero heap objects per event.
func TestStepOnceSteadyStateAllocsTrace(t *testing.T) {
	trc := trace.New(0)
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Telemetry: telemetry.NewRegistry(), Trace: trc}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.2, 2, 2, 13)
	s.Advance(2)
	allocs := testing.AllocsPerRun(5, func() { s.StepOnce() })
	if allocs > stepAllocBudget {
		t.Errorf("steady-state traced StepOnce: %v allocs per step, budget %d",
			allocs, stepAllocBudget)
	}
	t.Logf("steady-state traced StepOnce: %v allocs per step (budget %d)",
		allocs, stepAllocBudget)
	if trc.Rank(0).Recorded() == 0 {
		t.Error("recorder attached but no events recorded")
	}
}

// TestTraceImpliesTelemetry: a config with only Trace set still gets phase
// spans — New provisions a private registry so the recorder has a span
// source to piggyback on.
func TestTraceImpliesTelemetry(t *testing.T) {
	trc := trace.New(0)
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1, Trace: trc}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Advance(1)
	evs := trc.Rank(0).Events()
	var phases, steps int
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindPhase:
			phases++
		case trace.KindStep:
			steps++
		}
	}
	if phases == 0 || steps != 1 {
		t.Errorf("trace-only config recorded %d phase and %d step events", phases, steps)
	}
}

// TestMultiRankTraceMatchesTelemetry is the ISSUE's multi-rank acceptance:
// a P=4 traced run must export Chrome trace-event JSON with one complete
// track per rank, the per-phase durations summed from the trace must agree
// with the telemetry phase counters to within 10% (they piggyback on the
// same spans, so disagreement means dropped or torn events), and the
// critical-path analyzer must name a gating rank and phase for every step.
func TestMultiRankTraceMatchesTelemetry(t *testing.T) {
	const steps = 3
	reg := telemetry.NewRegistry()
	trc := trace.New(0)
	cfg := Config{Nx: 16, Ny: 17, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		PA: 2, PB: 2, Pool: par.NewPool(2), Telemetry: reg, Trace: trc}
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 7)
		s.Advance(steps)
	})

	// One complete track per rank: every rank recorded every step marker
	// and no ring overwrote anything we are about to compare.
	perRank := trc.Events()
	if len(perRank) != 4 {
		t.Fatalf("trace carries %d rank tracks, want 4", len(perRank))
	}
	traceByPhase := make([]float64, telemetry.NumPhases)
	for rank, evs := range perRank {
		if len(evs) == 0 {
			t.Fatalf("rank %d track is empty", rank)
		}
		if d := trc.Rank(rank).Dropped(); d != 0 {
			t.Fatalf("rank %d dropped %d events; grow the ring for this test", rank, d)
		}
		var stepEvents int
		for _, ev := range evs {
			switch ev.Kind {
			case trace.KindStep:
				stepEvents++
			case trace.KindPhase:
				traceByPhase[ev.Phase] += ev.Dur.Seconds()
			}
		}
		if stepEvents != steps {
			t.Errorf("rank %d recorded %d step events, want %d", rank, stepEvents, steps)
		}
	}

	// Chrome export round-trips through the validator.
	var buf bytes.Buffer
	if err := trc.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("exported Chrome JSON invalid: %v", err)
	} else if n == 0 {
		t.Error("exported Chrome JSON has no events")
	}

	// Per-phase agreement with the telemetry counters (TotalSeconds sums
	// across ranks, as does traceByPhase).
	snap := reg.Snapshot()
	if snap.Steps != steps*4 { // StepDone totals across ranks
		t.Fatalf("telemetry saw %d rank-steps, want %d", snap.Steps, steps*4)
	}
	for _, ps := range snap.Phases {
		p, ok := telemetry.PhaseFromString(ps.Phase)
		if !ok {
			t.Fatalf("snapshot carries unknown phase %q", ps.Phase)
		}
		got := traceByPhase[p]
		if ps.TotalSeconds <= 0 {
			continue
		}
		if rel := math.Abs(got-ps.TotalSeconds) / ps.TotalSeconds; rel > 0.10 {
			t.Errorf("phase %s: trace sum %.6fs vs telemetry %.6fs (%.1f%% apart, want <10%%)",
				ps.Phase, got, ps.TotalSeconds, 100*rel)
		}
	}

	// The analyzer names a gating rank and phase for every step.
	reports := trace.Analyze(perRank)
	if len(reports) != steps {
		t.Fatalf("analyzer produced %d step reports, want %d", len(reports), steps)
	}
	for _, rep := range reports {
		if rep.GatingRank < 0 || rep.GatingRank >= 4 {
			t.Errorf("step %d: gating rank %d out of range", rep.Step, rep.GatingRank)
		}
		if rep.GatingPhase < 0 || rep.GatingPhase >= telemetry.NumPhases {
			t.Errorf("step %d: gating phase %v out of range", rep.Step, rep.GatingPhase)
		}
		if rep.GatingSeconds <= 0 {
			t.Errorf("step %d: gating seconds %g", rep.Step, rep.GatingSeconds)
		}
		for r, sl := range rep.SlackSeconds {
			if sl < 0 {
				t.Errorf("step %d rank %d: negative slack %g", rep.Step, r, sl)
			}
		}
		if rep.SlackSeconds[rep.GatingRank] != 0 {
			t.Errorf("step %d: gating rank carries slack %g", rep.Step,
				rep.SlackSeconds[rep.GatingRank])
		}
	}

	// The report digest built from this trace passes schema validation.
	rep := telemetry.NewReport("table9", reg, nil)
	rep.Trace = trace.Summarize(trc)
	if err := rep.Validate(); err != nil {
		t.Errorf("report with trace digest fails Validate: %v", err)
	}
}
