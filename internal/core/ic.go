package core

import (
	"math"

	"channeldns/internal/mpi"
)

// Initial conditions. All setters are local: each rank sets only the modes
// it owns, using deterministic mode-keyed randomization so that the
// conjugate-symmetry constraint on the kx = 0 plane is satisfied without
// communication and so that runs are reproducible across process grids.

// World returns the full communicator backing the solver's process grid.
func (s *Solver) World() *mpi.Comm { return s.Cart().Comm }

// Cart returns the cartesian process-grid communicator.
func (s *Solver) Cart() *mpi.CartComm { return s.D.Cart }

// SetMeanProfile sets the mean streamwise profile U(y) on the owner rank
// (no-op elsewhere).
func (s *Solver) SetMeanProfile(f func(y float64) float64) {
	if !s.ownsMean {
		return
	}
	vals := make([]float64, s.Cfg.Ny)
	for i, y := range s.grev {
		vals[i] = f(y)
	}
	copy(s.meanU, s.B.Interpolate(vals))
}

// SetLaminar sets the laminar Poiseuille profile U(y) = ReTau*(1-y^2)/2,
// the steady solution under unit forcing.
func (s *Solver) SetLaminar() {
	re := s.Cfg.ReTau
	s.SetMeanProfile(func(y float64) float64 { return re * (1 - y*y) / 2 })
}

// SetModeV sets v-hat for a locally owned mode from a value function
// (interpolated at the collocation points). No-op if the mode is not local.
// The caller is responsible for wall compatibility (f(+-1) = f'(+-1) = 0).
func (s *Solver) SetModeV(ikx, ikz int, f func(y float64) complex128) {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return
	}
	s.interpolateComplex(s.cv[w], f)
}

// SetModeOmega sets omega_y-hat for a locally owned mode from a value
// function. The caller is responsible for f(+-1) = 0.
func (s *Solver) SetModeOmega(ikx, ikz int, f func(y float64) complex128) {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return
	}
	s.interpolateComplex(s.cw[w], f)
}

func (s *Solver) interpolateComplex(dst []complex128, f func(y float64) complex128) {
	ny := s.Cfg.Ny
	re := make([]float64, ny)
	im := make([]float64, ny)
	for i, y := range s.grev {
		v := f(y)
		re[i] = real(v)
		im[i] = imag(v)
	}
	cr := s.B.Interpolate(re)
	ci := s.B.Interpolate(im)
	for i := 0; i < ny; i++ {
		dst[i] = complex(cr[i], ci[i])
	}
}

// Perturb adds wall-compatible disturbances of the given amplitude to all
// locally owned modes with |kx index| <= kxMax and |kz index| <= kzMax
// (excluding the mean). Phases derive deterministically from (seed, mode),
// with conjugate symmetry on the kx = 0 plane built in, so a run is
// bit-reproducible for any process grid.
func (s *Solver) Perturb(amp float64, kxMax, kzMax int, seed int64) {
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		kzIdx := s.G.KzIndex(ikz)
		if ikx > kxMax || kzIdx > kzMax || kzIdx < -kzMax {
			continue
		}
		av := modePhase(seed, ikx, kzIdx, 0)
		ao := modePhase(seed, ikx, kzIdx, 1)
		if ikx == 0 && kzIdx < 0 {
			// Conjugate partner of (0, -kzIdx): reality of the field.
			av = conj(modePhase(seed, 0, -kzIdx, 0))
			ao = conj(modePhase(seed, 0, -kzIdx, 1))
		}
		av *= complex(amp, 0)
		ao *= complex(amp, 0)
		// v shape (1-y^2)^2 satisfies v = v' = 0; omega shape (1-y^2)
		// satisfies omega = 0 at the walls.
		s.setShape(s.cv[w], av, func(y float64) float64 { q := 1 - y*y; return q * q })
		s.setShape(s.cw[w], ao, func(y float64) float64 { return 1 - y*y })
	}
}

func (s *Solver) setShape(dst []complex128, a complex128, shape func(float64) float64) {
	ny := s.Cfg.Ny
	vals := make([]float64, ny)
	for i, y := range s.grev {
		vals[i] = shape(y)
	}
	c := s.B.Interpolate(vals)
	for i := 0; i < ny; i++ {
		dst[i] += a * complex(c[i], 0)
	}
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// modePhase is a deterministic unit-magnitude complex number keyed by
// (seed, mode, component).
func modePhase(seed int64, ikx, kzIdx, comp int) complex128 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(ikx+1)*0xbf58476d1ce4e5b9 +
		uint64(kzIdx+1000)*0x94d049bb133111eb + uint64(comp)*0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	theta := 2 * math.Pi * float64(h%1000003) / 1000003
	sn, cs := math.Sincos(theta)
	return complex(cs, sn)
}
