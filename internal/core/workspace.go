package core

// The steady-state workspace arena. Every per-substep buffer the nonlinear
// pipeline and the implicit advance need is allocated once here, at Solver
// construction, and reused for the life of the run — the allocation-
// discipline analog of the paper's 1x communication buffers (§4.3). After
// the first step the only heap traffic per substep is the handful of
// closure headers created when loops are handed to the worker pool (see
// the steady-state allocation test).
//
// Sharing rules the buffers rely on:
//   - Field buffers are sized for the largest consumer (the convective
//     form needs 6 velocity fields and 9 z/x-pencil fields; the divergence
//     form needs 3 and 6) and sliced down per call. Every pipeline stage
//     fully overwrites the elements it later reads, so stale data from the
//     other form is never observed.
//   - Modes that a stage skips (the z Nyquist column, the mean mode on
//     ranks that do not own it) are never written by any stage, so they
//     keep the zeros they were allocated with.
//   - hg/hv (and the mean forcing profiles) are double-buffered: the
//     "current" buffer is written each substep and then swapped with the
//     Solver's previous-substep buffer, replacing the seed's
//     allocate-per-substep pattern.

// wsWorker is one worker's private line scratch, selected by the block id
// of ForBlocksIndexed (always < Pool.Workers()). Buffers are grouped by
// the loop family that uses them; families never run concurrently, so
// buffers are shared across families where the lengths match.
type wsWorker struct {
	// Ny-length complex line scratch for the per-wavenumber loops
	// (velocity evaluation, RHS assembly, implicit advance).
	ln [6][]complex128
	// Ny-length real scratch (mean-profile evaluation, CFL maxima).
	rl [4][]float64
	// Padded-z transform stage: transform scratch and a spectral line for
	// the z-derivative input.
	zscr, zline []complex128
	// Padded-x transform stage: physical lines (u v w, their y, z, and x
	// derivatives), the product line, transform scratch, and a spectral
	// line for the x-derivative input.
	phys  [12][]float64
	prod  []float64
	xscr  []complex128
	xline []complex128
}

// solverWS is the arena owned by one Solver.
type solverWS struct {
	// Nonlinear pipeline field buffers, in pipeline order. Capacities are
	// the convective-form (worst-case) field counts.
	velY   [][]complex128 // velocities (+ y-derivatives) in y-pencils
	zpVel  [][]complex128 // the same after YtoZ
	zphys  [][]complex128 // padded physical-z lines (+ z-derivatives)
	xp     [][]complex128 // the same after ZtoX
	prodX  [][]complex128 // products / H components in x-pencils
	zpProd [][]complex128 // the same after XtoZ
	zspec  [][]complex128 // truncated spectral-z lines
	prodsY [][]complex128 // products back in y-pencils

	// Per-y physical velocity maxima accumulated across one pipeline pass.
	locMaxU, locMaxV, locMaxW []float64

	// Current-substep nonlinear terms, swapped with Solver.hgPrev/hvPrev
	// (and the mean equivalents) after each substep.
	hgCur, hvCur         [][]complex128
	meanHxCur, meanHzCur []float64

	// Second output set for the skew-symmetric average, built on first use.
	hgAlt, hvAlt         [][]complex128
	meanHxAlt, meanHzAlt []float64

	// Serial scratch for the owner rank's mean-mode work.
	meanS0, meanS1 []float64

	// i*kz per wrapped z mode, for the spectral z derivative.
	kzMul []complex128

	workers []wsWorker
}

// newWorkspace sizes the arena from the decomposition and transform plans
// already attached to the solver.
func (s *Solver) newWorkspace() *solverWS {
	ny := s.Cfg.Ny
	g := s.G
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()
	d := s.D

	kxloc := s.kxhi - s.kxlo
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := kxloc * nyLoc
	zxl, zxh := d.ZRangeX(mz)
	linesX := nyLoc * (zxh - zxl)

	ws := &solverWS{
		velY:   allocFieldsC(6, s.nw*ny),
		zpVel:  allocFieldsC(6, linesZ*nz),
		zphys:  allocFieldsC(9, linesZ*mz),
		xp:     allocFieldsC(9, linesX*nkx),
		prodX:  allocFieldsC(nProducts, linesX*nkx),
		zpProd: allocFieldsC(nProducts, linesZ*mz),
		zspec:  allocFieldsC(nProducts, linesZ*nz),
		prodsY: allocFieldsC(nProducts, s.nw*ny),

		locMaxU: make([]float64, ny),
		locMaxV: make([]float64, ny),
		locMaxW: make([]float64, ny),

		hgCur: allocCoef(s.nw, ny),
		hvCur: allocCoef(s.nw, ny),

		meanS0: make([]float64, ny),
		meanS1: make([]float64, ny),

		kzMul: make([]complex128, nz),
	}
	for j := 0; j < nz; j++ {
		ws.kzMul[j] = complex(0, g.Kz(j))
	}
	if s.ownsMean {
		ws.meanHxCur = make([]float64, ny)
		ws.meanHzCur = make([]float64, ny)
	}

	ws.workers = make([]wsWorker, s.pool().Workers())
	for i := range ws.workers {
		w := &ws.workers[i]
		for j := range w.ln {
			w.ln[j] = make([]complex128, ny)
		}
		for j := range w.rl {
			w.rl[j] = make([]float64, ny)
		}
		w.zscr = make([]complex128, s.padZ.ScratchLen())
		w.zline = make([]complex128, nz)
		for j := range w.phys {
			w.phys[j] = make([]float64, mx)
		}
		w.prod = make([]float64, mx)
		w.xscr = make([]complex128, s.padX.ScratchLen())
		w.xline = make([]complex128, nkx)
	}
	return ws
}

// ensureAlt builds the second nonlinear-output set the skew-symmetric form
// combines with the first.
func (s *Solver) ensureAlt() {
	ws := s.ws
	if ws.hgAlt != nil {
		return
	}
	ny := s.Cfg.Ny
	ws.hgAlt = allocCoef(s.nw, ny)
	ws.hvAlt = allocCoef(s.nw, ny)
	if s.ownsMean {
		ws.meanHxAlt = make([]float64, ny)
		ws.meanHzAlt = make([]float64, ny)
	}
}

func allocFieldsC(nf, n int) [][]complex128 {
	out := make([][]complex128, nf)
	for i := range out {
		out[i] = make([]complex128, n)
	}
	return out
}

func zeroC(x []complex128) {
	for i := range x {
		x[i] = 0
	}
}

func zeroF(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
