package core

import (
	"runtime"
	"sync"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// TestOverlapBitIdenticalToSerial: the pipelined transpose/FFT path must
// reproduce the serial-exchange path exactly (==, not within tolerance) —
// the consume hooks run the same per-line transforms in the same floating-
// point order, only the communication schedule differs. Covers even and
// uneven decompositions and non-default pipeline depths, including the
// P=1 serial fallback.
func TestOverlapBitIdenticalToSerial(t *testing.T) {
	cases := []struct {
		name   string
		pa, pb int
		chunks int
		ny     int
	}{
		{"P1-fallback", 1, 1, 0, 24},
		{"PA1xPB2-uneven", 1, 2, 3, 17},
		{"PA2xPB1", 2, 1, 0, 24},
		{"PA2xPB2-uneven", 2, 2, 2, 17},
		{"PA4xPB1-deep", 4, 1, 64, 24},
		{"PA2xPB4-uneven", 2, 4, 0, 19},
	}
	const steps = 3
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Nx: 16, Ny: tc.ny, Nz: 16, ReTau: 180, Dt: 1e-3,
				Forcing: 1, PA: tc.pa, PB: tc.pb}
			np := tc.pa * tc.pb
			if np > 1 {
				cfg.Pool = par.NewPool(2)
			}

			run := func(overlap bool) map[[2]int][][2][]complex128 {
				c := cfg
				c.Overlap = overlap
				c.PipelineChunks = tc.chunks
				out := map[[2]int][][2][]complex128{}
				var mu sync.Mutex
				mpi.Run(np, func(w *mpi.Comm) {
					s, err := New(w, c)
					if err != nil {
						t.Error(err)
						return
					}
					s.SetLaminar()
					s.Perturb(0.3, 2, 2, 42)
					s.Advance(steps)
					mu.Lock()
					defer mu.Unlock()
					for wi := 0; wi < s.nw; wi++ {
						ikx, ikz := s.modeOf(wi)
						cv := append([]complex128(nil), s.cv[wi]...)
						cw := append([]complex128(nil), s.cw[wi]...)
						out[[2]int{ikx, ikz}] = append(out[[2]int{ikx, ikz}],
							[2][]complex128{cv, cw})
					}
				})
				return out
			}

			serial := run(false)
			piped := run(true)
			if len(piped) != len(serial) {
				t.Fatalf("mode count mismatch: serial %d, pipelined %d",
					len(serial), len(piped))
			}
			for key, want := range serial {
				got, ok := piped[key]
				if !ok {
					t.Fatalf("mode (%d,%d) missing from pipelined run", key[0], key[1])
				}
				for mi := range want {
					for i := range want[mi][0] {
						if got[mi][0][i] != want[mi][0][i] {
							t.Fatalf("mode (%d,%d) v[%d]: serial %v, pipelined %v",
								key[0], key[1], i, want[mi][0][i], got[mi][0][i])
						}
						if got[mi][1][i] != want[mi][1][i] {
							t.Fatalf("mode (%d,%d) omega[%d]: serial %v, pipelined %v",
								key[0], key[1], i, want[mi][1][i], got[mi][1][i])
						}
					}
				}
			}
		})
	}
}

// TestStepOnceSteadyStateAllocsOverlap: the pipelined path must respect
// the same per-step allocation budget as the serial path. The stream's
// requests, chunk descriptors and consume hooks are all preallocated or
// prebound at construction, so the only additions over the serial step
// are the pool-submission headers of the per-chunk consume calls.
// Measured process-wide across a warm 4-rank overlapped run (ranks are
// goroutines, so testing.AllocsPerRun cannot isolate one rank).
func TestStepOnceSteadyStateAllocsOverlap(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		PA: 2, PB: 2, Overlap: true}
	const np, steps = 4, 5
	var perRankStep float64
	mpi.Run(np, func(w *mpi.Comm) {
		s, err := New(w, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.2, 2, 2, 13)
		// Warm up: transpose plans, streams, chunk tables, operator cache.
		s.Advance(2)
		w.Barrier()
		var m0, m1 runtime.MemStats
		if w.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m0)
		}
		w.Barrier()
		s.Advance(steps)
		w.Barrier()
		if w.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perRankStep = float64(m1.Mallocs-m0.Mallocs) / float64(np*steps)
		}
		w.Barrier()
	})
	if perRankStep > stepAllocBudget {
		t.Errorf("overlapped warm step: %.1f allocs per rank-step, budget %d",
			perRankStep, stepAllocBudget)
	}
	t.Logf("overlapped warm step: %.1f allocs per rank-step (budget %d)",
		perRankStep, stepAllocBudget)
}
