package core

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"

	"channeldns/internal/mpi"
)

// TestPhysicalPlaneSingleMode: a single known mode must invert to the
// expected cosine pattern on the physical grid.
func TestPhysicalPlaneSingleMode(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Lx: 2 * math.Pi, Lz: 2 * math.Pi}
	s := serialSolver(t, cfg)
	// v-hat(kx=2, kz=3) = shape(y): physical v = 2*Re[shape * e^{i(2x+3z)}].
	amp := 0.4
	s.SetModeV(2, 3, func(y float64) complex128 {
		q := 1 - y*y
		return complex(amp*q*q, 0)
	})
	yi := 8
	yv := s.CollocationPoints()[yi]
	q := 1 - yv*yv
	want := func(x, z float64) float64 { return 2 * amp * q * q * math.Cos(2*x+3*z) }
	plane := s.PhysicalPlane(CompV, yi)
	mx, mz := s.G.MX(), s.G.MZ()
	for zi := 0; zi < mz; zi += 3 {
		for xi := 0; xi < mx; xi += 5 {
			x := cfg.Lx * float64(xi) / float64(mx)
			z := cfg.Lz * float64(zi) / float64(mz)
			if d := math.Abs(plane[zi][xi] - want(x, z)); d > 1e-9 {
				t.Fatalf("plane[%d][%d] = %g, want %g", zi, xi, plane[zi][xi], want(x, z))
			}
		}
	}
}

// TestPhysicalPlaneMeanU: the mean profile must appear as a constant plane.
func TestPhysicalPlaneMeanU(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 10, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	yi := 7
	want := s.MeanProfile()[yi]
	plane := s.PhysicalPlane(CompU, yi)
	for _, row := range plane {
		for _, v := range row {
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("mean plane value %g want %g", v, want)
			}
		}
	}
}

// TestPhysicalPlaneOmegaZWall: for laminar flow omega_z = -dU/dy; near the
// lower wall that is about -ReTau (wall shear in wall units).
func TestPhysicalPlaneOmegaZWall(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 24, Nz: 8, ReTau: 5, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	plane := s.PhysicalPlane(CompOmegaZ, 0) // at the wall
	want := -cfg.ReTau                      // -dU/dy|wall = -ReTau*y|... d/dy[Re(1-y^2)/2] = -Re*y -> at y=-1: +Re... sign check below
	got := plane[0][0]
	if math.Abs(math.Abs(got)-cfg.ReTau) > 1e-6 {
		t.Fatalf("wall omega_z %g, want +-%g", got, want)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 5)
		s.Advance(3)
		var buf bytes.Buffer
		if err := s.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		saved := buf.Bytes()

		s2, _ := New(c, cfg)
		if err := s2.LoadCheckpoint(bytes.NewReader(saved)); err != nil {
			t.Fatal(err)
		}
		if s2.Time != s.Time || s2.Step != s.Step {
			t.Fatalf("time/step mismatch: %g/%d vs %g/%d", s2.Time, s2.Step, s.Time, s.Step)
		}
		// Both must evolve identically afterwards.
		s.Advance(2)
		s2.Advance(2)
		for w := 0; w < s.nw; w++ {
			for i := range s.cv[w] {
				if cmplx.Abs(s.cv[w][i]-s2.cv[w][i]) > 1e-14 {
					t.Fatalf("state diverged after restart at mode %d coef %d", w, i)
				}
			}
		}
	})
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(c, Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1})
		var buf bytes.Buffer
		if err := s.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		s2, _ := New(c, Config{Nx: 16, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1})
		if err := s2.LoadCheckpoint(&buf); err == nil {
			t.Error("expected grid mismatch error")
		}
	})
}
