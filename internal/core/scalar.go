package core

// Passive-scalar transport advected by the turbulent channel flow: the
// third registered workload. A scalar theta (temperature in the usual
// reading) rides the channel solver's velocity field,
//
//	d theta/dt + d(u_j theta)/dx_j = kappa * Laplacian(theta),
//
// with kappa = nu/Prandtl, fixed wall values Theta(-1) = +1, Theta(+1) = -1
// (heated bottom wall, cooled top wall) and the same Fourier x/z +
// B-spline y discretization and IMEX RK3 advance as the momentum
// equations. Like the mean flow, the (0,0) scalar profile is advanced
// separately on its owner rank; fluctuations carry homogeneous Dirichlet
// walls.
//
// Each substep the scalar adds one extra excursion through the existing
// transpose/FFT cycle: the three velocities and theta go out to the
// dealiased physical grid (4 fields), the flux products u*theta, v*theta,
// w*theta come back (3 fields), and the divergence-form right-hand side
//
//	h_theta = -(i kx (u theta) + i kz (w theta) + d/dy (v theta))
//
// is assembled per mode exactly like the momentum terms. The excursion
// reuses the channel solver's workspace arena: by the time the scalar pass
// runs, the nonlinear pipeline's field buffers are dead until the next
// substep, and the pass fully rewrites every element it reads.

import (
	"fmt"
	"io"
	"time"

	"channeldns/internal/ckpt"
	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// ScalarSolver embeds the full channel solver and carries the scalar state
// alongside it. Go embedding has no virtual dispatch, so every method whose
// behavior must include the scalar (the step loop and the checkpoint
// adapters) is overridden explicitly here.
type ScalarSolver struct {
	*Solver
	kappa float64

	// Spline coefficients of theta-hat per local mode, and the
	// previous-substep scalar term (collocation values).
	cth     [][]complex128
	hthPrev [][]complex128
	hthCur  [][]complex128

	// Mean scalar profile (owner of kx=kz=0 only).
	meanTh                   []float64
	meanHthPrev, meanHthCur  []float64

	// Per-wavenumber factored implicit operators for the current dt.
	sOps     []*scalarOps
	sMeanOps [3]bandSolver
	sOpsDt   float64
}

type scalarOps struct {
	lhs [3]bandSolver
}

// NewScalar constructs the passive-scalar workload collectively on the
// world communicator.
func NewScalar(world *mpi.Comm, cfg Config) (*ScalarSolver, error) {
	cfg.fillDefaults()
	cfg.Workload = WorkloadScalar
	if cfg.Overlap {
		return nil, fmt.Errorf("core: the scalar workload runs the serial exchange only (Overlap unsupported)")
	}
	if cfg.Prandtl <= 0 {
		return nil, fmt.Errorf("core: Prandtl must be positive, got %g", cfg.Prandtl)
	}
	inner, err := New(world, cfg)
	if err != nil {
		return nil, err
	}
	t := &ScalarSolver{
		Solver: inner,
		kappa:  inner.nu / cfg.Prandtl,
	}
	ny := cfg.Ny
	t.cth = allocCoef(inner.nw, ny)
	t.hthPrev = allocCoef(inner.nw, ny)
	t.hthCur = allocCoef(inner.nw, ny)
	if inner.ownsMean {
		t.meanTh = make([]float64, ny)
		t.meanHthPrev = make([]float64, ny)
		t.meanHthCur = make([]float64, ny)
	}
	if t.tel != nil {
		// The flop credit must match the scalar schedule, not the channel's.
		t.stepFlops = int64(t.Cfg.ScalarSchedule().TotalFlops() / float64(world.Size()))
	}
	return t, nil
}

// WorkloadName identifies the scalar workload (the embedded solver's
// configuration carries it, but be explicit).
func (t *ScalarSolver) WorkloadName() string { return WorkloadScalar }

// Kappa returns the scalar diffusivity nu/Prandtl.
func (t *ScalarSolver) Kappa() float64 { return t.kappa }

// ThetaCoef returns the spline coefficients of theta-hat for a locally
// owned mode, or nil. The slice aliases solver state.
func (t *ScalarSolver) ThetaCoef(ikx, ikz int) []complex128 {
	if w := t.widx(ikx, ikz); w >= 0 {
		return t.cth[w]
	}
	return nil
}

// MeanThetaCoef returns the spline coefficients of the mean scalar profile
// (owner rank only; nil elsewhere). The slice aliases solver state.
func (t *ScalarSolver) MeanThetaCoef() []float64 { return t.meanTh }

// SetMeanScalarProfile sets the mean scalar profile Theta(y) on the owner
// rank (no-op elsewhere). The profile should satisfy Theta(-1) = +1,
// Theta(+1) = -1 to be compatible with the wall conditions.
func (t *ScalarSolver) SetMeanScalarProfile(f func(y float64) float64) {
	if !t.ownsMean {
		return
	}
	vals := make([]float64, t.Cfg.Ny)
	for i, y := range t.grev {
		vals[i] = f(y)
	}
	copy(t.meanTh, t.B.Interpolate(vals))
}

// SetConduction sets the pure-conduction profile Theta(y) = -y, the steady
// no-flow solution between the heated walls.
func (t *ScalarSolver) SetConduction() {
	t.SetMeanScalarProfile(func(y float64) float64 { return -y })
}

// PerturbScalar adds wall-compatible scalar disturbances to all locally
// owned modes with |kx index| <= kxMax and |kz index| <= kzMax (excluding
// the mean), deterministic in (seed, mode) with conjugate symmetry on the
// kx = 0 plane.
func (t *ScalarSolver) PerturbScalar(amp float64, kxMax, kzMax int, seed int64) {
	for w := 0; w < t.nw; w++ {
		ikx, ikz := t.modeOf(w)
		if t.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		kzIdx := t.G.KzIndex(ikz)
		if ikx > kxMax || kzIdx > kzMax || kzIdx < -kzMax {
			continue
		}
		a := modePhase(seed, ikx, kzIdx, 2)
		if ikx == 0 && kzIdx < 0 {
			a = conj(modePhase(seed, 0, -kzIdx, 2))
		}
		a *= complex(amp, 0)
		// Shape (1-y^2) satisfies theta = 0 at both walls.
		t.setShape(t.cth[w], a, func(y float64) float64 { return 1 - y*y })
	}
}

// InitDefault seeds the canonical scalar-channel initial condition: the
// channel default (laminar profile + perturbation) plus the conduction
// scalar profile and a matching scalar perturbation.
func (t *ScalarSolver) InitDefault(amp float64, seed int64) {
	t.Solver.InitDefault(amp, seed)
	t.SetConduction()
	t.PerturbScalar(amp, 2, 2, seed)
}

// ensureSOps rebuilds the scalar operator cache when the time step changes:
// per mode, lhs[s] = B0 - beta_s*dt*kappa*(B2 - k2*B0) with wall value rows,
// plus the mean operators at k2 = 0.
func (t *ScalarSolver) ensureSOps(dt float64) {
	if t.sOps != nil && t.sOpsDt == dt {
		return
	}
	t.sOps = make([]*scalarOps, t.nw)
	t.sOpsDt = dt
	for w := 0; w < t.nw; w++ {
		ikx, ikz := t.modeOf(w)
		if t.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		k2 := t.G.K2(ikx, ikz)
		op := &scalarOps{}
		for sub := 0; sub < 3; sub++ {
			c := rkBeta[sub] * dt * t.kappa
			lhs, err := t.assembleLHS(c, k2)
			if err != nil {
				panic(fmt.Sprintf("core: singular scalar operator k2=%g: %v", k2, err))
			}
			op.lhs[sub] = lhs
		}
		t.sOps[w] = op
	}
	for sub := 0; sub < 3; sub++ {
		c := rkBeta[sub] * dt * t.kappa
		m, err := t.assembleLHS(c, 0)
		if err != nil {
			panic(fmt.Sprintf("core: singular scalar mean operator: %v", err))
		}
		t.sMeanOps[sub] = m
	}
}

// scalarTerms evaluates h_theta (collocation values per local mode) and
// the mean scalar forcing profile on the owner rank, via the extra
// transpose/FFT excursion described in the package comment. It must run
// before advanceSubstep updates the velocity state, so the scalar sees the
// same substage velocity the momentum terms did.
func (t *ScalarSolver) scalarTerms() (hth [][]complex128, meanHth []float64) {
	s := t.Solver
	ws := s.ws
	d := s.D
	g := s.G
	ny := s.Cfg.Ny
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()
	hth = t.hthCur
	meanHth = t.meanHthCur

	// Velocity values at this substage (recomputed — the pipeline buffers
	// that held them were consumed by the momentum pass) plus theta values,
	// as the 4-field y-pencil block the excursion carries out.
	s.velocityValues()
	sp := s.tel.Begin(telemetry.PhasePressure)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		th := wk.ln[0]
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if g.IsNyquistZ(ikz) {
				continue // stays zero
			}
			base := w * ny
			if ikx == 0 && ikz == 0 {
				if s.ownsMean {
					tvals := wk.rl[0]
					s.b0.MulVec(tvals, t.meanTh)
					for i := 0; i < ny; i++ {
						ws.velY[3][base+i] = complex(tvals[i], 0)
					}
				}
				continue
			}
			s.b0.MulVecComplex(th, t.cth[w])
			copy(ws.velY[3][base:base+ny], th)
		}
	})
	sp.End()

	// Out: y -> z -> x with padded inverse transforms (4 fields).
	d.YtoZ(ws.zpVel[:4], ws.velY[:4])
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := (s.kxhi - s.kxlo) * nyLoc
	sp = s.tel.Begin(telemetry.PhaseFFTInverse)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		scratch := ws.workers[blk].zscr
		for f := 0; f < 4; f++ {
			src, dst := ws.zpVel[f], ws.zphys[f]
			for l := lo; l < hi; l++ {
				s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], src[l*nz:(l+1)*nz], scratch)
			}
		}
	})
	sp.End()
	d.ZtoX(ws.xp[:4], ws.zphys[:4], mz)

	// The x excursion: 4 inverse transforms, 3 flux products, 3 forward
	// truncated transforms per line.
	zxl, zxh := d.ZRangeX(mz)
	linesX := nyLoc * (zxh - zxl)
	sp = s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(linesX, func(blk, lo, hi int) {
		w := &ws.workers[blk]
		pu, pv, pw, pt := w.phys[0], w.phys[1], w.phys[2], w.phys[3]
		pp := w.prod
		scratch := w.xscr
		for l := lo; l < hi; l++ {
			s.padX.InversePaddedScratch(pu, ws.xp[0][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pv, ws.xp[1][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pw, ws.xp[2][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pt, ws.xp[3][l*nkx:(l+1)*nkx], scratch)
			forward := func(f int, a []float64) {
				for i := 0; i < mx; i++ {
					pp[i] = a[i] * pt[i]
				}
				s.padX.ForwardTruncatedScratch(ws.prodX[f][l*nkx:(l+1)*nkx], pp, scratch)
			}
			forward(0, pu) // u*theta
			forward(1, pv) // v*theta
			forward(2, pw) // w*theta
		}
	})
	sp.End()

	// Back: x -> z -> y with the truncated forward z transform (3 fields).
	d.XtoZ(ws.zpProd[:3], ws.prodX[:3], mz)
	sp = s.tel.Begin(telemetry.PhaseFFTForward)
	s.pool().ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		scratch := ws.workers[blk].zscr
		for f := 0; f < 3; f++ {
			src, dst := ws.zpProd[f], ws.zspec[f]
			for l := lo; l < hi; l++ {
				s.padZ.ForwardTruncatedScratch(dst[l*nz:(l+1)*nz], src[l*mz:(l+1)*mz], scratch)
			}
		}
	})
	sp.End()
	prods := d.ZtoY(ws.prodsY[:3], ws.zspec[:3])

	// Assemble h_theta = -(i kx (u th) + i kz (w th) + d/dy (v th)).
	sp = s.tel.Begin(telemetry.PhaseNonlinear)
	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &ws.workers[blk]
		tmp := wk.ln[0]
		sol := wk.ln[1]
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if g.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			kx, kz := g.Kx(ikx), g.Kz(ikz)
			base := w * ny
			ikxC := complex(0, kx)
			ikzC := complex(0, kz)
			copy(sol, prods[1][base:base+ny])
			s.b0fac.SolveComplex(sol)
			s.b1.MulVecComplex(tmp, sol)
			hw := hth[w]
			for i := 0; i < ny; i++ {
				hw[i] = -(ikxC*prods[0][base+i] + ikzC*prods[2][base+i] + tmp[i])
			}
		}
	})
	if s.ownsMean {
		// Mean scalar: H_theta(0,0) = -d<v theta>/dy.
		w00 := s.widx(0, 0)
		base := w00 * ny
		cvt := ws.meanS0
		for i := 0; i < ny; i++ {
			cvt[i] = real(prods[1][base+i])
		}
		s.b0fac.SolveReal(cvt)
		s.b1.MulVec(meanHth, cvt)
		for i := 0; i < ny; i++ {
			meanHth[i] = -meanHth[i]
		}
	}
	sp.End()
	return hth, meanHth
}

// advanceScalar performs the implicit scalar advance for one substep:
// fluctuations with homogeneous Dirichlet walls, then the mean profile with
// the fixed wall values Theta(-1) = +1, Theta(+1) = -1 on the owner rank.
func (t *ScalarSolver) advanceScalar(sub int, dt float64, hth [][]complex128, mHth []float64) {
	s := t.Solver
	sp := s.tel.Begin(telemetry.PhaseViscousSolve)
	ny := s.Cfg.Ny
	ga := rkGamma[sub]
	ze := rkZeta[sub]
	al := rkAlpha[sub] * dt * t.kappa

	s.pool().ForBlocksIndexed(s.nw, func(blk, wlo, whi int) {
		wk := &s.ws.workers[blk]
		rhs := wk.ln[0]
		vals := wk.ln[1]
		lap := wk.ln[2]
		helmTmp := wk.ln[3]
		for w := wlo; w < whi; w++ {
			op := t.sOps[w]
			if op == nil {
				continue // mean or Nyquist
			}
			k2 := s.G.K2(s.modeOf(w))
			s.b0.MulVecComplex(vals, t.cth[w])
			s.applyHelmValues(lap, t.cth[w], k2, helmTmp)
			for i := 0; i < ny; i++ {
				rhs[i] = vals[i] + complex(al, 0)*lap[i] +
					complex(dt, 0)*(complex(ga, 0)*hth[w][i]+complex(ze, 0)*t.hthPrev[w][i])
			}
			rhs[0], rhs[ny-1] = 0, 0 // theta(+-1) = 0 (fluctuations)
			op.lhs[sub].SolveComplex(rhs)
			copy(t.cth[w], rhs)
		}
	})

	if s.ownsMean {
		rhs := s.ws.meanS0
		lap := s.ws.meanS1
		s.b0.MulVec(rhs, t.meanTh)
		s.b2.MulVec(lap, t.meanTh)
		for i := 0; i < ny; i++ {
			rhs[i] += al*lap[i] + dt*(ga*mHth[i]+ze*t.meanHthPrev[i])
		}
		rhs[0], rhs[ny-1] = 1, -1 // heated bottom wall, cooled top wall
		t.sMeanOps[sub].SolveReal(rhs)
		copy(t.meanTh, rhs)
	}
	sp.End()
}

// StepOnce advances flow and scalar by one full time step: the channel
// substep sequence with the scalar pass inserted between the nonlinear
// evaluation (which must see the pre-advance velocity) and the buffer swap.
func (t *ScalarSolver) StepOnce() {
	s := t.Solver
	t0 := time.Now()
	dt := s.Cfg.Dt
	s.ensureOps(dt)
	t.ensureSOps(dt)
	s.trc.BeginStep(int64(s.Step))
	for sub := 0; sub < 3; sub++ {
		s.trc.SetStage(sub)
		hg, hv, mHx, mHz := s.nonlinearTerms()
		hth, mHth := t.scalarTerms()
		s.advanceSubstep(sub, dt, hg, hv, mHx, mHz)
		t.advanceScalar(sub, dt, hth, mHth)
		s.hgPrev, s.ws.hgCur = hg, s.hgPrev
		s.hvPrev, s.ws.hvCur = hv, s.hvPrev
		t.hthPrev, t.hthCur = hth, t.hthPrev
		if s.ownsMean {
			s.meanHxPrev, s.ws.meanHxCur = mHx, s.meanHxPrev
			s.meanHzPrev, s.ws.meanHzCur = mHz, s.meanHzPrev
			t.meanHthPrev, t.meanHthCur = mHth, t.meanHthPrev
		}
	}
	s.trc.SetStage(-1)
	s.trc.EndStep(t0, time.Now())
	s.Time += dt
	s.Step++
	s.tel.StepDone(time.Since(t0))
	s.tel.AddFlops(s.stepFlops)
}

// Advance runs n full time steps (flow + scalar).
func (t *ScalarSolver) Advance(n int) {
	for i := 0; i < n; i++ {
		t.StepOnce()
	}
}

// AdvanceAdaptive runs n steps with the channel solver's deterministic dt
// adjustment (the scalar adds no stricter explicit stability bound for
// Prandtl >= 1; the diffusive term is implicit either way). Returns the
// final dt.
func (t *ScalarSolver) AdvanceAdaptive(n int, targetCFL float64, checkEvery int) float64 {
	if targetCFL <= 0 {
		panic("core: targetCFL must be positive")
	}
	if checkEvery < 1 {
		checkEvery = 1
	}
	for i := 0; i < n; i++ {
		if i%checkEvery == 0 {
			cfl := t.CFLEstimate()
			if cfl > 0 {
				scale := targetCFL / cfl
				if scale < 0.9 || scale > 1.5 {
					if scale > 2 {
						scale = 2
					}
					if scale < 0.3 {
						scale = 0.3
					}
					t.Cfg.Dt *= scale
				}
			}
		}
		t.StepOnce()
	}
	return t.Cfg.Dt
}

// ScalarVariance integrates the scalar fluctuation variance over y (times
// 1/2), by the same quadrature TotalEnergy uses. Collective.
func (t *ScalarSolver) ScalarVariance() float64 {
	s := t.Solver
	ny := s.Cfg.Ny
	prof := make([]float64, ny)
	vals := make([]complex128, ny)
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		wt := 2.0
		if ikx == 0 {
			wt = 1.0
		}
		s.b0.MulVecComplex(vals, t.cth[w])
		for i := 0; i < ny; i++ {
			prof[i] += wt * sq(vals[i])
		}
	}
	prof = mpi.Allreduce(s.World(), mpi.OpSum, prof)
	c := s.B.Interpolate(prof)
	wts := s.B.IntegrationWeights()
	v := 0.0
	for i := range wts {
		v += wts[i] * c[i]
	}
	return v / 2
}

// MeanScalarProfile returns the mean scalar at the collocation points,
// broadcast from the owner rank to all ranks.
func (t *ScalarSolver) MeanScalarProfile() []float64 {
	s := t.Solver
	vals := make([]float64, s.Cfg.Ny)
	if s.ownsMean {
		s.b0.MulVec(vals, t.meanTh)
	}
	return mpi.Bcast(s.World(), 0, vals)
}

// WallScalarFlux returns |dTheta/dy| at the lower wall, the conductive
// wall flux (1 in pure conduction, larger once turbulence mixes).
// Collective.
func (t *ScalarSolver) WallScalarFlux() float64 {
	s := t.Solver
	var q float64
	if s.ownsMean {
		lo, _ := s.wallDerivReal(t.meanTh)
		if lo < 0 {
			lo = -lo
		}
		q = lo
	}
	return mpi.Bcast(s.World(), 0, []float64{q})[0]
}

// StatusLine extends the channel status with the scalar variance and wall
// flux. Collective.
func (t *ScalarSolver) StatusLine() string {
	return t.Solver.StatusLine() + fmt.Sprintf("  th2=%9.2e  q_w=%6.4f", t.ScalarVariance(), t.WallScalarFlux())
}

// CheckpointState extends the channel state with the scalar fields: cth
// and hthPrev as extended complex fields, the mean scalar profile and its
// previous-substep term as extended mean profiles.
func (t *ScalarSolver) CheckpointState() *ckpt.State {
	st := t.Solver.CheckpointState()
	st.Extra = [][][]complex128{t.cth, t.hthPrev}
	if t.ownsMean {
		st.ExtraMean = [][]float64{t.meanTh, t.meanHthPrev}
	}
	return st
}

// WriteCheckpoint collectively publishes one checkpoint of flow + scalar.
func (t *ScalarSolver) WriteCheckpoint(store *ckpt.Store, opts ...ckpt.WriteOption) (string, error) {
	return store.Write(t.D.Cart.Comm, t.CheckpointState(), opts...)
}

// RestoreCheckpoint collectively restores the named checkpoint.
func (t *ScalarSolver) RestoreCheckpoint(store *ckpt.Store, name string) error {
	st := t.CheckpointState()
	if err := store.Restore(t.D.Cart.Comm, name, st); err != nil {
		return err
	}
	t.applyRestored(st)
	return nil
}

// ResumeLatest collectively restores the newest valid checkpoint.
func (t *ScalarSolver) ResumeLatest(store *ckpt.Store) (string, error) {
	st := t.CheckpointState()
	name, err := store.Resume(t.D.Cart.Comm, st)
	if err != nil {
		return "", err
	}
	t.applyRestored(st)
	return name, nil
}

// SaveCheckpoint writes this rank's flow + scalar state as one shard.
func (t *ScalarSolver) SaveCheckpoint(w io.Writer) error {
	_, _, err := ckpt.EncodeShard(w, t.CheckpointState())
	return err
}

// LoadCheckpoint restores this rank's flow + scalar state from a stream
// written by SaveCheckpoint with a matching configuration.
func (t *ScalarSolver) LoadCheckpoint(r io.Reader) error {
	st := t.CheckpointState()
	if err := ckpt.DecodeShard(r, st); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	t.applyRestored(st)
	return nil
}
