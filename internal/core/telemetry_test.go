package core

import (
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// TestTelemetryPhaseCoverage: the phase spans are leaf regions tiling the
// timestep, so the per-step sum of mean-rank phase seconds must track the
// measured step wall clock to within the repo's 10% acceptance bound
// (anything looser means a hot region escaped instrumentation). Runs the
// same serial configuration cmd/bench-timestep -json reports on.
func TestTelemetryPhaseCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-ratio test, skipped in -short")
	}
	if telemetry.RaceEnabled {
		t.Skip("race instrumentation skews the in-span/out-of-span time split")
	}
	reg := telemetry.NewRegistry()
	cfg := Config{Nx: 16, Ny: 17, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Telemetry: reg}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 1)
		s.Advance(2) // warm caches so compile/plan time is not in the sample
		reg.Reset()
		s.Advance(3)
	})
	snap := reg.Snapshot()
	if snap.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", snap.Steps)
	}
	wall := snap.MeanStepSeconds
	sum := snap.PhaseSecondsSum()
	if wall <= 0 || sum <= 0 {
		t.Fatalf("degenerate timings: wall=%g sum=%g", wall, sum)
	}
	ratio := sum / wall
	t.Logf("phase sum %.4fs / wall %.4fs = %.3f over %d steps", sum, wall, ratio, snap.Steps)
	if ratio < 0.90 || ratio > 1.10 {
		t.Errorf("phase-seconds sum is %.1f%% of step wall clock, want within 10%%",
			100*ratio)
	}
	// Every phase of the divergence-form step must have fired.
	want := []telemetry.Phase{telemetry.PhaseNonlinear, telemetry.PhaseFFTForward,
		telemetry.PhaseFFTInverse, telemetry.PhaseTransposeAB,
		telemetry.PhaseViscousSolve, telemetry.PhasePressure}
	have := map[string]bool{}
	for _, p := range snap.Phases {
		have[p.Phase] = true
	}
	for _, p := range want {
		if !have[p.String()] {
			t.Errorf("phase %s missing from snapshot", p)
		}
	}
}

// TestTelemetryPhaseCoverageOverlap: the pipelined transpose/FFT path must
// preserve the leaf-span tiling invariant even though transpose and FFT
// work now interleave in time — the transpose spans are segmented around
// each consume callback and the consume runs under its own FFT phase, so
// no instant is double-counted and none escapes. Multi-rank (2x2) because
// P=1 falls back to the serial path; rank goroutines share the machine, so
// the acceptance band is wider than the serial test's 10%.
func TestTelemetryPhaseCoverageOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-ratio test, skipped in -short")
	}
	if telemetry.RaceEnabled {
		t.Skip("race instrumentation skews the in-span/out-of-span time split")
	}
	reg := telemetry.NewRegistry()
	cfg := Config{Nx: 16, Ny: 17, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		PA: 2, PB: 2, Overlap: true, Telemetry: reg}
	mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 1)
		s.Advance(2) // warm caches, plans, streams and wire arenas
		c.Barrier()
		if c.Rank() == 0 {
			reg.Reset()
		}
		c.Barrier()
		s.Advance(3)
	})
	snap := reg.Snapshot()
	// Steps sums across the 4 rank collectors: 3 recorded steps per rank.
	if snap.Steps != 12 {
		t.Fatalf("Steps = %d, want 12 (3 steps x 4 ranks)", snap.Steps)
	}
	// MeanStepSeconds and PhaseSecondsSum both reduce per-rank totals the
	// same way (mean over ranks), so the tiling ratio is rank-count free.
	wall := snap.MeanStepSeconds
	sum := snap.PhaseSecondsSum()
	if wall <= 0 || sum <= 0 {
		t.Fatalf("degenerate timings: wall=%g sum=%g", wall, sum)
	}
	ratio := sum / wall
	t.Logf("overlapped phase sum %.4fs / wall %.4fs = %.3f over %d rank-steps",
		sum, wall, ratio, snap.Steps)
	// Waits on in-flight chunks happen inside the segmented transpose spans
	// and consume work inside FFT spans, so the tiling bound survives the
	// overlap; scheduling noise across 4 rank goroutines earns the wider
	// 20% band (the serial test holds the tight 10%).
	if ratio < 0.80 || ratio > 1.20 {
		t.Errorf("overlapped phase-seconds sum is %.1f%% of step wall clock, want within 20%%",
			100*ratio)
	}
	want := []telemetry.Phase{telemetry.PhaseNonlinear, telemetry.PhaseFFTForward,
		telemetry.PhaseFFTInverse, telemetry.PhaseTransposeAB,
		telemetry.PhaseViscousSolve, telemetry.PhasePressure}
	have := map[string]bool{}
	for _, p := range snap.Phases {
		have[p.Phase] = true
	}
	for _, p := range want {
		if !have[p.String()] {
			t.Errorf("phase %s missing from overlapped snapshot", p)
		}
	}
}
