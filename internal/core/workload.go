// Workload registry: the channel solver is one simulation scenario of
// many sharing the pencil/FFT substrate. A Workload bundles everything a
// driver needs — construction, default initial conditions, time advance,
// a status line, checkpointing, and a declarative schedule block — so
// cmd/dns, the bench tools, telemetry validation and machine-model
// pricing work identically for every registered entry.
package core

import (
	"fmt"
	"sort"

	"channeldns/internal/ckpt"
	"channeldns/internal/mpi"
	"channeldns/internal/schedule"
)

// Names of the built-in workloads.
const (
	WorkloadChannel   = "channel"
	WorkloadIsotropic = "isotropic"
	WorkloadScalar    = "scalar"
)

// Workload is a running simulation scenario. All methods that touch
// distributed state (advance, status, checkpointing) are collective: every
// rank of the workload's world must call them together.
type Workload interface {
	// WorkloadName returns the registered name ("channel", ...).
	WorkloadName() string
	// World returns the communicator the workload runs on.
	World() *mpi.Comm
	// CurrentStep, CurrentTime and CurrentDt expose the time-advance
	// state (CurrentDt tracks adaptive stepping).
	CurrentStep() int
	CurrentTime() float64
	CurrentDt() float64
	// InitDefault seeds the workload's canonical initial condition: the
	// base state plus a deterministic divergence-free perturbation of
	// amplitude amp derived from seed.
	InitDefault(amp float64, seed int64)
	// StepOnce advances one full RK3 step; Advance takes n of them.
	StepOnce()
	Advance(n int)
	// AdvanceAdaptive advances n steps, rescaling dt toward targetCFL
	// every checkEvery steps; it returns the final dt.
	AdvanceAdaptive(n int, targetCFL float64, checkEvery int) float64
	// CFLEstimate returns the current CFL number at the current dt.
	CFLEstimate() float64
	// StatusLine returns a one-line progress summary. Collective; the
	// returned string is meaningful on every rank.
	StatusLine() string
	// Checkpointing. The store is workload-agnostic; states carry the
	// workload name so cross-workload resumes fail with both names.
	NewCheckpointStore(dir string, keep int) *ckpt.Store
	WriteCheckpoint(store *ckpt.Store, opts ...ckpt.WriteOption) (string, error)
	ResumeLatest(store *ckpt.Store) (string, error)
}

// ChannelFlow is implemented by workloads whose state is (or embeds) the
// wall-bounded channel solver, giving drivers access to channel-specific
// diagnostics (mean profiles, friction velocity, spectra, budgets). The
// passive-scalar workload qualifies; isotropic turbulence does not.
type ChannelFlow interface {
	ChannelSolver() *Solver
}

// workloadEntry is one registered scenario.
type workloadEntry struct {
	describe string
	build    func(world *mpi.Comm, cfg Config) (Workload, error)
	sched    func(cfg Config) *schedule.Schedule
}

var workloads = map[string]workloadEntry{}

// RegisterWorkload adds a named workload to the registry. build constructs
// it on a communicator; sched emits its per-step schedule block purely from
// the configuration (no solver instance needed, so bench tools can price
// and validate a workload without running it). Registering a name twice
// panics: two packages fighting over a name is a programming error.
func RegisterWorkload(name, describe string,
	build func(world *mpi.Comm, cfg Config) (Workload, error),
	sched func(cfg Config) *schedule.Schedule) {
	if name == "" {
		panic("core: RegisterWorkload with empty name")
	}
	if _, dup := workloads[name]; dup {
		panic(fmt.Sprintf("core: workload %q registered twice", name))
	}
	workloads[name] = workloadEntry{describe: describe, build: build, sched: sched}
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WorkloadDescription returns the one-line description of a registered
// workload ("" if unknown).
func WorkloadDescription(name string) string {
	return workloads[name].describe
}

// NewWorkload constructs the workload named by cfg.Workload ("" selects
// "channel") on the given communicator. Unknown names report the full
// registry so a typo on the command line is self-diagnosing.
func NewWorkload(world *mpi.Comm, cfg Config) (Workload, error) {
	name := cfg.Workload
	if name == "" {
		name = WorkloadChannel
	}
	ent, ok := workloads[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q (registered: %v)", name, WorkloadNames())
	}
	cfg.Workload = name
	return ent.build(world, cfg)
}

// WorkloadSchedule returns the declarative per-step schedule block of the
// workload named by cfg.Workload, without constructing a solver. For the
// channel workloads the block describes the divergence-form nonlinear
// pipeline (the only form the schedule models).
func WorkloadSchedule(cfg Config) (*schedule.Schedule, error) {
	name := cfg.Workload
	if name == "" {
		name = WorkloadChannel
	}
	ent, ok := workloads[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q (registered: %v)", name, WorkloadNames())
	}
	return ent.sched(cfg), nil
}

func init() {
	RegisterWorkload(WorkloadChannel,
		"turbulent channel flow (KMM v/omega_y, B-spline wall-normal)",
		func(world *mpi.Comm, cfg Config) (Workload, error) { return New(world, cfg) },
		func(cfg Config) *schedule.Schedule { return cfg.Schedule() })
	RegisterWorkload(WorkloadIsotropic,
		"triply-periodic isotropic turbulence (pure Fourier, diagonal viscous solve)",
		func(world *mpi.Comm, cfg Config) (Workload, error) { return NewIsotropic(world, cfg) },
		func(cfg Config) *schedule.Schedule { return cfg.IsotropicSchedule() })
	RegisterWorkload(WorkloadScalar,
		"passive scalar advected by turbulent channel flow (heated walls)",
		func(world *mpi.Comm, cfg Config) (Workload, error) { return NewScalar(world, cfg) },
		func(cfg Config) *schedule.Schedule { return cfg.ScalarSchedule() })
}

// Workload interface methods of the channel solver. The channel solver is
// the registry's first entry; these accessors adapt its existing API
// without touching the numerical hot path.

// WorkloadName returns the workload stamped into the configuration
// ("channel" for directly constructed solvers, "scalar" for the embedded
// solver inside a ScalarSolver).
func (s *Solver) WorkloadName() string { return s.Cfg.Workload }

// CurrentStep returns the number of completed RK3 steps.
func (s *Solver) CurrentStep() int { return s.Step }

// CurrentTime returns the simulated time.
func (s *Solver) CurrentTime() float64 { return s.Time }

// CurrentDt returns the current time step (tracks adaptive stepping).
func (s *Solver) CurrentDt() float64 { return s.Cfg.Dt }

// ChannelSolver exposes the solver to channel-specific diagnostics.
func (s *Solver) ChannelSolver() *Solver { return s }

// InitDefault seeds the canonical channel initial condition: the laminar
// parabola plus a deterministic divergence-free perturbation.
func (s *Solver) InitDefault(amp float64, seed int64) {
	s.SetLaminar()
	s.Perturb(amp, 2, 2, seed)
}

// StatusLine summarizes the run the way cmd/dns always has: energy,
// friction velocity, bulk velocity and the boundary-condition residual.
// Collective.
func (s *Solver) StatusLine() string {
	e := s.TotalEnergy()
	ut := s.FrictionVelocity()
	ub := s.BulkVelocity()
	bc := s.BCResidual()
	return fmt.Sprintf("step %6d  t=%8.4f  E=%10.6f  u_tau=%6.4f  Ub=%8.4f  BCres=%.2e",
		s.Step, s.Time, e, ut, ub, bc)
}
