package core

import (
	"math"
	"math/cmplx"

	"channeldns/internal/mpi"
)

// Diagnostics used by tests, statistics and the example programs.

// BCResidual returns the largest boundary-condition violation across all
// locally advanced modes and both walls: |v|, |v'| and |omega_y| at y = +-1,
// reduced to the global maximum over ranks.
func (s *Solver) BCResidual() float64 {
	m := 0.0
	for w := 0; w < s.nw; w++ {
		if s.ops != nil && w < len(s.ops) && s.ops[w] == nil {
			continue
		}
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		vlo := s.evalWall(s.cv[w], false, 0)
		vhi := s.evalWall(s.cv[w], true, 0)
		dlo, dhi := s.wallDeriv(s.cv[w])
		olo := s.evalWall(s.cw[w], false, 0)
		ohi := s.evalWall(s.cw[w], true, 0)
		for _, c := range []complex128{vlo, vhi, dlo, dhi, olo, ohi} {
			if a := cmplx.Abs(c); a > m {
				m = a
			}
		}
	}
	return mpi.Allreduce(s.World(), mpi.OpMax, []float64{m})[0]
}

// evalWall evaluates a coefficient vector's value row at a wall.
func (s *Solver) evalWall(c []complex128, upper bool, _ int) complex128 {
	row := s.wall.LowerVal
	start := s.wall.LowerValStart
	if upper {
		row = s.wall.UpperVal
		start = s.wall.UpperValStart
	}
	var v complex128
	for j, a := range row {
		col := start + j
		if col >= 0 && col < len(c) {
			v += complex(a, 0) * c[col]
		}
	}
	return v
}

// EnergyProfile returns sum over modes of |u|^2+|v|^2+|w|^2 at each
// collocation point (one-sided modes weighted by two), globally reduced.
// The mean flow is included.
func (s *Solver) EnergyProfile() []float64 {
	ny := s.Cfg.Ny
	prof := make([]float64, ny)
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) {
			continue
		}
		u, v, wv, ok := s.modeVelocityLocal(ikx, ikz)
		if !ok {
			continue
		}
		wt := 2.0
		if ikx == 0 {
			wt = 1.0
		}
		for i := 0; i < ny; i++ {
			prof[i] += wt * (sq(u[i]) + sq(v[i]) + sq(wv[i]))
		}
	}
	return mpi.Allreduce(s.World(), mpi.OpSum, prof)
}

// modeVelocityLocal is ModeVelocityValues without the ownership check
// round trip (w is known local).
func (s *Solver) modeVelocityLocal(ikx, ikz int) (u, v, w []complex128, ok bool) {
	u, v, w = s.ModeVelocityValues(ikx, ikz)
	return u, v, w, u != nil
}

func sq(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

// TotalEnergy integrates EnergyProfile over y (times 1/2), giving the
// volume-averaged kinetic energy per unit plan area.
func (s *Solver) TotalEnergy() float64 {
	prof := s.EnergyProfile()
	c := s.B.Interpolate(prof)
	w := s.B.IntegrationWeights()
	e := 0.0
	for i := range w {
		e += w[i] * c[i]
	}
	return e / 2
}

// MeanProfile returns the mean streamwise velocity at the collocation
// points, broadcast from the owner rank to all ranks.
func (s *Solver) MeanProfile() []float64 {
	ny := s.Cfg.Ny
	vals := make([]float64, ny)
	root := 0 // owner of kx=kz=0 is cart rank (0,0) == world slot 0 of the grid
	if s.ownsMean {
		s.b0.MulVec(vals, s.meanU)
	}
	return mpi.Bcast(s.World(), root, vals)
}

// FrictionVelocity returns u_tau implied by the current mean profile,
// sqrt(nu * dU/dy) at the lower wall. In the wall-unit normalization the
// statistically stationary value is 1.
func (s *Solver) FrictionVelocity() float64 {
	var ut float64
	if s.ownsMean {
		lo, _ := s.wallDerivReal(s.meanU)
		ut = math.Sqrt(math.Abs(s.nu * lo))
	}
	return mpi.Bcast(s.World(), 0, []float64{ut})[0]
}

// CFLEstimate returns a conservative bound on the convective CFL number of
// the current state at the configured time step:
//
//	CFL <= dt * (max|u|/dx + max|v|/dy_min + max|w|/dz)
//
// with max|u_i| bounded by the sum of spectral amplitudes (triangle
// inequality), globally reduced. The explicit RK3 convection is stable for
// CFL below about sqrt(3); production channel codes keep it near 1. Because
// the bound is a sum of amplitudes it overestimates mildly for turbulent
// states.
func (s *Solver) CFLEstimate() float64 {
	ny := s.Cfg.Ny
	var maxU, maxV, maxW []float64
	s.physMaxMu.Lock()
	current := s.physMaxCurrent
	if current {
		// Exact physical maxima harvested during the last nonlinear
		// evaluation: each rank holds its own y range, merged by max.
		maxU = mpi.Allreduce(s.World(), mpi.OpMax, s.physMaxU)
		maxV = mpi.Allreduce(s.World(), mpi.OpMax, s.physMaxV)
		maxW = mpi.Allreduce(s.World(), mpi.OpMax, s.physMaxW)
	}
	s.physMaxMu.Unlock()
	if !current {
		// No nonlinear evaluation yet (or frozen convection): fall back to
		// the triangle-inequality bound from spectral amplitudes.
		maxU = make([]float64, ny)
		maxV = make([]float64, ny)
		maxW = make([]float64, ny)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) {
				continue
			}
			u, v, wv := s.ModeVelocityValues(ikx, ikz)
			wt := 2.0
			if ikx == 0 {
				wt = 1.0
			}
			for i := 0; i < ny; i++ {
				maxU[i] += wt * cmplx.Abs(u[i])
				maxV[i] += wt * cmplx.Abs(v[i])
				maxW[i] += wt * cmplx.Abs(wv[i])
			}
		}
		maxU = mpi.Allreduce(s.World(), mpi.OpSum, maxU)
		maxV = mpi.Allreduce(s.World(), mpi.OpSum, maxV)
		maxW = mpi.Allreduce(s.World(), mpi.OpSum, maxW)
	}
	dx := s.Cfg.Lx / float64(s.G.MX())
	dz := s.Cfg.Lz / float64(s.G.MZ())
	cfl := 0.0
	for i := 0; i < ny; i++ {
		dy := 1.0
		switch {
		case i == 0:
			dy = s.grev[1] - s.grev[0]
		case i == ny-1:
			dy = s.grev[ny-1] - s.grev[ny-2]
		default:
			dy = (s.grev[i+1] - s.grev[i-1]) / 2
		}
		c := maxU[i]/dx + maxV[i]/dy + maxW[i]/dz
		if c > cfl {
			cfl = c
		}
	}
	return cfl * s.Cfg.Dt
}

// BulkVelocity returns the bulk (volume-averaged) streamwise velocity.
func (s *Solver) BulkVelocity() float64 {
	var ub float64
	if s.ownsMean {
		w := s.B.IntegrationWeights()
		for i := range w {
			ub += w[i] * s.meanU[i]
		}
		ub /= 2 // channel height
	}
	return mpi.Bcast(s.World(), 0, []float64{ub})[0]
}
