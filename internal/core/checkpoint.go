package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"channeldns/internal/ckpt"
)

// Checkpointing: the spectral state (spline coefficients of v-hat and
// omega_y-hat plus the previous-substep nonlinear terms and the mean
// profiles) fully determines a run, so restart files carry exactly that,
// per rank. Production DNS campaigns live and die by restartability (the
// paper's run spans 650,000 steps). The heavy lifting — the versioned
// binary shard format, atomic sharded stores, re-sharded resume and
// corruption recovery — lives in internal/ckpt; this file adapts Solver
// state into a ckpt.State view and back.

// Fingerprint is a stable hash of the identity-defining configuration:
// the grid, domain, physics and discretization choices that determine
// whether two runs compute the same trajectory. The process grid (PA, PB),
// worker pool, Dt (adaptive runs change it mid-flight) and instrumentation
// hooks are deliberately excluded — a checkpoint moves freely across those.
func (c Config) Fingerprint() uint64 {
	c.fillDefaults()
	h := fnv.New64a()
	u := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	f := func(v float64) { u(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	h.Write([]byte(c.Workload))
	u(uint64(c.Nx))
	u(uint64(c.Ny))
	u(uint64(c.Nz))
	f(c.Lx)
	f(c.Lz)
	f(c.Ly)
	f(c.Prandtl)
	f(c.ReTau)
	u(uint64(c.Degree))
	f(c.Stretch)
	b(c.DisableNonlinear)
	f(c.Forcing)
	u(uint64(c.Nonlinear))
	b(c.UseGeneralSolver)
	return h.Sum64()
}

// CheckpointState returns this rank's state as a ckpt.State whose slices
// ALIAS the solver's buffers: writing a checkpoint reads them in place,
// and restoring through it copies decoded values back into the same
// workspace-arena-backed storage (no buffer identity changes, so the
// steady-state allocation discipline survives a restore).
func (s *Solver) CheckpointState() *ckpt.State {
	return &ckpt.State{
		Workload: s.Cfg.Workload,
		Nx:       s.Cfg.Nx, Ny: s.Cfg.Ny, Nz: s.Cfg.Nz, NKx: s.G.NKx(),
		Kxlo: s.kxlo, Kxhi: s.kxhi, Kzlo: s.kzlo, Kzhi: s.kzhi,
		Step: int64(s.Step), Time: s.Time, Dt: s.Cfg.Dt,
		Fingerprint: s.Cfg.Fingerprint(),
		CV:          s.cv, CW: s.cw, HgPrev: s.hgPrev, HvPrev: s.hvPrev,
		HasMean: s.ownsMean,
		MeanU:   s.meanU, MeanW: s.meanW,
		MeanHxPrev: s.meanHxPrev, MeanHzPrev: s.meanHzPrev,
	}
}

// applyRestored adopts a restored run position: clock, step count and the
// (possibly adaptively adjusted) time step. The per-wavenumber operator
// cache rebuilds lazily on the next step if Dt changed, and the cached
// physical-space maxima are stale by definition.
func (s *Solver) applyRestored(st *ckpt.State) {
	s.Time, s.Step = st.Time, int(st.Step)
	s.Cfg.Dt = st.Dt
	s.physMaxCurrent = false
}

// NewCheckpointStore builds this rank's handle on a checkpoint directory,
// wired to the solver's telemetry collector so checkpoint I/O shows up as
// the checkpoint_io phase. keep is the rolling retention count (<= 0
// keeps everything). Every rank must use the same directory.
func (s *Solver) NewCheckpointStore(dir string, keep int) *ckpt.Store {
	return ckpt.NewStore(dir, ckpt.WithRetention(keep), ckpt.WithTelemetry(s.tel))
}

// WriteCheckpoint collectively publishes one checkpoint of the current
// state to the store. Every rank must call it at the same step. Returns
// the checkpoint name.
func (s *Solver) WriteCheckpoint(store *ckpt.Store, opts ...ckpt.WriteOption) (string, error) {
	return store.Write(s.D.Cart.Comm, s.CheckpointState(), opts...)
}

// RestoreCheckpoint collectively restores the named checkpoint, re-sharding
// as needed: the checkpoint may have been written on any rank count.
func (s *Solver) RestoreCheckpoint(store *ckpt.Store, name string) error {
	st := s.CheckpointState()
	if err := store.Restore(s.D.Cart.Comm, name, st); err != nil {
		return err
	}
	s.applyRestored(st)
	return nil
}

// ResumeLatest collectively restores the newest valid checkpoint in the
// store, falling back past corrupt ones. Returns the name restored from,
// or ckpt.ErrNoCheckpoint when the store holds nothing usable.
func (s *Solver) ResumeLatest(store *ckpt.Store) (string, error) {
	st := s.CheckpointState()
	name, err := store.Resume(s.D.Cart.Comm, st)
	if err != nil {
		return "", err
	}
	s.applyRestored(st)
	return name, nil
}

// SaveCheckpoint writes this rank's state as one self-describing shard in
// the internal/ckpt binary format (each rank writes its own stream;
// callers typically open one file per rank). Kept for single-stream
// callers; production runs should use WriteCheckpoint, which adds atomic
// publication, manifests and retention.
func (s *Solver) SaveCheckpoint(w io.Writer) error {
	_, _, err := ckpt.EncodeShard(w, s.CheckpointState())
	return err
}

// LoadCheckpoint restores this rank's state from a stream written by
// SaveCheckpoint with a matching configuration and decomposition. The
// decoded values are copied into the solver's existing buffers (the
// buffers' identity is preserved). For restoring onto a different rank
// count, use RestoreCheckpoint.
func (s *Solver) LoadCheckpoint(r io.Reader) error {
	st := s.CheckpointState()
	if err := ckpt.DecodeShard(r, st); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.applyRestored(st)
	return nil
}
