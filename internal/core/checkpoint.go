package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing: the spectral state (spline coefficients of v-hat and
// omega_y-hat plus the mean profiles) fully determines a run, so restart
// files carry exactly that, per rank. Production DNS campaigns live and die
// by restartability (the paper's run spans 650,000 steps).

// checkpointState is the serialized form of one rank's state.
type checkpointState struct {
	Nx, Ny, Nz     int
	Kxlo, Kzlo     int
	Time           float64
	Step           int
	CV, CW         [][]complex128
	MeanU, MeanW   []float64
	HgPrev, HvPrev [][]complex128
	MeanHxPrev     []float64
	MeanHzPrev     []float64
}

// SaveCheckpoint writes this rank's state. Each rank writes its own stream
// (callers typically open one file per rank).
func (s *Solver) SaveCheckpoint(w io.Writer) error {
	st := checkpointState{
		Nx: s.Cfg.Nx, Ny: s.Cfg.Ny, Nz: s.Cfg.Nz,
		Kxlo: s.kxlo, Kzlo: s.kzlo,
		Time: s.Time, Step: s.Step,
		CV: s.cv, CW: s.cw,
		MeanU: s.meanU, MeanW: s.meanW,
		HgPrev: s.hgPrev, HvPrev: s.hvPrev,
		MeanHxPrev: s.meanHxPrev, MeanHzPrev: s.meanHzPrev,
	}
	return gob.NewEncoder(w).Encode(&st)
}

// LoadCheckpoint restores this rank's state from a stream written by
// SaveCheckpoint with a matching configuration and decomposition.
func (s *Solver) LoadCheckpoint(r io.Reader) error {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if st.Nx != s.Cfg.Nx || st.Ny != s.Cfg.Ny || st.Nz != s.Cfg.Nz {
		return fmt.Errorf("core: checkpoint grid %dx%dx%d does not match solver %dx%dx%d",
			st.Nx, st.Ny, st.Nz, s.Cfg.Nx, s.Cfg.Ny, s.Cfg.Nz)
	}
	if st.Kxlo != s.kxlo || st.Kzlo != s.kzlo {
		return fmt.Errorf("core: checkpoint decomposition mismatch (kxlo %d vs %d, kzlo %d vs %d)",
			st.Kxlo, s.kxlo, st.Kzlo, s.kzlo)
	}
	if len(st.CV) != s.nw {
		return fmt.Errorf("core: checkpoint carries %d modes, solver owns %d", len(st.CV), s.nw)
	}
	s.cv, s.cw = st.CV, st.CW
	s.hgPrev, s.hvPrev = st.HgPrev, st.HvPrev
	if s.ownsMean {
		if st.MeanU == nil {
			return fmt.Errorf("core: checkpoint missing mean profiles")
		}
		s.meanU, s.meanW = st.MeanU, st.MeanW
		s.meanHxPrev, s.meanHzPrev = st.MeanHxPrev, st.MeanHzPrev
	}
	s.Time, s.Step = st.Time, st.Step
	return nil
}
