package core

import (
	"math"
	"testing"

	"channeldns/internal/mpi"
)

// fluctuationEnergy splits TotalEnergy into mean and fluctuation parts.
func fluctuationEnergy(s *Solver) (eMean, eFluct float64) {
	e := s.TotalEnergy()
	um := s.MeanProfile()
	sq := make([]float64, len(um))
	for i, v := range um {
		sq[i] = v * v
	}
	coef := s.B.Interpolate(sq)
	w := s.B.IntegrationWeights()
	for i := range w {
		eMean += w[i] * coef[i]
	}
	eMean /= 2
	return eMean, e - eMean
}

// TestSmallPerturbationGrowthBounded: tiny disturbances on the laminar
// profile grow by transient (Orr/lift-up) mechanisms whose energy growth
// rate is bounded by the mean shear; the total energy must not move and the
// fluctuation growth rate must stay well below the shear bound.
func TestSmallPerturbationGrowthBounded(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 33, Nz: 16, ReTau: 180, Dt: 2e-4, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLaminar()
		s.Perturb(1e-6, 2, 2, 3)
		_, ef0 := fluctuationEnergy(s)
		e0 := s.TotalEnergy()
		s.Advance(100)
		e1 := s.TotalEnergy()
		_, ef1 := fluctuationEnergy(s)
		// Total energy: conserved up to the forcing/dissipation imbalance,
		// which is tiny for the laminar base state.
		if math.Abs(e1-e0)/e0 > 1e-6 {
			t.Errorf("total energy moved: %g -> %g", e0, e1)
		}
		// Fluctuation energy growth rate sigma = ln(E1/E0)/T must be far
		// below the shear bound 2*max|dU/dy| = 2*ReTau.
		T := 100 * cfg.Dt
		sigma := math.Log(ef1/ef0) / T
		if sigma > 2*cfg.ReTau/2 {
			t.Errorf("fluctuation growth rate %g exceeds the shear bound", sigma)
		}
		if math.IsNaN(sigma) || ef1 <= 0 {
			t.Errorf("bad fluctuation energies %g -> %g", ef0, ef1)
		}
	})
}

// TestTransitionEnergyBudget: at adequate wall-normal resolution, a
// finite-amplitude disturbance must ride through the early transient with
// the total energy obeying dE/dt <= Forcing * integral(U) (energy enters
// only through the pressure gradient). This is the regression test for the
// wall-normal aliasing blowup observed at under-resolved Ny. Long; skipped
// with -short.
func TestTransitionEnergyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("transition run is slow")
	}
	cfg := Config{Nx: 32, Ny: 65, Nz: 32, ReTau: 180, Dt: 4e-4, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLaminar()
		s.Perturb(0.3, 3, 3, 3)
		eMax := s.TotalEnergy()
		for b := 0; b < 6; b++ {
			tPrev := s.Time
			ePrev := s.TotalEnergy()
			s.AdvanceAdaptive(50, 0.8, 5)
			e := s.TotalEnergy()
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("energy blew up at t=%g", s.Time)
			}
			// Budget: dE <= F * 2*Ub * dt (with margin 2 for transients).
			dtBlock := s.Time - tPrev
			if e-ePrev > 2*2*s.BulkVelocity()*dtBlock+1e-6 {
				t.Errorf("energy budget violated: dE=%g over dt=%g (bound %g)",
					e-ePrev, dtBlock, 2*2*s.BulkVelocity()*dtBlock)
			}
			if e > eMax {
				eMax = e
			}
		}
		if r := s.BCResidual(); r > 1e-8 {
			t.Errorf("BC residual %g after transition transient", r)
		}
	})
}
