package core

import (
	"testing"

	"channeldns/internal/telemetry"
)

// stepAllocBudget is the documented per-step allocation budget for a warm
// serial (P=1, nil pool) solver: the step workspace arena, transpose
// plans, and FFT scratch are all preallocated, so the only steady-state
// allocations left are the closure headers passed to the worker pool (a
// handful per substep, ~6 loop submissions each) plus incidental runtime
// bookkeeping. Anything above this bound means a hot-path allocation
// regressed.
const stepAllocBudget = 64

// TestStepOnceSteadyStateAllocs: after warm-up, one full RK3 step on a
// small grid must allocate at most stepAllocBudget heap objects. The seed
// allocated every scratch field, pencil buffer, and FFT temporary per
// substep (hundreds of thousands of objects per step at this size).
func TestStepOnceSteadyStateAllocs(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.2, 2, 2, 13)
	// Warm up: builds transpose plans, Galerkin caches, operator cache.
	s.Advance(2)
	allocs := testing.AllocsPerRun(5, func() { s.StepOnce() })
	if allocs > stepAllocBudget {
		t.Errorf("steady-state StepOnce: %v allocs per step, budget %d",
			allocs, stepAllocBudget)
	}
	t.Logf("steady-state StepOnce: %v allocs per step (budget %d)", allocs, stepAllocBudget)
}

// TestStepOnceSteadyStateAllocsSkew: the skew-symmetric form runs both
// nonlinear pipelines plus the lazily built alternate buffer set; after
// warm-up it must stay within the same budget.
func TestStepOnceSteadyStateAllocsSkew(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Nonlinear: FormSkewSymmetric}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.2, 2, 2, 13)
	s.Advance(2)
	allocs := testing.AllocsPerRun(5, func() { s.StepOnce() })
	if allocs > stepAllocBudget {
		t.Errorf("steady-state skew StepOnce: %v allocs per step, budget %d",
			allocs, stepAllocBudget)
	}
}

// TestStepOnceSteadyStateAllocsTelemetry: the acceptance bar for the
// telemetry subsystem — with a registry attached (phase spans, step
// histogram, comm counters all live), the warm step must stay within the
// same budget. Spans are value-typed and counters are preallocated
// atomics, so instrumentation itself contributes zero heap objects.
func TestStepOnceSteadyStateAllocsTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1,
		Telemetry: reg}
	s := serialSolver(t, cfg)
	s.SetLaminar()
	s.Perturb(0.2, 2, 2, 13)
	s.Advance(2)
	allocs := testing.AllocsPerRun(5, func() { s.StepOnce() })
	if allocs > stepAllocBudget {
		t.Errorf("steady-state instrumented StepOnce: %v allocs per step, budget %d",
			allocs, stepAllocBudget)
	}
	t.Logf("steady-state instrumented StepOnce: %v allocs per step (budget %d)",
		allocs, stepAllocBudget)
	if got := s.Telemetry().PhaseCalls(telemetry.PhaseNonlinear); got == 0 {
		t.Error("telemetry attached but no nonlinear spans recorded")
	}
}
