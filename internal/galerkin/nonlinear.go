package galerkin

import (
	"channeldns/internal/par"
)

// Nonlinear term evaluation for the Galerkin scheme. Velocities are
// evaluated at the wall-normal quadrature points, run through the same
// transpose/dealiased-FFT pipeline as the collocation solver, multiplied
// pointwise, and the results are projected onto the test functions by
// quadrature, with y-derivatives integrated by parts:
//
//	Fhg_i = int B_i [kx*kz*(uu-ww) - (kx^2-kz^2)*uw] + int B_i' Sg
//	Fhv_i = k2 int B_i S - k2 int B_i' vv + int B_i' T + int B_i'' S
//
// with S = i*kx*uv + i*kz*vw, Sg = i*kz*uv - i*kx*vw and
// T = kx^2*uu + 2*kx*kz*uw + kz^2*ww.
const (
	pUU = iota
	pUV
	pUW
	pVV
	pVW
	pWW
	nProducts
)

func (s *Solver) pool() *par.Pool { return s.Cfg.Pool }

// velocityAtQuad evaluates u, v, w at the quadrature points for every local
// mode, in the y-pencil layout with NY = NumQuad.
func (s *Solver) velocityAtQuad() [][]complex128 {
	nq := s.qt.NumQuad()
	out := make([][]complex128, 3)
	for f := range out {
		out[f] = make([]complex128, s.nw*nq)
	}
	s.pool().ForBlocks(s.nw, func(wlo, whi int) {
		full := make([]complex128, s.Cfg.Ny)
		vq := make([]complex128, nq)
		vyq := make([]complex128, nq)
		omq := make([]complex128, nq)
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			base := w * nq
			if s.G.IsNyquistZ(ikz) {
				continue
			}
			if ikx == 0 && ikz == 0 {
				if s.ownsMean {
					fr := make([]float64, s.Cfg.Ny)
					uq := make([]float64, nq)
					s.embedGReal(fr, s.meanU)
					s.qt.evalReal(uq, fr, 0)
					wq := make([]float64, nq)
					s.embedGReal(fr, s.meanW)
					s.qt.evalReal(wq, fr, 0)
					for i := 0; i < nq; i++ {
						out[0][base+i] = complex(uq[i], 0)
						out[2][base+i] = complex(wq[i], 0)
					}
				}
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			s.embedV(full, s.cv[w])
			s.qt.eval(vq, full, 0)
			s.qt.eval(vyq, full, 1)
			s.embedG(full, s.cw[w])
			s.qt.eval(omq, full, 0)
			ikxC := complex(0, kx/k2)
			ikzC := complex(0, kz/k2)
			for i := 0; i < nq; i++ {
				out[0][base+i] = ikxC*vyq[i] - ikzC*omq[i]
				out[1][base+i] = vq[i]
				out[2][base+i] = ikzC*vyq[i] + ikxC*omq[i]
			}
		}
	})
	return out
}

// products runs the dealiased product pipeline on quadrature-point data,
// returning the six products in y-pencil layout.
func (s *Solver) products() [][]complex128 {
	d := s.D
	g := s.G
	nz, mz := g.Nz, g.MZ()
	nkx, mx := g.NKx(), g.MX()

	vel := s.velocityAtQuad()
	zp := d.YtoZ(nil, vel)

	kxloc := s.kxhi - s.kxlo
	yl, yh := d.YRange()
	nyLoc := yh - yl
	linesZ := kxloc * nyLoc
	zphys := make([][]complex128, 3)
	for f := 0; f < 3; f++ {
		zphys[f] = make([]complex128, linesZ*mz)
		src, dst := zp[f], zphys[f]
		s.pool().ForBlocks(linesZ, func(lo, hi int) {
			scratch := make([]complex128, mz)
			for l := lo; l < hi; l++ {
				s.padZ.InversePaddedScratch(dst[l*mz:(l+1)*mz], src[l*nz:(l+1)*nz], scratch)
			}
		})
	}

	xp := d.ZtoX(nil, zphys, mz)
	zxl, zxh := d.ZRangeX(mz)
	nzLoc := zxh - zxl
	linesX := nyLoc * nzLoc
	prodX := make([][]complex128, nProducts)
	for f := range prodX {
		prodX[f] = make([]complex128, linesX*nkx)
	}
	s.pool().ForBlocks(linesX, func(lo, hi int) {
		pu := make([]float64, mx)
		pv := make([]float64, mx)
		pw := make([]float64, mx)
		pp := make([]float64, mx)
		scratch := make([]complex128, s.padX.ScratchLen())
		for l := lo; l < hi; l++ {
			s.padX.InversePaddedScratch(pu, xp[0][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pv, xp[1][l*nkx:(l+1)*nkx], scratch)
			s.padX.InversePaddedScratch(pw, xp[2][l*nkx:(l+1)*nkx], scratch)
			forward := func(f int, a, b []float64) {
				for i := 0; i < mx; i++ {
					pp[i] = a[i] * b[i]
				}
				s.padX.ForwardTruncatedScratch(prodX[f][l*nkx:(l+1)*nkx], pp, scratch)
			}
			forward(pUU, pu, pu)
			forward(pUV, pu, pv)
			forward(pUW, pu, pw)
			forward(pVV, pv, pv)
			forward(pVW, pv, pw)
			forward(pWW, pw, pw)
		}
	})

	zp2 := d.XtoZ(nil, prodX, mz)
	zspec := make([][]complex128, nProducts)
	for f := range zspec {
		zspec[f] = make([]complex128, linesZ*nz)
		src, dst := zp2[f], zspec[f]
		s.pool().ForBlocks(linesZ, func(lo, hi int) {
			scratch := make([]complex128, mz)
			for l := lo; l < hi; l++ {
				s.padZ.ForwardTruncatedScratch(dst[l*nz:(l+1)*nz], src[l*mz:(l+1)*mz], scratch)
			}
		})
	}
	return d.ZtoY(nil, zspec)
}

// nonlinearProjections evaluates the Galerkin-projected nonlinear terms.
func (s *Solver) nonlinearProjections() (fhg, fhv [][]complex128, meanFx, meanFz []float64) {
	nq := s.qt.NumQuad()
	n := s.Cfg.Ny
	fhg = make([][]complex128, s.nw)
	fhv = make([][]complex128, s.nw)
	for w := range fhg {
		fhg[w] = make([]complex128, s.ng)
		fhv[w] = make([]complex128, s.nv)
	}
	if s.ownsMean {
		meanFx = make([]float64, s.ng)
		meanFz = make([]float64, s.ng)
	}
	if s.Cfg.DisableNonlinear {
		return fhg, fhv, meanFx, meanFz
	}
	prods := s.products()

	s.pool().ForBlocks(s.nw, func(wlo, whi int) {
		sv := make([]complex128, nq)
		sg := make([]complex128, nq)
		tv := make([]complex128, nq)
		g0 := make([]complex128, nq)
		fullG := make([]complex128, n)
		fullV := make([]complex128, n)
		for w := wlo; w < whi; w++ {
			ikx, ikz := s.modeOf(w)
			if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			kx, kz := s.G.Kx(ikx), s.G.Kz(ikz)
			k2 := kx*kx + kz*kz
			base := w * nq
			ikxC := complex(0, kx)
			ikzC := complex(0, kz)
			for i := 0; i < nq; i++ {
				uv := prods[pUV][base+i]
				vw := prods[pVW][base+i]
				sv[i] = ikxC*uv + ikzC*vw
				sg[i] = ikzC*uv - ikxC*vw
				tv[i] = complex(kx*kx, 0)*prods[pUU][base+i] +
					complex(2*kx*kz, 0)*prods[pUW][base+i] +
					complex(kz*kz, 0)*prods[pWW][base+i]
				g0[i] = complex(kx*kz, 0)*(prods[pUU][base+i]-prods[pWW][base+i]) -
					complex(kx*kx-kz*kz, 0)*prods[pUW][base+i]
			}
			for i := range fullG {
				fullG[i] = 0
				fullV[i] = 0
			}
			s.qt.project(fullG, g0, 0, 1)
			s.qt.project(fullG, sg, 1, 1)
			copy(fhg[w], fullG[1:n-1])

			ck2 := complex(k2, 0)
			s.qt.project(fullV, sv, 0, ck2)
			for i := 0; i < nq; i++ {
				g0[i] = prods[pVV][base+i] // reuse buffer for vv
			}
			s.qt.project(fullV, g0, 1, -ck2)
			s.qt.project(fullV, tv, 1, 1)
			s.qt.project(fullV, sv, 2, 1)
			copy(fhv[w], fullV[2:n-2])
		}
	})

	if s.ownsMean {
		w00 := s.widx(0, 0)
		base := w00 * nq
		uv := make([]float64, nq)
		vw := make([]float64, nq)
		for i := 0; i < nq; i++ {
			uv[i] = real(prods[pUV][base+i])
			vw[i] = real(prods[pVW][base+i])
		}
		fullX := make([]float64, n)
		fullZ := make([]float64, n)
		// int B_i (-d(uv)/dy) = +int B_i' uv for B_i vanishing at the walls.
		s.qt.projectReal(fullX, uv, 1, 1)
		s.qt.projectReal(fullZ, vw, 1, 1)
		copy(meanFx, fullX[1:n-1])
		copy(meanFz, fullZ[1:n-1])
	}
	return fhg, fhv, meanFx, meanFz
}
