package galerkin

import "channeldns/internal/banded"

// StepOnce advances the Galerkin solution one full time step.
func (s *Solver) StepOnce() {
	dt := s.Cfg.Dt
	s.ensureOps(dt)
	for sub := 0; sub < 3; sub++ {
		fhg, fhv, mFx, mFz := s.nonlinearProjections()
		s.advanceSubstep(sub, dt, fhg, fhv, mFx, mFz)
		s.fhgPrev, s.fhvPrev = fhg, fhv
		if s.ownsMean {
			s.meanFxPrev, s.meanFzPrev = mFx, mFz
		}
	}
	s.Time += dt
	s.Step++
}

// Advance runs n full time steps.
func (s *Solver) Advance(n int) {
	for i := 0; i < n; i++ {
		s.StepOnce()
	}
}

func (s *Solver) advanceSubstep(sub int, dt float64, fhg, fhv [][]complex128, mFx, mFz []float64) {
	n := s.Cfg.Ny
	ga := rkGamma[sub]
	ze := rkZeta[sub]
	a := rkAlpha[sub] * dt * s.nu

	s.pool().ForBlocks(s.nw, func(wlo, whi int) {
		scratch := make([]complex128, n)
		rhsO := make([]complex128, s.ng)
		rhsV := make([]complex128, s.nv)
		for w := wlo; w < whi; w++ {
			op := s.ops[w]
			if op == nil {
				continue
			}
			k2 := op.k2
			// omega: rhs = [M - a(K + k2 M)] c + dt*(ga*Fhg + ze*FhgPrev).
			weakOp{lo: 1, n: n,
				mats: []*banded.Real{s.wm.m, s.wm.k},
				cfs:  []float64{1 - a*k2, -a}}.apply(rhsO, s.cw[w], scratch)
			for i := 0; i < s.ng; i++ {
				rhsO[i] += complex(dt, 0) * (complex(ga, 0)*fhg[w][i] + complex(ze, 0)*s.fhgPrev[w][i])
			}
			op.lhsO[sub].SolveComplex(rhsO)
			copy(s.cw[w], rhsO)

			// v: rhs = [G - a S] c - dt*(ga*Fhv + ze*FhvPrev).
			weakOp{lo: 2, n: n,
				mats: []*banded.Real{s.wm.m, s.wm.k, s.wm.q},
				cfs:  []float64{k2 - a*k2*k2, 1 - 2*a*k2, -a}}.apply(rhsV, s.cv[w], scratch)
			for i := 0; i < s.nv; i++ {
				rhsV[i] -= complex(dt, 0) * (complex(ga, 0)*fhv[w][i] + complex(ze, 0)*s.fhvPrev[w][i])
			}
			op.lhsV[sub].SolveComplex(rhsV)
			copy(s.cv[w], rhsV)
		}
	})

	if s.ownsMean {
		f := s.Cfg.Forcing
		scratch := make([]float64, n)
		adv := func(c []float64, fh, fhPrev []float64, forcing float64) {
			rhs := make([]float64, s.ng)
			weakOp{lo: 1, n: n,
				mats: []*banded.Real{s.wm.m, s.wm.k},
				cfs:  []float64{1, -a}}.applyReal(rhs, c, scratch)
			for i := 0; i < s.ng; i++ {
				rhs[i] += dt * (ga*(fh[i]+forcing*s.bInt[i]) + ze*(fhPrev[i]+forcing*s.bInt[i]))
			}
			s.meanOp[sub].SolveReal(rhs)
			copy(c, rhs)
		}
		adv(s.meanU, mFx, s.meanFxPrev, f)
		adv(s.meanW, mFz, s.meanFzPrev, 0)
	}
}
