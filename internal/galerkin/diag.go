package galerkin

import (
	"math"

	"channeldns/internal/banded"
	"channeldns/internal/mpi"
)

// Initial conditions and diagnostics. Profiles are imposed by L2 projection
// onto the reduced trial spaces (the Galerkin-natural counterpart of the
// collocation solver's interpolation).

// massOp returns the factored reduced mass matrix for boundary offset lo.
func (s *Solver) massOp(lo int) *banded.Compact {
	return weakOp{lo: lo, n: s.Cfg.Ny, mats: []*banded.Real{s.wm.m}, cfs: []float64{1}}.factored()
}

// projectReduced L2-projects a function (sampled at quadrature points) onto
// the reduced space with boundary offset lo.
func (s *Solver) projectReduced(f func(y float64) complex128, lo int) []complex128 {
	n := s.Cfg.Ny
	nq := s.qt.NumQuad()
	vals := make([]complex128, nq)
	for qi, y := range s.qt.pts {
		vals[qi] = f(y)
	}
	full := make([]complex128, n)
	s.qt.project(full, vals, 0, 1)
	red := full[lo : n-lo]
	s.massOp(lo).SolveComplex(red)
	return append([]complex128(nil), red...)
}

// SetMeanProfile sets U(y) by L2 projection (owner rank only).
func (s *Solver) SetMeanProfile(f func(y float64) float64) {
	if !s.ownsMean {
		return
	}
	c := s.projectReduced(func(y float64) complex128 { return complex(f(y), 0) }, 1)
	for i := range s.meanU {
		s.meanU[i] = real(c[i])
	}
}

// SetLaminar sets the laminar Poiseuille profile.
func (s *Solver) SetLaminar() {
	re := s.Cfg.ReTau
	s.SetMeanProfile(func(y float64) float64 { return re * (1 - y*y) / 2 })
}

// SetModeV sets v-hat for a locally owned mode by L2 projection onto H^2_0.
func (s *Solver) SetModeV(ikx, ikz int, f func(y float64) complex128) {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return
	}
	copy(s.cv[w], s.projectReduced(f, 2))
}

// SetModeOmega sets omega_y-hat by L2 projection onto H^1_0.
func (s *Solver) SetModeOmega(ikx, ikz int, f func(y float64) complex128) {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return
	}
	copy(s.cw[w], s.projectReduced(f, 1))
}

// Perturb adds deterministic wall-compatible disturbances, mirroring the
// collocation solver's Perturb (same phases, so cross-solver comparisons
// start from the same physical state).
func (s *Solver) Perturb(amp float64, kxMax, kzMax int, seed int64) {
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		kzIdx := s.G.KzIndex(ikz)
		if ikx > kxMax || kzIdx > kzMax || kzIdx < -kzMax {
			continue
		}
		av := modePhase(seed, ikx, kzIdx, 0)
		ao := modePhase(seed, ikx, kzIdx, 1)
		if ikx == 0 && kzIdx < 0 {
			av = conj(modePhase(seed, 0, -kzIdx, 0))
			ao = conj(modePhase(seed, 0, -kzIdx, 1))
		}
		av *= complex(amp, 0)
		ao *= complex(amp, 0)
		cv := s.projectReduced(func(y float64) complex128 {
			q := 1 - y*y
			return av * complex(q*q, 0)
		}, 2)
		co := s.projectReduced(func(y float64) complex128 {
			return ao * complex(1-y*y, 0)
		}, 1)
		for i := range cv {
			s.cv[w][i] += cv[i]
		}
		for i := range co {
			s.cw[w][i] += co[i]
		}
	}
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// modePhase matches the collocation solver's deterministic phase function.
func modePhase(seed int64, ikx, kzIdx, comp int) complex128 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(ikx+1)*0xbf58476d1ce4e5b9 +
		uint64(kzIdx+1000)*0x94d049bb133111eb + uint64(comp)*0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	theta := 2 * math.Pi * float64(h%1000003) / 1000003
	sn, cs := math.Sincos(theta)
	return complex(cs, sn)
}

// TotalEnergy returns the volume-averaged kinetic energy per unit plan
// area, computed by quadrature over the velocity values (globally reduced).
func (s *Solver) TotalEnergy() float64 {
	nq := s.qt.NumQuad()
	vel := s.velocityAtQuad()
	e := 0.0
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) {
			continue
		}
		wt := 2.0
		if ikx == 0 {
			wt = 1.0
		}
		base := w * nq
		for qi := 0; qi < nq; qi++ {
			q := s.qt.wts[qi]
			for f := 0; f < 3; f++ {
				v := vel[f][base+qi]
				e += wt * q * (real(v)*real(v) + imag(v)*imag(v))
			}
		}
	}
	return mpi.Allreduce(s.World(), mpi.OpSum, []float64{e / 2})[0]
}

// MeanProfileAt evaluates the mean streamwise velocity at arbitrary y
// (broadcast so all ranks can call it with the same points).
func (s *Solver) MeanProfileAt(ys []float64) []float64 {
	full := s.MeanCoefFull()
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = s.B.Eval(full, y)
	}
	return out
}

// EvalV evaluates v-hat for a local mode at y (zero if not owned).
func (s *Solver) EvalV(ikx, ikz int, y float64) complex128 {
	full := s.VCoefFull(ikx, ikz)
	if full == nil {
		return 0
	}
	re := make([]float64, len(full))
	im := make([]float64, len(full))
	for i, c := range full {
		re[i] = real(c)
		im[i] = imag(c)
	}
	return complex(s.B.Eval(re, y), s.B.Eval(im, y))
}

// EvalOmega evaluates omega_y-hat for a local mode at y.
func (s *Solver) EvalOmega(ikx, ikz int, y float64) complex128 {
	full := s.OmegaCoefFull(ikx, ikz)
	if full == nil {
		return 0
	}
	re := make([]float64, len(full))
	im := make([]float64, len(full))
	for i, c := range full {
		re[i] = real(c)
		im[i] = imag(c)
	}
	return complex(s.B.Eval(re, y), s.B.Eval(im, y))
}

// FrictionVelocity returns sqrt(nu*|dU/dy|) at the lower wall.
func (s *Solver) FrictionVelocity() float64 {
	full := s.MeanCoefFull()
	lo, _ := s.B.Domain()
	du := s.B.EvalDeriv(full, lo, 1)
	return math.Sqrt(math.Abs(s.nu * du))
}
