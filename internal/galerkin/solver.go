package galerkin

import (
	"fmt"
	"math"

	"channeldns/internal/banded"
	"channeldns/internal/bspline"
	"channeldns/internal/fft"
	"channeldns/internal/field"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
)

// Config mirrors the collocation solver's configuration for the fields the
// Galerkin discretization uses.
type Config struct {
	Nx, Ny, Nz       int
	Lx, Lz           float64
	ReTau            float64
	Dt               float64
	Degree           int
	Stretch          float64
	PA, PB           int
	Pool             *par.Pool
	Forcing          float64
	DisableNonlinear bool
	// QuadPerInterval sets the nonlinear quadrature density; 0 selects
	// degree+2 points per knot interval. ceil((3*degree+1)/2) integrates
	// the Galerkin triple products exactly (full wall-normal dealiasing).
	QuadPerInterval int
}

func (c *Config) fillDefaults() {
	if c.Degree == 0 {
		c.Degree = 7
	}
	if c.Stretch == 0 {
		c.Stretch = 0.85
	}
	if c.PA == 0 {
		c.PA = 1
	}
	if c.PB == 0 {
		c.PB = 1
	}
	if c.Lx == 0 {
		c.Lx = 2 * math.Pi
	}
	if c.Lz == 0 {
		c.Lz = math.Pi
	}
	if c.QuadPerInterval == 0 {
		c.QuadPerInterval = c.Degree + 2
	}
}

// SMR'91 coefficients, as in the collocation solver.
var (
	rkGamma = [3]float64{8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0}
	rkZeta  = [3]float64{0, -17.0 / 60.0, -5.0 / 12.0}
	rkAlpha = [3]float64{4.0 / 15.0, 1.0 / 15.0, 1.0 / 6.0}
	rkBeta  = [3]float64{4.0 / 15.0, 1.0 / 15.0, 1.0 / 6.0}
)

// gops caches the factored implicit operators for one wavenumber.
type gops struct {
	k2         float64
	lhsO, lhsV [3]*banded.Compact
}

// Solver is the Galerkin-in-y channel DNS. State lives in the reduced
// spline coefficient spaces: omega_y in H^1_0 (Ny-2 coefficients) and v in
// H^2_0 (Ny-4 coefficients) per locally owned Fourier mode.
type Solver struct {
	Cfg Config
	G   field.Grid
	D   *pencil.Decomp
	B   *bspline.Basis
	wm  *weakMatrices
	qt  *quadTables // nonlinear quadrature rule
	nu  float64

	ng, nv int // reduced sizes: Ny-2, Ny-4

	kxlo, kxhi, kzlo, kzhi int
	nw                     int

	cv, cw           [][]complex128 // reduced coefficients per local mode
	fhgPrev, fhvPrev [][]complex128 // projected nonlinear terms
	ownsMean         bool
	meanU, meanW     []float64 // reduced H^1_0 coefficients
	meanFxPrev       []float64
	meanFzPrev       []float64
	bInt             []float64 // int B_i dy, reduced H^1_0
	ops              []*gops
	opsDt            float64
	meanOp           [3]*banded.Compact
	padZ             *fft.PaddedComplex
	padX             *fft.PaddedReal

	Time float64
	Step int
}

// New constructs a Galerkin solver collectively on the world communicator.
func New(world *mpi.Comm, cfg Config) (*Solver, error) {
	cfg.fillDefaults()
	if cfg.ReTau <= 0 || cfg.Dt <= 0 {
		return nil, fmt.Errorf("galerkin: ReTau and Dt must be positive")
	}
	if cfg.Ny < cfg.Degree+6 {
		return nil, fmt.Errorf("galerkin: Ny=%d too small for degree %d (need >= degree+6)", cfg.Ny, cfg.Degree)
	}
	g := field.NewGrid(cfg.Nx, cfg.Ny, cfg.Nz, cfg.Lx, cfg.Lz)
	s := &Solver{Cfg: cfg, G: g, nu: 1 / cfg.ReTau}
	s.B = bspline.NewFromBreakpoints(cfg.Degree, bspline.ChannelBreakpoints(cfg.Ny-cfg.Degree, cfg.Stretch))
	s.wm = newWeakMatrices(s.B)
	s.qt = newQuadTables(s.B, cfg.QuadPerInterval)
	s.ng = cfg.Ny - 2
	s.nv = cfg.Ny - 4

	// Pencil decomposition carries quadrature-point values in y.
	s.D = pencil.New(world, cfg.PA, cfg.PB, g.NKx(), g.Nz, s.qt.NumQuad(), cfg.Pool)
	s.kxlo, s.kxhi = s.D.KxRange()
	s.kzlo, s.kzhi = s.D.KzRangeY()
	s.nw = (s.kxhi - s.kxlo) * (s.kzhi - s.kzlo)

	alloc := func(n int) [][]complex128 {
		out := make([][]complex128, s.nw)
		for i := range out {
			out[i] = make([]complex128, n)
		}
		return out
	}
	s.cv = alloc(s.nv)
	s.cw = alloc(s.ng)
	s.fhgPrev = alloc(s.ng)
	s.fhvPrev = alloc(s.nv)

	s.ownsMean = s.kxlo == 0 && s.kzlo == 0
	if s.ownsMean {
		s.meanU = make([]float64, s.ng)
		s.meanW = make([]float64, s.ng)
		s.meanFxPrev = make([]float64, s.ng)
		s.meanFzPrev = make([]float64, s.ng)
	}
	full := s.B.IntegrationWeights()
	s.bInt = append([]float64(nil), full[1:cfg.Ny-1]...)

	s.padZ = fft.NewPaddedComplex(g.Nz, g.MZ())
	s.padX = fft.NewPaddedReal(g.NKx(), g.MX())
	return s, nil
}

func (s *Solver) widx(ikx, ikz int) int {
	if ikx < s.kxlo || ikx >= s.kxhi || ikz < s.kzlo || ikz >= s.kzhi {
		return -1
	}
	return (ikx-s.kxlo)*(s.kzhi-s.kzlo) + (ikz - s.kzlo)
}

func (s *Solver) modeOf(w int) (int, int) {
	nkz := s.kzhi - s.kzlo
	return s.kxlo + w/nkz, s.kzlo + w%nkz
}

// World returns the full communicator.
func (s *Solver) World() *mpi.Comm { return s.D.Cart.Comm }

// Nu returns the kinematic viscosity.
func (s *Solver) Nu() float64 { return s.nu }

// embedV expands reduced H^2_0 coefficients to the full basis.
func (s *Solver) embedV(dst []complex128, c []complex128) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst[2:s.Cfg.Ny-2], c)
}

// embedG expands reduced H^1_0 coefficients to the full basis.
func (s *Solver) embedG(dst []complex128, c []complex128) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst[1:s.Cfg.Ny-1], c)
}

func (s *Solver) embedGReal(dst []float64, c []float64) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst[1:s.Cfg.Ny-1], c)
}

// VCoefFull returns the full-basis v-hat coefficients for a local mode
// (nil if not owned).
func (s *Solver) VCoefFull(ikx, ikz int) []complex128 {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return nil
	}
	out := make([]complex128, s.Cfg.Ny)
	s.embedV(out, s.cv[w])
	return out
}

// OmegaCoefFull returns the full-basis omega_y-hat coefficients.
func (s *Solver) OmegaCoefFull(ikx, ikz int) []complex128 {
	w := s.widx(ikx, ikz)
	if w < 0 {
		return nil
	}
	out := make([]complex128, s.Cfg.Ny)
	s.embedG(out, s.cw[w])
	return out
}

// MeanCoefFull returns the full-basis mean streamwise profile coefficients
// (owner rank; zeros elsewhere).
func (s *Solver) MeanCoefFull() []float64 {
	out := make([]float64, s.Cfg.Ny)
	if s.ownsMean {
		s.embedGReal(out, s.meanU)
	}
	return mpi.Bcast(s.World(), 0, out)
}

// ensureOps (re)builds the per-mode factored operators for time step dt:
//
//	omega:  [M + b(K + k2 M)] c_new = [M - a(K + k2 M)] c_old + dt*(...)
//	v:      [G + b S] c_new = [G - a S] c_old - dt*(...),
//	        G = K + k2 M,  S = Q + 2 k2 K + k4 M
//
// with a = alpha*dt*nu and b = beta*dt*nu per substep.
func (s *Solver) ensureOps(dt float64) {
	if s.ops != nil && s.opsDt == dt {
		return
	}
	s.opsDt = dt
	s.ops = make([]*gops, s.nw)
	n := s.Cfg.Ny
	for w := 0; w < s.nw; w++ {
		ikx, ikz := s.modeOf(w)
		if s.G.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
			continue
		}
		k2 := s.G.K2(ikx, ikz)
		op := &gops{k2: k2}
		for sub := 0; sub < 3; sub++ {
			b := rkBeta[sub] * dt * s.nu
			op.lhsO[sub] = weakOp{lo: 1, n: n,
				mats: []*banded.Real{s.wm.m, s.wm.k},
				cfs:  []float64{1 + b*k2, b}}.factored()
			op.lhsV[sub] = weakOp{lo: 2, n: n,
				mats: []*banded.Real{s.wm.m, s.wm.k, s.wm.q},
				cfs:  []float64{k2 + b*k2*k2, 1 + 2*b*k2, b}}.factored()
		}
		s.ops[w] = op
	}
	for sub := 0; sub < 3; sub++ {
		b := rkBeta[sub] * dt * s.nu
		s.meanOp[sub] = weakOp{lo: 1, n: n,
			mats: []*banded.Real{s.wm.m, s.wm.k},
			cfs:  []float64{1, b}}.factored()
	}
}
