// Package galerkin implements the B-spline Galerkin wall-normal
// discretization of the channel DNS — the method the production
// ReTau = 5200 computation this paper's code was built toward ultimately
// used (Lee & Moser 2015), provided here as the natural extension of the
// paper's collocation scheme. The weak form brings three structural
// advantages:
//
//   - the v = v' = 0 wall conditions are built into the H^2_0 trial space,
//     eliminating the influence-matrix machinery;
//   - the nonlinear terms are projected by quadrature (no interpolation of
//     pointwise products), removing the wall-normal aliasing of the
//     collocation scheme;
//   - the y-derivatives of the nonlinear fluxes integrate by parts onto the
//     test functions, so no derivatives of products are ever formed.
//
// The Fourier directions, 3/2-rule dealiasing, pencil transposes and IMEX
// RK3 are shared with the collocation solver in internal/core.
package galerkin

import (
	"channeldns/internal/banded"
	"channeldns/internal/bspline"
)

// quadTables holds a quadrature rule together with basis value/derivative
// tables at its points: tab d[q*(deg+1)+j] is the d-th derivative of basis
// function span[q]-deg+j at point q.
type quadTables struct {
	deg        int
	pts, wts   []float64
	span       []int
	b0, b1, b2 []float64
}

func newQuadTables(b *bspline.Basis, perInterval int) *quadTables {
	deg := b.Degree()
	t := &quadTables{deg: deg}
	t.pts, t.wts = b.QuadratureRule(perInterval)
	nq := len(t.pts)
	t.span = make([]int, nq)
	t.b0 = make([]float64, nq*(deg+1))
	t.b1 = make([]float64, nq*(deg+1))
	t.b2 = make([]float64, nq*(deg+1))
	ders := make([][]float64, 3)
	for i := range ders {
		ders[i] = make([]float64, deg+1)
	}
	for qi, y := range t.pts {
		t.span[qi] = b.EvalDerivs(y, 2, ders)
		copy(t.b0[qi*(deg+1):], ders[0])
		copy(t.b1[qi*(deg+1):], ders[1])
		copy(t.b2[qi*(deg+1):], ders[2])
	}
	return t
}

// NumQuad returns the number of quadrature points.
func (t *quadTables) NumQuad() int { return len(t.pts) }

func (t *quadTables) tab(d int) []float64 {
	switch d {
	case 0:
		return t.b0
	case 1:
		return t.b1
	default:
		return t.b2
	}
}

// eval computes out[q] = sum_j B_j^{(d)}(y_q) c_j from full-basis complex
// coefficients.
func (t *quadTables) eval(out, c []complex128, d int) {
	tab := t.tab(d)
	deg := t.deg
	for qi := range t.pts {
		var sr, si float64
		base := qi * (deg + 1)
		off := t.span[qi] - deg
		for j := 0; j <= deg; j++ {
			a := tab[base+j]
			v := c[off+j]
			sr += a * real(v)
			si += a * imag(v)
		}
		out[qi] = complex(sr, si)
	}
}

// evalReal is eval for real coefficients.
func (t *quadTables) evalReal(out, c []float64, d int) {
	tab := t.tab(d)
	deg := t.deg
	for qi := range t.pts {
		s := 0.0
		base := qi * (deg + 1)
		off := t.span[qi] - deg
		for j := 0; j <= deg; j++ {
			s += tab[base+j] * c[off+j]
		}
		out[qi] = s
	}
}

// project accumulates out_i += s * int B_i^{(d)} f over full-basis rows for
// f given at the quadrature points.
func (t *quadTables) project(out, f []complex128, d int, s complex128) {
	tab := t.tab(d)
	deg := t.deg
	for qi := range t.pts {
		base := qi * (deg + 1)
		off := t.span[qi] - deg
		v := s * complex(t.wts[qi], 0) * f[qi]
		for j := 0; j <= deg; j++ {
			out[off+j] += complex(tab[base+j], 0) * v
		}
	}
}

// projectReal accumulates out_i += s * int B_i^{(d)} f for real data.
func (t *quadTables) projectReal(out, f []float64, d int, s float64) {
	tab := t.tab(d)
	deg := t.deg
	for qi := range t.pts {
		base := qi * (deg + 1)
		off := t.span[qi] - deg
		v := s * t.wts[qi] * f[qi]
		for j := 0; j <= deg; j++ {
			out[off+j] += tab[base+j] * v
		}
	}
}

// weakMatrices holds the banded Galerkin matrices on the full basis:
// M_ij = int B_i B_j, K_ij = int B_i' B_j', Q_ij = int B_i” B_j”.
type weakMatrices struct {
	n, deg  int
	m, k, q *banded.Real
}

func newWeakMatrices(b *bspline.Basis) *weakMatrices {
	n := b.NumBasis()
	deg := b.Degree()
	w := &weakMatrices{
		n: n, deg: deg,
		m: banded.NewReal(n, deg, deg),
		k: banded.NewReal(n, deg, deg),
		q: banded.NewReal(n, deg, deg),
	}
	// deg+1 Gauss points per interval integrate spline products (degree
	// 2*deg) exactly.
	t := newQuadTables(b, deg+1)
	for qi := range t.pts {
		wt := t.wts[qi]
		base := qi * (deg + 1)
		off := t.span[qi] - deg
		for j := 0; j <= deg; j++ {
			row := off + j
			for l := 0; l <= deg; l++ {
				col := off + l
				w.m.Add(row, col, wt*t.b0[base+j]*t.b0[base+l])
				w.k.Add(row, col, wt*t.b1[base+j]*t.b1[base+l])
				w.q.Add(row, col, wt*t.b2[base+j]*t.b2[base+l])
			}
		}
	}
	return w
}

// weakOp is a linear combination of the weak matrices restricted to the
// reduced space dropping lo basis functions at each wall (lo = 1 for H^1_0,
// lo = 2 for H^2_0).
type weakOp struct {
	lo, n int
	mats  []*banded.Real
	cfs   []float64
}

// apply computes out (reduced) = sum_k cfs[k]*mats[k] * x (reduced), with
// dropped boundary coefficients treated as zero. scratch must have length n.
func (op weakOp) apply(out, x, scratch []complex128) {
	n := op.n
	full := scratch[:n]
	for i := range full {
		full[i] = 0
	}
	copy(full[op.lo:n-op.lo], x)
	red := n - 2*op.lo
	tmp := make([]complex128, n)
	for i := 0; i < red; i++ {
		out[i] = 0
	}
	for k, m := range op.mats {
		m.MulVecComplex(tmp, full)
		c := complex(op.cfs[k], 0)
		for i := 0; i < red; i++ {
			out[i] += c * tmp[op.lo+i]
		}
	}
}

// applyReal is apply for real vectors.
func (op weakOp) applyReal(out, x, scratch []float64) {
	n := op.n
	full := scratch[:n]
	for i := range full {
		full[i] = 0
	}
	copy(full[op.lo:n-op.lo], x)
	red := n - 2*op.lo
	tmp := make([]float64, n)
	for i := 0; i < red; i++ {
		out[i] = 0
	}
	for k, m := range op.mats {
		m.MulVec(tmp, full)
		for i := 0; i < red; i++ {
			out[i] += op.cfs[k] * tmp[op.lo+i]
		}
	}
}

// factored builds and factors the reduced banded matrix sum_k cfs[k]*mats[k]
// with the customized compact solver (the weak operators are symmetric
// positive definite, so no pivoting is needed).
func (op weakOp) factored() *banded.Compact {
	n := op.n
	red := n - 2*op.lo
	deg := op.mats[0].KU
	c := banded.NewCompact(red, deg)
	for i := 0; i < red; i++ {
		for j := max(0, i-deg); j <= min(red-1, i+deg); j++ {
			v := 0.0
			for k, m := range op.mats {
				v += op.cfs[k] * m.At(op.lo+i, op.lo+j)
			}
			c.Set(i, j, v)
		}
	}
	if err := c.Factor(); err != nil {
		panic("galerkin: singular weak operator: " + err.Error())
	}
	return c
}
