package galerkin

import (
	"math"
	"math/cmplx"
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

func serialG(t *testing.T, cfg Config) *Solver {
	t.Helper()
	var s *Solver
	mpi.Run(1, func(c *mpi.Comm) {
		var err error
		s, err = New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	return s
}

// TestWeakMatricesAgainstExactIntegrals: the mass matrix must reproduce
// int B_i = row sums against the known closed form, and K must annihilate
// constants.
func TestWeakMatricesAgainstExactIntegrals(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 1, Dt: 1e-2, Forcing: 1}
	s := serialG(t, cfg)
	n := cfg.Ny
	wInt := s.B.IntegrationWeights()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	row := make([]float64, n)
	s.wm.m.MulVec(row, ones) // row sums of M = int B_i * (sum_j B_j) = int B_i
	for i := 0; i < n; i++ {
		if math.Abs(row[i]-wInt[i]) > 1e-12 {
			t.Fatalf("mass row sum %d: %g want %g", i, row[i], wInt[i])
		}
	}
	s.wm.k.MulVec(row, ones) // K * constant = 0
	for i := 0; i < n; i++ {
		if math.Abs(row[i]) > 1e-10 {
			t.Fatalf("stiffness does not annihilate constants at %d: %g", i, row[i])
		}
	}
}

// TestGalerkinPoiseuille: with unit forcing the mean flow must converge to
// the exact parabola (which lies in the trial space).
func TestGalerkinPoiseuille(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 1, Dt: 0.02, Forcing: 1}
	s := serialG(t, cfg)
	s.Advance(600)
	ys := []float64{-0.9, -0.5, 0, 0.4, 0.8}
	got := s.MeanProfileAt(ys)
	for i, y := range ys {
		want := (1 - y*y) / 2
		if math.Abs(got[i]-want) > 1e-6 {
			t.Errorf("U(%g) = %g, want %g", y, got[i], want)
		}
	}
	if ut := s.FrictionVelocity(); math.Abs(ut-1) > 1e-6 {
		t.Errorf("u_tau = %g, want 1", ut)
	}
}

// TestGalerkinStokesDecay: an omega_y eigenmode decays at the exact Stokes
// rate, as in the collocation solver.
func TestGalerkinStokesDecay(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 32, Nz: 8, ReTau: 1, Dt: 5e-4, Forcing: 0, DisableNonlinear: true}
	s := serialG(t, cfg)
	s.SetModeOmega(1, 1, func(y float64) complex128 {
		return complex(math.Sin(math.Pi*(y+1)/2), 0)
	})
	a0 := s.EvalOmega(1, 1, 0)
	steps := 400
	s.Advance(steps)
	a1 := s.EvalOmega(1, 1, 0)
	T := float64(steps) * cfg.Dt
	lambda := s.Nu() * (s.G.K2(1, 1) + math.Pi*math.Pi/4)
	want := math.Exp(-lambda * T)
	got := cmplx.Abs(a1) / cmplx.Abs(a0)
	if math.Abs(got-want) > 2e-4*want {
		t.Errorf("decay ratio %.8f want %.8f", got, want)
	}
}

// TestGalerkinWallConditionsBuiltIn: v, v' and omega are exactly zero at
// the walls by construction of the reduced spaces.
func TestGalerkinWallConditionsBuiltIn(t *testing.T) {
	cfg := Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 180, Dt: 5e-4, Forcing: 1}
	s := serialG(t, cfg)
	s.SetLaminar()
	s.Perturb(0.3, 2, 2, 7)
	s.Advance(5)
	lo, hi := s.B.Domain()
	for _, mode := range [][2]int{{1, 1}, {2, 3}} {
		full := s.VCoefFull(mode[0], mode[1])
		re := make([]float64, len(full))
		for i, c := range full {
			re[i] = real(c)
		}
		for _, y := range []float64{lo, hi} {
			if v := s.B.Eval(re, y); math.Abs(v) > 1e-14 {
				t.Errorf("v(%g) = %g", y, v)
			}
			if d := s.B.EvalDeriv(re, y, 1); math.Abs(d) > 1e-12 {
				t.Errorf("v'(%g) = %g", y, d)
			}
		}
	}
}

// TestGalerkinEnergyConservation: the Galerkin projection of the
// divergence-form convective term conserves energy without the collocation
// scheme's wall-normal aliasing; at zero viscosity the drift over a short
// run must be at the time-discretization level and no worse than the
// collocation solver's.
func TestGalerkinEnergyConservation(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 1e10, Dt: 2e-4, Forcing: 0,
		QuadPerInterval: 11} // exact triple-product quadrature
	s := serialG(t, cfg)
	s.Perturb(0.2, 2, 2, 11)
	e0 := s.TotalEnergy()
	s.Advance(20)
	drift := math.Abs(s.TotalEnergy()-e0) / e0
	if drift > 1e-3 {
		t.Errorf("Galerkin inviscid drift %g", drift)
	}
}

// TestGalerkinMatchesCollocationWhenResolved: at generous resolution the
// two discretizations must track each other through nonlinear evolution.
func TestGalerkinMatchesCollocationWhenResolved(t *testing.T) {
	steps := 10
	gcfg := Config{Nx: 16, Ny: 40, Nz: 16, ReTau: 100, Dt: 5e-4, Forcing: 1}
	g := serialG(t, gcfg)
	g.SetLaminar()
	g.Perturb(0.3, 2, 2, 9)
	g.Advance(steps)

	var cv complex128
	var eC float64
	ccfg := core.Config{Nx: 16, Ny: 40, Nz: 16, ReTau: 100, Dt: 5e-4, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := core.New(c, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 9)
		s.Advance(steps)
		// Evaluate v-hat(1,1) at y = 0.3.
		coef := s.VCoef(1, 1)
		re := make([]float64, len(coef))
		im := make([]float64, len(coef))
		for i, v := range coef {
			re[i] = real(v)
			im[i] = imag(v)
		}
		cv = complex(s.Basis().Eval(re, 0.3), s.Basis().Eval(im, 0.3))
		eC = s.TotalEnergy()
	})
	gv := g.EvalV(1, 1, 0.3)
	if d := cmplx.Abs(gv - cv); d > 2e-4*(1+cmplx.Abs(cv)) {
		t.Errorf("v-hat(1,1)(0.3): galerkin %v vs collocation %v (|diff| %g)", gv, cv, d)
	}
	eG := g.TotalEnergy()
	if math.Abs(eG-eC)/eC > 1e-4 {
		t.Errorf("energies diverged: galerkin %g collocation %g", eG, eC)
	}
}

// TestGalerkinSerialMatchesParallel: decomposition independence.
func TestGalerkinSerialMatchesParallel(t *testing.T) {
	cfg := Config{Nx: 16, Ny: 20, Nz: 16, ReTau: 180, Dt: 5e-4, Forcing: 1}
	steps := 3
	ref := map[[2]int][]complex128{}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 55)
		s.Advance(steps)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			ref[[2]int{ikx, ikz}] = append([]complex128(nil), s.cv[w]...)
		}
	})
	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	pcfg.Pool = par.NewPool(2)
	mpi.Run(4, func(c *mpi.Comm) {
		s, _ := New(c, pcfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 55)
		s.Advance(steps)
		for w := 0; w < s.nw; w++ {
			ikx, ikz := s.modeOf(w)
			want := ref[[2]int{ikx, ikz}]
			for i := range want {
				if cmplx.Abs(s.cv[w][i]-want[i]) > 1e-12 {
					t.Errorf("mode (%d,%d) differs at %d", ikx, ikz, i)
					return
				}
			}
		}
	})
}

// TestGalerkinSurvivesMarginalResolution: the headline property — at a
// marginal wall-normal resolution with a violent finite-amplitude
// disturbance (the regime where the collocation divergence form aliases in
// y and leaves the energy budget), the Galerkin scheme stays bounded.
// Long; skipped with -short.
func TestGalerkinSurvivesMarginalResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("transition run is slow")
	}
	cfg := Config{Nx: 24, Ny: 41, Nz: 24, ReTau: 180, Dt: 3e-4, Forcing: 1,
		Pool: par.NewPool(4)}
	s := serialG(t, cfg)
	s.SetLaminar()
	s.Perturb(1.5, 3, 3, 2024)
	e0 := s.TotalEnergy()
	for b := 0; b < 4; b++ {
		s.Advance(40)
		e := s.TotalEnergy()
		if math.IsNaN(e) || e > 3*e0 {
			t.Fatalf("Galerkin blew up at t=%g: E=%g", s.Time, e)
		}
	}
}
