// Package banded provides the banded linear algebra of the DNS time advance
// (paper §4.1.1). Three solver families are implemented:
//
//   - Real / Complex: general banded LU with partial pivoting in LAPACK band
//     storage with kl fill rows, the analog of DGBTRF/DGBTRS and
//     ZGBTRF/ZGBTRS. Real matrices with complex right-hand sides can be
//     solved either as two sequential real solves (the "MKL^R" mode of
//     Table 1) or with the full complex routine (the "MKL^C" mode).
//   - Naive: a deliberately plain reference implementation in full band
//     storage mirroring Netlib LAPACK's role as the normalization baseline
//     of Table 1.
//   - Compact: the paper's customized solver. Nonzero boundary-row entries
//     are folded into otherwise-empty band storage (Fig. 3, right panel),
//     factorization skips pivoting (the collocation Helmholtz systems are
//     strongly diagonally dominant), no storage or flops are spent on
//     structural zeros, and real-matrix x complex-RHS solves run natively.
package banded

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when factorization meets a zero (or numerically
// negligible) pivot.
var ErrSingular = errors.New("banded: singular matrix")

// Real is a general real banded matrix with kl subdiagonals and ku
// superdiagonals in LAPACK-style band storage with kl extra fill
// diagonals for partial pivoting.
type Real struct {
	N, KL, KU int
	ldab      int // KL + KU + KL + 1 stored diagonals per row
	ab        []float64
	ipiv      []int
	factored  bool
}

// NewReal allocates an n x n real banded matrix with bandwidths kl, ku.
func NewReal(n, kl, ku int) *Real {
	if n <= 0 || kl < 0 || ku < 0 {
		panic(fmt.Sprintf("banded: bad dimensions n=%d kl=%d ku=%d", n, kl, ku))
	}
	ldab := 2*kl + ku + 1
	return &Real{N: n, KL: kl, KU: ku, ldab: ldab, ab: make([]float64, n*ldab), ipiv: make([]int, n)}
}

// idx maps logical (i, j) to storage; valid for j-i in [-KL, KU+KL].
func (m *Real) idx(i, j int) int { return i*m.ldab + (j - i + m.KL) }

func (m *Real) inBand(i, j int) bool {
	d := j - i
	return i >= 0 && i < m.N && j >= 0 && j < m.N && d >= -m.KL && d <= m.KU+m.KL
}

// At returns A(i, j); zero outside the band.
func (m *Real) At(i, j int) float64 {
	if !m.inBand(i, j) {
		return 0
	}
	return m.ab[m.idx(i, j)]
}

// Set assigns A(i, j) = v. j must lie within [i-KL, i+KU].
func (m *Real) Set(i, j int, v float64) {
	if d := j - i; d < -m.KL || d > m.KU {
		panic(fmt.Sprintf("banded: Set outside band (%d,%d) kl=%d ku=%d", i, j, m.KL, m.KU))
	}
	m.ab[m.idx(i, j)] = v
	m.factored = false
}

// Add accumulates A(i, j) += v.
func (m *Real) Add(i, j int, v float64) {
	if d := j - i; d < -m.KL || d > m.KU {
		panic(fmt.Sprintf("banded: Add outside band (%d,%d)", i, j))
	}
	m.ab[m.idx(i, j)] += v
	m.factored = false
}

// MulVec computes y = A*x using the unfactored band entries. It must be
// called before Factor.
func (m *Real) MulVec(y, x []float64) {
	if m.factored {
		panic("banded: MulVec after Factor")
	}
	for i := 0; i < m.N; i++ {
		lo := max(0, i-m.KL)
		hi := min(m.N-1, i+m.KU)
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += m.ab[m.idx(i, j)] * x[j]
		}
		y[i] = s
	}
}

// MulVecComplex computes y = A*x for a complex vector with the real,
// unfactored band entries (two real multiply-adds per element).
func (m *Real) MulVecComplex(y, x []complex128) {
	if m.factored {
		panic("banded: MulVecComplex after Factor")
	}
	for i := 0; i < m.N; i++ {
		lo := max(0, i-m.KL)
		hi := min(m.N-1, i+m.KU)
		var sr, si float64
		for j := lo; j <= hi; j++ {
			a := m.ab[m.idx(i, j)]
			sr += a * real(x[j])
			si += a * imag(x[j])
		}
		y[i] = complex(sr, si)
	}
}

// Factor computes the LU factorization with partial pivoting in place.
func (m *Real) Factor() error {
	n, kl, ku := m.N, m.KL, m.KU
	kv := ku + kl // effective upper bandwidth after pivoting
	for k := 0; k < n; k++ {
		// Pivot search in column k, rows k..min(k+kl, n-1).
		p := k
		amax := math.Abs(m.ab[m.idx(k, k)])
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			if a := math.Abs(m.ab[m.idx(i, k)]); a > amax {
				amax, p = a, i
			}
		}
		m.ipiv[k] = p
		if amax == 0 {
			return ErrSingular
		}
		if p != k {
			for j := k; j <= min(k+kv, n-1); j++ {
				m.ab[m.idx(k, j)], m.ab[m.idx(p, j)] = m.ab[m.idx(p, j)], m.ab[m.idx(k, j)]
			}
		}
		piv := m.ab[m.idx(k, k)]
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			l := m.ab[m.idx(i, k)] / piv
			m.ab[m.idx(i, k)] = l
			if l != 0 {
				for j := k + 1; j <= min(k+kv, n-1); j++ {
					m.ab[m.idx(i, j)] -= l * m.ab[m.idx(k, j)]
				}
			}
		}
	}
	m.factored = true
	return nil
}

// Solve overwrites b with the solution of A*x = b. Factor must have been
// called.
func (m *Real) Solve(b []float64) {
	if !m.factored {
		panic("banded: Solve before Factor")
	}
	n, kl := m.N, m.KL
	kv := m.KU + kl
	// Forward: apply P and L.
	for k := 0; k < n; k++ {
		if p := m.ipiv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		bk := b[k]
		if bk != 0 {
			for i := k + 1; i <= min(k+kl, n-1); i++ {
				b[i] -= m.ab[m.idx(i, k)] * bk
			}
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j <= min(i+kv, n-1); j++ {
			s -= m.ab[m.idx(i, j)] * b[j]
		}
		b[i] = s / m.ab[m.idx(i, i)]
	}
}

// SolveComplexTwoReal solves A*x = b for complex b by rearranging the
// complex vector into two sequential real vectors, solving each, and
// interleaving back — the workaround the paper describes for using
// DGBTRF/DGBTRS on a real matrix with complex data (Table 1, "MKL^R").
func (m *Real) SolveComplexTwoReal(b []complex128) {
	n := m.N
	re := make([]float64, n)
	im := make([]float64, n)
	for i, v := range b[:n] {
		re[i] = real(v)
		im[i] = imag(v)
	}
	m.Solve(re)
	m.Solve(im)
	for i := range b[:n] {
		b[i] = complex(re[i], im[i])
	}
}

// Complex is the complex counterpart of Real (ZGBTRF/ZGBTRS analog).
type Complex struct {
	N, KL, KU int
	ldab      int
	ab        []complex128
	ipiv      []int
	factored  bool
}

// NewComplex allocates an n x n complex banded matrix.
func NewComplex(n, kl, ku int) *Complex {
	if n <= 0 || kl < 0 || ku < 0 {
		panic(fmt.Sprintf("banded: bad dimensions n=%d kl=%d ku=%d", n, kl, ku))
	}
	ldab := 2*kl + ku + 1
	return &Complex{N: n, KL: kl, KU: ku, ldab: ldab, ab: make([]complex128, n*ldab), ipiv: make([]int, n)}
}

func (m *Complex) idx(i, j int) int { return i*m.ldab + (j - i + m.KL) }

// At returns A(i, j); zero outside the band.
func (m *Complex) At(i, j int) complex128 {
	d := j - i
	if i < 0 || i >= m.N || j < 0 || j >= m.N || d < -m.KL || d > m.KU+m.KL {
		return 0
	}
	return m.ab[m.idx(i, j)]
}

// Set assigns A(i, j) = v within the declared band.
func (m *Complex) Set(i, j int, v complex128) {
	if d := j - i; d < -m.KL || d > m.KU {
		panic(fmt.Sprintf("banded: Set outside band (%d,%d)", i, j))
	}
	m.ab[m.idx(i, j)] = v
	m.factored = false
}

// Factor computes the pivoted LU factorization in place.
func (m *Complex) Factor() error {
	n, kl := m.N, m.KL
	kv := m.KU + kl
	for k := 0; k < n; k++ {
		p := k
		amax := cmplx.Abs(m.ab[m.idx(k, k)])
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			if a := cmplx.Abs(m.ab[m.idx(i, k)]); a > amax {
				amax, p = a, i
			}
		}
		m.ipiv[k] = p
		if amax == 0 {
			return ErrSingular
		}
		if p != k {
			for j := k; j <= min(k+kv, n-1); j++ {
				m.ab[m.idx(k, j)], m.ab[m.idx(p, j)] = m.ab[m.idx(p, j)], m.ab[m.idx(k, j)]
			}
		}
		piv := m.ab[m.idx(k, k)]
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			l := m.ab[m.idx(i, k)] / piv
			m.ab[m.idx(i, k)] = l
			if l != 0 {
				for j := k + 1; j <= min(k+kv, n-1); j++ {
					m.ab[m.idx(i, j)] -= l * m.ab[m.idx(k, j)]
				}
			}
		}
	}
	m.factored = true
	return nil
}

// Solve overwrites b with the solution of A*x = b.
func (m *Complex) Solve(b []complex128) {
	if !m.factored {
		panic("banded: Solve before Factor")
	}
	n, kl := m.N, m.KL
	kv := m.KU + kl
	for k := 0; k < n; k++ {
		if p := m.ipiv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		bk := b[k]
		if bk != 0 {
			for i := k + 1; i <= min(k+kl, n-1); i++ {
				b[i] -= m.ab[m.idx(i, k)] * bk
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j <= min(i+kv, n-1); j++ {
			s -= m.ab[m.idx(i, j)] * b[j]
		}
		b[i] = s / m.ab[m.idx(i, i)]
	}
}
