package banded

import "math/cmplx"

// Naive is a deliberately straightforward complex banded solver standing in
// for Netlib reference LAPACK (ZGBTRF/ZGBTRS) as the normalization baseline
// of Table 1. It uses the full general band storage (center panel of the
// paper's Fig. 3) addressed through an index function on every element
// access, performs partial pivoting, and makes no attempt at cache blocking
// or unrolling — the characteristics of unoptimized reference code.
type Naive struct {
	n, kl, ku int
	a         [][]complex128 // a[i][d], d = j-i+kl, full fill width
	ipiv      []int
	factored  bool
}

// NewNaive allocates an n x n reference banded matrix.
func NewNaive(n, kl, ku int) *Naive {
	a := make([][]complex128, n)
	w := 2*kl + ku + 1
	for i := range a {
		a[i] = make([]complex128, w)
	}
	return &Naive{n: n, kl: kl, ku: ku, a: a, ipiv: make([]int, n)}
}

func (m *Naive) get(i, j int) complex128 {
	d := j - i + m.kl
	if d < 0 || d >= 2*m.kl+m.ku+1 {
		return 0
	}
	return m.a[i][d]
}

func (m *Naive) put(i, j int, v complex128) {
	m.a[i][j-i+m.kl] = v
}

// Set assigns A(i, j) = v within [i-kl, i+ku].
func (m *Naive) Set(i, j int, v complex128) {
	if d := j - i; d < -m.kl || d > m.ku {
		panic("banded: naive Set outside band")
	}
	m.put(i, j, v)
	m.factored = false
}

// Factor performs textbook pivoted band LU, one element at a time.
func (m *Naive) Factor() error {
	n, kl := m.n, m.kl
	kv := m.ku + kl
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			if cmplx.Abs(m.get(i, k)) > cmplx.Abs(m.get(p, k)) {
				p = i
			}
		}
		m.ipiv[k] = p
		if m.get(p, k) == 0 {
			return ErrSingular
		}
		if p != k {
			for j := k; j <= min(k+kv, n-1); j++ {
				t := m.get(k, j)
				m.put(k, j, m.get(p, j))
				m.put(p, j, t)
			}
		}
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			l := m.get(i, k) / m.get(k, k)
			m.put(i, k, l)
			for j := k + 1; j <= min(k+kv, n-1); j++ {
				m.put(i, j, m.get(i, j)-l*m.get(k, j))
			}
		}
	}
	m.factored = true
	return nil
}

// Solve overwrites b with the solution of A*x = b.
func (m *Naive) Solve(b []complex128) {
	if !m.factored {
		panic("banded: naive Solve before Factor")
	}
	n, kl := m.n, m.kl
	kv := m.ku + kl
	for k := 0; k < n; k++ {
		if p := m.ipiv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i <= min(k+kl, n-1); i++ {
			b[i] -= m.get(i, k) * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j <= min(i+kv, n-1); j++ {
			s -= m.get(i, j) * b[j]
		}
		b[i] = s / m.get(i, i)
	}
}
