package banded

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseSolve is the reference: full Gaussian elimination with partial
// pivoting on a dense copy.
func denseSolve(a [][]complex128, b []complex128) []complex128 {
	n := len(b)
	m := make([][]complex128, n)
	for i := range m {
		m[i] = append([]complex128(nil), a[i]...)
	}
	x := append([]complex128(nil), b...)
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if cmplx.Abs(m[i][k]) > cmplx.Abs(m[p][k]) {
				p = i
			}
		}
		m[k], m[p] = m[p], m[k]
		x[k], x[p] = x[p], x[k]
		for i := k + 1; i < n; i++ {
			l := m[i][k] / m[k][k]
			for j := k; j < n; j++ {
				m[i][j] -= l * m[k][j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// randBandReal builds a random diagonally dominant real banded matrix and a
// dense mirror of it.
func randBandReal(rng *rand.Rand, n, kl, ku int) (*Real, [][]complex128) {
	m := NewReal(n, kl, ku)
	dense := make([][]complex128, n)
	for i := range dense {
		dense[i] = make([]complex128, n)
	}
	for i := 0; i < n; i++ {
		for j := max(0, i-kl); j <= min(n-1, i+ku); j++ {
			v := rng.NormFloat64()
			if i == j {
				v += float64(kl+ku+2) * 2 // dominance
			}
			m.Set(i, j, v)
			dense[i][j] = complex(v, 0)
		}
	}
	return m, dense
}

func randComplexVec(rng *rand.Rand, n int) []complex128 {
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return b
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRealSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, kl, ku int }{{5, 1, 1}, {16, 2, 3}, {33, 4, 4}, {64, 7, 7}, {10, 0, 2}, {10, 3, 0}} {
		m, dense := randBandReal(rng, tc.n, tc.kl, tc.ku)
		b := make([]float64, tc.n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		cb := make([]complex128, tc.n)
		for i := range b {
			cb[i] = complex(b[i], 0)
		}
		want := denseSolve(dense, cb)
		if err := m.Factor(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		m.Solve(b)
		for i := range b {
			if math.Abs(b[i]-real(want[i])) > 1e-9 {
				t.Fatalf("n=%d kl=%d ku=%d: x[%d]=%g want %g", tc.n, tc.kl, tc.ku, i, b[i], real(want[i]))
			}
		}
	}
}

func TestRealSolveComplexTwoReal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, kl, ku := 40, 3, 3
	m, dense := randBandReal(rng, n, kl, ku)
	b := randComplexVec(rng, n)
	want := denseSolve(dense, b)
	if err := m.Factor(); err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), b...)
	m.SolveComplexTwoReal(got)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("two-real complex solve differs from dense: %g", d)
	}
}

func TestComplexSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, kl, ku int }{{6, 1, 2}, {20, 3, 3}, {48, 5, 5}} {
		m := NewComplex(tc.n, tc.kl, tc.ku)
		dense := make([][]complex128, tc.n)
		for i := range dense {
			dense[i] = make([]complex128, tc.n)
		}
		for i := 0; i < tc.n; i++ {
			for j := max(0, i-tc.kl); j <= min(tc.n-1, i+tc.ku); j++ {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				if i == j {
					v += complex(float64(tc.kl+tc.ku+2)*2, 0)
				}
				m.Set(i, j, v)
				dense[i][j] = v
			}
		}
		b := randComplexVec(rng, tc.n)
		want := denseSolve(dense, b)
		if err := m.Factor(); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), b...)
		m.Solve(got)
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: complex banded differs from dense: %g", tc.n, d)
		}
	}
}

func TestNaiveMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, kl, ku := 30, 4, 4
	nv := NewNaive(n, kl, ku)
	cx := NewComplex(n, kl, ku)
	for i := 0; i < n; i++ {
		for j := max(0, i-kl); j <= min(n-1, i+ku); j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			if i == j {
				v += 20
			}
			nv.Set(i, j, v)
			cx.Set(i, j, v)
		}
	}
	b := randComplexVec(rng, n)
	b2 := append([]complex128(nil), b...)
	if err := nv.Factor(); err != nil {
		t.Fatal(err)
	}
	if err := cx.Factor(); err != nil {
		t.Fatal(err)
	}
	nv.Solve(b)
	cx.Solve(b2)
	if d := maxDiff(b, b2); d > 1e-9 {
		t.Errorf("naive and complex banded disagree: %g", d)
	}
}

// buildBordered builds a diagonally dominant compact matrix with border rows
// carrying extras beyond the band, plus a dense mirror.
func buildBordered(rng *rand.Rand, n, h, border, extra int) (*Compact, [][]complex128) {
	c := NewCompact(n, h)
	for i := 0; i < border; i++ {
		c.Widen(i, 0, min(n-1, h+extra+i))
		c.Widen(n-1-i, max(0, n-1-h-extra-i), n-1)
	}
	dense := make([][]complex128, n)
	for i := range dense {
		dense[i] = make([]complex128, n)
	}
	set := func(i, j int, v float64) {
		c.Set(i, j, v)
		dense[i][j] = complex(v, 0)
	}
	for i := 0; i < n; i++ {
		lo := max(0, i-h)
		hi := min(n-1, i+h)
		if i < border {
			lo, hi = 0, min(n-1, h+extra+i)
		}
		if i >= n-border {
			lo, hi = max(0, n-1-h-extra-(n-1-i)), n-1
		}
		for j := lo; j <= hi; j++ {
			v := rng.NormFloat64()
			if i == j {
				v += float64(2*(h+extra)+4) * 2
			}
			set(i, j, v)
		}
	}
	return c, dense
}

func TestCompactSolveComplexMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, h, border, extra int }{
		{12, 1, 0, 0}, {24, 3, 2, 3}, {50, 4, 4, 5}, {64, 7, 3, 4}, {9, 2, 1, 2},
	} {
		c, dense := buildBordered(rng, tc.n, tc.h, tc.border, tc.extra)
		b := randComplexVec(rng, tc.n)
		want := denseSolve(dense, b)
		if err := c.Factor(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		got := append([]complex128(nil), b...)
		c.SolveComplex(got)
		if d := maxDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d h=%d border=%d: compact differs from dense by %g", tc.n, tc.h, tc.border, d)
		}
	}
}

func TestCompactSolveRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := buildBordered(rng, 40, 3, 2, 2)
	c2, _ := buildBordered(rand.New(rand.NewSource(6)), 40, 3, 2, 2)
	if err := c.Factor(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Factor(); err != nil {
		t.Fatal(err)
	}
	br := make([]float64, 40)
	for i := range br {
		br[i] = rng.NormFloat64()
	}
	bc := make([]complex128, 40)
	for i := range br {
		bc[i] = complex(br[i], 0)
	}
	c.SolveReal(br)
	c2.SolveComplex(bc)
	for i := range br {
		if math.Abs(br[i]-real(bc[i])) > 1e-10 || math.Abs(imag(bc[i])) > 1e-10 {
			t.Fatalf("real/complex compact solves disagree at %d", i)
		}
	}
}

func TestCompactResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(56)
		h := 1 + rng.Intn(5)
		border := rng.Intn(3)
		c, _ := buildBordered(rng, n, h, border, rng.Intn(3))
		// Mirror for residual before factorization destroys entries.
		mirror, _ := buildBordered(rand.New(rand.NewSource(seed)), n, h, border, 0)
		_ = mirror
		x := randComplexVec(rng, n)
		bb := make([]complex128, n)
		c2 := cloneCompact(c)
		c2.MulVecComplex(bb, x)
		if err := c.Factor(); err != nil {
			return false
		}
		c.SolveComplex(bb)
		return maxDiff(bb, x) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func cloneCompact(c *Compact) *Compact {
	d := &Compact{n: c.n, lo: append([]int(nil), c.lo...), hi: append([]int(nil), c.hi...)}
	d.rows = make([][]float64, c.n)
	for i := range c.rows {
		if c.rows[i] != nil {
			d.rows[i] = append([]float64(nil), c.rows[i]...)
		}
	}
	return d
}

func TestCompactStorageSmallerThanGeneral(t *testing.T) {
	// Paper: custom format halves memory vs general band storage with fill.
	n, h := 1024, 7
	c := NewCompact(n, h)
	for i := 0; i < n; i++ {
		for j := max(0, i-h); j <= min(n-1, i+h); j++ {
			if i == j {
				c.Set(i, j, 10)
			} else {
				c.Set(i, j, 0.1)
			}
		}
	}
	// General band storage with pivot fill carries kl+ku+kl+1 = 3h+1
	// diagonals; the compact layout carries only the 2h+1 structural ones,
	// a (2h+1)/(3h+1) ratio. (The paper's further factor of two comes from
	// the complex-vs-real element width, which StorageFloats normalizes.)
	general := n * (2*h + h + 1)
	if got := c.StorageFloats(); float64(got) > 0.75*float64(general) {
		t.Errorf("compact storage %d not meaningfully below general %d", got, general)
	}
}

func TestSingularDetection(t *testing.T) {
	m := NewReal(4, 1, 1)
	// Leave the matrix all zero.
	if err := m.Factor(); err != ErrSingular {
		t.Errorf("real: expected ErrSingular, got %v", err)
	}
	c := NewCompact(4, 1)
	c.Set(0, 0, 0)
	c.Set(1, 1, 1)
	c.Set(2, 2, 1)
	c.Set(3, 3, 1)
	if err := c.Factor(); err != ErrSingular {
		t.Errorf("compact: expected ErrSingular, got %v", err)
	}
}

func TestRealMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, dense := randBandReal(rng, 20, 2, 3)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 20)
	m.MulVec(y, x)
	for i := 0; i < 20; i++ {
		want := 0.0
		for j := 0; j < 20; j++ {
			want += real(dense[i][j]) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-10 {
			t.Fatalf("MulVec row %d: %g want %g", i, y[i], want)
		}
	}
}

func TestPivotingHandlesNonDominant(t *testing.T) {
	// A matrix that requires pivoting: zero diagonal but nonsingular.
	m := NewReal(3, 1, 1)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(2, 2, 1)
	if err := m.Factor(); err != nil {
		t.Fatalf("pivoted factorization failed: %v", err)
	}
	// A = [[0,1,0],[1,0,1],[0,1,1]], solve A*x = [1,2,3] -> x = [0,1,2]... check:
	// row0: x1 = 1; row1: x0+x2 = 2; row2: x1+x2 = 3 -> x2 = 2, x0 = 0.
	b := []float64{1, 2, 3}
	m.Solve(b)
	want := []float64{0, 1, 2}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}

func benchSystem(n, h int) (*Compact, *Real, *Complex, *Naive) {
	rng := rand.New(rand.NewSource(99))
	c := NewCompact(n, h)
	r := NewReal(n, h, h)
	cx := NewComplex(n, h, h)
	nv := NewNaive(n, h, h)
	for i := 0; i < n; i++ {
		for j := max(0, i-h); j <= min(n-1, i+h); j++ {
			v := rng.NormFloat64()
			if i == j {
				v += float64(4*h + 8)
			}
			c.Set(i, j, v)
			r.Set(i, j, v)
			cx.Set(i, j, complex(v, 0))
			nv.Set(i, j, complex(v, 0))
		}
	}
	return c, r, cx, nv
}

func BenchmarkCompactFactorSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, _, _, _ := benchSystem(1024, 3)
		rhs := make([]complex128, 1024)
		for j := range rhs {
			rhs[j] = complex(float64(j), 1)
		}
		b.StartTimer()
		if err := c.Factor(); err != nil {
			b.Fatal(err)
		}
		c.SolveComplex(rhs)
	}
}

func BenchmarkNaiveFactorSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, _, _, nv := benchSystem(1024, 3)
		rhs := make([]complex128, 1024)
		for j := range rhs {
			rhs[j] = complex(float64(j), 1)
		}
		b.StartTimer()
		if err := nv.Factor(); err != nil {
			b.Fatal(err)
		}
		nv.Solve(rhs)
	}
}
