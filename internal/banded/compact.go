package banded

import (
	"fmt"
	"math"
)

// Compact is the customized solver of paper §4.1.1. The matrix is banded
// with half-bandwidth h, with optional extra nonzero entries in the first
// and last few (border) rows — the structure on the left of the paper's
// Fig. 3. Instead of the general LAPACK band layout (center panel), rows are
// stored at exactly their nonzero extent with boundary extras folded into
// otherwise-empty storage (right panel), halving the memory footprint.
// Factorization performs LU without pivoting (the collocation Helmholtz
// systems the DNS solves are strongly diagonally dominant), spends no
// operations on structural zeros, and the solve handles a real matrix with
// a complex right-hand side natively: each inner update is two real
// multiply-adds instead of a full complex multiply or a rearrangement into
// two sequential real vectors.
type Compact struct {
	n        int
	lo       []int       // first stored column of row i
	hi       []int       // last stored column of row i (after symbolic fill)
	rows     [][]float64 // rows[i][j-lo[i]] = A(i, j)
	factored bool
}

// NewCompact allocates an n x n compact matrix with half-bandwidth h:
// row i initially covers columns [i-h, i+h] clipped to the matrix.
func NewCompact(n, h int) *Compact {
	if n <= 0 || h < 0 {
		panic(fmt.Sprintf("banded: bad compact dimensions n=%d h=%d", n, h))
	}
	c := &Compact{n: n, lo: make([]int, n), hi: make([]int, n)}
	for i := 0; i < n; i++ {
		c.lo[i] = max(0, i-h)
		c.hi[i] = min(n-1, i+h)
	}
	return c
}

// Widen extends row i so it stores columns [lo, hi]; used to declare the
// boundary-row extras before assembly. Existing entries are preserved.
func (c *Compact) Widen(i, lo, hi int) {
	lo = max(0, lo)
	hi = min(c.n-1, hi)
	if lo < c.lo[i] {
		c.lo[i] = lo
	}
	if hi > c.hi[i] {
		c.hi[i] = hi
	}
	if c.rows != nil && c.rows[i] != nil {
		panic("banded: Widen after assembly started on this row")
	}
}

// ensure allocates row storage lazily after all Widen calls.
func (c *Compact) ensure(i int) []float64 {
	if c.rows == nil {
		c.rows = make([][]float64, c.n)
	}
	if c.rows[i] == nil {
		c.rows[i] = make([]float64, c.hi[i]-c.lo[i]+1)
	}
	return c.rows[i]
}

// Set assigns A(i, j) = v. j must lie within the declared extent of row i.
func (c *Compact) Set(i, j int, v float64) {
	if j < c.lo[i] || j > c.hi[i] {
		panic(fmt.Sprintf("banded: compact Set outside row extent (%d,%d) in [%d,%d]", i, j, c.lo[i], c.hi[i]))
	}
	c.ensure(i)[j-c.lo[i]] = v
	c.factored = false
}

// Add accumulates A(i, j) += v.
func (c *Compact) Add(i, j int, v float64) {
	if j < c.lo[i] || j > c.hi[i] {
		panic(fmt.Sprintf("banded: compact Add outside row extent (%d,%d)", i, j))
	}
	c.ensure(i)[j-c.lo[i]] += v
	c.factored = false
}

// At returns A(i, j), zero outside the stored extent.
func (c *Compact) At(i, j int) float64 {
	if i < 0 || i >= c.n || j < c.lo[i] || j > c.hi[i] || c.rows == nil || c.rows[i] == nil {
		return 0
	}
	return c.rows[i][j-c.lo[i]]
}

// N returns the matrix dimension.
func (c *Compact) N() int { return c.n }

// MulVecComplex computes y = A*x for a complex vector using the unfactored
// entries (for residual checks). Must be called before Factor.
func (c *Compact) MulVecComplex(y, x []complex128) {
	if c.factored {
		panic("banded: MulVecComplex after Factor")
	}
	for i := 0; i < c.n; i++ {
		row := c.ensure(i)
		var sr, si float64
		for k, a := range row {
			xv := x[c.lo[i]+k]
			sr += a * real(xv)
			si += a * imag(xv)
		}
		y[i] = complex(sr, si)
	}
}

// Factor computes the in-place LU factorization without pivoting. Symbolic
// fill is resolved first: eliminating row i against row k extends row i to
// row k's extent, which is exactly how boundary extras fold through the
// band. Returns ErrSingular on a (near-)zero pivot.
func (c *Compact) Factor() error {
	n := c.n
	// Symbolic pass: final extents.
	for i := 1; i < n; i++ {
		h := c.hi[i]
		for k := c.lo[i]; k < i; k++ {
			if c.hi[k] > h {
				h = c.hi[k]
			}
		}
		if h > c.hi[i] {
			row := make([]float64, h-c.lo[i]+1)
			copy(row, c.ensure(i))
			c.rows[i] = row
			c.hi[i] = h
		} else {
			c.ensure(i)
		}
	}
	c.ensure(0)
	// Numeric pass: row-oriented Doolittle, no pivoting. The inner update
	// loop is unrolled by four, the hand-optimization the paper applies to
	// improve cache reuse in the LU kernel.
	for i := 1; i < n; i++ {
		ri := c.rows[i]
		loi := c.lo[i]
		for k := loi; k < i; k++ {
			piv := c.rows[k][k-c.lo[k]]
			if piv == 0 || math.Abs(piv) < 1e-300 {
				return ErrSingular
			}
			l := ri[k-loi] / piv
			ri[k-loi] = l
			if l == 0 {
				continue
			}
			rk := c.rows[k]
			// Columns k+1..hi[k] in both rows.
			a := ri[k+1-loi : c.hi[k]+1-loi]
			b := rk[k+1-c.lo[k] : c.hi[k]+1-c.lo[k]]
			j := 0
			for ; j+3 < len(a); j += 4 {
				a[j] -= l * b[j]
				a[j+1] -= l * b[j+1]
				a[j+2] -= l * b[j+2]
				a[j+3] -= l * b[j+3]
			}
			for ; j < len(a); j++ {
				a[j] -= l * b[j]
			}
		}
	}
	if c.rows[n-1][n-1-c.lo[n-1]] == 0 {
		return ErrSingular
	}
	c.factored = true
	return nil
}

// SolveComplex overwrites b with the solution of A*x = b for a complex
// right-hand side against the real factors, the native real x complex mode
// of the customized solver.
func (c *Compact) SolveComplex(b []complex128) {
	if !c.factored {
		panic("banded: SolveComplex before Factor")
	}
	n := c.n
	// Forward substitution: y_i = b_i - sum L(i,k) y_k.
	for i := 1; i < n; i++ {
		ri := c.rows[i]
		loi := c.lo[i]
		var sr, si float64
		kmax := i - loi
		for k := 0; k < kmax; k++ {
			l := ri[k]
			if l != 0 {
				v := b[loi+k]
				sr += l * real(v)
				si += l * imag(v)
			}
		}
		b[i] = complex(real(b[i])-sr, imag(b[i])-si)
	}
	// Back substitution: x_i = (y_i - sum U(i,j) x_j) / U(i,i).
	for i := n - 1; i >= 0; i-- {
		ri := c.rows[i]
		loi := c.lo[i]
		var sr, si float64
		for j := i + 1; j <= c.hi[i]; j++ {
			u := ri[j-loi]
			if u != 0 {
				v := b[j]
				sr += u * real(v)
				si += u * imag(v)
			}
		}
		d := ri[i-loi]
		b[i] = complex((real(b[i])-sr)/d, (imag(b[i])-si)/d)
	}
}

// SolveReal overwrites b with the solution of A*x = b for a real RHS.
func (c *Compact) SolveReal(b []float64) {
	if !c.factored {
		panic("banded: SolveReal before Factor")
	}
	n := c.n
	for i := 1; i < n; i++ {
		ri := c.rows[i]
		loi := c.lo[i]
		s := 0.0
		for k := 0; k < i-loi; k++ {
			s += ri[k] * b[loi+k]
		}
		b[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		ri := c.rows[i]
		loi := c.lo[i]
		s := 0.0
		for j := i + 1; j <= c.hi[i]; j++ {
			s += ri[j-loi] * b[j]
		}
		b[i] = (b[i] - s) / ri[i-loi]
	}
}

// StorageFloats reports the number of float64 values held, for comparing the
// memory footprint against the general band layout (paper: half the memory).
func (c *Compact) StorageFloats() int {
	tot := 0
	for i := 0; i < c.n; i++ {
		tot += c.hi[i] - c.lo[i] + 1
	}
	return tot
}
