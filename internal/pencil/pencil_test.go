package pencil

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// globalField builds a deterministic global array indexed (kx, kz, y) so
// every rank can compute expected values without communication.
func globalVal(f, kx, kz, y int) complex128 {
	return complex(float64(1000*f+100*kx+10*kz+y), float64(kx-kz))
}

// yPencilOf fills this rank's y-pencil slice of the global field.
func yPencilOf(d *Decomp, f int) []complex128 {
	kl, kh := d.KxRange()
	zl, zh := d.KzRangeY()
	out := make([]complex128, (kh-kl)*(zh-zl)*d.NY)
	pos := 0
	for kx := kl; kx < kh; kx++ {
		for kz := zl; kz < zh; kz++ {
			for y := 0; y < d.NY; y++ {
				out[pos] = globalVal(f, kx, kz, y)
				pos++
			}
		}
	}
	return out
}

func checkZPencil(t *testing.T, d *Decomp, f int, got []complex128) {
	t.Helper()
	kl, kh := d.KxRange()
	yl, yh := d.YRange()
	nyLoc := yh - yl
	pos := 0
	for kx := kl; kx < kh; kx++ {
		for y := yl; y < yh; y++ {
			for kz := 0; kz < d.NZ; kz++ {
				want := globalVal(f, kx, kz, y)
				if got[pos] != want {
					t.Fatalf("z-pencil f=%d kx=%d y=%d kz=%d: got %v want %v", f, kx, y, kz, got[pos], want)
				}
				pos++
			}
		}
	}
	_ = nyLoc
}

func checkXPencil(t *testing.T, d *Decomp, f int, got []complex128, zLen int) {
	t.Helper()
	yl, yh := d.YRange()
	zl, zh := d.ZRangeX(zLen)
	pos := 0
	for y := yl; y < yh; y++ {
		for z := zl; z < zh; z++ {
			for kx := 0; kx < d.NKx; kx++ {
				want := globalVal(f, kx, z, y)
				if got[pos] != want {
					t.Fatalf("x-pencil f=%d y=%d z=%d kx=%d: got %v want %v", f, y, z, kx, got[pos], want)
				}
				pos++
			}
		}
	}
}

func TestTransposePath(t *testing.T) {
	cases := []struct{ pa, pb, nkx, nz, ny int }{
		{1, 1, 4, 6, 5},
		{2, 2, 8, 8, 8},
		{4, 2, 8, 12, 10},
		{2, 4, 8, 12, 10},
		{3, 2, 7, 11, 9}, // uneven divisions everywhere
		{4, 4, 16, 16, 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("pa%d_pb%d_%dx%dx%d", tc.pa, tc.pb, tc.nkx, tc.nz, tc.ny), func(t *testing.T) {
			mpi.Run(tc.pa*tc.pb, func(c *mpi.Comm) {
				d := New(c, tc.pa, tc.pb, tc.nkx, tc.nz, tc.ny, par.NewPool(1))
				const nf = 3
				src := make([][]complex128, nf)
				for f := range src {
					src[f] = yPencilOf(d, f)
				}
				// y -> z: verify against global data.
				zp := d.YtoZ(nil, src)
				for f := 0; f < nf; f++ {
					checkZPencil(t, d, f, zp[f])
				}
				// z -> x (spectral z extent): verify.
				xp := d.ZtoX(nil, zp, d.NZ)
				for f := 0; f < nf; f++ {
					checkXPencil(t, d, f, xp[f], d.NZ)
				}
				// Round trip back.
				zp2 := d.XtoZ(nil, xp, d.NZ)
				for f := 0; f < nf; f++ {
					checkZPencil(t, d, f, zp2[f])
				}
				yp2 := d.ZtoY(nil, zp2)
				for f := 0; f < nf; f++ {
					want := yPencilOf(d, f)
					for i := range want {
						if yp2[f][i] != want[i] {
							t.Fatalf("y roundtrip f=%d i=%d: got %v want %v", f, i, yp2[f][i], want[i])
						}
					}
				}
			})
		})
	}
}

func TestTransposeWithPaddedZ(t *testing.T) {
	// z extent larger than NZ (physical 3/2 grid) for the z<->x transposes.
	mpi.Run(4, func(c *mpi.Comm) {
		d := New(c, 2, 2, 6, 8, 8, par.NewPool(2))
		zLen := 12 // 3*NZ/2
		kl, kh := d.KxRange()
		yl, yh := d.YRange()
		nf := 2
		src := make([][]complex128, nf)
		for f := range src {
			src[f] = make([]complex128, (kh-kl)*(yh-yl)*zLen)
			pos := 0
			for kx := kl; kx < kh; kx++ {
				for y := yl; y < yh; y++ {
					for z := 0; z < zLen; z++ {
						src[f][pos] = globalVal(f, kx, z, y)
						pos++
					}
				}
			}
		}
		xp := d.ZtoX(nil, src, zLen)
		for f := 0; f < nf; f++ {
			checkXPencil(t, d, f, xp[f], zLen)
		}
		back := d.XtoZ(nil, xp, zLen)
		for f := 0; f < nf; f++ {
			for i := range src[f] {
				if back[f][i] != src[f][i] {
					t.Fatalf("padded roundtrip f=%d i=%d", f, i)
				}
			}
		}
	})
}

func TestTransposeRandomRoundTripProperty(t *testing.T) {
	// Random data, several process grids: YtoZ then ZtoY is the identity.
	for _, grid := range [][2]int{{1, 4}, {4, 1}, {2, 3}} {
		grid := grid
		mpi.Run(grid[0]*grid[1], func(c *mpi.Comm) {
			d := New(c, grid[0], grid[1], 5, 9, 11, par.NewPool(1))
			rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
			src := [][]complex128{make([]complex128, d.YPencilLen())}
			for i := range src[0] {
				src[0][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			zp := d.YtoZ(nil, src)
			back := d.ZtoY(nil, zp)
			for i := range src[0] {
				if back[0][i] != src[0][i] {
					t.Errorf("grid %v rank %d: roundtrip differs at %d", grid, c.Rank(), i)
					return
				}
			}
		})
	}
}

func TestReorder(t *testing.T) {
	ni, nj, nk := 3, 4, 5
	src := make([]complex128, ni*nj*nk)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	dst := make([]complex128, ni*nj*nk)
	Reorder(dst, src, ni, nj, nk, par.NewPool(2))
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				want := src[(i*nj+j)*nk+k]
				got := dst[(j*nk+k)*ni+i]
				if got != want {
					t.Fatalf("Reorder(%d,%d,%d): got %v want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestReorderThreadConsistency(t *testing.T) {
	ni, nj, nk := 16, 24, 8
	src := make([]complex128, ni*nj*nk)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ref := make([]complex128, len(src))
	Reorder(ref, src, ni, nj, nk, par.NewPool(1))
	var wg sync.WaitGroup
	for _, w := range []int{2, 4, 8} {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]complex128, len(src))
			Reorder(dst, src, ni, nj, nk, par.NewPool(w))
			for i := range ref {
				if dst[i] != ref[i] {
					t.Errorf("workers=%d differs at %d", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestChunkCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 16, 100} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			prev := 0
			for r := 0; r < p; r++ {
				lo, hi := Chunk(n, p, r)
				if lo != prev {
					t.Fatalf("chunk(%d,%d,%d) lo=%d want %d", n, p, r, lo, prev)
				}
				if hi < lo {
					t.Fatalf("chunk(%d,%d,%d) hi<lo", n, p, r)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("chunk(%d,%d,*) covers %d", n, p, prev)
			}
		}
	}
}

// TestOverlapTransposeEquivalent: the nonblocking overlapped exchange must
// produce exactly the same transposes as the pairwise blocking schedule.
func TestOverlapTransposeEquivalent(t *testing.T) {
	mpi.Run(6, func(c *mpi.Comm) {
		d := New(c, 3, 2, 7, 10, 9, par.NewPool(2))
		d.Overlap = true
		const nf = 2
		src := make([][]complex128, nf)
		for f := range src {
			src[f] = yPencilOf(d, f)
		}
		zp := d.YtoZ(nil, src)
		for f := 0; f < nf; f++ {
			checkZPencil(t, d, f, zp[f])
		}
		xp := d.ZtoX(nil, zp, d.NZ)
		for f := 0; f < nf; f++ {
			checkXPencil(t, d, f, xp[f], d.NZ)
		}
		back := d.ZtoY(nil, d.XtoZ(nil, xp, d.NZ))
		for f := 0; f < nf; f++ {
			want := yPencilOf(d, f)
			for i := range want {
				if back[f][i] != want[i] {
					t.Fatalf("overlap roundtrip f=%d i=%d", f, i)
				}
			}
		}
	})
}
