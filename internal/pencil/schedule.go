package pencil

import "channeldns/internal/schedule"

// CycleSchedule returns the declarative schedule of one full transpose
// cycle (YtoZ, ZtoX, XtoZ, ZtoY on the spectral grid) over nf fields as
// this decomposition executes it — the live analog of the Table 5
// benchmark program. Each transpose packs and unpacks through the plan's
// persistent buffers (4 memory passes).
func (d *Decomp) CycleSchedule(nf int) *schedule.Schedule {
	return schedule.TransposeCycle(schedule.TransposeCycleParams{
		Nx: 2 * d.NKx, NKx: d.NKx, Ny: d.NY, Nz: d.NZ,
		PA: d.PA, PB: d.PB,
		Fields:     nf,
		PackPasses: 4,
	})
}
