package pencil

import "channeldns/internal/schedule"

// CycleSchedule returns the declarative schedule of one full transpose
// cycle (YtoZ, ZtoX, XtoZ, ZtoY on the spectral grid) over nf fields as
// this decomposition executes it — the live analog of the Table 5
// benchmark program. Each transpose packs and unpacks through the plan's
// persistent buffers (4 memory passes). With Overlap on the cycle runs the
// chunked pipelined exchange, so the emitted transposes carry the same
// per-direction pipeline depths the plans use.
func (d *Decomp) CycleSchedule(nf int) *schedule.Schedule {
	ca, cb := d.OverlapChunks()
	return schedule.TransposeCycle(schedule.TransposeCycleParams{
		Nx: 2 * d.NKx, NKx: d.NKx, Ny: d.NY, Nz: d.NZ,
		PA: d.PA, PB: d.PB,
		Fields:     nf,
		PackPasses: 4,
		ChunksA:    ca, ChunksB: cb,
	})
}
