package pencil

import (
	"fmt"
	"math/rand"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
)

// TestRunPipelinedBitwise: the chunked pipelined transpose must place
// exactly the bytes the serial exchange places — bit-identical destinations
// (exact ==) for every direction, across process splits covering
// P ∈ {1, 2, 4, 8} including uneven decompositions, several pipeline
// depths, and reused plans. The consume callback must see ascending,
// disjoint line ranges tiling the full chunk axis.
func TestRunPipelinedBitwise(t *testing.T) {
	shapes := []struct{ pa, pb, nkx, nz, ny int }{
		{1, 1, 4, 6, 8},
		{2, 1, 5, 9, 11},
		{1, 2, 5, 9, 11},
		{2, 2, 7, 10, 13},
		{4, 2, 9, 12, 10},
		{2, 4, 6, 11, 9},
		{1, 8, 5, 17, 13},
		{8, 1, 17, 9, 7},
	}
	chunkCounts := []int{0, 1, 3, 64} // 0 = default, 64 clamps to the axis
	for _, sh := range shapes {
		for _, cc := range chunkCounts {
			sh, cc := sh, cc
			t.Run(fmt.Sprintf("%dx%d_%dx%dx%d_c%d", sh.pa, sh.pb, sh.nkx, sh.nz, sh.ny, cc),
				func(t *testing.T) {
					mpi.Run(sh.pa*sh.pb, func(c *mpi.Comm) {
						pool := par.NewPool(2)
						ds := New(c, sh.pa, sh.pb, sh.nkx, sh.nz, sh.ny, pool)
						dp := New(c, sh.pa, sh.pb, sh.nkx, sh.nz, sh.ny, pool)
						dp.Overlap = true
						dp.PipelineChunks = cc
						const nf = 2
						rng := rand.New(rand.NewSource(int64(101*c.Rank() + 3)))
						src := AllocFields(nf, ds.YPencilLen())
						zpS := AllocFields(nf, ds.ZPencilLen(ds.NZ))
						zpP := AllocFields(nf, ds.ZPencilLen(ds.NZ))
						xpS := AllocFields(nf, ds.XPencilLen(ds.NZ))
						xpP := AllocFields(nf, ds.XPencilLen(ds.NZ))
						zbS := AllocFields(nf, ds.ZPencilLen(ds.NZ))
						zbP := AllocFields(nf, ds.ZPencilLen(ds.NZ))
						ybS := AllocFields(nf, ds.YPencilLen())
						ybP := AllocFields(nf, ds.YPencilLen())

						compare := func(it int, dir string, want, got [][]complex128) {
							t.Helper()
							for f := range want {
								for i := range want[f] {
									if got[f][i] != want[f][i] {
										t.Fatalf("iter %d rank %d %s: pipelined differs at f=%d i=%d: %v != %v",
											it, c.Rank(), dir, f, i, got[f][i], want[f][i])
									}
								}
							}
						}
						var ranges [][2]int
						record := func(lo, hi int) { ranges = append(ranges, [2]int{lo, hi}) }
						checkRanges := func(dir string, lineN int) {
							t.Helper()
							pos := 0
							for _, r := range ranges {
								if r[0] != pos || r[1] <= r[0] {
									t.Fatalf("rank %d %s: consume ranges %v not ascending disjoint", c.Rank(), dir, ranges)
								}
								pos = r[1]
							}
							if pos != lineN {
								t.Fatalf("rank %d %s: consume ranges %v do not cover [0,%d)", c.Rank(), dir, ranges, lineN)
							}
							ranges = ranges[:0]
						}
						kl, kh := ds.KxRange()
						yl, yh := ds.YRange()

						for it := 0; it < 3; it++ {
							for f := 0; f < nf; f++ {
								for i := range src[f] {
									src[f][i] = complex(rng.NormFloat64(), rng.NormFloat64())
								}
							}
							ds.YtoZ(zpS, src)
							dp.YtoZPipelined(zpP, src, record)
							checkRanges("YtoZ", kh-kl)
							compare(it, "YtoZ", zpS, zpP)

							ds.ZtoX(xpS, zpS, ds.NZ)
							dp.ZtoXPipelined(xpP, zpP, ds.NZ, record)
							checkRanges("ZtoX", yh-yl)
							compare(it, "ZtoX", xpS, xpP)

							ds.XtoZ(zbS, xpS, ds.NZ)
							dp.XtoZPipelined(zbP, xpP, ds.NZ, record)
							checkRanges("XtoZ", yh-yl)
							compare(it, "XtoZ", zbS, zbP)

							ds.ZtoY(ybS, zbS)
							dp.ZtoYPipelined(ybP, zbP, record)
							checkRanges("ZtoY", kh-kl)
							compare(it, "ZtoY", ybS, ybP)
							compare(it, "roundtrip", src, ybP)
						}
					})
				})
		}
	}
}

// TestRunPipelinedNilConsume: a nil consume hook is the pure chunked
// transpose — still bit-identical to the serial exchange.
func TestRunPipelinedNilConsume(t *testing.T) {
	mpi.Run(4, func(c *mpi.Comm) {
		ds := New(c, 2, 2, 5, 9, 11, nil)
		dp := New(c, 2, 2, 5, 9, 11, nil)
		dp.Overlap = true
		src := AllocFields(1, ds.YPencilLen())
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		for i := range src[0] {
			src[0][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		zpS := ds.YtoZ(nil, src)
		zpP := dp.YtoZPipelined(nil, src, nil)
		for i := range zpS[0] {
			if zpS[0][i] != zpP[0][i] {
				t.Fatalf("rank %d: nil-consume pipelined differs at %d", c.Rank(), i)
			}
		}
	})
}

// TestRunPipelinedSerialFallbackZeroAlloc: at P=1 RunPipelined degrades to
// the serial exchange plus one consume call; warmed, it must stay
// allocation-free so the single-rank step budget is untouched by the
// pipelined entry points.
func TestRunPipelinedSerialFallbackZeroAlloc(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		d := New(c, 1, 1, 6, 8, 10, nil)
		d.Overlap = true // np==1: still the serial fallback
		d.Telemetry = telemetry.NewCollector(c.Rank())
		src := AllocFields(2, d.YPencilLen())
		zp := AllocFields(2, d.ZPencilLen(d.NZ))
		consumed := 0
		consume := func(lo, hi int) { consumed += hi - lo }
		run := func() { d.YtoZPipelined(zp, src, consume) }
		run()
		if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
			t.Errorf("serial-fallback pipelined transpose: %v allocs per run, want 0", allocs)
		}
		if consumed == 0 {
			t.Errorf("consume hook never ran")
		}
	})
}

// TestPipelinedTelemetryMessages: with overlap on, the per-direction
// message counters must count every chunked per-peer message —
// Chunks*(P-1) per call — so the schedule consistency checks can key on
// the chunked shape.
func TestPipelinedTelemetryMessages(t *testing.T) {
	mpi.Run(4, func(c *mpi.Comm) {
		d := New(c, 1, 4, 6, 8, 12, nil)
		d.Overlap = true
		d.PipelineChunks = 3
		d.Telemetry = telemetry.NewCollector(c.Rank())
		src := AllocFields(1, d.YPencilLen())
		d.YtoZPipelined(nil, src, nil)
		calls, msgs, bytes := d.Telemetry.CommCounts(telemetry.CommYtoZ)
		if calls != 1 {
			t.Errorf("rank %d: %d calls, want 1", c.Rank(), calls)
		}
		if want := int64(3 * 3); msgs != want {
			t.Errorf("rank %d: %d messages, want %d", c.Rank(), msgs, want)
		}
		if bytes <= 0 {
			t.Errorf("rank %d: %d bytes", c.Rank(), bytes)
		}
	})
}
