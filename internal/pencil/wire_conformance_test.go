package pencil

import (
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/schedule"
)

// tcpFrameHeaderLen mirrors the TCP transport's fixed per-frame overhead
// (u32 length prefix + src + commID + tag + kind). The conformance check
// below asserts bytesOut == payloadOut + frames*header, so a header-size
// change shows up here rather than silently shifting the wire accounting.
const tcpFrameHeaderLen = 21

// wireDelta subtracts two wire snapshots peer by peer.
func wireDelta(before, after mpi.WireStats) mpi.WireStats {
	d := mpi.WireStats{Self: after.Self, World: after.World,
		DialRetries: after.DialRetries - before.DialRetries,
		Peers:       make([]mpi.WirePeerStats, len(after.Peers))}
	for r := range after.Peers {
		a, b := after.Peers[r], before.Peers[r]
		d.Peers[r] = mpi.WirePeerStats{
			FramesOut: a.FramesOut - b.FramesOut, BytesOut: a.BytesOut - b.BytesOut,
			PayloadOut: a.PayloadOut - b.PayloadOut,
			FramesIn:   a.FramesIn - b.FramesIn, BytesIn: a.BytesIn - b.BytesIn,
			PayloadIn: a.PayloadIn - b.PayloadIn,
		}
	}
	return d
}

// TestWireCountersMatchSchedule runs transpose cycles over the real TCP
// transport and asserts the per-peer wire counters equal the schedule
// IR's predictions exactly: each transpose puts BytesPerRank/CommSize
// payload bytes on the wire per remote peer in Messages/(CommSize-1)
// frames (the self block is a local copy, never a frame), and every
// frame carries exactly the fixed header on top of its payload. The
// cross-check is the observability plane's ground truth: report wire
// blocks and schedule predictions must agree to the byte.
func TestWireCountersMatchSchedule(t *testing.T) {
	const (
		pa, pb      = 1, 4 // CommB spans the world; CommA is wireless
		nkx, nz, ny = 4, 8, 8
		nf          = 3
		cycles      = 5
	)
	world := pa * pb
	finals := make([]mpi.WireStats, world)
	mpi.RunTCP(world, func(c *mpi.Comm) {
		d := New(c, pa, pb, nkx, nz, ny, par.NewPool(1))
		src := make([][]complex128, nf)
		for f := range src {
			src[f] = yPencilOf(d, f)
		}
		// Warm-up cycle: builds the four lazy transpose plans so the
		// measured interval is pure steady-state exchange.
		zp := d.YtoZ(nil, src)
		xp := d.ZtoX(nil, zp, d.NZ)
		d.ZtoY(nil, d.XtoZ(nil, xp, d.NZ))

		before, ok := c.WireStats()
		if !ok {
			t.Errorf("rank %d: no wire stats on the TCP transport", c.Rank())
			return
		}
		for i := 0; i < cycles; i++ {
			zp = d.YtoZ(zp, src)
			xp = d.ZtoX(xp, zp, d.NZ)
			zp = d.XtoZ(zp, xp, d.NZ)
			d.ZtoY(src, zp)
		}
		after, _ := c.WireStats()
		delta := wireDelta(before, after)

		// Schedule prediction for one cycle: per remote peer, each wire
		// transpose contributes BytesPerRank/CommSize payload bytes and
		// Messages/(CommSize-1) frames. CommA ops have CommSize 1 here
		// and predict zero wire traffic.
		var peerPayload, peerFrames int64
		for _, op := range d.CycleSchedule(nf).Ops {
			if op.Kind != schedule.OpTranspose || op.CommSize <= 1 {
				continue
			}
			if op.Comm != "B" {
				t.Errorf("rank %d: unexpected wire op on Comm%s with pa=1", c.Rank(), op.Comm)
			}
			peerPayload += int64(op.BytesPerRank) / int64(op.CommSize)
			peerFrames += int64(op.Messages) / int64(op.CommSize-1)
		}
		if peerPayload == 0 || peerFrames == 0 {
			t.Errorf("rank %d: schedule predicts no wire traffic", c.Rank())
			return
		}
		for r, p := range delta.Peers {
			if r == c.Rank() {
				if p != (mpi.WirePeerStats{}) {
					t.Errorf("rank %d: nonzero self wire counters %+v", c.Rank(), p)
				}
				continue
			}
			if want := cycles * peerPayload; p.PayloadOut != want {
				t.Errorf("rank %d -> %d: payload out %d, schedule predicts %d", c.Rank(), r, p.PayloadOut, want)
			}
			if want := cycles * peerFrames; p.FramesOut != want {
				t.Errorf("rank %d -> %d: frames out %d, schedule predicts %d", c.Rank(), r, p.FramesOut, want)
			}
			if want := p.PayloadOut + tcpFrameHeaderLen*p.FramesOut; p.BytesOut != want {
				t.Errorf("rank %d -> %d: bytes out %d, want payload+header %d", c.Rank(), r, p.BytesOut, want)
			}
			if want := p.PayloadIn + tcpFrameHeaderLen*p.FramesIn; p.BytesIn != want {
				t.Errorf("rank %d <- %d: bytes in %d, want payload+header %d", c.Rank(), r, p.BytesIn, want)
			}
		}

		// Flush every ordered link with one token, then take the final
		// cumulative snapshot for the cross-rank conservation check: link
		// frames arrive in order, so once the token from a peer is in,
		// everything that peer ever enqueued for this rank is counted.
		mpi.Alltoall(c, make([]int64, world), 1)
		finals[c.Rank()], _ = c.WireStats()
	})
	// Conservation across the world: every byte rank a enqueued for rank b
	// was decoded by rank b from rank a. The final snapshots are taken
	// after an alltoall flush above — FIFO link order plus one token per
	// ordered pair guarantee each rank has decoded everything its peers
	// ever enqueued for it, so the cumulative totals must match exactly.
	for a := 0; a < world; a++ {
		for b := 0; b < world; b++ {
			if a == b {
				continue
			}
			out, in := finals[a].Peers[b], finals[b].Peers[a]
			if out.PayloadOut != in.PayloadIn || out.FramesOut != in.FramesIn || out.BytesOut != in.BytesIn {
				t.Errorf("link %d->%d not conserved: sent (%d frames, %d bytes, %d payload), received (%d frames, %d bytes, %d payload)",
					a, b, out.FramesOut, out.BytesOut, out.PayloadOut, in.FramesIn, in.BytesIn, in.PayloadIn)
			}
		}
	}
}

// TestWireStatsAbsentOnChannelTransport pins the contract that only wire
// transports report wire stats.
func TestWireStatsAbsentOnChannelTransport(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		if _, ok := c.WireStats(); ok {
			t.Error("channel transport reported wire stats")
		}
	})
}
