package pencil

import (
	"fmt"
	"time"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// planKey identifies one reusable transpose plan: the direction, the
// z extent carried through the CommA exchanges (spectral NZ or the padded
// physical 3*NZ/2), and the number of fields moved per call.
type planKey struct {
	dir  TransposeDir
	zLen int
	nf   int
}

// defaultPipelineChunks is the pipeline depth RunPipelined uses when
// Decomp.PipelineChunks is unset: enough stages that the exposed tail is a
// quarter of the wire time, shallow enough that per-message overhead stays
// negligible against the pencil block sizes.
const defaultPipelineChunks = 4

// TransposePlan is the preplanned form of one global transpose: the
// alltoallv count/displacement tables, the persistent 1x send and receive
// buffers, and the pack/unpack kernels bound once at construction so the
// steady-state Run path allocates nothing. Plans are owned by a Decomp and
// obtained with Decomp.Plan; the four transpose methods use them
// internally.
//
// Every plan also knows how to run chunked: the pack/unpack kernels take a
// line range over the chunk axis — the line coordinate of the pencil that
// is NOT redistributed by the exchange (local kx for the CommB directions,
// local y for the CommA directions) — so RunPipelined can move the
// transpose through the wire in chunks and hand each completed line range
// to a consumer while later chunks are still in flight.
type TransposePlan struct {
	d    *Decomp
	dir  TransposeDir
	comm *mpi.Comm
	np   int // peer count (PB for CommB directions, PA for CommA)
	nf   int
	zLen int

	srcLen, dstLen int // per-field lengths

	// lineN is the chunk-axis extent; every peer block is lineN lines of
	// perLineSend/perLineRecv[b] elements each.
	lineN                  int
	perLineSend            []int
	perLineRecv            []int
	sendCounts, sendDispls []int
	recvCounts, recvDispls []int
	sbuf, rbuf             []complex128
	// pbuf is the buffer the pack kernels write to: sbuf for the serial
	// exchange, the current parity's wire arena for the pipelined one.
	pbuf []complex128

	// Per-call bindings read by the bound kernels; set by Run/RunPipelined
	// before the pack/unpack loops and cleared afterwards.
	src, dst [][]complex128

	// packBlock packs peer b's block restricted to chunk-axis lines
	// [lo, hi) at pbuf[pos]; unpackBlock is its inverse, reading from an
	// arbitrary buffer so arrivals can be unpacked straight out of the
	// message payload without an intermediate copy.
	packBlock   func(b, lo, hi, pos int)
	unpackBlock func(b, lo, hi int, buf []complex128, pos int)
	pack        func(lo, hi int) // pool-block forms over the peer range,
	unpack      func(lo, hi int) // full chunk axis (the serial exchange)

	// Pipelined-exchange state, built lazily by ensurePipeline. The
	// chunk-major tables index [c*np+b]; everything — including the wire
	// arenas the messages travel in and their pre-boxed payload values — is
	// pre-sized, so the steady-state RunPipelined performs no per-message
	// allocation at all.
	chunks                         int
	pipeSendCounts, pipeSendDispls []int
	pipeRecvCounts, pipeRecvDispls []int
	stream                         *mpi.Stream
	idxChunk, idxPeer              []int // posted stream index -> (chunk, peer)
	arrived                        []int // per-chunk arrival counters, reused
	curChunk                       int
	pipePack                       func(lo, hi int)
	// Parity double-buffered wire arenas: exchange k packs into wire[k%2],
	// which peers read in place (mpi.StreamSendPrepacked — no eager copy).
	// Reuse happens two exchanges later, by which point every peer has
	// provably drained the older exchange: a peer cannot send in exchange
	// k+1 before it finished unpacking all of exchange k. wireBox holds the
	// arenas' per-(chunk, peer) subslices pre-converted to `any`, so the hot
	// path pays no interface-boxing allocation either.
	wire    [2][]complex128
	wireBox [2][]any
	parity  int
}

// chunkLen returns the size of peer r's chunk of n items over p ranks.
func chunkLen(n, p, r int) int {
	lo, hi := Chunk(n, p, r)
	return hi - lo
}

// buildTables computes count/displacement tables from per-peer block
// sizes, the computation the four transposes share. It returns the tables
// and the total send/receive lengths.
func buildTables(np int, sendOf, recvOf func(peer int) int) (sc, sd, rc, rd []int, stot, rtot int) {
	sc = make([]int, np)
	sd = make([]int, np)
	rc = make([]int, np)
	rd = make([]int, np)
	for p := 0; p < np; p++ {
		sc[p] = sendOf(p)
		sd[p] = stot
		stot += sc[p]
		rc[p] = recvOf(p)
		rd[p] = rtot
		rtot += rc[p]
	}
	return sc, sd, rc, rd, stot, rtot
}

// Plan returns the reusable transpose plan for (dir, zLen, nf), building
// it on first use. zLen is the z extent for the CommA directions; the
// CommB directions always carry the spectral extent NZ.
func (d *Decomp) Plan(dir TransposeDir, zLen, nf int) *TransposePlan {
	if dir == DirYtoZ || dir == DirZtoY {
		zLen = d.NZ
	}
	key := planKey{dir: dir, zLen: zLen, nf: nf}
	if p, ok := d.plans[key]; ok {
		return p
	}
	p := d.buildPlan(dir, zLen, nf)
	d.plans[key] = p
	return p
}

func (d *Decomp) buildPlan(dir TransposeDir, zLen, nf int) *TransposePlan {
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	zxl, zxh := d.ZRangeX(zLen)
	nzLoc := zxh - zxl
	ny := d.NY
	nz := d.NZ
	nkx := d.NKx

	p := &TransposePlan{d: d, dir: dir, nf: nf, zLen: zLen}
	switch dir {
	case DirYtoZ, DirZtoY:
		p.comm = d.B.Comm
		p.np = d.PB
		p.lineN = nkxLoc // chunk axis: local kx (not redistributed by CommB)
	case DirZtoX, DirXtoZ:
		p.comm = d.A.Comm
		p.np = d.PA
		p.lineN = nyLoc // chunk axis: local y (not redistributed by CommA)
	default:
		panic(fmt.Sprintf("pencil: unknown transpose direction %d", int(dir)))
	}

	// Per-line block sizes: the elements exchanged with peer b for one line
	// of the chunk axis. The full tables are lineN of these per peer; the
	// pipelined tables carve the same totals into chunk-major pieces.
	p.perLineSend = make([]int, p.np)
	p.perLineRecv = make([]int, p.np)
	switch dir {
	case DirYtoZ:
		// Send peer b my kz block restricted to b's y chunk; receive b's kz
		// chunk restricted to my y block.
		for b := 0; b < p.np; b++ {
			p.perLineSend[b] = nf * nkz * chunkLen(ny, d.PB, b)
			p.perLineRecv[b] = nf * chunkLen(nz, d.PB, b) * nyLoc
		}
		p.srcLen, p.dstLen = nkxLoc*nkz*ny, nkxLoc*nyLoc*nz
		p.packBlock = p.packYtoZBlock
		p.unpackBlock = p.unpackYtoZBlock
	case DirZtoY:
		for b := 0; b < p.np; b++ {
			p.perLineSend[b] = nf * chunkLen(nz, d.PB, b) * nyLoc
			p.perLineRecv[b] = nf * nkz * chunkLen(ny, d.PB, b)
		}
		p.srcLen, p.dstLen = nkxLoc*nyLoc*nz, nkxLoc*nkz*ny
		p.packBlock = p.packZtoYBlock
		p.unpackBlock = p.unpackZtoYBlock
	case DirZtoX:
		for a := 0; a < p.np; a++ {
			p.perLineSend[a] = nf * nkxLoc * chunkLen(zLen, d.PA, a)
			p.perLineRecv[a] = nf * chunkLen(nkx, d.PA, a) * nzLoc
		}
		p.srcLen, p.dstLen = nkxLoc*nyLoc*zLen, nyLoc*nzLoc*nkx
		p.packBlock = p.packZtoXBlock
		p.unpackBlock = p.unpackZtoXBlock
	case DirXtoZ:
		for a := 0; a < p.np; a++ {
			p.perLineSend[a] = nf * chunkLen(nkx, d.PA, a) * nzLoc
			p.perLineRecv[a] = nf * nkxLoc * chunkLen(zLen, d.PA, a)
		}
		p.srcLen, p.dstLen = nyLoc*nzLoc*nkx, nkxLoc*nyLoc*zLen
		p.packBlock = p.packXtoZBlock
		p.unpackBlock = p.unpackXtoZBlock
	}
	var stot, rtot int
	p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls, stot, rtot = buildTables(p.np,
		func(b int) int { return p.lineN * p.perLineSend[b] },
		func(b int) int { return p.lineN * p.perLineRecv[b] })
	p.pack = p.packPeers
	p.unpack = p.unpackPeers
	// Persistent 1x buffers: exactly one send and one receive image of the
	// local data, reused for the life of the plan (paper §4.3).
	p.sbuf = make([]complex128, stot)
	p.rbuf = make([]complex128, rtot)
	return p
}

// Chunks returns the pipeline depth RunPipelined will use for this plan:
// Decomp.PipelineChunks (default 4) clamped to the smallest chunk-axis
// extent owned by any rank of the communicator — floor(NKx/PA) lines of
// local kx for the CommB directions, floor(NY/PB) lines of local y for the
// CommA directions. Clamping to the global minimum (not the local extent)
// makes the depth identical on every rank, so per-call message counts are
// uniform and the schedule's chunked shape matches the measured traffic on
// uneven decompositions.
func (p *TransposePlan) Chunks() int {
	switch p.dir {
	case DirYtoZ, DirZtoY:
		return p.d.chunksFor(p.d.NKx / p.d.PA)
	default:
		return p.d.chunksFor(p.d.NY / p.d.PB)
	}
}

// chunksFor clamps the configured pipeline depth to a chunk-axis extent.
func (d *Decomp) chunksFor(minLine int) int {
	c := d.PipelineChunks
	if c <= 0 {
		c = defaultPipelineChunks
	}
	if c > minLine {
		c = minLine
	}
	if c < 1 {
		c = 1
	}
	return c
}

// OverlapChunks returns the pipeline depths the pipelined exchange uses on
// this decomposition — ca for the CommA directions (chunk axis: local y),
// cb for CommB (chunk axis: local kx) — or (0, 0) when overlap is off.
// Schedule emission uses this so the declared chunked shape is derived from
// the same clamping the executing plans apply.
func (d *Decomp) OverlapChunks() (ca, cb int) {
	if !d.Overlap {
		return 0, 0
	}
	return OverlapChunksFor(d.NKx, d.NY, d.PA, d.PB, d.PipelineChunks)
}

// OverlapChunksFor computes the same per-direction pipeline depths as
// Decomp.OverlapChunks from bare decomposition parameters (requested = 0
// selects the default depth). It lets schedule emitters describe an
// overlapped program without constructing a live decomposition.
func OverlapChunksFor(nkx, ny, pa, pb, requested int) (ca, cb int) {
	d := Decomp{NKx: nkx, NY: ny, PA: pa, PB: pb, PipelineChunks: requested}
	return d.chunksFor(ny / pb), d.chunksFor(nkx / pa)
}

// ensurePipeline builds the chunk-major tables, the stream, and the posted
// index maps on the plan's first pipelined run.
func (p *TransposePlan) ensurePipeline() {
	if p.stream != nil {
		return
	}
	np := p.np
	C := p.Chunks()
	p.chunks = C
	p.pipeSendCounts = make([]int, C*np)
	p.pipeSendDispls = make([]int, C*np)
	p.pipeRecvCounts = make([]int, C*np)
	p.pipeRecvDispls = make([]int, C*np)
	spos, rpos := 0, 0
	for c := 0; c < C; c++ {
		cl := chunkLen(p.lineN, C, c)
		for b := 0; b < np; b++ {
			p.pipeSendCounts[c*np+b] = cl * p.perLineSend[b]
			p.pipeSendDispls[c*np+b] = spos
			spos += p.pipeSendCounts[c*np+b]
			p.pipeRecvCounts[c*np+b] = cl * p.perLineRecv[b]
			p.pipeRecvDispls[c*np+b] = rpos
			rpos += p.pipeRecvCounts[c*np+b]
		}
	}
	for par := 0; par < 2; par++ {
		p.wire[par] = make([]complex128, spos)
		p.wireBox[par] = make([]any, C*np)
		for i, cnt := range p.pipeSendCounts {
			o := p.pipeSendDispls[i]
			p.wireBox[par][i] = p.wire[par][o : o+cnt]
		}
	}
	flight := C * (np - 1)
	p.stream = mpi.NewStream(p.comm, flight)
	p.idxChunk = make([]int, flight)
	p.idxPeer = make([]int, flight)
	me := p.comm.Rank()
	i := 0
	for c := 0; c < C; c++ {
		for s := 1; s < np; s++ {
			p.idxChunk[i] = c
			p.idxPeer[i] = (me - s + np) % np
			i++
		}
	}
	p.arrived = make([]int, C)
	p.pipePack = p.packChunk
}

// packPeers and unpackPeers are the pool-block forms over the peer range
// used by the serial exchange: each peer's full block at its table
// displacement.
func (p *TransposePlan) packPeers(lo, hi int) {
	for b := lo; b < hi; b++ {
		p.packBlock(b, 0, p.lineN, p.sendDispls[b])
	}
}

func (p *TransposePlan) unpackPeers(lo, hi int) {
	for b := lo; b < hi; b++ {
		p.unpackBlock(b, 0, p.lineN, p.rbuf, p.recvDispls[b])
	}
}

// packChunk is the pool-block form packing chunk curChunk of every peer in
// the range at the chunk-major displacements.
func (p *TransposePlan) packChunk(lo, hi int) {
	c := p.curChunk
	clo, chi := Chunk(p.lineN, p.chunks, c)
	for b := lo; b < hi; b++ {
		p.packBlock(b, clo, chi, p.pipeSendDispls[c*p.np+b])
	}
}

// checkBuffers validates the per-field source and destination slices,
// allocating a destination when dst is nil.
func (p *TransposePlan) checkBuffers(dst, src [][]complex128) [][]complex128 {
	if len(src) != p.nf {
		panic(fmt.Sprintf("pencil: plan for %d fields got %d", p.nf, len(src)))
	}
	for f := range src {
		if len(src[f]) < p.srcLen {
			panic(fmt.Sprintf("pencil: %v src field %d length %d < %d", p.dir, f, len(src[f]), p.srcLen))
		}
	}
	if dst == nil {
		return AllocFields(p.nf, p.dstLen)
	}
	if len(dst) != p.nf {
		panic(fmt.Sprintf("pencil: plan for %d fields got %d dst", p.nf, len(dst)))
	}
	for f := range dst {
		if len(dst[f]) < p.dstLen {
			panic(fmt.Sprintf("pencil: %v dst field %d length %d < %d", p.dir, f, len(dst[f]), p.dstLen))
		}
	}
	return dst
}

// Run executes the planned transpose: pack into the persistent send
// buffer, exchange into the persistent receive buffer on the configured
// schedule, unpack into dst. A nil dst allocates fresh per-field slices;
// passing a reused dst makes the call allocation-free at steady state
// (aside from the per-message payload copies inside the in-process MPI).
func (p *TransposePlan) Run(dst, src [][]complex128) [][]complex128 {
	dst = p.checkBuffers(dst, src)
	d := p.d
	sp := d.Telemetry.Begin(telemetry.PhaseTransposeAB)
	p.src, p.dst = src, dst
	p.pbuf = p.sbuf
	d.Pool.ForBlocks(p.np, p.pack)
	var xt0 time.Time
	if d.Trace != nil {
		xt0 = time.Now()
	}
	var err error
	if d.Overlap {
		_, err = mpi.AlltoallvOverlapInto(p.comm, p.rbuf, p.sbuf, p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls)
	} else {
		_, err = mpi.AlltoallvInto(p.comm, p.rbuf, p.sbuf, p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls)
	}
	if err != nil {
		panic(fmt.Sprintf("pencil: %v exchange: %v", p.dir, err))
	}
	if d.Trace != nil {
		// The wire interval: the alltoallv alone, between pack and unpack —
		// nested inside the enclosing transpose phase span on the timeline.
		d.Trace.Exchange(commOp(p.dir), int64(16*(len(p.sbuf)+len(p.rbuf))), xt0, time.Now())
	}
	d.Pool.ForBlocks(p.np, p.unpack)
	p.src, p.dst = nil, nil
	sp.End()
	// Bytes through the exchange: packed send image plus unpacked receive
	// image, 16 bytes per complex element. Messages: one per remote peer
	// (the self block never crosses the communicator).
	d.Telemetry.AddComm(commOp(p.dir), int64(16*(len(p.sbuf)+len(p.rbuf))), int64(p.np-1))
	return dst
}

// RunPipelined executes the transpose as a chunked pipeline: the chunk axis
// is split into Chunks() pieces, each packed and sent per peer as its own
// stream message, and arrivals are unpacked the moment they land. After
// every chunk's receives are in, consume(lo, hi) is invoked with the
// completed chunk-axis line range — the hook through which the following
// FFT stage runs on already-received pencils while later chunks are still
// on the wire. consume may be nil. Callers must pass ranges to consume
// covering follow-on work for exactly the lines [lo, hi); RunPipelined
// guarantees the union of the ranges is [0, lineN) in ascending order.
//
// The destination is bit-identical to Run's: the same elements land in the
// same slots, only the order of the copies differs. When overlap is off or
// the communicator is trivial the call degrades to Run followed by a single
// consume over the full line range, so callers need no serial branch.
//
// The transpose phase span is segmented around each consume call: the
// consumer's own phase instrumentation runs outside PhaseTransposeAB, so
// phases still tile the step even though transpose and FFT work interleave.
func (p *TransposePlan) RunPipelined(dst, src [][]complex128, consume func(lo, hi int)) [][]complex128 {
	d := p.d
	if !d.Overlap || p.np == 1 {
		dst = p.Run(dst, src)
		if consume != nil {
			consume(0, p.lineN)
		}
		return dst
	}
	p.ensurePipeline()
	dst = p.checkBuffers(dst, src)
	np := p.np
	C := p.chunks
	me := p.comm.Rank()
	tracing := d.Trace != nil
	sp := d.Telemetry.Begin(telemetry.PhaseTransposeAB)
	p.src, p.dst = src, dst
	// Alternate wire arenas: peers read our chunks in place, and the
	// collective structure guarantees they have drained exchange k before we
	// repack its arena in exchange k+2 (see the wire field's comment).
	p.parity ^= 1
	p.pbuf = p.wire[p.parity]
	for c := range p.arrived[:C] {
		p.arrived[c] = 0
	}
	// Post every receive up front, chunk-major: the runtime's per-source
	// FIFO then guarantees peer b's k-th message completes the k-th posted
	// receive for b, so posted index identifies (chunk, peer) exactly.
	for c := 0; c < C; c++ {
		for s := 1; s < np; s++ {
			p.stream.Post((me - s + np) % np)
		}
	}
	var xt0, xt1 time.Time
	if tracing {
		xt0 = time.Now()
	}
	p.sendChunk(0)
	for c := 0; c < C; c++ {
		// Keep the pipe full: pack and fire the next chunk before draining
		// this one, so our peers always have our next block in flight while
		// we unpack and consume the current one.
		if c+1 < C {
			p.sendChunk(c + 1)
		}
		for p.arrived[c] < np-1 {
			var t0 time.Time
			if tracing {
				t0 = time.Now()
			}
			idx, b, payload := p.stream.Next()
			cc := p.idxChunk[idx]
			blk := payload.([]complex128)
			if len(blk) != p.pipeRecvCounts[cc*np+b] {
				panic((&mpi.CountMismatchError{Op: "pencil.RunPipelined", Rank: me, Src: b,
					Want: p.pipeRecvCounts[cc*np+b], Got: len(blk)}).Error())
			}
			if tracing {
				// The wait for this arrival: ~zero when the block was already
				// in — hidden wire time — and the real exposed wait otherwise.
				xt1 = time.Now()
				d.Trace.Peer(b, int64(16*len(blk)), t0, xt1)
			}
			lo, hi := Chunk(p.lineN, C, cc)
			p.unpackBlock(b, lo, hi, blk, 0)
			p.arrived[cc]++
		}
		if consume != nil {
			sp.End()
			lo, hi := Chunk(p.lineN, C, c)
			consume(lo, hi)
			sp = d.Telemetry.Begin(telemetry.PhaseTransposeAB)
		}
	}
	p.stream.Reset()
	if tracing {
		if xt1.IsZero() {
			xt1 = time.Now()
		}
		d.Trace.ExchangePipelined(commOp(p.dir), C, int64(16*(len(p.sbuf)+len(p.rbuf))), xt0, xt1)
	}
	p.src, p.dst = nil, nil
	sp.End()
	d.Telemetry.AddComm(commOp(p.dir), int64(16*(len(p.sbuf)+len(p.rbuf))), int64(C*(np-1)))
	return dst
}

// sendChunk packs chunk c (pool-parallel over peers) into the current
// parity's wire arena, fires its per-peer stream messages as pre-boxed
// in-place payloads (no copy, no allocation), and unpacks the self block
// straight out of the arena — it never crosses the wire, so it needs
// neither message nor receive-buffer round trip.
func (p *TransposePlan) sendChunk(c int) {
	np := p.np
	me := p.comm.Rank()
	p.curChunk = c
	p.d.Pool.ForBlocks(np, p.pipePack)
	for s := 1; s < np; s++ {
		dst := (me + s) % np
		mpi.StreamSendPrepacked(p.comm, dst, p.wireBox[p.parity][c*np+dst])
	}
	lo, hi := Chunk(p.lineN, p.chunks, c)
	p.unpackBlock(me, lo, hi, p.pbuf, p.pipeSendDispls[c*np+me])
}

// The eight pack/unpack kernels below are the seed's loops in block form:
// peer b's block restricted to chunk-axis lines [lo, hi), packed at (or
// unpacked from) buffer offset pos. The serial exchange calls them with the
// full line range at the plan's table displacements; the pipelined exchange
// calls them per (chunk, peer). Element order within a restricted block is
// the restriction of the serial order, so both sides of the wire agree.

// packYtoZBlock: to peer b, layout [f][kx in lines][kz][y in b's chunk].
func (p *TransposePlan) packYtoZBlock(b, lo, hi, pos int) {
	d := p.d
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	pyl, pyh := Chunk(d.NY, d.PB, b)
	for f := 0; f < p.nf; f++ {
		fd := p.src[f]
		for kx := lo; kx < hi; kx++ {
			for kz := 0; kz < nkz; kz++ {
				base := (kx*nkz + kz) * d.NY
				for y := pyl; y < pyh; y++ {
					p.pbuf[pos] = fd[base+y]
					pos++
				}
			}
		}
	}
}

// unpackYtoZBlock: from peer b, layout [f][kx in lines][kz in b's chunk][y mine].
func (p *TransposePlan) unpackYtoZBlock(b, lo, hi int, buf []complex128, pos int) {
	d := p.d
	yl, yh := d.YRange()
	nyLoc := yh - yl
	pzl, pzh := Chunk(d.NZ, d.PB, b)
	for f := 0; f < p.nf; f++ {
		fd := p.dst[f]
		for kx := lo; kx < hi; kx++ {
			for kz := pzl; kz < pzh; kz++ {
				for y := 0; y < nyLoc; y++ {
					fd[(kx*nyLoc+y)*d.NZ+kz] = buf[pos]
					pos++
				}
			}
		}
	}
}

// packZtoYBlock: to peer b, layout [f][kx in lines][kz in b's chunk][y mine]
// — the exact inverse of unpackYtoZBlock.
func (p *TransposePlan) packZtoYBlock(b, lo, hi, pos int) {
	d := p.d
	yl, yh := d.YRange()
	nyLoc := yh - yl
	pzl, pzh := Chunk(d.NZ, d.PB, b)
	for f := 0; f < p.nf; f++ {
		fd := p.src[f]
		for kx := lo; kx < hi; kx++ {
			for kz := pzl; kz < pzh; kz++ {
				for y := 0; y < nyLoc; y++ {
					p.pbuf[pos] = fd[(kx*nyLoc+y)*d.NZ+kz]
					pos++
				}
			}
		}
	}
}

func (p *TransposePlan) unpackZtoYBlock(b, lo, hi int, buf []complex128, pos int) {
	d := p.d
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	pyl, pyh := Chunk(d.NY, d.PB, b)
	for f := 0; f < p.nf; f++ {
		fd := p.dst[f]
		for kx := lo; kx < hi; kx++ {
			for kz := 0; kz < nkz; kz++ {
				base := (kx*nkz + kz) * d.NY
				for y := pyl; y < pyh; y++ {
					fd[base+y] = buf[pos]
					pos++
				}
			}
		}
	}
}

// packZtoXBlock: to peer a, layout [f][kx mine][y in lines][z in a's chunk].
func (p *TransposePlan) packZtoXBlock(a, lo, hi, pos int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zLen := p.zLen
	pzl, pzh := Chunk(zLen, d.PA, a)
	for f := 0; f < p.nf; f++ {
		fd := p.src[f]
		for kx := 0; kx < nkxLoc; kx++ {
			for y := lo; y < hi; y++ {
				base := (kx*nyLoc + y) * zLen
				for z := pzl; z < pzh; z++ {
					p.pbuf[pos] = fd[base+z]
					pos++
				}
			}
		}
	}
}

// unpackZtoXBlock: from peer a, layout [f][kx in a's chunk][y in lines][z mine].
func (p *TransposePlan) unpackZtoXBlock(a, lo, hi int, buf []complex128, pos int) {
	d := p.d
	zxl, zxh := d.ZRangeX(p.zLen)
	nzLoc := zxh - zxl
	pkl, pkh := Chunk(d.NKx, d.PA, a)
	for f := 0; f < p.nf; f++ {
		fd := p.dst[f]
		for kx := pkl; kx < pkh; kx++ {
			for y := lo; y < hi; y++ {
				for z := 0; z < nzLoc; z++ {
					fd[(y*nzLoc+z)*d.NKx+kx] = buf[pos]
					pos++
				}
			}
		}
	}
}

func (p *TransposePlan) packXtoZBlock(a, lo, hi, pos int) {
	d := p.d
	zxl, zxh := d.ZRangeX(p.zLen)
	nzLoc := zxh - zxl
	pkl, pkh := Chunk(d.NKx, d.PA, a)
	for f := 0; f < p.nf; f++ {
		fd := p.src[f]
		for kx := pkl; kx < pkh; kx++ {
			for y := lo; y < hi; y++ {
				for z := 0; z < nzLoc; z++ {
					p.pbuf[pos] = fd[(y*nzLoc+z)*d.NKx+kx]
					pos++
				}
			}
		}
	}
}

func (p *TransposePlan) unpackXtoZBlock(a, lo, hi int, buf []complex128, pos int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zLen := p.zLen
	pzl, pzh := Chunk(zLen, d.PA, a)
	for f := 0; f < p.nf; f++ {
		fd := p.dst[f]
		for kx := 0; kx < nkxLoc; kx++ {
			for y := lo; y < hi; y++ {
				base := (kx*nyLoc + y) * zLen
				for z := pzl; z < pzh; z++ {
					fd[base+z] = buf[pos]
					pos++
				}
			}
		}
	}
}
