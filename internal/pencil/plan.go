package pencil

import (
	"fmt"
	"time"

	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// planKey identifies one reusable transpose plan: the direction, the
// z extent carried through the CommA exchanges (spectral NZ or the padded
// physical 3*NZ/2), and the number of fields moved per call.
type planKey struct {
	dir  TransposeDir
	zLen int
	nf   int
}

// TransposePlan is the preplanned form of one global transpose: the
// alltoallv count/displacement tables, the persistent 1x send and receive
// buffers, and the pack/unpack kernels bound once at construction so the
// steady-state Run path allocates nothing. Plans are owned by a Decomp and
// obtained with Decomp.Plan; the four transpose methods use them
// internally.
type TransposePlan struct {
	d    *Decomp
	dir  TransposeDir
	comm *mpi.Comm
	np   int // peer count (PB for CommB directions, PA for CommA)
	nf   int

	srcLen, dstLen int // per-field lengths

	sendCounts, sendDispls []int
	recvCounts, recvDispls []int
	sbuf, rbuf             []complex128

	// Per-call bindings read by the bound kernels; set by Run before the
	// pack/unpack loops and cleared afterwards.
	src, dst [][]complex128

	pack, unpack func(lo, hi int)
}

// chunkLen returns the size of peer r's chunk of n items over p ranks.
func chunkLen(n, p, r int) int {
	lo, hi := Chunk(n, p, r)
	return hi - lo
}

// buildTables computes count/displacement tables from per-peer block
// sizes, the computation the four transposes share. It returns the tables
// and the total send/receive lengths.
func buildTables(np int, sendOf, recvOf func(peer int) int) (sc, sd, rc, rd []int, stot, rtot int) {
	sc = make([]int, np)
	sd = make([]int, np)
	rc = make([]int, np)
	rd = make([]int, np)
	for p := 0; p < np; p++ {
		sc[p] = sendOf(p)
		sd[p] = stot
		stot += sc[p]
		rc[p] = recvOf(p)
		rd[p] = rtot
		rtot += rc[p]
	}
	return sc, sd, rc, rd, stot, rtot
}

// Plan returns the reusable transpose plan for (dir, zLen, nf), building
// it on first use. zLen is the z extent for the CommA directions; the
// CommB directions always carry the spectral extent NZ.
func (d *Decomp) Plan(dir TransposeDir, zLen, nf int) *TransposePlan {
	if dir == DirYtoZ || dir == DirZtoY {
		zLen = d.NZ
	}
	key := planKey{dir: dir, zLen: zLen, nf: nf}
	if p, ok := d.plans[key]; ok {
		return p
	}
	p := d.buildPlan(dir, zLen, nf)
	d.plans[key] = p
	return p
}

func (d *Decomp) buildPlan(dir TransposeDir, zLen, nf int) *TransposePlan {
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	zxl, zxh := d.ZRangeX(zLen)
	nzLoc := zxh - zxl
	ny := d.NY
	nz := d.NZ
	nkx := d.NKx

	p := &TransposePlan{d: d, dir: dir, nf: nf}
	switch dir {
	case DirYtoZ, DirZtoY:
		p.comm = d.B.Comm
		p.np = d.PB
	case DirZtoX, DirXtoZ:
		p.comm = d.A.Comm
		p.np = d.PA
	default:
		panic(fmt.Sprintf("pencil: unknown transpose direction %d", int(dir)))
	}

	var stot, rtot int
	switch dir {
	case DirYtoZ:
		// Send peer b my kz block restricted to b's y chunk; receive b's kz
		// chunk restricted to my y block.
		blk := nf * nkxLoc
		p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls, stot, rtot = buildTables(p.np,
			func(b int) int { return blk * nkz * chunkLen(ny, d.PB, b) },
			func(b int) int { return blk * chunkLen(nz, d.PB, b) * nyLoc })
		p.srcLen, p.dstLen = nkxLoc*nkz*ny, nkxLoc*nyLoc*nz
		p.pack = p.packYtoZ
		p.unpack = p.unpackYtoZ
	case DirZtoY:
		blk := nf * nkxLoc
		p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls, stot, rtot = buildTables(p.np,
			func(b int) int { return blk * chunkLen(nz, d.PB, b) * nyLoc },
			func(b int) int { return blk * nkz * chunkLen(ny, d.PB, b) })
		p.srcLen, p.dstLen = nkxLoc*nyLoc*nz, nkxLoc*nkz*ny
		p.pack = p.packZtoY
		p.unpack = p.unpackZtoY
	case DirZtoX:
		blk := nf * nyLoc
		p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls, stot, rtot = buildTables(p.np,
			func(a int) int { return blk * nkxLoc * chunkLen(zLen, d.PA, a) },
			func(a int) int { return blk * chunkLen(nkx, d.PA, a) * nzLoc })
		p.srcLen, p.dstLen = nkxLoc*nyLoc*zLen, nyLoc*nzLoc*nkx
		p.pack = p.packZtoX(zLen)
		p.unpack = p.unpackZtoX(zLen)
	case DirXtoZ:
		blk := nf * nyLoc
		p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls, stot, rtot = buildTables(p.np,
			func(a int) int { return blk * chunkLen(nkx, d.PA, a) * nzLoc },
			func(a int) int { return blk * nkxLoc * chunkLen(zLen, d.PA, a) })
		p.srcLen, p.dstLen = nyLoc*nzLoc*nkx, nkxLoc*nyLoc*zLen
		p.pack = p.packXtoZ(zLen)
		p.unpack = p.unpackXtoZ(zLen)
	}
	// Persistent 1x buffers: exactly one send and one receive image of the
	// local data, reused for the life of the plan (paper §4.3).
	p.sbuf = make([]complex128, stot)
	p.rbuf = make([]complex128, rtot)
	return p
}

// Run executes the planned transpose: pack into the persistent send
// buffer, exchange into the persistent receive buffer on the configured
// schedule, unpack into dst. A nil dst allocates fresh per-field slices;
// passing a reused dst makes the call allocation-free at steady state
// (aside from the per-message payload copies inside the in-process MPI).
func (p *TransposePlan) Run(dst, src [][]complex128) [][]complex128 {
	if len(src) != p.nf {
		panic(fmt.Sprintf("pencil: plan for %d fields got %d", p.nf, len(src)))
	}
	for f := range src {
		if len(src[f]) < p.srcLen {
			panic(fmt.Sprintf("pencil: %v src field %d length %d < %d", p.dir, f, len(src[f]), p.srcLen))
		}
	}
	if dst == nil {
		dst = AllocFields(p.nf, p.dstLen)
	} else {
		if len(dst) != p.nf {
			panic(fmt.Sprintf("pencil: plan for %d fields got %d dst", p.nf, len(dst)))
		}
		for f := range dst {
			if len(dst[f]) < p.dstLen {
				panic(fmt.Sprintf("pencil: %v dst field %d length %d < %d", p.dir, f, len(dst[f]), p.dstLen))
			}
		}
	}
	d := p.d
	sp := d.Telemetry.Begin(telemetry.PhaseTransposeAB)
	p.src, p.dst = src, dst
	d.Pool.ForBlocks(p.np, p.pack)
	var xt0 time.Time
	if d.Trace != nil {
		xt0 = time.Now()
	}
	if d.Overlap {
		mpi.AlltoallvOverlapInto(p.comm, p.rbuf, p.sbuf, p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls)
	} else {
		mpi.AlltoallvInto(p.comm, p.rbuf, p.sbuf, p.sendCounts, p.sendDispls, p.recvCounts, p.recvDispls)
	}
	if d.Trace != nil {
		// The wire interval: the alltoallv alone, between pack and unpack —
		// nested inside the enclosing transpose phase span on the timeline.
		d.Trace.Exchange(commOp(p.dir), int64(16*(len(p.sbuf)+len(p.rbuf))), xt0, time.Now())
	}
	d.Pool.ForBlocks(p.np, p.unpack)
	p.src, p.dst = nil, nil
	sp.End()
	// Bytes through the exchange: packed send image plus unpacked receive
	// image, 16 bytes per complex element. Messages: one per remote peer
	// (the self block never crosses the communicator).
	d.Telemetry.AddComm(commOp(p.dir), int64(16*(len(p.sbuf)+len(p.rbuf))), int64(p.np-1))
	return dst
}

// The eight pack/unpack kernels below are the seed's loops, bound once per
// plan so the hot path creates no closures. Each runs over the peer range
// [lo, hi) handed out by the pool.

// packYtoZ: per peer b, layout [f][kx][kz][y in b's chunk].
func (p *TransposePlan) packYtoZ(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	for b := lo; b < hi; b++ {
		pyl, pyh := Chunk(d.NY, d.PB, b)
		pos := p.sendDispls[b]
		for f := 0; f < p.nf; f++ {
			fd := p.src[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for kz := 0; kz < nkz; kz++ {
					base := (kx*nkz + kz) * d.NY
					for y := pyl; y < pyh; y++ {
						p.sbuf[pos] = fd[base+y]
						pos++
					}
				}
			}
		}
	}
}

// unpackYtoZ: from peer b, layout [f][kx][kz in b's chunk][y mine].
func (p *TransposePlan) unpackYtoZ(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	for b := lo; b < hi; b++ {
		pzl, pzh := Chunk(d.NZ, d.PB, b)
		pos := p.recvDispls[b]
		for f := 0; f < p.nf; f++ {
			fd := p.dst[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for kz := pzl; kz < pzh; kz++ {
					for y := 0; y < nyLoc; y++ {
						fd[(kx*nyLoc+y)*d.NZ+kz] = p.rbuf[pos]
						pos++
					}
				}
			}
		}
	}
}

// packZtoY: to peer b, layout [f][kx][kz in b's chunk][y mine] — the exact
// inverse of unpackYtoZ.
func (p *TransposePlan) packZtoY(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	for b := lo; b < hi; b++ {
		pzl, pzh := Chunk(d.NZ, d.PB, b)
		pos := p.sendDispls[b]
		for f := 0; f < p.nf; f++ {
			fd := p.src[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for kz := pzl; kz < pzh; kz++ {
					for y := 0; y < nyLoc; y++ {
						p.sbuf[pos] = fd[(kx*nyLoc+y)*d.NZ+kz]
						pos++
					}
				}
			}
		}
	}
}

func (p *TransposePlan) unpackZtoY(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	for b := lo; b < hi; b++ {
		pyl, pyh := Chunk(d.NY, d.PB, b)
		pos := p.recvDispls[b]
		for f := 0; f < p.nf; f++ {
			fd := p.dst[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for kz := 0; kz < nkz; kz++ {
					base := (kx*nkz + kz) * d.NY
					for y := pyl; y < pyh; y++ {
						fd[base+y] = p.rbuf[pos]
						pos++
					}
				}
			}
		}
	}
}

// packZtoX: to peer a, layout [f][kx mine][y][z in a's chunk].
func (p *TransposePlan) packZtoX(zLen int) func(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	return func(lo, hi int) {
		for a := lo; a < hi; a++ {
			pzl, pzh := Chunk(zLen, d.PA, a)
			pos := p.sendDispls[a]
			for f := 0; f < p.nf; f++ {
				fd := p.src[f]
				for kx := 0; kx < nkxLoc; kx++ {
					for y := 0; y < nyLoc; y++ {
						base := (kx*nyLoc + y) * zLen
						for z := pzl; z < pzh; z++ {
							p.sbuf[pos] = fd[base+z]
							pos++
						}
					}
				}
			}
		}
	}
}

// unpackZtoX: from peer a, layout [f][kx in a's chunk][y][z mine].
func (p *TransposePlan) unpackZtoX(zLen int) func(lo, hi int) {
	d := p.d
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zxl, zxh := d.ZRangeX(zLen)
	nzLoc := zxh - zxl
	return func(lo, hi int) {
		for a := lo; a < hi; a++ {
			pkl, pkh := Chunk(d.NKx, d.PA, a)
			pos := p.recvDispls[a]
			for f := 0; f < p.nf; f++ {
				fd := p.dst[f]
				for kx := pkl; kx < pkh; kx++ {
					for y := 0; y < nyLoc; y++ {
						for z := 0; z < nzLoc; z++ {
							fd[(y*nzLoc+z)*d.NKx+kx] = p.rbuf[pos]
							pos++
						}
					}
				}
			}
		}
	}
}

func (p *TransposePlan) packXtoZ(zLen int) func(lo, hi int) {
	d := p.d
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zxl, zxh := d.ZRangeX(zLen)
	nzLoc := zxh - zxl
	return func(lo, hi int) {
		for a := lo; a < hi; a++ {
			pkl, pkh := Chunk(d.NKx, d.PA, a)
			pos := p.sendDispls[a]
			for f := 0; f < p.nf; f++ {
				fd := p.src[f]
				for kx := pkl; kx < pkh; kx++ {
					for y := 0; y < nyLoc; y++ {
						for z := 0; z < nzLoc; z++ {
							p.sbuf[pos] = fd[(y*nzLoc+z)*d.NKx+kx]
							pos++
						}
					}
				}
			}
		}
	}
}

func (p *TransposePlan) unpackXtoZ(zLen int) func(lo, hi int) {
	d := p.d
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	return func(lo, hi int) {
		for a := lo; a < hi; a++ {
			pzl, pzh := Chunk(zLen, d.PA, a)
			pos := p.recvDispls[a]
			for f := 0; f < p.nf; f++ {
				fd := p.dst[f]
				for kx := 0; kx < nkxLoc; kx++ {
					for y := 0; y < nyLoc; y++ {
						base := (kx*nyLoc + y) * zLen
						for z := pzl; z < pzh; z++ {
							fd[base+z] = p.rbuf[pos]
							pos++
						}
					}
				}
			}
		}
	}
}
