// Package pencil implements the 3-D pencil decomposition and the global
// data transposes of paper §2.2-2.3. Each rank owns a pencil that is long
// in the direction currently being transformed (y for linear algebra, z or
// x for FFTs); changing pencil orientation is a global transpose executed
// as an alltoallv inside one of two cartesian sub-communicators:
//
//	CommB:  y-pencils <-> z-pencils (redistributes kz and y)
//	CommA:  z-pencils <-> x-pencils (redistributes kx and z)
//
// The on-node data reordering A(i,j,k) -> A(j,k,i) that the paper threads
// with OpenMP shows up here as the pack/unpack loops around the exchange,
// plus a standalone Reorder kernel used by the Table 4 benchmark.
//
// Every transpose runs through a TransposePlan: per-(direction, z-extent,
// field-count) precomputed count/displacement tables plus persistent send
// and receive buffers owned by the Decomp and sized exactly once (the
// paper's 1x-buffer discipline, §4.3). Plans are built lazily on first use
// and reused for the life of the Decomp, so the steady-state transpose
// path performs no allocations. A Decomp's transposes must not be invoked
// concurrently from multiple goroutines (ranks never do).
package pencil

import (
	"fmt"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/schedule"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// Chunk returns the half-open index range [lo, hi) that rank r of p owns
// out of n items, balanced to within one item.
func Chunk(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// TransposeDir identifies one of the four global transpose directions.
type TransposeDir int

// Transpose directions.
const (
	DirYtoZ TransposeDir = iota // y-pencils -> z-pencils (CommB)
	DirZtoY                     // z-pencils -> y-pencils (CommB)
	DirZtoX                     // z-pencils -> x-pencils (CommA)
	DirXtoZ                     // x-pencils -> z-pencils (CommA)
	numDirs
)

// String names the direction the way the tables in the paper do (the
// canonical internal/schedule direction vocabulary).
func (d TransposeDir) String() string {
	switch d {
	case DirYtoZ:
		return schedule.DirYtoZ
	case DirZtoY:
		return schedule.DirZtoY
	case DirZtoX:
		return schedule.DirZtoX
	case DirXtoZ:
		return schedule.DirXtoZ
	}
	return fmt.Sprintf("TransposeDir(%d)", int(d))
}

// commOp maps a transpose direction to its telemetry communication
// counter.
func commOp(d TransposeDir) telemetry.CommOp {
	switch d {
	case DirYtoZ:
		return telemetry.CommYtoZ
	case DirZtoY:
		return telemetry.CommZtoY
	case DirZtoX:
		return telemetry.CommZtoX
	case DirXtoZ:
		return telemetry.CommXtoZ
	}
	panic(fmt.Sprintf("pencil: no comm op for direction %d", int(d)))
}

// Decomp carries the grid extents, the process grid and its two
// sub-communicators, and the worker pool used for pack/unpack loops.
//
// Spectral extents: NKx one-sided x modes (Nyquist dropped), NZ z modes in
// wrap order (Nyquist slot zero), NY wall-normal points.
//
// Layouts (row major, last index fastest):
//
//	y-pencil: [kxLoc][kzLoc][NY]      kx over CommA, kz over CommB
//	z-pencil: [kxLoc][yLoc][zLen]     kx over CommA, y over CommB
//	x-pencil: [yLoc][zLocA][NKx]      z over CommA,  y over CommB
type Decomp struct {
	NKx, NZ, NY int
	PA, PB      int

	Cart *mpi.CartComm // full grid, dims {PA, PB}
	A    *mpi.CartComm // CommA: row of the process grid, size PA
	B    *mpi.CartComm // CommB: column of the process grid, size PB

	ca, cb int // this rank's coordinates in the process grid
	Pool   *par.Pool

	// Overlap enables communication/compute pipelining for the global
	// transposes. Plain Run calls switch from the pairwise blocking
	// schedule to the nonblocking arrival-order exchange; the pipelined
	// entry points (RunPipelined and the *Pipelined methods) additionally
	// chunk each transpose along the line axis the exchange does not
	// redistribute, unpack every peer message the moment it arrives, and
	// hand completed line ranges to the caller's consume hook so FFT work
	// proceeds while later chunks are still on the wire. Results are
	// bit-identical either way; wins appear once a communicator spans
	// 4+ ranks and wire time is worth hiding.
	Overlap bool

	// PipelineChunks is the pipeline depth of the chunked transposes:
	// how many pieces RunPipelined splits the chunk axis into. 0 selects
	// the default (4); the effective depth is clamped to the chunk-axis
	// extent. Deeper pipelines shrink the exposed wire tail at the cost
	// of more, smaller messages.
	PipelineChunks int

	// Telemetry, when non-nil, receives a PhaseTransposeAB timing sample
	// and per-direction comm counters for every transpose Run. Nil is a
	// valid no-op sink; the recording path allocates nothing either way.
	Telemetry *telemetry.Collector

	// Trace, when non-nil, records each transpose's wire interval (the
	// alltoallv between pack and unpack) as a flight-recorder exchange
	// event, giving the straggler analysis the communication window inside
	// the aggregate PhaseTransposeAB span.
	Trace *trace.Recorder

	plans map[planKey]*TransposePlan
}

// New builds the decomposition on the world communicator, imposing a
// PA x PB cartesian grid. Ranks are assigned so that consecutive world
// ranks share a CommB group — the arrangement the paper uses to keep CommB
// node-local. Every rank must call New collectively.
func New(world *mpi.Comm, pa, pb, nkx, nz, ny int, pool *par.Pool) *Decomp {
	if pa*pb != world.Size() {
		panic(fmt.Sprintf("pencil: grid %dx%d != world size %d", pa, pb, world.Size()))
	}
	cart := world.CartCreate([]int{pa, pb})
	a := cart.CartSub([]bool{true, false})
	b := cart.CartSub([]bool{false, true})
	co := cart.Coords()
	return &Decomp{
		NKx: nkx, NZ: nz, NY: ny,
		PA: pa, PB: pb,
		Cart: cart, A: a, B: b,
		ca: co[0], cb: co[1],
		Pool:  pool,
		plans: map[planKey]*TransposePlan{},
	}
}

// CoordA returns this rank's index along the CommA direction.
func (d *Decomp) CoordA() int { return d.ca }

// CoordB returns this rank's index along the CommB direction.
func (d *Decomp) CoordB() int { return d.cb }

// KxRange returns this rank's one-sided x-mode range (distributed over CommA).
func (d *Decomp) KxRange() (int, int) { return Chunk(d.NKx, d.PA, d.ca) }

// KzRangeY returns this rank's z-mode range in the y-pencil configuration
// (distributed over CommB).
func (d *Decomp) KzRangeY() (int, int) { return Chunk(d.NZ, d.PB, d.cb) }

// YRange returns this rank's wall-normal range in the z- and x-pencil
// configurations (distributed over CommB).
func (d *Decomp) YRange() (int, int) { return Chunk(d.NY, d.PB, d.cb) }

// ZRangeX returns this rank's z range in the x-pencil configuration for a
// z extent of zLen points (distributed over CommA). zLen is NZ for spectral
// data or the padded physical size 3*NZ/2.
func (d *Decomp) ZRangeX(zLen int) (int, int) { return Chunk(zLen, d.PA, d.ca) }

// YPencilLen returns the local y-pencil length per field.
func (d *Decomp) YPencilLen() int {
	kl, kh := d.KxRange()
	zl, zh := d.KzRangeY()
	return (kh - kl) * (zh - zl) * d.NY
}

// ZPencilLen returns the local z-pencil length per field for z extent zLen.
func (d *Decomp) ZPencilLen(zLen int) int {
	kl, kh := d.KxRange()
	yl, yh := d.YRange()
	return (kh - kl) * (yh - yl) * zLen
}

// XPencilLen returns the local x-pencil length per field for z extent zLen.
func (d *Decomp) XPencilLen(zLen int) int {
	yl, yh := d.YRange()
	zl, zh := d.ZRangeX(zLen)
	return (yh - yl) * (zh - zl) * d.NKx
}

// YtoZ transposes fields from y-pencils to spectral z-pencils (z extent NZ)
// inside CommB. Paper step (a). dst and src are per-field slices; dst may
// be nil, in which case new slices are allocated (steady-state callers pass
// reused destinations to keep the path allocation-free).
func (d *Decomp) YtoZ(dst, src [][]complex128) [][]complex128 {
	return d.Plan(DirYtoZ, d.NZ, len(src)).Run(dst, src)
}

// ZtoY transposes fields from spectral z-pencils back to y-pencils inside
// CommB; the inverse of YtoZ (paper step (h) tail).
func (d *Decomp) ZtoY(dst, src [][]complex128) [][]complex128 {
	return d.Plan(DirZtoY, d.NZ, len(src)).Run(dst, src)
}

// ZtoX transposes fields from z-pencils (z extent zLen, typically the padded
// physical 3*NZ/2) to x-pencils inside CommA. Paper step (d).
func (d *Decomp) ZtoX(dst, src [][]complex128, zLen int) [][]complex128 {
	return d.Plan(DirZtoX, zLen, len(src)).Run(dst, src)
}

// XtoZ transposes fields from x-pencils back to z-pencils (z extent zLen)
// inside CommA; the inverse of ZtoX.
func (d *Decomp) XtoZ(dst, src [][]complex128, zLen int) [][]complex128 {
	return d.Plan(DirXtoZ, zLen, len(src)).Run(dst, src)
}

// YtoZPipelined is YtoZ through the chunked pipeline: consume(lo, hi) is
// called with ascending, disjoint local-kx ranges as their z-pencil lines
// complete, covering [0, nkxLoc) in total — z-FFT lines [lo*nyLoc, hi*nyLoc)
// in the z-pencil layout. With Overlap off (or PB == 1) the transpose runs
// serially and consume fires once over the full range.
func (d *Decomp) YtoZPipelined(dst, src [][]complex128, consume func(lo, hi int)) [][]complex128 {
	return d.Plan(DirYtoZ, d.NZ, len(src)).RunPipelined(dst, src, consume)
}

// ZtoYPipelined is ZtoY through the chunked pipeline; consume ranges are
// local-kx ranges of the completed y-pencil destination.
func (d *Decomp) ZtoYPipelined(dst, src [][]complex128, consume func(lo, hi int)) [][]complex128 {
	return d.Plan(DirZtoY, d.NZ, len(src)).RunPipelined(dst, src, consume)
}

// ZtoXPipelined is ZtoX through the chunked pipeline: consume(lo, hi) is
// called with ascending local-y ranges as their x-pencil lines complete —
// x-FFT lines [lo*nzLoc, hi*nzLoc) in the x-pencil layout.
func (d *Decomp) ZtoXPipelined(dst, src [][]complex128, zLen int, consume func(lo, hi int)) [][]complex128 {
	return d.Plan(DirZtoX, zLen, len(src)).RunPipelined(dst, src, consume)
}

// XtoZPipelined is XtoZ through the chunked pipeline: consume(lo, hi) is
// called with ascending local-y ranges as their z-pencil lines complete.
// In the z-pencil layout the completed lines are (kx*nyLoc + y) for every
// local kx and y in [lo, hi) — strided, one sub-range per kx.
func (d *Decomp) XtoZPipelined(dst, src [][]complex128, zLen int, consume func(lo, hi int)) [][]complex128 {
	return d.Plan(DirXtoZ, zLen, len(src)).RunPipelined(dst, src, consume)
}

// AllocFields allocates nf zeroed fields of n complex elements each, the
// shape every transpose destination takes. Callers that want the
// zero-allocation steady state allocate destinations once with this and
// pass them to every transpose call.
func AllocFields(nf, n int) [][]complex128 {
	out := make([][]complex128, nf)
	for i := range out {
		out[i] = make([]complex128, n)
	}
	return out
}

// Reorder performs the on-node transpose A(i,j,k) -> A(j,k,i) of paper
// §4.2, dividing the work into independent pieces across the pool to keep
// multiple memory streams in flight. src is ni x nj x nk row-major; dst is
// nj x nk x ni row-major.
func Reorder(dst, src []complex128, ni, nj, nk int, pool *par.Pool) {
	if len(dst) < ni*nj*nk || len(src) < ni*nj*nk {
		panic("pencil: Reorder slice lengths")
	}
	pool.ForBlocks(nj, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			for k := 0; k < nk; k++ {
				out := (j*nk + k) * ni
				in := j*nk + k
				for i := 0; i < ni; i++ {
					dst[out+i] = src[in+i*nj*nk]
				}
			}
		}
	})
}
