// Package pencil implements the 3-D pencil decomposition and the global
// data transposes of paper §2.2-2.3. Each rank owns a pencil that is long
// in the direction currently being transformed (y for linear algebra, z or
// x for FFTs); changing pencil orientation is a global transpose executed
// as an alltoallv inside one of two cartesian sub-communicators:
//
//	CommB:  y-pencils <-> z-pencils (redistributes kz and y)
//	CommA:  z-pencils <-> x-pencils (redistributes kx and z)
//
// The on-node data reordering A(i,j,k) -> A(j,k,i) that the paper threads
// with OpenMP shows up here as the pack/unpack loops around the exchange,
// plus a standalone Reorder kernel used by the Table 4 benchmark.
package pencil

import (
	"fmt"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// Chunk returns the half-open index range [lo, hi) that rank r of p owns
// out of n items, balanced to within one item.
func Chunk(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// Decomp carries the grid extents, the process grid and its two
// sub-communicators, and the worker pool used for pack/unpack loops.
//
// Spectral extents: NKx one-sided x modes (Nyquist dropped), NZ z modes in
// wrap order (Nyquist slot zero), NY wall-normal points.
//
// Layouts (row major, last index fastest):
//
//	y-pencil: [kxLoc][kzLoc][NY]      kx over CommA, kz over CommB
//	z-pencil: [kxLoc][yLoc][zLen]     kx over CommA, y over CommB
//	x-pencil: [yLoc][zLocA][NKx]      z over CommA,  y over CommB
type Decomp struct {
	NKx, NZ, NY int
	PA, PB      int

	Cart *mpi.CartComm // full grid, dims {PA, PB}
	A    *mpi.CartComm // CommA: row of the process grid, size PA
	B    *mpi.CartComm // CommB: column of the process grid, size PB

	ca, cb int // this rank's coordinates in the process grid
	Pool   *par.Pool

	// Overlap selects the nonblocking (Isend/Irecv) exchange for the
	// global transposes instead of the pairwise blocking schedule — the
	// communication-overlap ablation of DESIGN.md §7. Results are
	// identical either way.
	Overlap bool
}

// exchange runs one alltoallv on the chosen schedule.
func (d *Decomp) exchange(c *mpi.Comm, data []complex128, sc, sd, rc, rd []int) []complex128 {
	if d.Overlap {
		return mpi.AlltoallvOverlap(c, data, sc, sd, rc, rd)
	}
	return mpi.Alltoallv(c, data, sc, sd, rc, rd)
}

// New builds the decomposition on the world communicator, imposing a
// PA x PB cartesian grid. Ranks are assigned so that consecutive world
// ranks share a CommB group — the arrangement the paper uses to keep CommB
// node-local. Every rank must call New collectively.
func New(world *mpi.Comm, pa, pb, nkx, nz, ny int, pool *par.Pool) *Decomp {
	if pa*pb != world.Size() {
		panic(fmt.Sprintf("pencil: grid %dx%d != world size %d", pa, pb, world.Size()))
	}
	cart := world.CartCreate([]int{pa, pb})
	a := cart.CartSub([]bool{true, false})
	b := cart.CartSub([]bool{false, true})
	co := cart.Coords()
	return &Decomp{
		NKx: nkx, NZ: nz, NY: ny,
		PA: pa, PB: pb,
		Cart: cart, A: a, B: b,
		ca: co[0], cb: co[1],
		Pool: pool,
	}
}

// CoordA returns this rank's index along the CommA direction.
func (d *Decomp) CoordA() int { return d.ca }

// CoordB returns this rank's index along the CommB direction.
func (d *Decomp) CoordB() int { return d.cb }

// KxRange returns this rank's one-sided x-mode range (distributed over CommA).
func (d *Decomp) KxRange() (int, int) { return Chunk(d.NKx, d.PA, d.ca) }

// KzRangeY returns this rank's z-mode range in the y-pencil configuration
// (distributed over CommB).
func (d *Decomp) KzRangeY() (int, int) { return Chunk(d.NZ, d.PB, d.cb) }

// YRange returns this rank's wall-normal range in the z- and x-pencil
// configurations (distributed over CommB).
func (d *Decomp) YRange() (int, int) { return Chunk(d.NY, d.PB, d.cb) }

// ZRangeX returns this rank's z range in the x-pencil configuration for a
// z extent of zLen points (distributed over CommA). zLen is NZ for spectral
// data or the padded physical size 3*NZ/2.
func (d *Decomp) ZRangeX(zLen int) (int, int) { return Chunk(zLen, d.PA, d.ca) }

// YPencilLen returns the local y-pencil length per field.
func (d *Decomp) YPencilLen() int {
	kl, kh := d.KxRange()
	zl, zh := d.KzRangeY()
	return (kh - kl) * (zh - zl) * d.NY
}

// ZPencilLen returns the local z-pencil length per field for z extent zLen.
func (d *Decomp) ZPencilLen(zLen int) int {
	kl, kh := d.KxRange()
	yl, yh := d.YRange()
	return (kh - kl) * (yh - yl) * zLen
}

// XPencilLen returns the local x-pencil length per field for z extent zLen.
func (d *Decomp) XPencilLen(zLen int) int {
	yl, yh := d.YRange()
	zl, zh := d.ZRangeX(zLen)
	return (yh - yl) * (zh - zl) * d.NKx
}

// YtoZ transposes fields from y-pencils to spectral z-pencils (z extent NZ)
// inside CommB. Paper step (a). dst and src are per-field slices; dst may
// be nil, in which case new slices are allocated.
func (d *Decomp) YtoZ(dst, src [][]complex128) [][]complex128 {
	nf := len(src)
	kl, kh := d.KxRange()
	nkx := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	pb := d.PB

	blk := nf * nkx // fields x local kx, common factor of all message sizes
	sendCounts := make([]int, pb)
	sendDispls := make([]int, pb)
	recvCounts := make([]int, pb)
	recvDispls := make([]int, pb)
	soff, roff := 0, 0
	for b := 0; b < pb; b++ {
		pyl, pyh := Chunk(d.NY, pb, b) // peer b's y chunk (what I send)
		pzl, pzh := Chunk(d.NZ, pb, b) // peer b's kz chunk (what I receive)
		sendCounts[b] = blk * nkz * (pyh - pyl)
		sendDispls[b] = soff
		soff += sendCounts[b]
		recvCounts[b] = blk * (pzh - pzl) * nyLoc
		recvDispls[b] = roff
		roff += recvCounts[b]
	}
	sbuf := make([]complex128, soff)
	// Pack: per peer b, layout [f][kx][kz][y in b's chunk].
	d.Pool.For(pb, func(b int) {
		pyl, pyh := Chunk(d.NY, pb, b)
		pos := sendDispls[b]
		for f := 0; f < nf; f++ {
			fd := src[f]
			for kx := 0; kx < nkx; kx++ {
				for kz := 0; kz < nkz; kz++ {
					base := (kx*nkz + kz) * d.NY
					for y := pyl; y < pyh; y++ {
						sbuf[pos] = fd[base+y]
						pos++
					}
				}
			}
		}
	})
	rbuf := d.exchange(d.B.Comm, sbuf, sendCounts, sendDispls, recvCounts, recvDispls)
	if dst == nil {
		dst = allocFields(nf, nkx*nyLoc*d.NZ)
	}
	// Unpack: from peer b, layout [f][kx][kz in b's chunk][y mine].
	d.Pool.For(pb, func(b int) {
		pzl, pzh := Chunk(d.NZ, pb, b)
		pos := recvDispls[b]
		for f := 0; f < nf; f++ {
			fd := dst[f]
			for kx := 0; kx < nkx; kx++ {
				for kz := pzl; kz < pzh; kz++ {
					for y := 0; y < nyLoc; y++ {
						fd[(kx*nyLoc+y)*d.NZ+kz] = rbuf[pos]
						pos++
					}
				}
			}
		}
	})
	return dst
}

// ZtoY transposes fields from spectral z-pencils back to y-pencils inside
// CommB; the inverse of YtoZ (paper step (h) tail).
func (d *Decomp) ZtoY(dst, src [][]complex128) [][]complex128 {
	nf := len(src)
	kl, kh := d.KxRange()
	nkx := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.KzRangeY()
	nkz := zh - zl
	pb := d.PB

	blk := nf * nkx
	sendCounts := make([]int, pb)
	sendDispls := make([]int, pb)
	recvCounts := make([]int, pb)
	recvDispls := make([]int, pb)
	soff, roff := 0, 0
	for b := 0; b < pb; b++ {
		pzl, pzh := Chunk(d.NZ, pb, b)
		pyl, pyh := Chunk(d.NY, pb, b)
		sendCounts[b] = blk * (pzh - pzl) * nyLoc
		sendDispls[b] = soff
		soff += sendCounts[b]
		recvCounts[b] = blk * nkz * (pyh - pyl)
		recvDispls[b] = roff
		roff += recvCounts[b]
	}
	sbuf := make([]complex128, soff)
	// Pack: to peer b, layout [f][kx][kz in b's chunk][y mine] — the exact
	// inverse of YtoZ's unpack.
	d.Pool.For(pb, func(b int) {
		pzl, pzh := Chunk(d.NZ, pb, b)
		pos := sendDispls[b]
		for f := 0; f < nf; f++ {
			fd := src[f]
			for kx := 0; kx < nkx; kx++ {
				for kz := pzl; kz < pzh; kz++ {
					for y := 0; y < nyLoc; y++ {
						sbuf[pos] = fd[(kx*nyLoc+y)*d.NZ+kz]
						pos++
					}
				}
			}
		}
	})
	rbuf := d.exchange(d.B.Comm, sbuf, sendCounts, sendDispls, recvCounts, recvDispls)
	if dst == nil {
		dst = allocFields(nf, nkx*nkz*d.NY)
	}
	d.Pool.For(pb, func(b int) {
		pyl, pyh := Chunk(d.NY, pb, b)
		pos := recvDispls[b]
		for f := 0; f < nf; f++ {
			fd := dst[f]
			for kx := 0; kx < nkx; kx++ {
				for kz := 0; kz < nkz; kz++ {
					base := (kx*nkz + kz) * d.NY
					for y := pyl; y < pyh; y++ {
						fd[base+y] = rbuf[pos]
						pos++
					}
				}
			}
		}
	})
	return dst
}

// ZtoX transposes fields from z-pencils (z extent zLen, typically the padded
// physical 3*NZ/2) to x-pencils inside CommA. Paper step (d).
func (d *Decomp) ZtoX(dst, src [][]complex128, zLen int) [][]complex128 {
	nf := len(src)
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.ZRangeX(zLen)
	nzLoc := zh - zl
	pa := d.PA

	blk := nf * nyLoc
	sendCounts := make([]int, pa)
	sendDispls := make([]int, pa)
	recvCounts := make([]int, pa)
	recvDispls := make([]int, pa)
	soff, roff := 0, 0
	for a := 0; a < pa; a++ {
		pzl, pzh := Chunk(zLen, pa, a)
		pkl, pkh := Chunk(d.NKx, pa, a)
		sendCounts[a] = blk * nkxLoc * (pzh - pzl)
		sendDispls[a] = soff
		soff += sendCounts[a]
		recvCounts[a] = blk * (pkh - pkl) * nzLoc
		recvDispls[a] = roff
		roff += recvCounts[a]
	}
	sbuf := make([]complex128, soff)
	// Pack: to peer a, layout [f][kx mine][y][z in a's chunk].
	d.Pool.For(pa, func(a int) {
		pzl, pzh := Chunk(zLen, pa, a)
		pos := sendDispls[a]
		for f := 0; f < nf; f++ {
			fd := src[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for y := 0; y < nyLoc; y++ {
					base := (kx*nyLoc + y) * zLen
					for z := pzl; z < pzh; z++ {
						sbuf[pos] = fd[base+z]
						pos++
					}
				}
			}
		}
	})
	rbuf := d.exchange(d.A.Comm, sbuf, sendCounts, sendDispls, recvCounts, recvDispls)
	if dst == nil {
		dst = allocFields(nf, nyLoc*nzLoc*d.NKx)
	}
	// Unpack: from peer a, layout [f][kx in a's chunk][y][z mine].
	d.Pool.For(pa, func(a int) {
		pkl, pkh := Chunk(d.NKx, pa, a)
		pos := recvDispls[a]
		for f := 0; f < nf; f++ {
			fd := dst[f]
			for kx := pkl; kx < pkh; kx++ {
				for y := 0; y < nyLoc; y++ {
					for z := 0; z < nzLoc; z++ {
						fd[(y*nzLoc+z)*d.NKx+kx] = rbuf[pos]
						pos++
					}
				}
			}
		}
	})
	return dst
}

// XtoZ transposes fields from x-pencils back to z-pencils (z extent zLen)
// inside CommA; the inverse of ZtoX.
func (d *Decomp) XtoZ(dst, src [][]complex128, zLen int) [][]complex128 {
	nf := len(src)
	kl, kh := d.KxRange()
	nkxLoc := kh - kl
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zl, zh := d.ZRangeX(zLen)
	nzLoc := zh - zl
	pa := d.PA

	blk := nf * nyLoc
	sendCounts := make([]int, pa)
	sendDispls := make([]int, pa)
	recvCounts := make([]int, pa)
	recvDispls := make([]int, pa)
	soff, roff := 0, 0
	for a := 0; a < pa; a++ {
		pkl, pkh := Chunk(d.NKx, pa, a)
		pzl, pzh := Chunk(zLen, pa, a)
		sendCounts[a] = blk * (pkh - pkl) * nzLoc
		sendDispls[a] = soff
		soff += sendCounts[a]
		recvCounts[a] = blk * nkxLoc * (pzh - pzl)
		recvDispls[a] = roff
		roff += recvCounts[a]
	}
	sbuf := make([]complex128, soff)
	d.Pool.For(pa, func(a int) {
		pkl, pkh := Chunk(d.NKx, pa, a)
		pos := sendDispls[a]
		for f := 0; f < nf; f++ {
			fd := src[f]
			for kx := pkl; kx < pkh; kx++ {
				for y := 0; y < nyLoc; y++ {
					for z := 0; z < nzLoc; z++ {
						sbuf[pos] = fd[(y*nzLoc+z)*d.NKx+kx]
						pos++
					}
				}
			}
		}
	})
	rbuf := d.exchange(d.A.Comm, sbuf, sendCounts, sendDispls, recvCounts, recvDispls)
	if dst == nil {
		dst = allocFields(nf, nkxLoc*nyLoc*zLen)
	}
	d.Pool.For(pa, func(a int) {
		pzl, pzh := Chunk(zLen, pa, a)
		pos := recvDispls[a]
		for f := 0; f < nf; f++ {
			fd := dst[f]
			for kx := 0; kx < nkxLoc; kx++ {
				for y := 0; y < nyLoc; y++ {
					base := (kx*nyLoc + y) * zLen
					for z := pzl; z < pzh; z++ {
						fd[base+z] = rbuf[pos]
						pos++
					}
				}
			}
		}
	})
	return dst
}

func allocFields(nf, n int) [][]complex128 {
	out := make([][]complex128, nf)
	for i := range out {
		out[i] = make([]complex128, n)
	}
	return out
}

// Reorder performs the on-node transpose A(i,j,k) -> A(j,k,i) of paper
// §4.2, dividing the work into independent pieces across the pool to keep
// multiple memory streams in flight. src is ni x nj x nk row-major; dst is
// nj x nk x ni row-major.
func Reorder(dst, src []complex128, ni, nj, nk int, pool *par.Pool) {
	if len(dst) < ni*nj*nk || len(src) < ni*nj*nk {
		panic("pencil: Reorder slice lengths")
	}
	pool.ForBlocks(nj, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			for k := 0; k < nk; k++ {
				out := (j*nk + k) * ni
				in := j*nk + k
				for i := 0; i < ni; i++ {
					dst[out+i] = src[in+i*nj*nk]
				}
			}
		}
	})
}
