package pencil

import (
	"fmt"
	"math/rand"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
)

// TestTransposePlanZeroAlloc: at P=1 every transpose direction degenerates
// to a self-copy through the plan's persistent buffers, so a warmed plan
// with a preallocated destination must perform zero heap allocations per
// call. (At P>1 the in-process runtime copies each eager-send message, so
// strict zero-alloc only holds single-rank; the plan tables and exchange
// buffers are still reused either way.)
func TestTransposePlanZeroAlloc(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		d := New(c, 1, 1, 6, 8, 10, nil)
		// Attach a live collector: the instrumented path must stay free too.
		d.Telemetry = telemetry.NewCollector(c.Rank())
		const nf = 3
		src := AllocFields(nf, d.YPencilLen())
		for f := range src {
			for i := range src[f] {
				src[f][i] = complex(float64(f*1000+i), 1)
			}
		}
		zp := AllocFields(nf, d.ZPencilLen(d.NZ))
		xp := AllocFields(nf, d.XPencilLen(d.NZ))
		zp2 := AllocFields(nf, d.ZPencilLen(d.NZ))
		out := AllocFields(nf, d.YPencilLen())

		steps := []struct {
			name string
			run  func()
		}{
			{"YtoZ", func() { d.YtoZ(zp, src) }},
			{"ZtoX", func() { d.ZtoX(xp, zp, d.NZ) }},
			{"XtoZ", func() { d.XtoZ(zp2, xp, d.NZ) }},
			{"ZtoY", func() { d.ZtoY(out, zp2) }},
		}
		// Warm the plans (first call builds tables and buffers).
		for _, st := range steps {
			st.run()
		}
		for _, st := range steps {
			if allocs := testing.AllocsPerRun(10, st.run); allocs != 0 {
				t.Errorf("%s: %v allocs per reused transpose, want 0", st.name, allocs)
			}
		}
	})
}

// TestTransposePlanReuseBitwise: reusing one plan (and one destination
// buffer) across iterations must reproduce the identity round trip
// bitwise, for both the CommB pair (YtoZ∘ZtoY) and the CommA pair
// (ZtoX∘XtoZ), across several grid shapes and process splits, with fresh
// random data each iteration.
func TestTransposePlanReuseBitwise(t *testing.T) {
	shapes := []struct{ pa, pb, nkx, nz, ny int }{
		{1, 1, 4, 6, 8},
		{1, 4, 5, 9, 11},
		{4, 1, 5, 9, 11},
		{2, 3, 7, 10, 13},
		{3, 2, 6, 12, 7},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d_%dx%dx%d", sh.pa, sh.pb, sh.nkx, sh.nz, sh.ny),
			func(t *testing.T) {
				mpi.Run(sh.pa*sh.pb, func(c *mpi.Comm) {
					d := New(c, sh.pa, sh.pb, sh.nkx, sh.nz, sh.ny, par.NewPool(2))
					const nf = 2
					rng := rand.New(rand.NewSource(int64(41*c.Rank() + 7)))
					src := AllocFields(nf, d.YPencilLen())
					zp := AllocFields(nf, d.ZPencilLen(d.NZ))
					back := AllocFields(nf, d.YPencilLen())
					xp := AllocFields(nf, d.XPencilLen(d.NZ))
					zback := AllocFields(nf, d.ZPencilLen(d.NZ))
					for it := 0; it < 3; it++ {
						for f := 0; f < nf; f++ {
							for i := range src[f] {
								src[f][i] = complex(rng.NormFloat64(), rng.NormFloat64())
							}
						}
						d.YtoZ(zp, src)
						d.ZtoY(back, zp)
						for f := 0; f < nf; f++ {
							for i := range src[f] {
								if back[f][i] != src[f][i] {
									t.Errorf("iter %d rank %d: YtoZ∘ZtoY not identity at f=%d i=%d",
										it, c.Rank(), f, i)
									return
								}
							}
						}
						d.ZtoX(xp, zp, d.NZ)
						d.XtoZ(zback, xp, d.NZ)
						for f := 0; f < nf; f++ {
							for i := range zp[f] {
								if zback[f][i] != zp[f][i] {
									t.Errorf("iter %d rank %d: ZtoX∘XtoZ not identity at f=%d i=%d",
										it, c.Rank(), f, i)
									return
								}
							}
						}
					}
				})
			})
	}
}

// TestDecompTelemetry: the telemetry comm accounting must count one call
// per transpose, a positive and direction-consistent number of bytes, and
// one PhaseTransposeAB timing sample per Run.
func TestDecompTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	mpi.Run(4, func(c *mpi.Comm) {
		d := New(c, 2, 2, 4, 6, 8, nil)
		d.Telemetry = reg.Rank(c.Rank())
		src := AllocFields(1, d.YPencilLen())
		zp := d.YtoZ(nil, src)
		xp := d.ZtoX(nil, zp, d.NZ)
		d.XtoZ(nil, xp, d.NZ)
		d.ZtoY(nil, zp)

		tel := d.Telemetry
		if got := tel.PhaseCalls(telemetry.PhaseTransposeAB); got != 4 {
			t.Errorf("rank %d: %d transpose timing samples, want 4", c.Rank(), got)
		}
		bytesOf := func(op telemetry.CommOp) int64 {
			calls, msgs, bytes := tel.CommCounts(op)
			if calls != 1 {
				t.Errorf("rank %d %s: %d calls, want 1", c.Rank(), op, calls)
			}
			if msgs != 1 { // 2x2 grid: one remote peer per sub-communicator
				t.Errorf("rank %d %s: %d messages, want 1", c.Rank(), op, msgs)
			}
			if bytes <= 0 {
				t.Errorf("rank %d %s: %d bytes moved, want > 0", c.Rank(), op, bytes)
			}
			return bytes
		}
		if bytesOf(telemetry.CommYtoZ) != bytesOf(telemetry.CommZtoY) {
			t.Errorf("rank %d: CommB pair asymmetric", c.Rank())
		}
		if bytesOf(telemetry.CommZtoX) != bytesOf(telemetry.CommXtoZ) {
			t.Errorf("rank %d: CommA pair asymmetric", c.Rank())
		}
	})
	snap := reg.Snapshot()
	if snap.Ranks != 4 {
		t.Fatalf("snapshot ranks = %d, want 4", snap.Ranks)
	}
	if len(snap.Comm) != 4 {
		t.Errorf("snapshot comm ops = %d, want 4", len(snap.Comm))
	}
}
