package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server ties the manager and API to a listener with a graceful
// shutdown path: Close drains the manager (running jobs checkpoint and
// park as "interrupted") and then shuts the HTTP side down, so a SIGTERM
// never loses more than the steps since the last checkpoint — and the
// next start recovers even those runs and finishes them.
type Server struct {
	Manager *Manager
	API     *API

	http *http.Server
	ln   net.Listener
}

// New builds a server over a run store at dir. Recover is called before
// the listener opens, so recovered jobs are already queued when the
// first request lands.
func New(dir string, opts Options) (*Server, error) {
	m, err := NewManager(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := m.Recover(); err != nil {
		return nil, err
	}
	api := NewAPI(m)
	return &Server{
		Manager: m,
		API:     api,
		http: &http.Server{
			Handler:           api.Routes(),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}, nil
}

// Listen binds addr (e.g. "localhost:0") and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve runs the HTTP loop until Close; it returns nil on graceful
// shutdown. Listen must have succeeded first.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	if err := s.http.Serve(s.ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Close drains jobs, then the HTTP server, honoring ctx as the deadline
// for both.
func (s *Server) Close(ctx context.Context) error {
	drainErr := s.Manager.Drain(ctx)
	httpErr := s.http.Shutdown(ctx)
	if drainErr != nil {
		return drainErr
	}
	return httpErr
}
