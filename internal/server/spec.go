// Package server is the DNS-as-a-service layer: a long-running multi-run
// simulation service. Jobs arrive as JSON specs over HTTP, wait in a
// bounded FIFO queue, run through the core workload registry on the
// in-process rank transport, checkpoint into a durable per-run store, and
// stream live telemetry, status lines and field-plane frames to many
// concurrent watchers. A server that crashes (or is SIGKILLed) between
// steps rediscovers its interrupted runs from their on-disk manifests at
// the next start and auto-resumes them bit-identically via the ckpt
// store's re-sharded resume.
//
// Four layers, one file each: the job manager (manager.go), the run store
// (store.go), the broadcast hub behind the streaming endpoints (hub.go),
// and the HTTP API (api.go, server.go).
package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"channeldns/internal/core"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// JobSpec is the serializable description of one simulation job: the
// workload name plus the core.Config fields a run is reconstructed from.
// It is the submit payload of POST /v1/jobs and is persisted verbatim as
// spec.json in the run directory, so a restarted server rebuilds exactly
// the job that was interrupted. Zero values select the same defaults
// cmd/dns uses.
type JobSpec struct {
	// Workload names a registered scenario ("channel", "isotropic",
	// "scalar", ...); "" selects "channel".
	Workload string `json:"workload,omitempty"`
	// Grid: Fourier modes in x and z (even), B-spline basis size in y
	// (Fourier modes in y for the isotropic workload).
	Nx int `json:"nx"`
	Ny int `json:"ny"`
	Nz int `json:"nz"`
	// Steps is the target number of RK3 steps; a resumed job continues
	// from its checkpointed step toward the same target.
	Steps int `json:"steps"`
	// ReTau is the friction Reynolds number (0 selects 180).
	ReTau float64 `json:"re_tau,omitempty"`
	// Dt is the time step (0 selects 5e-4).
	Dt float64 `json:"dt,omitempty"`
	// TargetCFL > 0 enables adaptive stepping toward that CFL number
	// (cmd/dns's -steps loop uses 0.8); 0 keeps Dt fixed, which also makes
	// an interrupted job's resumed trajectory bit-identical to an
	// uninterrupted one.
	TargetCFL float64 `json:"target_cfl,omitempty"`
	// Process grid (PA*PB in-process ranks) and per-rank worker threads.
	PA      int `json:"pa,omitempty"`
	PB      int `json:"pb,omitempty"`
	Threads int `json:"threads,omitempty"`
	// Initial condition: perturbation amplitude (0 selects 0.3) and seed
	// (0 selects 1).
	Perturb float64 `json:"perturb,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Physics knobs forwarded to core.Config.
	Ly      float64 `json:"ly,omitempty"`
	Prandtl float64 `json:"prandtl,omitempty"`
	// Form is the convective-term form: "divergence" (default),
	// "convective" or "skew".
	Form string `json:"form,omitempty"`
	// Overlap pipelines the nonlinear-path transposes (bit-identical;
	// wins at 4+ ranks); PipelineChunks overrides the pipeline depth.
	Overlap        bool `json:"overlap,omitempty"`
	PipelineChunks int  `json:"pipeline_chunks,omitempty"`
	// CkptEvery is the rolling-checkpoint cadence in steps (0 selects
	// every 10 steps — a service job is always crash-resumable). A final
	// checkpoint is written unconditionally, as is one before any
	// cancel/pause/drain stop. CkptKeep is the store retention (0 selects
	// 3; negative keeps everything).
	CkptEvery int `json:"ckpt_every,omitempty"`
	CkptKeep  int `json:"ckpt_keep,omitempty"`
	// StatusEvery is the stream cadence in steps for status lines and
	// telemetry deltas (0 selects every step). PlaneEvery is the cadence
	// of live field-plane frames (0 selects every 5 steps; planes are
	// rendered only for single-rank channel-based workloads).
	StatusEvery int `json:"status_every,omitempty"`
	PlaneEvery  int `json:"plane_every,omitempty"`
	// Trace attaches a flight recorder; the Chrome trace lands as
	// trace.json in the run directory and is served live on the run's
	// /trace endpoint.
	Trace bool `json:"trace,omitempty"`
	// StepDelayMs throttles the run by sleeping between steps — a pacing
	// knob for demos and for drills that must observe a job mid-flight
	// (the serve-smoke crash test). 0 runs flat out.
	StepDelayMs int `json:"step_delay_ms,omitempty"`
}

// withDefaults returns the spec with zero values resolved, the form the
// run loop and the persisted spec.json use.
func (sp JobSpec) withDefaults() JobSpec {
	if sp.Workload == "" {
		sp.Workload = core.WorkloadChannel
	}
	if sp.ReTau == 0 {
		sp.ReTau = 180
	}
	if sp.Dt == 0 {
		sp.Dt = 5e-4
	}
	if sp.PA == 0 {
		sp.PA = 1
	}
	if sp.PB == 0 {
		sp.PB = 1
	}
	if sp.Perturb == 0 {
		sp.Perturb = 0.3
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Form == "" {
		sp.Form = core.FormDivergence.String()
	}
	if sp.CkptEvery == 0 {
		sp.CkptEvery = 10
	}
	if sp.CkptKeep == 0 {
		sp.CkptKeep = 3
	}
	if sp.StatusEvery == 0 {
		sp.StatusEvery = 1
	}
	if sp.PlaneEvery == 0 {
		sp.PlaneEvery = 5
	}
	return sp
}

// Validate rejects specs that cannot possibly run, so submission fails
// with 400 instead of burning a queue slot on a doomed job. Deeper
// constraints (grid-vs-degree, decomposition fit) surface when the
// workload is constructed and fail the job with a stored error.
func (sp JobSpec) Validate() error {
	d := sp.withDefaults()
	if core.WorkloadDescription(d.Workload) == "" {
		return fmt.Errorf("unknown workload %q (registered: %v)", d.Workload, core.WorkloadNames())
	}
	if d.Nx <= 0 || d.Ny <= 0 || d.Nz <= 0 {
		return fmt.Errorf("grid %dx%dx%d: all extents must be positive", d.Nx, d.Ny, d.Nz)
	}
	if d.Nx%2 != 0 || d.Nz%2 != 0 {
		return fmt.Errorf("grid %dx%dx%d: nx and nz must be even (full Fourier modes)", d.Nx, d.Ny, d.Nz)
	}
	if d.Steps <= 0 {
		return fmt.Errorf("steps %d: must be positive", d.Steps)
	}
	if d.ReTau <= 0 || d.Dt <= 0 {
		return fmt.Errorf("re_tau %g / dt %g: must be positive", d.ReTau, d.Dt)
	}
	if d.PA < 1 || d.PB < 1 {
		return fmt.Errorf("process grid %dx%d: must be at least 1x1", d.PA, d.PB)
	}
	if _, err := core.ParseForm(d.Form); err != nil {
		return err
	}
	if d.StepDelayMs < 0 {
		return fmt.Errorf("step_delay_ms %d: must be non-negative", d.StepDelayMs)
	}
	return nil
}

// World returns the rank count of the spec's process grid.
func (sp JobSpec) World() int { return sp.withDefaults().PA * sp.withDefaults().PB }

// Config builds the core.Config the job runs with. The spec must have
// passed Validate; reg/trc attach per-run instrumentation (the registry is
// required — the service always observes its runs; trc may be nil).
func (sp JobSpec) Config(pool *par.Pool, reg *telemetry.Registry, trc *trace.Trace) core.Config {
	d := sp.withDefaults()
	form, _ := core.ParseForm(d.Form)
	return core.Config{
		Workload: d.Workload,
		Nx:       d.Nx, Ny: d.Ny, Nz: d.Nz,
		ReTau: d.ReTau, Dt: d.Dt, Forcing: 1,
		Ly: d.Ly, Prandtl: d.Prandtl,
		PA: d.PA, PB: d.PB, Pool: pool,
		Nonlinear: form,
		Overlap:   d.Overlap, PipelineChunks: d.PipelineChunks,
		Telemetry: reg, Trace: trc,
	}
}

// ConfigMap is the spec rendered as a BENCH report config block, the
// fingerprint bench-diff compares structurally.
func (sp JobSpec) ConfigMap() map[string]string {
	d := sp.withDefaults()
	return map[string]string{
		"workload": d.Workload,
		"nx":       fmt.Sprint(d.Nx), "ny": fmt.Sprint(d.Ny), "nz": fmt.Sprint(d.Nz),
		"re_tau": fmt.Sprint(d.ReTau), "dt": fmt.Sprint(d.Dt),
		"steps": fmt.Sprint(d.Steps), "pa": fmt.Sprint(d.PA), "pb": fmt.Sprint(d.PB),
		"threads": fmt.Sprint(d.Threads), "form": d.Form,
		"overlap": fmt.Sprint(d.Overlap), "transport": "chan",
	}
}

// decodeSpec parses a JSON job spec strictly: unknown fields are submit
// errors, not silent typo sinks (a mistyped "ckpt_evry" must not quietly
// run with the default cadence).
func decodeSpec(data []byte) (JobSpec, error) {
	var sp JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return JobSpec{}, fmt.Errorf("parsing job spec: %w", err)
	}
	return sp, nil
}
