package server

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math"

	"channeldns/internal/core"
)

// Live field-plane frames: for single-rank channel-based workloads the
// run loop renders the mid-channel streamwise-velocity plane to a
// grayscale PNG between steps and publishes it two ways — the latest
// frame is served whole on GET /v1/jobs/{id}/plane.png, and a small
// PlaneFrame descriptor (step + extrema, not the pixels) rides the event
// stream so watchers know when to re-fetch. Shipping pixels by reference
// keeps the stream cheap for watchers that only want numbers.

// PlaneFrame is the stream-side descriptor of a rendered plane.
type PlaneFrame struct {
	Step int     `json:"step"`
	Comp string  `json:"comp"`
	Yi   int     `json:"yi"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// W and H are the PNG dimensions (physical-grid MX x MZ).
	W int `json:"w"`
	H int `json:"h"`
}

// renderPlane extracts the mid-channel streamwise-velocity plane from a
// single-rank channel solver and encodes it as a grayscale PNG, linearly
// mapping [min, max] to [0, 255]. Returns the PNG bytes and the frame
// descriptor.
func renderPlane(s *core.Solver, step int) ([]byte, PlaneFrame) {
	yi := s.Cfg.Ny / 2
	plane := s.PhysicalPlane(core.CompU, yi)
	h := len(plane)
	w := 0
	if h > 0 {
		w = len(plane[0])
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range plane {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	img := image.NewGray(image.Rect(0, 0, w, h))
	for z, row := range plane {
		for x, v := range row {
			img.SetGray(x, z, color.Gray{Y: uint8(math.Round(min(255, max(0, (v-lo)*scale))))})
		}
	}
	var buf bytes.Buffer
	// Encoding a tiny grayscale image cannot fail into a bytes.Buffer.
	_ = png.Encode(&buf, img)
	return buf.Bytes(), PlaneFrame{
		Step: step, Comp: "u", Yi: yi, Min: lo, Max: hi, W: w, H: h,
	}
}
