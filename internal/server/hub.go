package server

import (
	"context"
	"encoding/json"
	"sync"
)

// The hub is the fan-out point between one running job and its watchers.
// The run loop publishes from between solver steps and must NEVER block
// on a consumer — a stalled TCP connection on the far side of an SSE
// stream cannot be allowed to stall the simulation or the other
// watchers. Publish therefore writes into per-watcher buffered channels
// and drops any watcher whose buffer is full (the watcher learns it was
// dropped and can re-attach; events carry sequence numbers so the gap is
// visible). A bounded ring of recent events backs the long-poll fallback
// and lets late joiners catch up without a second code path.

// Event stream types.
const (
	EventState     = "state"     // lifecycle transition; data is a Status
	EventStatus    = "status"    // periodic status; data is a Status
	EventTelemetry = "telemetry" // data is a telemetry.SnapshotDelta
	EventPlane     = "plane"     // data is a PlaneFrame (PNG by reference)
)

// Event is one stream item. Seq increases by 1 per event on a given job;
// a watcher that sees a jump knows it was dropped or joined late.
type Event struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Watcher is one subscription to a hub. Events arrive on C; the channel
// is closed when the hub closes (job reached a terminal state) or the
// watcher is dropped for falling behind — Dropped distinguishes the two.
type Watcher struct {
	C   <-chan Event
	c   chan Event
	hub *Hub
	// dropped is set under the hub lock before the channel is closed.
	dropped bool
}

// Dropped reports whether the hub evicted this watcher for not keeping
// up. Valid after C is closed.
func (w *Watcher) Dropped() bool {
	w.hub.mu.Lock()
	defer w.hub.mu.Unlock()
	return w.dropped
}

// Hub broadcasts one job's event stream.
type Hub struct {
	mu       sync.Mutex
	seq      uint64
	ring     []Event // last ringCap events, oldest first
	ringCap  int
	buf      int // per-watcher channel capacity
	watchers map[*Watcher]struct{}
	closed   bool
	// wake is closed and replaced on every publish; long-pollers wait on
	// it instead of polling the ring.
	wake chan struct{}
}

// NewHub creates a hub whose watchers each buffer buf events (<=0
// selects 64) and whose catch-up ring holds ringCap events (<=0 selects
// 256).
func NewHub(buf, ringCap int) *Hub {
	if buf <= 0 {
		buf = 64
	}
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Hub{
		ringCap:  ringCap,
		buf:      buf,
		watchers: make(map[*Watcher]struct{}),
		wake:     make(chan struct{}),
	}
}

// Subscribe attaches a new watcher and returns it together with the
// recent events it missed (the ring contents), captured atomically with
// the subscription so no event falls between the replay and the live
// stream. Returns nil after Close.
func (h *Hub) Subscribe() (*Watcher, []Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil
	}
	w := &Watcher{hub: h, c: make(chan Event, h.buf)}
	w.C = w.c
	h.watchers[w] = struct{}{}
	replay := make([]Event, len(h.ring))
	copy(replay, h.ring)
	return w, replay
}

// Unsubscribe detaches a watcher; its channel is closed. Safe to call
// for already-dropped watchers.
func (h *Hub) Unsubscribe(w *Watcher) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.watchers[w]; ok {
		delete(h.watchers, w)
		close(w.c)
	}
}

// Publish broadcasts an event of the given type. It never blocks: a
// watcher whose buffer is full is dropped on the spot (removed, marked,
// channel closed). The data is marshaled once, shared by all watchers.
func (h *Hub) Publish(typ string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		// Stream payloads are our own structs; a marshal failure is a
		// programming error, but the stream is advisory — skip the event
		// rather than panic mid-run.
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev := Event{Seq: h.seq, Type: typ, Data: raw}
	h.ring = append(h.ring, ev)
	if len(h.ring) > h.ringCap {
		h.ring = h.ring[len(h.ring)-h.ringCap:]
	}
	for w := range h.watchers {
		select {
		case w.c <- ev:
		default: // drop-on-slow
			w.dropped = true
			delete(h.watchers, w)
			close(w.c)
		}
	}
	close(h.wake)
	h.wake = make(chan struct{})
}

// Close ends the stream: all watchers' channels are closed (without the
// dropped mark) and future Subscribe/Publish calls are no-ops. Called
// only on terminal job states — a paused job keeps its hub open so
// watchers ride through the resume.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for w := range h.watchers {
		delete(h.watchers, w)
		close(w.c)
	}
	close(h.wake) // release long-pollers
}

// Closed reports whether the stream has ended.
func (h *Hub) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Since returns the buffered events with Seq > after (long-poll catch-up
// read) and whether the stream is still open.
func (h *Hub) Since(after uint64) ([]Event, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Event
	for _, ev := range h.ring {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, !h.closed
}

// Wait blocks until an event with Seq > after exists, the stream closes,
// or ctx expires; it then returns Since(after). The long-poll endpoint
// is this plus JSON encoding.
func (h *Hub) Wait(ctx context.Context, after uint64) ([]Event, bool) {
	for {
		h.mu.Lock()
		wake := h.wake
		haveNew := h.seq > after
		closed := h.closed
		h.mu.Unlock()
		if haveNew || closed {
			return h.Since(after)
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return h.Since(after)
		}
	}
}

// Watchers returns the current subscriber count (drops excluded).
func (h *Hub) Watchers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.watchers)
}
