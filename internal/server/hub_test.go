package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"channeldns/internal/telemetry"
)

// TestHubBackpressure: a watcher that never drains is evicted the moment
// its buffer fills — Publish must not block on it, and the healthy
// watcher sees every event.
func TestHubBackpressure(t *testing.T) {
	h := NewHub(4, 16)
	stalled, _ := h.Subscribe()
	healthy, _ := h.Subscribe()

	drained := make(chan int)
	go func() {
		n := 0
		for range healthy.C {
			n++
		}
		drained <- n
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			h.Publish(EventStatus, map[string]int{"i": i})
			// Let the healthy watcher's drain loop keep pace, so only the
			// stalled one ever fills. The stalled watcher's buffer is full
			// after 4 publishes; every one after that must not block.
			for len(healthy.c) > 0 {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled watcher")
	}

	// The stalled watcher's channel closes with the dropped mark set.
	deadline := time.After(2 * time.Second)
	received := 0
drain:
	for {
		select {
		case _, open := <-stalled.C:
			if !open {
				break drain
			}
			received++
		case <-deadline:
			t.Fatal("stalled watcher was never dropped")
		}
	}
	if !stalled.Dropped() {
		t.Error("evicted watcher not marked dropped")
	}
	if received != 4 {
		t.Errorf("stalled watcher buffered %d events, want its capacity 4", received)
	}
	if got := h.Watchers(); got != 1 {
		t.Errorf("hub reports %d watchers after eviction, want 1", got)
	}

	h.Close()
	if n := <-drained; n != 20 {
		t.Errorf("healthy watcher saw %d of 20 events", n)
	}
	if healthy.Dropped() {
		t.Error("healthy watcher marked dropped")
	}
}

// TestHubReplaySince: a late subscriber replays the ring atomically with
// its subscription, and Since/Wait serve the long-poll path.
func TestHubReplaySince(t *testing.T) {
	h := NewHub(8, 4) // ring smaller than the publish count
	for i := 0; i < 6; i++ {
		h.Publish(EventStatus, i)
	}
	w, replay := h.Subscribe()
	if len(replay) != 4 {
		t.Fatalf("replay carries %d events, want ring capacity 4", len(replay))
	}
	if replay[0].Seq != 3 || replay[3].Seq != 6 {
		t.Errorf("replay seqs [%d..%d], want [3..6]", replay[0].Seq, replay[3].Seq)
	}

	evs, open := h.Since(4)
	if !open || len(evs) != 2 {
		t.Errorf("Since(4): %d events open=%v, want 2 true", len(evs), open)
	}

	// Wait returns as soon as something newer than `after` lands.
	got := make(chan []Event, 1)
	go func() {
		evs, _ := h.Wait(context.Background(), 6)
		got <- evs
	}()
	time.Sleep(10 * time.Millisecond)
	h.Publish(EventStatus, 7)
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].Seq != 7 {
			t.Errorf("Wait(6) returned %+v, want the single seq-7 event", evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}

	// Wait honors its context when nothing arrives.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if evs, _ := h.Wait(ctx, 100); len(evs) != 0 {
		t.Errorf("Wait past the head returned %d events", len(evs))
	}

	h.Close()
	if _, open := <-w.C; open {
		// drain the live event first
		for range w.C {
		}
	}
	if w2, _ := h.Subscribe(); w2 != nil {
		t.Error("Subscribe after Close returned a watcher")
	}
	if _, open := h.Since(0); open {
		t.Error("Since reports open after Close")
	}
}

// BenchmarkStepWatchers pins the cost of a full service-loop iteration —
// one solver step plus the between-steps publish — as the watcher count
// grows. The step dominates; fan-out must stay noise.
func BenchmarkStepWatchers(b *testing.B) {
	for _, watchers := range []int{0, 10, 100} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			wl, reg, cleanup := benchSolver(b)
			defer cleanup()
			h := NewHub(64, 256)
			var drained atomic.Int64
			for i := 0; i < watchers; i++ {
				w, _ := h.Subscribe()
				go func() {
					for range w.C {
						drained.Add(1)
					}
				}()
			}
			prev := reg.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wl.StepOnce()
				h.Publish(EventStatus, Status{Step: wl.CurrentStep(), Time: wl.CurrentTime()})
				cur := reg.Snapshot()
				if d := telemetry.DeltaSnapshot(&prev, &cur); !d.Empty() {
					h.Publish(EventTelemetry, d)
				}
				prev = cur
			}
			b.StopTimer()
			h.Close()
		})
	}
}
