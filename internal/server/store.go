package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"channeldns/internal/ckpt"
)

// The run store is the durable half of the service. Every job owns one
// directory under the store root:
//
//	<root>/job-000042/
//	    spec.json     submitted JobSpec, verbatim
//	    status.json   latest Status (atomically replaced at step cadence)
//	    ckpt/         rolling internal/ckpt store (step-%010d dirs)
//	    report.json   final BENCH report (bench-validate clean)
//	    trace.json    Chrome trace, when the spec asked for one
//
// status.json is advisory — streams and the API read the in-memory copy
// while the server is alive. The on-disk copy exists so a server that
// died without warning can reconstruct what it was doing: DiscoverRuns
// walks the root, and any run whose persisted state is non-terminal is
// re-enqueued and resumed from its latest checkpoint manifest.

// Job lifecycle states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StatePaused      = "paused"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted" // checkpointed by a graceful drain
)

// terminalState reports whether a job in this state is finished for good.
// Paused and interrupted jobs are resumable; a crash leaves "running" or
// "queued" behind, which a restarted server also treats as resumable.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is a job's externally visible state, returned by the API and
// persisted as status.json.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Time-advance position (updated at status cadence while running).
	Step int     `json:"step"`
	Time float64 `json:"time"`
	Dt   float64 `json:"dt,omitempty"`
	// Line is the workload's latest collective status line.
	Line string `json:"line,omitempty"`
	// Error holds the failure reason for StateFailed.
	Error string `json:"error,omitempty"`
	// Resumes counts checkpoint restores across server restarts — a job
	// that survived one crash reports resumes >= 1.
	Resumes int `json:"resumes"`
	// Checkpoint is the name of the latest published checkpoint.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Submitted/Started/Finished are wall-clock timestamps (RFC 3339);
	// Started is the most recent (re)start, Finished is set on terminal
	// states only.
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// RunStore manages the per-run directories under one root. Methods are
// safe for concurrent use only through the Manager, which serializes run
// creation and pruning; reads (List, Load) tolerate concurrent writers
// because every file is published atomically.
type RunStore struct {
	root string
}

// NewRunStore opens (creating if needed) a run store rooted at dir.
func NewRunStore(dir string) (*RunStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("run store root: %w", err)
	}
	return &RunStore{root: dir}, nil
}

// Root returns the store's root directory.
func (rs *RunStore) Root() string { return rs.root }

const runDirPrefix = "job-"

// runDirName formats the directory name of a numeric run id; runDirID
// parses it back (-1 when the name is not a run directory).
func runDirName(id int) string { return fmt.Sprintf("%s%06d", runDirPrefix, id) }

func runDirID(name string) int {
	num, ok := strings.CutPrefix(name, runDirPrefix)
	if !ok {
		return -1
	}
	id, err := strconv.Atoi(num)
	if err != nil || id < 0 {
		return -1
	}
	return id
}

// RunID is the external job identifier ("job-000042" — the directory
// name, so an id in an API URL maps to disk by inspection).
func RunID(id int) string { return runDirName(id) }

// Dir returns the directory of run id.
func (rs *RunStore) Dir(id int) string { return filepath.Join(rs.root, runDirName(id)) }

// CkptDir returns the checkpoint store directory of run id.
func (rs *RunStore) CkptDir(id int) string { return filepath.Join(rs.Dir(id), "ckpt") }

// NextID returns one past the highest existing run id, so ids keep
// growing across server restarts and never collide with recovered runs.
func (rs *RunStore) NextID() (int, error) {
	entries, err := os.ReadDir(rs.root)
	if err != nil {
		return 0, err
	}
	next := 0
	for _, e := range entries {
		if id := runDirID(e.Name()); id >= next {
			next = id + 1
		}
	}
	return next, nil
}

// Create materializes the directory of a new run and persists its spec
// and initial status.
func (rs *RunStore) Create(id int, spec JobSpec, st Status) error {
	dir := rs.Dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSONAtomic(filepath.Join(dir, "spec.json"), spec); err != nil {
		return err
	}
	return rs.WriteStatus(id, st)
}

// WriteStatus atomically replaces status.json (temp file + rename, the
// same publication discipline the checkpoint store uses), so a reader —
// including a future server instance recovering from our crash — never
// sees a torn status.
func (rs *RunStore) WriteStatus(id int, st Status) error {
	return writeJSONAtomic(filepath.Join(rs.Dir(id), "status.json"), st)
}

// LoadSpec reads a run's persisted job spec.
func (rs *RunStore) LoadSpec(id int) (JobSpec, error) {
	data, err := os.ReadFile(filepath.Join(rs.Dir(id), "spec.json"))
	if err != nil {
		return JobSpec{}, err
	}
	return decodeSpec(data)
}

// LoadStatus reads a run's persisted status.
func (rs *RunStore) LoadStatus(id int) (Status, error) {
	var st Status
	data, err := os.ReadFile(filepath.Join(rs.Dir(id), "status.json"))
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("run %s status: %w", runDirName(id), err)
	}
	return st, nil
}

// ids returns the existing run ids, ascending.
func (rs *RunStore) ids() ([]int, error) {
	entries, err := os.ReadDir(rs.root)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		if id := runDirID(e.Name()); id >= 0 && e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// Prune removes the oldest terminal runs beyond keep, returning how many
// were deleted. Non-terminal runs are never pruned regardless of age —
// retention must not eat a job the server still owes work on. keep < 0
// disables pruning.
func (rs *RunStore) Prune(keep int) (int, error) {
	if keep < 0 {
		return 0, nil
	}
	ids, err := rs.ids()
	if err != nil {
		return 0, err
	}
	var terminal []int
	for _, id := range ids {
		st, err := rs.LoadStatus(id)
		if err == nil && terminalState(st.State) {
			terminal = append(terminal, id)
		}
	}
	removed := 0
	for len(terminal)-removed > keep {
		if err := os.RemoveAll(rs.Dir(terminal[removed])); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// RunInfo is one discovered run: its identity, spec, last persisted
// status, and the latest published checkpoint (if any). Shared by the
// server's restart recovery and `ckpt ls -runs`.
type RunInfo struct {
	ID     int
	Spec   JobSpec
	Status Status
	// Latest checkpoint manifest, nil when the run never checkpointed.
	CkptName string
	Manifest *ckpt.Manifest
}

// DiscoverRuns walks a run-store root and reconstructs every run from its
// on-disk record, ascending by id. Runs whose spec or status is missing
// or unreadable are skipped (half-created directories from a crash during
// Create carry no work worth recovering); a missing or corrupt checkpoint
// simply leaves Manifest nil, since the checkpoint store itself handles
// per-checkpoint corruption fallback at resume time.
func DiscoverRuns(root string) ([]RunInfo, error) {
	rs, err := NewRunStore(root)
	if err != nil {
		return nil, err
	}
	ids, err := rs.ids()
	if err != nil {
		return nil, err
	}
	var runs []RunInfo
	for _, id := range ids {
		spec, err := rs.LoadSpec(id)
		if err != nil {
			continue
		}
		st, err := rs.LoadStatus(id)
		if err != nil {
			continue
		}
		info := RunInfo{ID: id, Spec: spec, Status: st}
		if name, man, err := ckpt.LatestManifest(rs.CkptDir(id)); err == nil {
			info.CkptName = name
			info.Manifest = man
		}
		runs = append(runs, info)
	}
	return runs, nil
}

// Resumable reports whether a discovered run still owes steps: any
// non-terminal persisted state counts, because "running"/"queued" on disk
// means the previous server died mid-flight.
func (ri RunInfo) Resumable() bool { return !terminalState(ri.Status.State) }

// writeJSONAtomic publishes v at path via temp file + rename.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
