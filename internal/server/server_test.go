package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"channeldns/internal/ckpt"
	"channeldns/internal/telemetry"
)

// smallSpec is the test workhorse: a tiny fixed-dt channel job that
// checkpoints often. Fixed dt (no target_cfl) is what makes interrupted
// trajectories bit-identical on resume.
func smallSpec(steps int) JobSpec {
	return JobSpec{
		Nx: 16, Ny: 24, Nz: 16,
		Dt: 1e-3, Steps: steps,
		CkptEvery: 2, StatusEvery: 2, PlaneEvery: 3,
	}
}

func newTestManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m, err := NewManager(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitState polls until the job reaches the wanted state or the deadline
// passes.
func waitState(t *testing.T, job *Job, want string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := job.Status()
		if st.State == want {
			return st
		}
		if terminalState(st.State) && st.State != want {
			t.Fatalf("job reached terminal state %q (error %q), want %q", st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job stuck in %q, want %q", job.Status().State, want)
	return Status{}
}

// drainManager shuts the manager down, requiring it to finish in time.
func drainManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestJobLifecycle: a submitted job runs to completion, checkpoints,
// streams status/telemetry/plane events, persists a bench-valid report,
// and ends with a closed stream.
func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, Options{})
	defer drainManager(t, m)

	job, err := m.Submit(smallSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := job.Hub.Subscribe()
	if w == nil {
		t.Fatal("could not subscribe to a fresh job")
	}
	st := waitState(t, job, StateDone)

	if st.Step != 6 {
		t.Errorf("final step %d, want 6", st.Step)
	}
	if st.Line == "" || !strings.Contains(st.Line, "step") {
		t.Errorf("status line %q, want a solver status line", st.Line)
	}
	if st.Checkpoint == "" {
		t.Error("no checkpoint recorded in final status")
	}
	if st.Finished == nil {
		t.Error("terminal status without finished timestamp")
	}

	// The stream closed (terminal state) after carrying all event types.
	types := map[string]int{}
	for ev := range w.C {
		types[ev.Type]++
	}
	for _, typ := range []string{EventState, EventStatus, EventTelemetry, EventPlane} {
		if types[typ] == 0 {
			t.Errorf("stream carried no %q events (saw %v)", typ, types)
		}
	}
	if w.Dropped() {
		t.Error("patient watcher marked dropped")
	}

	// The persisted artifacts: status, final checkpoint, bench-valid report.
	diskSt, err := m.Store().LoadStatus(job.ID)
	if err != nil || diskSt.State != StateDone {
		t.Errorf("persisted status %+v, err %v, want done", diskSt, err)
	}
	name, man, err := ckpt.LatestManifest(m.Store().CkptDir(job.ID))
	if err != nil || man.Step != 6 {
		t.Errorf("latest checkpoint %q step %v err %v, want step 6", name, man, err)
	}
	raw, err := os.ReadFile(filepath.Join(m.Store().Dir(job.ID), "report.json"))
	if err != nil {
		t.Fatalf("report.json: %v", err)
	}
	rep, err := telemetry.ValidateJSON(raw)
	if err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if err := rep.CheckScheduleConsistency(); err != nil {
		t.Errorf("report schedule consistency: %v", err)
	}
	if err := rep.CheckCheckpointIO(); err != nil {
		t.Errorf("report checkpoint accounting: %v", err)
	}
	if rep.Table != "serve" {
		t.Errorf("report table %q, want serve", rep.Table)
	}

	// The rendered plane is a real PNG of the dealiased physical grid.
	png, frame, ok := job.Plane()
	if !ok {
		t.Fatal("no plane rendered for a single-rank channel job")
	}
	if !bytes.HasPrefix(png, []byte("\x89PNG")) {
		t.Error("plane payload is not a PNG")
	}
	if frame.W == 0 || frame.H == 0 || frame.Step == 0 {
		t.Errorf("degenerate plane frame %+v", frame)
	}
}

// TestCrashRecoveryBitIdentical is the acceptance test for crash-safe
// resume: a job checkpointed mid-flight, its server killed (simulated
// kill -9: the run aborts writing nothing, leaving status.json claiming
// "running"), a new server on the same store auto-resumes it — and the
// completed trajectory is bit-identical to an uninterrupted run of the
// same spec: same manifest position, same shard checksums, same shard
// bytes.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	// Reference: the uninterrupted run.
	refDir := t.TempDir()
	mRef := newTestManager(t, refDir, Options{})
	refJob, err := mRef.Submit(smallSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, refJob, StateDone)
	drainManager(t, mRef)

	// The victim: same physics, throttled so the crash lands mid-flight.
	crashDir := t.TempDir()
	m1 := newTestManager(t, crashDir, Options{})
	spec := smallSpec(10)
	spec.StepDelayMs = 50
	job, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first published checkpoint manifest, then pull the plug.
	ckptDir := m1.Store().CkptDir(job.ID)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, _, err := ckpt.LatestManifest(ckptDir); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint manifest appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	job.requestStop(stopCrash)
	drainManager(t, m1)

	// The on-disk record must look exactly like an abrupt death: status
	// still claims "running", mid-flight.
	diskSt, err := m1.Store().LoadStatus(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diskSt.State != StateRunning {
		t.Fatalf("crashed run persisted state %q, want %q (crash must not finalize)", diskSt.State, StateRunning)
	}
	if diskSt.Step >= 10 {
		t.Fatalf("crash landed after completion (step %d); raise the throttle", diskSt.Step)
	}

	// Restart: recovery must find the run and finish it without any client
	// involvement.
	m2 := newTestManager(t, crashDir, Options{})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	job2, ok := m2.Get(job.ID)
	if !ok {
		t.Fatal("recovered manager does not know the crashed job")
	}
	st := waitState(t, job2, StateDone)
	if st.Resumes < 1 {
		t.Errorf("recovered job reports %d resumes, want >= 1", st.Resumes)
	}
	drainManager(t, m2)

	// Bit-identity against the reference.
	refName, refMan, err := ckpt.LatestManifest(mRef.Store().CkptDir(refJob.ID))
	if err != nil {
		t.Fatal(err)
	}
	gotName, gotMan, err := ckpt.LatestManifest(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if gotName != refName || gotMan.Step != refMan.Step {
		t.Fatalf("final checkpoint %s step %d, reference %s step %d",
			gotName, gotMan.Step, refName, refMan.Step)
	}
	if gotMan.Time != refMan.Time || gotMan.Dt != refMan.Dt {
		t.Errorf("resumed trajectory diverged: t=%v dt=%v, reference t=%v dt=%v",
			gotMan.Time, gotMan.Dt, refMan.Time, refMan.Dt)
	}
	if len(gotMan.Shards) != len(refMan.Shards) {
		t.Fatalf("%d shards vs reference %d", len(gotMan.Shards), len(refMan.Shards))
	}
	for i, sh := range gotMan.Shards {
		ref := refMan.Shards[i]
		if sh.CRC32C != ref.CRC32C || sh.Bytes != ref.Bytes {
			t.Errorf("shard %d: crc %s (%d bytes) vs reference %s (%d bytes): not bit-identical",
				i, sh.CRC32C, sh.Bytes, ref.CRC32C, ref.Bytes)
		}
		got, err := os.ReadFile(filepath.Join(ckptDir, gotName, sh.File))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(mRef.Store().CkptDir(refJob.ID), refName, ref.File))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shard %d: raw bytes differ from the uninterrupted run", i)
		}
	}
}

// TestCancelWritesCheckpoint: cancelling a running job stops it at a step
// boundary with a fresh checkpoint and a terminal, closed stream.
func TestCancelWritesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, Options{})
	defer drainManager(t, m)
	spec := smallSpec(1000) // far more steps than we let it take
	spec.StepDelayMs = 10
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning)
	time.Sleep(50 * time.Millisecond)
	if err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, StateCancelled)
	if st.Step >= 1000 {
		t.Error("cancel did not interrupt the run")
	}
	name, man, err := ckpt.LatestManifest(m.Store().CkptDir(job.ID))
	if err != nil {
		t.Fatalf("cancelled run has no checkpoint: %v", err)
	}
	if int(man.Step) != st.Step {
		t.Errorf("pre-stop checkpoint %s at step %d, status says %d", name, man.Step, st.Step)
	}
	// The hub closes just after the status flips terminal; give it a beat.
	closedBy := time.Now().Add(5 * time.Second)
	for !job.Hub.Closed() {
		if time.Now().After(closedBy) {
			t.Fatal("hub still open after a terminal state")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPauseResume: pause parks the job resumably with its hub open;
// resume continues from the pause checkpoint to completion.
func TestPauseResume(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, Options{})
	defer drainManager(t, m)
	spec := smallSpec(12)
	spec.StepDelayMs = 10
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := job.Hub.Subscribe()
	go func() {
		for range w.C {
		}
	}()
	waitState(t, job, StateRunning)
	time.Sleep(30 * time.Millisecond)
	if err := m.Pause(job.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, StatePaused)
	if st.Step >= 12 {
		t.Fatal("pause landed after completion; raise the throttle")
	}
	if job.Hub.Closed() {
		t.Error("pause closed the hub; watchers must ride through the resume")
	}
	pausedAt := st.Step

	if err := m.Resume(job.ID); err != nil {
		t.Fatal(err)
	}
	st = waitState(t, job, StateDone)
	if st.Step != 12 {
		t.Errorf("resumed job finished at step %d, want 12", st.Step)
	}
	if st.Resumes < 1 {
		t.Errorf("resumed job reports %d resumes, want >= 1", st.Resumes)
	}
	if st.Step <= pausedAt {
		t.Error("no progress after resume")
	}
}

// TestSubmitValidation: doomed specs are rejected at the door, not
// queued.
func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Options{})
	defer drainManager(t, m)
	for _, tc := range []struct {
		name string
		spec JobSpec
	}{
		{"unknown workload", JobSpec{Workload: "warp-drive", Nx: 16, Ny: 24, Nz: 16, Steps: 1}},
		{"odd nx", JobSpec{Nx: 15, Ny: 24, Nz: 16, Steps: 1}},
		{"zero steps", JobSpec{Nx: 16, Ny: 24, Nz: 16}},
		{"negative dt", JobSpec{Nx: 16, Ny: 24, Nz: 16, Steps: 1, Dt: -1}},
		{"bad form", JobSpec{Nx: 16, Ny: 24, Nz: 16, Steps: 1, Form: "rotational"}},
		{"negative delay", JobSpec{Nx: 16, Ny: 24, Nz: 16, Steps: 1, StepDelayMs: -5}},
	} {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: submitted without error", tc.name)
		}
	}
	if _, total := m.List(0, 0); total != 0 {
		t.Errorf("%d jobs queued from invalid specs", total)
	}
}

// TestConstructionFailureFailsJob: specs that pass static validation but
// cannot construct (Ny below the B-spline degree floor) fail the job with
// a stored error instead of wedging a worker.
func TestConstructionFailureFailsJob(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Options{})
	defer drainManager(t, m)
	job, err := m.Submit(JobSpec{Nx: 16, Ny: 6, Nz: 16, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, StateFailed)
	if st.Error == "" {
		t.Error("failed job carries no error")
	}
}

// TestAPI drives the full HTTP surface end to end against a live
// httptest server: submit, list, get, long-poll stream, SSE stream,
// report, plane, metrics, cancel.
func TestAPI(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Options{})
	defer drainManager(t, m)
	ts := httptest.NewServer(NewAPI(m).Routes())
	defer ts.Close()

	// Bad spec → 400 with a JSON error.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nx":15}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid submit: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown field → 400 (strict decoding).
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"nx":16,"ny":24,"nz":16,"steps":2,"ckpt_evry":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("typoed field: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Good spec → 201 with the queued status.
	spec, _ := json.Marshal(smallSpec(6))
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: status %d id %q, want 201 with an id", resp.StatusCode, st.ID)
	}

	// SSE: attach while running, read until the terminal "end" marker.
	sseDone := make(chan map[string]int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
		if err != nil {
			sseDone <- nil
			return
		}
		defer resp.Body.Close()
		types := map[string]int{}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		for _, line := range strings.Split(buf.String(), "\n") {
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				types[name]++
			}
		}
		sseDone <- types
	}()

	// Long-poll until done, following the seq cursor.
	var after uint64
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?after=%d&wait=2s", ts.URL, st.ID, after))
		if err != nil {
			t.Fatal(err)
		}
		var batch struct {
			Events []Event `json:"events"`
			Open   bool    `json:"open"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, ev := range batch.Events {
			if ev.Seq <= after {
				t.Errorf("long-poll replayed seq %d at cursor %d", ev.Seq, after)
			}
			after = ev.Seq
		}
		if !batch.Open {
			break
		}
	}

	// The SSE side saw the same stream end.
	select {
	case types := <-sseDone:
		if types == nil {
			t.Fatal("SSE request failed")
		}
		if types["end"] == 0 {
			t.Errorf("SSE stream missing end marker: %v", types)
		}
		if types[EventStatus] == 0 {
			t.Errorf("SSE stream carried no status events: %v", types)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate with the job")
	}

	// GET status, report, plane, list, metrics.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone {
		t.Fatalf("job state %q, want done", st.State)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var rawRep bytes.Buffer
	rawRep.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	if _, err := telemetry.ValidateJSON(rawRep.Bytes()); err != nil {
		t.Errorf("served report invalid: %v", err)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/plane.png")
	if err != nil {
		t.Fatal(err)
	}
	var pngBuf bytes.Buffer
	pngBuf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.HasPrefix(pngBuf.Bytes(), []byte("\x89PNG")) {
		t.Errorf("plane.png: status %d, %d bytes", resp.StatusCode, pngBuf.Len())
	}

	resp, err = http.Get(ts.URL + "/v1/jobs?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs  []Status `json:"jobs"`
		Total int      `json:"total"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list.Total != 1 || len(list.Jobs) != 1 {
		t.Errorf("list: total %d with %d jobs, want 1/1", list.Total, len(list.Jobs))
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), `dnsserve_jobs{state="done"} 1`) {
		t.Errorf("metrics missing done-job gauge:\n%s", metrics.String())
	}

	// DELETE on a finished job is a accepted no-op; on an unknown id, 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("cancel finished job: status %d, want 202", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestIsotropicJob: the registry integration is workload-agnostic — an
// isotropic job runs, checkpoints, and finishes without channel-specific
// features (no plane frames).
func TestIsotropicJob(t *testing.T) {
	m := newTestManager(t, t.TempDir(), Options{})
	defer drainManager(t, m)
	job, err := m.Submit(JobSpec{
		Workload: "isotropic", Nx: 16, Ny: 16, Nz: 16,
		ReTau: 100, Dt: 1e-3, Steps: 4, CkptEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, StateDone)
	if st.Step != 4 {
		t.Errorf("final step %d, want 4", st.Step)
	}
	if _, _, ok := job.Plane(); ok {
		t.Error("isotropic job rendered a channel plane")
	}
	if _, man, err := ckpt.LatestManifest(m.Store().CkptDir(job.ID)); err != nil || man.Workload != "isotropic" {
		t.Errorf("isotropic checkpoint: %+v, err %v", man, err)
	}
}

// TestDiscoverRunsAndPrune: the discovery primitive `ckpt ls -runs` and
// restart recovery share, plus retention keeping non-terminal runs safe.
func TestDiscoverRunsAndPrune(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, Options{})
	ids := make([]*Job, 3)
	for i := range ids {
		var err error
		ids[i], err = m.Submit(smallSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, ids[i], StateDone)
	}
	drainManager(t, m)

	runs, err := DiscoverRuns(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("discovered %d runs, want 3", len(runs))
	}
	for i, ri := range runs {
		if ri.ID != i {
			t.Errorf("run %d has id %d (want ascending ids)", i, ri.ID)
		}
		if ri.Status.State != StateDone || ri.Resumable() {
			t.Errorf("run %d: state %q resumable=%v, want done/false", i, ri.Status.State, ri.Resumable())
		}
		if ri.Manifest == nil || ri.Manifest.Step != 2 {
			t.Errorf("run %d: latest manifest %+v, want step 2", i, ri.Manifest)
		}
		if ri.Spec.Nx != 16 {
			t.Errorf("run %d: spec not recovered: %+v", i, ri.Spec)
		}
	}

	rs, _ := NewRunStore(dir)
	removed, err := rs.Prune(1)
	if err != nil || removed != 2 {
		t.Fatalf("prune: removed %d err %v, want 2", removed, err)
	}
	runs, _ = DiscoverRuns(dir)
	if len(runs) != 1 || runs[0].ID != 2 {
		t.Errorf("after prune: %d runs (first id %d), want newest survivor only", len(runs), runs[0].ID)
	}
}
