package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"channeldns/internal/trace"
)

// The HTTP API, all JSON, all under /v1:
//
//	POST   /v1/jobs              submit a JobSpec, returns the job status
//	GET    /v1/jobs              list statuses (?offset=&limit=)
//	GET    /v1/jobs/{id}         one job's status
//	DELETE /v1/jobs/{id}         cancel (checkpoint + stop)
//	POST   /v1/jobs/{id}/pause   checkpoint + park (resumable)
//	POST   /v1/jobs/{id}/resume  re-enqueue a paused/interrupted job
//	GET    /v1/jobs/{id}/stream  live events: SSE, or long-poll with ?after=
//	GET    /v1/jobs/{id}/report  BENCH report (stored after completion, live before)
//	GET    /v1/jobs/{id}/plane.png  latest rendered field plane
//	GET    /v1/jobs/{id}/trace   Chrome trace of the current run attempt
//	GET    /metrics              Prometheus text: job states, watcher counts
//	GET    /healthz              liveness
//
// The stream endpoint speaks Server-Sent Events by default (each hub
// event becomes one SSE message with its type and sequence number) and
// falls back to long-poll JSON when the client passes ?after=N: the
// response is the batch of events with Seq > N, blocking up to ?wait=
// (default 30s) for the first one.

// API wraps a Manager with its HTTP surface.
type API struct {
	m *Manager
	// watcherConns counts currently attached stream clients (for /metrics).
	watcherConns atomic.Int64
}

// NewAPI builds the HTTP API over a manager.
func NewAPI(m *Manager) *API { return &API{m: m} }

// Routes returns the API's mux.
func (a *API) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("POST /v1/jobs/{id}/pause", a.pause)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", a.resume)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", a.stream)
	mux.HandleFunc("GET /v1/jobs/{id}/report", a.report)
	mux.HandleFunc("GET /v1/jobs/{id}/plane.png", a.plane)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.traceHandler)
	mux.HandleFunc("GET /metrics", a.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// jobFrom resolves the {id} path value ("job-000042" or a bare number).
func (a *API) jobFrom(r *http.Request) (*Job, error) {
	raw := r.PathValue("id")
	id := runDirID(raw)
	if id < 0 {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad job id %q", raw)
		}
		id = n
	}
	job, ok := a.m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := decodeSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := a.m.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, job.Status())
	case err == ErrQueueFull:
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 {
		limit = 50
	}
	jobs, total := a.m.List(offset, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": jobs, "total": total, "offset": offset, "limit": limit,
	})
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := a.m.Cancel(job.ID); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (a *API) pause(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := a.m.Pause(job.ID); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (a *API) resume(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := a.m.Resume(job.ID); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (a *API) stream(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	a.watcherConns.Add(1)
	defer a.watcherConns.Add(-1)
	if r.URL.Query().Has("after") {
		a.longPoll(w, r, job)
		return
	}
	a.sse(w, r, job)
}

// longPoll answers one batch of events with Seq > after, waiting up to
// ?wait= (default 30s, capped at 5m) for the first. The fallback for
// clients without SSE: poll in a loop, threading the last seen seq.
func (a *API) longPoll(w http.ResponseWriter, r *http.Request, job *Job) {
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
		return
	}
	wait := 30 * time.Second
	if ws := r.URL.Query().Get("wait"); ws != "" {
		if wait, err = time.ParseDuration(ws); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait: %w", err))
			return
		}
		wait = min(wait, 5*time.Minute)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	events, open := job.Hub.Wait(ctx, after)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": events, "open": open})
}

// sse streams hub events as Server-Sent Events until the job's stream
// closes, the client goes away, or the hub drops us for falling behind.
func (a *API) sse(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	watcher, replay := job.Hub.Subscribe()
	if watcher == nil {
		// Stream already ended; replay the terminal state as a single batch.
		events, _ := job.Hub.Since(0)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		for _, ev := range events {
			writeSSE(w, ev)
		}
		fmt.Fprintf(w, "event: end\ndata: {}\n\n")
		fl.Flush()
		return
	}
	defer job.Hub.Unsubscribe(watcher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	// Don't let the server's write timeout kill a healthy stream: the
	// deadline is pushed on every write below.
	rc := http.NewResponseController(w)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-watcher.C:
			if !open {
				if watcher.Dropped() {
					fmt.Fprintf(w, "event: dropped\ndata: {\"reason\":\"slow consumer\"}\n\n")
				} else {
					fmt.Fprintf(w, "event: end\ndata: {}\n\n")
				}
				fl.Flush()
				return
			}
			rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev Event) {
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, ev.Data)
}

// report serves the stored report.json of a finished job, or a live
// report built from the current run attempt's registry.
func (a *API) report(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	path := filepath.Join(a.m.Store().Dir(job.ID), "report.json")
	if data, err := os.ReadFile(path); err == nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	rep := job.LiveReport()
	if rep == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%s has not run yet", RunID(job.ID)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rep.Encode(w); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func (a *API) plane(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	png, frame, ok := job.Plane()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%s has no rendered plane (single-rank channel workloads only)", RunID(job.ID)))
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Plane-Step", strconv.Itoa(frame.Step))
	w.Write(png)
}

func (a *API) traceHandler(w http.ResponseWriter, r *http.Request) {
	job, err := a.jobFrom(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	trc := job.LiveTrace()
	if trc == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%s has no trace (submit with \"trace\": true)", RunID(job.ID)))
		return
	}
	trace.Handler(trc).ServeHTTP(w, r)
}

// metrics emits Prometheus text: job counts by state, stream watcher
// connections, and per-running-job step positions.
func (a *API) metrics(w http.ResponseWriter, _ *http.Request) {
	statuses, total := a.m.List(0, 0)
	byState := map[string]int{}
	for _, st := range statuses {
		byState[st.State]++
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP dnsserve_jobs_total Jobs known to this server.\n")
	fmt.Fprintf(w, "# TYPE dnsserve_jobs_total gauge\n")
	fmt.Fprintf(w, "dnsserve_jobs_total %d\n", total)
	fmt.Fprintf(w, "# HELP dnsserve_jobs Jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE dnsserve_jobs gauge\n")
	for _, state := range []string{StateQueued, StateRunning, StatePaused, StateDone, StateFailed, StateCancelled, StateInterrupted} {
		fmt.Fprintf(w, "dnsserve_jobs{state=%q} %d\n", state, byState[state])
	}
	fmt.Fprintf(w, "# HELP dnsserve_stream_watchers Attached stream clients.\n")
	fmt.Fprintf(w, "# TYPE dnsserve_stream_watchers gauge\n")
	fmt.Fprintf(w, "dnsserve_stream_watchers %d\n", a.watcherConns.Load())
	fmt.Fprintf(w, "# HELP dnsserve_job_step Current step of non-terminal jobs.\n")
	fmt.Fprintf(w, "# TYPE dnsserve_job_step gauge\n")
	for _, st := range statuses {
		if !terminalState(st.State) {
			fmt.Fprintf(w, "dnsserve_job_step{job=%q} %d\n", st.ID, st.Step)
		}
	}
}
