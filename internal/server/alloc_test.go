package server

import (
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/telemetry"
)

// stepAllocBudget mirrors the documented hot-path bound from
// internal/core's alloc tests: a warm serial RK3 step allocates only the
// worker-pool closure headers, ~21 objects on a nil pool, budget 64.
const stepAllocBudget = 64

// benchSolver builds a warm single-rank channel workload the way the
// manager does — from a JobSpec through the workload registry, with a
// telemetry registry attached — and returns it ready for steady-state
// measurement.
func benchSolver(tb testing.TB) (core.Workload, *telemetry.Registry, func()) {
	tb.Helper()
	spec := JobSpec{Nx: 16, Ny: 24, Nz: 16, Dt: 1e-3, Steps: 1}
	reg := telemetry.NewRegistry()
	cfg := spec.Config(nil, reg, nil)
	var wl core.Workload
	mpi.Run(1, func(c *mpi.Comm) {
		var err error
		wl, err = core.NewWorkload(c, cfg)
		if err != nil {
			tb.Error(err)
			return
		}
		wl.InitDefault(0.2, 13)
		// Warm up: transpose plans, Galerkin caches, operator cache.
		wl.Advance(2)
	})
	if wl == nil {
		tb.Fatal("workload construction failed")
	}
	return wl, reg, func() {}
}

// TestStepAllocsWithWatchers is the tentpole's hot-path isolation bar:
// the service must observe its runs — registry attached, hub carrying
// live watchers, status/telemetry/plane events flowing between steps —
// without adding a single allocation *inside* the step. The warm step
// with 100 attached watchers must allocate exactly what it allocates with
// none, and stay within the documented budget.
func TestStepAllocsWithWatchers(t *testing.T) {
	wl, reg, cleanup := benchSolver(t)
	defer cleanup()

	base := testing.AllocsPerRun(5, func() { wl.StepOnce() })

	h := NewHub(64, 256)
	watchers := make([]*Watcher, 100)
	for i := range watchers {
		watchers[i], _ = h.Subscribe()
	}
	drain := func() {
		for _, w := range watchers {
			for {
				select {
				case <-w.C:
					continue
				default:
				}
				break
			}
		}
	}
	// Publish a realistic between-steps burst so the streaming machinery is
	// warm and the watchers hold live buffers during the measurement.
	prev := reg.Snapshot()
	publish := func() {
		h.Publish(EventStatus, Status{Step: wl.CurrentStep(), Time: wl.CurrentTime()})
		cur := reg.Snapshot()
		if d := telemetry.DeltaSnapshot(&prev, &cur); !d.Empty() {
			h.Publish(EventTelemetry, d)
		}
		prev = cur
	}
	publish()

	withWatchers := testing.AllocsPerRun(5, func() { wl.StepOnce() })
	publish()
	drain()
	h.Close()

	if withWatchers != base {
		t.Errorf("StepOnce allocates %v with 100 watchers attached vs %v bare: streaming leaked into the hot path",
			withWatchers, base)
	}
	if withWatchers > stepAllocBudget {
		t.Errorf("StepOnce with watchers: %v allocs per step, budget %d", withWatchers, stepAllocBudget)
	}
	t.Logf("StepOnce: %v allocs bare, %v with 100 watchers (budget %d)", base, withWatchers, stepAllocBudget)
}
