package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"channeldns/internal/ckpt"
	"channeldns/internal/core"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// The job manager owns the queue and the lifecycle. Submitted jobs wait
// in a bounded FIFO channel; a configurable number of worker goroutines
// pull from it and run one job at a time through mpi.Run on the
// in-process transport. Stops (cancel, pause, drain) are delivered
// through a per-job flag that rank 0 reads between steps and broadcasts,
// so every rank leaves the step loop together and the pre-stop
// checkpoint is a clean collective. Nothing the manager does runs inside
// a solver step: publishing, persistence and plane rendering all happen
// strictly between steps, which is what keeps the hot path at its serial
// allocation budget no matter how many watchers are attached.

// Stop requests, in escalation order. The first stop wins
// (CompareAndSwap), so a drain cannot demote a cancel.
const (
	stopNone int32 = iota
	stopCancel
	stopPause
	stopDrain
	// stopCrash aborts the run attempt writing NOTHING — no checkpoint, no
	// status, no report — leaving the on-disk record exactly as a SIGKILL
	// would. Test-only: it is how the recovery test simulates the crash
	// half of kill -9 without leaving the process.
	stopCrash
)

// Job is one submitted run: its identity, spec, latest status, and the
// stream hub its watchers attach to.
type Job struct {
	ID   int
	Spec JobSpec // defaults resolved
	Hub  *Hub

	mu     sync.Mutex
	status Status

	stop atomic.Int32
	// plane holds the latest rendered PNG frame (single-rank channel
	// workloads only).
	plane atomic.Pointer[planeData]
	// live holds the instrumentation of the current run attempt, for the
	// per-run /telemetry and /trace endpoints.
	live atomic.Pointer[liveRun]
}

type planeData struct {
	png   []byte
	frame PlaneFrame
}

type liveRun struct {
	reg *telemetry.Registry
	trc *trace.Trace
}

// Status returns a copy of the job's current status.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *Job) update(f func(*Status)) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	f(&j.status)
	return j.status
}

// requestStop records the first stop request; later, different requests
// lose. Returns the winning kind.
func (j *Job) requestStop(kind int32) int32 {
	if j.stop.CompareAndSwap(stopNone, kind) {
		return kind
	}
	return j.stop.Load()
}

// Plane returns the latest rendered plane PNG and its descriptor.
func (j *Job) Plane() ([]byte, PlaneFrame, bool) {
	pd := j.plane.Load()
	if pd == nil {
		return nil, PlaneFrame{}, false
	}
	return pd.png, pd.frame, true
}

// LiveReport builds a BENCH report from the job's current run attempt
// (nil when the job has not started running).
func (j *Job) LiveReport() *telemetry.Report {
	lr := j.live.Load()
	if lr == nil {
		return nil
	}
	return j.buildReport(lr)
}

func (j *Job) buildReport(lr *liveRun) *telemetry.Report {
	rep := telemetry.NewReport("serve", lr.reg, j.Spec.ConfigMap())
	if lr.trc != nil {
		rep.Trace = trace.Summarize(lr.trc)
	}
	if form, err := core.ParseForm(j.Spec.Form); err == nil && form == core.FormDivergence {
		if sched, err := core.WorkloadSchedule(j.Spec.Config(nil, nil, nil)); err == nil {
			rep.Schedule = sched
		}
	}
	return rep
}

// LiveTrace returns the run attempt's flight recorder (nil when tracing
// is off or the job has not started).
func (j *Job) LiveTrace() *trace.Trace {
	lr := j.live.Load()
	if lr == nil {
		return nil
	}
	return lr.trc
}

// Options configures a Manager.
type Options struct {
	// Parallel is the number of jobs running concurrently (0 selects 1).
	Parallel int
	// Queue is the submit queue capacity (0 selects 16); Submit fails
	// when the queue is full.
	Queue int
	// Keep is the terminal-run retention of the store: after each job
	// finishes, the oldest terminal runs beyond Keep are pruned
	// (0 keeps everything).
	Keep int
	// WatcherBuf and RingCap size each job's hub (0 selects the hub
	// defaults).
	WatcherBuf int
	RingCap    int
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("server: job queue full")

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("server: no such job")

// Manager runs jobs against one RunStore.
type Manager struct {
	store *RunStore
	opts  Options

	mu   sync.Mutex
	jobs map[int]*Job

	queue    chan *Job
	wg       sync.WaitGroup
	draining atomic.Bool
}

// NewManager creates a manager over the run store rooted at dir and
// starts its workers. Call Recover before accepting traffic to re-enqueue
// runs a previous server instance left unfinished.
func NewManager(dir string, opts Options) (*Manager, error) {
	rs, err := NewRunStore(dir)
	if err != nil {
		return nil, err
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	m := &Manager{
		store: rs,
		opts:  opts,
		jobs:  make(map[int]*Job),
		queue: make(chan *Job, opts.Queue),
	}
	for i := 0; i < opts.Parallel; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Store returns the manager's run store.
func (m *Manager) Store() *RunStore { return m.store }

func (m *Manager) newJob(id int, spec JobSpec, st Status) *Job {
	return &Job{
		ID:     id,
		Spec:   spec.withDefaults(),
		Hub:    NewHub(m.opts.WatcherBuf, m.opts.RingCap),
		status: st,
	}
}

// Recover rediscovers the run store's contents after a restart:
// terminal runs are registered for listing, paused runs wait for an
// explicit resume, and every run whose persisted state says it still
// owes steps — queued, running (the server died mid-flight), or
// interrupted (a graceful drain) — is re-enqueued in id order and will
// resume from its latest checkpoint manifest.
func (m *Manager) Recover() error {
	runs, err := DiscoverRuns(m.store.root)
	if err != nil {
		return err
	}
	for _, ri := range runs {
		job := m.newJob(ri.ID, ri.Spec, ri.Status)
		m.mu.Lock()
		m.jobs[ri.ID] = job
		m.mu.Unlock()
		switch {
		case terminalState(ri.Status.State):
			job.Hub.Close()
		case ri.Status.State == StatePaused:
			m.opts.Logf("recovered %s: paused at step %d", RunID(ri.ID), ri.Status.Step)
		default:
			st := job.update(func(st *Status) { st.State = StateQueued })
			if err := m.store.WriteStatus(ri.ID, st); err != nil {
				return err
			}
			select {
			case m.queue <- job:
				m.opts.Logf("recovered %s: re-enqueued (was %q, checkpoint %q step %d)",
					RunID(ri.ID), ri.Status.State, ri.CkptName, ri.Status.Step)
			default:
				return fmt.Errorf("recover %s: %w", RunID(ri.ID), ErrQueueFull)
			}
		}
	}
	return nil
}

// Submit validates a spec, materializes its run directory and enqueues
// it. Returns the new job or ErrQueueFull.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Checked under the lock: Drain closes the queue while holding it, so a
	// submit cannot race the close.
	if m.draining.Load() {
		return nil, errors.New("server: draining, not accepting jobs")
	}
	id, err := m.store.NextID()
	if err != nil {
		return nil, err
	}
	st := Status{
		ID:        RunID(id),
		State:     StateQueued,
		Dt:        spec.withDefaults().Dt,
		Submitted: time.Now().UTC(),
	}
	job := m.newJob(id, spec, st)
	// Materialize the run directory before the job becomes visible to a
	// worker: the run loop persists into it from its first moments.
	if err := m.store.Create(id, job.Spec, st); err != nil {
		return nil, err
	}
	select {
	case m.queue <- job:
	default:
		os.RemoveAll(m.store.Dir(id))
		return nil, ErrQueueFull
	}
	m.jobs[id] = job
	m.opts.Logf("submitted %s: %s %dx%dx%d, %d steps",
		st.ID, job.Spec.Workload, job.Spec.Nx, job.Spec.Ny, job.Spec.Nz, job.Spec.Steps)
	return job, nil
}

// Get returns a job by numeric id.
func (m *Manager) Get(id int) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns statuses newest-first, with offset/limit pagination, plus
// the total number of jobs.
func (m *Manager) List(offset, limit int) ([]Status, int) {
	m.mu.Lock()
	ids := make([]int, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	total := len(ids)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	ids = ids[offset:]
	if limit > 0 && limit < len(ids) {
		ids = ids[:limit]
	}
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.Get(id); ok {
			out = append(out, j.Status())
		}
	}
	return out, total
}

// Cancel requests a job stop. A running job checkpoints and stops at the
// next step boundary; a queued job is dropped when a worker reaches it
// (and marked cancelled immediately); paused jobs go terminal on the
// spot. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id int) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	job.requestStop(stopCancel)
	st := job.Status()
	if st.State == StateQueued || st.State == StatePaused {
		m.finalize(job, StateCancelled, nil)
	}
	return nil
}

// Pause requests a running job to checkpoint and stop without going
// terminal; its hub stays open so watchers ride through the resume.
func (m *Manager) Pause(id int) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	if job.Status().State != StateRunning {
		return fmt.Errorf("server: %s is not running", RunID(id))
	}
	job.requestStop(stopPause)
	return nil
}

// Resume re-enqueues a paused (or interrupted) job; it continues from
// its latest checkpoint.
func (m *Manager) Resume(id int) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	st := job.Status()
	if st.State != StatePaused && st.State != StateInterrupted {
		return fmt.Errorf("server: %s is %s, not resumable", RunID(id), st.State)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining.Load() {
		return errors.New("server: draining, not accepting jobs")
	}
	job.stop.Store(stopNone)
	newSt := job.update(func(s *Status) { s.State = StateQueued })
	if err := m.store.WriteStatus(id, newSt); err != nil {
		return err
	}
	select {
	case m.queue <- job:
		job.Hub.Publish(EventState, newSt)
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain stops the manager for a graceful shutdown: no new submissions,
// running jobs checkpoint and park as "interrupted", queued jobs keep
// their persisted "queued" state — all of them re-enqueue on the next
// start. Blocks until the workers exit or ctx expires.
func (m *Manager) Drain(ctx context.Context) error {
	if !m.draining.CompareAndSwap(false, true) {
		return nil
	}
	m.mu.Lock()
	for _, job := range m.jobs {
		if job.Status().State == StateRunning {
			job.requestStop(stopDrain)
		}
	}
	close(m.queue)
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		if m.draining.Load() {
			// Graceful shutdown: leave the persisted "queued" state for the
			// next server instance to recover.
			continue
		}
		if terminalState(job.Status().State) || job.stop.Load() == stopCancel {
			m.finalize(job, StateCancelled, nil)
			continue
		}
		m.runJob(job)
	}
}

// runResult carries what rank 0 learned out of the mpi.Run world.
type runResult struct {
	err     error
	stopped int32
}

func (m *Manager) runJob(job *Job) {
	sp := job.Spec
	threads := sp.Threads
	if threads < 1 {
		threads = 1
	}
	pool := par.NewPool(threads)
	defer pool.Close()
	reg := telemetry.NewRegistry()
	var trc *trace.Trace
	if sp.Trace {
		trc = trace.New(0)
	}
	job.live.Store(&liveRun{reg: reg, trc: trc})

	now := time.Now().UTC()
	st := job.update(func(s *Status) {
		s.State = StateRunning
		s.Started = &now
		s.Error = ""
	})
	if err := m.store.WriteStatus(job.ID, st); err != nil {
		m.finalize(job, StateFailed, err)
		return
	}
	job.Hub.Publish(EventState, st)
	m.opts.Logf("running %s", st.ID)

	var res runResult
	mpi.Run(sp.PA*sp.PB, func(c *mpi.Comm) {
		m.runRanks(c, job, pool, reg, trc, &res)
	})

	if res.stopped == stopCrash {
		// Simulated SIGKILL: the on-disk record must look exactly as an
		// abrupt process death would leave it, so touch nothing.
		return
	}
	switch {
	case res.err != nil:
		m.finalize(job, StateFailed, res.err)
	case res.stopped == stopCancel:
		m.finalize(job, StateCancelled, nil)
	case res.stopped == stopPause:
		m.finalize(job, StatePaused, nil)
	case res.stopped == stopDrain:
		m.finalize(job, StateInterrupted, nil)
	default:
		if err := m.writeArtifacts(job, trc); err != nil {
			m.finalize(job, StateFailed, err)
			return
		}
		m.finalize(job, StateDone, nil)
	}
}

// runRanks is the per-rank body of one run attempt. Everything here is
// lockstep: the stop flag is read by rank 0 and broadcast, so all ranks
// agree on every branch; status lines and checkpoints are collectives
// driven by deterministic step counts. Rank 0 alone touches the job
// record, the store and the hub.
func (m *Manager) runRanks(c *mpi.Comm, job *Job, pool *par.Pool, reg *telemetry.Registry, trc *trace.Trace, res *runResult) {
	sp := job.Spec
	root := c.Rank() == 0
	cfg := sp.Config(pool, reg, trc)
	wl, err := core.NewWorkload(c, cfg)
	if err != nil {
		// Construction is deterministic in cfg: every rank fails alike.
		if root {
			res.err = err
		}
		return
	}
	var solver *core.Solver
	if c.Size() == 1 {
		if cf, ok := wl.(core.ChannelFlow); ok {
			solver = cf.ChannelSolver()
		}
	}
	store := wl.NewCheckpointStore(m.store.CkptDir(job.ID), sp.CkptKeep)

	// A fresh job has no checkpoint and seeds the canonical initial
	// condition; a recovered or resumed one continues from its latest
	// manifest (falling back past corrupt checkpoints inside Resume).
	switch name, rerr := wl.ResumeLatest(store); {
	case rerr == nil:
		if root {
			st := job.update(func(s *Status) {
				s.Resumes++
				s.Checkpoint = name
				s.Step = wl.CurrentStep()
				s.Time = wl.CurrentTime()
				s.Dt = wl.CurrentDt()
			})
			m.persist(job.ID, st)
			job.Hub.Publish(EventStatus, st)
			m.opts.Logf("%s: resumed from %s (step %d, t=%.6g)",
				RunID(job.ID), name, wl.CurrentStep(), wl.CurrentTime())
		}
	case errors.Is(rerr, ckpt.ErrNoCheckpoint):
		wl.InitDefault(sp.Perturb, sp.Seed)
	default:
		if root {
			res.err = fmt.Errorf("resume: %w", rerr)
		}
		return
	}

	prevSnap := reg.Snapshot()
	writeCkpt := func() bool {
		name, cerr := wl.WriteCheckpoint(store)
		if cerr != nil {
			if root {
				res.err = fmt.Errorf("checkpoint: %w", cerr)
			}
			return false
		}
		if root {
			st := job.update(func(s *Status) {
				s.Checkpoint = name
				s.Step = wl.CurrentStep()
				s.Time = wl.CurrentTime()
				s.Dt = wl.CurrentDt()
			})
			m.persist(job.ID, st)
		}
		return true
	}
	statusTick := func() {
		line := wl.StatusLine() // collective: all ranks call
		if !root {
			return
		}
		st := job.update(func(s *Status) {
			s.Step = wl.CurrentStep()
			s.Time = wl.CurrentTime()
			s.Dt = wl.CurrentDt()
			s.Line = line
		})
		m.persist(job.ID, st)
		job.Hub.Publish(EventStatus, st)
		cur := reg.Snapshot()
		if d := telemetry.DeltaSnapshot(&prevSnap, &cur); !d.Empty() {
			job.Hub.Publish(EventTelemetry, d)
		}
		prevSnap = cur
	}

	lastCkpt := -1
	stopped := stopNone // per-rank copy of the broadcast stop decision
	for wl.CurrentStep() < sp.Steps {
		flag := stopNone
		if root {
			flag = job.stop.Load()
		}
		flag = int32(mpi.Bcast(c, 0, []int{int(flag)})[0])
		if flag != stopNone {
			stopped = flag
			if root {
				res.stopped = flag
			}
			if flag == stopCrash {
				return // abort without any checkpoint or status write
			}
			break
		}
		if sp.TargetCFL > 0 {
			wl.AdvanceAdaptive(1, sp.TargetCFL, 5)
		} else {
			wl.StepOnce()
		}
		n := wl.CurrentStep()
		final := n >= sp.Steps
		if (sp.CkptEvery > 0 && n%sp.CkptEvery == 0 && n != lastCkpt) || (final && n != lastCkpt) {
			if !writeCkpt() {
				return
			}
			lastCkpt = n
		}
		if n%sp.StatusEvery == 0 || final {
			statusTick()
		}
		if solver != nil && sp.PlaneEvery > 0 && n%sp.PlaneEvery == 0 {
			png, frame := renderPlane(solver, n)
			job.plane.Store(&planeData{png: png, frame: frame})
			job.Hub.Publish(EventPlane, frame)
		}
		if sp.StepDelayMs > 0 {
			time.Sleep(time.Duration(sp.StepDelayMs) * time.Millisecond)
		}
	}
	// A cancel, pause or drain parks the run resumably: checkpoint before
	// stopping (the step loop's broadcast means every rank agrees).
	if stopped != stopNone && wl.CurrentStep() != lastCkpt {
		writeCkpt()
	}
}

// persist writes status.json, logging (not failing) on error — the
// in-memory status remains authoritative while the server lives.
func (m *Manager) persist(id int, st Status) {
	if err := m.store.WriteStatus(id, st); err != nil {
		m.opts.Logf("%s: persist status: %v", RunID(id), err)
	}
}

// writeArtifacts stores the final BENCH report (and trace, if recorded)
// of a completed job.
func (m *Manager) writeArtifacts(job *Job, trc *trace.Trace) error {
	dir := m.store.Dir(job.ID)
	rep := job.LiveReport()
	if rep != nil {
		if err := rep.WriteFile(filepath.Join(dir, "report.json")); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if trc != nil {
		if err := trc.WriteChromeFile(filepath.Join(dir, "trace.json")); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// finalize moves a job to its post-run state, persists it, tells the
// watchers, and (for terminal states) closes the stream and applies
// retention. Paused jobs keep their hub open for the resume.
func (m *Manager) finalize(job *Job, state string, cause error) {
	now := time.Now().UTC()
	st := job.update(func(s *Status) {
		s.State = state
		if cause != nil {
			s.Error = cause.Error()
		}
		if terminalState(state) {
			s.Finished = &now
		}
	})
	m.persist(job.ID, st)
	job.Hub.Publish(EventState, st)
	if state != StatePaused {
		job.Hub.Close()
	}
	if cause != nil {
		m.opts.Logf("%s: %s: %v", st.ID, state, cause)
	} else {
		m.opts.Logf("%s: %s at step %d", st.ID, state, st.Step)
	}
	if terminalState(state) && m.opts.Keep > 0 {
		if _, err := m.store.Prune(m.opts.Keep); err != nil {
			m.opts.Logf("prune: %v", err)
		}
		m.mu.Lock()
		for id := range m.jobs {
			if id == job.ID {
				continue
			}
			// Drop map entries whose directories were pruned.
			if _, err := m.store.LoadStatus(id); err != nil {
				delete(m.jobs, id)
			}
		}
		m.mu.Unlock()
	}
}
