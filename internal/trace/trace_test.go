package trace

import (
	"sync"
	"testing"
	"time"

	"channeldns/internal/telemetry"
)

// at returns an instant offset from a trace's epoch, for deterministic
// synthetic events.
func at(tr *Trace, d time.Duration) time.Time { return tr.Epoch().Add(d) }

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	now := time.Now()
	r.TraceSpan(telemetry.PhaseNonlinear, now, now)
	r.Exchange(telemetry.CommYtoZ, 64, now, now)
	r.Peer(1, 64, now, now)
	r.BeginStep(3)
	r.SetStage(1)
	r.EndStep(now, now)
	if r.Recorded() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Rank() != 0 {
		t.Error("nil recorder must be inert")
	}
}

func TestRecordDecodeRoundTrip(t *testing.T) {
	tr := New(16)
	r := tr.Rank(2)
	r.BeginStep(7)
	r.SetStage(1)
	r.TraceSpan(telemetry.PhaseFFTForward, at(tr, 10*time.Microsecond), at(tr, 30*time.Microsecond))
	r.Exchange(telemetry.CommZtoX, 4096, at(tr, 40*time.Microsecond), at(tr, 50*time.Microsecond))
	r.Peer(3, 512, at(tr, 41*time.Microsecond), at(tr, 44*time.Microsecond))
	r.SetStage(-1)
	r.EndStep(at(tr, 0), at(tr, 60*time.Microsecond))

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Sorted by start: step (starts at 0), phase, exchange, peer — but
	// exchange starts at 40us and peer at 41us.
	if evs[0].Kind != KindStep || evs[0].Step != 7 || evs[0].Stage != -1 {
		t.Errorf("step event decoded as %+v", evs[0])
	}
	if evs[0].Dur != 60*time.Microsecond {
		t.Errorf("step dur = %v", evs[0].Dur)
	}
	ph := evs[1]
	if ph.Kind != KindPhase || ph.Phase != telemetry.PhaseFFTForward ||
		ph.Stage != 1 || ph.Step != 7 || ph.Peer != -1 {
		t.Errorf("phase event decoded as %+v", ph)
	}
	if ph.Start != 10*time.Microsecond || ph.Dur != 20*time.Microsecond {
		t.Errorf("phase timing %v + %v", ph.Start, ph.Dur)
	}
	ex := evs[2]
	if ex.Kind != KindExchange || ex.Op != telemetry.CommZtoX || ex.Bytes != 4096 {
		t.Errorf("exchange event decoded as %+v", ex)
	}
	pe := evs[3]
	if pe.Kind != KindPeer || pe.Peer != 3 || pe.Bytes != 512 {
		t.Errorf("peer event decoded as %+v", pe)
	}
	if r.Recorded() != 4 || r.Dropped() != 0 {
		t.Errorf("recorded=%d dropped=%d", r.Recorded(), r.Dropped())
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	tr := New(8)
	r := tr.Rank(0)
	for i := 0; i < 20; i++ {
		r.TraceSpan(telemetry.PhaseNonlinear,
			at(tr, time.Duration(i)*time.Microsecond),
			at(tr, time.Duration(i+1)*time.Microsecond))
	}
	if got := r.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d resident events, want 8", len(evs))
	}
	// Flight-recorder semantics: the newest 8 survive, oldest first.
	for i, ev := range evs {
		want := time.Duration(12+i) * time.Microsecond
		if ev.Start != want {
			t.Errorf("event %d start %v, want %v", i, ev.Start, want)
		}
	}
	if tr.Dropped() != 12 {
		t.Errorf("Trace.Dropped = %d", tr.Dropped())
	}
}

func TestDefaultCapacityAndRankReuse(t *testing.T) {
	tr := New(0)
	if tr.Capacity() != DefaultCapacity {
		t.Fatalf("capacity %d", tr.Capacity())
	}
	if tr.Rank(3) != tr.Rank(3) {
		t.Error("Rank must return the same recorder per rank")
	}
	if tr.Ranks() != 4 {
		t.Errorf("Ranks = %d, want 4 (slots 0..3)", tr.Ranks())
	}
	ev := tr.Events()
	if len(ev) != 4 || ev[0] != nil || ev[3] == nil {
		t.Error("Events must mirror rank slots: nil gaps, empty non-nil for registered")
	}
}

// TestRecordAllocFree: after the ring exists, recording an event performs
// zero heap allocations — the bound the ISSUE's "allocations bounded by
// ring capacity" acceptance rests on.
func TestRecordAllocFree(t *testing.T) {
	if telemetry.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tr := New(64)
	r := tr.Rank(0)
	t0, t1 := at(tr, 0), at(tr, time.Microsecond)
	allocs := testing.AllocsPerRun(100, func() {
		r.TraceSpan(telemetry.PhaseNonlinear, t0, t1)
		r.Exchange(telemetry.CommYtoZ, 128, t0, t1)
		r.Peer(1, 128, t0, t1)
		r.EndStep(t0, t1)
	})
	if allocs != 0 {
		t.Errorf("recording allocates %v objects per 4 events, want 0", allocs)
	}
}

// TestConcurrentRecordSnapshot drives writers and snapshot readers at the
// same time (the /trace endpoint against a live run). Under -race this is
// the seqlock's cleanliness proof; in any mode decoded events must be
// internally consistent, never torn.
func TestConcurrentRecordSnapshot(t *testing.T) {
	tr := New(32)
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		r := tr.Rank(w)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := time.Duration(rank+1) * time.Microsecond
				s := time.Duration(i) * time.Microsecond
				r.TraceSpan(telemetry.PhaseTransposeAB, at(tr, s), at(tr, s+d))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for rank, evs := range tr.Events() {
			for _, ev := range evs {
				if ev.Kind != KindPhase || ev.Phase != telemetry.PhaseTransposeAB {
					t.Fatalf("rank %d: torn event %+v", rank, ev)
				}
				// Writer invariant: dur encodes the rank, start the index.
				if ev.Dur != time.Duration(rank+1)*time.Microsecond {
					t.Fatalf("rank %d: event carries dur %v — cross-rank tear", rank, ev.Dur)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventsSortedByStart(t *testing.T) {
	tr := New(16)
	r := tr.Rank(0)
	// Recorded at end time, so a long span lands after short ones that
	// started later; the snapshot must come back in start order.
	r.TraceSpan(telemetry.PhaseFFTForward, at(tr, 5*time.Microsecond), at(tr, 6*time.Microsecond))
	r.TraceSpan(telemetry.PhaseNonlinear, at(tr, 1*time.Microsecond), at(tr, 9*time.Microsecond))
	evs := r.Events()
	if len(evs) != 2 || evs[0].Phase != telemetry.PhaseNonlinear {
		t.Fatalf("events not start-ordered: %+v", evs)
	}
}
