package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"channeldns/internal/telemetry"
)

// Whole-world trace merging. A distributed run writes one Chrome trace
// file per rank, each with timestamps relative to its own process's epoch
// and an estimated clock offset against rank 0 in the file metadata
// (Trace.SetClockSync). ParseChrome reads one such file back into decoded
// events; Merge translates every rank's events onto rank 0's timeline —
// aligned start = (epoch + offset + event start) − rank 0's epoch — and
// produces a single Perfetto file with one track per rank plus flow
// arrows ("s"/"t"/"f" events sharing an id) linking the matched transpose
// exchange windows across ranks, so the eye can follow one alltoallv
// through the world. The aligned per-rank events also feed the existing
// critical-path analyzer (Analyze) a whole-world view.
//
// Alignment caveat: offsets come from RTT ping-pong estimation with error
// bound RTT/2 (mpi.SyncClocks), so cross-rank orderings tighter than the
// bound are not trustworthy — an exchange may appear to end before its
// peer's matching window opens. Within a rank, order is exact.

// RankTrace is one rank's trace file decoded for merging.
type RankTrace struct {
	// Rank and World are the identity stamped at export (satellite of the
	// -listen header); World is 0 for files from undistributed runs.
	Rank, World int
	// EpochUnixNs is the rank's trace epoch on its own wall clock.
	EpochUnixNs int64
	// OffsetNs/ErrorNs are the stamped clock alignment against rank 0.
	OffsetNs, ErrorNs int64
	// Events are the decoded events, starts relative to the rank's epoch.
	Events []Event
}

// ParseChrome decodes one rank's exported Chrome trace file back into
// events, inverting the export's name scheme. Files without the
// clock_epoch_unix_ns metadata (pre-distributed-observability exports)
// are rejected: they cannot be placed on a shared timeline.
func ParseChrome(raw []byte) (*RankTrace, error) {
	var f chromeFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	rt := &RankTrace{}
	meta := func(key string) (int64, bool) {
		s, ok := f.OtherData[key]
		if !ok {
			return 0, false
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	epoch, ok := meta("clock_epoch_unix_ns")
	if !ok {
		return nil, fmt.Errorf("trace: file carries no clock_epoch_unix_ns metadata (exported before clock alignment?)")
	}
	rt.EpochUnixNs = epoch
	if v, ok := meta("clock_rank"); ok {
		rt.Rank = int(v)
	}
	if v, ok := meta("clock_world"); ok {
		rt.World = int(v)
	}
	rt.OffsetNs, _ = meta("clock_offset_ns")
	rt.ErrorNs, _ = meta("clock_error_ns")

	for i, ce := range f.TraceEvents {
		if ce.Ph != "X" {
			continue // metadata and (in already-merged files) flow events
		}
		ev := Event{
			Start: time.Duration(ce.Ts * 1e3),
			Stage: -1,
			Peer:  -1,
			Step:  ce.Args["step"],
		}
		if ce.Dur != nil {
			ev.Dur = time.Duration(*ce.Dur * 1e3)
		}
		if s, ok := ce.Args["stage"]; ok {
			ev.Stage = int(s)
		}
		switch {
		case ce.Name == "step":
			ev.Kind = KindStep
		case ce.Name == "peer wait":
			ev.Kind = KindPeer
			ev.Peer = int(ce.Args["peer"])
			ev.Bytes = ce.Args["bytes"]
		case strings.HasPrefix(ce.Name, "exchange "):
			op, ok := telemetry.CommOpFromString(strings.TrimPrefix(ce.Name, "exchange "))
			if !ok {
				return nil, fmt.Errorf("trace: event %d: unknown exchange direction %q", i, ce.Name)
			}
			ev.Kind = KindExchange
			ev.Op = op
			ev.Bytes = ce.Args["bytes"]
			if c, ok := ce.Args["chunks"]; ok {
				ev.Peer = int(c)
			}
		default:
			p, ok := telemetry.PhaseFromString(ce.Name)
			if !ok {
				return nil, fmt.Errorf("trace: event %d: unknown event name %q", i, ce.Name)
			}
			ev.Kind = KindPhase
			ev.Phase = p
		}
		rt.Events = append(rt.Events, ev)
	}
	return rt, nil
}

// Merged is a whole-world trace on rank 0's timeline.
type Merged struct {
	// World is the world size; PerRank is indexed by rank, events aligned
	// onto rank 0's timeline — the input shape Analyze takes.
	World   int
	PerRank [][]Event
	// ErrorNs is each rank's clock-alignment error bound.
	ErrorNs []int64
	// FlowArrows counts the emitted cross-rank flow links.
	FlowArrows int

	events []chromeEvent
}

// Merge aligns per-rank traces onto rank 0's timeline and links matched
// transpose exchanges with flow arrows. Every trace must carry a distinct
// rank; worlds, where stamped, must agree.
func Merge(traces []*RankTrace) (*Merged, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	world := 0
	var base int64
	haveBase := false
	byRank := map[int]*RankTrace{}
	for _, rt := range traces {
		if prev := byRank[rt.Rank]; prev != nil {
			return nil, fmt.Errorf("trace: two files claim rank %d", rt.Rank)
		}
		byRank[rt.Rank] = rt
		if rt.World > 0 {
			if world > 0 && world != rt.World {
				return nil, fmt.Errorf("trace: files from different worlds (%d and %d ranks)", world, rt.World)
			}
			world = rt.World
		}
		if rt.Rank >= world {
			world = rt.Rank + 1
		}
		if rt.Rank == 0 {
			base = rt.EpochUnixNs
			haveBase = true
		}
	}
	if !haveBase {
		// No rank 0 file: anchor on the earliest aligned epoch instead.
		for _, rt := range traces {
			if e := rt.EpochUnixNs + rt.OffsetNs; !haveBase || e < base {
				base, haveBase = e, true
			}
		}
	}

	m := &Merged{World: world, PerRank: make([][]Event, world), ErrorNs: make([]int64, world)}
	for rank, rt := range byRank {
		shift := time.Duration(rt.EpochUnixNs + rt.OffsetNs - base)
		evs := make([]Event, len(rt.Events))
		for i, ev := range rt.Events {
			ev.Start += shift
			evs[i] = ev
		}
		sortEvents(evs)
		m.PerRank[rank] = evs
		m.ErrorNs[rank] = rt.ErrorNs
	}
	m.buildEvents()
	return m, nil
}

// flowKey identifies one schedule-level transpose exchange: all ranks
// execute the same exchange sequence, so the nth exchange of a direction
// within a (step, stage) is the same alltoallv on every rank. (Which
// ranks shared a sub-communicator is not recoverable from the trace, so
// arrows link all ranks that executed the exchange — for CommA/CommB
// splits that is a superset of each sub-communicator's membership.)
type flowKey struct {
	step  int64
	stage int
	op    telemetry.CommOp
	occ   int // occurrence index within the (step, stage, op) triple
}

// buildEvents assembles the merged file's event list: per rank, the
// thread-name metadata record, then the rank's events and its flow
// endpoints interleaved in timestamp order (slices before flow marks on
// ties, so an arrow lands on the slice it annotates).
func (m *Merged) buildEvents() {
	type endpoint struct {
		rank int
		ts   float64 // aligned exchange start, microseconds
		key  flowKey
	}
	groups := map[flowKey][]endpoint{}
	for rank, evs := range m.PerRank {
		occ := map[flowKey]int{}
		for _, ev := range evs {
			if ev.Kind != KindExchange {
				continue
			}
			k := flowKey{step: ev.Step, stage: ev.Stage, op: ev.Op}
			k.occ = occ[k]
			occ[flowKey{step: ev.Step, stage: ev.Stage, op: ev.Op}]++
			groups[k] = append(groups[k], endpoint{rank: rank, ts: micros(int64(ev.Start)), key: k})
		}
	}
	keys := make([]flowKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.step != b.step {
			return a.step < b.step
		}
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.op != b.op {
			return a.op < b.op
		}
		return a.occ < b.occ
	})
	perRankFlows := make([][]chromeEvent, m.World)
	for _, k := range keys {
		eps := groups[k]
		if len(eps) < 2 {
			continue // a single-rank exchange has nothing to link
		}
		sort.Slice(eps, func(i, j int) bool {
			if eps[i].ts != eps[j].ts {
				return eps[i].ts < eps[j].ts
			}
			return eps[i].rank < eps[j].rank
		})
		id := fmt.Sprintf("x-%d-%d-%s-%d", k.step, k.stage, k.op, k.occ)
		for i, ep := range eps {
			ce := chromeEvent{
				Name: "exchange " + k.op.String(),
				Cat:  "flow",
				Ts:   ep.ts,
				Pid:  0,
				Tid:  ep.rank,
				ID:   id,
			}
			switch i {
			case 0:
				ce.Ph = "s"
			case len(eps) - 1:
				ce.Ph = "f"
				ce.BP = "e"
			default:
				ce.Ph = "t"
			}
			perRankFlows[ep.rank] = append(perRankFlows[ep.rank], ce)
		}
		m.FlowArrows++
	}

	m.events = nil
	for rank, evs := range m.PerRank {
		if evs == nil && perRankFlows[rank] == nil {
			continue
		}
		m.events = append(m.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]int64{"rank": int64(rank)},
		})
		track := make([]chromeEvent, 0, len(evs)+len(perRankFlows[rank]))
		for _, ev := range evs {
			track = append(track, chromeEventOf(rank, ev))
		}
		track = append(track, perRankFlows[rank]...)
		sort.SliceStable(track, func(i, j int) bool {
			if track[i].Ts != track[j].Ts {
				return track[i].Ts < track[j].Ts
			}
			// Slices ("X") before flow marks at the same instant.
			return track[i].Ph == "X" && track[j].Ph != "X"
		})
		m.events = append(m.events, track...)
	}
}

// WriteChrome writes the merged world trace as Chrome trace-event JSON.
func (m *Merged) WriteChrome(w io.Writer) error {
	f := chromeFile{
		TraceEvents:     m.events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"merged_world": strconv.Itoa(m.World),
			"flow_arrows":  strconv.Itoa(m.FlowArrows),
		},
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []chromeEvent{}
	}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Analyze runs the critical-path analyzer over the merged, aligned
// per-rank events — the whole-world view of per-step gating.
func (m *Merged) Analyze() []StepReport { return Analyze(m.PerRank) }
