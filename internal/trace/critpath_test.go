package trace

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"channeldns/internal/telemetry"
)

// stragglerTrace builds a synthetic multi-rank trace where, per step, one
// known rank is slowed in one known phase by a factor of slow.
func stragglerTrace(ranks, steps int, straggler func(step int) (rank int, phase telemetry.Phase), slow float64) *Trace {
	tr := New(1024)
	base := 100 * time.Microsecond
	cursor := make([]time.Duration, ranks)
	for s := 0; s < steps; s++ {
		sRank, sPhase := straggler(s)
		for r := 0; r < ranks; r++ {
			rec := tr.Rank(r)
			rec.BeginStep(int64(s))
			t0 := cursor[r]
			for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
				d := base
				if r == sRank && p == sPhase {
					d = time.Duration(slow * float64(base))
				}
				rec.TraceSpan(p, tr.Epoch().Add(cursor[r]), tr.Epoch().Add(cursor[r]+d))
				cursor[r] += d
			}
			rec.EndStep(tr.Epoch().Add(t0), tr.Epoch().Add(cursor[r]))
		}
	}
	return tr
}

// TestAnalyzeNamesKnownStraggler: property test on synthetic traces — for
// a randomized straggler assignment the analyzer must name the planted
// gating rank and phase for every step, with positive slack everywhere
// else. Seeded, so failures reproduce.
func TestAnalyzeNamesKnownStraggler(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ranks := 2 + rng.Intn(5) // 2..6
		steps := 1 + rng.Intn(6) // 1..6
		plan := make([][2]int, steps)
		for s := range plan {
			plan[s] = [2]int{rng.Intn(ranks), rng.Intn(int(telemetry.NumPhases))}
		}
		tr := stragglerTrace(ranks, steps, func(step int) (int, telemetry.Phase) {
			return plan[step][0], telemetry.Phase(plan[step][1])
		}, 3.0)

		reports := Analyze(tr.Events())
		if len(reports) != steps {
			t.Fatalf("trial %d: %d step reports, want %d", trial, len(reports), steps)
		}
		for i, rep := range reports {
			if rep.Step != int64(i) {
				t.Fatalf("trial %d: reports out of order: %+v", trial, rep)
			}
			wantRank, wantPhase := plan[i][0], telemetry.Phase(plan[i][1])
			if rep.GatingRank != wantRank {
				t.Errorf("trial %d step %d: gating rank %d, planted %d", trial, i, rep.GatingRank, wantRank)
			}
			if rep.GatingPhase != wantPhase {
				t.Errorf("trial %d step %d: gating phase %v, planted %v", trial, i, rep.GatingPhase, wantPhase)
			}
			if rep.SlackSeconds[rep.GatingRank] != 0 {
				t.Errorf("trial %d step %d: gating rank has slack %g", trial, i, rep.SlackSeconds[rep.GatingRank])
			}
			for r := 0; r < ranks; r++ {
				if r != rep.GatingRank && rep.SlackSeconds[r] <= 0 {
					t.Errorf("trial %d step %d: rank %d slack %g, want > 0", trial, i, r, rep.SlackSeconds[r])
				}
			}
			if rep.GatingSeconds <= 0 {
				t.Errorf("trial %d step %d: gating seconds %g", trial, i, rep.GatingSeconds)
			}
		}
	}
}

func TestAnalyzeBalancedStep(t *testing.T) {
	// No straggler: every rank identical. Gating rank is then rank 0 (ties
	// break low) with zero slack everywhere.
	tr := stragglerTrace(4, 2, func(int) (int, telemetry.Phase) { return 0, telemetry.PhaseNonlinear }, 1.0)
	for _, rep := range Analyze(tr.Events()) {
		for r, sl := range rep.SlackSeconds {
			if sl != 0 {
				t.Errorf("step %d rank %d: slack %g in a balanced step", rep.Step, r, sl)
			}
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if got := Analyze(nil); got != nil {
		t.Errorf("Analyze(nil) = %v", got)
	}
	if got := Analyze(New(8).Events()); len(got) != 0 {
		t.Errorf("Analyze(empty) = %v", got)
	}
}

// TestSummarizeFeedsValidReport: the digest must slot into a Report and
// pass Validate, and its slack accounting must be internally consistent.
func TestSummarizeFeedsValidReport(t *testing.T) {
	tr := stragglerTrace(3, 4, func(step int) (int, telemetry.Phase) {
		return step % 3, telemetry.PhaseTransposeAB
	}, 2.5)
	sum := Summarize(tr)
	if sum.Events == 0 || len(sum.Steps) != 4 {
		t.Fatalf("summary %+v", sum)
	}
	if len(sum.RankSlackSeconds) != 3 {
		t.Fatalf("rank slack for %d ranks, want 3", len(sum.RankSlackSeconds))
	}
	for i, s := range sum.Steps {
		if s.GatingRank != i%3 || s.GatingPhase != "transpose" {
			t.Errorf("step %d digest %+v, planted rank %d phase transpose", i, s, i%3)
		}
	}
	reg := telemetry.NewRegistry()
	reg.Rank(0).StepDone(time.Millisecond)
	rep := telemetry.NewReport("table9", reg, nil)
	rep.Trace = sum
	if err := rep.Validate(); err != nil {
		t.Errorf("report with trace summary fails Validate: %v", err)
	}
}

func TestSummarizeNil(t *testing.T) {
	if Summarize(nil) != nil {
		t.Error("Summarize(nil) must be nil")
	}
}

func TestWriteStragglerTable(t *testing.T) {
	tr := stragglerTrace(2, 2, func(int) (int, telemetry.Phase) { return 1, telemetry.PhaseFFTForward }, 4.0)
	var sb strings.Builder
	WriteStragglerTable(&sb, Analyze(tr.Events()))
	out := sb.String()
	if !strings.Contains(out, "fft_forward") || !strings.Contains(out, "gating phase") {
		t.Errorf("table missing expected content:\n%s", out)
	}
	sb.Reset()
	WriteStragglerTable(&sb, nil)
	if !strings.Contains(sb.String(), "no steps") {
		t.Errorf("empty table output %q", sb.String())
	}
}
