package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"channeldns/internal/telemetry"
)

// syntheticTrace builds a two-rank trace with phase, exchange, peer and
// step events laid out deterministically.
func syntheticTrace() *Trace {
	tr := New(64)
	for rank := 0; rank < 2; rank++ {
		r := tr.Rank(rank)
		base := time.Duration(rank) * time.Millisecond
		r.BeginStep(0)
		r.SetStage(0)
		r.TraceSpan(telemetry.PhaseNonlinear, at(tr, base), at(tr, base+200*time.Microsecond))
		r.TraceSpan(telemetry.PhaseTransposeAB, at(tr, base+200*time.Microsecond), at(tr, base+300*time.Microsecond))
		r.Exchange(telemetry.CommYtoZ, 2048, at(tr, base+210*time.Microsecond), at(tr, base+280*time.Microsecond))
		r.Peer(1-rank, 1024, at(tr, base+220*time.Microsecond), at(tr, base+270*time.Microsecond))
		r.SetStage(-1)
		r.EndStep(at(tr, base), at(tr, base+400*time.Microsecond))
	}
	return tr
}

func TestWriteChromeValidates(t *testing.T) {
	tr := syntheticTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if n != 10 {
		t.Errorf("validated %d events, want 10 (5 per rank)", n)
	}
	// Structural spot checks on the decoded form.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	tids := map[float64]bool{}
	names := map[string]bool{}
	meta := 0
	for _, ev := range f.TraceEvents {
		tids[ev["tid"].(float64)] = true
		if ev["ph"] == "M" {
			meta++
			continue
		}
		names[ev["name"].(string)] = true
	}
	if len(tids) != 2 || meta != 2 {
		t.Errorf("want one track + one metadata record per rank, got tids=%v meta=%d", tids, meta)
	}
	for _, want := range []string{"nonlinear", "transpose", "exchange YtoZ", "peer wait", "step"} {
		if !names[want] {
			t.Errorf("event name %q missing from export (have %v)", want, names)
		}
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no events":      `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"empty name":     `{"traceEvents":[{"name":"","ph":"X","ts":1,"pid":0,"tid":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]}`,
		"nonmonotone ts": `{"traceEvents":[{"name":"a","ph":"X","ts":5,"pid":0,"tid":0},{"name":"b","ph":"X","ts":4,"pid":0,"tid":0}]}`,
	}
	for name, raw := range cases {
		if _, err := ValidateChrome([]byte(raw)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	// Monotonicity is per track: interleaved tracks with their own order
	// must pass.
	ok := `{"traceEvents":[
		{"name":"a","ph":"X","ts":5,"pid":0,"tid":0},
		{"name":"b","ph":"X","ts":1,"pid":0,"tid":1},
		{"name":"c","ph":"X","ts":6,"pid":0,"tid":0}]}`
	if _, err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("per-track monotone file rejected: %v", err)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := syntheticTrace()
	rr := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if _, err := ValidateChrome(rr.Body.Bytes()); err != nil {
		t.Errorf("/trace body does not validate: %v", err)
	}
}

func TestWriteChromeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New(8).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	// An empty trace is syntactically valid Chrome JSON but carries no
	// events, which ValidateChrome treats as a failure — bench-smoke runs
	// must produce events.
	if _, err := ValidateChrome(buf.Bytes()); err == nil {
		t.Error("empty trace validated, want 'no events' error")
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("empty trace is not valid JSON")
	}
}
