// Package trace is the event layer under the telemetry aggregates: a
// per-rank flight recorder that captures individual phase spans, transpose
// exchange windows, pairwise peer exchanges and whole timesteps as timed
// events in a fixed-capacity ring buffer. Where telemetry answers "how much
// time did the transposes take", trace answers "which rank's exchange gated
// step 17" — the timeline questions behind the paper's CommA/CommB
// imbalance and strong-scaling-knee diagnoses.
//
// Recording is lock-free and allocation-free: each recorder owns a
// preallocated ring of fixed-width slots written with a per-slot seqlock
// (atomic word stores, publication last), so writers never block each other
// and a snapshot taken mid-run sees every fully published event and drops
// the rare slot caught mid-write. When the ring wraps, the oldest events
// are overwritten — flight-recorder semantics: the last Capacity events per
// rank are always available, however long the run.
//
// A nil *Recorder is a valid no-op sink, mirroring telemetry.Collector, so
// instrumented code pays a nil check when tracing is off. *Recorder
// implements telemetry.Tracer; attaching one to a Collector
// (Collector.SetTracer) makes every phase span a trace event with no change
// to the instrumentation sites.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"channeldns/internal/telemetry"
)

// Kind classifies a recorded event.
type Kind uint8

// Event kinds.
const (
	// KindPhase is one completed telemetry phase span (Event.Phase valid).
	KindPhase Kind = iota
	// KindExchange is the wire interval of one global transpose — the
	// alltoallv between pack and unpack (Event.Op valid, Event.Bytes is the
	// send+receive payload).
	KindExchange
	// KindPeer is one pairwise peer exchange inside an alltoallv
	// (Event.Peer is the source rank within the exchanging communicator,
	// Event.Bytes the received payload).
	KindPeer
	// KindStep is one completed timestep.
	KindStep
	numKinds
)

var kindNames = [numKinds]string{"phase", "exchange", "peer", "step"}

// String returns the kind name used in exports.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded flight-recorder entry. Start is relative to the
// owning Trace's epoch, so events from different ranks share a time base.
type Event struct {
	Kind  Kind
	Phase telemetry.Phase  // valid for KindPhase
	Op    telemetry.CommOp // valid for KindExchange
	Stage int              // RK3 substep 0..2, -1 outside a substep
	Step  int64            // step label current when the event was recorded
	Peer  int              // exchanging peer rank for KindPeer, -1 otherwise
	Bytes int64            // payload bytes for comm events, 0 otherwise
	Start time.Duration    // event start, relative to the Trace epoch
	Dur   time.Duration
}

// Slot layout: fixed-width words per event, all accessed atomically. Word 0
// is the seqlock: a writer stores -(seq) before touching the payload words
// and +seq after, where seq is the 1-based reservation index, so a reader
// can detect both unpublished and torn slots without locks.
const (
	slotSeq = iota
	slotStart
	slotDur
	slotMeta // kind | code<<8 | (stage+1)<<16
	slotPeer
	slotBytes
	slotStep
	slotWords
)

// DefaultCapacity is the per-rank ring capacity used when New is given a
// non-positive capacity: at roughly 100 events per step on a small process
// grid, some hundreds of steps of history in ~900 KiB per rank.
const DefaultCapacity = 1 << 14

// Trace owns the flight recorders of one run: a shared epoch (so per-rank
// tracks align on one time base) and one Recorder per rank, created on
// first use. Construction takes a lock; recording never touches the Trace.
// Like a telemetry.Registry, a Trace describes a single run — step labels
// restart across runs, so reuse would interleave unrelated timelines.
type Trace struct {
	epoch    time.Time
	capacity int

	// Identity and clock alignment of a distributed run: which world rank
	// this process is, the world size, and the estimated offset of this
	// process's clock against rank 0's (mpi.SyncClocks). Exported into the
	// Chrome file's otherData so cmd/trace-merge can place per-rank events
	// on rank 0's timeline. All zero for in-process runs, whose ranks
	// already share one epoch.
	worldRank   atomic.Int64
	worldSize   atomic.Int64
	clockOffset atomic.Int64 // ns to add to local time for rank 0's timeline
	clockError  atomic.Int64 // error bound, ns

	mu   sync.Mutex
	recs []*Recorder // index = rank; nil gaps until first use
}

// New returns an empty Trace whose recorders hold the last capacity events
// each (DefaultCapacity if capacity <= 0). The epoch — the zero of every
// event timestamp — is the moment of the call.
func New(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{epoch: time.Now(), capacity: capacity}
}

// Epoch returns the shared time base of the trace's events.
func (t *Trace) Epoch() time.Time { return t.epoch }

// SetIdentity stamps the trace with its place in a distributed world:
// this process's world rank and the world size. Exported file metadata;
// safe to call any time before export.
func (t *Trace) SetIdentity(rank, world int) {
	t.worldRank.Store(int64(rank))
	t.worldSize.Store(int64(world))
}

// Identity returns the stamped (rank, world); (0, 0) when never stamped.
func (t *Trace) Identity() (rank, world int) {
	return int(t.worldRank.Load()), int(t.worldSize.Load())
}

// SetClockSync stamps the estimated offset of this process's clock
// against rank 0's, with its error bound, both in nanoseconds. Periodic
// re-sync may overwrite it mid-run; the export carries the latest.
func (t *Trace) SetClockSync(offsetNs, errorNs int64) {
	t.clockOffset.Store(offsetNs)
	t.clockError.Store(errorNs)
}

// ClockSync returns the stamped clock alignment (zeros when never set).
func (t *Trace) ClockSync() (offsetNs, errorNs int64) {
	return t.clockOffset.Load(), t.clockError.Load()
}

// Capacity returns the per-rank ring capacity in events.
func (t *Trace) Capacity() int { return t.capacity }

// Rank returns rank r's recorder, creating it (and its ring) on first use.
// Safe for concurrent use; call once per rank at setup time.
func (t *Trace) Rank(rank int) *Recorder {
	if rank < 0 {
		panic("trace: negative rank")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.recs) <= rank {
		t.recs = append(t.recs, nil)
	}
	if t.recs[rank] == nil {
		r := &Recorder{
			t:    t,
			rank: rank,
			buf:  make([]atomic.Int64, t.capacity*slotWords),
		}
		r.stage.Store(-1) // outside any RK3 substep until SetStage
		t.recs[rank] = r
	}
	return t.recs[rank]
}

// Ranks returns the number of rank slots registered so far.
func (t *Trace) Ranks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Events snapshots every rank's ring: element r holds rank r's published
// events, oldest first, sorted by start time (nil for never-registered
// ranks). The snapshot is safe to take while recording continues; events
// being written at that instant are skipped, not torn.
func (t *Trace) Events() [][]Event {
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	out := make([][]Event, len(recs))
	for i, r := range recs {
		out[i] = r.Events()
	}
	return out
}

// Dropped returns the total number of events overwritten by ring wrap
// across all ranks.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	var n int64
	for _, r := range recs {
		n += r.Dropped()
	}
	return n
}

// Recorder is one rank's flight recorder. All recording methods are safe
// for concurrent use, lock-free, and allocation-free; on a nil receiver
// they do nothing.
type Recorder struct {
	t    *Trace
	rank int

	pos   atomic.Uint64 // total events ever reserved
	step  atomic.Int64  // label stamped on subsequent events
	stage atomic.Int32  // RK3 substep label, -1 outside

	buf []atomic.Int64 // capacity * slotWords
}

// Rank returns the rank label.
func (r *Recorder) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// record reserves the next slot and publishes one event through the
// per-slot seqlock.
func (r *Recorder) record(kind Kind, code uint8, peer int, bytes int64, t0, t1 time.Time) {
	p := r.pos.Add(1) // 1-based reservation index
	base := int((p - 1) % uint64(r.t.capacity)) * slotWords
	b := r.buf[base : base+slotWords]
	b[slotSeq].Store(-int64(p)) // writing marker
	b[slotStart].Store(int64(t0.Sub(r.t.epoch)))
	b[slotDur].Store(int64(t1.Sub(t0)))
	b[slotMeta].Store(int64(kind) | int64(code)<<8 | (int64(r.stage.Load())+1)<<16)
	b[slotPeer].Store(int64(peer))
	b[slotBytes].Store(bytes)
	b[slotStep].Store(r.step.Load())
	b[slotSeq].Store(int64(p)) // publish
}

// TraceSpan records a completed telemetry phase span; it implements
// telemetry.Tracer, so a Recorder attached with Collector.SetTracer turns
// every existing instrumentation site into a timeline event.
func (r *Recorder) TraceSpan(p telemetry.Phase, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.record(KindPhase, uint8(p), -1, 0, t0, t1)
}

// Exchange records the wire interval of one global transpose: the
// alltoallv between pack and unpack, with the direction and the
// send+receive payload bytes.
func (r *Recorder) Exchange(op telemetry.CommOp, bytes int64, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.record(KindExchange, uint8(op), -1, bytes, t0, t1)
}

// ExchangePipelined records the wire window of one chunked pipelined
// transpose: first chunk send to last chunk arrival. The Peer word of a
// KindExchange event carries the pipeline depth — chunks >= 1 marks a
// pipelined window whose per-arrival waits were recorded as KindPeer
// events, while serial one-shot exchanges keep Peer = -1 — so analyzers
// can attribute exposed versus hidden wire time (critpath.go).
func (r *Recorder) ExchangePipelined(op telemetry.CommOp, chunks int, bytes int64, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.record(KindExchange, uint8(op), chunks, bytes, t0, t1)
}

// Peer records one pairwise peer exchange inside an alltoallv: the wait
// for peer's block (comm-local rank) carrying the given received bytes.
func (r *Recorder) Peer(peer int, bytes int64, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.record(KindPeer, 0, peer, bytes, t0, t1)
}

// BeginStep sets the step label stamped on subsequent events.
func (r *Recorder) BeginStep(step int64) {
	if r == nil {
		return
	}
	r.step.Store(step)
}

// SetStage sets the RK3 substep label stamped on subsequent events
// (-1 = outside a substep).
func (r *Recorder) SetStage(stage int) {
	if r == nil {
		return
	}
	r.stage.Store(int32(stage))
}

// EndStep records the completed timestep as a KindStep event spanning
// [t0, t1].
func (r *Recorder) EndStep(t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.record(KindStep, 0, -1, 0, t0, t1)
}

// Recorded returns the total number of events ever recorded (including
// those since overwritten).
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return int64(r.pos.Load())
}

// Dropped returns the number of events lost to ring wrap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	if n := int64(r.pos.Load()) - int64(r.t.capacity); n > 0 {
		return n
	}
	return 0
}

// Events snapshots the ring: the published events still resident, oldest
// first, sorted by start time. Slots caught mid-write (the seqlock reads
// unpublished before or after the copy) are skipped.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	p := r.pos.Load()
	n := p
	if c := uint64(r.t.capacity); n > c {
		n = c
	}
	out := make([]Event, 0, n)
	for i := p - n; i < p; i++ {
		seq := int64(i + 1)
		base := int(i%uint64(r.t.capacity)) * slotWords
		b := r.buf[base : base+slotWords]
		if b[slotSeq].Load() != seq {
			continue // unpublished, mid-write, or already overwritten
		}
		meta := b[slotMeta].Load()
		ev := Event{
			Kind:  Kind(meta & 0xff),
			Stage: int((meta>>16)&0xffff) - 1,
			Step:  b[slotStep].Load(),
			Peer:  int(b[slotPeer].Load()),
			Bytes: b[slotBytes].Load(),
			Start: time.Duration(b[slotStart].Load()),
			Dur:   time.Duration(b[slotDur].Load()),
		}
		code := uint8(meta >> 8)
		switch ev.Kind {
		case KindPhase:
			ev.Phase = telemetry.Phase(code)
		case KindExchange:
			ev.Op = telemetry.CommOp(code)
		}
		if b[slotSeq].Load() != seq {
			continue // overwritten while decoding
		}
		out = append(out, ev)
	}
	sortEvents(out)
	return out
}

// sortEvents orders events by start time, enclosing-first on ties (longer
// duration first) so Chrome-trace nesting is well formed. Insertion sort:
// rings snapshot nearly sorted (events are recorded at end time).
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && eventLess(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func eventLess(a, b Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Dur != b.Dur {
		return a.Dur > b.Dur
	}
	return a.Kind < b.Kind
}
