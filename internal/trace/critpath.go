package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"channeldns/internal/telemetry"
)

// Critical-path analysis: in a bulk-synchronous step the slowest rank sets
// the wall clock, so "why is the step this long" reduces to "which rank
// was busiest, and on what". Analyze answers both per step from the
// recorded phase events — the diagnosis behind the paper's CommA/CommB
// transpose-imbalance discussion, computed instead of eyeballed.

// StepReport is the critical path of one step across ranks.
type StepReport struct {
	Step int64
	// BusySeconds is each rank's total phase time inside the step (index =
	// rank). Phases tile the instrumented step, so this is the rank's
	// working wall clock.
	BusySeconds []float64
	// SlackSeconds is the gating rank's busy time minus each rank's: how
	// long each rank would have idled at a step-end barrier. Zero for the
	// gating rank by construction.
	SlackSeconds []float64
	// GatingRank is the busiest rank — the one the step waited for.
	GatingRank int
	// GatingPhase is the phase on which the gating rank lost the most time
	// relative to the cross-rank mean of that phase: the best single-phase
	// explanation of the imbalance.
	GatingPhase telemetry.Phase
	// GatingSeconds is the gating rank's busy time.
	GatingSeconds float64
	// ExposedWireSeconds is the wire time the step's ranks actually waited
	// on, summed across ranks: per-peer receive waits inside pipelined
	// exchanges (KindPeer events) plus the whole window of serial one-shot
	// exchanges (KindExchange with no pipeline depth).
	ExposedWireSeconds float64
	// HiddenWireSeconds is the remainder of the pipelined exchange windows —
	// wire time overlapped with pack/unpack and the consumer's FFT work
	// rather than waited on. Serial exchanges contribute nothing here: their
	// wire time is exposed by construction. ExposedWireSeconds +
	// HiddenWireSeconds recovers the total wire window of the step.
	HiddenWireSeconds float64
}

// Analyze computes per-step critical paths from a per-rank event snapshot
// (as returned by Trace.Events). Steps with no phase events on any rank
// are omitted; reports come back ascending by step. Ranks with a nil
// event slice (never registered) count as zero-busy.
func Analyze(perRank [][]Event) []StepReport {
	ranks := len(perRank)
	if ranks == 0 {
		return nil
	}
	// busy[step][rank] and phase[step][rank][phase], accumulated in
	// nanoseconds to keep summation exact.
	type acc struct {
		busy  []int64
		phase [][telemetry.NumPhases]int64
		// Wire attribution, summed across ranks: peer-arrival waits and
		// serial exchange windows are exposed; pipelined exchange windows
		// (KindExchange with Peer > 0, the pipeline depth) minus their
		// recorded waits are hidden.
		peerWait, pipeWindow, serialWire int64
	}
	steps := map[int64]*acc{}
	get := func(step int64) *acc {
		a := steps[step]
		if a == nil {
			a = &acc{
				busy:  make([]int64, ranks),
				phase: make([][telemetry.NumPhases]int64, ranks),
			}
			steps[step] = a
		}
		return a
	}
	for rank, evs := range perRank {
		for _, ev := range evs {
			switch ev.Kind {
			case KindPhase:
				if ev.Phase >= telemetry.NumPhases {
					continue
				}
				a := get(ev.Step)
				a.busy[rank] += int64(ev.Dur)
				a.phase[rank][ev.Phase] += int64(ev.Dur)
			case KindPeer:
				get(ev.Step).peerWait += int64(ev.Dur)
			case KindExchange:
				a := get(ev.Step)
				if ev.Peer > 0 {
					a.pipeWindow += int64(ev.Dur)
				} else {
					a.serialWire += int64(ev.Dur)
				}
			}
		}
	}
	order := make([]int64, 0, len(steps))
	for s := range steps {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	out := make([]StepReport, 0, len(order))
	for _, s := range order {
		a := steps[s]
		gating := 0
		for r := 1; r < ranks; r++ {
			if a.busy[r] > a.busy[gating] {
				gating = r
			}
		}
		hidden := a.pipeWindow - a.peerWait
		if hidden < 0 {
			// Clock skew between the window endpoints and the per-arrival
			// stamps; clamp rather than report negative hidden time.
			hidden = 0
		}
		rep := StepReport{
			Step:               s,
			BusySeconds:        make([]float64, ranks),
			SlackSeconds:       make([]float64, ranks),
			GatingRank:         gating,
			GatingSeconds:      time.Duration(a.busy[gating]).Seconds(),
			ExposedWireSeconds: time.Duration(a.peerWait + a.serialWire).Seconds(),
			HiddenWireSeconds:  time.Duration(hidden).Seconds(),
		}
		for r := 0; r < ranks; r++ {
			rep.BusySeconds[r] = time.Duration(a.busy[r]).Seconds()
			rep.SlackSeconds[r] = time.Duration(a.busy[gating] - a.busy[r]).Seconds()
		}
		// Gating phase: where the gating rank stands furthest above the
		// cross-rank mean. Ties break to the longer absolute duration, then
		// the lower phase index, so the choice is deterministic.
		var (
			bestExcess = int64(-1 << 62)
			bestDur    int64
			bestPhase  telemetry.Phase
		)
		for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
			dur := a.phase[gating][p]
			if dur == 0 {
				continue
			}
			var sum int64
			for r := 0; r < ranks; r++ {
				sum += a.phase[r][p]
			}
			excess := dur - sum/int64(ranks)
			if excess > bestExcess || (excess == bestExcess && dur > bestDur) {
				bestExcess, bestDur, bestPhase = excess, dur, p
			}
		}
		rep.GatingPhase = bestPhase
		out = append(out, rep)
	}
	return out
}

// Summarize condenses a trace into the Report digest: the straggler record
// of every step plus each rank's accumulated slack.
func Summarize(t *Trace) *telemetry.TraceSummary {
	if t == nil {
		return nil
	}
	perRank := t.Events()
	reports := Analyze(perRank)
	sum := &telemetry.TraceSummary{
		Dropped: t.Dropped(),
		Steps:   make([]telemetry.StragglerStep, 0, len(reports)),
	}
	for _, evs := range perRank {
		sum.Events += int64(len(evs))
	}
	if len(reports) > 0 {
		sum.RankSlackSeconds = make([]float64, len(reports[0].SlackSeconds))
	}
	for _, rep := range reports {
		maxSlack := 0.0
		for r, sl := range rep.SlackSeconds {
			sum.RankSlackSeconds[r] += sl
			if sl > maxSlack {
				maxSlack = sl
			}
		}
		sum.Steps = append(sum.Steps, telemetry.StragglerStep{
			Step:               rep.Step,
			GatingRank:         rep.GatingRank,
			GatingPhase:        rep.GatingPhase.String(),
			GatingSeconds:      rep.GatingSeconds,
			MaxSlackSeconds:    maxSlack,
			ExposedWireSeconds: rep.ExposedWireSeconds,
			HiddenWireSeconds:  rep.HiddenWireSeconds,
		})
	}
	return sum
}

// WriteStragglerTable renders per-step critical paths as the fixed-width
// table cmd/dns prints at the end of a traced run.
func WriteStragglerTable(w io.Writer, reports []StepReport) {
	if len(reports) == 0 {
		fmt.Fprintln(w, "trace: no steps recorded")
		return
	}
	fmt.Fprintf(w, "%6s  %5s  %-14s  %12s  %14s  %12s  %12s\n",
		"step", "rank", "gating phase", "busy [ms]", "max slack [ms]",
		"exposed [ms]", "hidden [ms]")
	for _, rep := range reports {
		maxSlack := 0.0
		for _, sl := range rep.SlackSeconds {
			if sl > maxSlack {
				maxSlack = sl
			}
		}
		fmt.Fprintf(w, "%6d  %5d  %-14s  %12.3f  %14.3f  %12.3f  %12.3f\n",
			rep.Step, rep.GatingRank, rep.GatingPhase.String(),
			rep.GatingSeconds*1e3, maxSlack*1e3,
			rep.ExposedWireSeconds*1e3, rep.HiddenWireSeconds*1e3)
	}
}
