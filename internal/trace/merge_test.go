package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"channeldns/internal/telemetry"
)

// TestChromeParseRoundTrip: ParseChrome must invert WriteChrome — events,
// identity and clock stamps survive the trip through the file format.
func TestChromeParseRoundTrip(t *testing.T) {
	tr := New(64)
	tr.SetIdentity(2, 4)
	tr.SetClockSync(1234, 56)
	rec := tr.Rank(2)
	ep := tr.Epoch()
	rec.BeginStep(7)
	rec.SetStage(1)
	rec.TraceSpan(telemetry.PhaseNonlinear, ep.Add(10*time.Microsecond), ep.Add(30*time.Microsecond))
	rec.Exchange(telemetry.CommYtoZ, 4096, ep.Add(30*time.Microsecond), ep.Add(40*time.Microsecond))
	rec.Peer(3, 1024, ep.Add(32*time.Microsecond), ep.Add(38*time.Microsecond))
	rec.SetStage(-1)
	rec.EndStep(ep.Add(10*time.Microsecond), ep.Add(50*time.Microsecond))

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Rank != 2 || rt.World != 4 {
		t.Errorf("identity (%d, %d), stamped (2, 4)", rt.Rank, rt.World)
	}
	if rt.OffsetNs != 1234 || rt.ErrorNs != 56 {
		t.Errorf("clock sync (%d, %d), stamped (1234, 56)", rt.OffsetNs, rt.ErrorNs)
	}
	if rt.EpochUnixNs != ep.UnixNano() {
		t.Errorf("epoch %d, want %d", rt.EpochUnixNs, ep.UnixNano())
	}
	if len(rt.Events) != 4 {
		t.Fatalf("%d events back, want 4", len(rt.Events))
	}
	// Export order: start ascending, enclosing (longer) first on ties.
	wantKinds := []Kind{KindStep, KindPhase, KindExchange, KindPeer}
	for i, ev := range rt.Events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Step != 7 {
			t.Errorf("event %d step %d, want 7", i, ev.Step)
		}
	}
	if ph := rt.Events[1]; ph.Phase != telemetry.PhaseNonlinear || ph.Stage != 1 ||
		ph.Start != 10*time.Microsecond || ph.Dur != 20*time.Microsecond {
		t.Errorf("phase event %+v", ph)
	}
	if ex := rt.Events[2]; ex.Op != telemetry.CommYtoZ || ex.Bytes != 4096 || ex.Peer != -1 {
		t.Errorf("exchange event %+v", ex)
	}
	if pw := rt.Events[3]; pw.Peer != 3 || pw.Bytes != 1024 || pw.Dur != 6*time.Microsecond {
		t.Errorf("peer event %+v", pw)
	}
	if st := rt.Events[0]; st.Stage != -1 || st.Dur != 40*time.Microsecond {
		t.Errorf("step event %+v", st)
	}
}

func TestParseChromeRejectsUnalignedFile(t *testing.T) {
	raw := []byte(`{"traceEvents": [], "displayTimeUnit": "ms"}`)
	if _, err := ParseChrome(raw); err == nil || !strings.Contains(err.Error(), "clock_epoch_unix_ns") {
		t.Errorf("file without epoch metadata accepted (err %v)", err)
	}
}

// TestMergeAlignsOnRank0Clock: per-rank events land on rank 0's timeline
// shifted by (epoch + offset − rank 0 epoch), exactly.
func TestMergeAlignsOnRank0Clock(t *testing.T) {
	exchange := func(start time.Duration) Event {
		return Event{Kind: KindExchange, Op: telemetry.CommYtoZ, Stage: 0, Step: 1, Peer: -1,
			Start: start, Dur: 50 * time.Microsecond, Bytes: 256}
	}
	r0 := &RankTrace{Rank: 0, World: 2, EpochUnixNs: 1_000_000_000,
		Events: []Event{exchange(100 * time.Microsecond)}}
	// Rank 1's epoch reads 500µs later but its clock runs 500µs ahead of
	// rank 0's, so the stamped offset cancels the difference exactly.
	r1 := &RankTrace{Rank: 1, World: 2, EpochUnixNs: 1_000_500_000, OffsetNs: -500_000, ErrorNs: 2000,
		Events: []Event{exchange(120 * time.Microsecond)}}

	m, err := Merge([]*RankTrace{r1, r0})
	if err != nil {
		t.Fatal(err)
	}
	if m.World != 2 || len(m.PerRank) != 2 {
		t.Fatalf("world %d (%d tracks), want 2", m.World, len(m.PerRank))
	}
	if got := m.PerRank[0][0].Start; got != 100*time.Microsecond {
		t.Errorf("rank 0 start %v, want 100µs", got)
	}
	if got := m.PerRank[1][0].Start; got != 120*time.Microsecond {
		t.Errorf("rank 1 aligned start %v, want 120µs (offset must cancel the epoch skew)", got)
	}
	if m.ErrorNs[1] != 2000 {
		t.Errorf("rank 1 error bound %d, want 2000", m.ErrorNs[1])
	}
	if m.FlowArrows != 1 {
		t.Errorf("%d flow arrows, want 1 (one matched exchange)", m.FlowArrows)
	}

	// Without the offset stamp the epoch skew shows up in the timeline.
	r1.OffsetNs = 0
	m2, err := Merge([]*RankTrace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.PerRank[1][0].Start; got != 620*time.Microsecond {
		t.Errorf("unaligned rank 1 start %v, want 620µs", got)
	}

	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("merged file fails validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`, `"bp": "e"`, `"merged_world": "2"`} {
		if !strings.Contains(out, want) {
			t.Errorf("merged file missing %s", want)
		}
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	a := &RankTrace{Rank: 1, World: 2, EpochUnixNs: 1}
	b := &RankTrace{Rank: 1, World: 2, EpochUnixNs: 2}
	if _, err := Merge([]*RankTrace{a, b}); err == nil {
		t.Error("two files claiming one rank accepted")
	}
	c := &RankTrace{Rank: 0, World: 3, EpochUnixNs: 3}
	if _, err := Merge([]*RankTrace{a, c}); err == nil {
		t.Error("files from different worlds accepted")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
}

// TestMergedAnalyzeNamesPlantedStraggler: the whole-world critical path
// over per-rank files exported, parsed and merged must name the same
// gating rank that was planted — the acceptance criterion linking the
// merged timeline to per-rank telemetry imbalance.
func TestMergedAnalyzeNamesPlantedStraggler(t *testing.T) {
	const world, steps, straggler = 3, 2, 2
	base := 100 * time.Microsecond
	files := make([]*RankTrace, world)
	for r := 0; r < world; r++ {
		tr := New(256)
		tr.SetIdentity(r, world)
		rec := tr.Rank(r)
		ep := tr.Epoch()
		cursor := time.Duration(0)
		for s := 0; s < steps; s++ {
			rec.BeginStep(int64(s))
			t0 := cursor
			for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
				d := base
				if r == straggler && p == telemetry.PhaseTransposeAB {
					d = 3 * base
				}
				if p == telemetry.PhaseTransposeAB {
					rec.Exchange(telemetry.CommYtoZ, 512, ep.Add(cursor), ep.Add(cursor+d/2))
				}
				rec.TraceSpan(p, ep.Add(cursor), ep.Add(cursor+d))
				cursor += d
			}
			rec.EndStep(ep.Add(t0), ep.Add(cursor))
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		rt, err := ParseChrome(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		files[r] = rt
	}
	m, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	if m.FlowArrows != steps {
		t.Errorf("%d flow arrows, want %d (one exchange per step matched across ranks)", m.FlowArrows, steps)
	}
	reports := m.Analyze()
	if len(reports) != steps {
		t.Fatalf("%d step reports, want %d", len(reports), steps)
	}
	for _, rep := range reports {
		if rep.GatingRank != straggler {
			t.Errorf("step %d: gating rank %d, planted %d", rep.Step, rep.GatingRank, straggler)
		}
		if rep.GatingPhase != telemetry.PhaseTransposeAB {
			t.Errorf("step %d: gating phase %v, planted transpose", rep.Step, rep.GatingPhase)
		}
	}
	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("merged world file fails validation: %v", err)
	}
}

// TestValidateChromeFlowIntegrity pins the validator's flow rules on
// hand-built files: accept a well-formed s→t→f chain, reject missing ids,
// duplicate starts, missing finishes, and steps before the start.
func TestValidateChromeFlowIntegrity(t *testing.T) {
	file := func(events string) []byte {
		return []byte(`{"traceEvents": [` + events + `], "displayTimeUnit": "ms"}`)
	}
	x := `{"name": "step", "ph": "X", "ts": 1, "dur": 5, "pid": 0, "tid": 0}`
	cases := []struct {
		name   string
		events string
		ok     bool
	}{
		{"chain", x + `,
			{"name": "f1", "ph": "s", "ts": 2, "pid": 0, "tid": 0, "id": "a"},
			{"name": "f1", "ph": "t", "ts": 3, "pid": 0, "tid": 1, "id": "a"},
			{"name": "f1", "ph": "f", "bp": "e", "ts": 4, "pid": 0, "tid": 2, "id": "a"}`, true},
		{"no id", x + `, {"name": "f1", "ph": "s", "ts": 2, "pid": 0, "tid": 0}`, false},
		{"two starts", x + `,
			{"name": "f1", "ph": "s", "ts": 2, "pid": 0, "tid": 0, "id": "a"},
			{"name": "f1", "ph": "s", "ts": 3, "pid": 0, "tid": 1, "id": "a"},
			{"name": "f1", "ph": "f", "ts": 4, "pid": 0, "tid": 2, "id": "a"}`, false},
		{"no finish", x + `, {"name": "f1", "ph": "s", "ts": 2, "pid": 0, "tid": 0, "id": "a"}`, false},
		{"step before start", x + `,
			{"name": "f1", "ph": "t", "ts": 2, "pid": 0, "tid": 1, "id": "a"},
			{"name": "f1", "ph": "s", "ts": 3, "pid": 0, "tid": 0, "id": "a"},
			{"name": "f1", "ph": "f", "ts": 4, "pid": 0, "tid": 2, "id": "a"}`, false},
	}
	for _, tc := range cases {
		_, err := ValidateChrome(file(tc.events))
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
