package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
)

// Chrome trace-event export: the flight recorder serialized to the JSON
// Object Format consumed by chrome://tracing and Perfetto. Every rank is
// one named track (pid 0, tid = rank); phase spans, exchange windows,
// peer exchanges and whole steps are complete ("X") events that nest by
// containment, so a transpose span visually contains its wire interval,
// which contains the per-peer waits. ts/dur are microseconds from the
// Trace epoch, the format's native unit.

// chromeEvent is one trace-event object. Field order is fixed by the
// struct and args keys are sorted by encoding/json, so the same snapshot
// always encodes to the same bytes.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeFile is the containing JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts a nanosecond duration to the format's microsecond unit.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// chromeEvents flattens a snapshot into trace-event objects: one
// thread_name metadata record per rank followed by that rank's events in
// start order.
func chromeEvents(perRank [][]Event) []chromeEvent {
	var out []chromeEvent
	for rank, evs := range perRank {
		if evs == nil {
			continue
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]int64{"rank": int64(rank)},
		})
		for _, ev := range evs {
			ce := chromeEvent{
				Ph:  "X",
				Ts:  micros(int64(ev.Start)),
				Pid: 0,
				Tid: rank,
				Cat: ev.Kind.String(),
			}
			dur := micros(int64(ev.Dur))
			ce.Dur = &dur
			args := map[string]int64{"step": ev.Step}
			if ev.Stage >= 0 {
				args["stage"] = int64(ev.Stage)
			}
			switch ev.Kind {
			case KindPhase:
				ce.Name = ev.Phase.String()
			case KindExchange:
				ce.Name = "exchange " + ev.Op.String()
				args["bytes"] = ev.Bytes
				if ev.Peer > 0 {
					// Pipelined exchange window: the Peer word carries the
					// pipeline depth (see Recorder.ExchangePipelined).
					args["chunks"] = int64(ev.Peer)
				}
			case KindPeer:
				ce.Name = "peer wait"
				args["peer"] = int64(ev.Peer)
				args["bytes"] = ev.Bytes
			case KindStep:
				ce.Name = "step"
			default:
				ce.Name = "unknown"
			}
			ce.Args = args
			out = append(out, ce)
		}
	}
	return out
}

// WriteChrome writes the current snapshot as Chrome trace-event JSON —
// open the result in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Trace) WriteChrome(w io.Writer) error {
	f := chromeFile{
		TraceEvents:     chromeEvents(t.Events()),
		DisplayTimeUnit: "ms",
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []chromeEvent{}
	}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteChromeFile writes the Chrome trace to path, creating parent
// directories as needed.
func (t *Trace) WriteChromeFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Handler returns an http.Handler serving the live Chrome trace — the
// /trace endpoint next to /telemetry in cmd/dns. Snapshots are taken per
// request and never block recording.
func Handler(t *Trace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ValidateChrome checks a serialized Chrome trace the way the bench-smoke
// CI target needs: it parses, carries at least one non-metadata event,
// durations are non-negative, and timestamps are monotone non-decreasing
// within each (pid, tid) track in file order. Returns the number of
// non-metadata events.
func ValidateChrome(raw []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return 0, fmt.Errorf("trace: parse: %w", err)
	}
	type track struct{ pid, tid int }
	last := map[track]float64{}
	events := 0
	for i, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ph != "X" {
			return 0, fmt.Errorf("trace: event %d: unsupported phase type %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d: empty name", i)
		}
		if ev.Dur != nil && *ev.Dur < 0 {
			return 0, fmt.Errorf("trace: event %d (%s): negative duration %g", i, ev.Name, *ev.Dur)
		}
		tr := track{ev.Pid, ev.Tid}
		if prev, ok := last[tr]; ok && ev.Ts < prev {
			return 0, fmt.Errorf("trace: event %d (%s): timestamp %g precedes %g on track %d/%d",
				i, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
		}
		last[tr] = ev.Ts
		events++
	}
	if events == 0 {
		return 0, fmt.Errorf("trace: no events")
	}
	return events, nil
}
