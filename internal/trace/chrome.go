package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
)

// Chrome trace-event export: the flight recorder serialized to the JSON
// Object Format consumed by chrome://tracing and Perfetto. Every rank is
// one named track (pid 0, tid = rank); phase spans, exchange windows,
// peer exchanges and whole steps are complete ("X") events that nest by
// containment, so a transpose span visually contains its wire interval,
// which contains the per-peer waits. ts/dur are microseconds from the
// Trace epoch, the format's native unit.

// chromeEvent is one trace-event object. Field order is fixed by the
// struct and args keys are sorted by encoding/json, so the same snapshot
// always encodes to the same bytes.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	ID   string           `json:"id,omitempty"` // flow events ("s"/"t"/"f") only
	BP   string           `json:"bp,omitempty"` // "e" on "f" binds to the enclosing slice
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeFile is the containing JSON object. OtherData carries file-level
// metadata as decimal strings: rank/world identity and the clock
// alignment of a distributed rank (see Trace.SetClockSync), which is what
// makes per-rank files mergeable onto one timeline.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// micros converts a nanosecond duration to the format's microsecond unit.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// chromeEvents flattens a snapshot into trace-event objects: one
// thread_name metadata record per rank followed by that rank's events in
// start order.
func chromeEvents(perRank [][]Event) []chromeEvent {
	var out []chromeEvent
	for rank, evs := range perRank {
		if evs == nil {
			continue
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]int64{"rank": int64(rank)},
		})
		for _, ev := range evs {
			out = append(out, chromeEventOf(rank, ev))
		}
	}
	return out
}

// chromeEventOf converts one decoded event to its trace-event object on
// rank's track. The name scheme is the export contract ParseChrome
// (merge.go) inverts: phase names, "exchange <dir>", "peer wait", "step".
func chromeEventOf(rank int, ev Event) chromeEvent {
	ce := chromeEvent{
		Ph:  "X",
		Ts:  micros(int64(ev.Start)),
		Pid: 0,
		Tid: rank,
		Cat: ev.Kind.String(),
	}
	dur := micros(int64(ev.Dur))
	ce.Dur = &dur
	args := map[string]int64{"step": ev.Step}
	if ev.Stage >= 0 {
		args["stage"] = int64(ev.Stage)
	}
	switch ev.Kind {
	case KindPhase:
		ce.Name = ev.Phase.String()
	case KindExchange:
		ce.Name = "exchange " + ev.Op.String()
		args["bytes"] = ev.Bytes
		if ev.Peer > 0 {
			// Pipelined exchange window: the Peer word carries the
			// pipeline depth (see Recorder.ExchangePipelined).
			args["chunks"] = int64(ev.Peer)
		}
	case KindPeer:
		ce.Name = "peer wait"
		args["peer"] = int64(ev.Peer)
		args["bytes"] = ev.Bytes
	case KindStep:
		ce.Name = "step"
	default:
		ce.Name = "unknown"
	}
	ce.Args = args
	return ce
}

// WriteChrome writes the current snapshot as Chrome trace-event JSON —
// open the result in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Trace) WriteChrome(w io.Writer) error {
	f := chromeFile{
		TraceEvents:     chromeEvents(t.Events()),
		DisplayTimeUnit: "ms",
		OtherData:       t.otherData(),
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []chromeEvent{}
	}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// otherData assembles the file-level metadata: the trace epoch (wall
// clock, so files from different processes share a reference), and when
// the trace was stamped as part of a distributed world, its identity and
// clock alignment. trace-merge reads these back (merge.go).
func (t *Trace) otherData() map[string]string {
	od := map[string]string{
		"clock_epoch_unix_ns": strconv.FormatInt(t.epoch.UnixNano(), 10),
	}
	rank, world := t.Identity()
	if world > 0 {
		od["clock_rank"] = strconv.Itoa(rank)
		od["clock_world"] = strconv.Itoa(world)
	}
	if off, errNs := t.ClockSync(); off != 0 || errNs != 0 {
		od["clock_offset_ns"] = strconv.FormatInt(off, 10)
		od["clock_error_ns"] = strconv.FormatInt(errNs, 10)
	}
	return od
}

// WriteChromeFile writes the Chrome trace to path, creating parent
// directories as needed.
func (t *Trace) WriteChromeFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Handler returns an http.Handler serving the live Chrome trace — the
// /trace endpoint next to /telemetry in cmd/dns. Snapshots are taken per
// request and never block recording.
func Handler(t *Trace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ValidateChrome checks a serialized Chrome trace the way the bench-smoke
// and obs-smoke CI targets need: it parses, carries at least one
// non-metadata event, durations are non-negative, and timestamps are
// monotone non-decreasing within each (pid, tid) track in file order.
// Flow events ("s"/"t"/"f", which trace-merge emits to link matched
// transpose exchanges across ranks) must carry an id, participate in the
// per-track monotone check, and be referentially intact: every id has
// exactly one start, at least one finish, and no step/finish earlier than
// its start. Returns the number of non-metadata events.
func ValidateChrome(raw []byte) (int, error) {
	var f chromeFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return 0, fmt.Errorf("trace: parse: %w", err)
	}
	type track struct{ pid, tid int }
	type flow struct {
		starts, finishes int
		startTs, minTs   float64
	}
	last := map[track]float64{}
	flows := map[string]*flow{}
	events := 0
	for i, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		switch ev.Ph {
		case "X":
		case "s", "t", "f":
			if ev.ID == "" {
				return 0, fmt.Errorf("trace: event %d (%s): flow event without id", i, ev.Name)
			}
			fl := flows[ev.ID]
			if fl == nil {
				fl = &flow{minTs: ev.Ts}
				flows[ev.ID] = fl
			}
			switch ev.Ph {
			case "s":
				fl.starts++
				fl.startTs = ev.Ts
			case "f":
				fl.finishes++
			}
			if ev.Ts < fl.minTs {
				fl.minTs = ev.Ts
			}
		default:
			return 0, fmt.Errorf("trace: event %d: unsupported phase type %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d: empty name", i)
		}
		if ev.Dur != nil && *ev.Dur < 0 {
			return 0, fmt.Errorf("trace: event %d (%s): negative duration %g", i, ev.Name, *ev.Dur)
		}
		tr := track{ev.Pid, ev.Tid}
		if prev, ok := last[tr]; ok && ev.Ts < prev {
			return 0, fmt.Errorf("trace: event %d (%s): timestamp %g precedes %g on track %d/%d",
				i, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
		}
		last[tr] = ev.Ts
		events++
	}
	if events == 0 {
		return 0, fmt.Errorf("trace: no events")
	}
	for id, fl := range flows {
		if fl.starts != 1 {
			return 0, fmt.Errorf("trace: flow %q has %d starts (want exactly 1)", id, fl.starts)
		}
		if fl.finishes == 0 {
			return 0, fmt.Errorf("trace: flow %q never finishes", id)
		}
		if fl.minTs < fl.startTs {
			return 0, fmt.Errorf("trace: flow %q has an event at %g before its start at %g", id, fl.minTs, fl.startTs)
		}
	}
	return events, nil
}
