package machine

import "math"

// Row generators for the paper's tables: each returns model predictions
// side by side with the paper's measurements so the harness can print the
// comparison and EXPERIMENTS.md can record it.

// Table5Row is a modeled row of Table 5.
type Table5Row struct {
	System string
	PA, PB int
	Model  float64
	Paper  float64
}

// Table5 returns the modeled transpose-cycle times for the paper's
// CommA x CommB splits.
func Table5() []Table5Row {
	out := make([]Table5Row, 0, len(Table5Paper))
	for _, c := range Table5Paper {
		m, _ := ByName(c.System)
		nx, ny, nz := Table5Grid(c.System)
		out = append(out, Table5Row{
			System: c.System, PA: c.PA, PB: c.PB,
			Model: TransposeCycleTime(m, nx, ny, nz, c.PA, c.PB),
			Paper: c.PaperSec,
		})
	}
	return out
}

// Table6Row is a modeled row of Table 6.
type Table6Row struct {
	System                   string
	Cores                    int
	ModelP3DFFT, ModelCustom float64 // 0 => N/A
	PaperP3DFFT, PaperCustom float64
	ModelRatio, PaperRatio   float64 // p3dfft / custom where both exist
}

// Table6 returns the modeled parallel-FFT strong-scaling comparison.
func Table6() []Table6Row {
	out := make([]Table6Row, 0, len(Table6Paper))
	for _, c := range Table6Paper {
		m, _ := ByName(c.System)
		nx, ny, nz := c.Grid[0], c.Grid[1], c.Grid[2]
		p3d, okP := FFTCycleTime(m, KindP3DFFT, nx, ny, nz, c.Cores)
		cus, okC := FFTCycleTime(m, KindCustom, nx, ny, nz, c.Cores)
		r := Table6Row{System: c.System, Cores: c.Cores,
			PaperP3DFFT: c.PaperP3DFFT, PaperCustom: c.PaperCustom}
		if okC {
			r.ModelCustom = cus
		}
		if okP {
			r.ModelP3DFFT = p3d
		}
		if okP && okC && cus > 0 {
			r.ModelRatio = p3d / cus
		}
		if c.PaperP3DFFT > 0 && c.PaperCustom > 0 {
			r.PaperRatio = c.PaperP3DFFT / c.PaperCustom
		}
		out = append(out, r)
	}
	return out
}

// TimestepRow is a modeled row of Tables 9/10.
type TimestepRow struct {
	System string
	Mode   Mode
	Cores  int
	Nx     int // weak scaling only; 0 for strong
	Model  Breakdown
	Paper  Breakdown
}

// Table9 returns the modeled strong-scaling timestep rows.
func Table9() []TimestepRow {
	out := make([]TimestepRow, 0, len(Table9Paper))
	for _, c := range Table9Paper {
		m, _ := ByName(c.System)
		nx, ny, nz := Table7Grid(c.System)
		out = append(out, TimestepRow{
			System: c.System, Mode: c.Mode, Cores: c.Cores,
			Model: TimestepTime(m, c.Mode, nx, ny, nz, c.Cores),
			Paper: Breakdown{Transpose: c.PaperTranspose, FFT: c.PaperFFT, Advance: c.PaperAdvance},
		})
	}
	return out
}

// Table10 returns the modeled weak-scaling timestep rows.
func Table10() []TimestepRow {
	out := make([]TimestepRow, 0, len(Table10Paper))
	for _, c := range Table10Paper {
		m, _ := ByName(c.System)
		ny, nz := Table8Fixed(c.System)
		out = append(out, TimestepRow{
			System: c.System, Mode: c.Mode, Cores: c.Cores, Nx: c.Nx,
			Model: TimestepTime(m, c.Mode, c.Nx, ny, nz, c.Cores),
			Paper: Breakdown{Transpose: c.PaperTranspose, FFT: c.PaperFFT, Advance: c.PaperAdvance},
		})
	}
	return out
}

// Table11Row compares MPI and hybrid total step times on Mira.
type Table11Row struct {
	Cores                 int
	ModelMPI, ModelHybrid float64
	ModelRatio            float64
	PaperMPI, PaperHybrid float64
	PaperRatio            float64
	Weak                  bool
}

// Table11 derives the MPI vs Hybrid comparison from the Table 9/10 models.
func Table11() []Table11Row {
	var out []Table11Row
	add := func(rows []TimestepRow, weak bool) {
		byCores := map[int]*Table11Row{}
		var order []int
		for _, r := range rows {
			if r.System != "Mira" {
				continue
			}
			e, ok := byCores[r.Cores]
			if !ok {
				e = &Table11Row{Cores: r.Cores, Weak: weak}
				byCores[r.Cores] = e
				order = append(order, r.Cores)
			}
			if r.Mode == ModeMPI {
				e.ModelMPI = r.Model.Total()
				e.PaperMPI = r.Paper.Total()
			} else {
				e.ModelHybrid = r.Model.Total()
				e.PaperHybrid = r.Paper.Total()
			}
		}
		for _, c := range order {
			e := byCores[c]
			if e.ModelHybrid > 0 && e.ModelMPI > 0 {
				e.ModelRatio = e.ModelMPI / e.ModelHybrid
			}
			if e.PaperHybrid > 0 && e.PaperMPI > 0 {
				e.PaperRatio = e.PaperMPI / e.PaperHybrid
			}
			out = append(out, *e)
		}
	}
	add(Table9(), false)
	add(Table10(), true)
	return out
}

// Table2Row models the single-core N-S time-advance characterization of
// Table 2 on the Mira core model: the kernel is memory-bandwidth bound, so
// per-core GFlops follow from the kernel's arithmetic intensity and the
// saturated DDR stream.
type Table2Row struct {
	SIMD          bool
	GFlops        float64
	FracPeak      float64
	DDRBytesCycle float64
	Elapsed       float64 // for the paper's reference problem size
}

// Table2 returns the modeled SIMD / no-SIMD pair of Table 2.
func Table2(m Machine) []Table2Row {
	// Calibrated kernel characterization: ~2000 flops and ~2900 bytes of
	// DDR traffic per spectral point per substep; SIMD compilation
	// multiplies executed flops by ~4.3 while degrading the effective
	// stream (the paper's observed pessimization).
	const bytesPerPoint = 2900.0
	points := 5.0e8 // reference problem of the paper's measurement
	rows := make([]Table2Row, 0, 2)
	for _, simd := range []bool{true, false} {
		bwEff := 0.93 * m.MemBWNode
		flops := points * nsFlopsPerPoint
		if simd {
			bwEff = 0.845 * 0.93 * m.MemBWNode
			flops *= 4.28
		}
		elapsed := points * bytesPerPoint / bwEff
		gf := flops / elapsed / float64(m.CoresPerNode) / 1e9
		rows = append(rows, Table2Row{
			SIMD:          simd,
			GFlops:        gf,
			FracPeak:      gf * 1e9 / m.PeakFlopsCore,
			DDRBytesCycle: bwEff / m.ClockHz,
			Elapsed:       elapsed,
		})
	}
	return rows
}

// Table3Speedup models the on-node threading speedup of the FFT and N-S
// advance kernels (embarrassingly parallel across data lines): linear in
// physical cores, with BG/Q hardware threads adding the paper's ~1.7x/2.0x.
func Table3Speedup(m Machine, threads int) float64 {
	if threads <= m.CoresPerNode {
		return float64(threads)
	}
	hw := float64(threads) / float64(m.CoresPerNode)
	gain := 1 + (m.HWThreadGain-1)*(1-math.Pow(3, 1-hw))
	return float64(m.CoresPerNode) * gain
}

// Table4Speedup models the on-node data-reordering speedup: pure memory
// streaming that saturates the DDR interface (paper Table 4).
func Table4Speedup(m Machine, threads int) float64 {
	c := min(threads, m.CoresPerNode)
	s := m.MemBW(c) / m.MemBW(1)
	if threads > m.CoresPerNode {
		// Extra hardware threads only add contention.
		s *= 1 - 0.04*float64(threads/m.CoresPerNode-1)
	}
	return s
}

// Table4Traffic returns the modeled DDR traffic in bytes/cycle at the given
// thread count.
func Table4Traffic(m Machine, threads int) float64 {
	return Table4Speedup(m, threads) * m.MemBW(1) / m.ClockHz
}
