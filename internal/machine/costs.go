package machine

import "math"

// Mode selects the parallelism model of paper §5: one MPI rank per core, or
// one rank per node with threads covering the node ("Hybrid").
type Mode int

// Parallelism modes.
const (
	ModeMPI Mode = iota
	ModeHybrid
)

func (m Mode) String() string {
	if m == ModeHybrid {
		return "Hybrid"
	}
	return "MPI"
}

// Breakdown is the per-section time split the paper's Tables 9/10 report.
type Breakdown struct {
	Transpose, FFT, Advance float64 // seconds
}

// Total returns the summed step time.
func (b Breakdown) Total() float64 { return b.Transpose + b.FFT + b.Advance }

// a2aParams describes one alltoall phase for costing.
type a2aParams struct {
	p            int     // communicator size
	rpnGroup     int     // ranks of one group on a node (locality)
	rpnNode      int     // total participating ranks per node
	bytesPerRank float64 // bytes contributed by each rank
	totalNodes   int     // job size, for topology contention
	packPasses   float64 // memory passes over the data for pack+unpack
}

// alltoall models one alltoallv phase: local pack/unpack memory passes plus
// either an on-node shuffle (when the group fits in a node) or network
// injection at the topology- and message-size-limited bandwidth plus
// per-message overheads.
func (m Machine) alltoall(a a2aParams) float64 {
	if a.p <= 1 {
		return 0
	}
	dataNode := float64(a.rpnNode) * a.bytesPerRank
	tPack := a.packPasses * dataNode / m.MemBWNode
	nodes := (a.p + a.rpnGroup - 1) / a.rpnGroup
	if nodes <= 1 {
		// Node-local: one more read+write pass through memory.
		return tPack + 2*dataNode/m.MemBWNode
	}
	offFrac := float64(a.p-a.rpnGroup) / float64(a.p)
	bytesOff := dataNode * offFrac
	msgSize := a.bytesPerRank / float64(a.p)
	share := m.TopoShare(a.totalNodes)
	if a.rpnNode > 1 && share > m.MPISatShare {
		// Rank-per-core mode: the fabric is message-saturated at the floor.
		share = m.MPISatShare
	}
	bw := m.NetBWNode * share * m.msgRamp(msgSize)
	tNet := bytesOff / bw
	tLat := m.NetLatency * float64(a.rpnNode) * float64(a.p-1)
	return tPack + tNet + tLat
}

// grid2D picks the PA x PB process grid for a rank count: PB is kept at the
// node width (or the whole job if smaller), the paper's preferred layout.
func grid2D(ranks, rpnNode, cpn int) (pa, pb int) {
	pb = cpn
	if rpnNode == 1 {
		// Hybrid: one rank per node; CommB spans pb nodes.
		pb = 16
	}
	for pb > 1 && ranks%pb != 0 {
		pb /= 2
	}
	if pb < 1 {
		pb = 1
	}
	return ranks / pb, pb
}

// fftFlops returns the flop count of one complex FFT of length n (5 n log2 n)
// or half that for a real transform.
func fftFlops(n int, realT bool) float64 {
	f := 5 * float64(n) * math.Log2(float64(n))
	if realT {
		f /= 2
	}
	return f
}

// xCacheEff models the weak-scaling cache degradation of the x transforms:
// long padded lines fall out of cache (paper §5.2).
func xCacheEff(mx int) float64 {
	const fit = 8192.0
	if float64(mx) <= fit {
		return 1
	}
	return 1 / (1 + 0.35*math.Log2(float64(mx)/fit))
}

// nsFlopsPerPoint is the calibrated operation count of the Navier-Stokes
// time advance per spectral point (solves, matvecs, influence correction).
const nsFlopsPerPoint = 2000.0

// TimestepTime models one full RK3 timestep (three substeps) of the channel
// code on the given machine, mode, grid and core count, returning the
// Transpose / FFT / N-S advance split of Tables 9 and 10.
func TimestepTime(m Machine, mode Mode, nx, ny, nz, cores int) Breakdown {
	nodes := max(1, cores/m.CoresPerNode)
	var ranks, rpnNode int
	if mode == ModeMPI {
		ranks = cores
		rpnNode = m.CoresPerNode
	} else {
		ranks = nodes
		rpnNode = 1
	}
	pa, pb := grid2D(ranks, rpnNode, m.CoresPerNode)

	nkx := nx / 2
	mx, mz := 3*nx/2, 3*nz/2
	fieldBytes := 16 * float64(nkx) * float64(nz) * float64(ny) / float64(ranks)
	padBytes := fieldBytes * 1.5

	// CommB locality: in MPI mode a CommB group is a whole node; in hybrid
	// mode each group spans pb nodes with one rank each.
	rpnGroupB := pb
	if mode == ModeHybrid {
		rpnGroupB = 1
	}
	rpnGroupA := max(1, rpnNode/pb)

	a2a := func(p, rpnGroup int, bytes float64, fields float64) float64 {
		return m.alltoall(a2aParams{
			p: p, rpnGroup: rpnGroup, rpnNode: rpnNode,
			bytesPerRank: bytes * fields, totalNodes: nodes, packPasses: 4,
		})
	}
	// Paper step sequence per substep: 3 fields out (y->z spectral,
	// z->x padded), 5 fields back (x->z padded, z->y spectral).
	transpose := a2a(pb, rpnGroupB, fieldBytes, 3) +
		a2a(pa, rpnGroupA, padBytes, 3) +
		a2a(pa, rpnGroupA, padBytes, 5) +
		a2a(pb, rpnGroupB, fieldBytes, 5)

	// FFT work per node per substep: inverse z + x for 3 fields, forward
	// for 5 fields (x transforms are real; z complex).
	linesZ := float64(nkx) * float64(ny) / float64(nodes)
	linesX := float64(mz) * float64(ny) / float64(nodes)
	flopsZ := 8 * linesZ * fftFlops(mz, false)
	flopsX := 8 * linesX * fftFlops(mx, true)
	// FFTRate and NSRate are single-thread rates; hardware threading (BG/Q
	// SMT) is applied in both modes, as the paper does, and hybrid tasks
	// pay the cross-socket threading efficiency.
	coresEff := float64(m.CoresPerNode) * m.HWThreadGain
	if mode == ModeHybrid {
		coresEff *= m.ThreadEff
	}
	fft := (flopsZ + flopsX/xCacheEff(mx)) / (m.FFTRate * coresEff)

	// N-S advance per node per substep.
	points := float64(nkx) * float64(nz) * float64(ny) / float64(nodes)
	advance := points * nsFlopsPerPoint / (m.NSRate * coresEff)

	return Breakdown{Transpose: 3 * transpose, FFT: 3 * fft, Advance: 3 * advance}
}

// TransposeCycleTime models Table 5: one full transpose cycle
// (x -> z -> y then y -> z -> x, four alltoalls on three fields) for an
// explicit CommA x CommB split, in MPI-per-core mode.
func TransposeCycleTime(m Machine, nx, ny, nz, pa, pb int) float64 {
	ranks := pa * pb
	cores := ranks
	nodes := max(1, cores/m.CoresPerNode)
	rpnNode := m.CoresPerNode
	if ranks < m.CoresPerNode {
		rpnNode = ranks
	}
	// CommB groups are contiguous rank blocks: ranks per node in a group.
	rpnGroupB := min(pb, rpnNode)
	rpnGroupA := max(1, rpnNode/pb)
	nkx := nx / 2
	fieldBytes := 16 * float64(nkx) * float64(nz) * float64(ny) / float64(ranks)
	const fields = 3
	a := m.alltoall(a2aParams{p: pa, rpnGroup: rpnGroupA, rpnNode: rpnNode,
		bytesPerRank: fieldBytes * fields, totalNodes: nodes, packPasses: 0})
	b := m.alltoall(a2aParams{p: pb, rpnGroup: rpnGroupB, rpnNode: rpnNode,
		bytesPerRank: fieldBytes * fields, totalNodes: nodes, packPasses: 0})
	// Table 5 excludes on-node reordering, hence packPasses = 0.
	return 2 * (a + b)
}

// FFTKind selects the parallel FFT implementation for Table 6.
type FFTKind int

// Parallel FFT kernels compared in Table 6.
const (
	KindCustom FFTKind = iota
	KindP3DFFT
)

// FFTCycleTime models Table 6: one full parallel-FFT cycle (four transposes,
// four FFT stages, no padding, the final y-direction transform omitted).
// It returns the predicted seconds and false when the kernel does not fit
// in node memory (P3DFFT's 3x buffers, the paper's "N/A").
func FFTCycleTime(m Machine, kind FFTKind, nx, ny, nz, cores int) (float64, bool) {
	nodes := max(1, cores/m.CoresPerNode)
	var ranks, rpnNode int
	var nkx int
	var packPasses, bufFactor float64
	var rateMul float64
	if kind == KindCustom {
		// Hybrid: one rank per node, threaded kernels, Nyquist dropped,
		// 1x communication scratch.
		ranks = nodes
		rpnNode = 1
		nkx = nx / 2
		packPasses = 4
		bufFactor = 2.5
		rateMul = m.ThreadEff * m.HWThreadGain
	} else {
		// P3DFFT: rank per core, Nyquist kept, 3x buffers, no threading
		// (so no hardware-thread gain on BG/Q).
		ranks = cores
		rpnNode = m.CoresPerNode
		nkx = nx/2 + 1
		packPasses = 6
		bufFactor = 6
		rateMul = 1
	}
	if ranks == 0 {
		return 0, false
	}
	pa, pb := grid2D(ranks, rpnNode, m.CoresPerNode)
	fieldBytes := 16 * float64(nkx) * float64(nz) * float64(ny) / float64(ranks)
	if fieldBytes*bufFactor*float64(rpnNode) > m.NodeMemBytes {
		return 0, false
	}
	rpnGroupB := pb
	if rpnNode == 1 {
		rpnGroupB = 1
	} else {
		rpnGroupB = min(pb, rpnNode)
	}
	rpnGroupA := max(1, rpnNode/pb)
	a2a := func(p, rpnGroup int) float64 {
		return m.alltoall(a2aParams{p: p, rpnGroup: rpnGroup, rpnNode: rpnNode,
			bytesPerRank: fieldBytes, totalNodes: nodes, packPasses: packPasses})
	}
	transpose := 2*a2a(pb, rpnGroupB) + 2*a2a(pa, rpnGroupA)

	linesZ := float64(nkx) * float64(ny) / float64(nodes)
	linesX := float64(nz) * float64(ny) / float64(nodes)
	flops := 2*linesZ*fftFlops(nz, false) + 2*linesX*fftFlops(nx, true)
	fft := flops / (m.FFTRate * float64(m.CoresPerNode) * rateMul)
	return transpose + fft, true
}
