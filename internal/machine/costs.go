package machine

import (
	"math"

	"channeldns/internal/schedule"
)

// Mode selects the parallelism model of paper §5: one MPI rank per core, or
// one rank per node with threads covering the node ("Hybrid").
type Mode int

// Parallelism modes.
const (
	ModeMPI Mode = iota
	ModeHybrid
)

func (m Mode) String() string {
	if m == ModeHybrid {
		return "Hybrid"
	}
	return "MPI"
}

// Breakdown is the per-section time split the paper's Tables 9/10 report,
// produced by interpreting a schedule. The paper columns bucket ops by
// KIND: transpose + reorder -> Transpose, fft -> FFT, solve -> Advance.
// Phases buckets the same seconds by each op's live-taxonomy PHASE name, so
// a model prediction lines up column-for-column with a telemetry report.
// The two views fold differently on purpose: the live code times its fused
// x-transform/product block under "nonlinear" and the banded advance under
// "viscous_solve"/"pressure", so the paper's "FFT" column = fft_forward +
// fft_inverse + the x-stage share of nonlinear, and "N-S advance" =
// nonlinear + viscous_solve + pressure minus that share.
type Breakdown struct {
	Transpose, FFT, Advance float64 // seconds, the paper's table columns
	// Collective is reduction/broadcast time outside the transpose path
	// (zero in the paper's tables, which exclude it).
	Collective float64
	// Phases holds the same interpreted seconds keyed by canonical phase
	// name (nil for paper-measurement breakdowns, which only publish the
	// three columns).
	Phases map[string]float64
}

// Total returns the summed step time.
func (b Breakdown) Total() float64 { return b.Transpose + b.FFT + b.Advance + b.Collective }

// a2aParams describes one alltoall wire phase for costing. Pack/unpack
// memory passes are separate Reorder ops in the schedule.
type a2aParams struct {
	p            int     // communicator size
	rpnGroup     int     // ranks of one group on a node (locality)
	rpnNode      int     // total participating ranks per node
	bytesPerRank float64 // bytes contributed by each rank
	totalNodes   int     // job size, for topology contention
}

// alltoall models one alltoallv wire phase: an on-node shuffle when the
// group fits in a node, otherwise network injection at the topology- and
// message-size-limited bandwidth plus per-message overheads.
func (m Machine) alltoall(a a2aParams) float64 {
	if a.p <= 1 {
		return 0
	}
	dataNode := float64(a.rpnNode) * a.bytesPerRank
	nodes := (a.p + a.rpnGroup - 1) / a.rpnGroup
	if nodes <= 1 {
		// Node-local: one read+write pass through memory.
		return 2 * dataNode / m.MemBWNode
	}
	offFrac := float64(a.p-a.rpnGroup) / float64(a.p)
	bytesOff := dataNode * offFrac
	msgSize := a.bytesPerRank / float64(a.p)
	share := m.TopoShare(a.totalNodes)
	if a.rpnNode > 1 && share > m.MPISatShare {
		// Rank-per-core mode: the fabric is message-saturated at the floor.
		share = m.MPISatShare
	}
	bw := m.NetBWNode * share * m.msgRamp(msgSize)
	tNet := bytesOff / bw
	tLat := m.NetLatency * float64(a.rpnNode) * float64(a.p-1)
	return tNet + tLat
}

// grid2D picks the PA x PB process grid for a rank count: PB is kept at the
// node width (or the whole job if smaller), the paper's preferred layout.
func grid2D(ranks, rpnNode, cpn int) (pa, pb int) {
	pb = cpn
	if rpnNode == 1 {
		// Hybrid: one rank per node; CommB spans pb nodes.
		pb = 16
	}
	for pb > 1 && ranks%pb != 0 {
		pb /= 2
	}
	if pb < 1 {
		pb = 1
	}
	return ranks / pb, pb
}

// xCacheEff models the weak-scaling cache degradation of the x transforms:
// long padded lines fall out of cache (paper §5.2).
func xCacheEff(mx int) float64 {
	const fit = 8192.0
	if float64(mx) <= fit {
		return 1
	}
	return 1 / (1 + 0.35*math.Log2(float64(mx)/fit))
}

// nsFlopsPerPoint re-exports the schedule package's calibrated N-S advance
// operation count (Table 2 uses it directly).
const nsFlopsPerPoint = schedule.NSFlopsPerPoint

// timestepPackPasses is the on-node pack+unpack memory passes around each
// timestep transpose (pack read+write, unpack read+write).
const timestepPackPasses = 4

// TimestepProgram builds the paper's RK3 timestep schedule (5 products, the
// paper's accounting) and the placement environment for the given machine,
// mode, grid and core count — the program whose interpretation is one row
// of Tables 9/10/11.
func TimestepProgram(m Machine, mode Mode, nx, ny, nz, cores int) (*schedule.Schedule, Env) {
	nodes := max(1, cores/m.CoresPerNode)
	var ranks, rpnNode int
	if mode == ModeMPI {
		ranks = cores
		rpnNode = m.CoresPerNode
	} else {
		ranks = nodes
		rpnNode = 1
	}
	pa, pb := grid2D(ranks, rpnNode, m.CoresPerNode)
	s := schedule.Timestep(schedule.TimestepParams{
		Nx: nx, Ny: ny, Nz: nz, PA: pa, PB: pb,
		Products: 5, PackPasses: timestepPackPasses,
	})
	// CommB locality: in MPI mode a CommB group is a whole node; in hybrid
	// mode each group spans pb nodes with one rank each.
	rpnGroupB := pb
	if mode == ModeHybrid {
		rpnGroupB = 1
	}
	// FFTRate and NSRate are single-thread rates; hardware threading (BG/Q
	// SMT) is applied in both modes, as the paper does, and hybrid tasks
	// pay the cross-socket threading efficiency.
	coresEff := float64(m.CoresPerNode) * m.HWThreadGain
	if mode == ModeHybrid {
		coresEff *= m.ThreadEff
	}
	env := Env{
		Machine: m, Mode: mode, RPNNode: rpnNode, Nodes: nodes,
		RPNGroupA: max(1, rpnNode/pb), RPNGroupB: rpnGroupB,
		CoresEff: coresEff,
	}
	return s, env
}

// TimestepTime models one full RK3 timestep (three substeps) of the channel
// code on the given machine, mode, grid and core count, returning the
// Transpose / FFT / N-S advance split of Tables 9 and 10.
func TimestepTime(m Machine, mode Mode, nx, ny, nz, cores int) Breakdown {
	s, env := TimestepProgram(m, mode, nx, ny, nz, cores)
	return Interpret(env, s)
}

// TransposeCycleTime models Table 5: one full transpose cycle
// (x -> z -> y then y -> z -> x, four alltoalls on three fields) for an
// explicit CommA x CommB split, in MPI-per-core mode. Table 5 excludes
// on-node reordering, so the schedule carries no Reorder ops.
func TransposeCycleTime(m Machine, nx, ny, nz, pa, pb int) float64 {
	ranks := pa * pb
	nodes := max(1, ranks/m.CoresPerNode)
	rpnNode := m.CoresPerNode
	if ranks < m.CoresPerNode {
		rpnNode = ranks
	}
	s := schedule.TransposeCycle(schedule.TransposeCycleParams{
		Nx: nx, Ny: ny, Nz: nz, PA: pa, PB: pb, Fields: 3,
	})
	env := Env{
		Machine: m, Mode: ModeMPI, RPNNode: rpnNode, Nodes: nodes,
		// CommB groups are contiguous rank blocks: ranks per node in a group.
		RPNGroupA: max(1, rpnNode/pb), RPNGroupB: min(pb, rpnNode),
	}
	return Interpret(env, s).Total()
}

// FFTKind selects the parallel FFT implementation for Table 6; the kinds
// (and their layout constants) live in internal/schedule.
type FFTKind = schedule.FFTKind

// Parallel FFT kernels compared in Table 6.
const (
	KindCustom = schedule.FFTCustom
	KindP3DFFT = schedule.FFTP3DFFT
)

// FFTCycleTime models Table 6: one full parallel-FFT cycle (four transposes,
// four FFT stages, no padding, the final y-direction transform omitted).
// It returns the predicted seconds and false when the kernel does not fit
// in node memory (P3DFFT's 3x buffers, the paper's "N/A").
func FFTCycleTime(m Machine, kind FFTKind, nx, ny, nz, cores int) (float64, bool) {
	nodes := max(1, cores/m.CoresPerNode)
	var ranks, rpnNode int
	var rateMul float64
	if kind == KindCustom {
		// Hybrid: one rank per node, threaded kernels.
		ranks = nodes
		rpnNode = 1
		rateMul = m.ThreadEff * m.HWThreadGain
	} else {
		// P3DFFT: rank per core, no threading (so no hardware-thread gain
		// on BG/Q).
		ranks = cores
		rpnNode = m.CoresPerNode
		rateMul = 1
	}
	if ranks == 0 {
		return 0, false
	}
	pa, pb := grid2D(ranks, rpnNode, m.CoresPerNode)
	s := schedule.FFTCycle(schedule.FFTCycleParams{
		Nx: nx, Ny: ny, Nz: nz, PA: pa, PB: pb, Fields: 1, Kind: kind,
	})
	rpnGroupB := pb
	if rpnNode == 1 {
		rpnGroupB = 1
	} else {
		rpnGroupB = min(pb, rpnNode)
	}
	env := Env{
		Machine: m, Mode: ModeMPI, RPNNode: rpnNode, Nodes: nodes,
		RPNGroupA: max(1, rpnNode/pb), RPNGroupB: rpnGroupB,
		CoresEff: float64(m.CoresPerNode) * rateMul,
	}
	if !Feasible(env, s) {
		return 0, false
	}
	return Interpret(env, s).Total(), true
}
