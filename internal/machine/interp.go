package machine

import "channeldns/internal/schedule"

// The machine model is a cost interpreter: internal/schedule declares WHAT
// one timestep (or Table 5/6 sub-cycle) does — the ordered transposes, FFT
// stages, reorders and banded solves — and Interpret walks that program
// applying this package's per-platform cost functions (alltoall locality and
// contention, memory streaming, calibrated kernel rates). Tables 5/6/9/10/11
// are all produced this way; there are no per-table time formulas.

// Env maps a schedule onto a platform: how the schedule's ranks are placed
// on nodes and what effective compute rate each node delivers. The table
// wrappers (TimestepTime, FFTCycleTime, ...) construct the paper's
// placements; MPIEnv builds the rank-per-core default for live reports.
type Env struct {
	Machine Machine
	Mode    Mode
	// RPNNode is the number of participating ranks per node; Nodes is the
	// job size in nodes (topology contention operates on it).
	RPNNode int
	Nodes   int
	// RPNGroupA/B is the node-locality of one CommA/CommB group: how many
	// of a group's ranks share a node (1 when every member is on its own
	// node, the full group when it fits in a node).
	RPNGroupA, RPNGroupB int
	// CoresEff is the effective core count compute rates are multiplied
	// by: physical cores x hardware-thread gain, degraded by the hybrid
	// threading efficiency when one task spans the node.
	CoresEff float64
}

// MPIEnv is the rank-per-core placement for a schedule at laptop/live
// scale: every rank on its own core, CommB groups packed contiguously.
// bench-diff -model uses it to price a live report's schedule.
func MPIEnv(m Machine, s *schedule.Schedule) Env {
	ranks := max(1, s.Ranks)
	rpnNode := min(m.CoresPerNode, ranks)
	pb := max(1, s.PB)
	return Env{
		Machine: m, Mode: ModeMPI,
		RPNNode: rpnNode, Nodes: max(1, ranks/m.CoresPerNode),
		RPNGroupA: max(1, rpnNode/pb), RPNGroupB: min(pb, rpnNode),
		CoresEff: float64(m.CoresPerNode) * m.HWThreadGain,
	}
}

// Interpret prices every op of the schedule under the environment and
// returns the accumulated breakdown: paper columns bucketed by op kind,
// live-taxonomy seconds bucketed by op phase.
func Interpret(env Env, s *schedule.Schedule) Breakdown {
	m := env.Machine
	b := Breakdown{Phases: map[string]float64{}}
	for _, op := range s.Ops {
		var t float64
		switch op.Kind {
		case schedule.OpTranspose:
			if op.CommSize > 1 {
				rpnGroup := env.RPNGroupB
				if op.Comm == "A" {
					rpnGroup = env.RPNGroupA
				}
				t = m.alltoall(a2aParams{
					p: op.CommSize, rpnGroup: rpnGroup, rpnNode: env.RPNNode,
					bytesPerRank: op.BytesPerRank, totalNodes: env.Nodes,
				})
			}
			b.Transpose += t
		case schedule.OpReorder:
			// Pack/unpack memory passes stream the payload of every rank on
			// the node through DDR. Degenerate single-rank groups exchange
			// nothing and are not repacked (matching alltoall's p<=1 case).
			if op.CommSize > 1 {
				t = op.Passes * float64(env.RPNNode) * op.BytesPerRank / m.MemBWNode
			}
			b.Transpose += t
		case schedule.OpOverlap:
			// Pipelined transpose fused with the FFT stage it hides: wire and
			// compute proceed concurrently, so the op costs the longer of the
			// two plus the exposed tail — the first chunk's wire time, which
			// nothing precedes to hide it under. The compute share lands on the
			// op's FFTPhase (and the FFT table column); the rest stays on the
			// transpose phase, so model and measurement split the same way.
			var wire float64
			if op.CommSize > 1 {
				rpnGroup := env.RPNGroupB
				if op.Comm == "A" {
					rpnGroup = env.RPNGroupA
				}
				wire = m.alltoall(a2aParams{
					p: op.CommSize, rpnGroup: rpnGroup, rpnNode: env.RPNNode,
					bytesPerRank: op.BytesPerRank, totalNodes: env.Nodes,
				})
			}
			flops := op.Flops
			if op.Axis == "x" && op.Padded {
				flops /= xCacheEff(op.Points)
			}
			compute := flops / float64(env.Nodes) / (m.FFTRate * env.CoresEff)
			t = compute
			if wire > t {
				t = wire
			}
			t += wire / float64(max(1, op.Chunks))
			b.Transpose += t - compute
			b.FFT += compute
			b.Phases[op.Phase] += t - compute
			b.Phases[op.FFTPhase] += compute
			continue
		case schedule.OpFFT:
			flops := op.Flops
			if op.Axis == "x" && op.Padded {
				// Long padded x lines fall out of cache under weak scaling
				// (paper §5.2); unpadded cycle stages keep streaming speed.
				flops /= xCacheEff(op.Points)
			}
			t = flops / float64(env.Nodes) / (m.FFTRate * env.CoresEff)
			b.FFT += t
		case schedule.OpSolve:
			t = op.Flops / float64(env.Nodes) / (m.NSRate * env.CoresEff)
			b.Advance += t
		case schedule.OpCollective:
			// Latency-dominated tree plus payload injection at the
			// contended share.
			p := max(2, op.CommSize)
			t = m.NetLatency*log2ceil(p) +
				op.BytesPerRank/(m.NetBWNode*m.TopoShare(env.Nodes))
			b.Collective += t
		}
		b.Phases[op.Phase] += t
	}
	return b
}

// log2ceil returns ceil(log2(n)) as a float for n >= 1.
func log2ceil(n int) float64 {
	var l float64
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// Feasible reports whether the schedule's resident working set fits in node
// memory under the environment's placement (the Table 6 "N/A" rows).
func Feasible(env Env, s *schedule.Schedule) bool {
	if s.ResidentBytesPerRank == 0 {
		return true
	}
	return s.ResidentBytesPerRank*float64(env.RPNNode) <= env.Machine.NodeMemBytes
}
