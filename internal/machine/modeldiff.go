package machine

import (
	"fmt"
	"io"

	"channeldns/internal/schedule"
	"channeldns/internal/telemetry"
)

// Model-vs-measured comparison: the bench-diff -model mode. A live report's
// schedule block is priced under a machine's cost functions (Interpret) and
// the per-phase predictions are set against the report's measured per-phase
// seconds. Absolute agreement is not expected — the model is calibrated to
// the paper's platforms, not the machine the report ran on — so each phase's
// measured/modeled ratio is normalized by the overall ratio, and a phase is
// flagged only when its normalized ratio drifts beyond a tolerance: the
// model and the measurement disagree about the SHAPE of the breakdown, which
// is what catches a phase that regressed (or a model that rotted) even when
// everything got uniformly faster hardware.

// ModelRow is one phase of a model-vs-measured comparison.
type ModelRow struct {
	Phase string
	// MeasuredSeconds is the mean-rank wall clock per schedule execution;
	// ModeledSeconds is the interpreter's prediction for one execution.
	MeasuredSeconds float64
	ModeledSeconds  float64
	// Ratio is measured/modeled; Normalized divides out the run's overall
	// ratio, so 1.0 means "this phase's share matches the model exactly".
	// Both are 0 when either side has no time in the phase.
	Ratio      float64
	Normalized float64
	Flagged    bool
}

// ModelDiff prices rep.Schedule under machine m (rank-per-core placement)
// and compares per-phase measured seconds against the prediction, flagging
// phases whose normalized ratio falls outside [1/tol, tol]. executions is
// the number of times the schedule ran (steps for timestep reports, iters
// for cycle reports); values < 1 are treated as 1. Returns an error when
// the report carries no schedule block.
func ModelDiff(m Machine, rep *telemetry.Report, executions int64, tol float64) ([]ModelRow, error) {
	if rep.Schedule == nil {
		return nil, fmt.Errorf("report %q carries no schedule block", rep.Table)
	}
	if tol <= 1 {
		tol = 3
	}
	if executions < 1 {
		executions = 1
	}
	modeled := Interpret(MPIEnv(m, rep.Schedule), rep.Schedule).Phases

	measured := map[string]float64{}
	for _, p := range rep.Phases {
		measured[p.Phase] = p.MeanRankSeconds / float64(executions)
	}

	// Overall ratio over the phases both sides have time in.
	var sumMeas, sumModel float64
	for ph, t := range modeled {
		if measured[ph] > 0 && t > 0 {
			sumMeas += measured[ph]
			sumModel += t
		}
	}
	overall := 0.0
	if sumModel > 0 {
		overall = sumMeas / sumModel
	}

	var rows []ModelRow
	for _, name := range schedule.PhaseNames {
		meas, mod := measured[name], modeled[name]
		if meas == 0 && mod == 0 {
			continue
		}
		row := ModelRow{Phase: name, MeasuredSeconds: meas, ModeledSeconds: mod}
		if meas > 0 && mod > 0 {
			row.Ratio = meas / mod
			if overall > 0 {
				row.Normalized = row.Ratio / overall
				row.Flagged = row.Normalized > tol || row.Normalized < 1/tol
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteModelDiff renders the comparison as a fixed-width table and returns
// the number of flagged phases.
func WriteModelDiff(w io.Writer, m Machine, rows []ModelRow, executions int64) int {
	fmt.Fprintf(w, "model-vs-measured per schedule execution (%d executions, machine %s, rank-per-core)\n",
		executions, m.Name)
	fmt.Fprintf(w, "%-6s  %-14s  %12s  %12s  %8s  %10s\n",
		"", "phase", "measured", "modeled", "ratio", "normalized")
	flagged := 0
	for _, r := range rows {
		mark := ""
		if r.Flagged {
			mark = "DRIFT"
			flagged++
		}
		ratio := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(w, "%-6s  %-14s  %12.3e  %12.3e  %8s  %10s\n",
			mark, r.Phase, r.MeasuredSeconds, r.ModeledSeconds, ratio(r.Ratio), ratio(r.Normalized))
	}
	return flagged
}
