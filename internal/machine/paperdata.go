package machine

// Reference values transcribed from the paper's tables, used by the
// benchmark harness to print paper-vs-model comparisons and by the tests to
// anchor the calibration. Times are seconds.

// Table5Case is one row of Table 5 (global MPI communication performance).
type Table5Case struct {
	System   string
	PA, PB   int
	PaperSec float64
}

// Table5Paper reproduces the configurations of Table 5.
var Table5Paper = []Table5Case{
	{"Mira", 512, 16, 0.386},
	{"Mira", 256, 32, 0.462},
	{"Mira", 128, 64, 0.593},
	{"Mira", 64, 128, 0.609},
	{"Mira", 32, 256, 0.614},
	{"Mira", 16, 512, 0.626},
	{"Lonestar", 32, 12, 2.966},
	{"Lonestar", 16, 24, 3.317},
	{"Lonestar", 8, 48, 3.669},
	{"Lonestar", 4, 96, 3.775},
}

// Table5Grid returns the benchmark grid used on each system in Table 5.
func Table5Grid(system string) (nx, ny, nz int) {
	if system == "Lonestar" {
		return 1536, 384, 1024
	}
	return 2048, 1024, 1024
}

// Table6Case is one row of Table 6 (parallel FFT strong scaling).
type Table6Case struct {
	System      string
	Grid        [3]int // Nx, Ny, Nz
	Cores       int
	PaperP3DFFT float64 // 0 => N/A (inadequate memory)
	PaperCustom float64
}

// Table6Paper reproduces Table 6's configurations and measurements.
var Table6Paper = []Table6Case{
	{"Mira", [3]int{2048, 1024, 1024}, 128, 11.5, 5.38},
	{"Mira", [3]int{2048, 1024, 1024}, 256, 5.88, 2.78},
	{"Mira", [3]int{2048, 1024, 1024}, 512, 2.95, 1.18},
	{"Mira", [3]int{2048, 1024, 1024}, 1024, 1.46, 0.580},
	{"Mira", [3]int{2048, 1024, 1024}, 2048, 0.724, 0.287},
	{"Mira", [3]int{2048, 1024, 1024}, 4096, 0.360, 0.139},
	{"Mira", [3]int{2048, 1024, 1024}, 8192, 0.179, 0.068},
	{"Mira", [3]int{18432, 12288, 12288}, 65536, 0, 30.5},
	{"Mira", [3]int{18432, 12288, 12288}, 131072, 0, 16.2},
	{"Mira", [3]int{18432, 12288, 12288}, 262144, 12.4, 8.51},
	{"Mira", [3]int{18432, 12288, 12288}, 393216, 10.1, 5.85},
	{"Mira", [3]int{18432, 12288, 12288}, 524288, 6.90, 4.04},
	{"Mira", [3]int{18432, 12288, 12288}, 786432, 4.55, 3.12},
	{"Lonestar", [3]int{768, 768, 768}, 12, 0, 6.00},
	{"Lonestar", [3]int{768, 768, 768}, 24, 2.67, 3.63},
	{"Lonestar", [3]int{768, 768, 768}, 48, 1.57, 2.13},
	{"Lonestar", [3]int{768, 768, 768}, 96, 0.873, 1.12},
	{"Lonestar", [3]int{768, 768, 768}, 192, 0.547, 0.580},
	{"Lonestar", [3]int{768, 768, 768}, 384, 0.294, 0.297},
	{"Lonestar", [3]int{768, 768, 768}, 768, 0.212, 0.172},
	{"Lonestar", [3]int{768, 768, 768}, 1536, 0.193, 0.111},
	{"Stampede", [3]int{1024, 1024, 1024}, 16, 0, 6.88},
	{"Stampede", [3]int{1024, 1024, 1024}, 32, 0, 4.42},
	{"Stampede", [3]int{1024, 1024, 1024}, 64, 2.16, 2.51},
	{"Stampede", [3]int{1024, 1024, 1024}, 128, 1.32, 1.39},
	{"Stampede", [3]int{1024, 1024, 1024}, 256, 0.676, 0.718},
	{"Stampede", [3]int{1024, 1024, 1024}, 512, 0.421, 0.377},
	{"Stampede", [3]int{1024, 1024, 1024}, 1024, 0.296, 0.199},
	{"Stampede", [3]int{1024, 1024, 1024}, 2048, 0.201, 0.113},
	{"Stampede", [3]int{1024, 1024, 1024}, 4096, 0.194, 0.0636},
}

// Table9Case is one row of Table 9 (strong scaling of a timestep).
type Table9Case struct {
	System                   string
	Mode                     Mode
	Cores                    int
	PaperTranspose, PaperFFT float64
	PaperAdvance, PaperTotal float64
}

// Table7Grid returns the strong-scaling grid of Table 7 per system.
func Table7Grid(system string) (nx, ny, nz int) {
	switch system {
	case "Mira":
		return 18432, 1536, 12288
	case "Lonestar":
		return 1024, 384, 1536
	case "Stampede":
		return 2048, 512, 4096
	default: // Blue Waters
		return 2048, 1024, 2048
	}
}

// Table9Paper reproduces Table 9.
var Table9Paper = []Table9Case{
	{"Mira", ModeMPI, 131072, 26.9, 7.32, 6.98, 41.2},
	{"Mira", ModeMPI, 262144, 13.6, 4.02, 3.44, 21.1},
	{"Mira", ModeMPI, 393216, 8.92, 2.61, 2.28, 13.8},
	{"Mira", ModeMPI, 524288, 6.81, 2.09, 1.75, 10.6},
	{"Mira", ModeMPI, 786432, 4.50, 1.36, 1.21, 7.06},
	{"Mira", ModeHybrid, 65536, 39.8, 13.8, 13.6, 67.2},
	{"Mira", ModeHybrid, 131072, 20.9, 7.03, 6.76, 34.7},
	{"Mira", ModeHybrid, 262144, 11.8, 3.61, 3.34, 18.7},
	{"Mira", ModeHybrid, 393216, 8.83, 2.43, 2.22, 13.5},
	{"Mira", ModeHybrid, 524288, 5.73, 1.89, 1.67, 9.29},
	{"Mira", ModeHybrid, 786432, 4.70, 1.27, 1.11, 7.09},
	{"Lonestar", ModeMPI, 192, 9.53, 2.06, 3.00, 14.6},
	{"Lonestar", ModeMPI, 384, 4.70, 1.04, 1.50, 7.24},
	{"Lonestar", ModeMPI, 768, 2.38, 0.51, 0.75, 3.65},
	{"Lonestar", ModeMPI, 1536, 1.29, 0.26, 0.37, 1.93},
	{"Stampede", ModeMPI, 512, 18.9, 5.30, 6.85, 31.0},
	{"Stampede", ModeMPI, 1024, 10.9, 2.68, 3.40, 17.0},
	{"Stampede", ModeMPI, 2048, 7.60, 1.36, 1.72, 10.7},
	{"Stampede", ModeMPI, 4096, 3.83, 0.67, 0.84, 5.35},
	{"BlueWaters", ModeMPI, 2048, 17.9, 2.73, 3.53, 24.2},
	{"BlueWaters", ModeMPI, 4096, 16.2, 1.37, 1.76, 19.4},
	{"BlueWaters", ModeMPI, 8192, 16.2, 0.650, 0.880, 17.7},
	{"BlueWaters", ModeMPI, 16384, 9.88, 0.356, 0.440, 10.7},
}

// Table10Case is one row of Table 10 (weak scaling of a timestep): Nx
// varies with the core count, Ny and Nz fixed per system (Table 8).
type Table10Case struct {
	System                   string
	Mode                     Mode
	Cores, Nx                int
	PaperTranspose, PaperFFT float64
	PaperAdvance, PaperTotal float64
}

// Table8Fixed returns the fixed Ny, Nz of the weak-scaling grids.
func Table8Fixed(system string) (ny, nz int) {
	switch system {
	case "Mira":
		return 1536, 12288
	case "Lonestar":
		return 384, 1536
	case "Stampede":
		return 512, 4096
	default:
		return 1024, 2048
	}
}

// Table10Paper reproduces Table 10.
var Table10Paper = []Table10Case{
	{"Mira", ModeMPI, 65536, 4608, 9.87, 3.30, 3.46, 16.6},
	{"Mira", ModeMPI, 131072, 9216, 13.6, 3.52, 3.45, 20.6},
	{"Mira", ModeMPI, 262144, 18432, 13.6, 4.02, 3.44, 21.1},
	{"Mira", ModeMPI, 393216, 27648, 16.0, 4.41, 3.43, 23.9},
	{"Mira", ModeMPI, 524288, 36864, 13.5, 5.50, 3.48, 22.5},
	{"Mira", ModeMPI, 786432, 55296, 13.7, 7.28, 3.50, 24.5},
	{"Mira", ModeHybrid, 65536, 4608, 9.83, 3.17, 3.34, 16.3},
	{"Mira", ModeHybrid, 131072, 9216, 10.3, 3.36, 3.34, 17.0},
	{"Mira", ModeHybrid, 262144, 18432, 11.8, 3.61, 3.34, 18.7},
	{"Mira", ModeHybrid, 393216, 27648, 13.4, 4.14, 3.34, 20.8},
	{"Mira", ModeHybrid, 524288, 36864, 11.8, 5.08, 3.35, 20.2},
	{"Mira", ModeHybrid, 786432, 55296, 14.5, 7.60, 3.34, 25.5},
	{"Lonestar", ModeMPI, 192, 512, 4.73, 1.00, 1.51, 7.24},
	{"Lonestar", ModeMPI, 384, 1024, 4.70, 1.04, 1.50, 7.24},
	{"Lonestar", ModeMPI, 768, 2048, 4.70, 1.17, 1.50, 7.37},
	{"Lonestar", ModeMPI, 1536, 4096, 5.01, 1.31, 1.50, 7.81},
	{"Stampede", ModeMPI, 512, 512, 4.85, 1.21, 1.71, 7.77},
	{"Stampede", ModeMPI, 1024, 1024, 5.66, 1.24, 1.75, 8.65},
	{"Stampede", ModeMPI, 2048, 2048, 6.78, 1.34, 1.73, 9.86},
	{"Stampede", ModeMPI, 4096, 4096, 7.11, 1.47, 1.73, 10.3},
	{"BlueWaters", ModeMPI, 2048, 1024, 11.1, 1.26, 1.76, 14.1},
	{"BlueWaters", ModeMPI, 4096, 2048, 16.2, 1.37, 1.76, 19.4},
	{"BlueWaters", ModeMPI, 8192, 4096, 20.44, 1.49, 1.76, 23.7},
	{"BlueWaters", ModeMPI, 16384, 8192, 25.66, 1.70, 1.76, 29.1},
}

// Table1Paper holds the normalized solver times of Table 1 (relative to the
// Netlib reference complex banded solver) for the shape comparison.
type Table1Row struct {
	Bandwidth                            int
	LonestarR, LonestarC, LonestarCustom float64
	MiraESSL, MiraCustom                 float64
}

// Table1Paper reproduces Table 1.
var Table1Paper = []Table1Row{
	{3, 0.67, 0.65, 0.14, 0.81, 0.16},
	{5, 0.55, 0.61, 0.12, 0.85, 0.19},
	{7, 0.53, 0.58, 0.11, 0.81, 0.19},
	{9, 0.53, 0.56, 0.10, 0.84, 0.19},
	{11, 0.47, 0.56, 0.10, 0.88, 0.19},
	{13, 0.45, 0.55, 0.11, 0.74, 0.21},
	{15, 0.41, 0.53, 0.11, 0.71, 0.20},
}
