// Package machine is the performance-model substrate that stands in for the
// paper's benchmark platforms (Mira, Lonestar, Stampede, Blue Waters). The
// petascale tables of the paper (5, 6, 9, 10, 11) report times at core
// counts that cannot physically be run here, so the model executes the same
// operation schedule as the real code — the per-substep transpose traffic on
// the CommA/CommB sub-communicators, the batched FFT work, the
// memory-bandwidth-bound Navier-Stokes advance and data reordering — against
// analytic machine descriptions. Parameters are calibrated against the
// paper's measurements; EXPERIMENTS.md records model vs paper for every
// table, and the tests in this package assert the qualitative shape (who
// wins, where efficiency falls, where crossovers sit), which is produced by
// the schedule structure rather than the calibration.
package machine

import "math"

// Machine describes one benchmark platform.
type Machine struct {
	Name             string
	CoresPerNode     int
	HWThreadsPerCore int
	ClockHz          float64
	PeakFlopsCore    float64 // theoretical peak flops per core

	// Effective kernel rates (flops/s per core), calibrated: spectral
	// kernels run far below peak because they are memory bound.
	FFTRate float64
	NSRate  float64

	// Memory system: node STREAM bandwidth, the core-count scale of its
	// saturation (Table 4 behaviour), and node memory capacity.
	MemBWNode    float64
	MemSatCores  float64
	NodeMemBytes float64

	// On-node parallel efficiency of a single hybrid task spanning the
	// node (sockets, NUMA), and the extra throughput from using all
	// hardware threads (BG/Q's four-way SMT gives ~2x, Table 3).
	ThreadEff    float64
	HWThreadGain float64

	// Network: per-message overhead, injection bandwidth per node, and the
	// topology contention law share(nodes) = min(1, (TopoBase/nodes)^TopoExp).
	NetLatency float64
	NetBWNode  float64
	TopoBase   float64
	TopoExp    float64
	// Bandwidth ramp: messages below MsgRampBytes do not reach full
	// injection bandwidth (eager/rendezvous and packetization effects).
	MsgRampBytes float64
	// MPISatShare is the network-share ceiling when every core runs its own
	// rank: the flood of small messages keeps the fabric saturated at this
	// fraction of injection bandwidth regardless of job size (which is why
	// the paper's MPI-per-core transposes scale almost perfectly while the
	// hybrid mode starts faster and degrades toward the same floor).
	MPISatShare float64
}

// MemBW returns the aggregate memory bandwidth delivered when c cores
// stream concurrently: a saturating exponential normalized to MemBWNode at
// the full node, reproducing the contention curve of Table 4.
func (m Machine) MemBW(c int) float64 {
	if c <= 0 {
		return 0
	}
	full := 1 - math.Exp(-float64(m.CoresPerNode)/m.MemSatCores)
	frac := 1 - math.Exp(-float64(c)/m.MemSatCores)
	return m.MemBWNode * frac / full
}

// TopoShare returns the fraction of injection bandwidth usable during a
// machine-wide alltoall on the given number of nodes.
func (m Machine) TopoShare(nodes int) float64 {
	if nodes <= 1 || float64(nodes) <= m.TopoBase {
		return 1
	}
	return math.Pow(m.TopoBase/float64(nodes), m.TopoExp)
}

// msgRamp returns the bandwidth efficiency of messages of the given size.
func (m Machine) msgRamp(bytes float64) float64 {
	if bytes <= 0 {
		return 0.01
	}
	return bytes / (bytes + m.MsgRampBytes)
}

// The four benchmark platforms of paper §3, with hardware figures from the
// paper and public system documentation; starred fields are calibrated to
// the paper's measurements.
var (
	// Mira: BlueGene/Q, 16 cores/node at 1.6 GHz (12.8 GF/core peak), 4
	// hardware threads per core, 16 GB/node, 5D torus.
	Mira = Machine{
		Name: "Mira", CoresPerNode: 16, HWThreadsPerCore: 4,
		ClockHz: 1.6e9, PeakFlopsCore: 12.8e9,
		FFTRate: 0.70e9, NSRate: 0.56e9,
		MemBWNode: 28.8e9, MemSatCores: 6.5, NodeMemBytes: 16e9,
		ThreadEff: 0.97, HWThreadGain: 2.05,
		NetLatency: 0.1e-6, NetBWNode: 1.53e9,
		TopoBase: 2048, TopoExp: 0.22, MsgRampBytes: 128,
		MPISatShare: 0.335,
	}
	// Lonestar: dual-socket 6-core Westmere at 3.3 GHz, IB QDR fat tree.
	Lonestar = Machine{
		Name: "Lonestar", CoresPerNode: 12, HWThreadsPerCore: 1,
		ClockHz: 3.3e9, PeakFlopsCore: 13.2e9,
		FFTRate: 3.7e9, NSRate: 3.1e9,
		MemBWNode: 42e9, MemSatCores: 5.0, NodeMemBytes: 24e9,
		ThreadEff: 0.22, HWThreadGain: 1.0,
		NetLatency: 1.8e-6, NetBWNode: 2.5e9,
		TopoBase: 16, TopoExp: 0.05, MsgRampBytes: 32768,
		MPISatShare: 0.62,
	}
	// Stampede: dual-socket 8-core Sandy Bridge at 2.7 GHz, IB FDR.
	Stampede = Machine{
		Name: "Stampede", CoresPerNode: 16, HWThreadsPerCore: 1,
		ClockHz: 2.7e9, PeakFlopsCore: 21.6e9,
		FFTRate: 4.3e9, NSRate: 3.7e9,
		MemBWNode: 51e9, MemSatCores: 6.0, NodeMemBytes: 32e9,
		ThreadEff: 0.23, HWThreadGain: 1.0,
		NetLatency: 1.5e-6, NetBWNode: 4.3e9,
		TopoBase: 24, TopoExp: 0.42, MsgRampBytes: 16384,
		MPISatShare: 0.70,
	}
	// Blue Waters: Cray XE6, AMD Interlagos, Gemini 3D torus whose
	// bisection degrades alltoall sharply (the paper's 24% efficiency).
	BlueWaters = Machine{
		Name: "BlueWaters", CoresPerNode: 16, HWThreadsPerCore: 1,
		ClockHz: 2.3e9, PeakFlopsCore: 9.2e9,
		FFTRate: 2.0e9, NSRate: 1.8e9,
		MemBWNode: 52e9, MemSatCores: 6.0, NodeMemBytes: 64e9,
		ThreadEff: 0.70, HWThreadGain: 1.0,
		NetLatency: 1.6e-6, NetBWNode: 1.7e9,
		TopoBase: 8, TopoExp: 0.41, MsgRampBytes: 8192,
		MPISatShare: 0.80,
	}
)

// ByName returns the machine with the given name (case-sensitive) and true,
// or a zero Machine and false.
func ByName(name string) (Machine, bool) {
	for _, m := range []Machine{Mira, Lonestar, Stampede, BlueWaters} {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}
