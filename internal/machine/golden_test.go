package machine

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The golden file pins every model value of Tables 5/6/9/10/11 (plus the
// per-step flop count) as produced by the pre-interpreter cost formulas, so
// the schedule-interpreter refactor is provably value-preserving. Regenerate
// with `go test ./internal/machine -run TestGoldenTables -update` ONLY when a
// deliberate model recalibration changes the numbers.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_tables.json from the current model")

// goldenRelTol bounds the relative drift the refactor may introduce: the
// interpreter sums the same terms in schedule order rather than formula
// order, so only floating-point reassociation noise (~1e-16) is expected.
const goldenRelTol = 1e-9

type goldenTables struct {
	Table5 []struct {
		System string  `json:"system"`
		PA     int     `json:"pa"`
		PB     int     `json:"pb"`
		Model  float64 `json:"model"`
	} `json:"table5"`
	Table6 []struct {
		System string  `json:"system"`
		Cores  int     `json:"cores"`
		P3DFFT float64 `json:"p3dfft"`
		Custom float64 `json:"custom"`
	} `json:"table6"`
	Table9  []goldenTimestepRow `json:"table9"`
	Table10 []goldenTimestepRow `json:"table10"`
	Table11 []struct {
		Cores  int     `json:"cores"`
		Weak   bool    `json:"weak"`
		MPI    float64 `json:"mpi"`
		Hybrid float64 `json:"hybrid"`
	} `json:"table11"`
	StepFlops map[string]float64 `json:"step_flops"`
}

type goldenTimestepRow struct {
	System    string  `json:"system"`
	Mode      string  `json:"mode"`
	Cores     int     `json:"cores"`
	Nx        int     `json:"nx,omitempty"`
	Transpose float64 `json:"transpose"`
	FFT       float64 `json:"fft"`
	Advance   float64 `json:"advance"`
}

// currentGolden evaluates the live model into the golden layout.
func currentGolden() goldenTables {
	var g goldenTables
	for _, r := range Table5() {
		g.Table5 = append(g.Table5, struct {
			System string  `json:"system"`
			PA     int     `json:"pa"`
			PB     int     `json:"pb"`
			Model  float64 `json:"model"`
		}{r.System, r.PA, r.PB, r.Model})
	}
	for _, r := range Table6() {
		g.Table6 = append(g.Table6, struct {
			System string  `json:"system"`
			Cores  int     `json:"cores"`
			P3DFFT float64 `json:"p3dfft"`
			Custom float64 `json:"custom"`
		}{r.System, r.Cores, r.ModelP3DFFT, r.ModelCustom})
	}
	conv := func(rows []TimestepRow) []goldenTimestepRow {
		out := make([]goldenTimestepRow, 0, len(rows))
		for _, r := range rows {
			out = append(out, goldenTimestepRow{
				System: r.System, Mode: r.Mode.String(), Cores: r.Cores, Nx: r.Nx,
				Transpose: r.Model.Transpose, FFT: r.Model.FFT, Advance: r.Model.Advance,
			})
		}
		return out
	}
	g.Table9 = conv(Table9())
	g.Table10 = conv(Table10())
	for _, r := range Table11() {
		g.Table11 = append(g.Table11, struct {
			Cores  int     `json:"cores"`
			Weak   bool    `json:"weak"`
			MPI    float64 `json:"mpi"`
			Hybrid float64 `json:"hybrid"`
		}{r.Cores, r.Weak, r.ModelMPI, r.ModelHybrid})
	}
	g.StepFlops = map[string]float64{
		"32x33x32":       StepFlops(32, 33, 32),
		"64x65x64":       StepFlops(64, 65, 64),
		"2048x1024x2048": StepFlops(2048, 1024, 2048),
	}
	return g
}

func TestGoldenTables(t *testing.T) {
	path := filepath.Join("testdata", "golden_tables.json")
	got := currentGolden()
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	var want goldenTables
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	cmp := func(name string, want, got float64) {
		t.Helper()
		if want == got {
			return
		}
		denom := math.Max(math.Abs(want), math.Abs(got))
		if math.Abs(want-got)/denom > goldenRelTol {
			t.Errorf("%s: golden %v, got %v (rel %.3g)",
				name, want, got, math.Abs(want-got)/denom)
		}
	}

	if len(got.Table5) != len(want.Table5) {
		t.Fatalf("table5: %d rows, golden has %d", len(got.Table5), len(want.Table5))
	}
	for i, w := range want.Table5 {
		r := got.Table5[i]
		if r.System != w.System || r.PA != w.PA || r.PB != w.PB {
			t.Fatalf("table5[%d]: row identity changed: %+v vs %+v", i, r, w)
		}
		cmp("table5["+w.System+"]", w.Model, r.Model)
	}
	if len(got.Table6) != len(want.Table6) {
		t.Fatalf("table6: %d rows, golden has %d", len(got.Table6), len(want.Table6))
	}
	for i, w := range want.Table6 {
		r := got.Table6[i]
		if r.System != w.System || r.Cores != w.Cores {
			t.Fatalf("table6[%d]: row identity changed: %+v vs %+v", i, r, w)
		}
		cmp("table6.p3dfft["+w.System+"]", w.P3DFFT, r.P3DFFT)
		cmp("table6.custom["+w.System+"]", w.Custom, r.Custom)
	}
	cmpTS := func(name string, want, got []goldenTimestepRow) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, golden has %d", name, len(got), len(want))
		}
		for i, w := range want {
			r := got[i]
			if r.System != w.System || r.Mode != w.Mode || r.Cores != w.Cores || r.Nx != w.Nx {
				t.Fatalf("%s[%d]: row identity changed: %+v vs %+v", name, i, r, w)
			}
			id := name + "[" + w.System + "/" + w.Mode + "]"
			cmp(id+".transpose", w.Transpose, r.Transpose)
			cmp(id+".fft", w.FFT, r.FFT)
			cmp(id+".advance", w.Advance, r.Advance)
		}
	}
	cmpTS("table9", want.Table9, got.Table9)
	cmpTS("table10", want.Table10, got.Table10)
	if len(got.Table11) != len(want.Table11) {
		t.Fatalf("table11: %d rows, golden has %d", len(got.Table11), len(want.Table11))
	}
	for i, w := range want.Table11 {
		r := got.Table11[i]
		if r.Cores != w.Cores || r.Weak != w.Weak {
			t.Fatalf("table11[%d]: row identity changed: %+v vs %+v", i, r, w)
		}
		cmp("table11.mpi", w.MPI, r.MPI)
		cmp("table11.hybrid", w.Hybrid, r.Hybrid)
	}
	for grid, w := range want.StepFlops {
		cmp("step_flops["+grid+"]", w, got.StepFlops[grid])
	}
}
