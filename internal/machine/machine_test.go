package machine

import (
	"math"
	"testing"
	"testing/quick"
)

// The tests below assert the qualitative shape of the paper's results: who
// wins, where efficiency degrades, where crossovers sit. Absolute values
// are compared against the paper in EXPERIMENTS.md; here we require model
// totals within a factor band of the measurements, and the orderings exactly.

func TestMemBWSaturates(t *testing.T) {
	m := Mira
	if m.MemBW(1) >= m.MemBW(4) || m.MemBW(4) >= m.MemBW(16) {
		t.Error("memory bandwidth must grow with cores")
	}
	if m.MemBW(16) != m.MemBWNode {
		t.Errorf("full node BW %g != %g", m.MemBW(16), m.MemBWNode)
	}
	// Saturation: the last doubling gains far less than the first.
	g1 := m.MemBW(2) / m.MemBW(1)
	g2 := m.MemBW(16) / m.MemBW(8)
	if g2 >= g1 {
		t.Errorf("no saturation: gains %g then %g", g1, g2)
	}
}

func TestTopoShareMonotone(t *testing.T) {
	f := func(seed int64) bool {
		for _, m := range []Machine{Mira, Lonestar, Stampede, BlueWaters} {
			prev := 2.0
			for _, n := range []int{1, 16, 256, 4096, 65536} {
				s := m.TopoShare(n)
				if s <= 0 || s > 1 || s > prev {
					return false
				}
				prev = s
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}

func TestTable5NodeLocalCommBFastest(t *testing.T) {
	rows := Table5()
	var prev float64
	sys := ""
	for _, r := range rows {
		if r.System != sys {
			sys = r.System
			prev = 0
		}
		// Paper ordering: times increase as CommB grows beyond the node.
		if prev > 0 && r.Model < prev*0.999 {
			t.Errorf("%s %dx%d: model %g not >= previous %g", r.System, r.PA, r.PB, r.Model, prev)
		}
		prev = r.Model
		// Mira absolutes track the paper closely; the Lonestar rows of
		// Table 5 are ~4x slower than the same machine's Table 9 transpose
		// throughput implies (see EXPERIMENTS.md), so only the ordering is
		// asserted there and the band is wide.
		band := 4.0
		if r.System == "Lonestar" {
			band = 8
		}
		if r.Model < r.Paper/band || r.Model > r.Paper*band {
			t.Errorf("%s %dx%d: model %g too far from paper %g", r.System, r.PA, r.PB, r.Model, r.Paper)
		}
	}
}

func TestTable6CustomWinsOnMiraAlways(t *testing.T) {
	for _, r := range Table6() {
		if r.System != "Mira" || r.ModelP3DFFT == 0 || r.ModelCustom == 0 {
			continue
		}
		if r.ModelRatio < 1.15 {
			t.Errorf("Mira %d cores: custom should win clearly, ratio %g", r.Cores, r.ModelRatio)
		}
	}
}

func TestTable6CrossoverOnX86(t *testing.T) {
	// On Lonestar and Stampede, P3DFFT wins at small core counts and the
	// customized kernel wins at the largest (paper Table 6).
	check := func(system string, smallCores, largeCores int) {
		t.Helper()
		var small, large float64
		for _, r := range Table6() {
			if r.System != system || r.ModelRatio == 0 {
				continue
			}
			if r.Cores == smallCores {
				small = r.ModelRatio
			}
			if r.Cores == largeCores {
				large = r.ModelRatio
			}
		}
		if small == 0 || large == 0 {
			t.Fatalf("%s: missing rows", system)
		}
		if small >= 1 {
			t.Errorf("%s at %d cores: P3DFFT should win (ratio %g < 1)", system, smallCores, small)
		}
		if large <= 1 {
			t.Errorf("%s at %d cores: custom should win (ratio %g > 1)", system, largeCores, large)
		}
	}
	check("Lonestar", 24, 1536)
	check("Stampede", 512, 4096)
}

func TestTable6MemoryNA(t *testing.T) {
	// P3DFFT must be flagged N/A on the big Mira grid at 65K and 131K
	// cores (3x buffers exceed node memory), matching the paper.
	for _, r := range Table6() {
		if r.System != "Mira" || r.Cores < 65536 {
			continue
		}
		wantNA := r.Cores <= 131072
		gotNA := r.ModelP3DFFT == 0
		if wantNA != gotNA {
			t.Errorf("Mira %d cores: p3dfft N/A = %v, want %v", r.Cores, gotNA, wantNA)
		}
		if r.ModelCustom == 0 {
			t.Errorf("Mira %d cores: custom must fit in memory", r.Cores)
		}
	}
}

func TestTable9MiraStrongScalingBands(t *testing.T) {
	rows := Table9()
	// MPI mode: strong-scaling efficiency relative to 131072 cores stays
	// high (paper: 97% at 786K). Hybrid: degrades to ~80%.
	var mpiBase, hybBase TimestepRow
	for _, r := range rows {
		if r.System != "Mira" {
			continue
		}
		if r.Mode == ModeMPI && r.Cores == 131072 {
			mpiBase = r
		}
		if r.Mode == ModeHybrid && r.Cores == 65536 {
			hybBase = r
		}
	}
	for _, r := range rows {
		if r.System != "Mira" {
			continue
		}
		var eff float64
		if r.Mode == ModeMPI {
			eff = mpiBase.Model.Total() * float64(mpiBase.Cores) / (r.Model.Total() * float64(r.Cores))
		} else {
			eff = hybBase.Model.Total() * float64(hybBase.Cores) / (r.Model.Total() * float64(r.Cores))
		}
		if eff < 0.70 || eff > 1.3 {
			t.Errorf("Mira %s %d: strong-scaling efficiency %.2f out of band", r.Mode, r.Cores, eff)
		}
		// Totals within 35% of the paper.
		if rel := math.Abs(r.Model.Total()-r.Paper.Total()) / r.Paper.Total(); rel > 0.35 {
			t.Errorf("Mira %s %d: model total %.1f vs paper %.1f (%.0f%%)",
				r.Mode, r.Cores, r.Model.Total(), r.Paper.Total(), rel*100)
		}
	}
}

func TestTable9TransposeDominatesOnBlueWaters(t *testing.T) {
	for _, r := range Table9() {
		if r.System != "BlueWaters" {
			continue
		}
		frac := r.Model.Transpose / r.Model.Total()
		if frac < 0.70 {
			t.Errorf("BlueWaters %d: transpose fraction %.2f, paper reports 80-93%%", r.Cores, frac)
		}
	}
	// And its transpose scales far worse than Lonestar's.
	bw := map[int]float64{}
	for _, r := range Table9() {
		if r.System == "BlueWaters" {
			bw[r.Cores] = r.Model.Transpose
		}
	}
	effBW := bw[2048] * 2048 / (bw[16384] * 16384)
	if effBW > 0.5 {
		t.Errorf("BlueWaters transpose efficiency %.2f over 8x cores; paper shows ~23%%", effBW)
	}
}

func TestTable10WeakScalingShape(t *testing.T) {
	// Weak scaling: N-S advance stays flat; FFT degrades with Nx (cache);
	// transpose degrades moderately.
	var miraHyb []TimestepRow
	for _, r := range Table10() {
		if r.System == "Mira" && r.Mode == ModeHybrid {
			miraHyb = append(miraHyb, r)
		}
		if rel := math.Abs(r.Model.Total()-r.Paper.Total()) / r.Paper.Total(); rel > 0.40 {
			t.Errorf("%s %s %d: weak model total %.1f vs paper %.1f", r.System, r.Mode, r.Cores, r.Model.Total(), r.Paper.Total())
		}
	}
	first, last := miraHyb[0], miraHyb[len(miraHyb)-1]
	if math.Abs(first.Model.Advance-last.Model.Advance)/first.Model.Advance > 0.05 {
		t.Errorf("N-S advance should be flat under weak scaling: %.2f -> %.2f", first.Model.Advance, last.Model.Advance)
	}
	if last.Model.FFT <= first.Model.FFT*1.3 {
		t.Errorf("FFT should degrade under weak scaling: %.2f -> %.2f", first.Model.FFT, last.Model.FFT)
	}
}

func TestTable11HybridAdvantageShrinks(t *testing.T) {
	var strong, weak []Table11Row
	for _, r := range Table11() {
		if r.ModelRatio <= 0 {
			continue
		}
		if r.Weak {
			weak = append(weak, r)
		} else {
			strong = append(strong, r)
		}
	}
	if len(strong) < 3 || len(weak) < 3 {
		t.Fatal("missing comparison rows")
	}
	// Hybrid is faster wherever both run (paper: ratios 1.0-1.21), by a
	// clear margin at the smallest shared core count.
	for _, r := range append(strong, weak...) {
		if r.ModelRatio < 0.98 || r.ModelRatio > 1.35 {
			t.Errorf("cores %d weak=%v: MPI/hybrid ratio %g out of the paper's band", r.Cores, r.Weak, r.ModelRatio)
		}
	}
	if strong[0].ModelRatio < 1.10 {
		t.Errorf("at %d cores hybrid should win clearly: ratio %g", strong[0].Cores, strong[0].ModelRatio)
	}
	// Under weak scaling the advantage converges toward parity at scale,
	// as both modes saturate the interconnect (paper §5.3).
	lastW := weak[len(weak)-1].ModelRatio
	if lastW > weak[0].ModelRatio-0.05 || lastW > 1.08 {
		t.Errorf("weak-scaling MPI/hybrid ratio should approach 1: first %g last %g", weak[0].ModelRatio, lastW)
	}
}

func TestTable2Characterization(t *testing.T) {
	rows := Table2(Mira)
	var simd, noSimd Table2Row
	for _, r := range rows {
		if r.SIMD {
			simd = r
		} else {
			noSimd = r
		}
	}
	// Paper: no-SIMD ~1.16 GF (9% of peak); SIMD raises GFlops but also
	// raises elapsed time.
	if noSimd.GFlops < 0.9 || noSimd.GFlops > 1.5 {
		t.Errorf("no-SIMD GFlops %g, paper 1.16", noSimd.GFlops)
	}
	if noSimd.FracPeak > 0.12 {
		t.Errorf("no-SIMD fraction of peak %g, paper 0.09", noSimd.FracPeak)
	}
	if simd.GFlops <= noSimd.GFlops {
		t.Error("SIMD must report more flops")
	}
	if simd.Elapsed <= noSimd.Elapsed {
		t.Error("SIMD must be slower despite more flops (the paper's finding)")
	}
	if noSimd.DDRBytesCycle < 14 || noSimd.DDRBytesCycle > 18 {
		t.Errorf("DDR traffic %g B/cycle, paper 16.8", noSimd.DDRBytesCycle)
	}
}

func TestTable3HardwareThreadGain(t *testing.T) {
	// Mira: 16 cores -> 64 threads gives ~2x (paper: 32.6/34.5 speedup).
	s16 := Table3Speedup(Mira, 16)
	s32 := Table3Speedup(Mira, 32)
	s64 := Table3Speedup(Mira, 64)
	if s16 != 16 {
		t.Errorf("16 threads speedup %g", s16)
	}
	if s32 < 24 || s32 > 30 {
		t.Errorf("32 threads speedup %g, paper ~27.6", s32)
	}
	if s64 < 30 || s64 > 36 {
		t.Errorf("64 threads speedup %g, paper ~32.6-34.5", s64)
	}
}

func TestTable4ReorderSaturation(t *testing.T) {
	// Paper: speedup 1.98, 3.90, 5.54, 6.24 at 2, 4, 8, 16 threads, then
	// DECREASING with extra hardware threads.
	s2 := Table4Speedup(Mira, 2)
	s8 := Table4Speedup(Mira, 8)
	s16 := Table4Speedup(Mira, 16)
	s64 := Table4Speedup(Mira, 64)
	if s2 < 1.7 || s2 > 2.0 {
		t.Errorf("2-thread reorder speedup %g, paper 1.98", s2)
	}
	if s8 < 4.4 || s8 > 6.2 {
		t.Errorf("8-thread reorder speedup %g, paper 5.54", s8)
	}
	if s16 < 5.5 || s16 > 7.2 {
		t.Errorf("16-thread reorder speedup %g, paper 6.24", s16)
	}
	if s64 >= s16 {
		t.Errorf("hardware threads must not help reorder: %g >= %g", s64, s16)
	}
	// Traffic approaches but does not exceed the 18 B/cycle STREAM limit.
	tr := Table4Traffic(Mira, 16)
	if tr < 14 || tr > 18.2 {
		t.Errorf("16-thread traffic %g B/cycle, paper 16.1", tr)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Mira"); !ok {
		t.Error("Mira not found")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("nonsense found")
	}
}

func TestTimestepMonotoneInCores(t *testing.T) {
	f := func(seed int64) bool {
		prev := math.Inf(1)
		for _, c := range []int{16384, 32768, 65536, 131072} {
			b := TimestepTime(Mira, ModeHybrid, 4608, 1536, 12288, c)
			if b.Total() >= prev || b.Total() <= 0 {
				return false
			}
			prev = b.Total()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}

// TestAggregateFlopsSection53: the paper reports 271 TFlops sustained
// (about 2.7% of peak) and ~906 TFlops (9.0%) for on-node computation on
// the full 48-rack strong-scaling problem.
func TestAggregateFlopsSection53(t *testing.T) {
	nx, ny, nz := Table7Grid("Mira")
	rep := AggregateFlops(Mira, ModeMPI, nx, ny, nz, 786432)
	if rep.Sustained < 200e12 || rep.Sustained > 400e12 {
		t.Errorf("sustained %g TF, paper 271 TF", rep.Sustained/1e12)
	}
	if rep.SustainedFrac < 0.02 || rep.SustainedFrac > 0.04 {
		t.Errorf("sustained fraction %g, paper 0.027", rep.SustainedFrac)
	}
	if rep.OnNodeFrac < 0.07 || rep.OnNodeFrac > 0.11 {
		t.Errorf("on-node fraction %g, paper 0.090", rep.OnNodeFrac)
	}
	if rep.OnNode <= rep.Sustained {
		t.Error("on-node rate must exceed sustained rate")
	}
}
