package machine

import "channeldns/internal/schedule"

// Aggregate flop-rate accounting of paper §5.3: on the full strong-scaling
// problem at 786K cores the channel code sustains 271 TFlops (about 2.7% of
// theoretical peak), rising to about 906 TFlops (9.0%) when only the
// on-node computation is counted — the gap being the transpose time, and
// the 9% itself being the memory-bandwidth bound of Table 2.

// StepFlops counts the floating-point operations of one full RK3 timestep
// on the given grid: three substeps of batched z and x transforms (3 fields
// out, 5 back) on the 3/2-rule grids plus the per-mode time-advance linear
// algebra. It is the flop total of the paper's timestep schedule; the
// process-grid split does not change the work.
func StepFlops(nx, ny, nz int) float64 {
	s := schedule.Timestep(schedule.TimestepParams{
		Nx: nx, Ny: ny, Nz: nz, PA: 1, PB: 1,
		Products: 5, PackPasses: timestepPackPasses,
	})
	return s.TotalFlops()
}

// FlopsReport summarizes sustained and on-node-only flop rates.
type FlopsReport struct {
	StepFlops     float64
	Sustained     float64 // flops/s over the full step (transposes included)
	SustainedFrac float64 // fraction of machine theoretical peak
	OnNode        float64 // flops/s over compute sections only
	OnNodeFrac    float64
}

// AggregateFlops evaluates the §5.3 accounting for a machine, mode, grid
// and core count using the timestep model.
func AggregateFlops(m Machine, mode Mode, nx, ny, nz, cores int) FlopsReport {
	b := TimestepTime(m, mode, nx, ny, nz, cores)
	f := StepFlops(nx, ny, nz)
	peak := float64(cores) * m.PeakFlopsCore
	rep := FlopsReport{StepFlops: f}
	if t := b.Total(); t > 0 {
		rep.Sustained = f / t
		rep.SustainedFrac = rep.Sustained / peak
	}
	if t := b.FFT + b.Advance; t > 0 {
		rep.OnNode = f / t
		rep.OnNodeFrac = rep.OnNode / peak
	}
	return rep
}
