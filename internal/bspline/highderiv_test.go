package bspline

import (
	"math"
	"testing"
)

// TestHighDerivativesExactOnPolynomials: the 3rd and 4th derivative rows of
// EvalDerivs must be exact on polynomials within the spline space (the
// Orr-Sommerfeld validation builds its biharmonic operator from them).
func TestHighDerivativesExactOnPolynomials(t *testing.T) {
	b := NewFromBreakpoints(7, ChannelBreakpoints(12, 0.9))
	grev := b.Greville()
	for pdeg := 4; pdeg <= 7; pdeg++ {
		vals := make([]float64, len(grev))
		for i, y := range grev {
			vals[i] = math.Pow(y, float64(pdeg))
		}
		coef := b.Interpolate(vals)
		ders := make([][]float64, 5)
		for i := range ders {
			ders[i] = make([]float64, 8)
		}
		for _, u := range []float64{-0.9, -0.3, 0.2, 0.77} {
			span := b.EvalDerivs(u, 4, ders)
			got3, got4 := 0.0, 0.0
			for j := 0; j <= 7; j++ {
				got3 += coef[span-7+j] * ders[3][j]
				got4 += coef[span-7+j] * ders[4][j]
			}
			c3 := float64(pdeg * (pdeg - 1) * (pdeg - 2))
			want3 := c3 * math.Pow(u, float64(pdeg-3))
			want4 := c3 * float64(pdeg-3) * math.Pow(u, float64(pdeg-4))
			if math.Abs(got3-want3) > 1e-6*(1+math.Abs(want3)) {
				t.Errorf("deg %d u=%g: 3rd deriv %g want %g", pdeg, u, got3, want3)
			}
			if math.Abs(got4-want4) > 1e-6*(1+math.Abs(want4)) {
				t.Errorf("deg %d u=%g: 4th deriv %g want %g", pdeg, u, got4, want4)
			}
		}
	}
}

// TestDerivOrderAbovePolynomialDegree: derivatives of order > degree are
// identically zero (the EvalDerivs zero-fill path).
func TestDerivOrderAbovePolynomialDegree(t *testing.T) {
	b := NewUniform(3, 10, -1, 1)
	ders := make([][]float64, 6)
	for i := range ders {
		ders[i] = make([]float64, 4)
	}
	b.EvalDerivs(0.3, 5, ders)
	for k := 4; k <= 5; k++ {
		for j := 0; j < 4; j++ {
			if ders[k][j] != 0 {
				t.Errorf("order-%d derivative entry %d = %g, want 0", k, j, ders[k][j])
			}
		}
	}
}
