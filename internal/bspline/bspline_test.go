package bspline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionOfUnity(t *testing.T) {
	for _, degree := range []int{1, 2, 3, 5, 7} {
		b := NewUniform(degree, degree+9, -1, 1)
		vals := make([]float64, degree+1)
		for _, u := range []float64{-1, -0.99, -0.5, 0, 0.3, 0.77, 1} {
			b.EvalBasis(u, vals)
			s := 0.0
			for _, v := range vals {
				s += v
			}
			if math.Abs(s-1) > 1e-12 {
				t.Errorf("degree %d u=%g: basis sums to %g", degree, u, s)
			}
		}
	}
}

func TestBasisNonNegative(t *testing.T) {
	b := NewUniform(7, 20, -1, 1)
	vals := make([]float64, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		u := -1 + 2*rng.Float64()
		b.EvalBasis(u, vals)
		for j, v := range vals {
			if v < -1e-13 {
				t.Fatalf("negative basis value %g at u=%g j=%d", v, u, j)
			}
		}
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	b := NewFromBreakpoints(5, []float64{-1, -0.7, -0.2, 0.1, 0.55, 1})
	rng := rand.New(rand.NewSource(2))
	coef := make([]float64, b.NumBasis())
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	h := 1e-6
	for _, u := range []float64{-0.9, -0.5, 0.0, 0.3, 0.8} {
		d1 := b.EvalDeriv(coef, u, 1)
		fd := (b.Eval(coef, u+h) - b.Eval(coef, u-h)) / (2 * h)
		if math.Abs(d1-fd) > 1e-5*(1+math.Abs(d1)) {
			t.Errorf("u=%g: d1=%g fd=%g", u, d1, fd)
		}
		d2 := b.EvalDeriv(coef, u, 2)
		fd2 := (b.Eval(coef, u+h) - 2*b.Eval(coef, u) + b.Eval(coef, u-h)) / (h * h)
		if math.Abs(d2-fd2) > 1e-3*(1+math.Abs(d2)) {
			t.Errorf("u=%g: d2=%g fd2=%g", u, d2, fd2)
		}
	}
}

// Splines of degree p reproduce polynomials up to degree p exactly, and
// their derivatives are exact too.
func TestPolynomialReproduction(t *testing.T) {
	degree := 7
	b := NewFromBreakpoints(degree, ChannelBreakpoints(8, 0.8))
	grev := b.Greville()
	for pdeg := 0; pdeg <= degree; pdeg++ {
		vals := make([]float64, len(grev))
		for i, y := range grev {
			vals[i] = math.Pow(y, float64(pdeg))
		}
		coef := b.Interpolate(vals)
		for _, u := range []float64{-0.95, -0.33, 0.11, 0.72, 1.0} {
			want := math.Pow(u, float64(pdeg))
			if got := b.Eval(coef, u); math.Abs(got-want) > 1e-10 {
				t.Errorf("deg %d at u=%g: %g want %g", pdeg, u, got, want)
			}
			if pdeg >= 1 {
				wantD := float64(pdeg) * math.Pow(u, float64(pdeg-1))
				if got := b.EvalDeriv(coef, u, 1); math.Abs(got-wantD) > 1e-8 {
					t.Errorf("deg %d deriv at u=%g: %g want %g", pdeg, u, got, wantD)
				}
			}
			if pdeg >= 2 {
				wantD2 := float64(pdeg*(pdeg-1)) * math.Pow(u, float64(pdeg-2))
				if got := b.EvalDeriv(coef, u, 2); math.Abs(got-wantD2) > 1e-7 {
					t.Errorf("deg %d 2nd deriv at u=%g: %g want %g", pdeg, u, got, wantD2)
				}
			}
		}
	}
}

func TestGrevilleInsideDomain(t *testing.T) {
	b := NewUniform(7, 24, -1, 1)
	g := b.Greville()
	if len(g) != 24 {
		t.Fatalf("expected 24 Greville points, got %d", len(g))
	}
	if g[0] != -1 || g[len(g)-1] != 1 {
		t.Errorf("Greville endpoints %g %g, want -1 1", g[0], g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("Greville points not increasing at %d", i)
		}
	}
}

func TestCollocationMatrixMatchesEval(t *testing.T) {
	b := NewUniform(5, 16, -1, 1)
	grev := b.Greville()
	rng := rand.New(rand.NewSource(3))
	coef := make([]float64, b.NumBasis())
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	for d := 0; d <= 2; d++ {
		m := b.CollocationMatrix(grev, d)
		y := make([]float64, len(grev))
		m.MulVec(y, coef)
		for i, u := range grev {
			want := b.EvalDeriv(coef, u, d)
			if math.Abs(y[i]-want) > 1e-9 {
				t.Errorf("d=%d row %d: %g want %g", d, i, y[i], want)
			}
		}
	}
}

func TestIntegrationWeightsExact(t *testing.T) {
	degree := 7
	b := NewFromBreakpoints(degree, ChannelBreakpoints(10, 0.9))
	w := b.IntegrationWeights()
	grev := b.Greville()
	// Integral of y^k over [-1,1] is 0 for odd k, 2/(k+1) for even k.
	for k := 0; k <= degree; k++ {
		vals := make([]float64, len(grev))
		for i, y := range grev {
			vals[i] = math.Pow(y, float64(k))
		}
		coef := b.Interpolate(vals)
		got := 0.0
		for i := range w {
			got += w[i] * coef[i]
		}
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("integral of y^%d: %g want %g", k, got, want)
		}
	}
}

func TestGaussLegendre(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		x, w := GaussLegendre(n)
		// Exact for polynomials up to degree 2n-1.
		for k := 0; k <= 2*n-1; k++ {
			s := 0.0
			for i := range x {
				s += w[i] * math.Pow(x[i], float64(k))
			}
			want := 0.0
			if k%2 == 0 {
				want = 2 / float64(k+1)
			}
			if math.Abs(s-want) > 1e-12 {
				t.Errorf("n=%d: integral x^%d = %g, want %g", n, k, s, want)
			}
		}
	}
}

func TestQuadratureRuleIntegratesSplines(t *testing.T) {
	b := NewUniform(4, 12, -1, 1)
	pts, wts := b.QuadratureRule(5)
	rng := rand.New(rand.NewSource(4))
	coef := make([]float64, b.NumBasis())
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	got := 0.0
	for i, u := range pts {
		got += wts[i] * b.Eval(coef, u)
	}
	w := b.IntegrationWeights()
	want := 0.0
	for i := range w {
		want += w[i] * coef[i]
	}
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("quadrature %g vs exact %g", got, want)
	}
}

func TestChannelBreakpoints(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1} {
		br := ChannelBreakpoints(16, s)
		if br[0] != -1 || br[16] != 1 {
			t.Fatalf("stretch %g: endpoints %g %g", s, br[0], br[16])
		}
		for i := 1; i < len(br); i++ {
			if br[i] <= br[i-1] {
				t.Fatalf("stretch %g: not increasing at %d", s, i)
			}
		}
	}
	// Stretched grids cluster near walls: first interval smaller than middle.
	br := ChannelBreakpoints(16, 1)
	first := br[1] - br[0]
	mid := br[9] - br[8]
	if first >= mid {
		t.Errorf("no wall clustering: first %g mid %g", first, mid)
	}
}

func TestWallRows(t *testing.T) {
	b := NewUniform(7, 20, -1, 1)
	wr := b.WallRows()
	// Clamped basis: value row at a wall is e_0 / e_{nb-1}.
	if math.Abs(wr.LowerVal[0]-1) > 1e-12 {
		t.Errorf("lower value row first entry %g, want 1", wr.LowerVal[0])
	}
	for j := 1; j < len(wr.LowerVal); j++ {
		if math.Abs(wr.LowerVal[j]) > 1e-12 {
			t.Errorf("lower value row entry %d = %g, want 0", j, wr.LowerVal[j])
		}
	}
	if math.Abs(wr.UpperVal[len(wr.UpperVal)-1]-1) > 1e-12 {
		t.Errorf("upper value row last entry %g, want 1", wr.UpperVal[len(wr.UpperVal)-1])
	}
	// Derivative row must kill constants: entries sum to zero.
	s := 0.0
	for _, v := range wr.LowerDer {
		s += v
	}
	if math.Abs(s) > 1e-10 {
		t.Errorf("lower derivative row sums to %g", s)
	}
}

func TestInterpolationRoundTripProperty(t *testing.T) {
	b := NewFromBreakpoints(7, ChannelBreakpoints(12, 0.85))
	grev := b.Greville()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coef := make([]float64, b.NumBasis())
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		vals := make([]float64, len(grev))
		for i, u := range grev {
			vals[i] = b.Eval(coef, u)
		}
		back := b.Interpolate(vals)
		for i := range coef {
			if math.Abs(back[i]-coef[i]) > 1e-8*(1+math.Abs(coef[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFindSpanEdges(t *testing.T) {
	b := NewUniform(3, 10, 0, 1)
	if s := b.FindSpan(0); s != 3 {
		t.Errorf("FindSpan(0) = %d, want 3", s)
	}
	if s := b.FindSpan(1); s != b.NumBasis()-1 {
		t.Errorf("FindSpan(1) = %d, want %d", s, b.NumBasis()-1)
	}
	// Every interior span index must satisfy knots[i] <= u < knots[i+1].
	for _, u := range []float64{0.01, 0.2, 0.5, 0.75, 0.999} {
		i := b.FindSpan(u)
		if !(b.knots[i] <= u && u < b.knots[i+1]) {
			t.Errorf("FindSpan(%g) = %d: knots [%g, %g)", u, i, b.knots[i], b.knots[i+1])
		}
	}
}

func BenchmarkEvalDerivsDegree7(b *testing.B) {
	bs := NewUniform(7, 64, -1, 1)
	ders := workDers(2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs.EvalDerivs(0.3, 2, ders)
	}
}
