package bspline

import (
	"math"

	"channeldns/internal/banded"
)

// CollocationMatrix returns the banded matrix C with C[i][j] = d-th
// derivative of basis function j evaluated at points[i]. With Greville
// points the matrix is banded with half-bandwidth degree; kl = ku = degree
// is used. The DNS assembles its Helmholtz operators from these.
func (b *Basis) CollocationMatrix(points []float64, d int) *banded.Real {
	n := len(points)
	m := banded.NewReal(n, b.degree, b.degree)
	ders := workDers(d, b.degree)
	for i, u := range points {
		span := b.EvalDerivs(u, d, ders)
		for j := 0; j <= b.degree; j++ {
			col := span - b.degree + j
			m.Set(i, col, ders[d][j])
		}
	}
	return m
}

// RowAt evaluates all derivative orders 0..nd of the nonzero basis functions
// at u, returning the first nonzero column and a (nd+1) x (degree+1) table.
// This is the assembly primitive for operator and boundary-condition rows.
func (b *Basis) RowAt(u float64, nd int) (startCol int, ders [][]float64) {
	ders = workDers(nd, b.degree)
	span := b.EvalDerivs(u, nd, ders)
	return span - b.degree, ders
}

func workDers(nd, degree int) [][]float64 {
	d := make([][]float64, nd+1)
	for i := range d {
		d[i] = make([]float64, degree+1)
	}
	return d
}

// Interpolate computes spline coefficients that reproduce the values vals at
// the Greville points (vals[i] = s(greville[i])). This is how physical
// collocation data is lifted to B-spline coefficient space.
func (b *Basis) Interpolate(vals []float64) []float64 {
	m := b.CollocationMatrix(b.Greville(), 0)
	if err := m.Factor(); err != nil {
		panic("bspline: singular collocation matrix: " + err.Error())
	}
	c := append([]float64(nil), vals...)
	m.Solve(c)
	return c
}

// IntegrationWeights returns w with integral(s) = sum_i w[i]*c[i] for any
// spline s with coefficients c: the exact integral of basis function i is
// (t_{i+p+1} - t_i)/(p+1).
func (b *Basis) IntegrationWeights() []float64 {
	p := b.degree
	w := make([]float64, b.nb)
	for i := 0; i < b.nb; i++ {
		w[i] = (b.knots[i+p+1] - b.knots[i]) / float64(p+1)
	}
	return w
}

// GaussLegendre returns the n-point Gauss-Legendre nodes and weights on
// [-1, 1], computed by Newton iteration on the Legendre polynomial with the
// standard Chebyshev initial guess.
func GaussLegendre(n int) (x, w []float64) {
	if n < 1 {
		panic("bspline: GaussLegendre needs n >= 1")
	}
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / float64(j+1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		x[i] = -z
		x[n-1-i] = z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}

// QuadratureRule returns points and weights integrating splines (and products
// of splines) exactly: an m-point Gauss rule on each knot interval. m must
// be large enough for the integrand degree (m >= degree+1 integrates single
// splines exactly; 2*degree needs more for products).
func (b *Basis) QuadratureRule(m int) (pts, wts []float64) {
	gx, gw := GaussLegendre(m)
	p := b.degree
	// Unique knot intervals.
	for i := p; i < len(b.knots)-p-1; i++ {
		a, c := b.knots[i], b.knots[i+1]
		if c <= a {
			continue
		}
		half := (c - a) / 2
		mid := (c + a) / 2
		for q := 0; q < m; q++ {
			pts = append(pts, mid+half*gx[q])
			wts = append(wts, half*gw[q])
		}
	}
	return pts, wts
}

// SecondDerivWallRows returns the operator rows used for boundary
// conditions: value and first-derivative rows at both walls. Each row is
// (startCol, coefficients over degree+1 basis functions). For a clamped
// basis the value rows reduce to single entries on the first/last
// coefficient, while the derivative rows couple the first/last two.
type WallRows struct {
	// Value and derivative rows at the lower (y=a) and upper (y=b) walls.
	LowerValStart, LowerDerStart, UpperValStart, UpperDerStart int
	LowerVal, LowerDer, UpperVal, UpperDer                     []float64
}

// WallRows evaluates the boundary rows at both domain endpoints.
func (b *Basis) WallRows() WallRows {
	a, c := b.Domain()
	ls, ld := b.RowAt(a, 1)
	us, ud := b.RowAt(c, 1)
	return WallRows{
		LowerValStart: ls, LowerDerStart: ls,
		UpperValStart: us, UpperDerStart: us,
		LowerVal: append([]float64(nil), ld[0]...),
		LowerDer: append([]float64(nil), ld[1]...),
		UpperVal: append([]float64(nil), ud[0]...),
		UpperDer: append([]float64(nil), ud[1]...),
	}
}
