// Package bspline implements the wall-normal discretization of the channel
// DNS: B-spline bases of arbitrary degree built from the recurrence of
// DeBoor, clamped knot vectors over arbitrary breakpoint distributions,
// Greville collocation points, banded collocation matrices for function
// values and derivatives, Gauss-Legendre quadrature, and exact integration
// weights. The paper uses 7th-order (degree 7) B-splines selected for their
// resolution properties (Kwok, Moser & Jimenez 2001); the degree is a
// parameter here.
package bspline

import (
	"fmt"
	"math"
	"sort"
)

// Basis is a B-spline basis of a fixed degree on a clamped knot vector.
type Basis struct {
	degree int
	knots  []float64 // clamped: degree+1 repeats at each end
	nb     int       // number of basis functions
}

// NewFromBreakpoints constructs a clamped basis of the given degree over the
// strictly increasing breakpoint sequence breaks (at least 2 points).
// The number of basis functions is len(breaks)-1+degree.
func NewFromBreakpoints(degree int, breaks []float64) *Basis {
	if degree < 1 {
		panic(fmt.Sprintf("bspline: degree %d < 1", degree))
	}
	if len(breaks) < 2 {
		panic("bspline: need at least 2 breakpoints")
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			panic("bspline: breakpoints must be strictly increasing")
		}
	}
	m := len(breaks) - 1
	knots := make([]float64, 0, m+1+2*degree)
	for i := 0; i <= degree; i++ {
		knots = append(knots, breaks[0])
	}
	knots = append(knots, breaks[1:m]...)
	for i := 0; i <= degree; i++ {
		knots = append(knots, breaks[m])
	}
	return &Basis{degree: degree, knots: knots, nb: m + degree}
}

// NewUniform constructs a clamped basis of the given degree with nb basis
// functions on [a, b] using uniformly spaced interior breakpoints.
// nb must be at least degree+1.
func NewUniform(degree, nb int, a, b float64) *Basis {
	if nb < degree+1 {
		panic(fmt.Sprintf("bspline: nb=%d < degree+1=%d", nb, degree+1))
	}
	m := nb - degree // number of intervals
	breaks := make([]float64, m+1)
	for i := 0; i <= m; i++ {
		breaks[i] = a + (b-a)*float64(i)/float64(m)
	}
	return NewFromBreakpoints(degree, breaks)
}

// ChannelBreakpoints returns m+1 breakpoints on [-1, 1] clustered toward the
// walls using the Chebyshev-like distribution y_j = -cos(pi*j/m) blended
// with a uniform distribution by the factor stretch in [0, 1]:
// stretch = 0 gives uniform spacing, 1 gives full cosine clustering.
// Wall clustering is essential for resolving the viscous sublayer.
func ChannelBreakpoints(m int, stretch float64) []float64 {
	if m < 1 {
		panic("bspline: need at least one interval")
	}
	if stretch < 0 || stretch > 1 {
		panic("bspline: stretch must be in [0,1]")
	}
	breaks := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		uni := -1 + 2*float64(j)/float64(m)
		cos := -math.Cos(math.Pi * float64(j) / float64(m))
		breaks[j] = (1-stretch)*uni + stretch*cos
	}
	breaks[0], breaks[m] = -1, 1
	return breaks
}

// Degree returns the polynomial degree.
func (b *Basis) Degree() int { return b.degree }

// NumBasis returns the number of basis functions (the y resolution Ny).
func (b *Basis) NumBasis() int { return b.nb }

// Domain returns the interval [a, b] the basis lives on.
func (b *Basis) Domain() (float64, float64) {
	return b.knots[0], b.knots[len(b.knots)-1]
}

// Knots returns the full clamped knot vector (not a copy; do not modify).
func (b *Basis) Knots() []float64 { return b.knots }

// FindSpan locates the knot span index i such that knots[i] <= u < knots[i+1]
// (with the right endpoint mapped into the last span).
func (b *Basis) FindSpan(u float64) int {
	p := b.degree
	n := b.nb - 1
	if u >= b.knots[n+1] {
		return n
	}
	if u <= b.knots[p] {
		return p
	}
	// knots is sorted; search in the valid range [p, n+1).
	i := sort.SearchFloat64s(b.knots[p:n+2], u) + p
	if b.knots[i] > u {
		i--
	}
	return i
}

// EvalBasis computes the degree+1 B-spline basis functions that are nonzero
// at u. It returns the span index i; entry j of vals is the value of basis
// function i-degree+j. vals must have length >= degree+1.
func (b *Basis) EvalBasis(u float64, vals []float64) int {
	p := b.degree
	i := b.FindSpan(u)
	left := make([]float64, p+1)
	right := make([]float64, p+1)
	vals[0] = 1
	for j := 1; j <= p; j++ {
		left[j] = u - b.knots[i+1-j]
		right[j] = b.knots[i+j] - u
		saved := 0.0
		for r := 0; r < j; r++ {
			tmp := vals[r] / (right[r+1] + left[j-r])
			vals[r] = saved + right[r+1]*tmp
			saved = left[j-r] * tmp
		}
		vals[j] = saved
	}
	return i
}

// EvalDerivs computes basis functions and derivatives through order nd at u
// (algorithm A2.3 of Piegl & Tiller). ders must be (nd+1) x (degree+1):
// ders[k][j] is the k-th derivative of basis function span-degree+j.
// It returns the span index.
func (b *Basis) EvalDerivs(u float64, nd int, ders [][]float64) int {
	p := b.degree
	i := b.FindSpan(u)
	if nd > p {
		for k := p + 1; k <= nd; k++ {
			for j := 0; j <= p; j++ {
				ders[k][j] = 0
			}
		}
		nd = p
	}
	ndu := make([][]float64, p+1)
	for j := range ndu {
		ndu[j] = make([]float64, p+1)
	}
	left := make([]float64, p+1)
	right := make([]float64, p+1)
	ndu[0][0] = 1
	for j := 1; j <= p; j++ {
		left[j] = u - b.knots[i+1-j]
		right[j] = b.knots[i+j] - u
		saved := 0.0
		for r := 0; r < j; r++ {
			ndu[j][r] = right[r+1] + left[j-r]
			tmp := ndu[r][j-1] / ndu[j][r]
			ndu[r][j] = saved + right[r+1]*tmp
			saved = left[j-r] * tmp
		}
		ndu[j][j] = saved
	}
	for j := 0; j <= p; j++ {
		ders[0][j] = ndu[j][p]
	}
	var a [2][]float64
	a[0] = make([]float64, p+1)
	a[1] = make([]float64, p+1)
	for r := 0; r <= p; r++ {
		s1, s2 := 0, 1
		a[0][0] = 1
		for k := 1; k <= nd; k++ {
			d := 0.0
			rk := r - k
			pk := p - k
			if r >= k {
				a[s2][0] = a[s1][0] / ndu[pk+1][rk]
				d = a[s2][0] * ndu[rk][pk]
			}
			j1 := 1
			if rk < -1 {
				j1 = -rk
			}
			j2 := k - 1
			if r-1 > pk {
				j2 = p - r
			}
			for j := j1; j <= j2; j++ {
				a[s2][j] = (a[s1][j] - a[s1][j-1]) / ndu[pk+1][rk+j]
				d += a[s2][j] * ndu[rk+j][pk]
			}
			if r <= pk {
				a[s2][k] = -a[s1][k-1] / ndu[pk+1][r]
				d += a[s2][k] * ndu[r][pk]
			}
			ders[k][r] = d
			s1, s2 = s2, s1
		}
	}
	f := float64(p)
	for k := 1; k <= nd; k++ {
		for j := 0; j <= p; j++ {
			ders[k][j] *= f
		}
		f *= float64(p - k)
	}
	return i
}

// Greville returns the Greville abscissae, the collocation points used by
// the DNS: xi_i = (t_{i+1} + ... + t_{i+degree}) / degree.
func (b *Basis) Greville() []float64 {
	p := b.degree
	pts := make([]float64, b.nb)
	for i := 0; i < b.nb; i++ {
		s := 0.0
		for j := 1; j <= p; j++ {
			s += b.knots[i+j]
		}
		pts[i] = s / float64(p)
	}
	// Guard the endpoints against rounding so evaluation stays in-domain.
	pts[0] = b.knots[0]
	pts[b.nb-1] = b.knots[len(b.knots)-1]
	return pts
}

// Eval evaluates the spline with coefficient vector coef at u.
func (b *Basis) Eval(coef []float64, u float64) float64 {
	vals := make([]float64, b.degree+1)
	i := b.EvalBasis(u, vals)
	s := 0.0
	for j := 0; j <= b.degree; j++ {
		s += coef[i-b.degree+j] * vals[j]
	}
	return s
}

// EvalDeriv evaluates the k-th derivative of the spline with coefficients
// coef at u.
func (b *Basis) EvalDeriv(coef []float64, u float64, k int) float64 {
	ders := make([][]float64, k+1)
	for j := range ders {
		ders[j] = make([]float64, b.degree+1)
	}
	i := b.EvalDerivs(u, k, ders)
	s := 0.0
	for j := 0; j <= b.degree; j++ {
		s += coef[i-b.degree+j] * ders[k][j]
	}
	return s
}
