package bspline

import (
	"math"
	"math/cmplx"
	"testing"
)

// TestOrrSommerfeldEigenvalue validates the high-order B-spline collocation
// machinery against the classical benchmark of hydrodynamic stability: the
// least stable eigenvalue of the Orr-Sommerfeld equation for plane
// Poiseuille flow at Re = 10000, kx = 1 is
//
//	c = 0.23752649 + 0.00373967i    (Orszag 1971)
//
// The eigenproblem A v = c B v with
//
//	A = U (D2 - k^2) - U'' - (D2 - k^2)^2 / (i k Re),   B = D2 - k^2,
//
// U = 1 - y^2, and v = v' = 0 at both walls, is discretized by collocation
// at the Greville points (degree-7 splines, as the DNS uses) and solved by
// shift-inverted inverse iteration with a dense complex LU.
func TestOrrSommerfeldEigenvalue(t *testing.T) {
	const (
		re = 10000.0
		kx = 1.0
		n  = 121 // basis size
	)
	b := NewFromBreakpoints(7, ChannelBreakpoints(n-7, 1))
	pts := b.Greville()
	k2 := kx * kx
	ikRe := complex(0, kx*re)

	// Dense rows: A and B at each collocation point; boundary rows replace
	// the first/last two (v = 0 and v' = 0 at each wall).
	A := make([][]complex128, n)
	B := make([][]complex128, n)
	for i := range A {
		A[i] = make([]complex128, n)
		B[i] = make([]complex128, n)
	}
	ders := make([][]float64, 5)
	for i := range ders {
		ders[i] = make([]float64, b.Degree()+1)
	}
	for i := 1; i < n-1; i++ {
		if i == 1 || i == n-2 {
			continue // reserved for derivative BC rows
		}
		y := pts[i]
		u := 1 - y*y
		upp := -2.0
		span := b.EvalDerivs(y, 4, ders)
		for j := 0; j <= b.Degree(); j++ {
			col := span - b.Degree() + j
			d0 := complex(ders[0][j], 0)
			d2 := complex(ders[2][j], 0)
			d4 := complex(ders[4][j], 0)
			lap := d2 - complex(k2, 0)*d0
			bilap := d4 - complex(2*k2, 0)*d2 + complex(k2*k2, 0)*d0
			A[i][col] = complex(u, 0)*lap - complex(upp, 0)*d0 - bilap/ikRe
			B[i][col] = lap
		}
	}
	// Boundary rows: v(+-1) = 0 at rows 0, n-1; v'(+-1) = 0 at rows 1, n-2.
	setBC := func(row int, y float64, d int) {
		span := b.EvalDerivs(y, d, ders)
		for j := 0; j <= b.Degree(); j++ {
			A[row][span-b.Degree()+j] = complex(ders[d][j], 0)
		}
	}
	lo, hi := b.Domain()
	setBC(0, lo, 0)
	setBC(1, lo, 1)
	setBC(n-2, hi, 1)
	setBC(n-1, hi, 0)

	// Row equilibration: with cosine wall clustering the near-wall D4 rows
	// are O(1e12); scaling each row of A and B by the same factor leaves
	// the generalized eigenproblem unchanged and restores double-precision
	// conditioning.
	for i := 0; i < n; i++ {
		m := 0.0
		for j := 0; j < n; j++ {
			if a := cmplx.Abs(A[i][j]); a > m {
				m = a
			}
		}
		if m == 0 {
			continue
		}
		sc := complex(1/m, 0)
		for j := 0; j < n; j++ {
			A[i][j] *= sc
			B[i][j] *= sc
		}
	}

	// Shift-invert iteration targeting the known eigenvalue. The shift must
	// sit close to the physical mode: collocation eigenproblems with
	// replaced boundary rows carry spurious modes, and one lies about 5e-5
	// away from this one — a generic shift between the two locks onto it.
	sigma := complex(0.237526, 0.003739)
	M := make([][]complex128, n)
	for i := range M {
		M[i] = make([]complex128, n)
		for j := range M[i] {
			M[i][j] = A[i][j] - sigma*B[i][j]
		}
	}
	lu, piv := denseLU(M)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i+1)), math.Cos(float64(2*i+1)))
	}
	var lambda complex128
	for it := 0; it < 60; it++ {
		// y = B x (BC rows excluded: B rows there are zero).
		rhs := matVec(B, x)
		sol := luSolve(lu, piv, rhs)
		// Normalize.
		nrm := 0.0
		for _, v := range sol {
			nrm += real(v)*real(v) + imag(v)*imag(v)
		}
		nrm = math.Sqrt(nrm)
		for i := range sol {
			sol[i] /= complex(nrm, 0)
		}
		x = sol
		// Rayleigh quotient c = (x* A x)/(x* B x).
		ax := matVec(A, x)
		bx := matVec(B, x)
		var num, den complex128
		for i := range x {
			num += cmplx.Conj(x[i]) * ax[i]
			den += cmplx.Conj(x[i]) * bx[i]
		}
		lambda = num / den
	}
	want := complex(0.23752649, 0.00373967)
	if cmplx.Abs(lambda-want) > 2e-6 {
		t.Errorf("Orr-Sommerfeld eigenvalue %v, want %v (|diff| = %.2e)",
			lambda, want, cmplx.Abs(lambda-want))
	}
}

func matVec(m [][]complex128, x []complex128) []complex128 {
	n := len(m)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += m[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

func denseLU(m [][]complex128) ([][]complex128, []int) {
	n := len(m)
	lu := make([][]complex128, n)
	for i := range lu {
		lu[i] = append([]complex128(nil), m[i]...)
	}
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if cmplx.Abs(lu[i][k]) > cmplx.Abs(lu[p][k]) {
				p = i
			}
		}
		piv[k] = p
		lu[k], lu[p] = lu[p], lu[k]
		for i := k + 1; i < n; i++ {
			l := lu[i][k] / lu[k][k]
			lu[i][k] = l
			for j := k + 1; j < n; j++ {
				lu[i][j] -= l * lu[k][j]
			}
		}
	}
	return lu, piv
}

func luSolve(lu [][]complex128, piv []int, b []complex128) []complex128 {
	n := len(lu)
	x := append([]complex128(nil), b...)
	for k := 0; k < n; k++ {
		x[k], x[piv[k]] = x[piv[k]], x[k]
		for i := k + 1; i < n; i++ {
			x[i] -= lu[i][k] * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i][j] * x[j]
		}
		x[i] = s / lu[i][i]
	}
	return x
}
