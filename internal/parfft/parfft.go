// Package parfft implements the distributed 2.5-D FFT pipeline that paper
// §4.4 benchmarks against P3DFFT (Table 6): four global transposes and four
// batched 1-D FFT stages per cycle, with the wall-normal direction never
// transformed (the channel code does linear algebra there instead).
//
// Two kernels share the machinery:
//
//   - Custom mirrors the paper's customized kernel: the x Nyquist mode is
//     neither stored nor transposed (Nx/2 one-sided modes instead of
//     Nx/2+1), communication scratch is sized to the input array (1x), and
//     FFT plus pack/unpack loops run under a worker pool.
//   - Baseline mirrors P3DFFT 2.5.1's behaviour: the Nyquist mode is carried
//     through every transpose, scratch buffers total three times the input
//     size, and there is no shared-memory threading.
//
// A Kernel owns its cycle workspace: the four intermediate pencil arrays
// (per field count) and per-worker FFT line scratch are allocated on first
// use and reused, so steady-state Cycle calls allocate nothing beyond the
// pool closure headers.
package parfft

import (
	"time"

	"channeldns/internal/fft"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// Kernel is a distributed parallel-FFT pipeline instance; construct with
// NewCustom or NewBaseline.
type Kernel struct {
	D           *pencil.Decomp
	Nx          int
	DropNyquist bool
	Pool        *par.Pool

	planZ *fft.Plan
	planX *fft.RealPlan
	// ballast emulates P3DFFT's extra working buffers; nil for Custom.
	ballast []complex128

	// Per-worker FFT line scratch, indexed by pool block id.
	workers []kernelWorker
	// Reusable intermediate pencil buffers, keyed by field count.
	bufs map[int]*cycleBufs

	// tel, when non-nil, receives per-stage FFT timing samples; the
	// transposes report through the shared Decomp collector. Set with
	// SetTelemetry.
	tel *telemetry.Collector

	// trc, when non-nil, marks each Cycle as one flight-recorder step so
	// the straggler analysis applies to the FFT benchmark the same way it
	// does to DNS timesteps. Set with SetTrace; cycles counts completed
	// cycles for the step labels.
	trc    *trace.Recorder
	cycles int64
}

// SetTelemetry attaches a per-rank telemetry collector to the kernel and
// its decomposition, so Cycle feeds the same accounting spine as the DNS
// timestep: FFT stages as PhaseFFTInverse/PhaseFFTForward regions,
// transposes as PhaseTransposeAB regions with per-direction byte counters.
func (k *Kernel) SetTelemetry(t *telemetry.Collector) {
	k.tel = t
	k.D.Telemetry = t
}

// SetTrace attaches a per-rank flight recorder to the kernel, its
// decomposition (transpose exchange windows) and the decomposition's
// communicators (per-peer exchange waits). Phase events additionally
// require the recorder to be attached to the collector passed to
// SetTelemetry (telemetry.Collector.SetTracer).
func (k *Kernel) SetTrace(r *trace.Recorder) {
	k.trc = r
	k.D.Trace = r
	k.D.Cart.SetTracer(r)
	k.D.A.SetTracer(r)
	k.D.B.SetTracer(r)
}

// kernelWorker holds one worker's transform scratch.
type kernelWorker struct {
	zline []complex128 // z-transform output line (out-of-place)
	phys  []float64    // physical x line
	spec  []complex128 // half-complex x spectrum (Nyquist slot included)
	xscr  []complex128 // real-plan scratch
}

// cycleBufs holds the intermediate pencil arrays of one cycle for a fixed
// number of fields.
type cycleBufs struct {
	zp, xp, zp2, out [][]complex128
}

// Timings accumulates per-cycle time split by operation class, the
// breakdown the paper reports.
type Timings struct {
	Transpose time.Duration
	FFT       time.Duration
}

// Total returns the summed time.
func (t Timings) Total() time.Duration { return t.Transpose + t.FFT }

// NewCustom builds the customized kernel on a PA x PB process grid for an
// Nx x Ny x Nz grid (Nx even). One-sided x modes: Nx/2 (Nyquist dropped).
func NewCustom(world *mpi.Comm, pa, pb, nx, ny, nz int, pool *par.Pool) *Kernel {
	return newKernel(world, pa, pb, nx, ny, nz, true, pool)
}

// NewBaseline builds the P3DFFT-style kernel: Nyquist kept (Nx/2+1 modes),
// 3x buffers, serial on-node execution.
func NewBaseline(world *mpi.Comm, pa, pb, nx, ny, nz int) *Kernel {
	return newKernel(world, pa, pb, nx, ny, nz, false, nil)
}

func newKernel(world *mpi.Comm, pa, pb, nx, ny, nz int, drop bool, pool *par.Pool) *Kernel {
	nkx := nx/2 + 1
	if drop {
		nkx = nx / 2
	}
	k := &Kernel{
		Nx:          nx,
		DropNyquist: drop,
		Pool:        pool,
		D:           pencil.New(world, pa, pb, nkx, nz, ny, pool),
		planZ:       fft.NewPlan(nz),
		planX:       fft.NewRealPlan(nx),
		bufs:        map[int]*cycleBufs{},
	}
	k.workers = make([]kernelWorker, pool.Workers())
	for i := range k.workers {
		w := &k.workers[i]
		w.zline = make([]complex128, nz)
		w.phys = make([]float64, nx)
		w.spec = make([]complex128, nx/2+1)
		w.xscr = make([]complex128, k.planX.ScratchLen())
	}
	if !drop {
		// P3DFFT's communication scratch is three times the input array;
		// allocate (and touch) the extra 2x so the memory footprint is real.
		yl, yh := k.D.YRange()
		zl, zh := k.D.ZRangeX(nz)
		n := (yh - yl) * (zh - zl) * nkx
		k.ballast = make([]complex128, 2*n)
		for i := range k.ballast {
			k.ballast[i] = 0
		}
	}
	return k
}

// NKx returns the number of one-sided x modes carried.
func (k *Kernel) NKx() int { return k.D.NKx }

// YPencilLen returns the per-field local length in the starting (y-pencil)
// configuration.
func (k *Kernel) YPencilLen() int { return k.D.YPencilLen() }

// cycleBufsFor returns (building on first use) the intermediate buffers for
// an nf-field cycle.
func (k *Kernel) cycleBufsFor(nf int) *cycleBufs {
	if b, ok := k.bufs[nf]; ok {
		return b
	}
	d := k.D
	b := &cycleBufs{
		zp:  allocFields(nf, d.ZPencilLen(d.NZ)),
		xp:  allocFields(nf, d.XPencilLen(d.NZ)),
		zp2: allocFields(nf, d.ZPencilLen(d.NZ)),
		out: allocFields(nf, d.YPencilLen()),
	}
	k.bufs[nf] = b
	return b
}

func allocFields(nf, n int) [][]complex128 {
	out := make([][]complex128, nf)
	for i := range out {
		out[i] = make([]complex128, n)
	}
	return out
}

// Cycle runs one full parallel-FFT cycle on the given spectral y-pencil
// fields: y->z transpose, inverse z FFT, z->x transpose, inverse x FFT,
// then the forward path back to y-pencils. As in the paper's benchmark, no
// 3/2 padding is applied and the wall-normal direction is untouched.
// The round trip is normalized to the identity. Returns the timing split.
// The returned fields are workspace buffers reused by the next Cycle call
// with the same field count.
func (k *Kernel) Cycle(fields [][]complex128) ([][]complex128, Timings) {
	var tm Timings
	d := k.D
	nz := d.NZ
	nkx := d.NKx
	b := k.cycleBufsFor(len(fields))

	cyc0 := time.Now()
	k.trc.BeginStep(k.cycles)

	t0 := time.Now()
	zp := d.YtoZ(b.zp, fields)
	tm.Transpose += time.Since(t0)

	// Inverse z FFT on every contiguous line of length nz, out-of-place
	// through the worker's line scratch (in-place would make the complex
	// plan allocate a temporary per line).
	kl, kh := d.KxRange()
	yl, yh := d.YRange()
	linesZ := (kh - kl) * (yh - yl)
	t0 = time.Now()
	sp := k.tel.Begin(telemetry.PhaseFFTInverse)
	k.Pool.ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		zline := k.workers[blk].zline
		for _, fd := range zp {
			for l := lo; l < hi; l++ {
				line := fd[l*nz : (l+1)*nz]
				k.planZ.Inverse(zline, line)
				copy(line, zline)
			}
		}
	})
	sp.End()
	tm.FFT += time.Since(t0)

	t0 = time.Now()
	xp := d.ZtoX(b.xp, zp, nz)
	tm.Transpose += time.Since(t0)

	// Inverse then forward x transform per line (physical excursion).
	zl, zh := d.ZRangeX(nz)
	linesX := (yh - yl) * (zh - zl)
	t0 = time.Now()
	sp = k.tel.Begin(telemetry.PhaseFFTForward)
	k.Pool.ForBlocksIndexed(linesX, func(blk, lo, hi int) {
		w := &k.workers[blk]
		phys, spec, xscr := w.phys, w.spec, w.xscr
		for _, fd := range xp {
			for l := lo; l < hi; l++ {
				line := fd[l*nkx : (l+1)*nkx]
				copy(spec, line)
				for i := nkx; i < len(spec); i++ {
					spec[i] = 0 // Nyquist (if dropped) enters as zero
				}
				k.planX.InverseScratch(phys, spec, xscr)
				k.planX.ForwardScratch(spec, phys, xscr)
				s := complex(1/float64(k.Nx), 0)
				for i := range line {
					line[i] = spec[i] * s
				}
			}
		}
	})
	sp.End()
	tm.FFT += time.Since(t0)

	t0 = time.Now()
	zp2 := d.XtoZ(b.zp2, xp, nz)
	tm.Transpose += time.Since(t0)

	// Forward z FFT, normalized.
	t0 = time.Now()
	sp = k.tel.Begin(telemetry.PhaseFFTForward)
	k.Pool.ForBlocksIndexed(linesZ, func(blk, lo, hi int) {
		zline := k.workers[blk].zline
		for _, fd := range zp2 {
			for l := lo; l < hi; l++ {
				line := fd[l*nz : (l+1)*nz]
				k.planZ.Forward(zline, line)
				fft.Scale(zline, 1/float64(nz))
				copy(line, zline)
			}
		}
	})
	sp.End()
	tm.FFT += time.Since(t0)

	t0 = time.Now()
	out := d.ZtoY(b.out, zp2)
	tm.Transpose += time.Since(t0)
	k.trc.EndStep(cyc0, time.Now())
	k.cycles++
	return out, tm
}
