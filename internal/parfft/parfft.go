// Package parfft implements the distributed 2.5-D FFT pipeline that paper
// §4.4 benchmarks against P3DFFT (Table 6): four global transposes and four
// batched 1-D FFT stages per cycle, with the wall-normal direction never
// transformed (the channel code does linear algebra there instead).
//
// Two kernels share the machinery:
//
//   - Custom mirrors the paper's customized kernel: the x Nyquist mode is
//     neither stored nor transposed (Nx/2 one-sided modes instead of
//     Nx/2+1), communication scratch is sized to the input array (1x), and
//     FFT plus pack/unpack loops run under a worker pool.
//   - Baseline mirrors P3DFFT 2.5.1's behaviour: the Nyquist mode is carried
//     through every transpose, scratch buffers total three times the input
//     size, and there is no shared-memory threading.
//
// A Kernel owns its cycle workspace: the four intermediate pencil arrays
// (per field count) and per-worker FFT line scratch are allocated on first
// use and reused, so steady-state Cycle calls allocate nothing beyond the
// pool closure headers.
package parfft

import (
	"time"

	"channeldns/internal/fft"
	"channeldns/internal/mpi"
	"channeldns/internal/par"
	"channeldns/internal/pencil"
	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// Kernel is a distributed parallel-FFT pipeline instance; construct with
// NewCustom or NewBaseline.
type Kernel struct {
	D           *pencil.Decomp
	Nx          int
	DropNyquist bool
	Pool        *par.Pool

	planZ *fft.Plan
	planX *fft.RealPlan
	// ballast emulates P3DFFT's extra working buffers; nil for Custom.
	ballast []complex128

	// Per-worker FFT line scratch, indexed by pool block id.
	workers []kernelWorker
	// Reusable intermediate pencil buffers, keyed by field count.
	bufs map[int]*cycleBufs

	// tel, when non-nil, receives per-stage FFT timing samples; the
	// transposes report through the shared Decomp collector. Set with
	// SetTelemetry.
	tel *telemetry.Collector

	// trc, when non-nil, marks each Cycle as one flight-recorder step so
	// the straggler analysis applies to the FFT benchmark the same way it
	// does to DNS timesteps. Set with SetTrace; cycles counts completed
	// cycles for the step labels.
	trc    *trace.Recorder
	cycles int64

	// Pipelined-cycle bindings: the stage fields and line ranges read by
	// the consume closures handed to the *Pipelined transposes, plus the
	// closures themselves, bound once at construction so steady-state
	// overlapped Cycles create no per-call closures. consumeDur
	// accumulates in-consume time per leg for the Timings split.
	cur        [][]complex128
	lineOff    int
	yLo, ySpan int
	consumeDur time.Duration

	zInvConsume, xConsume, zFwdConsume func(lo, hi int)
	zInvBlockFn, xBlockFn, zFwdBlockFn func(blk, lo, hi int)
}

// SetTelemetry attaches a per-rank telemetry collector to the kernel and
// its decomposition, so Cycle feeds the same accounting spine as the DNS
// timestep: FFT stages as PhaseFFTInverse/PhaseFFTForward regions,
// transposes as PhaseTransposeAB regions with per-direction byte counters.
func (k *Kernel) SetTelemetry(t *telemetry.Collector) {
	k.tel = t
	k.D.Telemetry = t
}

// SetTrace attaches a per-rank flight recorder to the kernel, its
// decomposition (transpose exchange windows) and the decomposition's
// communicators (per-peer exchange waits). Phase events additionally
// require the recorder to be attached to the collector passed to
// SetTelemetry (telemetry.Collector.SetTracer).
func (k *Kernel) SetTrace(r *trace.Recorder) {
	k.trc = r
	k.D.Trace = r
	k.D.Cart.SetTracer(r)
	k.D.A.SetTracer(r)
	k.D.B.SetTracer(r)
}

// kernelWorker holds one worker's transform scratch.
type kernelWorker struct {
	zline []complex128 // z-transform output line (out-of-place)
	phys  []float64    // physical x line
	spec  []complex128 // half-complex x spectrum (Nyquist slot included)
	xscr  []complex128 // real-plan scratch
}

// cycleBufs holds the intermediate pencil arrays of one cycle for a fixed
// number of fields.
type cycleBufs struct {
	zp, xp, zp2, out [][]complex128
}

// Timings accumulates per-cycle time split by operation class, the
// breakdown the paper reports.
type Timings struct {
	Transpose time.Duration
	FFT       time.Duration
}

// Total returns the summed time.
func (t Timings) Total() time.Duration { return t.Transpose + t.FFT }

// NewCustom builds the customized kernel on a PA x PB process grid for an
// Nx x Ny x Nz grid (Nx even). One-sided x modes: Nx/2 (Nyquist dropped).
func NewCustom(world *mpi.Comm, pa, pb, nx, ny, nz int, pool *par.Pool) *Kernel {
	return newKernel(world, pa, pb, nx, ny, nz, true, pool)
}

// NewBaseline builds the P3DFFT-style kernel: Nyquist kept (Nx/2+1 modes),
// 3x buffers, serial on-node execution.
func NewBaseline(world *mpi.Comm, pa, pb, nx, ny, nz int) *Kernel {
	return newKernel(world, pa, pb, nx, ny, nz, false, nil)
}

func newKernel(world *mpi.Comm, pa, pb, nx, ny, nz int, drop bool, pool *par.Pool) *Kernel {
	nkx := nx/2 + 1
	if drop {
		nkx = nx / 2
	}
	k := &Kernel{
		Nx:          nx,
		DropNyquist: drop,
		Pool:        pool,
		D:           pencil.New(world, pa, pb, nkx, nz, ny, pool),
		planZ:       fft.NewPlan(nz),
		planX:       fft.NewRealPlan(nx),
		bufs:        map[int]*cycleBufs{},
	}
	k.zInvConsume = k.consumeZInv
	k.xConsume = k.consumeX
	k.zFwdConsume = k.consumeZFwd
	k.zInvBlockFn = k.zInvBlock
	k.xBlockFn = k.xBlock
	k.zFwdBlockFn = k.zFwdBlock
	k.workers = make([]kernelWorker, pool.Workers())
	for i := range k.workers {
		w := &k.workers[i]
		w.zline = make([]complex128, nz)
		w.phys = make([]float64, nx)
		w.spec = make([]complex128, nx/2+1)
		w.xscr = make([]complex128, k.planX.ScratchLen())
	}
	if !drop {
		// P3DFFT's communication scratch is three times the input array;
		// allocate (and touch) the extra 2x so the memory footprint is real.
		yl, yh := k.D.YRange()
		zl, zh := k.D.ZRangeX(nz)
		n := (yh - yl) * (zh - zl) * nkx
		k.ballast = make([]complex128, 2*n)
		for i := range k.ballast {
			k.ballast[i] = 0
		}
	}
	return k
}

// NKx returns the number of one-sided x modes carried.
func (k *Kernel) NKx() int { return k.D.NKx }

// YPencilLen returns the per-field local length in the starting (y-pencil)
// configuration.
func (k *Kernel) YPencilLen() int { return k.D.YPencilLen() }

// cycleBufsFor returns (building on first use) the intermediate buffers for
// an nf-field cycle.
func (k *Kernel) cycleBufsFor(nf int) *cycleBufs {
	if b, ok := k.bufs[nf]; ok {
		return b
	}
	d := k.D
	b := &cycleBufs{
		zp:  allocFields(nf, d.ZPencilLen(d.NZ)),
		xp:  allocFields(nf, d.XPencilLen(d.NZ)),
		zp2: allocFields(nf, d.ZPencilLen(d.NZ)),
		out: allocFields(nf, d.YPencilLen()),
	}
	k.bufs[nf] = b
	return b
}

func allocFields(nf, n int) [][]complex128 {
	out := make([][]complex128, nf)
	for i := range out {
		out[i] = make([]complex128, n)
	}
	return out
}

// Cycle runs one full parallel-FFT cycle on the given spectral y-pencil
// fields: y->z transpose, inverse z FFT, z->x transpose, inverse x FFT,
// then the forward path back to y-pencils. As in the paper's benchmark, no
// 3/2 padding is applied and the wall-normal direction is untouched.
// The round trip is normalized to the identity. Returns the timing split.
// The returned fields are workspace buffers reused by the next Cycle call
// with the same field count.
//
// Each transpose feeding an FFT stage runs through the pipelined entry
// point: with Decomp.Overlap set the exchange is chunked and the FFT stage
// transforms each completed line range while later chunks are still on the
// wire; otherwise the transpose completes first and the stage runs once
// over the full range. Results are bit-identical either way. The Timings
// split charges in-consume transform time to FFT and the remainder of each
// leg (pack, wire, unpack) to Transpose.
func (k *Kernel) Cycle(fields [][]complex128) ([][]complex128, Timings) {
	var tm Timings
	d := k.D
	nz := d.NZ
	b := k.cycleBufsFor(len(fields))

	cyc0 := time.Now()
	k.trc.BeginStep(k.cycles)

	// y->z transpose with the inverse z FFT riding on completed kx ranges.
	t0 := time.Now()
	k.cur = b.zp
	k.consumeDur = 0
	zp := d.YtoZPipelined(b.zp, fields, k.zInvConsume)
	tm.FFT += k.consumeDur
	tm.Transpose += time.Since(t0) - k.consumeDur

	// z->x transpose with the fused inverse+forward x transform (physical
	// excursion) riding on completed y ranges.
	t0 = time.Now()
	k.cur = b.xp
	k.consumeDur = 0
	xp := d.ZtoXPipelined(b.xp, zp, nz, k.xConsume)
	tm.FFT += k.consumeDur
	tm.Transpose += time.Since(t0) - k.consumeDur

	// x->z transpose with the normalized forward z FFT riding on completed
	// y ranges.
	t0 = time.Now()
	k.cur = b.zp2
	k.consumeDur = 0
	zp2 := d.XtoZPipelined(b.zp2, xp, nz, k.zFwdConsume)
	tm.FFT += k.consumeDur
	tm.Transpose += time.Since(t0) - k.consumeDur
	k.cur = nil

	// Final z->y transpose: nothing follows it in the cycle, so there is no
	// compute to hide under and it runs on the plain exchange.
	t0 = time.Now()
	out := d.ZtoY(b.out, zp2)
	tm.Transpose += time.Since(t0)
	k.trc.EndStep(cyc0, time.Now())
	k.cycles++
	return out, tm
}

// consumeZInv transforms the inverse z FFT lines of the completed local-kx
// range [lo, hi): z-pencil lines [lo*nyLoc, hi*nyLoc), contiguous lines of
// length nz, out-of-place through the worker's line scratch (in-place
// would make the complex plan allocate a temporary per line).
func (k *Kernel) consumeZInv(lo, hi int) {
	t0 := time.Now()
	yl, yh := k.D.YRange()
	nyLoc := yh - yl
	k.lineOff = lo * nyLoc
	sp := k.tel.Begin(telemetry.PhaseFFTInverse)
	k.Pool.ForBlocksIndexed((hi-lo)*nyLoc, k.zInvBlockFn)
	sp.End()
	k.consumeDur += time.Since(t0)
}

func (k *Kernel) zInvBlock(blk, lo, hi int) {
	nz := k.D.NZ
	zline := k.workers[blk].zline
	off := k.lineOff
	for _, fd := range k.cur {
		for l := lo; l < hi; l++ {
			line := fd[(off+l)*nz : (off+l+1)*nz]
			k.planZ.Inverse(zline, line)
			copy(line, zline)
		}
	}
}

// consumeX runs the fused inverse+forward x transform over the completed
// local-y range [lo, hi): x-pencil lines [lo*nzLoc, hi*nzLoc).
func (k *Kernel) consumeX(lo, hi int) {
	t0 := time.Now()
	zl, zh := k.D.ZRangeX(k.D.NZ)
	nzLoc := zh - zl
	k.lineOff = lo * nzLoc
	sp := k.tel.Begin(telemetry.PhaseFFTForward)
	k.Pool.ForBlocksIndexed((hi-lo)*nzLoc, k.xBlockFn)
	sp.End()
	k.consumeDur += time.Since(t0)
}

func (k *Kernel) xBlock(blk, lo, hi int) {
	nkx := k.D.NKx
	w := &k.workers[blk]
	phys, spec, xscr := w.phys, w.spec, w.xscr
	off := k.lineOff
	s := complex(1/float64(k.Nx), 0)
	for _, fd := range k.cur {
		for l := lo; l < hi; l++ {
			line := fd[(off+l)*nkx : (off+l+1)*nkx]
			copy(spec, line)
			for i := nkx; i < len(spec); i++ {
				spec[i] = 0 // Nyquist (if dropped) enters as zero
			}
			k.planX.InverseScratch(phys, spec, xscr)
			k.planX.ForwardScratch(spec, phys, xscr)
			for i := range line {
				line[i] = spec[i] * s
			}
		}
	}
}

// consumeZFwd runs the normalized forward z FFT over the completed local-y
// range [lo, hi). After x->z the completed lines are strided — (kx*nyLoc+y)
// for every local kx with y in [lo, hi) — so the pool iterates a dense
// (kx, y-in-range) index and maps it back to the z-pencil line.
func (k *Kernel) consumeZFwd(lo, hi int) {
	t0 := time.Now()
	kl, kh := k.D.KxRange()
	k.yLo, k.ySpan = lo, hi-lo
	sp := k.tel.Begin(telemetry.PhaseFFTForward)
	k.Pool.ForBlocksIndexed((kh-kl)*(hi-lo), k.zFwdBlockFn)
	sp.End()
	k.consumeDur += time.Since(t0)
}

func (k *Kernel) zFwdBlock(blk, lo, hi int) {
	d := k.D
	nz := d.NZ
	yl, yh := d.YRange()
	nyLoc := yh - yl
	zline := k.workers[blk].zline
	span := k.ySpan
	for _, fd := range k.cur {
		for l := lo; l < hi; l++ {
			kx := l / span
			li := kx*nyLoc + k.yLo + l - kx*span
			line := fd[li*nz : (li+1)*nz]
			k.planZ.Forward(zline, line)
			fft.Scale(zline, 1/float64(nz))
			copy(line, zline)
		}
	}
}
