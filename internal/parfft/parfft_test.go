package parfft

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// TestCycleIsIdentity: a full inverse+forward cycle must reproduce the input
// spectrum on every rank (to rounding), for both kernels and several grids.
func TestCycleIsIdentity(t *testing.T) {
	cases := []struct {
		pa, pb, nx, ny, nz int
		custom             bool
	}{
		{1, 1, 8, 6, 8, true},
		{2, 2, 16, 8, 8, true},
		{2, 2, 16, 8, 8, false},
		{4, 2, 32, 12, 16, true},
		{2, 4, 32, 12, 16, false},
		{3, 2, 12, 7, 9, true}, // uneven everything
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("pa%d_pb%d_%dx%dx%d_custom%v", tc.pa, tc.pb, tc.nx, tc.ny, tc.nz, tc.custom)
		t.Run(name, func(t *testing.T) {
			mpi.Run(tc.pa*tc.pb, func(c *mpi.Comm) {
				var k *Kernel
				if tc.custom {
					k = NewCustom(c, tc.pa, tc.pb, tc.nx, tc.ny, tc.nz, par.NewPool(2))
				} else {
					k = NewBaseline(c, tc.pa, tc.pb, tc.nx, tc.ny, tc.nz)
				}
				rng := rand.New(rand.NewSource(int64(c.Rank()*7 + 1)))
				nf := 3
				fields := make([][]complex128, nf)
				for f := range fields {
					fields[f] = make([]complex128, k.YPencilLen())
					for i := range fields[f] {
						fields[f][i] = complex(rng.NormFloat64(), rng.NormFloat64())
					}
				}
				// Zero the modes a real field cannot carry independently:
				// the inverse x transform treats the line as a half-complex
				// spectrum, so a clean identity needs the kx=0 (and Nyquist)
				// planes Hermitian in z. Zero them for the roundtrip test.
				kl, kh := k.D.KxRange()
				zl, zh := k.D.KzRangeY()
				ny := k.D.NY
				for f := range fields {
					pos := 0
					for kx := kl; kx < kh; kx++ {
						for kz := zl; kz < zh; kz++ {
							for y := 0; y < ny; y++ {
								if kx == 0 || kx == k.Nx/2 {
									fields[f][pos] = 0
								}
								pos++
							}
						}
					}
				}
				want := make([][]complex128, nf)
				for f := range fields {
					want[f] = append([]complex128(nil), fields[f]...)
				}
				out, _ := k.Cycle(fields)
				for f := range out {
					for i := range out[f] {
						if d := cmplx.Abs(out[f][i] - want[f][i]); d > 1e-9 {
							t.Fatalf("field %d index %d: |diff| = %g", f, i, d)
						}
					}
				}
			})
		})
	}
}

// TestCycleMatchesSingleRank: the distributed cycle must give the same
// result as the single-rank cycle on identical global data.
func TestCycleMatchesSingleRank(t *testing.T) {
	nx, ny, nz := 16, 6, 12
	nkx := nx / 2
	// Deterministic global y-pencil content indexed (kx, kz, y).
	val := func(f, kx, kz, y int) complex128 {
		if kx == 0 {
			return 0
		}
		return complex(float64(f+1)*0.1*float64(kx+1), float64(kz-y)*0.05)
	}
	// Single rank reference.
	var ref [][]complex128
	mpi.Run(1, func(c *mpi.Comm) {
		k := NewCustom(c, 1, 1, nx, ny, nz, par.NewPool(1))
		fields := [][]complex128{make([]complex128, k.YPencilLen())}
		pos := 0
		for kx := 0; kx < nkx; kx++ {
			for kz := 0; kz < nz; kz++ {
				for y := 0; y < ny; y++ {
					fields[0][pos] = val(0, kx, kz, y)
					pos++
				}
			}
		}
		out, _ := k.Cycle(fields)
		ref = out
	})
	// Distributed run: every rank checks its slice against ref's layout.
	mpi.Run(4, func(c *mpi.Comm) {
		k := NewCustom(c, 2, 2, nx, ny, nz, par.NewPool(1))
		fields := [][]complex128{make([]complex128, k.YPencilLen())}
		kl, kh := k.D.KxRange()
		zl, zh := k.D.KzRangeY()
		pos := 0
		for kx := kl; kx < kh; kx++ {
			for kz := zl; kz < zh; kz++ {
				for y := 0; y < ny; y++ {
					fields[0][pos] = val(0, kx, kz, y)
					pos++
				}
			}
		}
		out, _ := k.Cycle(fields)
		pos = 0
		for kx := kl; kx < kh; kx++ {
			for kz := zl; kz < zh; kz++ {
				for y := 0; y < ny; y++ {
					want := ref[0][(kx*nz+kz)*ny+y]
					if d := cmplx.Abs(out[0][pos] - want); d > 1e-10 {
						t.Fatalf("rank %d (kx=%d kz=%d y=%d): |diff|=%g", c.Rank(), kx, kz, y, d)
					}
					pos++
				}
			}
		}
	})
}

func TestBaselineCarriesNyquist(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		cust := NewCustom(c, 1, 1, 16, 4, 8, par.NewPool(1))
		if cust.NKx() != 8 {
			t.Errorf("custom NKx = %d, want 8", cust.NKx())
		}
	})
	mpi.Run(1, func(c *mpi.Comm) {
		base := NewBaseline(c, 1, 1, 16, 4, 8)
		if base.NKx() != 9 {
			t.Errorf("baseline NKx = %d, want 9", base.NKx())
		}
		if base.ballast == nil {
			t.Error("baseline missing 3x buffer ballast")
		}
	})
}

func TestTimingsAccumulate(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		k := NewCustom(c, 2, 1, 32, 16, 32, par.NewPool(1))
		fields := [][]complex128{make([]complex128, k.YPencilLen())}
		_, tm := k.Cycle(fields)
		if tm.Transpose <= 0 || tm.FFT <= 0 {
			t.Errorf("timings not accumulated: %+v", tm)
		}
		if tm.Total() != tm.Transpose+tm.FFT {
			t.Errorf("total mismatch")
		}
	})
}
