package parfft

import (
	"fmt"
	"math/rand"
	"testing"

	"channeldns/internal/mpi"
	"channeldns/internal/par"
)

// TestCyclePipelinedBitwise: a full transpose/FFT cycle with the pipelined
// overlapped exchange must be bit-identical (exact ==) to the serial path,
// for P ∈ {1, 2, 4, 8} including uneven decompositions. Per-line transforms
// are order-independent, so chunking the transposes and interleaving the
// FFT stages must not move a single bit.
func TestCyclePipelinedBitwise(t *testing.T) {
	shapes := []struct{ pa, pb, nx, ny, nz int }{
		{1, 1, 8, 9, 6},
		{2, 1, 12, 7, 10},
		{1, 2, 8, 11, 6},
		{2, 2, 12, 9, 10},  // nkx=6, ny=9: uneven over both axes
		{4, 2, 12, 11, 10}, // nkx=6 over pa=4: uneven kx chunks
		{2, 4, 8, 10, 6},   // ny=10 over pb=4: uneven y chunks
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d_%dx%dx%d", sh.pa, sh.pb, sh.nx, sh.ny, sh.nz),
			func(t *testing.T) {
				mpi.Run(sh.pa*sh.pb, func(c *mpi.Comm) {
					pool := par.NewPool(2)
					ks := NewCustom(c, sh.pa, sh.pb, sh.nx, sh.ny, sh.nz, pool)
					kp := NewCustom(c, sh.pa, sh.pb, sh.nx, sh.ny, sh.nz, pool)
					kp.D.Overlap = true
					kp.D.PipelineChunks = 3
					const nf = 2
					rng := rand.New(rand.NewSource(int64(13*c.Rank() + 5)))
					fields := make([][]complex128, nf)
					fieldsP := make([][]complex128, nf)
					n := ks.YPencilLen()
					for f := 0; f < nf; f++ {
						fields[f] = make([]complex128, n)
						fieldsP[f] = make([]complex128, n)
					}
					for it := 0; it < 2; it++ {
						for f := 0; f < nf; f++ {
							for i := 0; i < n; i++ {
								v := complex(rng.NormFloat64(), rng.NormFloat64())
								fields[f][i] = v
								fieldsP[f][i] = v
							}
						}
						outS, _ := ks.Cycle(fields)
						outP, _ := kp.Cycle(fieldsP)
						for f := 0; f < nf; f++ {
							for i := 0; i < n; i++ {
								if outS[f][i] != outP[f][i] {
									t.Fatalf("iter %d rank %d: overlapped cycle differs at f=%d i=%d: %v != %v",
										it, c.Rank(), f, i, outP[f][i], outS[f][i])
								}
							}
						}
					}
				})
			})
	}
}
