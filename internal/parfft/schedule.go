package parfft

import "channeldns/internal/schedule"

// Schedule returns the declarative schedule of one Cycle over nf fields as
// this kernel executes it: four global transposes and four batched FFT
// stages, no 3/2 padding, y untouched. The kind follows the kernel's
// construction — Custom (Nyquist dropped) or the P3DFFT-style baseline
// (Nyquist carried, heavier reordering, 3x scratch).
// With the decomposition's Overlap on, Cycle pipelines legs 1-3 (each
// transpose fused with the FFT stage consuming its chunks) and leaves the
// final ZtoY one-shot; the emitted program declares exactly that shape,
// with the pipeline depths the executing plans use.
func (k *Kernel) Schedule(nf int) *schedule.Schedule {
	kind := schedule.FFTP3DFFT
	if k.DropNyquist {
		kind = schedule.FFTCustom
	}
	ca, cb := k.D.OverlapChunks()
	return schedule.FFTCycle(schedule.FFTCycleParams{
		Nx: k.Nx, Ny: k.D.NY, Nz: k.D.NZ,
		PA: k.D.PA, PB: k.D.PB,
		Fields:  nf,
		Kind:    kind,
		ChunksA: ca, ChunksB: cb,
	})
}
