package fft

// This file implements the fused 3/2-rule "pad, transform, truncate"
// operations of the paper's steps (b)-(f): spectral data carrying N Fourier
// modes is expanded with zeros onto a quadrature grid of M >= 3N/2 points
// before inverse transforming, and after the forward transform only the
// resolved modes are kept. Performing the pad/truncate inside the transform
// wrapper keeps the data in cache across the two operations, which is the
// optimization the paper attributes to its threaded FFT blocks.

// PadComplex embeds a wrap-ordered complex spectrum of logical length n into
// a wrap-ordered spectrum of length m >= n, zeroing the new high modes.
// Modes k = 0..n/2-1 and k = -(n/2-1)..-1 are copied; the Nyquist slot of the
// source (index n/2, for even n) is dropped, matching the solver convention
// that the Nyquist mode is not carried.
func PadComplex(dst, src []complex128, n, m int) {
	if m < n {
		panic("fft: PadComplex target smaller than source")
	}
	if len(dst) < m || len(src) < n {
		panic("fft: PadComplex slice lengths")
	}
	half := n / 2
	copy(dst[:half], src[:half])
	for i := half; i < m-(n-half)+1; i++ {
		dst[i] = 0
	}
	// Negative wavenumbers: src indices half+1..n-1 map to dst m-n+half+1..m-1.
	neg := n - half - 1 // count of negative modes
	for j := 0; j < neg; j++ {
		dst[m-neg+j] = src[n-neg+j]
	}
}

// TruncateComplex extracts the resolved modes of a wrap-ordered spectrum of
// length m back into a spectrum of logical length n <= m, scaling by s and
// zeroing the Nyquist slot of the destination.
func TruncateComplex(dst, src []complex128, n, m int, s float64) {
	if m < n {
		panic("fft: TruncateComplex source smaller than target")
	}
	if len(dst) < n || len(src) < m {
		panic("fft: TruncateComplex slice lengths")
	}
	cs := complex(s, 0)
	half := n / 2
	for k := 0; k < half; k++ {
		dst[k] = src[k] * cs
	}
	neg := n - half - 1
	if n%2 == 0 {
		dst[half] = 0 // Nyquist not carried
	}
	for j := 0; j < neg; j++ {
		dst[n-neg+j] = src[m-neg+j] * cs
	}
}

// PaddedComplex fuses 3/2-rule padding with complex transforms in one
// direction (the z transforms of the DNS). The spectral side carries n
// wrap-ordered modes (Nyquist zero); the physical side has m points.
type PaddedComplex struct {
	n, m int
	plan *Plan
	buf  []complex128
}

// NewPaddedComplex builds the fused transform for n spectral modes on an
// m-point quadrature grid (typically m = 3n/2).
func NewPaddedComplex(n, m int) *PaddedComplex {
	if m < n {
		panic("fft: padded transform needs m >= n")
	}
	return &PaddedComplex{n: n, m: m, plan: NewPlan(m), buf: make([]complex128, m)}
}

// SpectralLen returns n, the number of spectral modes carried.
func (p *PaddedComplex) SpectralLen() int { return p.n }

// PhysicalLen returns m, the quadrature grid size.
func (p *PaddedComplex) PhysicalLen() int { return p.m }

// ScratchLen returns the scratch length the Scratch variants require.
func (p *PaddedComplex) ScratchLen() int { return p.m }

// InversePadded fills phys (length m) with the unnormalized inverse
// transform of the zero-padded spectrum spec (length n). Not safe for
// concurrent use; see InversePaddedScratch.
func (p *PaddedComplex) InversePadded(phys, spec []complex128) {
	p.InversePaddedScratch(phys, spec, p.buf)
}

// InversePaddedScratch is InversePadded with caller-provided scratch of
// length PhysicalLen(), safe for concurrent use with distinct scratch.
func (p *PaddedComplex) InversePaddedScratch(phys, spec, scratch []complex128) {
	PadComplex(scratch, spec, p.n, p.m)
	p.plan.Inverse(phys, scratch)
}

// ForwardTruncated transforms phys (length m) forward and stores the n
// resolved modes into spec, normalized by 1/m so that a round trip is the
// identity on the resolved modes. Not safe for concurrent use; see
// ForwardTruncatedScratch.
func (p *PaddedComplex) ForwardTruncated(spec, phys []complex128) {
	p.ForwardTruncatedScratch(spec, phys, p.buf)
}

// ForwardTruncatedScratch is ForwardTruncated with caller-provided scratch
// of length PhysicalLen(), safe for concurrent use with distinct scratch.
func (p *PaddedComplex) ForwardTruncatedScratch(spec, phys, scratch []complex128) {
	p.plan.Forward(scratch, phys)
	TruncateComplex(spec, scratch, p.n, p.m, 1/float64(p.m))
}

// PaddedReal fuses 3/2-rule padding with real transforms in one direction
// (the x transforms of the DNS). The spectral side carries nk one-sided
// modes k = 0..nk-1 with the Nyquist mode dropped, as in the paper's
// customized kernel; the physical side has m real points.
type PaddedReal struct {
	nk, m int
	plan  *RealPlan
	buf   []complex128
}

// NewPaddedReal builds the fused real transform carrying nk one-sided modes
// on an m-point grid (typically nk = Nx/2 and m = 3Nx/2).
func NewPaddedReal(nk, m int) *PaddedReal {
	if m/2+1 < nk {
		panic("fft: padded real transform needs m/2+1 >= nk")
	}
	p := &PaddedReal{nk: nk, m: m, plan: NewRealPlan(m)}
	p.buf = make([]complex128, p.ScratchLen())
	return p
}

// SpectralLen returns the number of one-sided modes carried.
func (p *PaddedReal) SpectralLen() int { return p.nk }

// PhysicalLen returns the quadrature grid size.
func (p *PaddedReal) PhysicalLen() int { return p.m }

// ScratchLen returns the scratch length the Scratch variants require: the
// half-complex spectrum image plus the underlying real plan's own scratch.
func (p *PaddedReal) ScratchLen() int { return p.m/2 + 1 + p.plan.ScratchLen() }

// InversePadded fills phys (length m) with the unnormalized inverse real
// transform of the zero-padded one-sided spectrum spec (length nk). Not
// safe for concurrent use; see InversePaddedScratch.
func (p *PaddedReal) InversePadded(phys []float64, spec []complex128) {
	p.InversePaddedScratch(phys, spec, p.buf)
}

// InversePaddedScratch is InversePadded with caller-provided scratch of
// length ScratchLen(), safe for concurrent use with distinct scratch and
// free of allocations.
func (p *PaddedReal) InversePaddedScratch(phys []float64, spec, scratch []complex128) {
	nc := p.m/2 + 1
	half, rest := scratch[:nc], scratch[nc:]
	copy(half[:p.nk], spec[:p.nk])
	for i := p.nk; i < nc; i++ {
		half[i] = 0
	}
	p.plan.InverseScratch(phys, half, rest)
}

// ForwardTruncated transforms phys forward and keeps the nk resolved
// one-sided modes, normalized by 1/m. Not safe for concurrent use; see
// ForwardTruncatedScratch.
func (p *PaddedReal) ForwardTruncated(spec []complex128, phys []float64) {
	p.ForwardTruncatedScratch(spec, phys, p.buf)
}

// ForwardTruncatedScratch is ForwardTruncated with caller-provided scratch
// of length ScratchLen(), safe for concurrent use with distinct scratch and
// free of allocations.
func (p *PaddedReal) ForwardTruncatedScratch(spec []complex128, phys []float64, scratch []complex128) {
	nc := p.m/2 + 1
	half, rest := scratch[:nc], scratch[nc:]
	p.plan.ForwardScratch(half, phys, rest)
	s := complex(1/float64(p.m), 0)
	for k := 0; k < p.nk; k++ {
		spec[k] = half[k] * s
	}
}
