package fft

import (
	"fmt"
	"math"
)

// RealPlan transforms real sequences of length N to half-complex spectra of
// NumModes() = N/2+1 coefficients and back. Even lengths use the standard
// half-length complex-packing trick; odd lengths fall back to a full complex
// transform. Conventions match Plan: Forward is unnormalized,
// Inverse(Forward(x)) == N*x.
type RealPlan struct {
	n    int
	nc   int
	half *Plan // length n/2 when n is even
	full *Plan // length n when n is odd
	// twiddles w^k = exp(-2*pi*i*k/n) for k in [0, n/2]
	w []complex128
}

// NewRealPlan creates a real transform plan for length n > 0.
func NewRealPlan(n int) *RealPlan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid real transform length %d", n))
	}
	p := &RealPlan{n: n, nc: n/2 + 1}
	if n%2 == 0 && n > 1 {
		p.half = NewPlan(n / 2)
		p.w = make([]complex128, n/2+1)
		tw := NewPlan(n) // borrow its twiddle table
		if tw.blue == nil {
			for k := 0; k <= n/2; k++ {
				p.w[k] = tw.twF[k]
			}
		} else {
			for k := 0; k <= n/2; k++ {
				p.w[k] = expTw(-1, k, n)
			}
		}
	} else {
		p.full = NewPlan(n)
	}
	return p
}

// Len returns the physical (real) length.
func (p *RealPlan) Len() int { return p.n }

// NumModes returns the number of stored half-complex coefficients, N/2+1.
func (p *RealPlan) NumModes() int { return p.nc }

// Forward computes the half-complex spectrum of the real sequence src.
// dst must have length >= NumModes(); src must have length >= Len().
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	if len(dst) < p.nc || len(src) < p.n {
		panic("fft: real forward slice lengths")
	}
	if p.full != nil {
		buf := make([]complex128, p.n)
		for j, v := range src[:p.n] {
			buf[j] = complex(v, 0)
		}
		p.full.Forward(buf, buf)
		copy(dst, buf[:p.nc])
		return
	}
	h := p.n / 2
	z := make([]complex128, h)
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(z, z)
	// Unpack: E[k] = (Z[k]+conj(Z[h-k]))/2, O[k] = (Z[k]-conj(Z[h-k]))/(2i),
	// X[k] = E[k] + w^k O[k] for k = 0..h (Z periodic with Z[h] = Z[0]).
	for k := 0; k <= h; k++ {
		zk := z[k%h]
		zr := conj(z[(h-k)%h])
		e := (zk + zr) * complex(0.5, 0)
		o := (zk - zr) * complex(0, -0.5)
		dst[k] = e + p.w[k]*o
	}
}

// Inverse computes the unnormalized inverse of a half-complex spectrum,
// writing a real sequence of length Len(). The imaginary parts of src[0]
// and, for even N, src[N/2] are ignored (they must be zero for a valid
// Hermitian spectrum). Inverse(Forward(x)) == N*x.
func (p *RealPlan) Inverse(dst []float64, src []complex128) {
	if len(dst) < p.n || len(src) < p.nc {
		panic("fft: real inverse slice lengths")
	}
	if p.full != nil {
		buf := make([]complex128, p.n)
		copy(buf, src[:p.nc])
		buf[0] = complex(real(src[0]), 0)
		for k := p.nc; k < p.n; k++ {
			buf[k] = conj(buf[p.n-k])
		}
		p.full.Inverse(buf, buf)
		for j := 0; j < p.n; j++ {
			dst[j] = real(buf[j])
		}
		return
	}
	h := p.n / 2
	z := make([]complex128, h)
	x0 := complex(real(src[0]), 0)
	xh := complex(real(src[h]), 0)
	for k := 0; k < h; k++ {
		var xk, xrk complex128
		switch k {
		case 0:
			xk, xrk = x0, xh
		default:
			xk, xrk = src[k], conj(src[h-k])
		}
		e := (xk + xrk) * complex(0.5, 0)
		wo := (xk - xrk) * complex(0.5, 0)
		// O[k] = w^-k * wo; w^-k = conj(w^k).
		o := conj(p.w[k]) * wo
		z[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(z, z)
	for j := 0; j < h; j++ {
		dst[2*j] = 2 * real(z[j])
		dst[2*j+1] = 2 * imag(z[j])
	}
}

// expTw returns exp(sign * 2*pi*i * k / n).
func expTw(sign, k, n int) complex128 {
	theta := 2 * math.Pi * float64(k) / float64(n)
	if sign < 0 {
		theta = -theta
	}
	s, c := math.Sincos(theta)
	return complex(c, s)
}
