package fft

import (
	"fmt"
	"math"
)

// RealPlan transforms real sequences of length N to half-complex spectra of
// NumModes() = N/2+1 coefficients and back. Even lengths use the standard
// half-length complex-packing trick; odd lengths fall back to a full complex
// transform. Conventions match Plan: Forward is unnormalized,
// Inverse(Forward(x)) == N*x.
type RealPlan struct {
	n    int
	nc   int
	half *Plan // length n/2 when n is even
	full *Plan // length n when n is odd
	// twiddles w^k = exp(-2*pi*i*k/n) for k in [0, n/2]
	w []complex128
	// owned scratch backing the nil-scratch convenience paths; using it
	// makes Forward/Inverse non-concurrent (see ForwardScratch).
	scratch []complex128
}

// NewRealPlan creates a real transform plan for length n > 0.
func NewRealPlan(n int) *RealPlan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid real transform length %d", n))
	}
	p := &RealPlan{n: n, nc: n/2 + 1}
	if n%2 == 0 && n > 1 {
		p.half = NewPlan(n / 2)
		p.w = make([]complex128, n/2+1)
		tw := NewPlan(n) // borrow its twiddle table
		if tw.blue == nil {
			for k := 0; k <= n/2; k++ {
				p.w[k] = tw.twF[k]
			}
		} else {
			for k := 0; k <= n/2; k++ {
				p.w[k] = expTw(-1, k, n)
			}
		}
	} else {
		p.full = NewPlan(n)
	}
	p.scratch = make([]complex128, p.ScratchLen())
	return p
}

// ScratchLen returns the scratch length (in complex128 elements) that
// ForwardScratch and InverseScratch require: room for both the packed
// input and the transform output, so the underlying complex plan runs
// out-of-place and allocates nothing.
func (p *RealPlan) ScratchLen() int {
	if p.full != nil {
		return 2 * p.n
	}
	return p.n // n/2 packed input + n/2 transform output
}

// Len returns the physical (real) length.
func (p *RealPlan) Len() int { return p.n }

// NumModes returns the number of stored half-complex coefficients, N/2+1.
func (p *RealPlan) NumModes() int { return p.nc }

// Forward computes the half-complex spectrum of the real sequence src.
// dst must have length >= NumModes(); src must have length >= Len().
// It uses the plan's owned scratch, so concurrent calls on one plan must
// go through ForwardScratch with distinct scratch instead.
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	p.ForwardScratch(dst, src, p.scratch)
}

// ForwardScratch is Forward with caller-provided scratch of length
// ScratchLen(); it performs no allocations and is safe for concurrent use
// of one plan with distinct dst/scratch.
func (p *RealPlan) ForwardScratch(dst []complex128, src []float64, scratch []complex128) {
	if len(dst) < p.nc || len(src) < p.n {
		panic("fft: real forward slice lengths")
	}
	if len(scratch) < p.ScratchLen() {
		panic("fft: real forward scratch length")
	}
	if p.full != nil {
		buf, out := scratch[:p.n], scratch[p.n:2*p.n]
		for j, v := range src[:p.n] {
			buf[j] = complex(v, 0)
		}
		p.full.Forward(out, buf)
		copy(dst, out[:p.nc])
		return
	}
	h := p.n / 2
	z, zt := scratch[:h], scratch[h:2*h]
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(zt, z)
	// Unpack: E[k] = (Z[k]+conj(Z[h-k]))/2, O[k] = (Z[k]-conj(Z[h-k]))/(2i),
	// X[k] = E[k] + w^k O[k] for k = 0..h (Z periodic with Z[h] = Z[0]).
	for k := 0; k <= h; k++ {
		zk := zt[k%h]
		zr := conj(zt[(h-k)%h])
		e := (zk + zr) * complex(0.5, 0)
		o := (zk - zr) * complex(0, -0.5)
		dst[k] = e + p.w[k]*o
	}
}

// Inverse computes the unnormalized inverse of a half-complex spectrum,
// writing a real sequence of length Len(). The imaginary parts of src[0]
// and, for even N, src[N/2] are ignored (they must be zero for a valid
// Hermitian spectrum). Inverse(Forward(x)) == N*x. It uses the plan's
// owned scratch; concurrent callers must use InverseScratch.
func (p *RealPlan) Inverse(dst []float64, src []complex128) {
	p.InverseScratch(dst, src, p.scratch)
}

// InverseScratch is Inverse with caller-provided scratch of length
// ScratchLen(); it performs no allocations and is safe for concurrent use
// of one plan with distinct dst/scratch.
func (p *RealPlan) InverseScratch(dst []float64, src, scratch []complex128) {
	if len(dst) < p.n || len(src) < p.nc {
		panic("fft: real inverse slice lengths")
	}
	if len(scratch) < p.ScratchLen() {
		panic("fft: real inverse scratch length")
	}
	if p.full != nil {
		buf, out := scratch[:p.n], scratch[p.n:2*p.n]
		copy(buf, src[:p.nc])
		buf[0] = complex(real(src[0]), 0)
		for k := p.nc; k < p.n; k++ {
			buf[k] = conj(buf[p.n-k])
		}
		p.full.Inverse(out, buf)
		for j := 0; j < p.n; j++ {
			dst[j] = real(out[j])
		}
		return
	}
	h := p.n / 2
	z, zt := scratch[:h], scratch[h:2*h]
	x0 := complex(real(src[0]), 0)
	xh := complex(real(src[h]), 0)
	for k := 0; k < h; k++ {
		var xk, xrk complex128
		switch k {
		case 0:
			xk, xrk = x0, xh
		default:
			xk, xrk = src[k], conj(src[h-k])
		}
		e := (xk + xrk) * complex(0.5, 0)
		wo := (xk - xrk) * complex(0.5, 0)
		// O[k] = w^-k * wo; w^-k = conj(w^k).
		o := conj(p.w[k]) * wo
		z[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(zt, z)
	for j := 0; j < h; j++ {
		dst[2*j] = 2 * real(zt[j])
		dst[2*j+1] = 2 * imag(zt[j])
	}
}

// expTw returns exp(sign * 2*pi*i * k / n).
func expTw(sign, k, n int) complex128 {
	theta := 2 * math.Pi * float64(k) / float64(n)
	if sign < 0 {
		theta = -theta
	}
	s, c := math.Sincos(theta)
	return complex(c, s)
}
