// Package fft provides the one-dimensional fast Fourier transforms that the
// channel DNS is built on: complex mixed-radix transforms (radix 2, 3, 5 with
// a Bluestein fallback for other factors), real-to-complex transforms in the
// half-complex storage scheme, batched strided interfaces, and the fused
// 3/2-rule pad/truncate transforms used for dealiasing.
//
// Sign and normalization conventions follow FFTW: Forward computes
//
//	X[k] = sum_j x[j] * exp(-2*pi*i*j*k/N)
//
// and Inverse computes
//
//	x[j] = sum_k X[k] * exp(+2*pi*i*j*k/N)
//
// Neither is normalized; applying Forward then Inverse multiplies the input
// by N. Callers (the spectral solver) fold the 1/N into the physical-to-
// spectral direction.
package fft

import (
	"fmt"
	"math"
)

// Plan holds the precomputed state for complex transforms of a fixed length.
// A Plan is safe for concurrent use by multiple goroutines as long as each
// call uses distinct destination and scratch storage; the methods on Plan
// allocate per-call scratch internally only for Bluestein lengths.
type Plan struct {
	n       int
	factors []int        // radix of each Cooley-Tukey stage
	twF     []complex128 // forward twiddles w_N^j = exp(-2*pi*i*j/N)
	twI     []complex128 // inverse twiddles
	blue    *bluestein   // non-nil when n has factors other than 2, 3, 5
}

// NewPlan creates a transform plan for complex sequences of length n.
// n must be positive.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid transform length %d", n))
	}
	p := &Plan{n: n}
	p.factors, p.blue = factorize(n)
	if p.blue == nil {
		p.twF = make([]complex128, n)
		p.twI = make([]complex128, n)
		for j := 0; j < n; j++ {
			s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
			p.twF[j] = complex(c, s)
			p.twI[j] = complex(c, -s)
		}
	}
	return p
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// factorize splits n into radix-2/3/5 stages. If n contains any other prime
// factor the whole transform is delegated to Bluestein's algorithm and the
// returned factor list is nil.
func factorize(n int) ([]int, *bluestein) {
	m := n
	var f []int
	for _, r := range []int{5, 3, 2} {
		for m%r == 0 {
			f = append(f, r)
			m /= r
		}
	}
	if m != 1 {
		return nil, newBluestein(n)
	}
	return f, nil
}

// Forward computes the unnormalized forward DFT of src into dst.
// dst and src must both have length Len() and may be the same slice.
func (p *Plan) Forward(dst, src []complex128) { p.transform(dst, src, +1) }

// Inverse computes the unnormalized inverse DFT of src into dst.
// dst and src must both have length Len() and may be the same slice.
func (p *Plan) Inverse(dst, src []complex128) { p.transform(dst, src, -1) }

func (p *Plan) transform(dst, src []complex128, sign int) {
	if len(dst) < p.n || len(src) < p.n {
		panic("fft: slice shorter than plan length")
	}
	if p.blue != nil {
		p.blue.transform(dst[:p.n], src[:p.n], sign)
		return
	}
	tw := p.twF
	if sign < 0 {
		tw = p.twI
	}
	if &dst[0] == &src[0] {
		tmp := make([]complex128, p.n)
		copy(tmp, src[:p.n])
		src = tmp
	}
	p.rec(dst, src, p.n, 1, 0, tw)
}

// rec performs a depth-first decimation-in-time Cooley-Tukey step for a
// sub-transform of length n reading src with the given stride. level indexes
// into the factor list. Twiddles for length n are tw[j*(N/n)].
func (p *Plan) rec(dst, src []complex128, n, stride, level int, tw []complex128) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	r := p.factors[level]
	m := n / r
	for q := 0; q < r; q++ {
		p.rec(dst[q*m:], src[q*stride:], m, stride*r, level+1, tw)
	}
	// Combine the r sub-transforms. For each k in [0,m):
	//   z_q = w_N^(q*k*(N/n)) * Y_q[k]
	//   dst[k + s*m] = sum_q z_q * w_r^(q*s)
	step := p.n / n
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := tw[k*step] * dst[m+k]
			dst[k] = a + b
			dst[m+k] = a - b
		}
	case 3:
		// w_r^1 for radix 3 in the same sign convention as tw.
		w1 := tw[p.n/3]
		w2 := tw[2*p.n/3]
		for k := 0; k < m; k++ {
			a := dst[k]
			b := tw[k*step] * dst[m+k]
			c := tw[(2*k*step)%p.n] * dst[2*m+k]
			dst[k] = a + b + c
			dst[m+k] = a + w1*b + w2*c
			dst[2*m+k] = a + w2*b + w1*c
		}
	default:
		var z [5]complex128
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				z[q] = tw[(q*k*step)%p.n] * dst[q*m+k]
			}
			for s := 0; s < r; s++ {
				sum := z[0]
				for q := 1; q < r; q++ {
					sum += z[q] * tw[(q*s*(p.n/r))%p.n]
				}
				dst[s*m+k] = sum
			}
		}
	}
}

// Scale multiplies every element of x by s. It is a convenience for applying
// the 1/N normalization after a forward transform.
func Scale(x []complex128, s float64) {
	cs := complex(s, 0)
	for i := range x {
		x[i] *= cs
	}
}

// ForwardMany applies the forward transform to howmany contiguous lines of
// length Len() stored back to back in src, writing to dst. dst and src may
// alias element-for-element.
func (p *Plan) ForwardMany(dst, src []complex128, howmany int) {
	p.many(dst, src, howmany, +1)
}

// InverseMany applies the inverse transform to howmany contiguous lines.
func (p *Plan) InverseMany(dst, src []complex128, howmany int) {
	p.many(dst, src, howmany, -1)
}

func (p *Plan) many(dst, src []complex128, howmany, sign int) {
	if len(dst) < howmany*p.n || len(src) < howmany*p.n {
		panic("fft: batch slices shorter than howmany*Len()")
	}
	for i := 0; i < howmany; i++ {
		p.transform(dst[i*p.n:(i+1)*p.n], src[i*p.n:(i+1)*p.n], sign)
	}
}
