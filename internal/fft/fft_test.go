package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(N^2) reference transform.
func naiveDFT(src []complex128, sign int) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			theta := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			if sign > 0 {
				theta = -theta
			}
			sum += src[j] * cmplx.Exp(complex(0, theta))
		}
		dst[k] = sum
	}
	return dst
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErrC(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 27, 30, 32, 36, 48, 60, 64, 96, 100, 120, 128} {
		p := NewPlan(n)
		x := randComplex(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x, +1)
		if e := maxErrC(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: forward max error %g", n, e)
		}
		p.Inverse(got, x)
		want = naiveDFT(x, -1)
		if e := maxErrC(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse max error %g", n, e)
		}
	}
}

func TestBluesteinSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{7, 11, 13, 14, 17, 21, 22, 23, 49, 97, 101} {
		p := NewPlan(n)
		if p.blue == nil {
			t.Fatalf("n=%d should use Bluestein", n)
		}
		x := randComplex(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x, +1)
		if e := maxErrC(got, want); e > 1e-8*float64(n) {
			t.Errorf("bluestein n=%d: forward max error %g", n, e)
		}
		p.Inverse(got, x)
		want = naiveDFT(x, -1)
		if e := maxErrC(got, want); e > 1e-8*float64(n) {
			t.Errorf("bluestein n=%d: inverse max error %g", n, e)
		}
	}
}

func TestRoundTripScalesByN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 6, 18, 32, 45, 7, 31} {
		p := NewPlan(n)
		x := randComplex(rng, n)
		y := make([]complex128, n)
		p.Forward(y, x)
		z := make([]complex128, n)
		p.Inverse(z, y)
		for i := range z {
			if d := cmplx.Abs(z[i] - complex(float64(n), 0)*x[i]); d > 1e-8*float64(n) {
				t.Fatalf("n=%d roundtrip mismatch at %d: %g", n, i, d)
			}
		}
	}
}

func TestInPlaceTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 48
	p := NewPlan(n)
	x := randComplex(rng, n)
	want := make([]complex128, n)
	p.Forward(want, x)
	p.Forward(x, x) // in place
	if e := maxErrC(x, want); e > 1e-10*float64(n) {
		t.Errorf("in-place forward differs: %g", e)
	}
}

func TestLinearityProperty(t *testing.T) {
	p := NewPlan(24)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, 24)
		y := randComplex(r, 24)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		lhsIn := make([]complex128, 24)
		for i := range lhsIn {
			lhsIn[i] = a*x[i] + y[i]
		}
		lhs := make([]complex128, 24)
		p.Forward(lhs, lhsIn)
		fx := make([]complex128, 24)
		fy := make([]complex128, 24)
		p.Forward(fx, x)
		p.Forward(fy, y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		p := NewPlan(n)
		x := randComplex(r, n)
		y := make([]complex128, n)
		p.Forward(y, x)
		var sx, sy float64
		for i := range x {
			sx += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			sy += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		return math.Abs(sy-float64(n)*sx) <= 1e-7*(1+sy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRealForwardMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 6, 8, 12, 16, 24, 48, 64, 96, 5, 9, 7, 15} {
		rp := NewRealPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]complex128, rp.NumModes())
		rp.Forward(got, x)
		cx := make([]complex128, n)
		for i := range x {
			cx[i] = complex(x[i], 0)
		}
		want := naiveDFT(cx, +1)
		for k := 0; k < rp.NumModes(); k++ {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Errorf("n=%d k=%d: real forward %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 10, 12, 36, 48, 3, 9, 27} {
		rp := NewRealPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := make([]complex128, rp.NumModes())
		rp.Forward(spec, x)
		back := make([]float64, n)
		rp.Inverse(back, spec)
		for i := range x {
			if math.Abs(back[i]-float64(n)*x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d real roundtrip mismatch at %d: got %g want %g", n, i, back[i], float64(n)*x[i])
			}
		}
	}
}

func TestRealHermitianSpectrum(t *testing.T) {
	// The half-complex storage must equal the first half of the full DFT;
	// DC and Nyquist must be (numerically) real.
	rng := rand.New(rand.NewSource(8))
	n := 32
	rp := NewRealPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := make([]complex128, rp.NumModes())
	rp.Forward(spec, x)
	if math.Abs(imag(spec[0])) > 1e-10 || math.Abs(imag(spec[n/2])) > 1e-10 {
		t.Errorf("DC/Nyquist not real: %v %v", spec[0], spec[n/2])
	}
}

func TestPadTruncateComplexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m := 16, 24
	pc := NewPaddedComplex(n, m)
	spec := randComplex(rng, n)
	spec[n/2] = 0 // Nyquist not carried
	phys := make([]complex128, m)
	pc.InversePadded(phys, spec)
	back := make([]complex128, n)
	pc.ForwardTruncated(back, phys)
	if e := maxErrC(back, spec); e > 1e-10 {
		t.Errorf("padded complex roundtrip error %g", e)
	}
}

func TestPadTruncateRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	nk, m := 8, 24 // Nx = 16 modes one-sided -> 8 kept (Nyquist dropped), grid 24
	pr := NewPaddedReal(nk, m)
	spec := randComplex(rng, nk)
	spec[0] = complex(real(spec[0]), 0) // DC of a real field is real
	phys := make([]float64, m)
	pr.InversePadded(phys, spec)
	back := make([]complex128, nk)
	pr.ForwardTruncated(back, phys)
	if e := maxErrC(back, spec); e > 1e-10 {
		t.Errorf("padded real roundtrip error %g", e)
	}
}

func TestPaddedProductDealiases(t *testing.T) {
	// Multiplying two single modes k1 and k2 on the 3/2 grid must produce
	// exactly the k1+k2 mode with no aliasing into resolved modes.
	n := 16 // logical complex spectrum length
	m := 24 // 3/2 grid
	k1, k2 := 5, 6
	pc := NewPaddedComplex(n, m)
	a := make([]complex128, n)
	b := make([]complex128, n)
	a[k1] = 1
	b[k2] = 1
	pa := make([]complex128, m)
	pb := make([]complex128, m)
	pc.InversePadded(pa, a)
	pc.InversePadded(pb, b)
	prod := make([]complex128, m)
	for i := range prod {
		prod[i] = pa[i] * pb[i]
	}
	out := make([]complex128, n)
	pc.ForwardTruncated(out, prod)
	// k1+k2 = 11 > n/2-1 = 7, so the product is entirely unresolved: with
	// proper dealiasing every resolved coefficient must vanish.
	for k := range out {
		if cmplx.Abs(out[k]) > 1e-12 {
			t.Errorf("aliased energy at k=%d: %v", k, out[k])
		}
	}
	// And a resolved product must land exactly on k1+k2.
	b2 := make([]complex128, n)
	b2[2] = 1
	pc.InversePadded(pb, b2)
	for i := range prod {
		prod[i] = pa[i] * pb[i]
	}
	pc.ForwardTruncated(out, prod)
	for k := range out {
		want := complex128(0)
		if k == k1+2 {
			want = 1
		}
		if cmplx.Abs(out[k]-want) > 1e-12 {
			t.Errorf("product mode k=%d: got %v want %v", k, out[k], want)
		}
	}
}

func TestForwardManyMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, hm := 20, 7
	p := NewPlan(n)
	src := randComplex(rng, n*hm)
	dst := make([]complex128, n*hm)
	p.ForwardMany(dst, src, hm)
	for i := 0; i < hm; i++ {
		want := make([]complex128, n)
		p.Forward(want, src[i*n:(i+1)*n])
		if e := maxErrC(dst[i*n:(i+1)*n], want); e > 1e-12 {
			t.Errorf("batch line %d differs: %g", i, e)
		}
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1, 2i, 3 + 4i}
	Scale(x, 0.5)
	want := []complex128{0.5, 1i, 1.5 + 2i}
	for i := range x {
		if x[i] != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func BenchmarkForward1024(b *testing.B) {
	p := NewPlan(1024)
	x := randComplex(rand.New(rand.NewSource(1)), 1024)
	y := make([]complex128, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}

func BenchmarkRealForward1536(b *testing.B) {
	p := NewRealPlan(1536)
	x := make([]float64, 1536)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]complex128, p.NumModes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}
