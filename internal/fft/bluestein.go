package fft

import "math"

// bluestein implements the chirp-z transform, turning a DFT of arbitrary
// length n into a cyclic convolution of length m >= 2n-1 where m is a power
// of two. It is the fallback for lengths with prime factors other than
// 2, 3 and 5; the production grid sizes in the DNS (powers of two times the
// 3/2-rule factor of three) never hit this path, but the library stays
// correct for any length.
type bluestein struct {
	n, m  int
	sub   *Plan        // power-of-two plan of length m
	chirp []complex128 // w^(k^2/2) with forward sign, length n
	// bF is the forward transform of the padded conjugate chirp, one per
	// transform direction.
	bF, bI []complex128
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	b := &bluestein{n: n, m: m, sub: NewPlan(m)}
	b.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Angle computed modulo 2n to avoid precision loss for large k^2.
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		b.chirp[k] = complex(c, s)
	}
	b.bF = b.kernel(+1)
	b.bI = b.kernel(-1)
	return b
}

// kernel builds the transformed convolution kernel for the given sign.
func (b *bluestein) kernel(sign int) []complex128 {
	v := make([]complex128, b.m)
	for k := 0; k < b.n; k++ {
		c := b.chirp[k]
		if sign < 0 {
			c = conj(c)
		}
		// Kernel uses the conjugate chirp relative to the data pre-twist.
		c = conj(c)
		v[k] = c
		if k > 0 {
			v[b.m-k] = c
		}
	}
	out := make([]complex128, b.m)
	b.sub.Forward(out, v)
	return out
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func (b *bluestein) transform(dst, src []complex128, sign int) {
	a := make([]complex128, b.m)
	for k := 0; k < b.n; k++ {
		c := b.chirp[k]
		if sign < 0 {
			c = conj(c)
		}
		a[k] = src[k] * c
	}
	fa := make([]complex128, b.m)
	b.sub.Forward(fa, a)
	kern := b.bF
	if sign < 0 {
		kern = b.bI
	}
	for i := range fa {
		fa[i] *= kern[i]
	}
	b.sub.Inverse(a, fa)
	inv := 1 / float64(b.m)
	for k := 0; k < b.n; k++ {
		c := b.chirp[k]
		if sign < 0 {
			c = conj(c)
		}
		dst[k] = a[k] * c * complex(inv, 0)
	}
}
