package schedule

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPhaseRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := PhaseFromString(p.String())
		if !ok || got != p {
			t.Errorf("phase %d: round trip via %q failed", p, p.String())
		}
	}
	if _, ok := PhaseFromString("nope"); ok {
		t.Error("unknown phase name accepted")
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase should stringify to unknown")
	}
}

func TestTimestepStructure(t *testing.T) {
	s := Timestep(TimestepParams{Nx: 64, Ny: 65, Nz: 64, PA: 4, PB: 2, Products: 5, PackPasses: 4})
	// Per substep: 4 transposes + 4 reorders + 4 FFT stages + 1 solve.
	if want := 3 * 13; len(s.Ops) != want {
		t.Fatalf("op count %d, want %d", len(s.Ops), want)
	}
	if s.NKx != 32 || s.Ranks != 8 {
		t.Fatalf("identity: nkx=%d ranks=%d", s.NKx, s.Ranks)
	}
	calls := s.CommCallsByDir()
	for _, dir := range []string{DirYtoZ, DirZtoX, DirXtoZ, DirZtoY} {
		if calls[dir] != 3 {
			t.Errorf("%s executed %d times, want 3", dir, calls[dir])
		}
	}
	// Every op carries a canonical phase and a known kind.
	for i, op := range s.Ops {
		if _, ok := PhaseFromString(op.Phase); !ok {
			t.Errorf("op %d: non-canonical phase %q", i, op.Phase)
		}
		switch op.Kind {
		case OpTranspose, OpReorder, OpFFT, OpSolve, OpCollective:
		default:
			t.Errorf("op %d: unknown kind %q", i, op.Kind)
		}
	}
	// Wire bytes: spectral image 16*nkx*nz*ny/ranks, padded 1.5x; per
	// substep 3 fields out + 5 back on each communicator.
	field := 16.0 * 32 * 64 * 65 / 8
	wantB := 3 * (3 + 5) * field // YtoZ + ZtoY per substep
	wantA := wantB * 1.5
	bytesDir := s.CommBytesPerRank()
	if got := bytesDir[DirYtoZ] + bytesDir[DirZtoY]; math.Abs(got-wantB) > 1e-6*wantB {
		t.Errorf("CommB bytes/rank %g, want %g", got, wantB)
	}
	if got := bytesDir[DirZtoX] + bytesDir[DirXtoZ]; math.Abs(got-wantA) > 1e-6*wantA {
		t.Errorf("CommA bytes/rank %g, want %g", got, wantA)
	}
	// Flop total matches the closed form the model has always used.
	mz, mx := 96, 96
	linesZ, linesX := 32.0*65, 96.0*65
	want := 3 * (8*linesZ*FFTFlops(mz, false) + 8*linesX*FFTFlops(mx, true) +
		32.0*64*65*NSFlopsPerPoint)
	if got := s.TotalFlops(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("total flops %g, want %g", got, want)
	}
}

func TestTimestepProductsVaryForwardTraffic(t *testing.T) {
	p5 := Timestep(TimestepParams{Nx: 32, Ny: 33, Nz: 32, PA: 1, PB: 1, Products: 5, PackPasses: 4})
	p6 := Timestep(TimestepParams{Nx: 32, Ny: 33, Nz: 32, PA: 1, PB: 1, Products: 6, PackPasses: 4})
	b5, b6 := p5.CommBytesPerRank(), p6.CommBytesPerRank()
	if b6[DirXtoZ] <= b5[DirXtoZ] || b6[DirZtoY] <= b5[DirZtoY] {
		t.Error("6-product pipeline should move more forward-path bytes")
	}
	if b6[DirYtoZ] != b5[DirYtoZ] {
		t.Error("outbound traffic must not depend on product count")
	}
}

func TestTransposeCycleStructure(t *testing.T) {
	s := TransposeCycle(TransposeCycleParams{Nx: 2048, Ny: 1024, Nz: 2048, PA: 512, PB: 16, Fields: 3})
	if len(s.Ops) != 4 {
		t.Fatalf("op count %d, want 4 (no reorders at PackPasses=0)", len(s.Ops))
	}
	for _, op := range s.Ops {
		if op.Kind != OpTranspose || op.Phase != PhaseTransposeAB.String() {
			t.Fatalf("unexpected op %+v", op)
		}
		if op.Messages != op.CommSize-1 {
			t.Fatalf("%s: messages %d, want comm_size-1=%d", op.Dir, op.Messages, op.CommSize-1)
		}
	}
	if s.TotalFlops() != 0 {
		t.Error("transpose cycle has no flops")
	}
	withPack := TransposeCycle(TransposeCycleParams{Nx: 64, Ny: 32, Nz: 32, NKx: 32,
		PA: 4, PB: 4, Fields: 3, PackPasses: 4})
	if len(withPack.Ops) != 8 {
		t.Fatalf("live cycle op count %d, want 8", len(withPack.Ops))
	}
	if withPack.NKx != 32 {
		t.Fatalf("explicit NKx not honoured: %d", withPack.NKx)
	}
}

func TestFFTCycleKinds(t *testing.T) {
	base := FFTCycleParams{Nx: 2048, Ny: 1024, Nz: 2048, PA: 128, PB: 16, Fields: 1}
	cus, p3d := base, base
	cus.Kind, p3d.Kind = FFTCustom, FFTP3DFFT
	sc, sp := FFTCycle(cus), FFTCycle(p3d)
	if sc.NKx != 1024 || sp.NKx != 1025 {
		t.Fatalf("nkx custom=%d p3dfft=%d", sc.NKx, sp.NKx)
	}
	if !(sp.ResidentBytesPerRank > 2*sc.ResidentBytesPerRank) {
		t.Error("P3DFFT resident footprint should be >2x the custom kernel's")
	}
	// 4 transposes + 4 reorders + 4 FFT stages.
	if len(sc.Ops) != 12 || len(sp.Ops) != 12 {
		t.Fatalf("op counts %d/%d, want 12", len(sc.Ops), len(sp.Ops))
	}
	var passC, passP float64
	for i := range sc.Ops {
		passC += sc.Ops[i].Passes
		passP += sp.Ops[i].Passes
	}
	if passC != 16 || passP != 24 {
		t.Errorf("total pack passes custom=%g p3dfft=%g, want 16/24", passC, passP)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Timestep(TimestepParams{Nx: 32, Ny: 33, Nz: 32, PA: 2, PB: 2, Products: 6, PackPasses: 4})
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(s.Ops) || got.Name != s.Name || got.TotalFlops() != s.TotalFlops() {
		t.Fatal("JSON round trip lost information")
	}
}

func TestWriteHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	Timestep(TimestepParams{Nx: 32, Ny: 33, Nz: 32, PA: 2, PB: 2, Products: 6, PackPasses: 4}).Write(&buf)
	out := buf.String()
	for _, want := range []string{"schedule \"timestep\"", DirYtoZ, "viscous_solve", "totals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
