package schedule

import (
	"fmt"
	"io"
)

// Write prints the op list in a fixed-width human-readable layout (the
// bench tools' -schedule output): one line per op with its phase, shape and
// per-op byte/flop figures, then the schedule totals.
func (s *Schedule) Write(w io.Writer) {
	fmt.Fprintf(w, "schedule %q: %dx%dx%d grid (nkx=%d), %d ranks (CommA=%d x CommB=%d)\n",
		s.Name, s.Nx, s.Ny, s.Nz, s.NKx, s.Ranks, s.PA, s.PB)
	if s.ResidentBytesPerRank > 0 {
		fmt.Fprintf(w, "resident bytes/rank: %.4g\n", s.ResidentBytesPerRank)
	}
	for i, op := range s.Ops {
		fmt.Fprintf(w, "%3d  %-10s %-13s %s\n", i, op.Kind, op.Phase, opDetail(op))
	}
	var bytes float64
	var msgs int
	for _, op := range s.Ops {
		if op.Kind == OpTranspose {
			bytes += op.BytesPerRank
			msgs += op.Messages
		}
	}
	fmt.Fprintf(w, "totals: %d ops, %.4g wire bytes/rank, %d messages/rank, %.4g flops\n",
		len(s.Ops), bytes, msgs, s.TotalFlops())
}

// opDetail renders the kind-specific shape of one op.
func opDetail(op Op) string {
	sub := ""
	if op.Sub > 0 {
		sub = fmt.Sprintf(" sub=%d", op.Sub)
	}
	switch op.Kind {
	case OpTranspose:
		return fmt.Sprintf("%-4s Comm%s(%d) fields=%d bytes/rank=%.4g msgs=%d%s",
			op.Dir, op.Comm, op.CommSize, op.Fields, op.BytesPerRank, op.Messages, sub)
	case OpReorder:
		return fmt.Sprintf("%-4s pack+unpack passes=%g bytes/rank=%.4g%s",
			op.Dir, op.Passes, op.BytesPerRank, sub)
	case OpFFT:
		dir := "forward"
		if op.Inverse {
			dir = "inverse"
		}
		kind := "complex"
		if op.Real {
			kind = "real"
		}
		pad := ""
		if op.Padded {
			pad = " padded"
		}
		return fmt.Sprintf("%s-%s %s%s fields=%d lines=%d points=%d flops=%.4g%s",
			op.Axis, dir, kind, pad, op.Fields, op.Lines, op.Points, op.Flops, sub)
	case OpSolve:
		return fmt.Sprintf("systems=%d bandwidth=%d flops=%.4g%s",
			op.Systems, op.Bandwidth, op.Flops, sub)
	case OpCollective:
		return fmt.Sprintf("bytes/rank=%.4g%s", op.BytesPerRank, sub)
	}
	return ""
}
