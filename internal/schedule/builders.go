package schedule

// Builders: each constructs the op list of one paper benchmark program from
// the same quantities the live code is configured with (grid extents,
// process grid, kernel kind). internal/core, internal/pencil and
// internal/parfft expose thin wrappers that call these with their own
// fields, so the schedule is derived from the executing objects rather than
// re-encoded by hand.

// solveBandwidth is the band half-width of the wall-normal solves: the
// B-spline collocation operators of order 8 couple 8 neighbouring
// coefficients on each side of the diagonal.
const solveBandwidth = 8

// TimestepParams describes one RK3 timestep program.
type TimestepParams struct {
	Nx, Ny, Nz int
	// PA, PB is the CommA x CommB process grid (ranks = PA*PB).
	PA, PB int
	// Products is the number of fields carried back through the forward
	// path: 5 in the paper's accounting (uu, uv, uw, vv+ww terms folded),
	// 6 in this repo's live divergence-form pipeline (uu,uv,uw,vv,vw,ww).
	Products int
	// PackPasses is the number of on-node memory passes for pack+unpack
	// around each transpose (4: pack read+write, unpack read+write).
	// Zero suppresses the Reorder ops entirely.
	PackPasses float64
	// ChunksA, ChunksB are the pipeline depths of the overlapped (chunked)
	// exchange on the CommA and CommB directions — pencil.Decomp
	// OverlapChunks() when the live run pipelines, 0 when it runs the
	// one-shot serial exchange. Both > 0 switches the program to its
	// overlapped form: the YtoZ, ZtoX and XtoZ transposes fuse with the FFT
	// stage each hides (OpOverlap), the final ZtoY stays a one-shot
	// transpose (nothing follows to hide it under).
	ChunksA, ChunksB int
}

// Timestep builds one full RK3 timestep: three substeps, each running the
// §2.3 pipeline — y->z transpose, inverse z FFT onto the 3/2 grid, z->x
// transpose, the fused x excursion (inverse transform, pointwise products,
// forward transform), x->z transpose, forward z FFT, z->y transpose, then
// the implicit banded advance.
func Timestep(p TimestepParams) *Schedule {
	ranks := p.PA * p.PB
	nkx := p.Nx / 2
	mx, mz := 3*p.Nx/2, 3*p.Nz/2
	fieldBytes := 16 * float64(nkx) * float64(p.Nz) * float64(p.Ny) / float64(ranks)
	padBytes := fieldBytes * 1.5
	linesZ := nkx * p.Ny
	linesX := mz * p.Ny

	s := &Schedule{
		Name: "timestep",
		Nx:   p.Nx, Ny: p.Ny, Nz: p.Nz, NKx: nkx,
		PA: p.PA, PB: p.PB, Ranks: ranks,
	}
	overlapped := p.ChunksA > 0 && p.ChunksB > 0
	for sub := 1; sub <= 3; sub++ {
		if overlapped {
			// Pipelined form: each forward-path transpose fuses with the FFT
			// stage consuming its chunks. The x excursion (inverse transform,
			// pointwise products, forward transform) runs entirely inside the
			// ZtoX consumer, so its two stages' flops ride one overlap op.
			s.overlap(sub, DirYtoZ, "B", p.PB, 3, fieldBytes*3, p.PackPasses, p.ChunksB, Op{
				Phase: PhaseFFTInverse.String(),
				Axis:  "z", Inverse: true, Padded: true,
				Lines: linesZ, Points: mz,
				Flops: 3 * float64(linesZ) * FFTFlops(mz, false),
			})
			s.overlap(sub, DirZtoX, "A", p.PA, 3, padBytes*3, p.PackPasses, p.ChunksA, Op{
				Phase: PhaseNonlinear.String(),
				Axis:  "x", Inverse: true, Real: true, Padded: true,
				Lines: linesX, Points: mx,
				Flops: float64(3+p.Products) * float64(linesX) * FFTFlops(mx, true),
			})
			s.overlap(sub, DirXtoZ, "A", p.PA, p.Products, padBytes*float64(p.Products), p.PackPasses, p.ChunksA, Op{
				Phase: PhaseFFTForward.String(),
				Axis:  "z", Padded: true,
				Lines: linesZ, Points: mz,
				Flops: float64(p.Products) * float64(linesZ) * FFTFlops(mz, false),
			})
		} else {
			s.transpose(sub, DirYtoZ, "B", p.PB, 3, fieldBytes*3, p.PackPasses, 0)
			s.Ops = append(s.Ops, Op{
				Kind: OpFFT, Phase: PhaseFFTInverse.String(), Sub: sub,
				Axis: "z", Inverse: true, Padded: true,
				Fields: 3, Lines: linesZ, Points: mz,
				Flops: 3 * float64(linesZ) * FFTFlops(mz, false),
			})
			s.transpose(sub, DirZtoX, "A", p.PA, 3, padBytes*3, p.PackPasses, 0)
			s.Ops = append(s.Ops, Op{
				Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
				Axis: "x", Inverse: true, Real: true, Padded: true,
				Fields: 3, Lines: linesX, Points: mx,
				Flops: 3 * float64(linesX) * FFTFlops(mx, true),
			})
			s.Ops = append(s.Ops, Op{
				Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
				Axis: "x", Real: true, Padded: true,
				Fields: p.Products, Lines: linesX, Points: mx,
				Flops: float64(p.Products) * float64(linesX) * FFTFlops(mx, true),
			})
			s.transpose(sub, DirXtoZ, "A", p.PA, p.Products, padBytes*float64(p.Products), p.PackPasses, 0)
			s.Ops = append(s.Ops, Op{
				Kind: OpFFT, Phase: PhaseFFTForward.String(), Sub: sub,
				Axis: "z", Padded: true,
				Fields: p.Products, Lines: linesZ, Points: mz,
				Flops: float64(p.Products) * float64(linesZ) * FFTFlops(mz, false),
			})
		}
		// The return leg has no following transform to hide under: it stays a
		// one-shot exchange even in the overlapped program.
		s.transpose(sub, DirZtoY, "B", p.PB, p.Products, fieldBytes*float64(p.Products), p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpSolve, Phase: PhaseViscousSolve.String(), Sub: sub,
			Systems: nkx * p.Nz, Bandwidth: solveBandwidth,
			Flops: float64(nkx) * float64(p.Nz) * float64(p.Ny) * NSFlopsPerPoint,
		})
	}
	return s
}

// IsoSolveFlopsPerPoint prices the isotropic workload's per-point spectral
// update: nonlinear-term assembly from the six product spectra, the
// divergence-free projection and the diagonal IMEX advance for three
// velocity components — a few tens of flops, nothing like the banded
// channel solve.
const IsoSolveFlopsPerPoint = 60.0

// ScalarSolveFlopsPerPoint prices the passive scalar's per-point implicit
// work: one banded solve plus the divergence assembly of the scalar flux —
// roughly a quarter of the three-component Navier-Stokes advance.
const ScalarSolveFlopsPerPoint = 500.0

// IsotropicTimestep builds one RK3 timestep of the triply-periodic
// isotropic-turbulence workload: per substep, an inverse y FFT brings the
// three velocity fields to y-physical space, the channel pipeline's four
// transposes and padded z/x transforms evaluate the six dealiased products,
// a forward y FFT returns the products to fully spectral space, and a
// diagonal (bandwidth-0) per-mode projection + IMEX advance replaces the
// channel's banded wall-normal solve. The transposes move exactly the
// channel's images, so the pencil layer needs no new machinery.
func IsotropicTimestep(p TimestepParams) *Schedule {
	ranks := p.PA * p.PB
	nkx := p.Nx / 2
	mx, mz := 3*p.Nx/2, 3*p.Nz/2
	fieldBytes := 16 * float64(nkx) * float64(p.Nz) * float64(p.Ny) / float64(ranks)
	padBytes := fieldBytes * 1.5
	linesY := nkx * p.Nz
	linesZ := nkx * p.Ny
	linesX := mz * p.Ny

	s := &Schedule{
		Name: "isotropic_timestep",
		Nx:   p.Nx, Ny: p.Ny, Nz: p.Nz, NKx: nkx,
		PA: p.PA, PB: p.PB, Ranks: ranks,
	}
	for sub := 1; sub <= 3; sub++ {
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTInverse.String(), Sub: sub,
			Axis: "y", Inverse: true,
			Fields: 3, Lines: linesY, Points: p.Ny,
			Flops: 3 * float64(linesY) * FFTFlops(p.Ny, false),
		})
		s.transpose(sub, DirYtoZ, "B", p.PB, 3, fieldBytes*3, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTInverse.String(), Sub: sub,
			Axis: "z", Inverse: true, Padded: true,
			Fields: 3, Lines: linesZ, Points: mz,
			Flops: 3 * float64(linesZ) * FFTFlops(mz, false),
		})
		s.transpose(sub, DirZtoX, "A", p.PA, 3, padBytes*3, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
			Axis: "x", Inverse: true, Real: true, Padded: true,
			Fields: 3, Lines: linesX, Points: mx,
			Flops: 3 * float64(linesX) * FFTFlops(mx, true),
		})
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
			Axis: "x", Real: true, Padded: true,
			Fields: p.Products, Lines: linesX, Points: mx,
			Flops: float64(p.Products) * float64(linesX) * FFTFlops(mx, true),
		})
		s.transpose(sub, DirXtoZ, "A", p.PA, p.Products, padBytes*float64(p.Products), p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTForward.String(), Sub: sub,
			Axis: "z", Padded: true,
			Fields: p.Products, Lines: linesZ, Points: mz,
			Flops: float64(p.Products) * float64(linesZ) * FFTFlops(mz, false),
		})
		s.transpose(sub, DirZtoY, "B", p.PB, p.Products, fieldBytes*float64(p.Products), p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTForward.String(), Sub: sub,
			Axis: "y",
			Fields: p.Products, Lines: linesY, Points: p.Ny,
			Flops: float64(p.Products) * float64(linesY) * FFTFlops(p.Ny, false),
		})
		s.Ops = append(s.Ops, Op{
			Kind: OpSolve, Phase: PhaseViscousSolve.String(), Sub: sub,
			Systems: nkx * p.Nz, Bandwidth: 0,
			Flops: float64(nkx) * float64(p.Nz) * float64(p.Ny) * IsoSolveFlopsPerPoint,
		})
	}
	return s
}

// ScalarTimestep builds one RK3 timestep of the passive-scalar workload:
// the full channel timestep, plus a second forward/backward excursion per
// substep that carries the three velocities and the scalar out to the
// dealiased physical grid (4 fields), forms the three flux products
// (u*th, v*th, w*th) and brings them back (3 fields), followed by the
// scalar's banded implicit solve. The same transpose directions appear
// twice per substep with different field counts, which is why the
// telemetry consistency check aggregates per direction rather than
// requiring uniform op shapes.
func ScalarTimestep(p TimestepParams) *Schedule {
	s := Timestep(p)
	s.Name = "scalar_timestep"
	ranks := p.PA * p.PB
	nkx := p.Nx / 2
	mx, mz := 3*p.Nx/2, 3*p.Nz/2
	fieldBytes := 16 * float64(nkx) * float64(p.Nz) * float64(p.Ny) / float64(ranks)
	padBytes := fieldBytes * 1.5
	linesZ := nkx * p.Ny
	linesX := mz * p.Ny
	for sub := 1; sub <= 3; sub++ {
		s.transpose(sub, DirYtoZ, "B", p.PB, 4, fieldBytes*4, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTInverse.String(), Sub: sub,
			Axis: "z", Inverse: true, Padded: true,
			Fields: 4, Lines: linesZ, Points: mz,
			Flops: 4 * float64(linesZ) * FFTFlops(mz, false),
		})
		s.transpose(sub, DirZtoX, "A", p.PA, 4, padBytes*4, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
			Axis: "x", Inverse: true, Real: true, Padded: true,
			Fields: 4, Lines: linesX, Points: mx,
			Flops: 4 * float64(linesX) * FFTFlops(mx, true),
		})
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseNonlinear.String(), Sub: sub,
			Axis: "x", Real: true, Padded: true,
			Fields: 3, Lines: linesX, Points: mx,
			Flops: 3 * float64(linesX) * FFTFlops(mx, true),
		})
		s.transpose(sub, DirXtoZ, "A", p.PA, 3, padBytes*3, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpFFT, Phase: PhaseFFTForward.String(), Sub: sub,
			Axis: "z", Padded: true,
			Fields: 3, Lines: linesZ, Points: mz,
			Flops: 3 * float64(linesZ) * FFTFlops(mz, false),
		})
		s.transpose(sub, DirZtoY, "B", p.PB, 3, fieldBytes*3, p.PackPasses, 0)
		s.Ops = append(s.Ops, Op{
			Kind: OpSolve, Phase: PhaseViscousSolve.String(), Sub: sub,
			Systems: nkx * p.Nz, Bandwidth: solveBandwidth,
			Flops: float64(nkx) * float64(p.Nz) * float64(p.Ny) * ScalarSolveFlopsPerPoint,
		})
	}
	return s
}

// TransposeCycleParams describes the Table 5 program: one full transpose
// cycle (y -> z -> x then back) on the spectral grid, no FFT work.
type TransposeCycleParams struct {
	Nx, Ny, Nz int
	// NKx is the one-sided x mode count actually transported; 0 means Nx/2
	// (Nyquist dropped, the channel code's layout).
	NKx    int
	PA, PB int
	Fields int
	// PackPasses as in TimestepParams. Table 5 times the wire exchange
	// only, so the paper rows use 0; the live cycle packs and unpacks.
	PackPasses float64
	// ChunksA, ChunksB as in TimestepParams. The cycle has no FFT stage to
	// hide under, so overlap here means chunked transposes (the pipelined
	// exchange with a nil consumer), not fused overlap ops.
	ChunksA, ChunksB int
}

// TransposeCycle builds the Table 5 benchmark: four global transposes on
// Fields fields, no transforms.
func TransposeCycle(p TransposeCycleParams) *Schedule {
	nkx := p.NKx
	if nkx == 0 {
		nkx = p.Nx / 2
	}
	ranks := p.PA * p.PB
	bytes := 16 * float64(nkx) * float64(p.Nz) * float64(p.Ny) / float64(ranks) * float64(p.Fields)
	s := &Schedule{
		Name: "transpose_cycle",
		Nx:   p.Nx, Ny: p.Ny, Nz: p.Nz, NKx: nkx,
		PA: p.PA, PB: p.PB, Ranks: ranks,
	}
	s.transpose(0, DirYtoZ, "B", p.PB, p.Fields, bytes, p.PackPasses, p.ChunksB)
	s.transpose(0, DirZtoX, "A", p.PA, p.Fields, bytes, p.PackPasses, p.ChunksA)
	s.transpose(0, DirXtoZ, "A", p.PA, p.Fields, bytes, p.PackPasses, p.ChunksA)
	s.transpose(0, DirZtoY, "B", p.PB, p.Fields, bytes, p.PackPasses, p.ChunksB)
	return s
}

// FFTKind selects the parallel FFT implementation of Table 6.
type FFTKind int

// Parallel FFT kernels compared in Table 6.
const (
	// FFTCustom is the paper's customized kernel: Nyquist dropped (Nx/2
	// one-sided modes), 4-pass pack/unpack, 1x communication scratch
	// (2.5x resident total).
	FFTCustom FFTKind = iota
	// FFTP3DFFT is the P3DFFT 2.5.1 baseline: Nyquist carried (Nx/2+1),
	// 6-pass reordering, 3x buffers (6x resident total).
	FFTP3DFFT
)

// NKx returns the one-sided x mode count the kind carries for an Nx grid.
func (k FFTKind) NKx(nx int) int {
	if k == FFTCustom {
		return nx / 2
	}
	return nx/2 + 1
}

// PackPasses returns the kind's on-node reorder passes per transpose.
func (k FFTKind) PackPasses() float64 {
	if k == FFTCustom {
		return 4
	}
	return 6
}

// ResidentFactor returns the kind's working-set multiple of one field.
func (k FFTKind) ResidentFactor() float64 {
	if k == FFTCustom {
		return 2.5
	}
	return 6
}

// FFTCycleParams describes the Table 6 program: one parallel-FFT round trip
// (four transposes, four FFT stages, no 3/2 padding, y untouched).
type FFTCycleParams struct {
	Nx, Ny, Nz int
	PA, PB     int
	Fields     int
	Kind       FFTKind
	// ChunksA, ChunksB as in TimestepParams: both > 0 emits the overlapped
	// program (legs 1-3 fused with their FFT stages, final ZtoY one-shot).
	ChunksA, ChunksB int
}

// FFTCycle builds the Table 6 benchmark for one kernel kind.
func FFTCycle(p FFTCycleParams) *Schedule {
	nkx := p.Kind.NKx(p.Nx)
	ranks := p.PA * p.PB
	fieldBytes := 16 * float64(nkx) * float64(p.Nz) * float64(p.Ny) / float64(ranks)
	bytes := fieldBytes * float64(p.Fields)
	passes := p.Kind.PackPasses()
	linesZ := nkx * p.Ny
	linesX := p.Nz * p.Ny
	s := &Schedule{
		Name: "fft_cycle",
		Nx:   p.Nx, Ny: p.Ny, Nz: p.Nz, NKx: nkx,
		PA: p.PA, PB: p.PB, Ranks: ranks,
		ResidentBytesPerRank: bytes * p.Kind.ResidentFactor(),
	}
	if p.ChunksA > 0 && p.ChunksB > 0 {
		s.overlap(0, DirYtoZ, "B", p.PB, p.Fields, bytes, passes, p.ChunksB, Op{
			Phase: PhaseFFTInverse.String(),
			Axis:  "z", Inverse: true,
			Lines: linesZ, Points: p.Nz,
			Flops: float64(p.Fields) * float64(linesZ) * FFTFlops(p.Nz, false),
		})
		// The fused x excursion (inverse then forward, one block in the live
		// kernel, timed under the forward-FFT phase) rides the ZtoX overlap.
		s.overlap(0, DirZtoX, "A", p.PA, p.Fields, bytes, passes, p.ChunksA, Op{
			Phase: PhaseFFTForward.String(),
			Axis:  "x", Inverse: true, Real: true,
			Lines: linesX, Points: p.Nx,
			Flops: 2 * float64(p.Fields) * float64(linesX) * FFTFlops(p.Nx, true),
		})
		s.overlap(0, DirXtoZ, "A", p.PA, p.Fields, bytes, passes, p.ChunksA, Op{
			Phase: PhaseFFTForward.String(),
			Axis:  "z",
			Lines: linesZ, Points: p.Nz,
			Flops: float64(p.Fields) * float64(linesZ) * FFTFlops(p.Nz, false),
		})
		s.transpose(0, DirZtoY, "B", p.PB, p.Fields, bytes, passes, 0)
		return s
	}
	s.transpose(0, DirYtoZ, "B", p.PB, p.Fields, bytes, passes, 0)
	s.Ops = append(s.Ops, Op{
		Kind: OpFFT, Phase: PhaseFFTInverse.String(),
		Axis: "z", Inverse: true,
		Fields: p.Fields, Lines: linesZ, Points: p.Nz,
		Flops: float64(p.Fields) * float64(linesZ) * FFTFlops(p.Nz, false),
	})
	s.transpose(0, DirZtoX, "A", p.PA, p.Fields, bytes, passes, 0)
	// The x excursion (inverse then forward, one fused block in the live
	// kernel) is timed under the forward-FFT phase by parfft.
	s.Ops = append(s.Ops, Op{
		Kind: OpFFT, Phase: PhaseFFTForward.String(),
		Axis: "x", Inverse: true, Real: true,
		Fields: p.Fields, Lines: linesX, Points: p.Nx,
		Flops: float64(p.Fields) * float64(linesX) * FFTFlops(p.Nx, true),
	})
	s.Ops = append(s.Ops, Op{
		Kind: OpFFT, Phase: PhaseFFTForward.String(),
		Axis: "x", Real: true,
		Fields: p.Fields, Lines: linesX, Points: p.Nx,
		Flops: float64(p.Fields) * float64(linesX) * FFTFlops(p.Nx, true),
	})
	s.transpose(0, DirXtoZ, "A", p.PA, p.Fields, bytes, passes, 0)
	s.Ops = append(s.Ops, Op{
		Kind: OpFFT, Phase: PhaseFFTForward.String(),
		Axis: "z",
		Fields: p.Fields, Lines: linesZ, Points: p.Nz,
		Flops: float64(p.Fields) * float64(linesZ) * FFTFlops(p.Nz, false),
	})
	s.transpose(0, DirZtoY, "B", p.PB, p.Fields, bytes, passes, 0)
	return s
}

// transpose appends one wire transpose (and, when passes > 0, its on-node
// pack/unpack reorder) to the schedule. chunks > 0 makes it a chunked
// pipelined exchange: Chunks per-peer messages instead of one.
func (s *Schedule) transpose(sub int, dir, comm string, commSize, fields int, bytesPerRank, passes float64, chunks int) {
	messages := commSize - 1
	if chunks > 0 {
		messages = chunks * (commSize - 1)
	}
	s.Ops = append(s.Ops, Op{
		Kind: OpTranspose, Phase: PhaseTransposeAB.String(), Sub: sub,
		Dir: dir, Comm: comm, CommSize: commSize, Fields: fields,
		BytesPerRank: bytesPerRank, Messages: messages, Chunks: chunks,
	})
	if passes > 0 {
		s.Ops = append(s.Ops, Op{
			Kind: OpReorder, Phase: PhaseTransposeAB.String(), Sub: sub,
			Dir: dir, CommSize: commSize, Fields: fields,
			BytesPerRank: bytesPerRank, Passes: passes,
		})
	}
}

// overlap appends one pipelined transpose fused with the FFT stage it hides
// (plus, when passes > 0, its reorder). fft supplies the hidden stage's
// Axis/Inverse/Real/Padded/Lines/Points/Flops and — through its Phase field
// — the FFTPhase the compute is attributed to; the transpose's exposed part
// stays on the transpose phase.
func (s *Schedule) overlap(sub int, dir, comm string, commSize, fields int, bytesPerRank, passes float64, chunks int, fft Op) {
	s.Ops = append(s.Ops, Op{
		Kind: OpOverlap, Phase: PhaseTransposeAB.String(), Sub: sub,
		Dir: dir, Comm: comm, CommSize: commSize, Fields: fields,
		BytesPerRank: bytesPerRank,
		Messages:     chunks * (commSize - 1),
		Chunks:       chunks,
		FFTPhase:     fft.Phase,
		Axis:         fft.Axis, Inverse: fft.Inverse, Real: fft.Real, Padded: fft.Padded,
		Lines: fft.Lines, Points: fft.Points,
		Flops: fft.Flops,
	})
	if passes > 0 {
		s.Ops = append(s.Ops, Op{
			Kind: OpReorder, Phase: PhaseTransposeAB.String(), Sub: sub,
			Dir: dir, CommSize: commSize, Fields: fields,
			BytesPerRank: bytesPerRank, Passes: passes,
		})
	}
}
