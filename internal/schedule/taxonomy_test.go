package schedule

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestTaxonomySingleDefinitionSite enforces the tentpole invariant: the
// canonical phase names exist as string literals ONLY in this package.
// Every other production file must reference them through the schedule (or
// telemetry alias) constants, so a rename here is a rename everywhere and
// no free-floating phase string can drift from the taxonomy the model
// predicts. Test files are exempt (they pin literal fixtures on purpose).
func TestTaxonomySingleDefinitionSite(t *testing.T) {
	root := repoRoot(t)
	canon := map[string]bool{}
	for _, n := range PhaseNames {
		canon[n] = true
	}
	for _, d := range []string{DirYtoZ, DirZtoY, DirZtoX, DirXtoZ} {
		canon[d] = true
	}

	selfDir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == ".bench-smoke" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if dir := filepath.Dir(path); dir == selfDir {
			return nil // the definition site itself
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if canon[s] {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s:%v: phase/direction name %q hardcoded; use the internal/schedule constants",
					rel, fset.Position(lit.Pos()).Line, s)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// repoRoot walks up from the package directory to the go.mod.
func repoRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}
