// Package schedule is the declarative IR of the paper's timestep: one RK3
// step (or a Table 5/6 sub-cycle) expressed as an ordered list of typed
// operations — global transposes, batched FFT stages, on-node reorders,
// banded Navier-Stokes solves, collectives. The same schedule is interpreted
// twice: the live solver executes it (internal/core, internal/parfft,
// internal/pencil emit exactly these operations in this order), and the
// machine model (internal/machine) walks it applying per-platform cost
// functions to reproduce Tables 5/6/9/10/11. Because both interpreters read
// one program, the modeled breakdown and the measured breakdown describe the
// same computation by construction.
//
// The package is also the single definition site of the phase taxonomy: the
// snake_case phase names that appear in telemetry reports, traces and model
// breakdowns are declared here and re-exported by internal/telemetry. It is
// a leaf package (stdlib only) so that telemetry, pencil, parfft, core,
// machine and the cmd tools can all import it without cycles.
package schedule

import "math"

// Phase partitions a timestep's wall clock the way the paper's Tables 5-11
// do. The live code opens telemetry regions around leaf operations labeled
// with these phases; every schedule op carries the phase its cost is
// attributed to, so model and measurement share one vocabulary.
type Phase uint8

// The phase taxonomy. README "Observability" maps each phase to the
// paper-table column it reproduces.
const (
	// PhaseNonlinear: physical-space work of §2.3 — the fused inverse-x /
	// pointwise-product / forward-x block plus the spectral right-hand-side
	// assembly. Paper column "N-S advance" (with ViscousSolve and Pressure).
	PhaseNonlinear Phase = iota
	// PhaseFFTForward: batched forward (physical -> spectral) z transforms
	// with 3/2-rule truncation. Paper column "FFT".
	PhaseFFTForward
	// PhaseFFTInverse: batched inverse (spectral -> physical) z transforms
	// with 3/2-rule padding. Paper column "FFT".
	PhaseFFTInverse
	// PhaseTransposeAB: the four global transposes (alltoallv on the CommA
	// and CommB sub-communicators, pack and unpack included, §4.3). Paper
	// column "Transpose".
	PhaseTransposeAB
	// PhaseViscousSolve: the implicit RK3 substep advance — per-wavenumber
	// banded solves for omega_y-hat and phi-hat plus the influence-matrix
	// correction (Eq. 3-4). Paper column "N-S advance".
	PhaseViscousSolve
	// PhasePressure: velocity recovery from (v, omega_y) through continuity
	// — the role the pressure solve plays in primitive-variable codes.
	// Paper column "N-S advance".
	PhasePressure
	// PhaseCollective: barriers, reductions, broadcasts and gathers outside
	// the transpose path (CFL reductions, statistics collectives).
	PhaseCollective
	// PhaseCheckpoint: checkpoint/restart I/O — shard encode + write +
	// fsync + rename and shard read + verify + decode (internal/ckpt).
	// Not part of the RK3 step proper, so it never appears in a schedule's
	// op list; it exists so restart traffic is first-class in reports.
	PhaseCheckpoint
	// NumPhases is the number of phases (array extent, not a phase).
	NumPhases
)

// PhaseNames holds the canonical snake_case report names, indexed by Phase.
var PhaseNames = [NumPhases]string{
	"nonlinear", "fft_forward", "fft_inverse", "transpose",
	"viscous_solve", "pressure", "collective", "checkpoint_io",
}

// String returns the snake_case phase name used in reports.
func (p Phase) String() string {
	if p < NumPhases {
		return PhaseNames[p]
	}
	return "unknown"
}

// PhaseFromString inverts String; ok is false for unknown names.
func PhaseFromString(s string) (Phase, bool) {
	for i, n := range PhaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// The four global transpose directions, named as the paper labels them.
// These are both the Op.Dir values and the telemetry comm-channel names.
const (
	DirYtoZ = "YtoZ" // y-pencils -> z-pencils (CommB)
	DirZtoY = "ZtoY" // z-pencils -> y-pencils (CommB)
	DirZtoX = "ZtoX" // z-pencils -> x-pencils (CommA)
	DirXtoZ = "XtoZ" // x-pencils -> z-pencils (CommA)
)

// Op kinds: the operation vocabulary of the IR. The machine model buckets
// costs by kind into the paper's table columns (transpose+reorder ->
// "Transpose", fft -> "FFT", solve -> "N-S advance"), while Op.Phase carries
// the live code's attribution for phase-by-phase model-vs-measured
// comparison.
const (
	OpTranspose  = "transpose"  // alltoallv wire exchange on CommA or CommB
	OpReorder    = "reorder"    // on-node pack/unpack memory passes
	OpFFT        = "fft"        // one batched 1-D FFT stage
	OpSolve      = "solve"      // per-wavenumber banded N-S advance
	OpCollective = "collective" // reduction/broadcast outside the transposes
	// OpOverlap is a pipelined transpose fused with the FFT stage it hides:
	// the exchange moves in Chunks per-peer pieces and the consumer's
	// transform runs on each completed chunk while later chunks are in
	// flight. The op carries BOTH the transpose fields (Dir, Comm, CommSize,
	// BytesPerRank, Messages, Chunks) and the hidden FFT stage's fields
	// (Axis, Lines, Points, Flops, FFTPhase); schedules using it emit no
	// separate OpFFT for the fused stage, so flop totals count once. The
	// machine model prices it as max(wire, compute) plus the exposed
	// first-chunk tail, attributing the exposed part to Phase and the
	// compute to FFTPhase.
	OpOverlap = "overlap"
)

// Op is one typed operation of a schedule. Fields not meaningful for a kind
// are zero and omitted from JSON. Sizes are global (whole problem) per
// executed instance; per-rank figures are the *_per_rank fields.
type Op struct {
	Kind string `json:"kind"`
	// Phase is the canonical taxonomy name (PhaseNames) the live code
	// attributes this operation's wall clock to.
	Phase string `json:"phase"`
	// Sub is the 1-based RK3 substep for timestep schedules, 0 for cycles.
	Sub int `json:"sub,omitempty"`

	// Transpose / Reorder fields.
	Dir      string  `json:"dir,omitempty"`       // DirYtoZ, ...
	Comm     string  `json:"comm,omitempty"`      // "A" or "B"
	CommSize int     `json:"comm_size,omitempty"` // ranks in the sub-communicator
	Fields   int     `json:"fields,omitempty"`    // fields moved/transformed together
	// BytesPerRank is the payload each rank contributes: one packed local
	// image of the transported fields (16 bytes per complex mode).
	BytesPerRank float64 `json:"bytes_per_rank,omitempty"`
	// Messages is the point-to-point message count per rank: CommSize-1 for
	// a one-shot transpose, Chunks*(CommSize-1) for a chunked one.
	Messages int `json:"messages,omitempty"`
	// Passes counts pack/unpack memory passes over the payload (reorder).
	Passes float64 `json:"passes,omitempty"`
	// Chunks is the pipeline depth of a chunked transpose: the chunk axis is
	// split into this many pieces, each exchanged as its own per-peer
	// message. 0 on one-shot transposes; >= 1 on chunked transposes and
	// every overlap op. Uniform across ranks (pencil.TransposePlan.Chunks
	// clamps to the communicator-global minimum line extent).
	Chunks int `json:"chunks,omitempty"`
	// FFTPhase is the phase the hidden FFT compute of an overlap op is
	// attributed to (Phase carries the exposed transpose part). Overlap ops
	// only.
	FFTPhase string `json:"fft_phase,omitempty"`

	// FFT fields.
	Axis    string `json:"axis,omitempty"` // "x" or "z"
	Inverse bool   `json:"inverse,omitempty"`
	Real    bool   `json:"real,omitempty"`   // real<->half-complex transform
	Padded  bool   `json:"padded,omitempty"` // 3/2-rule dealiasing grid
	Lines   int    `json:"lines,omitempty"`  // global 1-D line count
	Points  int    `json:"points,omitempty"` // points per line

	// Solve fields.
	Systems   int `json:"systems,omitempty"`   // independent banded systems
	Bandwidth int `json:"bandwidth,omitempty"` // band half-width (B-spline order)

	// Flops is the global floating-point work of this op (0 for pure
	// data-movement ops).
	Flops float64 `json:"flops,omitempty"`
}

// Schedule is one program: the ordered ops of a timestep or sub-cycle plus
// the problem and process-grid identity they were built from.
type Schedule struct {
	// Name identifies the program: "timestep", "transpose_cycle",
	// "fft_cycle".
	Name string `json:"name"`
	// Grid extents and the one-sided x mode count actually carried.
	Nx  int `json:"nx"`
	Ny  int `json:"ny"`
	Nz  int `json:"nz"`
	NKx int `json:"nkx"`
	// Process grid: CommA spans PA ranks, CommB spans PB ranks.
	PA    int `json:"pa"`
	PB    int `json:"pb"`
	Ranks int `json:"ranks"`
	// ResidentBytesPerRank is the steady working-set per rank (field +
	// communication scratch), used for the model's memory-feasibility check.
	ResidentBytesPerRank float64 `json:"resident_bytes_per_rank,omitempty"`
	Ops                  []Op    `json:"ops"`
}

// TotalFlops sums the floating-point work over all ops.
func (s *Schedule) TotalFlops() float64 {
	var f float64
	for _, op := range s.Ops {
		f += op.Flops
	}
	return f
}

// CommBytesPerRank returns, per transpose direction, the payload one rank
// contributes over the whole schedule (wire ops only; reorders move the
// same bytes on-node and are excluded).
func (s *Schedule) CommBytesPerRank() map[string]float64 {
	out := map[string]float64{}
	for _, op := range s.Ops {
		if op.Kind == OpTranspose || op.Kind == OpOverlap {
			out[op.Dir] += op.BytesPerRank
		}
	}
	return out
}

// CommCallsByDir returns the number of wire-transpose executions per
// direction (overlap ops included: each fuses exactly one wire transpose).
func (s *Schedule) CommCallsByDir() map[string]int {
	out := map[string]int{}
	for _, op := range s.Ops {
		if op.Kind == OpTranspose || op.Kind == OpOverlap {
			out[op.Dir]++
		}
	}
	return out
}

// FFTFlops returns the flop count of one complex FFT of length n
// (5 n log2 n) or half that for a real transform — the accounting every
// flop figure in this repo (machine model, telemetry, §5.3 aggregate rates)
// is built on.
func FFTFlops(n int, realT bool) float64 {
	f := 5 * float64(n) * math.Log2(float64(n))
	if realT {
		f /= 2
	}
	return f
}

// NSFlopsPerPoint is the calibrated operation count of the Navier-Stokes
// time advance per spectral point (solves, matvecs, influence correction).
const NSFlopsPerPoint = 2000.0
