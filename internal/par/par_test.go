package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed % 100)
		if n < 0 {
			n = -n
		}
		n++
		for _, w := range []int{1, 2, 4, 7, 200} {
			p := NewPool(w)
			var hits [300]int32
			p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i := 0; i < n; i++ {
				if hits[i] != 1 {
					return false
				}
			}
			for i := n; i < 300; i++ {
				if hits[i] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestForBlocksPartition(t *testing.T) {
	p := NewPool(4)
	var total int64
	p.ForBlocks(1000, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 1000 {
		t.Errorf("blocks cover %d of 1000", total)
	}
}

func TestNilPoolSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers %d", p.Workers())
	}
	sum := 0
	p.For(10, func(i int) { sum += i }) // must be safe without synchronization
	if sum != 45 {
		t.Errorf("nil pool sum %d", sum)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	p := NewPool(3)
	ran := false
	p.For(0, func(int) { ran = true })
	p.ForBlocks(0, func(int, int) { ran = true })
	if ran {
		t.Error("callbacks ran for n=0")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if NewPool(0).Workers() < 1 || NewPool(-5).Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
}
