// Package par provides fixed-width goroutine worker pools standing in for
// the OpenMP parallel regions of the paper (§4.2). The DNS threads three
// sites: batched FFT lines, per-wavenumber time-advance solves, and the
// blocked on-node data reordering. As in the paper, the degree of
// parallelism may differ per site, which is why kernels take a *Pool rather
// than consulting a global setting.
//
// Workers are persistent: the pool spawns its goroutines once (lazily, on
// the first parallel loop) and feeds them work spans through preallocated
// channels, so steady-state For/ForBlocks calls pay no goroutine-spawn or
// WaitGroup churn and perform no allocations. Loop submissions from
// different goroutines (e.g. different in-process MPI ranks sharing one
// pool) are serialized by a mutex; loop bodies must therefore never invoke
// a parallel loop on the same pool (nested parallelism would deadlock) and
// must not block on communication with another rank that shares the pool.
package par

import (
	"runtime"
	"sync"
)

// Pool executes parallel loops with a fixed number of workers.
// The zero value and a nil *Pool both run serially.
type Pool struct {
	n    int
	once sync.Once
	c    *workers
}

// span is one contiguous block of a parallel loop. idx is unique among the
// spans of a single submission, which lets callers key per-worker scratch
// off it (ForBlocksIndexed).
type span struct{ idx, lo, hi int }

// workers is the shared state referenced by the worker goroutines. It is
// deliberately separate from Pool so an abandoned Pool becomes unreachable
// and its finalizer can shut the goroutines down.
type workers struct {
	n    int
	work chan span
	done chan struct{}

	mu sync.Mutex // serializes loop submissions
	// Exactly one of the three loop bodies is non-nil while a submission is
	// in flight; the work-channel send/receive orders these writes before
	// the workers' reads.
	fnB  func(lo, hi int)
	fnBI func(blk, lo, hi int)
	fnE  func(i int)

	closeOnce sync.Once
}

// NewPool returns a pool with n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{n: n}
}

// Workers reports the worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.n <= 1 {
		return 1
	}
	return p.n
}

// start lazily spawns the persistent workers.
func (p *Pool) start() *workers {
	p.once.Do(func() {
		c := &workers{
			n:    p.n,
			work: make(chan span, p.n),
			done: make(chan struct{}, p.n),
		}
		for k := 0; k < p.n; k++ {
			go c.run()
		}
		p.c = c
		// Workers reference only c, so a dropped Pool is collectable; stop
		// the goroutines when that happens. Close is the explicit form.
		runtime.SetFinalizer(p, func(p *Pool) { p.c.close() })
	})
	return p.c
}

// Close shuts down the persistent workers. It is safe to call on a nil
// pool, more than once, or on a pool whose workers never started; using
// the pool after Close panics. Pools that are simply dropped are cleaned
// up by a finalizer, so Close is only needed for deterministic shutdown.
func (p *Pool) Close() {
	if p == nil || p.c == nil {
		return
	}
	runtime.SetFinalizer(p, nil)
	p.c.close()
}

func (c *workers) close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() { close(c.work) })
}

func (c *workers) run() {
	for sp := range c.work {
		switch {
		case c.fnBI != nil:
			c.fnBI(sp.idx, sp.lo, sp.hi)
		case c.fnB != nil:
			c.fnB(sp.lo, sp.hi)
		case c.fnE != nil:
			for i := sp.lo; i < sp.hi; i++ {
				c.fnE(i)
			}
		}
		c.done <- struct{}{}
	}
}

// dispatch fans [0, n) out as w spans and waits for their completion.
// Callers hold c.mu and have installed exactly one loop body.
func (c *workers) dispatch(n, w int) {
	for k := 0; k < w; k++ {
		c.work <- span{idx: k, lo: k * n / w, hi: (k + 1) * n / w}
	}
	for k := 0; k < w; k++ {
		<-c.done
	}
}

// For runs fn(i) for every i in [0, n), partitioned into contiguous chunks
// across the workers. fn must be safe for concurrent invocation on distinct
// indices.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.Workers()
	if w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if w > n {
		w = n
	}
	c := p.start()
	c.mu.Lock()
	c.fnE = fn
	c.dispatch(n, w)
	c.fnE = nil
	c.mu.Unlock()
}

// ForBlocks splits [0, n) into one contiguous block per worker and runs
// fn(lo, hi) on each. Contiguous blocks keep each worker's memory streams
// independent, the property the paper exploits for the on-node reorder.
func (p *Pool) ForBlocks(n int, fn func(lo, hi int)) {
	w := p.Workers()
	if w == 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if w > n {
		w = n
	}
	c := p.start()
	c.mu.Lock()
	c.fnB = fn
	c.dispatch(n, w)
	c.fnB = nil
	c.mu.Unlock()
}

// ForBlocksIndexed is ForBlocks with a block index: fn(blk, lo, hi) where
// blk is unique among the concurrently executing blocks of this call and
// always < Workers(). Kernels use blk to select preallocated per-worker
// scratch instead of allocating inside the loop body.
func (p *Pool) ForBlocksIndexed(n int, fn func(blk, lo, hi int)) {
	w := p.Workers()
	if w == 1 || n <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	if w > n {
		w = n
	}
	c := p.start()
	c.mu.Lock()
	c.fnBI = fn
	c.dispatch(n, w)
	c.fnBI = nil
	c.mu.Unlock()
}
