// Package par provides fixed-width goroutine worker pools standing in for
// the OpenMP parallel regions of the paper (§4.2). The DNS threads three
// sites: batched FFT lines, per-wavenumber time-advance solves, and the
// blocked on-node data reordering. As in the paper, the degree of
// parallelism may differ per site, which is why kernels take a *Pool rather
// than consulting a global setting.
package par

import (
	"runtime"
	"sync"
)

// Pool executes parallel loops with a fixed number of workers.
// The zero value and a nil *Pool both run serially.
type Pool struct {
	n int
}

// NewPool returns a pool with n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{n: n}
}

// Workers reports the worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.n <= 1 {
		return 1
	}
	return p.n
}

// For runs fn(i) for every i in [0, n), partitioned into contiguous chunks
// across the workers. fn must be safe for concurrent invocation on distinct
// indices.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForBlocks splits [0, n) into one contiguous block per worker and runs
// fn(lo, hi) on each. Contiguous blocks keep each worker's memory streams
// independent, the property the paper exploits for the on-node reorder.
func (p *Pool) ForBlocks(n int, fn func(lo, hi int)) {
	w := p.Workers()
	if w == 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
