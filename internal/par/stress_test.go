package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolConcurrentSubmitters: many goroutines (standing in for in-process
// MPI ranks sharing one pool) submit loops concurrently against one
// persistent pool. Every index of every submission must run exactly once,
// and block ids must stay < Workers(). Run under -race this exercises the
// mutex-serialized submission path and the channel handoffs.
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const (
		submitters = 8
		rounds     = 50
		n          = 137
	)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := make([]int32, n)
			for r := 0; r < rounds; r++ {
				for i := range hits {
					hits[i] = 0
				}
				switch r % 3 {
				case 0:
					p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
				case 1:
					p.ForBlocks(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
				case 2:
					p.ForBlocksIndexed(n, func(blk, lo, hi int) {
						if blk < 0 || blk >= p.Workers() {
							t.Errorf("block id %d out of range [0,%d)", blk, p.Workers())
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
				}
				for i := range hits {
					if hits[i] != 1 {
						t.Errorf("round %d: index %d ran %d times", r, i, hits[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolPerWorkerScratchRace: the ForBlocksIndexed contract — distinct
// concurrent blocks get distinct ids — must make per-worker scratch safe
// without atomics. The scratch writes here are racy if and only if two
// concurrent blocks ever share an id.
func TestPoolPerWorkerScratchRace(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	scratch := make([][]float64, p.Workers())
	for i := range scratch {
		scratch[i] = make([]float64, 64)
	}
	for r := 0; r < 200; r++ {
		p.ForBlocksIndexed(1000, func(blk, lo, hi int) {
			s := scratch[blk]
			for i := lo; i < hi; i++ {
				s[i%len(s)] += float64(i)
			}
		})
	}
}

// TestPoolCloseIdempotent: Close on nil, never-started, and already-closed
// pools must all be no-ops.
func TestPoolCloseIdempotent(t *testing.T) {
	var nilPool *Pool
	nilPool.Close()

	fresh := NewPool(2)
	fresh.Close() // never started
	fresh.Close()

	used := NewPool(2)
	var count int32
	used.For(10, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 10 {
		t.Fatalf("pre-close loop ran %d indices, want 10", count)
	}
	used.Close()
	used.Close()
}

// TestPoolSteadyStateAllocs: after warm-up a ForBlocks call with a
// preassigned function value must not allocate (the persistent workers and
// preallocated channels are the point of the pool). For/ForBlocksIndexed
// with closure literals may allocate the closure header; that is the
// documented per-call cost.
func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink int64
	fn := func(lo, hi int) {
		atomic.AddInt64(&sink, int64(hi-lo))
	}
	p.ForBlocks(1024, fn) // warm up: spawns workers
	if allocs := testing.AllocsPerRun(20, func() { p.ForBlocks(1024, fn) }); allocs != 0 {
		t.Errorf("ForBlocks steady state: %v allocs per run, want 0", allocs)
	}
}
