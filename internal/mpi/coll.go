package mpi

import (
	"fmt"
	"time"
	"unsafe"

	"channeldns/internal/telemetry"
)

// sizeofT returns the in-memory size of one element of type T, for the
// telemetry byte accounting.
func sizeofT[T any]() int64 {
	var v T
	return int64(unsafe.Sizeof(v))
}

// Barrier blocks until every rank of the communicator has entered it.
// It uses a dissemination pattern: log2(P) rounds of shifted exchanges.
func (c *Comm) Barrier() {
	sp := c.tel.Begin(telemetry.PhaseCollective)
	p := c.size()
	rounds := int64(0)
	for k := 1; k < p; k *= 2 {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		c.send(dst, tagBarrier, []byte{1})
		c.recv(src, tagBarrier)
		rounds++
	}
	sp.End()
	if rounds > 0 {
		c.tel.AddComm(telemetry.CommCollective, rounds, rounds)
	}
}

// bcast is the uninstrumented binomial-tree broadcast shared by Bcast and
// Allreduce; it returns the received buffer and the number of tree sends
// this rank performed (for the caller's comm accounting).
func bcast[T any](c *Comm, root int, data []T) (buf []T, sends int64) {
	p := c.size()
	// Rotate so the root is virtual rank 0.
	vr := (c.rank - root + p) % p
	k := 1 // first round in which this rank may send
	if vr == 0 {
		buf = append([]T(nil), data...)
	} else {
		// Parent holds the highest power-of-two bit of vr; this rank joins
		// the tree in the round after receiving.
		for k*2 <= vr {
			k *= 2
		}
		parent := vr - k
		buf = c.recv((parent+root)%p, tagBcast).([]T)
		k *= 2
	}
	for ; vr+k < p; k *= 2 {
		cp := append([]T(nil), buf...)
		c.send((vr+k+root)%p, tagBcast, cp)
		sends++
	}
	return buf, sends
}

// Bcast distributes root's data to every rank over a binomial tree and
// returns each rank's copy.
func Bcast[T any](c *Comm, root int, data []T) []T {
	sp := c.tel.Begin(telemetry.PhaseCollective)
	buf, sends := bcast(c, root, data)
	sp.End()
	c.tel.AddComm(telemetry.CommCollective, sends*int64(len(buf))*sizeofT[T](), sends)
	return buf
}

// Op is a reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// Number is the element constraint for reductions.
type Number interface {
	~int | ~int64 | ~float64
}

func reduceInto[T Number](op Op, acc, in []T) {
	for i := range acc {
		switch op {
		case OpSum:
			acc[i] += in[i]
		case OpMax:
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		case OpMin:
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	}
}

// Allreduce combines data element-wise across all ranks and returns the
// result on every rank (reduce-to-zero then broadcast).
func Allreduce[T Number](c *Comm, op Op, data []T) []T {
	sp := c.tel.Begin(telemetry.PhaseCollective)
	sends := int64(0)
	acc := append([]T(nil), data...)
	if c.rank == 0 {
		for i := 1; i < c.size(); i++ {
			in := c.recv(AnySource, tagReduce).([]T)
			reduceInto(op, acc, in)
		}
	} else {
		c.send(0, tagReduce, acc)
		sends++
	}
	out, bsends := bcast(c, 0, acc)
	sends += bsends
	sp.End()
	c.tel.AddComm(telemetry.CommCollective, sends*int64(len(acc))*sizeofT[T](), sends)
	return out
}

// Gather collects equal-length contributions on the root, concatenated in
// rank order. Non-root ranks receive nil.
func Gather[T any](c *Comm, root int, data []T) []T {
	sp := c.tel.Begin(telemetry.PhaseCollective)
	if c.rank != root {
		cp := append([]T(nil), data...)
		c.send(root, tagGather, cp)
		sp.End()
		c.tel.AddComm(telemetry.CommCollective, int64(len(data))*sizeofT[T](), 1)
		return nil
	}
	out := make([]T, len(data)*c.size())
	copy(out[c.rank*len(data):], data)
	for i := 0; i < c.size(); i++ {
		if i == root {
			continue
		}
		in := c.recv(i, tagGather).([]T)
		copy(out[i*len(data):], in)
	}
	sp.End()
	c.tel.AddComm(telemetry.CommCollective, 0, 0)
	return out
}

// Alltoall performs the complete exchange: rank r's block i (of blockLen
// elements) is delivered to rank i's slot r. This is the communication
// pattern at the heart of the global transposes (paper §4.3).
func Alltoall[T any](c *Comm, data []T, blockLen int) []T {
	p := c.size()
	if len(data) != p*blockLen {
		panic(fmt.Sprintf("mpi: Alltoall data length %d != size %d * block %d", len(data), p, blockLen))
	}
	counts := make([]int, p)
	displs := make([]int, p)
	for i := range counts {
		counts[i] = blockLen
		displs[i] = i * blockLen
	}
	return Alltoallv(c, data, counts, displs, counts, displs)
}

// CountMismatchError reports a collective receive whose payload length
// disagrees with the caller's recvCounts table — the two ranks were called
// with inconsistent count tables. It is returned (not panicked) by the
// Into forms of the alltoallv family so preplanned callers can surface the
// plan inconsistency with context.
type CountMismatchError struct {
	Op   string // collective name, e.g. "AlltoallvOverlap"
	Rank int    // receiving rank (within the communicator)
	Src  int    // sending rank (within the communicator)
	Want int    // recvCounts[Src] on the receiver
	Got  int    // elements actually received
}

func (e *CountMismatchError) Error() string {
	return fmt.Sprintf("mpi: %s rank %d expected %d elements from %d, got %d",
		e.Op, e.Rank, e.Want, e.Src, e.Got)
}

// recvTotal returns the receive-buffer length implied by the count and
// displacement tables.
func recvTotal(p int, recvCounts, recvDispls []int) int {
	total := 0
	for i := 0; i < p; i++ {
		if e := recvDispls[i] + recvCounts[i]; e > total {
			total = e
		}
	}
	return total
}

// AlltoallvOverlap is Alltoallv built on nonblocking operations: all sends
// are posted up front and receives complete in arrival order, the
// communication/computation-overlap pattern real transpose implementations
// use. Results are identical to Alltoallv.
func AlltoallvOverlap[T any](c *Comm, data []T, sendCounts, sendDispls, recvCounts, recvDispls []int) []T {
	out, err := AlltoallvOverlapInto(c, nil, data, sendCounts, sendDispls, recvCounts, recvDispls)
	if err != nil {
		panic(err)
	}
	return out
}

// AlltoallvOverlapInto is AlltoallvOverlap with a caller-provided receive
// buffer, the form the preplanned pencil transposes use so that the
// steady state performs no allocations beyond the per-message payload
// copies the eager-send runtime requires. A nil (or too-short) out buffer
// is replaced by a fresh allocation. A *CountMismatchError is returned when
// a peer's payload contradicts recvCounts — inconsistent tables across
// ranks — leaving out partially written.
func AlltoallvOverlapInto[T any](c *Comm, out, data []T, sendCounts, sendDispls, recvCounts, recvDispls []int) ([]T, error) {
	p := c.size()
	total := recvTotal(p, recvCounts, recvDispls)
	if len(out) < total {
		out = make([]T, total)
	}
	copy(out[recvDispls[c.rank]:recvDispls[c.rank]+recvCounts[c.rank]],
		data[sendDispls[c.rank]:sendDispls[c.rank]+sendCounts[c.rank]])
	// Post every receive first (reserved collective tag, in-package), then
	// fire all sends.
	reqs := make([]*Request, 0, p-1)
	srcs := make([]int, 0, p-1)
	for s := 1; s < p; s++ {
		src := (c.rank - s + p) % p
		reqs = append(reqs, c.myBox().postRecv(c.group[src], c.id, tagAlltoall))
		srcs = append(srcs, src)
	}
	for s := 1; s < p; s++ {
		dst := (c.rank + s) % p
		blk := append([]T(nil), data[sendDispls[dst]:sendDispls[dst]+sendCounts[dst]]...)
		c.send(dst, tagAlltoall, blk)
	}
	for i, r := range reqs {
		var t0 time.Time
		if c.trc != nil {
			t0 = time.Now()
		}
		in := WaitT[T](r)
		src := srcs[i]
		if len(in) != recvCounts[src] {
			return out, &CountMismatchError{Op: "AlltoallvOverlap", Rank: c.rank, Src: src, Want: recvCounts[src], Got: len(in)}
		}
		if c.trc != nil {
			c.trc.Peer(src, int64(len(in))*sizeofT[T](), t0, time.Now())
		}
		copy(out[recvDispls[src]:], in)
	}
	return out, nil
}

// Alltoallv performs the complete exchange with per-peer counts and
// displacements, the general form used by the pencil transposes where pencil
// widths differ by one when the grid does not divide evenly. The result
// slice is laid out by recvDispls and has length sum over peers of
// recvDispls[i]+recvCounts[i] (max).
//
// The exchange is scheduled pairwise: in step s, rank r exchanges with
// (r - s mod P) and (r + s mod P), the same linear-shift schedule MPI
// implementations use to avoid hot spots.
func Alltoallv[T any](c *Comm, data []T, sendCounts, sendDispls, recvCounts, recvDispls []int) []T {
	out, err := AlltoallvInto(c, nil, data, sendCounts, sendDispls, recvCounts, recvDispls)
	if err != nil {
		panic(err)
	}
	return out
}

// AlltoallvInto is Alltoallv with a caller-provided receive buffer (see
// AlltoallvOverlapInto, including the *CountMismatchError contract). The
// send buffer is free for reuse as soon as the call returns on this rank:
// each per-peer block is copied into the message before it is posted, which
// is exactly what lets the pencil transpose plans keep the paper's 1x
// communication-buffer discipline.
func AlltoallvInto[T any](c *Comm, out, data []T, sendCounts, sendDispls, recvCounts, recvDispls []int) ([]T, error) {
	p := c.size()
	total := recvTotal(p, recvCounts, recvDispls)
	if len(out) < total {
		out = make([]T, total)
	}
	// Self block first (pure copy, no message).
	copy(out[recvDispls[c.rank]:recvDispls[c.rank]+recvCounts[c.rank]],
		data[sendDispls[c.rank]:sendDispls[c.rank]+sendCounts[c.rank]])
	for s := 1; s < p; s++ {
		dst := (c.rank + s) % p
		src := (c.rank - s + p) % p
		blk := append([]T(nil), data[sendDispls[dst]:sendDispls[dst]+sendCounts[dst]]...)
		c.send(dst, tagAlltoall, blk)
		var t0 time.Time
		if c.trc != nil {
			t0 = time.Now()
		}
		in := c.recv(src, tagAlltoall).([]T)
		if len(in) != recvCounts[src] {
			return out, &CountMismatchError{Op: "Alltoallv", Rank: c.rank, Src: src, Want: recvCounts[src], Got: len(in)}
		}
		if c.trc != nil {
			c.trc.Peer(src, int64(len(in))*sizeofT[T](), t0, time.Now())
		}
		copy(out[recvDispls[src]:], in)
	}
	return out, nil
}
