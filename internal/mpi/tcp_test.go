package mpi

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestWireRoundTrip pins the payload codec: every fast-path type (and a
// gob-registered struct) must reconstruct to a deeply equal value of the
// identical dynamic type, including IEEE bit patterns that are not equal
// to themselves (NaN) or that compare equal across distinct encodings
// (signed zero).
func TestWireRoundTrip(t *testing.T) {
	type meta struct {
		Name string
		N    int
	}
	RegisterWire[meta]()
	payloads := []any{
		[]byte{0, 1, 255},
		[]byte{},
		[]float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), 1.5e-300},
		[]complex128{complex(1, -2), complex(math.Inf(-1), math.NaN())},
		[]int{-1, 0, 1 << 40},
		[]int64{math.MinInt64, math.MaxInt64},
		[]string{"", "hello", "με unicode"},
		[]string{},
		[]splitTuple{{Color: -1, Key: 3, Rank: 7}},
		[]meta{{Name: "shard", N: 4}},
	}
	for _, p := range payloads {
		frame, kind := appendPayload(nil, p)
		got, err := decodePayload(kind, frame)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(p) {
			t.Fatalf("%T decoded as %T", p, got)
		}
		want, gotB := frameBits(p), frameBits(got)
		if !reflect.DeepEqual(want, gotB) {
			t.Fatalf("%T round trip: sent %v, got %v", p, p, got)
		}
	}
}

// frameBits maps float payloads to raw bit patterns so NaN-carrying
// slices compare by representation, and leaves everything else alone.
func frameBits(p any) any {
	switch v := p.(type) {
	case []float64:
		out := make([]uint64, len(v))
		for i, f := range v {
			out[i] = math.Float64bits(f)
		}
		return out
	case []complex128:
		out := make([][2]uint64, len(v))
		for i, c := range v {
			out[i] = [2]uint64{math.Float64bits(real(c)), math.Float64bits(imag(c))}
		}
		return out
	default:
		return p
	}
}

// TestWireUnknownTypePanics: sending a type the wire does not know is a
// programming error and must fail loudly, not silently corrupt a run.
func TestWireUnknownTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered payload type")
		}
	}()
	appendPayload(nil, []float32{1})
}

// TestTCPFrameEncodeDecode covers the frame header: negative reserved
// tags and 64-bit communicator ids must survive the i32/i64 packing.
func TestTCPFrameEncodeDecode(t *testing.T) {
	m := message{src: 3, commID: 1_000_003_000_007, tag: tagStream, payload: []float64{1, 2}}
	frame := encodeFrame(m)
	n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
	if n != len(frame)-4 {
		t.Fatalf("frame length field %d, frame body %d", n, len(frame)-4)
	}
}

// TestRunTCPPointToPoint: basic send/recv and sendrecv over real
// sockets, including tag selectivity and AnySource.
func TestRunTCPPointToPoint(t *testing.T) {
	RunTCP(4, func(c *Comm) {
		if c.TransportName() != "tcp" {
			t.Errorf("transport name %q", c.TransportName())
		}
		switch c.Rank() {
		case 0:
			for i := 1; i < 4; i++ {
				got := Recv[float64](c, AnySource, 7)
				if len(got) != 2 || got[0] != float64(10*got[1]) {
					t.Errorf("rank 0 got %v", got)
				}
			}
		default:
			Send(c, 0, 7, []float64{float64(10 * c.Rank()), float64(c.Rank())})
		}
	})
}

// TestRunTCPNonOvertaking: two messages with the same (src, tag) must
// arrive in send order through the wire, and a posted Irecv pair must
// complete in post order.
func TestRunTCPNonOvertaking(t *testing.T) {
	RunTCP(2, func(c *Comm) {
		if c.Rank() == 1 {
			for i := 0; i < 32; i++ {
				Send(c, 0, 5, []int{i})
			}
			return
		}
		r1 := Irecv[int](c, 1, 5)
		r2 := Irecv[int](c, 1, 5)
		if a, b := WaitT[int](r1)[0], WaitT[int](r2)[0]; a != 0 || b != 1 {
			t.Errorf("posted receives completed as %d,%d", a, b)
		}
		for i := 2; i < 32; i++ {
			if got := Recv[int](c, 1, 5)[0]; got != i {
				t.Errorf("message %d arrived as %d", i, got)
			}
		}
	})
}

// TestRunTCPStream: the pipelined exchange's per-peer-progress stream
// must deliver arrival-order completions over the wire.
func TestRunTCPStream(t *testing.T) {
	const P = 3
	RunTCP(P, func(c *Comm) {
		s := NewStream(c, P-1)
		idxSrc := make(map[int]int)
		for p := 1; p < P; p++ {
			src := (c.Rank() + p) % P
			idxSrc[s.Post(src)] = src
		}
		for p := 1; p < P; p++ {
			dst := (c.Rank() - p + P) % P
			StreamSend(c, dst, []complex128{complex(float64(c.Rank()), float64(dst))})
		}
		for p := 1; p < P; p++ {
			idx, src, payload := s.Next()
			if idxSrc[idx] != src {
				t.Errorf("stream idx %d mapped to %d, got src %d", idx, idxSrc[idx], src)
			}
			v := payload.([]complex128)[0]
			if real(v) != float64(src) || imag(v) != float64(c.Rank()) {
				t.Errorf("stream payload %v from %d at rank %d", v, src, c.Rank())
			}
		}
		s.Reset()
	})
}

// TestConnectTCPBadConfig: config errors surface as errors, not hangs.
func TestConnectTCPBadConfig(t *testing.T) {
	if _, err := ConnectTCP(TCPConfig{Rank: 2, World: 2, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("rank out of world accepted")
	}
	if _, err := ConnectTCP(TCPConfig{Rank: 0, World: 2}); err == nil {
		t.Error("missing coordinator accepted")
	}
	start := time.Now()
	_, err := ConnectTCP(TCPConfig{Rank: 1, World: 2, Coord: "127.0.0.1:9", Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Error("unreachable coordinator accepted")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("bootstrap timeout did not bound the dial")
	}
}

// TestRunTCPWorldOfOne: the degenerate world needs no sockets at all.
func TestRunTCPWorldOfOne(t *testing.T) {
	ran := false
	RunTCP(1, func(c *Comm) {
		if c.Size() != 1 || c.Rank() != 0 {
			t.Errorf("world of one: rank %d size %d", c.Rank(), c.Size())
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn never ran")
	}
}
