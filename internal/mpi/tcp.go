package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TCP transport: one OS process (or goroutine, in tests) per rank,
// persistent length-prefixed-frame connections between every pair of
// ranks, and a rank-0 rendezvous that maps world ranks to addresses.
//
// Bootstrap protocol
//
//  1. Every rank opens a peer listener (cfg.Bind, ephemeral port by
//     default) before contacting anyone, so by the time addresses are
//     known every listener is accepting.
//  2. Rank 0 listens on cfg.Coord. Ranks 1..P-1 dial it (with retry —
//     the launcher starts processes in arbitrary order) and send a hello
//     frame carrying their rank and advertised peer address.
//  3. Once all P-1 hellos are in, rank 0 sends the full rank->address
//     table back on each bootstrap connection and closes it.
//  4. Full mesh: rank i dials the peer listener of every rank j < i and
//     identifies itself with a 4-byte rank header; rank j accepts
//     P-1-j such links. Each link is used bidirectionally.
//
// Data frames are [u32 length][i32 src][i64 commID][i32 tag][u8 kind]
// [payload], little-endian, with the payload serialized by wire.go at
// send time — the one copy the frame boundary requires. A per-peer
// writer goroutine drains an unbounded queue so Deliver keeps the eager,
// never-blocking semantics the exchange patterns assume; a per-peer
// reader goroutine decodes frames straight into the local mailbox, where
// the ordinary matching machinery (blocking receives, the nonblocking
// request table, Stream notifications) takes over. One connection per
// peer plus in-order framing is what preserves MPI's non-overtaking
// guarantee across the wire.

// TCPConfig configures one rank's ConnectTCP.
type TCPConfig struct {
	// Rank and World are this process's world rank and the world size.
	Rank, World int
	// Coord is the rendezvous address (host:port). Rank 0 listens on it;
	// every other rank dials it until Timeout.
	Coord string
	// Bind is the address the rank's peer listener binds ("127.0.0.1:0"
	// when empty — loopback, ephemeral port). For multi-machine runs
	// bind an externally reachable interface, e.g. "0.0.0.0:0".
	Bind string
	// Advertise optionally overrides the host other ranks dial (the
	// bound port is appended). Needed when Bind is a wildcard address.
	Advertise string
	// Timeout bounds the whole bootstrap (default 30s).
	Timeout time.Duration

	// coordLn, when non-nil on rank 0, is a pre-bound rendezvous
	// listener (RunTCP binds port 0 first to learn the address).
	coordLn net.Listener
}

// tcpPeer is one live connection to a peer rank.
type tcpPeer struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte // encoded frames awaiting the writer
	closed bool     // no further enqueues; writer flushes and half-closes

	// Wire counters for this link, atomically bumped on the send path
	// (Deliver) and the receive path (readLoop) and read by WireStats at
	// any time. Outbound counts are taken at enqueue, not at socket write:
	// they measure what the rank asked the wire to carry, independent of
	// writer-queue drain timing.
	framesOut   atomic.Int64
	bytesOut    atomic.Int64 // whole frames, header included
	payloadOut  atomic.Int64 // serialized payload only
	framesIn    atomic.Int64
	bytesIn     atomic.Int64
	payloadIn   atomic.Int64
	queueHWM    atomic.Int64 // deepest the writer queue has been
	serializeNs atomic.Int64 // time spent in encodeFrame
}

func (p *tcpPeer) enqueue(frame []byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("mpi: send on closed TCP transport")
	}
	p.queue = append(p.queue, frame)
	if depth := int64(len(p.queue)); depth > p.queueHWM.Load() {
		p.queueHWM.Store(depth) // mu serializes enqueuers; plain check-then-store is safe
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// writeLoop drains the queue into the connection. On close it flushes
// everything enqueued so far and half-closes the write side, which is
// what lets a finished rank's last messages reach slower peers.
func (p *tcpPeer) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	bw := bufio.NewWriterSize(p.conn, 1<<16)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		batch := p.queue
		p.queue = nil
		done := p.closed && len(batch) == 0
		p.mu.Unlock()
		if done {
			bw.Flush()
			if tc, ok := p.conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
		for _, f := range batch {
			if _, err := bw.Write(f); err != nil {
				return // peer gone; reader side reports if it matters
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// tcpTransport implements Transport for one rank.
type tcpTransport struct {
	self, world int
	box         *mailbox
	peers       []*tcpPeer // indexed by world rank, nil at self
	wg          sync.WaitGroup
	closing     atomic.Bool
	dialRetries atomic.Int64 // failed bootstrap dial attempts (rendezvous + mesh)
}

func (t *tcpTransport) Self() int          { return t.self }
func (t *tcpTransport) WorldSize() int     { return t.world }
func (t *tcpTransport) LocalBox() *mailbox { return t.box }
func (t *tcpTransport) Name() string       { return "tcp" }

// Deliver serializes the message into a frame and hands it to the peer's
// writer. Self-sends skip the wire entirely (same-process delivery, the
// channel transport's semantics), which collectives never hit but user
// code may.
func (t *tcpTransport) Deliver(dst int, m message) {
	if dst == t.self {
		t.box.put(m)
		return
	}
	p := t.peers[dst]
	t0 := time.Now()
	frame := encodeFrame(m)
	p.serializeNs.Add(int64(time.Since(t0)))
	p.framesOut.Add(1)
	p.bytesOut.Add(int64(len(frame)))
	p.payloadOut.Add(int64(len(frame)) - frameHeaderLen)
	p.enqueue(frame)
}

// frameHeaderLen is the fixed per-frame overhead: the u32 length prefix
// plus the src/commID/tag/kind header it counts.
const frameHeaderLen = 21

// encodeFrame serializes a message into one wire frame.
func encodeFrame(m message) []byte {
	frame := make([]byte, 4, 64)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(int32(m.src)))
	frame = binary.LittleEndian.AppendUint64(frame, uint64(m.commID))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(int32(m.tag)))
	frame = append(frame, 0) // kind placeholder
	kindAt := len(frame) - 1
	frame, kind := appendPayload(frame, m.payload)
	frame[kindAt] = byte(kind)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame
}

// readLoop decodes frames from one peer connection into the local
// mailbox until EOF (peer closed) or a transport-shutdown error. Inbound
// counters are bumped before the mailbox put, so a blocking receive that
// returns a message happens-after its counters were updated (the mailbox
// mutex orders them) — which is what lets tests read exact counts right
// after a collective completes.
func (t *tcpTransport) readLoop(p *tcpPeer) {
	defer t.wg.Done()
	conn := p.conn
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [frameHeaderLen]byte // len + src + commID + tag + kind
	for {
		if _, err := io.ReadFull(br, hdr[:4]); err != nil {
			if err == io.EOF || t.closing.Load() {
				return
			}
			panic(fmt.Sprintf("mpi: tcp rank %d: reading frame header: %v", t.self, err))
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n < frameHeaderLen-4 {
			panic(fmt.Sprintf("mpi: tcp rank %d: frame of %d bytes", t.self, n))
		}
		if _, err := io.ReadFull(br, hdr[4:frameHeaderLen]); err != nil {
			panic(fmt.Sprintf("mpi: tcp rank %d: reading frame: %v", t.self, err))
		}
		src := int(int32(binary.LittleEndian.Uint32(hdr[4:])))
		commID := int64(binary.LittleEndian.Uint64(hdr[8:]))
		tag := int(int32(binary.LittleEndian.Uint32(hdr[16:])))
		kind := wireKind(hdr[20])
		body := make([]byte, n-(frameHeaderLen-4))
		if _, err := io.ReadFull(br, body); err != nil {
			panic(fmt.Sprintf("mpi: tcp rank %d: reading frame body: %v", t.self, err))
		}
		payload, err := decodePayload(kind, body)
		if err != nil {
			panic(fmt.Sprintf("mpi: tcp rank %d: %v", t.self, err))
		}
		p.framesIn.Add(1)
		p.bytesIn.Add(int64(n) + 4)
		p.payloadIn.Add(int64(len(body)))
		t.box.put(message{src: src, commID: commID, tag: tag, payload: payload})
	}
}

// Close flushes every peer's outbound queue and half-closes the write
// sides; readers drain until each peer does the same. It blocks until
// the rank's transport goroutines exit, so a returned Close means every
// byte this rank sent is on the wire and every byte peers sent it has
// been matched or parked in the mailbox.
func (t *tcpTransport) Close() error {
	t.closing.Store(true)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.cond.Signal()
	}
	t.wg.Wait()
	return nil
}

// ConnectTCP bootstraps this rank's TCP transport (see the protocol at
// the top of the file) and returns its world communicator. The caller
// owns the communicator's lifetime: Close it after the last operation.
func ConnectTCP(cfg TCPConfig) (*Comm, error) {
	t, err := dialWorld(cfg)
	if err != nil {
		return nil, err
	}
	group := make([]int, cfg.World)
	for i := range group {
		group[i] = i
	}
	return &Comm{t: t, id: 1, rank: cfg.Rank, group: group}, nil
}

func dialWorld(cfg TCPConfig) (*tcpTransport, error) {
	if cfg.World <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("mpi: tcp rank %d of world %d", cfg.Rank, cfg.World)
	}
	if cfg.Coord == "" && cfg.coordLn == nil {
		return nil, errors.New("mpi: tcp transport needs a coordinator address")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	deadline := time.Now().Add(cfg.Timeout)

	t := &tcpTransport{self: cfg.Rank, world: cfg.World, box: newMailbox(),
		peers: make([]*tcpPeer, cfg.World)}
	if cfg.World == 1 {
		if cfg.coordLn != nil {
			cfg.coordLn.Close()
		}
		return t, nil
	}

	bind := cfg.Bind
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	peerLn, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp peer listener: %w", err)
	}
	defer peerLn.Close()
	myAddr := advertisedAddr(peerLn.Addr().String(), cfg.Advertise)

	addrs, retries, err := rendezvous(cfg, myAddr, deadline)
	if err != nil {
		return nil, err
	}
	t.dialRetries.Add(int64(retries))

	// Accept links from every higher rank while dialing every lower one.
	type accepted struct {
		rank int
		conn net.Conn
		err  error
	}
	nAccept := cfg.World - 1 - cfg.Rank
	accCh := make(chan accepted, nAccept)
	for i := 0; i < nAccept; i++ {
		go func() {
			if dl, ok := peerLn.(*net.TCPListener); ok {
				dl.SetDeadline(deadline)
			}
			conn, err := peerLn.Accept()
			if err != nil {
				accCh <- accepted{err: err}
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				accCh <- accepted{err: err}
				return
			}
			accCh <- accepted{rank: int(binary.LittleEndian.Uint32(hdr[:])), conn: conn}
		}()
	}
	for j := 0; j < cfg.Rank; j++ {
		conn, retries, err := dialRetry(addrs[j], deadline)
		t.dialRetries.Add(int64(retries))
		if err != nil {
			return nil, fmt.Errorf("mpi: tcp rank %d dialing rank %d at %s: %w", cfg.Rank, j, addrs[j], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(cfg.Rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("mpi: tcp rank %d identifying to rank %d: %w", cfg.Rank, j, err)
		}
		t.addPeer(j, conn)
	}
	for i := 0; i < nAccept; i++ {
		a := <-accCh
		if a.err != nil {
			return nil, fmt.Errorf("mpi: tcp rank %d accepting peer link: %w", cfg.Rank, a.err)
		}
		if a.rank <= cfg.Rank || a.rank >= cfg.World || t.peers[a.rank] != nil {
			return nil, fmt.Errorf("mpi: tcp rank %d: unexpected peer identity %d", cfg.Rank, a.rank)
		}
		t.addPeer(a.rank, a.conn)
	}
	return t, nil
}

// addPeer registers a live connection and starts its reader and writer.
func (t *tcpTransport) addPeer(rank int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &tcpPeer{conn: conn}
	p.cond = sync.NewCond(&p.mu)
	t.peers[rank] = p
	t.wg.Add(2)
	go p.writeLoop(&t.wg)
	go t.readLoop(p)
}

// advertisedAddr combines a bound address with an optional advertise
// host: the port always comes from the actual listener.
func advertisedAddr(bound, advertise string) string {
	if advertise == "" {
		return bound
	}
	_, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if strings.Contains(advertise, ":") && !strings.HasPrefix(advertise, "[") {
		advertise = "[" + advertise + "]" // bare IPv6
	}
	return net.JoinHostPort(strings.Trim(advertise, "[]"), port)
}

// rendezvous runs the rank-0 bootstrap exchange and returns the world
// rank -> peer address table plus the number of failed coordinator dial
// attempts (always 0 on rank 0, which listens).
func rendezvous(cfg TCPConfig, myAddr string, deadline time.Time) ([]string, int, error) {
	if cfg.Rank == 0 {
		ln := cfg.coordLn
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", cfg.Coord)
			if err != nil {
				return nil, 0, fmt.Errorf("mpi: tcp coordinator listener on %s: %w", cfg.Coord, err)
			}
		}
		defer ln.Close()
		if dl, ok := ln.(*net.TCPListener); ok {
			dl.SetDeadline(deadline)
		}
		addrs := make([]string, cfg.World)
		addrs[0] = myAddr
		conns := make([]net.Conn, 0, cfg.World-1)
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for have := 1; have < cfg.World; have++ {
			conn, err := ln.Accept()
			if err != nil {
				return nil, 0, fmt.Errorf("mpi: coordinator waiting for %d more ranks: %w", cfg.World-have, err)
			}
			conn.SetDeadline(deadline)
			conns = append(conns, conn)
			rank, addr, err := readHello(conn)
			if err != nil {
				return nil, 0, fmt.Errorf("mpi: coordinator hello: %w", err)
			}
			if rank <= 0 || rank >= cfg.World || addrs[rank] != "" {
				return nil, 0, fmt.Errorf("mpi: coordinator: bad or duplicate hello from rank %d", rank)
			}
			addrs[rank] = addr
		}
		table := encodeTable(addrs)
		for _, conn := range conns {
			if _, err := conn.Write(table); err != nil {
				return nil, 0, fmt.Errorf("mpi: coordinator sending table: %w", err)
			}
		}
		return addrs, 0, nil
	}

	conn, retries, err := dialRetry(cfg.Coord, deadline)
	if err != nil {
		return nil, retries, fmt.Errorf("mpi: rank %d dialing coordinator %s: %w", cfg.Rank, cfg.Coord, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if err := writeHello(conn, cfg.Rank, myAddr); err != nil {
		return nil, retries, fmt.Errorf("mpi: rank %d hello: %w", cfg.Rank, err)
	}
	addrs, err := decodeTable(conn, cfg.World)
	if err != nil {
		return nil, retries, fmt.Errorf("mpi: rank %d receiving address table: %w", cfg.Rank, err)
	}
	return addrs, retries, nil
}

func writeHello(conn net.Conn, rank int, addr string) error {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(addr)))
	buf = append(buf, addr...)
	_, err := conn.Write(buf)
	return err
}

func readHello(conn net.Conn) (rank int, addr string, err error) {
	var hdr [8]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, "", err
	}
	rank = int(binary.LittleEndian.Uint32(hdr[:4]))
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > 4096 {
		return 0, "", fmt.Errorf("address of %d bytes", n)
	}
	b := make([]byte, n)
	if _, err = io.ReadFull(conn, b); err != nil {
		return 0, "", err
	}
	return rank, string(b), nil
}

func encodeTable(addrs []string) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(addrs)))
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeTable(r io.Reader, world int) ([]string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if n := int(binary.LittleEndian.Uint32(hdr[:])); n != world {
		return nil, fmt.Errorf("table of %d ranks, world is %d", n, world)
	}
	addrs := make([]string, world)
	for i := range addrs {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 4096 {
			return nil, fmt.Errorf("address of %d bytes", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		addrs[i] = string(b)
	}
	return addrs, nil
}

// dialRetry dials addr until it succeeds or the deadline passes —
// launchers start ranks in arbitrary order, so early dials race the
// listener coming up. retries counts the failed attempts.
func dialRetry(addr string, deadline time.Time) (conn net.Conn, retries int, err error) {
	backoff := 5 * time.Millisecond
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, retries, nil
		}
		retries++
		if time.Now().Add(backoff).After(deadline) {
			return nil, retries, err
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// RunTCP is Run over the TCP transport: it starts size ranks as
// goroutines in this process, each with its own transport bootstrapped
// through a real localhost rendezvous and carrying every message through
// the full serialize/frame/socket path. Tests and benchmarks use it to
// exercise the wire without spawning processes; cmd/dnsrun is the
// process-per-rank launcher.
func RunTCP(size int, fn func(c *Comm)) {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("mpi: RunTCP coordinator: %v", err))
	}
	coord := ln.Addr().String()
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		cfg := TCPConfig{Rank: r, World: size, Coord: coord}
		if r == 0 {
			cfg.coordLn = ln
		}
		go func() {
			defer wg.Done()
			c, err := ConnectTCP(cfg)
			if err != nil {
				panic(fmt.Sprintf("mpi: RunTCP rank %d: %v", cfg.Rank, err))
			}
			fn(c)
			c.Close()
		}()
	}
	wg.Wait()
}
