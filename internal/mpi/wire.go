package mpi

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
)

// Payload codec for the TCP transport. The channel transport moves
// payloads by reference, so the concrete slice types callers send never
// mattered; on the wire each payload is serialized into the data frame at
// send time — the copy-at-the-frame-boundary the transport contract
// requires — and reconstructed on the receiving side as exactly the type
// the sender passed, so Recv[T]'s type assertion behaves identically on
// both transports.
//
// The hot types of the simulation ([]complex128 pencil wire traffic,
// []float64 reductions, []byte barriers, []int/[]int64 tables, []string
// control messages, the split tuples) are hand-coded little-endian fast
// paths; anything else rides a gob fallback that packages opt into with
// RegisterWire (internal/ckpt registers its shard metadata this way).
// Floating-point values travel as raw IEEE-754 bits, which is what makes
// a TCP trajectory bit-identical to a channel-transport one.

// wireKind tags the encoding of a frame's payload.
type wireKind byte

const (
	wireBytes      wireKind = 1 + iota // []byte, raw
	wireFloat64                        // []float64, 8-byte LE bit patterns
	wireComplex128                     // []complex128, 16-byte LE bit pairs
	wireInt                            // []int, as int64 LE
	wireInt64                          // []int64, LE
	wireString                         // []string, u32 count then u32-len-prefixed
	wireSplit                          // []splitTuple, 3 x int64 LE each
	wireGob                            // registered type: u16 name len, name, gob stream
)

// wireCodec is one registered gob-fallback type.
type wireCodec struct {
	enc func(payload any) ([]byte, error)
	dec func(data []byte) (any, error)
}

var (
	wireMu  sync.RWMutex
	wireReg = map[string]wireCodec{}
)

// RegisterWire makes []T transportable over the wire via gob. The
// registry key is the payload's fmt %T name, so registration is once per
// concrete element type, in an init function of the package that owns T.
// Types whose fields gob cannot encode (unexported fields) need a
// hand-coded kind instead. Hot-path types should not go through here:
// gob re-describes the type per message.
func RegisterWire[T any]() {
	var z []T
	name := fmt.Sprintf("%T", z)
	wireMu.Lock()
	defer wireMu.Unlock()
	wireReg[name] = wireCodec{
		enc: func(payload any) ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(payload.([]T)); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		dec: func(data []byte) (any, error) {
			var v []T
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
}

// appendPayload serializes payload onto dst and returns the extended
// buffer plus the kind byte that was used. It panics on types no codec
// covers: that is a programming error (a new message type was introduced
// without teaching the wire about it), not a runtime condition.
func appendPayload(dst []byte, payload any) ([]byte, wireKind) {
	switch p := payload.(type) {
	case []byte:
		return append(dst, p...), wireBytes
	case []float64:
		for _, v := range p {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst, wireFloat64
	case []complex128:
		for _, v := range p {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(v)))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(v)))
		}
		return dst, wireComplex128
	case []int:
		for _, v := range p {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v)))
		}
		return dst, wireInt
	case []int64:
		for _, v := range p {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		return dst, wireInt64
	case []string:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
		for _, s := range p {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
			dst = append(dst, s...)
		}
		return dst, wireString
	case []splitTuple:
		for _, t := range p {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(t.Color)))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(t.Key)))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(t.Rank)))
		}
		return dst, wireSplit
	default:
		name := fmt.Sprintf("%T", payload)
		wireMu.RLock()
		codec, ok := wireReg[name]
		wireMu.RUnlock()
		if !ok {
			panic(fmt.Sprintf("mpi: no wire codec for payload type %s (add a fast path in wire.go or call mpi.RegisterWire)", name))
		}
		enc, err := codec.enc(payload)
		if err != nil {
			panic(fmt.Sprintf("mpi: wire-encoding %s: %v", name, err))
		}
		if len(name) > 0xffff {
			panic("mpi: wire type name too long")
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
		dst = append(dst, name...)
		return append(dst, enc...), wireGob
	}
}

// decodePayload reconstructs a payload from its wire form. data must not
// be retained: slices are copied out.
func decodePayload(kind wireKind, data []byte) (any, error) {
	switch kind {
	case wireBytes:
		return append(make([]byte, 0, len(data)), data...), nil
	case wireFloat64:
		if len(data)%8 != 0 {
			return nil, fmt.Errorf("mpi: float64 payload of %d bytes", len(data))
		}
		out := make([]float64, len(data)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return out, nil
	case wireComplex128:
		if len(data)%16 != 0 {
			return nil, fmt.Errorf("mpi: complex128 payload of %d bytes", len(data))
		}
		out := make([]complex128, len(data)/16)
		for i := range out {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			out[i] = complex(re, im)
		}
		return out, nil
	case wireInt:
		if len(data)%8 != 0 {
			return nil, fmt.Errorf("mpi: int payload of %d bytes", len(data))
		}
		out := make([]int, len(data)/8)
		for i := range out {
			out[i] = int(int64(binary.LittleEndian.Uint64(data[i*8:])))
		}
		return out, nil
	case wireInt64:
		if len(data)%8 != 0 {
			return nil, fmt.Errorf("mpi: int64 payload of %d bytes", len(data))
		}
		out := make([]int64, len(data)/8)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return out, nil
	case wireString:
		if len(data) < 4 {
			return nil, fmt.Errorf("mpi: string payload of %d bytes", len(data))
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if len(data) < 4 {
				return nil, fmt.Errorf("mpi: truncated string payload")
			}
			l := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if len(data) < l {
				return nil, fmt.Errorf("mpi: truncated string payload")
			}
			out = append(out, string(data[:l]))
			data = data[l:]
		}
		return out, nil
	case wireSplit:
		if len(data)%24 != 0 {
			return nil, fmt.Errorf("mpi: splitTuple payload of %d bytes", len(data))
		}
		out := make([]splitTuple, len(data)/24)
		for i := range out {
			out[i] = splitTuple{
				Color: int(int64(binary.LittleEndian.Uint64(data[i*24:]))),
				Key:   int(int64(binary.LittleEndian.Uint64(data[i*24+8:]))),
				Rank:  int(int64(binary.LittleEndian.Uint64(data[i*24+16:]))),
			}
		}
		return out, nil
	case wireGob:
		if len(data) < 2 {
			return nil, fmt.Errorf("mpi: truncated gob payload")
		}
		nl := int(binary.LittleEndian.Uint16(data))
		if len(data) < 2+nl {
			return nil, fmt.Errorf("mpi: truncated gob type name")
		}
		name := string(data[2 : 2+nl])
		wireMu.RLock()
		codec, ok := wireReg[name]
		wireMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("mpi: received wire type %s with no local RegisterWire", name)
		}
		return codec.dec(data[2+nl:])
	default:
		return nil, fmt.Errorf("mpi: unknown wire kind %d", kind)
	}
}
