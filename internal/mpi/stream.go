package mpi

import "fmt"

// Stream is a per-peer-progress exchange: a batch of posted receives whose
// completions are delivered one at a time, in arrival order, so a consumer
// can process peer p's block the moment it lands instead of waiting for the
// whole collective to drain. It is the communication half of the pipelined
// transpose (pencil.TransposePlan.RunPipelined): the caller posts every
// receive of an exchange up front, fires sends as their data is packed, and
// interleaves Next with useful work on whatever has already arrived.
//
// A Stream owns preallocated request storage and a buffered completion
// channel sized to its capacity, so the steady state performs no per-message
// allocation on the receive side (sends still pay the eager-copy the
// runtime requires). Streams are reused across exchanges with Reset and are
// not safe for concurrent use by multiple goroutines; ranks never share one.
//
// Matching uses a reserved tag, so stream traffic cannot be confused with
// user point-to-point messages or other collectives on the same
// communicator. Within one (sender, communicator) pair the runtime's
// non-overtaking order guarantees messages complete posted receives in post
// order, which is what lets the caller identify "chunk c from peer b" purely
// by the posted index.
type Stream struct {
	c      *Comm
	notify chan int
	reqs   []Request
	srcs   []int
	posted int
	taken  int
}

// NewStream returns a stream on c able to carry up to capacity in-flight
// posted receives between Resets.
func NewStream(c *Comm, capacity int) *Stream {
	if capacity <= 0 {
		panic(fmt.Sprintf("mpi: NewStream capacity %d", capacity))
	}
	return &Stream{
		c:      c,
		notify: make(chan int, capacity),
		reqs:   make([]Request, capacity),
		srcs:   make([]int, capacity),
	}
}

// Cap returns the stream's posted-receive capacity.
func (s *Stream) Cap() int { return len(s.reqs) }

// Post posts a nonblocking receive from communicator rank src and returns
// its index: the value Next later delivers when that message lands.
// Receives from the same source complete in post order (non-overtaking).
func (s *Stream) Post(src int) int {
	if s.posted >= len(s.reqs) {
		panic(fmt.Sprintf("mpi: Stream posted %d receives, capacity %d", s.posted+1, len(s.reqs)))
	}
	s.c.checkRank(src)
	idx := s.posted
	s.posted++
	s.srcs[idx] = src
	req := &s.reqs[idx]
	req.payload = nil
	s.c.myBox().postRecvNotify(s.c.group[src], s.c.id, tagStream, req, s.notify, idx)
	return idx
}

// Next blocks until one of the posted receives completes and returns its
// index, the sending communicator rank, and the received payload. Arrival
// order across peers is whatever the senders produced; the caller maps idx
// back to its own (chunk, peer) bookkeeping.
func (s *Stream) Next() (idx, src int, payload any) {
	if s.taken >= s.posted {
		panic("mpi: Stream Next with no outstanding receives")
	}
	idx = <-s.notify
	s.taken++
	payload = s.reqs[idx].payload
	s.reqs[idx].payload = nil // allow the message copy to be collected
	return idx, s.srcs[idx], payload
}

// Outstanding returns the number of posted receives not yet taken by Next.
func (s *Stream) Outstanding() int { return s.posted - s.taken }

// Reset prepares the stream for the next exchange. Every posted receive
// must have been taken: resetting with receives in flight would let a stale
// completion corrupt the next exchange's index space.
func (s *Stream) Reset() {
	if s.taken != s.posted {
		panic(fmt.Sprintf("mpi: Stream reset with %d of %d receives undrained", s.posted-s.taken, s.posted))
	}
	s.posted, s.taken = 0, 0
}

// StreamSend sends data (copied, eager) to communicator rank dst on the
// stream tag, to be matched by a Stream.Post on the receiving rank.
func StreamSend[T any](c *Comm, dst int, data []T) {
	cp := append([]T(nil), data...)
	c.send(dst, tagStream, cp)
}

// StreamSendPrepacked sends a caller-owned, pre-boxed payload (an `any`
// holding a []T) to communicator rank dst on the stream tag, paying neither
// StreamSend's eager copy nor the per-call interface boxing — the truly
// zero-allocation send for hot pipelined exchanges.
//
// The zero-copy contract: the receiver reads the very slice the caller
// packed, so the caller must not rewrite that memory until every receiver
// is guaranteed to have consumed it. The pipelined transpose meets the
// contract by parity double-buffering: a wire buffer is reused two
// exchanges later, and a peer cannot lag a full exchange behind (its sends
// in exchange N+1 happen only after it drained every receive of exchange
// N), so the reuse can never race a read.
func StreamSendPrepacked(c *Comm, dst int, payload any) {
	c.send(dst, tagStream, payload)
}
