package mpi

import (
	"errors"
	"testing"
)

// TestStreamArrivalOrder: completions arrive in send order per source and
// identify their posted index, source, and payload; Reset re-arms the
// stream for the next exchange without reallocation.
func TestStreamArrivalOrder(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		const rounds = 3
		const perPeer = 2
		s := NewStream(c, perPeer*(p-1))
		for round := 0; round < rounds; round++ {
			// Post chunk-major: for each chunk, one receive per remote peer.
			type want struct{ src, chunk int }
			wants := make([]want, 0, perPeer*(p-1))
			for chunk := 0; chunk < perPeer; chunk++ {
				for sft := 1; sft < p; sft++ {
					src := (c.Rank() - sft + p) % p
					idx := s.Post(src)
					if idx != len(wants) {
						t.Errorf("rank %d: Post returned %d, want %d", c.Rank(), idx, len(wants))
					}
					wants = append(wants, want{src, chunk})
				}
			}
			// Send chunk-major to every peer: payload encodes (me, chunk).
			for chunk := 0; chunk < perPeer; chunk++ {
				for sft := 1; sft < p; sft++ {
					dst := (c.Rank() + sft) % p
					StreamSend(c, dst, []int{c.Rank(), chunk, round})
				}
			}
			seen := make(map[int]int) // src -> next expected chunk
			for i := 0; i < perPeer*(p-1); i++ {
				idx, src, payload := s.Next()
				w := wants[idx]
				if src != w.src {
					t.Errorf("rank %d: idx %d src %d, want %d", c.Rank(), idx, src, w.src)
				}
				msg := payload.([]int)
				if msg[0] != src {
					t.Errorf("rank %d: payload from %d claims sender %d", c.Rank(), src, msg[0])
				}
				// Non-overtaking: chunk k from src completes the k-th posted
				// receive for src, in arrival order per source.
				if msg[1] != seen[src] {
					t.Errorf("rank %d: src %d delivered chunk %d, want %d", c.Rank(), src, msg[1], seen[src])
				}
				if msg[1] != w.chunk {
					t.Errorf("rank %d: idx %d carries chunk %d, want %d", c.Rank(), idx, msg[1], w.chunk)
				}
				if msg[2] != round {
					t.Errorf("rank %d: round %d message in round %d", c.Rank(), msg[2], round)
				}
				seen[src]++
			}
			if s.Outstanding() != 0 {
				t.Errorf("rank %d: %d outstanding after drain", c.Rank(), s.Outstanding())
			}
			s.Reset()
		}
		c.Barrier()
	})
}

// TestStreamResetUndrained: Reset with receives in flight is a programming
// error and must panic rather than corrupt the next exchange.
func TestStreamResetUndrained(t *testing.T) {
	Run(2, func(c *Comm) {
		s := NewStream(c, 1)
		s.Post(1 - c.Rank())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: Reset with undrained receives did not panic", c.Rank())
				}
			}()
			s.Reset()
		}()
		// Drain properly so both ranks exit cleanly.
		StreamSend(c, 1-c.Rank(), []byte{1})
		s.Next()
	})
}

// TestAlltoallvCountMismatch: inconsistent count tables across ranks must
// surface as a *CountMismatchError from the Into forms — not a panic — for
// both the pairwise and the overlapped exchange.
func TestAlltoallvCountMismatch(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		name := "pairwise"
		if overlap {
			name = "overlap"
		}
		t.Run(name, func(t *testing.T) {
			Run(2, func(c *Comm) {
				// Both ranks send 1 element to rank 0 and 2 to rank 1.
				sendCounts := []int{1, 2}
				sendDispls := []int{0, 1}
				var recvCounts, recvDispls []int
				if c.Rank() == 0 {
					// Correct would be {1, 1}; rank 0 instead claims 5 from
					// rank 1, which sends only 1.
					recvCounts = []int{1, 5}
					recvDispls = []int{0, 1}
				} else {
					recvCounts = []int{2, 2}
					recvDispls = []int{0, 2}
				}
				data := []float64{10, 20, 30}
				out := make([]float64, 6)
				var err error
				if overlap {
					_, err = AlltoallvOverlapInto(c, out, data, sendCounts, sendDispls, recvCounts, recvDispls)
				} else {
					_, err = AlltoallvInto(c, out, data, sendCounts, sendDispls, recvCounts, recvDispls)
				}
				if c.Rank() == 0 {
					var cm *CountMismatchError
					if !errors.As(err, &cm) {
						t.Fatalf("rank 0: err = %v, want *CountMismatchError", err)
					}
					if cm.Src != 1 || cm.Want != 5 || cm.Got != 1 || cm.Rank != 0 {
						t.Errorf("rank 0: mismatch fields %+v", cm)
					}
				} else if err != nil {
					t.Errorf("rank 1: unexpected error %v", err)
				}
			})
		})
	}
}

// TestAlltoallvWrapperPanics: the non-Into convenience wrappers keep the
// collective contract that inconsistent tables are a programming error.
func TestAlltoallvWrapperPanics(t *testing.T) {
	Run(2, func(c *Comm) {
		defer func() {
			r := recover()
			if c.Rank() == 0 && r == nil {
				t.Errorf("rank 0: Alltoallv with mismatched counts did not panic")
			}
		}()
		recvCounts := []int{1, 1}
		if c.Rank() == 0 {
			recvCounts = []int{1, 4}
		}
		Alltoallv(c, []int{1, 2}, []int{1, 1}, []int{0, 1}, recvCounts, []int{0, 1})
	})
}
