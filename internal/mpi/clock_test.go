package mpi

import "testing"

// TestSyncClocksBoundsOffset: all ranks of a RunTCP world share one
// process clock, so the true offset is zero and every estimate must land
// within its own error bound — which the symmetric-path estimator
// guarantees structurally (t2 is taken inside [t1, t3]).
func TestSyncClocksBoundsOffset(t *testing.T) {
	RunTCP(4, func(c *Comm) {
		cs := SyncClocks(c, 8)
		if c.Rank() == 0 {
			if cs != (ClockSync{}) {
				t.Errorf("rank 0 sync %+v, want zero (rank 0 is the reference)", cs)
			}
			return
		}
		if cs.ErrorNs < 0 {
			t.Errorf("rank %d: negative error bound %d", c.Rank(), cs.ErrorNs)
		}
		off := cs.OffsetNs
		if off < 0 {
			off = -off
		}
		if off > cs.ErrorNs {
			t.Errorf("rank %d: offset %d ns outside its own error bound %d ns on a shared clock",
				c.Rank(), cs.OffsetNs, cs.ErrorNs)
		}
	})
}

func TestSyncClocksChannelTransport(t *testing.T) {
	// The collective is transport-agnostic; in-process ranks also share
	// the clock.
	Run(3, func(c *Comm) {
		cs := SyncClocks(c, 4)
		if c.Rank() == 0 {
			return
		}
		off := cs.OffsetNs
		if off < 0 {
			off = -off
		}
		if off > cs.ErrorNs {
			t.Errorf("rank %d: offset %d outside bound %d", c.Rank(), cs.OffsetNs, cs.ErrorNs)
		}
	})
}

func TestSyncClocksSingleRank(t *testing.T) {
	Run(1, func(c *Comm) {
		if cs := SyncClocks(c, 5); cs != (ClockSync{}) {
			t.Errorf("size-1 sync %+v, want zero", cs)
		}
	})
}

func TestGatherHeartbeat(t *testing.T) {
	RunTCP(3, func(c *Comm) {
		data := []int64{int64(c.Rank() * 10), int64(c.Rank()*10 + 1)}
		world, arrivals := GatherHeartbeat(c, 0, data)
		if c.Rank() != 0 {
			if world != nil || arrivals != nil {
				t.Errorf("rank %d: non-root got a gather result", c.Rank())
			}
			return
		}
		if len(world) != 6 || len(arrivals) != 3 {
			t.Fatalf("root got %d values, %d arrivals; want 6, 3", len(world), len(arrivals))
		}
		for r := 0; r < 3; r++ {
			if world[2*r] != int64(r*10) || world[2*r+1] != int64(r*10+1) {
				t.Errorf("rank %d payload %v", r, world[2*r:2*r+2])
			}
			if arrivals[r] <= 0 {
				t.Errorf("rank %d arrival stamp %d, want a wall-clock time", r, arrivals[r])
			}
		}
	})
}
