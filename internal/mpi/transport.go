package mpi

// Transport is the rank-to-rank delivery layer behind a Comm. Everything
// above it — tag matching, non-overtaking order, the nonblocking request
// table that Stream posts into, the collectives, the cartesian topology
// helpers — lives in the shared mailbox machinery and is transport-
// agnostic; a Transport's only job is to route an already-boxed message
// to the destination rank's mailbox. Two implementations exist:
//
//   - the channel transport (the default): every rank is a goroutine in
//     one process and Deliver is a direct put into the destination
//     mailbox, preserving the zero-copy payload semantics the pipelined
//     transpose's prepacked sends rely on;
//   - the TCP transport (tcp.go): one OS process per rank, persistent
//     per-peer connections carrying length-prefixed binary frames, with
//     payloads copied at the frame boundary (wire.go) — the form real
//     distributed runs take.
//
// The interface is deliberately sealed around the unexported message and
// mailbox types: transports are constructed inside this package (Run,
// RunTCP, ConnectTCP) and a Comm never leaks one.
type Transport interface {
	// Self returns the world rank this transport instance serves. Each
	// rank owns its own Transport value, even when (as with the channel
	// transport) ranks share underlying state.
	Self() int
	// WorldSize returns the number of ranks in the world.
	WorldSize() int
	// Deliver routes a message to world rank dst's mailbox. The payload
	// inside m has already been copied per the caller's contract (eager
	// sends copy; prepacked stream sends deliberately do not); a wire
	// transport additionally serializes it at the frame boundary.
	Deliver(dst int, m message)
	// LocalBox returns the mailbox this rank's receives match against.
	LocalBox() *mailbox
	// Name identifies the transport in reports and diagnostics
	// ("chan", "tcp").
	Name() string
	// Close releases transport resources. For the channel transport it
	// is a no-op; for the TCP transport it flushes and half-closes the
	// peer links. Close must be called at most once per rank.
	Close() error
}

// world is the shared state of one in-process channel-transport world:
// one mailbox per rank.
type world struct {
	size  int
	boxes []*mailbox
}

// chanTransport is the default in-process transport: Deliver is a direct
// mailbox put, exactly the seed runtime's semantics (payloads cross rank
// boundaries by reference; generic Send copies first, prepacked stream
// sends share the caller's buffer under the documented parity contract).
type chanTransport struct {
	w    *world
	self int
}

func (t *chanTransport) Self() int              { return t.self }
func (t *chanTransport) WorldSize() int         { return t.w.size }
func (t *chanTransport) Deliver(dst int, m message) { t.w.boxes[dst].put(m) }
func (t *chanTransport) LocalBox() *mailbox     { return t.w.boxes[t.self] }
func (t *chanTransport) Name() string           { return "chan" }
func (t *chanTransport) Close() error           { return nil }

// TransportName returns the name of the transport carrying this
// communicator's traffic ("chan" for the in-process runtime, "tcp" for
// the wire transport); reports stamp it so paired A/B artifacts are
// distinguishable.
func (c *Comm) TransportName() string { return c.t.Name() }

// Close releases the transport behind this communicator. It must be
// called once per rank, after the last communication operation on any
// communicator derived from the same world (derived communicators share
// the rank's transport). Programs run through Run or RunTCP need not
// call it — the runner closes each rank's transport when fn returns.
func (c *Comm) Close() error { return c.t.Close() }
