package mpi

import "channeldns/internal/telemetry"

// Wire-level transport counters. The TCP transport counts every frame it
// enqueues and decodes per peer link (tcp.go); this file is the read
// side: a snapshot type for tests and tools, and the fixed-shape dump
// that rides the end-of-run telemetry gather into the report's wire
// block. The channel transport has no wire and reports nothing.

// WirePeerStats is a snapshot of one peer link's counters.
type WirePeerStats struct {
	// FramesOut/BytesOut/PayloadOut count outbound frames at enqueue time:
	// whole frames, frame bytes including the header, and serialized
	// payload bytes (frame minus the fixed 21-byte header).
	FramesOut, BytesOut, PayloadOut int64
	// FramesIn/BytesIn/PayloadIn are the receive-side counterparts.
	FramesIn, BytesIn, PayloadIn int64
	// QueueHighWater is the deepest the link's writer queue has been.
	QueueHighWater int64
	// SerializeNs is the time spent encoding payloads into frames.
	SerializeNs int64
}

// WireStats is a snapshot of one rank's wire counters across all peers.
type WireStats struct {
	Self, World int
	// DialRetries counts failed bootstrap dial attempts.
	DialRetries int64
	// Peers is indexed by world rank; the self entry is always zero.
	Peers []WirePeerStats
}

// WireStats snapshots the transport's wire counters. ok is false on
// transports without a wire (the in-process channel transport). Counters
// are monotone, so callers diff two snapshots to isolate an interval.
func (c *Comm) WireStats() (WireStats, bool) {
	t, isTCP := c.t.(*tcpTransport)
	if !isTCP {
		return WireStats{}, false
	}
	ws := WireStats{Self: t.self, World: t.world,
		DialRetries: t.dialRetries.Load(),
		Peers:       make([]WirePeerStats, t.world)}
	for r, p := range t.peers {
		if p == nil {
			continue
		}
		ws.Peers[r] = WirePeerStats{
			FramesOut: p.framesOut.Load(), BytesOut: p.bytesOut.Load(), PayloadOut: p.payloadOut.Load(),
			FramesIn: p.framesIn.Load(), BytesIn: p.bytesIn.Load(), PayloadIn: p.payloadIn.Load(),
			QueueHighWater: p.queueHWM.Load(), SerializeNs: p.serializeNs.Load(),
		}
	}
	return ws, true
}

// Dump flattens the snapshot into telemetry's wire-dump layout
// (telemetry.WireDumpLen(world) words) for the cross-process gather.
func (ws WireStats) Dump() []int64 {
	out := make([]int64, telemetry.WireDumpLen(ws.World))
	out[0] = ws.DialRetries
	for r, p := range ws.Peers {
		s := out[1+r*telemetry.WirePeerDumpLen:]
		s[telemetry.WireFramesOut] = p.FramesOut
		s[telemetry.WireBytesOut] = p.BytesOut
		s[telemetry.WirePayloadOut] = p.PayloadOut
		s[telemetry.WireFramesIn] = p.FramesIn
		s[telemetry.WireBytesIn] = p.BytesIn
		s[telemetry.WirePayloadIn] = p.PayloadIn
		s[telemetry.WireQueueHighWater] = p.QueueHighWater
		s[telemetry.WireSerializeNs] = p.SerializeNs
	}
	return out
}
