package mpi

import "fmt"

// CartComm is a communicator with a cartesian process-grid topology, the
// analog of a communicator produced by MPI_cart_create. The paper builds a
// 2-D grid and extracts the row communicator (CommA, used for the x<->z
// transpose) and the column communicator (CommB, used for the z<->y
// transpose and kept node-local for performance).
type CartComm struct {
	*Comm
	dims   []int
	coords []int
}

// CartCreate imposes a row-major cartesian grid with the given dims on the
// communicator. The product of dims must equal the communicator size.
// Every rank must call it.
func (c *Comm) CartCreate(dims []int) *CartComm {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("mpi: invalid cartesian dim %d", d))
		}
		n *= d
	}
	if n != c.size() {
		panic(fmt.Sprintf("mpi: cartesian grid %v has %d slots for %d ranks", dims, n, c.size()))
	}
	cc := &CartComm{Comm: c, dims: append([]int(nil), dims...)}
	cc.coords = cc.RankToCoords(c.rank)
	return cc
}

// Dims returns the grid extents.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the calling rank's grid coordinates.
func (cc *CartComm) Coords() []int { return append([]int(nil), cc.coords...) }

// RankToCoords converts a communicator rank to grid coordinates (row-major:
// the last dimension varies fastest, as in MPI).
func (cc *CartComm) RankToCoords(rank int) []int {
	co := make([]int, len(cc.dims))
	for i := len(cc.dims) - 1; i >= 0; i-- {
		co[i] = rank % cc.dims[i]
		rank /= cc.dims[i]
	}
	return co
}

// CoordsToRank converts grid coordinates to a communicator rank.
func (cc *CartComm) CoordsToRank(co []int) int {
	r := 0
	for i := 0; i < len(cc.dims); i++ {
		r = r*cc.dims[i] + co[i]
	}
	return r
}

// CartSub builds sub-communicators as MPI_cart_sub does: dimensions with
// keep[i] == true remain in the subgrid; ranks sharing all dropped
// coordinates form one sub-communicator, ordered by the kept coordinates.
// Every rank of the parent must call it.
func (cc *CartComm) CartSub(keep []bool) *CartComm {
	if len(keep) != len(cc.dims) {
		panic("mpi: CartSub keep length mismatch")
	}
	color, key := 0, 0
	var subDims []int
	for i, k := range keep {
		if k {
			key = key*cc.dims[i] + cc.coords[i]
			subDims = append(subDims, cc.dims[i])
		} else {
			color = color*cc.dims[i] + cc.coords[i]
		}
	}
	sub := cc.Comm.Split(color, key)
	out := &CartComm{Comm: sub, dims: subDims}
	out.coords = out.RankToCoords(sub.rank)
	return out
}
