package mpi

import (
	"sync"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			Send(c, 1, 5, []float64{1, 2, 3})
		case 1:
			got := Recv[float64](c, 0, 5)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
}

func TestSendBufferReuseSafe(t *testing.T) {
	// Eager semantics: mutating the send buffer after Send must not affect
	// the delivered message.
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int{42}
			Send(c, 1, 0, buf)
			buf[0] = -1
			Send(c, 1, 1, buf)
		} else {
			a := Recv[int](c, 0, 0)
			b := Recv[int](c, 0, 1)
			if a[0] != 42 || b[0] != -1 {
				t.Errorf("got %v %v", a, b)
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []int{1})
			Send(c, 1, 2, []int{2})
		} else {
			// Receive in the reverse order of sending.
			b := Recv[int](c, 0, 2)
			a := Recv[int](c, 0, 1)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("tag matching broken: %v %v", a, b)
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				Send(c, 1, 0, []int{i})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := Recv[int](c, 0, 0); got[0] != i {
					t.Errorf("message %d arrived as %d", i, got[0])
				}
			}
		}
	})
}

func TestSendrecvRing(t *testing.T) {
	const p = 5
	Run(p, func(c *Comm) {
		dst := (c.Rank() + 1) % p
		src := (c.Rank() - 1 + p) % p
		got := Sendrecv(c, dst, 3, []int{c.Rank()}, src, 3)
		if got[0] != src {
			t.Errorf("rank %d got %d want %d", c.Rank(), got[0], src)
		}
	})
}

func TestBarrier(t *testing.T) {
	const p = 7
	var mu sync.Mutex
	phase := make(map[int]int)
	Run(p, func(c *Comm) {
		for it := 0; it < 3; it++ {
			mu.Lock()
			phase[c.Rank()] = it
			// All ranks at the barrier must be within one phase of each other
			// can't be asserted without the barrier; after it, all equal.
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			for r, ph := range phase {
				if ph < it {
					t.Errorf("rank %d passed barrier while rank %d in phase %d < %d", c.Rank(), r, ph, it)
				}
			}
			mu.Unlock()
			c.Barrier()
		}
	})
}

func TestBcastVariousRootsAndSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < p; root += max(1, p/3) {
			Run(p, func(c *Comm) {
				var data []int
				if c.Rank() == root {
					data = []int{root * 100, 7}
				}
				got := Bcast(c, root, data)
				if len(got) != 2 || got[0] != root*100 || got[1] != 7 {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestAllreduce(t *testing.T) {
	const p = 6
	Run(p, func(c *Comm) {
		sum := Allreduce(c, OpSum, []float64{float64(c.Rank()), 1})
		if sum[0] != 15 || sum[1] != 6 {
			t.Errorf("sum got %v", sum)
		}
		mx := Allreduce(c, OpMax, []float64{float64(c.Rank())})
		if mx[0] != 5 {
			t.Errorf("max got %v", mx)
		}
		mn := Allreduce(c, OpMin, []float64{float64(c.Rank() + 3)})
		if mn[0] != 3 {
			t.Errorf("min got %v", mn)
		}
	})
}

func TestGather(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		out := Gather(c, 2, []int{c.Rank() * 10, c.Rank()})
		if c.Rank() == 2 {
			want := []int{0, 0, 10, 1, 20, 2, 30, 3}
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("gather[%d] = %d want %d", i, out[i], want[i])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
}

func TestAlltoall(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		// data[i] = 100*me + i: after exchange, slot i holds 100*i + me.
		data := make([]int, p)
		for i := range data {
			data[i] = 100*c.Rank() + i
		}
		out := Alltoall(c, data, 1)
		for i := 0; i < p; i++ {
			if out[i] != 100*i+c.Rank() {
				t.Errorf("rank %d slot %d: got %d want %d", c.Rank(), i, out[i], 100*i+c.Rank())
			}
		}
	})
}

func TestAlltoallvUneven(t *testing.T) {
	const p = 3
	Run(p, func(c *Comm) {
		me := c.Rank()
		// Rank r sends r+1 copies of value 10*r+dst to each dst.
		sendCounts := make([]int, p)
		sendDispls := make([]int, p)
		var data []int
		for dst := 0; dst < p; dst++ {
			sendDispls[dst] = len(data)
			sendCounts[dst] = me + 1
			for k := 0; k < me+1; k++ {
				data = append(data, 10*me+dst)
			}
		}
		recvCounts := make([]int, p)
		recvDispls := make([]int, p)
		off := 0
		for src := 0; src < p; src++ {
			recvDispls[src] = off
			recvCounts[src] = src + 1
			off += src + 1
		}
		out := Alltoallv(c, data, sendCounts, sendDispls, recvCounts, recvDispls)
		for src := 0; src < p; src++ {
			for k := 0; k < src+1; k++ {
				if got := out[recvDispls[src]+k]; got != 10*src+me {
					t.Errorf("rank %d from %d: got %d want %d", me, src, got, 10*src+me)
				}
			}
		}
	})
}

func TestSplitRowsAndColumns(t *testing.T) {
	// 6 ranks -> 2x3 grid by hand using Split.
	Run(6, func(c *Comm) {
		row := c.Rank() / 3
		col := c.Rank() % 3
		rowComm := c.Split(row, col)
		if rowComm.Size() != 3 || rowComm.Rank() != col {
			t.Errorf("rank %d: row comm size %d rank %d", c.Rank(), rowComm.Size(), rowComm.Rank())
		}
		colComm := c.Split(10+col, row)
		if colComm.Size() != 2 || colComm.Rank() != row {
			t.Errorf("rank %d: col comm size %d rank %d", c.Rank(), colComm.Size(), colComm.Rank())
		}
		// Communicators are independent message spaces.
		sum := Allreduce(rowComm, OpSum, []float64{float64(c.Rank())})
		want := float64(3*row*3 + 3) // rows {0,1,2}->3, {3,4,5}->12
		if row == 1 {
			want = 12
		} else {
			want = 3
		}
		if sum[0] != want {
			t.Errorf("rank %d row sum %g want %g", c.Rank(), sum[0], want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	Run(4, func(c *Comm) {
		color := -1
		if c.Rank()%2 == 0 {
			color = 0
		}
		sub := c.Split(color, c.Rank())
		if c.Rank()%2 == 0 {
			if sub == nil || sub.Size() != 2 {
				t.Errorf("rank %d: expected sub of size 2", c.Rank())
			}
		} else if sub != nil {
			t.Errorf("rank %d: expected nil comm", c.Rank())
		}
	})
}

func TestCartCreateAndSub(t *testing.T) {
	// The paper's Figure 4 setup: 128 tasks as an 8x16 grid; CommA is the
	// row (16 ranks), CommB the column (8 ranks).
	Run(128, func(c *Comm) {
		cart := c.CartCreate([]int{8, 16})
		co := cart.Coords()
		if got := cart.CoordsToRank(co); got != c.Rank() {
			t.Errorf("coords roundtrip: %d != %d", got, c.Rank())
		}
		commA := cart.CartSub([]bool{false, true})
		commB := cart.CartSub([]bool{true, false})
		if commA.Size() != 16 || commB.Size() != 8 {
			t.Errorf("sub sizes %d %d", commA.Size(), commB.Size())
		}
		if commA.Rank() != co[1] || commB.Rank() != co[0] {
			t.Errorf("sub ranks %d %d coords %v", commA.Rank(), commB.Rank(), co)
		}
		// Row members share coord 0; verify via allreduce of coord 0.
		mx := Allreduce(commA.Comm, OpMax, []int64{int64(co[0])})
		mn := Allreduce(commA.Comm, OpMin, []int64{int64(co[0])})
		if mx[0] != int64(co[0]) || mn[0] != int64(co[0]) {
			t.Errorf("CommA mixes rows: %v %v vs %d", mx, mn, co[0])
		}
	})
}

func TestAlltoallOnSubcommunicators(t *testing.T) {
	Run(12, func(c *Comm) {
		cart := c.CartCreate([]int{3, 4})
		commA := cart.CartSub([]bool{false, true}) // 4 ranks per row
		data := make([]int, commA.Size())
		for i := range data {
			data[i] = 1000*cart.Coords()[0] + 10*commA.Rank() + i
		}
		out := Alltoall(commA.Comm, data, 1)
		for i := range out {
			want := 1000*cart.Coords()[0] + 10*i + commA.Rank()
			if out[i] != want {
				t.Errorf("row %d rank %d slot %d: got %d want %d",
					cart.Coords()[0], commA.Rank(), i, out[i], want)
			}
		}
	})
}

func BenchmarkAlltoall64Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(64, func(c *Comm) {
			data := make([]complex128, 64*32)
			Alltoall(c, data, 32)
		})
	}
}
