package mpi

import "time"

// Cross-rank clock alignment. On the TCP transport every rank is its own
// OS process with its own monotonic clock epoch, so per-rank trace
// timestamps cannot be laid on one timeline without an offset estimate.
// SyncClocks runs the classic NTP-style ping-pong against rank 0: the
// client stamps t1, rank 0 stamps t2 on receipt and echoes it, the client
// stamps t3 on return. Assuming the symmetric-path model, rank 0's clock
// read t2 happened at local time t1 + RTT/2, so
//
//	offset = t2 - (t1 + RTT/2)      (add offset to local time to get
//	                                 rank 0's timeline)
//
// with error bounded by RTT/2: wherever inside the round trip t2 was
// actually taken, it cannot be further than that from the midpoint. Over
// several rounds the minimum-RTT sample is kept — the round least
// polluted by queueing — shrinking both the error bound and the bias.
//
// Both SyncClocks and GatherHeartbeat are deliberately uninstrumented
// (no telemetry spans or comm credits): they are the observability
// plane's own traffic, and counting it would perturb the comm tables the
// plane exists to report.

// ClockSync is a rank's estimated clock offset relative to rank 0.
type ClockSync struct {
	// OffsetNs added to this rank's wall-clock nanoseconds yields rank 0's
	// timeline. Zero on rank 0 by construction.
	OffsetNs int64
	// ErrorNs bounds the estimate: half the round-trip time of the best
	// sampling round.
	ErrorNs int64
}

// SyncClocks estimates every rank's clock offset against rank 0 over the
// given number of ping-pong rounds (minimum 1). It is a collective: every
// rank of the communicator must call it. Rank 0 serves echoes in whatever
// order the pings arrive, so the cost is one RTT per round per rank,
// serialized only through rank 0's mailbox.
func SyncClocks(c *Comm, rounds int) ClockSync {
	if rounds < 1 {
		rounds = 1
	}
	if c.size() == 1 {
		return ClockSync{}
	}
	if c.rank == 0 {
		// Serve (P-1)*rounds echoes: each ping carries the sender's comm
		// rank (sends under one tag from many ranks may interleave; the
		// payload routes the reply).
		for i := 0; i < (c.size()-1)*rounds; i++ {
			ping := c.recv(AnySource, tagClock).([]int64)
			c.send(int(ping[0]), tagClock, []int64{time.Now().UnixNano()})
		}
		return ClockSync{}
	}
	best := ClockSync{ErrorNs: 1<<63 - 1}
	me := []int64{int64(c.rank)}
	for i := 0; i < rounds; i++ {
		t1 := time.Now()
		c.send(0, tagClock, me)
		t2 := c.recv(0, tagClock).([]int64)[0]
		rtt := time.Since(t1)
		if half := int64(rtt) / 2; half < best.ErrorNs {
			best = ClockSync{OffsetNs: t2 - (t1.UnixNano() + half), ErrorNs: half}
		}
	}
	return best
}

// GatherHeartbeat is Gather for the live-dashboard heartbeat: every rank
// contributes a fixed-shape []int64 (telemetry dump, optionally with a
// wire dump appended) on a reserved tag, and the root returns the
// concatenated payloads plus its own receive timestamp per rank — the
// "last heard" input to staleness detection. Non-root ranks return
// (nil, nil). All payloads must have equal length, like Gather.
func GatherHeartbeat(c *Comm, root int, data []int64) (world []int64, arrivalUnixNs []int64) {
	if c.rank != root {
		cp := append([]int64(nil), data...)
		c.send(root, tagHeartbeat, cp)
		return nil, nil
	}
	world = make([]int64, len(data)*c.size())
	arrivalUnixNs = make([]int64, c.size())
	copy(world[root*len(data):], data)
	arrivalUnixNs[root] = time.Now().UnixNano()
	for i := 0; i < c.size(); i++ {
		if i == root {
			continue
		}
		in := c.recv(i, tagHeartbeat).([]int64)
		arrivalUnixNs[i] = time.Now().UnixNano()
		copy(world[i*len(data):], in)
	}
	return world, arrivalUnixNs
}
