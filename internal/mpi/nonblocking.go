package mpi

// Nonblocking point-to-point operations. Sends are eager in this runtime,
// so Isend completes immediately; Irecv posts a receive that is matched in
// MPI order — against queued messages first, then against arrivals, with
// posted receives served FIFO per (source, tag, communicator) so that the
// non-overtaking guarantee extends to nonblocking traffic. The overlapped
// transpose variant in package pencil is built on these.

// Request represents a pending nonblocking operation. Wait blocks until it
// completes and returns the received payload (nil for sends).
type Request struct {
	done    chan struct{}
	payload any
}

// Wait blocks until the operation completes.
func (r *Request) Wait() {
	<-r.done
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// pendingRecv is a posted receive awaiting a matching message. A non-nil
// notify marks a stream receive: delivery sends idx on notify (buffered by
// the owning Stream, so the send never blocks) instead of closing req.done.
type pendingRecv struct {
	src    int // world rank or AnySource
	commID int64
	tag    int
	req    *Request
	notify chan<- int
	idx    int
}

// postRecv matches an already-queued message or registers the receive for
// fulfillment by a future put. FIFO per matching class.
func (mb *mailbox) postRecv(src int, commID int64, tag int) *Request {
	req := &Request{done: make(chan struct{})}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if m.commID == commID &&
			(src == AnySource || m.src == src) &&
			(tag == AnyTag || m.tag == tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			req.payload = m.payload
			close(req.done)
			return req
		}
	}
	mb.pending = append(mb.pending, pendingRecv{src: src, commID: commID, tag: tag, req: req})
	return req
}

// postRecvNotify posts a stream receive on a caller-owned request: a queued
// matching message completes it immediately, otherwise a future put does.
// Either way the completion is announced by sending idx on notify rather
// than by closing req.done, so the request (and its payload slot) can be
// reused across exchanges without re-making channels.
func (mb *mailbox) postRecvNotify(src int, commID int64, tag int, req *Request, notify chan<- int, idx int) {
	mb.mu.Lock()
	for i, m := range mb.msgs {
		if m.commID == commID &&
			(src == AnySource || m.src == src) &&
			(tag == AnyTag || m.tag == tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			mb.mu.Unlock()
			req.payload = m.payload
			notify <- idx
			return
		}
	}
	mb.pending = append(mb.pending, pendingRecv{src: src, commID: commID, tag: tag, req: req, notify: notify, idx: idx})
	mb.mu.Unlock()
}

// Isend delivers data (copied) to dst and returns an already-completed
// request, matching the runtime's eager-send semantics.
func Isend[T any](c *Comm, dst, tag int, data []T) *Request {
	Send(c, dst, tag, data)
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// Irecv posts a nonblocking receive. The payload is available from WaitT
// after Wait returns.
func Irecv[T any](c *Comm, src, tag int) *Request {
	if tag < 0 && tag != AnyTag {
		panic("mpi: user tags must be >= 0")
	}
	worldSrc := AnySource
	if src != AnySource {
		c.checkRank(src)
		worldSrc = c.group[src]
	}
	return c.myBox().postRecv(worldSrc, c.id, tag)
}

// WaitT waits for a receive request and returns its typed payload.
func WaitT[T any](r *Request) []T {
	r.Wait()
	if r.payload == nil {
		return nil
	}
	return r.payload.([]T)
}

// WaitAll waits for every request.
func WaitAll(rs ...*Request) {
	for _, r := range rs {
		r.Wait()
	}
}

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.size() {
		panic("mpi: invalid rank")
	}
}
