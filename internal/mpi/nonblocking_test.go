package mpi

import "testing"

func TestIsendIrecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			r := Isend(c, 1, 4, []float64{3.5, 7})
			if !r.Test() {
				t.Error("eager Isend must complete immediately")
			}
			r.Wait()
		} else {
			r := Irecv[float64](c, 0, 4)
			got := WaitT[float64](r)
			if len(got) != 2 || got[0] != 3.5 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestIrecvPostedBeforeSend(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			r := Irecv[int](c, 0, 9) // posted before the message exists
			c.Barrier()
			got := WaitT[int](r)
			if got[0] != 42 {
				t.Errorf("got %v", got)
			}
		} else {
			c.Barrier()
			Send(c, 1, 9, []int{42})
		}
	})
}

func TestIrecvFIFOOrdering(t *testing.T) {
	// Two Irecvs posted in order must receive same-tag messages in send
	// order regardless of Wait order.
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			r1 := Irecv[int](c, 0, 0)
			r2 := Irecv[int](c, 0, 0)
			c.Barrier()
			b := WaitT[int](r2) // wait in reverse
			a := WaitT[int](r1)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("post-order matching broken: %v %v", a, b)
			}
		} else {
			c.Barrier()
			Send(c, 1, 0, []int{1})
			Send(c, 1, 0, []int{2})
		}
	})
}

func TestIrecvMatchesQueuedMessage(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 3, []int{5})
			c.Barrier()
		} else {
			c.Barrier() // message already queued
			r := Irecv[int](c, 0, 3)
			if !r.Test() {
				t.Error("Irecv against a queued message must complete at post")
			}
			if got := WaitT[int](r); got[0] != 5 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestWaitAllExchange(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		reqs := make([]*Request, 0, p-1)
		for dst := 0; dst < p; dst++ {
			if dst != c.Rank() {
				Isend(c, dst, 1, []int{c.Rank()})
			}
		}
		for src := 0; src < p; src++ {
			if src != c.Rank() {
				reqs = append(reqs, Irecv[int](c, src, 1))
			}
		}
		WaitAll(reqs...)
		for _, r := range reqs {
			got := r.payload.([]int)
			if len(got) != 1 {
				t.Errorf("bad payload %v", got)
			}
		}
	})
}

func TestMixedBlockingAfterNonblocking(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []int{10})
			Send(c, 1, 2, []int{20})
		} else {
			r := Irecv[int](c, 0, 2)
			a := Recv[int](c, 0, 1) // blocking recv on a different tag
			b := WaitT[int](r)
			if a[0] != 10 || b[0] != 20 {
				t.Errorf("mixed recv broken: %v %v", a, b)
			}
		}
	})
}
