package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// Transport conformance suite: one table of transport runners, one set of
// assertions. Every semantic contract the DNS relies on — communicator
// splitting, the cartesian topology helpers, the alltoallv family, the
// collectives — must hold identically whether ranks are goroutines
// exchanging references (chan) or processes exchanging frames (tcp; here
// exercised in-process over real localhost sockets, the full wire path).
var conformanceTransports = []struct {
	name string
	run  func(size int, fn func(c *Comm))
}{
	{"chan", Run},
	{"tcp", RunTCP},
}

// forEachTransport runs one conformance body under every transport.
func forEachTransport(t *testing.T, sizes []int, body func(t *testing.T, c *Comm)) {
	t.Helper()
	for _, tr := range conformanceTransports {
		for _, size := range sizes {
			t.Run(fmt.Sprintf("%s/P%d", tr.name, size), func(t *testing.T) {
				tr.run(size, func(c *Comm) { body(t, c) })
			})
		}
	}
}

// TestConformanceSplit: Split must form deterministic groups ordered by
// (key, parent rank), identical across transports, with MPI_UNDEFINED
// (negative color) ranks excluded.
func TestConformanceSplit(t *testing.T) {
	forEachTransport(t, []int{4, 6}, func(t *testing.T, c *Comm) {
		// Even/odd split, keys reversing the parent order.
		sub := c.Split(c.Rank()%2, -c.Rank())
		p := c.Size()
		wantSize := (p + 1 - c.Rank()%2) / 2
		if sub.Size() != wantSize {
			t.Errorf("rank %d: split size %d, want %d", c.Rank(), sub.Size(), wantSize)
		}
		// Reversed keys: highest parent rank of the color is sub rank 0.
		wantRank := 0
		for r := c.Rank() + 2; r < p; r += 2 {
			wantRank++
		}
		if sub.Rank() != wantRank {
			t.Errorf("rank %d: split rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The subcommunicator must actually carry traffic.
		sum := Allreduce(sub, OpSum, []int{c.Rank()})[0]
		want := 0
		for r := c.Rank() % 2; r < p; r += 2 {
			want += r
		}
		if sum != want {
			t.Errorf("rank %d: split allreduce %d, want %d", c.Rank(), sum, want)
		}
		// Undefined color drops out; survivors still agree.
		if c.Rank() == 0 {
			if und := c.Split(-1, 0); und != nil {
				t.Error("negative color returned a communicator")
			}
		} else {
			rest := c.Split(1, c.Rank())
			if rest.Size() != p-1 {
				t.Errorf("rank %d: undefined-split size %d, want %d", c.Rank(), rest.Size(), p-1)
			}
		}
	})
}

// TestConformanceCartSub: CartCreate/CartSub must produce the paper's
// CommA/CommB decomposition — row-major coordinates, sub-communicators
// grouped by the dropped coordinate and ordered by the kept one — on
// both transports.
func TestConformanceCartSub(t *testing.T) {
	forEachTransport(t, []int{6}, func(t *testing.T, c *Comm) {
		cart := c.CartCreate([]int{2, 3})
		co := cart.Coords()
		if want := []int{c.Rank() / 3, c.Rank() % 3}; co[0] != want[0] || co[1] != want[1] {
			t.Errorf("rank %d: coords %v, want %v", c.Rank(), co, want)
		}
		commA := cart.CartSub([]bool{true, false}) // columns: share coord 1
		commB := cart.CartSub([]bool{false, true}) // rows: share coord 0
		if commA.Size() != 2 || commB.Size() != 3 {
			t.Errorf("rank %d: commA size %d commB size %d", c.Rank(), commA.Size(), commB.Size())
		}
		if commA.Rank() != co[0] || commB.Rank() != co[1] {
			t.Errorf("rank %d: sub ranks (%d,%d), want (%d,%d)",
				c.Rank(), commA.Rank(), commB.Rank(), co[0], co[1])
		}
		// Column members share coord 1: gather world ranks along commA.
		ranks := Gather(commA.Comm, 0, []int{c.Rank()})
		if commA.Rank() == 0 {
			for i, r := range ranks {
				if want := i*3 + co[1]; r != want {
					t.Errorf("commA col %d: member %d is world %d, want %d", co[1], i, r, want)
				}
			}
		}
		// And the sub-communicators must carry independent traffic.
		rowSum := Allreduce(commB.Comm, OpSum, []int{co[1]})[0]
		if rowSum != 0+1+2 {
			t.Errorf("rank %d: commB allreduce %d", c.Rank(), rowSum)
		}
	})
}

// TestConformanceAlltoallv: the transpose workhorse with uneven counts,
// in both the blocking and overlapped forms, plus the preplanned Into
// variants' buffer reuse.
func TestConformanceAlltoallv(t *testing.T) {
	forEachTransport(t, []int{1, 4}, func(t *testing.T, c *Comm) {
		p := c.Size()
		// Rank r sends r+1 elements to every peer: uneven tables.
		sendCounts := make([]int, p)
		sendDispls := make([]int, p)
		recvCounts := make([]int, p)
		recvDispls := make([]int, p)
		send := []complex128{}
		for i := 0; i < p; i++ {
			sendCounts[i] = c.Rank() + 1
			sendDispls[i] = i * (c.Rank() + 1)
			recvCounts[i] = i + 1
			if i > 0 {
				recvDispls[i] = recvDispls[i-1] + recvCounts[i-1]
			}
			for k := 0; k < c.Rank()+1; k++ {
				send = append(send, complex(float64(c.Rank()), float64(i)))
			}
		}
		check := func(out []complex128, form string) {
			for i := 0; i < p; i++ {
				for k := 0; k < recvCounts[i]; k++ {
					got := out[recvDispls[i]+k]
					if real(got) != float64(i) || imag(got) != float64(c.Rank()) {
						t.Errorf("%s rank %d: block %d elem %d = %v", form, c.Rank(), i, k, got)
					}
				}
			}
		}
		check(Alltoallv(c, send, sendCounts, sendDispls, recvCounts, recvDispls), "blocking")
		check(AlltoallvOverlap(c, send, sendCounts, sendDispls, recvCounts, recvDispls), "overlap")
		buf := make([]complex128, recvDispls[p-1]+recvCounts[p-1])
		out, err := AlltoallvInto(c, buf, send, sendCounts, sendDispls, recvCounts, recvDispls)
		if err != nil {
			t.Errorf("Into: %v", err)
		}
		if &out[0] != &buf[0] {
			t.Error("Into did not reuse the caller's buffer")
		}
		check(out, "into")
	})
}

// TestConformanceCollectives: Barrier, Bcast, Allreduce (all three ops),
// Gather, Sendrecv.
func TestConformanceCollectives(t *testing.T) {
	forEachTransport(t, []int{1, 5}, func(t *testing.T, c *Comm) {
		p := c.Size()
		c.Barrier()
		got := Bcast(c, p-1, []float64{float64(31 * c.Rank())})
		if want := float64(31 * (p - 1)); got[0] != want {
			t.Errorf("rank %d: bcast %v, want %v", c.Rank(), got[0], want)
		}
		sum := Allreduce(c, OpSum, []int64{int64(c.Rank()), 1})
		if want := int64(p * (p - 1) / 2); sum[0] != want || sum[1] != int64(p) {
			t.Errorf("rank %d: allreduce sum %v", c.Rank(), sum)
		}
		mx := Allreduce(c, OpMax, []float64{float64(-c.Rank())})[0]
		mn := Allreduce(c, OpMin, []float64{float64(-c.Rank())})[0]
		if mx != 0 || mn != float64(-(p-1)) {
			t.Errorf("rank %d: max %v min %v", c.Rank(), mx, mn)
		}
		all := Gather(c, 0, []int{c.Rank() * c.Rank()})
		if c.Rank() == 0 {
			for i, v := range all {
				if v != i*i {
					t.Errorf("gather slot %d = %d", i, v)
				}
			}
		} else if all != nil {
			t.Error("non-root gather returned data")
		}
		if p > 1 {
			dst := (c.Rank() + 1) % p
			src := (c.Rank() - 1 + p) % p
			in := Sendrecv(c, dst, 11, []int{c.Rank()}, src, 11)
			if in[0] != src {
				t.Errorf("sendrecv rank %d got %d, want %d", c.Rank(), in[0], src)
			}
		}
	})
}

// TestConformanceTagMatching: messages match on (source, tag, comm) with
// AnyTag/AnySource wildcards, across communicator boundaries.
func TestConformanceTagMatching(t *testing.T) {
	forEachTransport(t, []int{2}, func(t *testing.T, c *Comm) {
		sub := c.Split(0, c.Rank()) // same membership, distinct comm id
		if c.Rank() == 1 {
			Send(c, 0, 1, []int{100})
			Send(sub, 0, 1, []int{200})
			Send(c, 0, 2, []int{300})
			return
		}
		// Tag selects within the parent comm even though the sub message
		// arrived in between; the sub comm sees only its own.
		if got := Recv[int](c, 1, 2)[0]; got != 300 {
			t.Errorf("tag-2 recv got %d", got)
		}
		if got := Recv[int](sub, 1, AnyTag)[0]; got != 200 {
			t.Errorf("sub recv got %d", got)
		}
		if got := Recv[int](c, AnySource, 1)[0]; got != 100 {
			t.Errorf("tag-1 recv got %d", got)
		}
	})
}

// TestConformanceDeterministicSplitIDs: the derived communicator ids are
// a pure function of the split history, so independent ranks agree on
// them without negotiation — a property the wire transport inherits only
// if no transport state leaks into id derivation.
func TestConformanceDeterministicSplitIDs(t *testing.T) {
	type probe struct {
		rank int
		id   int64
	}
	for _, tr := range conformanceTransports {
		t.Run(tr.name, func(t *testing.T) {
			var mu sync.Mutex
			var probes []probe
			tr.run(4, func(c *Comm) {
				sub := c.Split(c.Rank()%2, c.Rank())
				subsub := sub.Split(0, sub.Rank())
				mu.Lock()
				probes = append(probes, probe{c.Rank(), subsub.id})
				mu.Unlock()
			})
			ids := map[int]int64{}
			for _, p := range probes {
				ids[p.rank%2] = p.id
			}
			for _, p := range probes {
				if ids[p.rank%2] != p.id {
					t.Errorf("rank %d: comm id %d diverges from color peer's %d",
						p.rank, p.id, ids[p.rank%2])
				}
			}
		})
	}
}
