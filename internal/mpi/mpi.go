// Package mpi is a message-passing runtime standing in for MPI in the
// channel DNS. Messages carry MPI matching semantics (source, tag,
// communicator, non-overtaking order) through per-rank mailboxes; the
// subset implemented is exactly what the DNS and its parallel FFT need:
// point-to-point Send/Recv/Sendrecv, Barrier, Bcast, Allreduce, Gather,
// Alltoall(v), communicator splitting, and the cartesian topology helpers
// (CartCreate/CartSub) the paper uses to build its CommA and CommB
// sub-communicators.
//
// Delivery is pluggable behind the Transport interface (transport.go).
// The default channel transport runs every rank as a goroutine in one
// process (Run); the TCP transport runs one OS process per rank over
// persistent peer connections (ConnectTCP, cmd/dnsrun), with the same
// matching semantics, so CartCreate/CartSub/Alltoallv/Stream callers
// cannot tell the transports apart except by the clock.
//
// Sends are eager: the payload is copied (or, on the wire, serialized)
// before Send returns, so the usual MPI buffer-reuse rules hold and
// exchange patterns that would deadlock with rendezvous semantics do not.
package mpi

import (
	"fmt"
	"sync"

	"channeldns/internal/telemetry"
	"channeldns/internal/trace"
)

// AnyTag matches any tag in Recv.
const AnyTag = -1

// AnySource matches any source rank in Recv.
const AnySource = -1

// reserved tag space for collectives, out of reach of user tags (>= 0).
const (
	tagBarrier = -1000 - iota
	tagBcast
	tagReduce
	tagGather
	tagAlltoall
	tagSplit
	tagStream
	tagClock     // SyncClocks ping-pong (clock.go)
	tagHeartbeat // GatherHeartbeat telemetry deltas (clock.go)
)

type message struct {
	src     int // world rank of sender
	commID  int64
	tag     int
	payload any
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	msgs    []message
	pending []pendingRecv // posted nonblocking receives, FIFO
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	// A posted nonblocking receive matching this message takes priority,
	// in post order, preserving non-overtaking for Irecv traffic.
	for i, p := range mb.pending {
		if p.commID == m.commID &&
			(p.src == AnySource || p.src == m.src) &&
			(p.tag == AnyTag || p.tag == m.tag) {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			mb.mu.Unlock()
			p.req.payload = m.payload
			if p.notify != nil {
				// Stream receive: deliver the posted index on the (buffered,
				// never-blocking) completion channel instead of closing done.
				p.notify <- p.idx
			} else {
				close(p.req.done)
			}
			return
		}
	}
	mb.msgs = append(mb.msgs, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the first message matching (src, commID, tag),
// blocking until one arrives.
func (mb *mailbox) take(src int, commID int64, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.commID == commID &&
				(src == AnySource || m.src == src) &&
				(tag == AnyTag || m.tag == tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// Comm is a communicator: an ordered group of ranks with a private message
// space. The zero value is not usable; communicators come from Run, Split,
// or the cartesian constructors.
type Comm struct {
	t        Transport
	id       int64
	rank     int   // this process's rank within the communicator
	group    []int // comm rank -> world rank
	splitSeq int   // per-rank counter of collective split operations

	// tel, when non-nil, receives PhaseCollective timing samples and
	// CommCollective traffic counters from Barrier/Bcast/Allreduce/Gather.
	// Derived communicators (Split, the cartesian constructors) inherit it.
	// The alltoallv family is deliberately NOT instrumented here: the pencil
	// transpose plans account that traffic per direction, and counting it
	// twice would corrupt the comm tables.
	tel *telemetry.Collector

	// trc, when non-nil, records one flight-recorder event per pairwise
	// peer exchange inside the alltoallv family — the per-peer wait
	// timeline behind the straggler analysis. Inherited like tel. The
	// aggregate telemetry double-counting concern does not apply: trace
	// events are a timeline, not counters.
	trc *trace.Recorder
}

// SetTelemetry attaches a per-rank telemetry collector to the communicator.
// Communicators split from this one afterwards inherit the collector; a nil
// collector (the default) makes the instrumentation a no-op.
func (c *Comm) SetTelemetry(t *telemetry.Collector) { c.tel = t }

// SetTracer attaches a per-rank flight recorder to the communicator.
// Communicators split from this one afterwards inherit it; nil (the
// default) records nothing.
func (c *Comm) SetTracer(r *trace.Recorder) { c.trc = r }

// Run starts size ranks, invoking fn on each with its world communicator,
// and returns when every rank has finished.
func Run(size int, fn func(c *Comm)) {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &world{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		c := &Comm{t: &chanTransport{w: w, self: r}, id: 1, rank: r, group: group}
		go func() {
			defer wg.Done()
			fn(c)
			c.Close()
		}()
	}
	wg.Wait()
}

// Rank returns the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size() }

func (c *Comm) size() int { return len(c.group) }

// WorldRank returns the world rank backing a communicator rank; used by the
// topology-aware performance model and by Figure 4's pattern dump.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

func (c *Comm) myBox() *mailbox { return c.t.LocalBox() }

// send delivers a payload (already copied) to comm rank dst.
func (c *Comm) send(dst, tag int, payload any) {
	if dst < 0 || dst >= c.size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d of %d", dst, c.size()))
	}
	c.t.Deliver(c.group[dst], message{src: c.group[c.rank], commID: c.id, tag: tag, payload: payload})
}

// recv blocks until a matching message arrives and returns its payload.
func (c *Comm) recv(src, tag int) any {
	worldSrc := AnySource
	if src != AnySource {
		if src < 0 || src >= c.size() {
			panic(fmt.Sprintf("mpi: recv from invalid rank %d of %d", src, c.size()))
		}
		worldSrc = c.group[src]
	}
	m := c.myBox().take(worldSrc, c.id, tag)
	return m.payload
}

// Send copies data and delivers it to rank dst with the given tag (>= 0).
func Send[T any](c *Comm, dst, tag int, data []T) {
	if tag < 0 {
		panic("mpi: user tags must be >= 0")
	}
	cp := append([]T(nil), data...)
	c.send(dst, tag, cp)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag.
func Recv[T any](c *Comm, src, tag int) []T {
	if tag < 0 && tag != AnyTag {
		panic("mpi: user tags must be >= 0")
	}
	return c.recv(src, tag).([]T)
}

// Sendrecv exchanges data with the given partners in one operation, the
// pattern FFTW's transpose planner uses as an alternative to alltoall.
func Sendrecv[T any](c *Comm, dst, sendTag int, data []T, src, recvTag int) []T {
	Send(c, dst, sendTag, data)
	return Recv[T](c, src, recvTag)
}

// splitTuple is the (color, key, rank) triple Split allgathers. It is a
// package-level type (not a function-local one) so the wire codec can
// carry it between processes on the TCP transport.
type splitTuple struct{ Color, Key, Rank int }

// Split partitions the communicator: ranks passing the same color form a new
// communicator, ordered by (key, parent rank). Every rank of c must call
// Split. A negative color returns nil for that rank (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	c.splitSeq++
	mine := []splitTuple{{color, key, c.rank}}
	// Allgather the tuples through rank 0 of the parent.
	var all []splitTuple
	if c.rank == 0 {
		all = make([]splitTuple, 0, c.size())
		all = append(all, mine...)
		for i := 1; i < c.size(); i++ {
			t := c.recv(AnySource, tagSplit).([]splitTuple)
			all = append(all, t...)
		}
		for i := 0; i < c.size(); i++ {
			if i != 0 {
				c.send(i, tagSplit, all)
			}
		}
	} else {
		c.send(0, tagSplit, mine)
		all = c.recv(0, tagSplit).([]splitTuple)
	}
	if color < 0 {
		return nil
	}
	// Deterministic group: members with my color sorted by (key, rank).
	var members []splitTuple
	for _, t := range all {
		if t.Color == color {
			members = append(members, t)
		}
	}
	for i := 1; i < len(members); i++ { // insertion sort, tiny groups
		for j := i; j > 0 && (members[j].Key < members[j-1].Key ||
			(members[j].Key == members[j-1].Key && members[j].Rank < members[j-1].Rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, t := range members {
		group[i] = c.group[t.Rank]
		if t.Rank == c.rank {
			newRank = i
		}
	}
	// All members derive the same child id deterministically.
	id := c.id*1_000_003 + int64(c.splitSeq)*1009 + int64(color) + 7
	return &Comm{t: c.t, id: id, rank: newRank, group: group, tel: c.tel, trc: c.trc}
}
