package stats

import (
	"math"
	"strings"
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

func TestSnapshotSingleMode(t *testing.T) {
	// A single (kx>0) mode of v with amplitude shape f(y): <vv>(y) must be
	// 2*|f(y)|^2 and everything u-related zero when omega and dv/dy... here
	// u,w are induced by v, so check <vv> exactly and symmetry of the rest.
	cfg := core.Config{Nx: 8, Ny: 16, Nz: 8, ReTau: 180, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		shape := func(y float64) complex128 {
			q := 1 - y*y
			return complex(0.3*q*q, 0)
		}
		s.SetModeV(1, 2, shape)
		p := Snapshot(s)
		for i, y := range p.Y {
			want := 2 * absSq(shape(y))
			if math.Abs(p.VV[i]-want) > 1e-10 {
				t.Errorf("<vv>(%g) = %g, want %g", y, p.VV[i], want)
			}
			if p.UU[i] < 0 || p.WW[i] < 0 {
				t.Errorf("negative variance at %d", i)
			}
		}
	})
}

func TestSnapshotMatchesAcrossRanks(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	var ref Profiles
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 17)
		s.Advance(3)
		ref = Snapshot(s)
	})
	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	mpi.Run(4, func(c *mpi.Comm) {
		s, _ := core.New(c, pcfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 17)
		s.Advance(3)
		p := Snapshot(s)
		for i := range ref.Y {
			if math.Abs(p.UU[i]-ref.UU[i]) > 1e-10 ||
				math.Abs(p.UV[i]-ref.UV[i]) > 1e-10 ||
				math.Abs(p.U[i]-ref.U[i]) > 1e-10 {
				t.Fatalf("distributed statistics differ at %d", i)
			}
		}
	})
}

func TestAccumulator(t *testing.T) {
	a := &Accumulator{}
	p1 := Profiles{Y: []float64{0}, U: []float64{2}, UU: []float64{4}, VV: []float64{0}, WW: []float64{0}, UV: []float64{1}}
	p2 := Profiles{Y: []float64{0}, U: []float64{4}, UU: []float64{8}, VV: []float64{2}, WW: []float64{2}, UV: []float64{3}}
	a.Add(p1)
	a.Add(p2)
	if a.Count() != 2 {
		t.Fatalf("count %d", a.Count())
	}
	m := a.Mean()
	if m.U[0] != 3 || m.UU[0] != 6 || m.UV[0] != 2 {
		t.Errorf("mean wrong: %+v", m)
	}
}

func TestWallUnitsLaminar(t *testing.T) {
	// For the laminar profile U = ReTau*(1-y^2)/2 with nu = 1/ReTau the
	// wall slope is dU/dy = ReTau^2... in wall units u_tau = 1 (by the
	// normalization), so U+ = U and y+ = (1+y)*ReTau.
	cfg := core.Config{Nx: 8, Ny: 32, Nz: 8, ReTau: 50, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		p := Snapshot(s)
		yp, up, uTau := p.WallUnits(s.Nu())
		if math.Abs(uTau-1) > 0.05 {
			t.Errorf("u_tau = %g, want about 1 (finite-difference wall slope)", uTau)
		}
		if len(yp) == 0 {
			t.Fatal("no wall-unit points")
		}
		// Near the wall U+ ~ y+ (viscous sublayer).
		for i := range yp {
			if yp[i] < 3 {
				if math.Abs(up[i]-yp[i]) > 0.15*yp[i] {
					t.Errorf("sublayer: U+(%g) = %g, want about y+", yp[i], up[i])
				}
			}
		}
	})
}

func TestLogLawFitRecoversSynthetic(t *testing.T) {
	kappa, b := 0.40, 5.0
	var yp, up []float64
	for y := 30.0; y < 300; y *= 1.1 {
		yp = append(yp, y)
		up = append(up, math.Log(y)/kappa+b)
	}
	k, bb, ok := LogLawFit(yp, up, 30, 300)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(k-kappa) > 1e-10 || math.Abs(bb-b) > 1e-9 {
		t.Errorf("fit kappa=%g B=%g, want %g %g", k, bb, kappa, b)
	}
}

func TestReichardtLimits(t *testing.T) {
	// Sublayer: U+ ~ y+; log region: slope ~ 1/0.41.
	if v := ReichardtProfile(0.5); math.Abs(v-0.5) > 0.05 {
		t.Errorf("Reichardt(0.5) = %g, want about 0.5", v)
	}
	s := (ReichardtProfile(300) - ReichardtProfile(100)) / (math.Log(300) - math.Log(100))
	if math.Abs(s-1/0.41) > 0.05 {
		t.Errorf("Reichardt log slope %g, want %g", s, 1/0.41)
	}
}

func TestWriteFormat(t *testing.T) {
	p := Profiles{Y: []float64{-1, 0}, U: []float64{0, 1}, UU: []float64{0, 2},
		VV: []float64{0, 3}, WW: []float64{0, 4}, UV: []float64{0, -5}}
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "-<uv>") || !strings.Contains(out, "5.000000") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("expected header + 2 rows")
	}
}
