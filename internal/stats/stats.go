// Package stats computes the turbulence statistics the paper's science
// output reports (Figures 5 and 6): the mean velocity profile, the velocity
// variances <uu>, <vv>, <ww>, and the turbulent shear stress -<uv>, plus
// wall-unit scalings and the log-law diagnostic used to examine the overlap
// region. Channel flow is statistically stationary, so statistics are
// accumulated as running time averages over snapshots.
package stats

import (
	"fmt"
	"io"
	"math"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// Profiles holds one-dimensional statistics as functions of y.
type Profiles struct {
	Y  []float64 // collocation points
	U  []float64 // mean streamwise velocity
	UU []float64 // <u'u'>
	VV []float64 // <v'v'>
	WW []float64 // <w'w'>
	UV []float64 // <u'v'>
}

// Snapshot computes instantaneous (plane-averaged) profiles from the
// solver's spectral state. Plane averaging over x and z is exact in
// spectral space: the mean is the (0,0) mode and the second moments are
// sums of squared mode amplitudes (one-sided kx modes weighted by two).
// Every rank receives the complete, globally reduced profiles.
func Snapshot(s *core.Solver) Profiles {
	g := s.G
	ny := s.Cfg.Ny
	p := Profiles{
		Y:  append([]float64(nil), s.CollocationPoints()...),
		U:  s.MeanProfile(),
		UU: make([]float64, ny),
		VV: make([]float64, ny),
		WW: make([]float64, ny),
		UV: make([]float64, ny),
	}
	kxlo, kxhi := s.D.KxRange()
	kzlo, kzhi := s.D.KzRangeY()
	for ikx := kxlo; ikx < kxhi; ikx++ {
		for ikz := kzlo; ikz < kzhi; ikz++ {
			if g.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			u, v, w := s.ModeVelocityValues(ikx, ikz)
			wt := 2.0
			if ikx == 0 {
				wt = 1.0
			}
			for i := 0; i < ny; i++ {
				p.UU[i] += wt * absSq(u[i])
				p.VV[i] += wt * absSq(v[i])
				p.WW[i] += wt * absSq(w[i])
				p.UV[i] += wt * (real(u[i])*real(v[i]) + imag(u[i])*imag(v[i]))
			}
		}
	}
	world := s.World()
	p.UU = mpi.Allreduce(world, mpi.OpSum, p.UU)
	p.VV = mpi.Allreduce(world, mpi.OpSum, p.VV)
	p.WW = mpi.Allreduce(world, mpi.OpSum, p.WW)
	p.UV = mpi.Allreduce(world, mpi.OpSum, p.UV)
	return p
}

func absSq(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

// Accumulator forms running time averages of profiles.
type Accumulator struct {
	n   int
	sum Profiles
}

// Add folds one snapshot into the average.
func (a *Accumulator) Add(p Profiles) {
	if a.n == 0 {
		a.sum = Profiles{
			Y:  append([]float64(nil), p.Y...),
			U:  append([]float64(nil), p.U...),
			UU: append([]float64(nil), p.UU...),
			VV: append([]float64(nil), p.VV...),
			WW: append([]float64(nil), p.WW...),
			UV: append([]float64(nil), p.UV...),
		}
		a.n = 1
		return
	}
	for i := range p.Y {
		a.sum.U[i] += p.U[i]
		a.sum.UU[i] += p.UU[i]
		a.sum.VV[i] += p.VV[i]
		a.sum.WW[i] += p.WW[i]
		a.sum.UV[i] += p.UV[i]
	}
	a.n++
}

// Count returns the number of accumulated snapshots.
func (a *Accumulator) Count() int { return a.n }

// Mean returns the time-averaged profiles (zero value if empty).
func (a *Accumulator) Mean() Profiles {
	if a.n == 0 {
		return Profiles{}
	}
	inv := 1 / float64(a.n)
	out := Profiles{
		Y:  append([]float64(nil), a.sum.Y...),
		U:  make([]float64, len(a.sum.U)),
		UU: make([]float64, len(a.sum.UU)),
		VV: make([]float64, len(a.sum.VV)),
		WW: make([]float64, len(a.sum.WW)),
		UV: make([]float64, len(a.sum.UV)),
	}
	for i := range out.U {
		out.U[i] = a.sum.U[i] * inv
		out.UU[i] = a.sum.UU[i] * inv
		out.VV[i] = a.sum.VV[i] * inv
		out.WW[i] = a.sum.WW[i] * inv
		out.UV[i] = a.sum.UV[i] * inv
	}
	return out
}

// WallUnits rescales the lower half-channel into wall units: y+ = (1+y)/nu *
// u_tau and U+ = U/u_tau, with u_tau estimated from the wall slope of U.
// Points with y+ <= 0 are skipped (the wall itself).
func (p Profiles) WallUnits(nu float64) (yPlus, uPlus []float64, uTau float64) {
	// One-sided slope estimate from the first two points off the wall.
	if len(p.Y) < 3 {
		return nil, nil, 0
	}
	dUdy := (p.U[1] - p.U[0]) / (p.Y[1] - p.Y[0])
	uTau = math.Sqrt(math.Abs(nu * dUdy))
	if uTau == 0 {
		return nil, nil, 0
	}
	for i := range p.Y {
		if p.Y[i] >= 0 {
			break
		}
		yp := (1 + p.Y[i]) * uTau / nu
		if yp <= 0 {
			continue
		}
		yPlus = append(yPlus, yp)
		uPlus = append(uPlus, p.U[i]/uTau)
	}
	return yPlus, uPlus, uTau
}

// LogLawFit fits U+ = (1/kappa)*ln(y+) + B over the overlap band
// [loYPlus, hiFrac*ReTau] and returns kappa and B. The classical values are
// kappa ~ 0.38-0.41, B ~ 4.5-5.2; the fit is meaningful only for converged
// statistics at sufficient Reynolds number.
func LogLawFit(yPlus, uPlus []float64, loYPlus, hiYPlus float64) (kappa, b float64, ok bool) {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range yPlus {
		if yPlus[i] < loYPlus || yPlus[i] > hiYPlus {
			continue
		}
		x := math.Log(yPlus[i])
		sx += x
		sy += uPlus[i]
		sxx += x * x
		sxy += x * uPlus[i]
		n++
	}
	if n < 3 {
		return 0, 0, false
	}
	fn := float64(n)
	slope := (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	if slope <= 0 {
		return 0, 0, false
	}
	inter := (sy - slope*sx) / fn
	return 1 / slope, inter, true
}

// ReichardtProfile returns the Reichardt composite law-of-the-wall profile
// U+(y+), a standard empirical reference curve for Figure 5 comparisons.
func ReichardtProfile(yPlus float64) float64 {
	const kappa = 0.41
	return math.Log(1+kappa*yPlus)/kappa +
		7.8*(1-math.Exp(-yPlus/11)-yPlus/11*math.Exp(-yPlus/3))
}

// Write emits the profiles as aligned columns: y, U, uu, vv, ww, -uv.
func (p Profiles) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-12s %-12s\n",
		"y", "U", "<uu>", "<vv>", "<ww>", "-<uv>"); err != nil {
		return err
	}
	for i := range p.Y {
		if _, err := fmt.Fprintf(w, "%-12.6f %-12.6f %-12.6f %-12.6f %-12.6f %-12.6f\n",
			p.Y[i], p.U[i], p.UU[i], p.VV[i], p.WW[i], -p.UV[i]); err != nil {
			return err
		}
	}
	return nil
}
