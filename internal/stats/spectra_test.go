package stats

import (
	"math"
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// TestParsevalSpectraMatchVariances: summing the 1-D spectra over bins must
// reproduce the variance profiles exactly (plane averaging is exact in
// spectral space).
func TestParsevalSpectraMatchVariances(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 24, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLaminar()
		s.Perturb(0.5, 3, 3, 21)
		s.Advance(2)
		p := Snapshot(s)
		yIdx := []int{4, 12, 19}
		spx := SpectraX(s, yIdx)
		spz := SpectraZ(s, yIdx)
		for si, yi := range yIdx {
			for _, tc := range []struct {
				name string
				got  float64
				want float64
			}{
				{"x-uu", spx.Total(spx.Euu, si), p.UU[yi]},
				{"x-vv", spx.Total(spx.Evv, si), p.VV[yi]},
				{"x-ww", spx.Total(spx.Eww, si), p.WW[yi]},
				{"z-uu", spz.Total(spz.Euu, si), p.UU[yi]},
				{"z-vv", spz.Total(spz.Evv, si), p.VV[yi]},
				{"z-ww", spz.Total(spz.Eww, si), p.WW[yi]},
			} {
				if math.Abs(tc.got-tc.want) > 1e-10*(1+tc.want) {
					t.Errorf("station %d %s: spectrum total %g != variance %g", si, tc.name, tc.got, tc.want)
				}
			}
		}
	})
}

// TestSpectraSingleModeLandsInRightBin: one mode at (kx=3, kz'=2) must put
// all its u energy in bin 3 of the x spectrum and bin 2 of the z spectrum.
func TestSpectraSingleModeLandsInRightBin(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 20, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetModeV(3, 2, func(y float64) complex128 {
			q := 1 - y*y
			return complex(0.2*q*q, 0)
		})
		yi := []int{10}
		spx := SpectraX(s, yi)
		spz := SpectraZ(s, yi)
		for b := range spx.Evv[0] {
			if b == 3 {
				if spx.Evv[0][b] <= 0 {
					t.Errorf("x bin 3 empty")
				}
			} else if spx.Evv[0][b] != 0 {
				t.Errorf("x bin %d has energy %g", b, spx.Evv[0][b])
			}
		}
		for b := range spz.Evv[0] {
			if b == 2 {
				if spz.Evv[0][b] <= 0 {
					t.Errorf("z bin 2 empty")
				}
			} else if spz.Evv[0][b] != 0 {
				t.Errorf("z bin %d has energy %g", b, spz.Evv[0][b])
			}
		}
	})
}

// TestSpectraDistributedMatchesSerial: spectra must be decomposition
// independent.
func TestSpectraDistributedMatchesSerial(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	var ref Spectra1D
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.4, 2, 2, 33)
		ref = SpectraX(s, []int{8})
	})
	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	mpi.Run(4, func(c *mpi.Comm) {
		s, _ := core.New(c, pcfg)
		s.SetLaminar()
		s.Perturb(0.4, 2, 2, 33)
		sp := SpectraX(s, []int{8})
		for b := range ref.Euu[0] {
			if math.Abs(sp.Euu[0][b]-ref.Euu[0][b]) > 1e-12 {
				t.Fatalf("bin %d differs: %g vs %g", b, sp.Euu[0][b], ref.Euu[0][b])
			}
		}
	})
}
