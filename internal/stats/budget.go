package stats

import (
	"fmt"
	"io"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// Turbulent kinetic energy budget terms, the flagship analysis the paper's
// ReTau = 5200 dataset was produced for. For the channel, with k(y) the
// turbulent kinetic energy,
//
//	0 = P - eps + nu d2k/dy2 + (transport terms)
//
// in statistical equilibrium, where P = -<u'v'> dU/dy is production and
// eps = nu <du_i'/dx_j du_i'/dx_j> the (pseudo-)dissipation. The three
// terms computable exactly from the spectral state are provided; the
// turbulent and pressure transport (triple products) close the budget and
// are not computed here.

// Budget holds TKE budget profiles.
type Budget struct {
	Y                []float64
	TKE              []float64 // k = (<uu>+<vv>+<ww>)/2
	Production       []float64 // -<u'v'> dU/dy
	Dissipation      []float64 // nu <grad u' : grad u'>  (pseudo-dissipation)
	ViscousDiffusion []float64 // nu d2k/dy2
}

// TKEBudget computes the spectrally exact budget terms, globally reduced so
// every rank holds the full profiles.
func TKEBudget(s *core.Solver) Budget {
	g := s.G
	ny := s.Cfg.Ny
	nu := s.Nu()
	b := Budget{
		Y:                append([]float64(nil), s.CollocationPoints()...),
		TKE:              make([]float64, ny),
		Production:       make([]float64, ny),
		Dissipation:      make([]float64, ny),
		ViscousDiffusion: make([]float64, ny),
	}
	uv := make([]float64, ny)
	kxlo, kxhi := s.D.KxRange()
	kzlo, kzhi := s.D.KzRangeY()
	for ikx := kxlo; ikx < kxhi; ikx++ {
		for ikz := kzlo; ikz < kzhi; ikz++ {
			if g.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			u, v, w := s.ModeVelocityValues(ikx, ikz)
			uy, vy, wy := s.ModeVelocityGradValues(ikx, ikz)
			wt := 2.0
			if ikx == 0 {
				wt = 1.0
			}
			kx, kz := g.Kx(ikx), g.Kz(ikz)
			kh2 := kx*kx + kz*kz
			for i := 0; i < ny; i++ {
				e := absSq(u[i]) + absSq(v[i]) + absSq(w[i])
				b.TKE[i] += wt * e / 2
				uv[i] += wt * (real(u[i])*real(v[i]) + imag(u[i])*imag(v[i]))
				// |grad q|^2 per mode: kh2*|q|^2 + |dq/dy|^2 for each
				// component (x and z derivatives are i*k multiples).
				b.Dissipation[i] += wt * nu * (kh2*e +
					absSq(uy[i]) + absSq(vy[i]) + absSq(wy[i]))
			}
		}
	}
	world := s.World()
	b.TKE = mpi.Allreduce(world, mpi.OpSum, b.TKE)
	b.Dissipation = mpi.Allreduce(world, mpi.OpSum, b.Dissipation)
	uv = mpi.Allreduce(world, mpi.OpSum, uv)
	dUdy := s.MeanShear()
	for i := 0; i < ny; i++ {
		b.Production[i] = -uv[i] * dUdy[i]
	}
	d2k := s.SecondDerivativeValues(b.TKE)
	for i := 0; i < ny; i++ {
		b.ViscousDiffusion[i] = nu * d2k[i]
	}
	return b
}

// Write emits the budget as aligned columns.
func (b Budget) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-12s\n",
		"y", "k", "production", "dissipation", "visc-diff"); err != nil {
		return err
	}
	for i := range b.Y {
		if _, err := fmt.Fprintf(w, "%-12.6f %-12.6f %-12.6f %-12.6f %-12.6f\n",
			b.Y[i], b.TKE[i], b.Production[i], b.Dissipation[i], b.ViscousDiffusion[i]); err != nil {
			return err
		}
	}
	return nil
}
