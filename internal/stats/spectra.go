package stats

import (
	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// One-dimensional energy spectra, the core science quantity of the channel
// dataset the paper's simulation produced (cf. del Alamo et al. 2004, cited
// as the reference spectra study): E_qq(kx; y) summed over kz, and
// E_qq(kz; y) summed over kx, for each velocity component. Parseval's
// identity ties them to the variances of Snapshot:
//
//	sum_kx E_uu(kx; y) = <u'u'>(y) = sum_kz E_uu(kz; y).

// Spectra1D holds spectra at a set of wall-normal stations.
type Spectra1D struct {
	// K holds the wavenumber of each spectral bin.
	K []float64
	// YIndex are the collocation indices of the stations.
	YIndex []int
	// Euu[s][k] is the u-component energy at station s and bin k;
	// similarly for the other components.
	Euu, Evv, Eww [][]float64
}

// SpectraX computes streamwise spectra (binned by kx index, summed over kz)
// at the given collocation indices, globally reduced so every rank holds
// the full result. The mean (0,0) mode is excluded.
func SpectraX(s *core.Solver, yIdx []int) Spectra1D {
	g := s.G
	nb := g.NKx()
	out := newSpectra(nb, yIdx)
	for i := 0; i < nb; i++ {
		out.K[i] = g.Kx(i)
	}
	accumulate(s, yIdx, &out, func(ikx, ikz int) int { return ikx })
	return reduceSpectra(s.World(), out)
}

// SpectraZ computes spanwise spectra (binned by |kz| index, summed over kx)
// at the given collocation indices.
func SpectraZ(s *core.Solver, yIdx []int) Spectra1D {
	g := s.G
	nb := g.Nz / 2 // bins 0..Nz/2-1 by |kz'|
	out := newSpectra(nb, yIdx)
	for i := 0; i < nb; i++ {
		out.K[i] = g.Beta() * float64(i)
	}
	accumulate(s, yIdx, &out, func(ikx, ikz int) int {
		k := s.G.KzIndex(ikz)
		if k < 0 {
			k = -k
		}
		return k
	})
	return reduceSpectra(s.World(), out)
}

func newSpectra(nb int, yIdx []int) Spectra1D {
	sp := Spectra1D{
		K:      make([]float64, nb),
		YIndex: append([]int(nil), yIdx...),
		Euu:    make([][]float64, len(yIdx)),
		Evv:    make([][]float64, len(yIdx)),
		Eww:    make([][]float64, len(yIdx)),
	}
	for i := range yIdx {
		sp.Euu[i] = make([]float64, nb)
		sp.Evv[i] = make([]float64, nb)
		sp.Eww[i] = make([]float64, nb)
	}
	return sp
}

func accumulate(s *core.Solver, yIdx []int, sp *Spectra1D, bin func(ikx, ikz int) int) {
	g := s.G
	kxlo, kxhi := s.D.KxRange()
	kzlo, kzhi := s.D.KzRangeY()
	for ikx := kxlo; ikx < kxhi; ikx++ {
		for ikz := kzlo; ikz < kzhi; ikz++ {
			if g.IsNyquistZ(ikz) || (ikx == 0 && ikz == 0) {
				continue
			}
			u, v, w := s.ModeVelocityValues(ikx, ikz)
			wt := 2.0
			if ikx == 0 {
				wt = 1.0
			}
			b := bin(ikx, ikz)
			if b >= len(sp.K) {
				continue
			}
			for si, yi := range yIdx {
				sp.Euu[si][b] += wt * absSq(u[yi])
				sp.Evv[si][b] += wt * absSq(v[yi])
				sp.Eww[si][b] += wt * absSq(w[yi])
			}
		}
	}
}

func reduceSpectra(world *mpi.Comm, sp Spectra1D) Spectra1D {
	for si := range sp.YIndex {
		sp.Euu[si] = mpi.Allreduce(world, mpi.OpSum, sp.Euu[si])
		sp.Evv[si] = mpi.Allreduce(world, mpi.OpSum, sp.Evv[si])
		sp.Eww[si] = mpi.Allreduce(world, mpi.OpSum, sp.Eww[si])
	}
	return sp
}

// Total returns the summed energy per station for one component array,
// which by Parseval equals the corresponding variance profile value.
func (sp Spectra1D) Total(comp [][]float64, station int) float64 {
	t := 0.0
	for _, e := range comp[station] {
		t += e
	}
	return t
}
