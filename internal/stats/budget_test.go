package stats

import (
	"math"
	"strings"
	"testing"

	"channeldns/internal/core"
	"channeldns/internal/mpi"
)

// TestBudgetLaminarAllZero: a pure laminar state has no fluctuations, so
// every budget term vanishes.
func TestBudgetLaminarAllZero(t *testing.T) {
	cfg := core.Config{Nx: 8, Ny: 20, Nz: 8, ReTau: 50, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		b := TKEBudget(s)
		for i := range b.Y {
			if b.TKE[i] != 0 || b.Production[i] != 0 || b.Dissipation[i] != 0 {
				t.Fatalf("laminar budget nonzero at %d", i)
			}
		}
	})
}

// TestBudgetSingleModeDissipation: for a single v mode with known shape the
// dissipation can be computed in closed form from the mode's amplitudes.
func TestBudgetSingleModeDissipation(t *testing.T) {
	cfg := core.Config{Nx: 8, Ny: 32, Nz: 8, ReTau: 10, Dt: 1e-3, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		ikx, ikz := 1, 1
		s.SetModeV(ikx, ikz, func(y float64) complex128 {
			q := 1 - y*y
			return complex(0.3*q*q, 0)
		})
		b := TKEBudget(s)
		u, v, w := s.ModeVelocityValues(ikx, ikz)
		uy, vy, wy := s.ModeVelocityGradValues(ikx, ikz)
		kh2 := s.G.K2(ikx, ikz)
		nu := s.Nu()
		for i, y := range s.CollocationPoints() {
			want := 2 * nu * (kh2*(absSq(u[i])+absSq(v[i])+absSq(w[i])) +
				absSq(uy[i]) + absSq(vy[i]) + absSq(wy[i]))
			if math.Abs(b.Dissipation[i]-want) > 1e-12*(1+want) {
				t.Fatalf("dissipation at y=%g: %g want %g", y, b.Dissipation[i], want)
			}
		}
	})
}

// TestBudgetProductionSign: in a sheared turbulent-like state, production
// integrated over the channel should be positive (energy flows from the
// mean to the fluctuations).
func TestBudgetProductionSign(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 33, Nz: 16, ReTau: 180, Dt: 5e-4, Forcing: 1}
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.3, 2, 2, 41)
		s.Advance(60) // let the shear tilt the fluctuations
		b := TKEBudget(s)
		tot := 0.0
		for i := 1; i < len(b.Y); i++ {
			tot += (b.Production[i] + b.Production[i-1]) / 2 * (b.Y[i] - b.Y[i-1])
		}
		if tot <= 0 {
			t.Errorf("integrated production %g, want positive", tot)
		}
		// Dissipation is positive semidefinite pointwise.
		for i := range b.Dissipation {
			if b.Dissipation[i] < 0 {
				t.Fatalf("negative dissipation at %d", i)
			}
		}
	})
}

// TestBudgetDistributedMatchesSerial: budget profiles must be decomposition
// independent.
func TestBudgetDistributedMatchesSerial(t *testing.T) {
	cfg := core.Config{Nx: 16, Ny: 16, Nz: 16, ReTau: 180, Dt: 1e-3, Forcing: 1}
	var ref Budget
	mpi.Run(1, func(c *mpi.Comm) {
		s, _ := core.New(c, cfg)
		s.SetLaminar()
		s.Perturb(0.4, 2, 2, 8)
		s.Advance(2)
		ref = TKEBudget(s)
	})
	pcfg := cfg
	pcfg.PA, pcfg.PB = 2, 2
	mpi.Run(4, func(c *mpi.Comm) {
		s, _ := core.New(c, pcfg)
		s.SetLaminar()
		s.Perturb(0.4, 2, 2, 8)
		s.Advance(2)
		b := TKEBudget(s)
		for i := range ref.Y {
			if math.Abs(b.Production[i]-ref.Production[i]) > 1e-10 ||
				math.Abs(b.Dissipation[i]-ref.Dissipation[i]) > 1e-10 ||
				math.Abs(b.ViscousDiffusion[i]-ref.ViscousDiffusion[i]) > 1e-8 {
				t.Fatalf("budget differs at %d", i)
			}
		}
	})
}

func TestBudgetWrite(t *testing.T) {
	b := Budget{Y: []float64{0}, TKE: []float64{1}, Production: []float64{2},
		Dissipation: []float64{3}, ViscousDiffusion: []float64{4}}
	var sb strings.Builder
	if err := b.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "production") {
		t.Error("missing header")
	}
}
