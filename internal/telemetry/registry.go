package telemetry

import (
	"sync"
	"time"
)

// Registry owns the per-rank collectors of one run and aggregates them
// into the cross-rank summaries the paper's tables report. Construction
// (Rank) takes a lock and may allocate; the recording hot path never
// touches the registry.
type Registry struct {
	mu         sync.Mutex
	collectors []*Collector // index = rank; nil gaps until first use
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Rank returns rank r's collector, creating it on first use. Safe for
// concurrent use; call once per rank at setup time, not per region.
func (r *Registry) Rank(rank int) *Collector {
	if rank < 0 {
		panic("telemetry: negative rank")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.collectors) <= rank {
		r.collectors = append(r.collectors, nil)
	}
	if r.collectors[rank] == nil {
		r.collectors[rank] = NewCollector(rank)
	}
	return r.collectors[rank]
}

// Ranks returns the number of rank slots registered so far.
func (r *Registry) Ranks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.collectors)
}

// Reset zeroes every registered collector (see Collector.Reset).
func (r *Registry) Reset() {
	r.mu.Lock()
	cs := append([]*Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range cs {
		c.Reset()
	}
}

// PhaseStats summarizes one phase across ranks, the shape of a paper-table
// row: per-rank totals reduced to min/mean/max, the load imbalance ratio,
// and latency quantiles of the merged per-region histogram.
type PhaseStats struct {
	Phase string `json:"phase"`
	Calls int64  `json:"calls"`
	// TotalSeconds is the sum of per-rank phase time (rank-seconds).
	TotalSeconds float64 `json:"total_seconds"`
	// Min/Mean/MaxRankSeconds reduce the per-rank totals across ranks.
	MinRankSeconds  float64 `json:"min_rank_seconds"`
	MeanRankSeconds float64 `json:"mean_rank_seconds"`
	MaxRankSeconds  float64 `json:"max_rank_seconds"`
	// Imbalance is max/mean of the per-rank totals (1.0 = perfectly
	// balanced, like the paper's wait-time discussion; 0 when unsampled).
	Imbalance float64 `json:"imbalance"`
	// P50/P99Seconds are quantile bounds over individual region latencies,
	// merged across ranks.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// AllocObjects is the alloc-probe heap-object count (serial-only; see
	// Collector.SetAllocTracking), summed across ranks. Omitted when zero.
	AllocObjects int64 `json:"alloc_objects,omitempty"`
}

// CommStats summarizes one communication channel across ranks.
type CommStats struct {
	Op       string `json:"op"`
	Calls    int64  `json:"calls"`
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
}

// Snapshot is a deterministic cross-rank aggregation: phases and channels
// appear in enum order, zero-activity entries are dropped, and every
// number is an order-independent reduction of atomic counters — the same
// run produces the same snapshot however its workers interleaved.
type Snapshot struct {
	Ranks  int          `json:"ranks"`
	Phases []PhaseStats `json:"phases"`
	Comm   []CommStats  `json:"comm"`
	// Steps and StepSeconds describe recorded whole timesteps; MeanStep*
	// reduce per-rank step-time totals the same way PhaseStats does.
	Steps           int64   `json:"steps,omitempty"`
	MeanStepSeconds float64 `json:"mean_step_seconds,omitempty"`
	MaxStepSeconds  float64 `json:"max_step_seconds,omitempty"`
	Flops           int64   `json:"flops,omitempty"`
}

// Snapshot aggregates the registered collectors. Ranks never registered
// (nil slots) are skipped.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cs := make([]*Collector, 0, len(r.collectors))
	for _, c := range r.collectors {
		if c != nil {
			cs = append(cs, c)
		}
	}
	r.mu.Unlock()
	return aggregate(cs)
}

func aggregate(cs []*Collector) Snapshot {
	snap := Snapshot{Ranks: len(cs)}
	if len(cs) == 0 {
		return snap
	}
	for p := Phase(0); p < NumPhases; p++ {
		var st PhaseStats
		st.Phase = p.String()
		var minS, maxS float64
		merged := &Histogram{}
		for i, c := range cs {
			s := time.Duration(c.phases[p].ns.Load()).Seconds()
			st.Calls += c.phases[p].calls.Load()
			st.AllocObjects += c.phases[p].allocs.Load()
			st.TotalSeconds += s
			if i == 0 || s < minS {
				minS = s
			}
			if i == 0 || s > maxS {
				maxS = s
			}
			merged.Merge(&c.phases[p].hist)
		}
		if st.Calls == 0 {
			continue
		}
		st.MinRankSeconds = minS
		st.MaxRankSeconds = maxS
		st.MeanRankSeconds = st.TotalSeconds / float64(len(cs))
		if st.MeanRankSeconds > 0 {
			st.Imbalance = st.MaxRankSeconds / st.MeanRankSeconds
		}
		st.P50Seconds = time.Duration(merged.Quantile(0.50)).Seconds()
		st.P99Seconds = time.Duration(merged.Quantile(0.99)).Seconds()
		snap.Phases = append(snap.Phases, st)
	}
	for op := CommOp(0); op < NumCommOps; op++ {
		var cst CommStats
		cst.Op = op.String()
		for _, c := range cs {
			calls, msgs, bytes := c.CommCounts(op)
			cst.Calls += calls
			cst.Messages += msgs
			cst.Bytes += bytes
		}
		if cst.Calls == 0 {
			continue
		}
		snap.Comm = append(snap.Comm, cst)
	}
	var stepTot, stepMax float64
	var stepRanks int
	for _, c := range cs {
		snap.Steps += c.Steps()
		snap.Flops += c.Flops()
		if s := c.StepSeconds(); c.Steps() > 0 {
			stepTot += s
			stepRanks++
			if s > stepMax {
				stepMax = s
			}
		}
	}
	if stepRanks > 0 {
		snap.MeanStepSeconds = stepTot / float64(stepRanks)
		snap.MaxStepSeconds = stepMax
	}
	return snap
}

// PhaseSecondsSum returns the sum of mean-rank phase seconds — the
// "instrumented wall clock" a report's phase breakdown accounts for. For
// a serial run this should match the measured step wall clock closely
// (the acceptance bound in the repo is 10%).
func (s *Snapshot) PhaseSecondsSum() float64 {
	var sum float64
	for _, p := range s.Phases {
		sum += p.MeanRankSeconds
	}
	return sum
}
