package telemetry

import (
	"strings"
	"testing"

	"channeldns/internal/schedule"
)

// Tests of the workload structural diff line and the per-direction
// aggregate form of the schedule consistency check.

func TestDiffWorkloadStructural(t *testing.T) {
	workloadLine := func(res *DiffResult) *DiffLine {
		for i := range res.Lines {
			if res.Lines[i].Metric == "workload" {
				return &res.Lines[i]
			}
		}
		return nil
	}

	// Matching workloads pass.
	base, cand := fixtureReport(1), fixtureReport(1)
	base.Config["workload"] = "channel"
	cand.Config["workload"] = "channel"
	res := Diff(base, cand, DiffOptions{})
	if l := workloadLine(res); l == nil || l.Verdict != Pass {
		t.Fatalf("matching workloads: line %+v", l)
	}

	// A mismatch is structural: it fails even in warn-only mode, where
	// numeric regressions are capped at warn.
	cand = fixtureReport(1)
	cand.Config["workload"] = "isotropic"
	res = Diff(base, cand, DiffOptions{WarnOnly: true})
	if res.Verdict != Fail {
		t.Fatalf("workload mismatch in warn-only mode: verdict %v, want fail", res.Verdict)
	}
	if l := workloadLine(res); l == nil || l.Verdict != Fail ||
		!strings.Contains(l.Note, "channel") || !strings.Contains(l.Note, "isotropic") {
		t.Fatalf("workload mismatch line %+v, want fail naming both", l)
	}

	// Reports predating the registry carry no key on either side and emit
	// no workload line at all.
	res = Diff(fixtureReport(1), fixtureReport(1), DiffOptions{})
	if l := workloadLine(res); l != nil {
		t.Fatalf("legacy reports grew a workload line: %+v", l)
	}
}

// aggregateFixture builds a report whose schedule sends two different-sized
// YtoZ ops per execution (the scalar workload's shape: the channel's
// six-field transpose plus a four-field scalar excursion), measured over
// three executions.
func aggregateFixture() *Report {
	r := fixtureReport(1)
	r.Schedule = &schedule.Schedule{
		Name: "timestep", Nx: 16, Ny: 17, Nz: 16, NKx: 8, PA: 2, PB: 2, Ranks: 4,
		Ops: []schedule.Op{
			{Kind: schedule.OpTranspose, Phase: "transpose", Dir: "YtoZ",
				Comm: "A", CommSize: 2, Fields: 6, BytesPerRank: 600, Messages: 1},
			{Kind: schedule.OpTranspose, Phase: "transpose", Dir: "YtoZ",
				Comm: "A", CommSize: 2, Fields: 4, BytesPerRank: 400, Messages: 1},
			{Kind: schedule.OpTranspose, Phase: "transpose", Dir: "ZtoY",
				Comm: "A", CommSize: 2, Fields: 6, BytesPerRank: 600, Messages: 1},
		},
	}
	// 3 executions: YtoZ sees both ops each time, ZtoY one.
	r.Comm = []CommStats{
		{Op: "YtoZ", Calls: 6, Messages: 6, Bytes: 3 * 2 * 1000},
		{Op: "ZtoY", Calls: 3, Messages: 3, Bytes: 3 * 2 * 600},
	}
	r.Flops = 0 // no flop accounting in this fixture
	return r
}

func TestScheduleConsistencyAggregates(t *testing.T) {
	if err := aggregateFixture().CheckScheduleConsistency(); err != nil {
		t.Fatalf("consistent non-uniform schedule rejected: %v", err)
	}

	// Calls not divisible by the per-execution op count: a half-finished
	// direction is an instrumentation bug.
	r := aggregateFixture()
	r.Comm[0].Calls = 7
	if err := r.CheckScheduleConsistency(); err == nil ||
		!strings.Contains(err.Error(), "ops per execution") {
		t.Fatalf("odd call count accepted: %v", err)
	}

	// Byte total off by one op's worth: the aggregate must catch it even
	// though a per-call mean would sit between the two op sizes.
	r = aggregateFixture()
	r.Comm[0].Bytes -= 2 * 400
	if err := r.CheckScheduleConsistency(); err == nil ||
		!strings.Contains(err.Error(), "bytes") {
		t.Fatalf("missing payload accepted: %v", err)
	}

	// Message count mismatch.
	r = aggregateFixture()
	r.Comm[1].Messages = 4
	if err := r.CheckScheduleConsistency(); err == nil ||
		!strings.Contains(err.Error(), "messages") {
		t.Fatalf("message mismatch accepted: %v", err)
	}

	// A comm channel outside the schedule (collectives) is ignored.
	r = aggregateFixture()
	r.Comm = append(r.Comm, CommStats{Op: "allreduce", Calls: 17, Bytes: 999})
	if err := r.CheckScheduleConsistency(); err != nil {
		t.Fatalf("out-of-schedule channel rejected: %v", err)
	}
}
