package telemetry

import (
	"testing"

	"channeldns/internal/schedule"
)

// The phase vocabulary is defined once, in internal/schedule; telemetry
// only aliases it. These assertions pin the re-export so the two packages
// cannot drift apart (a schedule rename must flow through here by
// construction, and the comm channels must keep matching the schedule's
// transpose directions).
func TestTaxonomyMatchesSchedule(t *testing.T) {
	if NumPhases != schedule.NumPhases {
		t.Fatalf("telemetry NumPhases %d != schedule %d", NumPhases, schedule.NumPhases)
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != schedule.PhaseNames[p] {
			t.Errorf("phase %d: %q != schedule name %q", p, p.String(), schedule.PhaseNames[p])
		}
		got, ok := PhaseFromString(schedule.PhaseNames[p])
		if !ok || got != p {
			t.Errorf("PhaseFromString(%q) broken", schedule.PhaseNames[p])
		}
	}
	dirs := map[CommOp]string{
		CommYtoZ: schedule.DirYtoZ, CommZtoY: schedule.DirZtoY,
		CommZtoX: schedule.DirZtoX, CommXtoZ: schedule.DirXtoZ,
		CommCollective: schedule.PhaseCollective.String(),
		CommCheckpoint: schedule.PhaseCheckpoint.String(),
	}
	for op, want := range dirs {
		if op.String() != want {
			t.Errorf("comm op %d: %q != schedule vocabulary %q", op, op.String(), want)
		}
	}
}
