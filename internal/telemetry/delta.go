package telemetry

// Snapshot deltas: the job server's stream layer ships telemetry to many
// concurrent watchers at step cadence. Re-sending the whole aggregated
// Snapshot every few steps wastes most of the bytes on counters that did
// not move (a small grid exercises a handful of phases), so the stream
// carries only what changed since the previous snapshot. Deltas compose:
// applying a sequence of deltas to the base snapshot reconstructs the
// totals, and a watcher that joins late simply starts from the next full
// values it cares about (every delta also carries the current cumulative
// step count, so gaps are detectable).

// PhaseDelta is one phase's movement between two snapshots.
type PhaseDelta struct {
	Phase string `json:"phase"`
	// Calls and Seconds are increments (calls, rank-seconds of TotalSeconds).
	Calls   int64   `json:"calls"`
	Seconds float64 `json:"seconds"`
}

// CommDelta is one communication channel's movement between two snapshots.
type CommDelta struct {
	Op       string `json:"op"`
	Calls    int64  `json:"calls"`
	Messages int64  `json:"messages,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
}

// SnapshotDelta is the movement between two snapshots of the same
// registry. Zero-movement phases and channels are omitted; Steps and
// StepSeconds carry the *cumulative* values of the newer snapshot (cheap,
// and they make each delta self-positioning for late joiners).
type SnapshotDelta struct {
	// Steps is the cumulative recorded step count at the newer snapshot;
	// DSteps the increment since the older one.
	Steps  int64 `json:"steps"`
	DSteps int64 `json:"d_steps,omitempty"`
	// MeanStepSeconds is the newer snapshot's cumulative per-rank mean.
	MeanStepSeconds float64      `json:"mean_step_seconds,omitempty"`
	DFlops          int64        `json:"d_flops,omitempty"`
	Phases          []PhaseDelta `json:"phases,omitempty"`
	Comm            []CommDelta  `json:"comm,omitempty"`
}

// Empty reports whether the delta carries no movement at all (nothing
// worth streaming).
func (d *SnapshotDelta) Empty() bool {
	return d.DSteps == 0 && d.DFlops == 0 && len(d.Phases) == 0 && len(d.Comm) == 0
}

// DeltaSnapshot computes the movement from prev to cur. Both snapshots
// must come from the same registry with prev taken first; counters are
// monotonic, so every increment is non-negative. Entries present only in
// cur (a phase first exercised between the snapshots) delta from zero.
func DeltaSnapshot(prev, cur *Snapshot) SnapshotDelta {
	d := SnapshotDelta{
		Steps:           cur.Steps,
		DSteps:          cur.Steps - prev.Steps,
		MeanStepSeconds: cur.MeanStepSeconds,
		DFlops:          cur.Flops - prev.Flops,
	}
	prevPhases := make(map[string]PhaseStats, len(prev.Phases))
	for _, p := range prev.Phases {
		prevPhases[p.Phase] = p
	}
	for _, p := range cur.Phases {
		pp := prevPhases[p.Phase] // zero value when newly exercised
		if dc := p.Calls - pp.Calls; dc != 0 {
			d.Phases = append(d.Phases, PhaseDelta{
				Phase:   p.Phase,
				Calls:   dc,
				Seconds: p.TotalSeconds - pp.TotalSeconds,
			})
		}
	}
	prevComm := make(map[string]CommStats, len(prev.Comm))
	for _, c := range prev.Comm {
		prevComm[c.Op] = c
	}
	for _, c := range cur.Comm {
		pc := prevComm[c.Op]
		if dc := c.Calls - pc.Calls; dc != 0 {
			d.Comm = append(d.Comm, CommDelta{
				Op:       c.Op,
				Calls:    dc,
				Messages: c.Messages - pc.Messages,
				Bytes:    c.Bytes - pc.Bytes,
			})
		}
	}
	return d
}
