package telemetry

import "fmt"

// Wire-level transport metrics. The TCP transport (internal/mpi) counts
// frames, bytes and payload bytes per peer link, the writer-queue depth
// high-water mark, serialization time and bootstrap dial retries — the
// observability of the wire itself, underneath the payload-level comm
// accounting the collectors keep. The flat dump layout below is the
// contract between the transport (which produces dumps) and this package
// (which aggregates them into the report's wire block); it lives here
// because mpi already imports telemetry, not the other way around.
//
// Layout of one rank's wire dump (all int64):
//
//	word 0:               dial retries during bootstrap
//	words 1+8p .. 8+8p:   peer p's counters — frames out, bytes out,
//	                      payload out, frames in, bytes in, payload in,
//	                      queue high-water, serialize ns
//
// The self slot (p == rank) is all zeros: self-sends never touch the wire.

// WirePeerDumpLen is the number of words per peer in a wire dump.
const WirePeerDumpLen = 8

// Indices of one peer's counters within its dump slot.
const (
	WireFramesOut = iota
	WireBytesOut
	WirePayloadOut
	WireFramesIn
	WireBytesIn
	WirePayloadIn
	WireQueueHighWater
	WireSerializeNs
)

// WireDumpLen returns the fixed length of one rank's wire dump for a
// world of the given size.
func WireDumpLen(world int) int { return 1 + world*WirePeerDumpLen }

// WireRankStats is one rank's wire counters summed over its peer links,
// one row of the report's wire block.
type WireRankStats struct {
	Rank int `json:"rank"`
	// DialRetries counts failed bootstrap dial attempts before the mesh
	// came up (launchers start ranks in arbitrary order, so nonzero values
	// are normal; large ones mark slow starters).
	DialRetries int64 `json:"dial_retries,omitempty"`
	// FramesOut/BytesOut count whole wire frames written toward peers;
	// PayloadOut is the serialized payload portion (bytes minus the fixed
	// per-frame header), the number the schedule IR predicts.
	FramesOut  int64 `json:"frames_out"`
	BytesOut   int64 `json:"bytes_out"`
	PayloadOut int64 `json:"payload_out"`
	// FramesIn/BytesIn/PayloadIn are the receive-side counterparts,
	// counted at frame decode.
	FramesIn  int64 `json:"frames_in"`
	BytesIn   int64 `json:"bytes_in"`
	PayloadIn int64 `json:"payload_in"`
	// QueueHighWater is the deepest any peer's writer queue ever got — a
	// backpressure signature (the eager queue is unbounded; depth is the
	// cost).
	QueueHighWater int64 `json:"queue_high_water,omitempty"`
	// SerializeSeconds is the total time spent encoding payloads into
	// frames on the send path.
	SerializeSeconds float64 `json:"serialize_seconds,omitempty"`
}

// WireSummary is the report's wire block: per-rank transport counters for
// a run carried by a wire transport. Absent from in-process runs.
type WireSummary struct {
	Transport string          `json:"transport"`
	Ranks     []WireRankStats `json:"ranks"`
}

// WireSummaryFromDumps aggregates per-rank wire dumps (concatenated in
// rank order, each WireDumpLen(world) words) into the report block.
func WireSummaryFromDumps(transport string, world int, dumps []int64) (*WireSummary, error) {
	n := WireDumpLen(world)
	if len(dumps) != world*n {
		return nil, fmt.Errorf("telemetry: wire dumps of %d values, want %d (world %d)", len(dumps), world*n, world)
	}
	sum := &WireSummary{Transport: transport, Ranks: make([]WireRankStats, world)}
	for r := 0; r < world; r++ {
		d := dumps[r*n : (r+1)*n]
		row := &sum.Ranks[r]
		row.Rank = r
		row.DialRetries = d[0]
		for p := 0; p < world; p++ {
			pc := d[1+p*WirePeerDumpLen:]
			row.FramesOut += pc[WireFramesOut]
			row.BytesOut += pc[WireBytesOut]
			row.PayloadOut += pc[WirePayloadOut]
			row.FramesIn += pc[WireFramesIn]
			row.BytesIn += pc[WireBytesIn]
			row.PayloadIn += pc[WirePayloadIn]
			if hw := pc[WireQueueHighWater]; hw > row.QueueHighWater {
				row.QueueHighWater = hw
			}
			row.SerializeSeconds += float64(pc[WireSerializeNs]) / 1e9
		}
	}
	return sum, nil
}

// validateWire checks the structural invariants of a report's wire block.
func (r *Report) validateWire() error {
	w := r.Wire
	if w == nil {
		return nil
	}
	if w.Transport == "" {
		return fmt.Errorf("wire: empty transport name")
	}
	prev := -1
	for _, row := range w.Ranks {
		if row.Rank <= prev {
			return fmt.Errorf("wire: ranks not ascending at rank %d", row.Rank)
		}
		prev = row.Rank
		if row.DialRetries < 0 || row.FramesOut < 0 || row.BytesOut < 0 || row.PayloadOut < 0 ||
			row.FramesIn < 0 || row.BytesIn < 0 || row.PayloadIn < 0 ||
			row.QueueHighWater < 0 || row.SerializeSeconds < 0 {
			return fmt.Errorf("wire: rank %d: negative counters", row.Rank)
		}
		if row.PayloadOut > row.BytesOut || row.PayloadIn > row.BytesIn {
			return fmt.Errorf("wire: rank %d: payload exceeds frame bytes", row.Rank)
		}
		if row.FramesOut > 0 && row.BytesOut < row.FramesOut {
			return fmt.Errorf("wire: rank %d: %d frames in %d bytes", row.Rank, row.FramesOut, row.BytesOut)
		}
	}
	return nil
}
