package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// heartbeatDump hand-builds a collector dump with the given step totals
// plus one phase and one comm channel populated, using the same layout
// arithmetic DumpView reads with.
func heartbeatDump(steps, stepNs int64, phase Phase, phaseNs int64, op CommOp, bytes int64) []int64 {
	d := make([]int64, DumpLen())
	d[int(phase)*(3+histBuckets)] = phaseNs
	d[int(phase)*(3+histBuckets)+1] = 1
	base := int(NumPhases)*(3+histBuckets) + int(op)*3
	d[base], d[base+1], d[base+2] = 1, 2, bytes
	tail := int(NumPhases)*(3+histBuckets) + int(NumCommOps)*3
	d[tail+1], d[tail+2] = steps, stepNs
	return d
}

func observe(t *testing.T, tr *WorldTracker, rank int, steps, stepNs, heard int64) {
	t.Helper()
	if err := tr.ObserveDump(rank, heartbeatDump(steps, stepNs, PhaseNonlinear, stepNs/2, CommYtoZ, 1<<20), heard); err != nil {
		t.Fatalf("observe rank %d: %v", rank, err)
	}
}

func TestWorldTrackerRollingAndStatus(t *testing.T) {
	tr := NewWorldTracker(3)
	now := int64(1e15)
	observe(t, tr, 0, 10, 1e9, now)
	observe(t, tr, 0, 20, 2e9, now+5e9) // +10 steps in +1e9 ns → 0.1 s/step
	observe(t, tr, 1, 5, 5e8, now)

	st := tr.Status(now + 6e9)
	if st.World != 3 || len(st.Ranks) != 3 {
		t.Fatalf("status world %d (%d rows)", st.World, len(st.Ranks))
	}
	r0 := st.Ranks[0]
	if !r0.Heard || r0.Steps != 20 || r0.RollingStepSeconds != 0.1 {
		t.Errorf("rank 0 status %+v, want heard, 20 steps, rolling 0.1s", r0)
	}
	if r0.LastHeardSeconds != 1 {
		t.Errorf("rank 0 staleness %g, want 1s", r0.LastHeardSeconds)
	}
	r1 := st.Ranks[1]
	if !r1.Heard || r1.RollingStepSeconds != 0 || r1.LastHeardSeconds != 6 {
		t.Errorf("rank 1 status %+v, want heard, no rolling rate yet, 6s stale", r1)
	}
	if st.Ranks[2].Heard {
		t.Error("rank 2 marked heard without a heartbeat")
	}
	// A single rolling sample cannot be a straggler relative to itself.
	for _, r := range st.Ranks {
		if r.Straggler {
			t.Errorf("rank %d flagged straggler with one rolling sample in the world", r.Rank)
		}
	}
	if got := tr.observedRanks(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("observed ranks %v, want [0 1]", got)
	}
}

func TestWorldTrackerStragglerFlag(t *testing.T) {
	tr := NewWorldTracker(3)
	now := int64(1e15)
	// Rolling step times 0.1s, 0.1s, 0.3s: mean 0.1667s, threshold 0.2s.
	for rank, rolling := range []int64{1e8, 1e8, 3e8} {
		observe(t, tr, rank, 10, 10*rolling, now)
		observe(t, tr, rank, 20, 20*rolling, now+1)
	}
	st := tr.Status(now + 2)
	for rank, want := range []bool{false, false, true} {
		if st.Ranks[rank].Straggler != want {
			t.Errorf("rank %d straggler=%v, want %v", rank, st.Ranks[rank].Straggler, want)
		}
	}
}

func TestWorldTrackerRejectsBadObservations(t *testing.T) {
	tr := NewWorldTracker(2)
	if err := tr.ObserveDump(2, heartbeatDump(1, 1, PhaseNonlinear, 0, CommYtoZ, 0), 1); err == nil {
		t.Error("rank outside the world accepted")
	}
	if err := tr.ObserveDump(0, make([]int64, DumpLen()+1), 1); err == nil {
		t.Error("payload of unexpected shape accepted")
	}
}

func TestWorldTrackerMetricsOutput(t *testing.T) {
	tr := NewWorldTracker(2)
	now := int64(1e15)
	observe(t, tr, 0, 10, 1e9, now)
	observe(t, tr, 0, 20, 2e9, now+1e9)

	// Rank 1 heartbeats with a wire dump appended, as a TCP run's do.
	wire := make([]int64, WireDumpLen(2))
	peer0 := wire[1:]
	peer0[WireFramesOut], peer0[WireBytesOut], peer0[WirePayloadOut] = 7, 900, 753
	peer0[WireFramesIn], peer0[WireBytesIn], peer0[WirePayloadIn] = 6, 800, 674
	payload := append(heartbeatDump(15, 3e9, PhaseNonlinear, 1e9, CommYtoZ, 1<<20), wire...)
	if err := tr.ObserveDump(1, payload, now+1e9); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	tr.WriteMetrics(&sb, now+2e9)
	out := sb.String()
	for _, want := range []string{
		"channeldns_world_size 2",
		`channeldns_rank_steps_total{rank="0"} 20`,
		`channeldns_rank_steps_total{rank="1"} 15`,
		`channeldns_rank_step_seconds_rolling{rank="0"} 0.1`,
		`channeldns_rank_straggler{rank="0"} 0`,
		fmt.Sprintf(`channeldns_rank_phase_seconds_total{rank="1",phase="%s"} 1`, PhaseNonlinear),
		fmt.Sprintf(`channeldns_rank_comm_bytes_total{rank="0",op="%s"} %d`, CommYtoZ, 1<<20),
		`channeldns_rank_wire_frames_out_total{rank="1"} 7`,
		`channeldns_rank_wire_bytes_in_total{rank="1"} 800`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Rank 0 never sent a wire dump; it must not fabricate wire series.
	if strings.Contains(out, `channeldns_rank_wire_frames_out_total{rank="0"}`) {
		t.Error("wire series emitted for a rank that sent no wire dump")
	}
}

func TestWorldHandlers(t *testing.T) {
	tr := NewWorldTracker(2)
	observe(t, tr, 0, 4, 4e8, 1)

	rec := httptest.NewRecorder()
	MetricsHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "channeldns_world_size 2") {
		t.Errorf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	StatusHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status code %d", rec.Code)
	}
	var st WorldStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if st.World != 2 || !st.Ranks[0].Heard || st.Ranks[1].Heard {
		t.Errorf("/status document %+v", st)
	}
}
