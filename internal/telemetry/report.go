package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"

	"channeldns/internal/schedule"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it when a field
// changes meaning; additive changes keep the version.
const SchemaVersion = "channeldns/bench/v1"

// Host describes the machine a report was produced on.
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// Report is the machine-readable run artifact every cmd/bench-* tool
// emits (BENCH_<table>.json): the cross-rank phase breakdown, the
// communication accounting, allocation counters, a config fingerprint and
// the source revision, so a perf trajectory can be reconstructed from
// committed artifacts alone. Field order is fixed by this struct and map
// keys are sorted by encoding/json, so the same report data always
// encodes to the same bytes (Encode performs the deterministic encoding).
type Report struct {
	Schema string `json:"schema"`
	// Table names the paper table (or other experiment) the run
	// reproduces: "table9", "table5", ...
	Table string `json:"table"`
	// GitRev is the source revision the binary was built from ("unknown"
	// outside a stamped build or git checkout).
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
	Host      Host   `json:"host"`
	// Config fingerprints the run: grid extents, process grid, thread
	// count, physics knobs — whatever the tool deems identity-defining.
	Config map[string]string `json:"config"`
	Ranks  int               `json:"ranks"`
	// WallSeconds is the measured wall clock of the instrumented section
	// (for timestep runs: total time in StepOnce).
	WallSeconds float64 `json:"wall_seconds"`
	// PhaseSecondsSum restates the sum of mean-rank phase seconds; for a
	// fully instrumented serial run it matches WallSeconds to within the
	// repo's 10% acceptance bound.
	PhaseSecondsSum float64      `json:"phase_seconds_sum"`
	Steps           int64        `json:"steps,omitempty"`
	Phases          []PhaseStats `json:"phases"`
	Comm            []CommStats  `json:"comm"`
	Flops           int64        `json:"flops,omitempty"`
	// GFlopsSustained = Flops / WallSeconds / 1e9 (the paper's §5.3
	// sustained-rate accounting), when both are known.
	GFlopsSustained float64 `json:"gflops_sustained,omitempty"`
	// AllocsPerStep is the process-wide heap-object count per step measured
	// around the run (serial runs only; see perf.ReadAllocs).
	AllocsPerStep float64 `json:"allocs_per_step,omitempty"`
	// Metrics carries table-specific scalars (speedups, ratios, model
	// values) keyed by stable snake_case names.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Trace carries the critical-path digest of a traced run (absent when
	// tracing was off). Populated by trace.Summarize.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Schedule is the declarative op list of the program the run executed
	// (one RK3 timestep or one Table 5/6 sub-cycle), emitted by the
	// producing tool from the same objects that ran — core.Config.Schedule,
	// pencil.Decomp.CycleSchedule, parfft.Kernel.Schedule. bench-diff
	// -model interprets it under the machine performance model;
	// CheckScheduleConsistency cross-checks its traffic against the
	// measured comm table. Absent from reports of tools without a single
	// underlying program.
	Schedule *schedule.Schedule `json:"schedule,omitempty"`
	// Wire carries the transport-level counters of a run over a wire
	// transport (frames, bytes, queue depths per rank — see WireSummary).
	// Absent from in-process runs, where no wire exists.
	Wire *WireSummary `json:"wire,omitempty"`
}

// TraceSummary is the critical-path digest of a flight-recorder trace:
// per step, which rank's phase work gated completion, and how much slack
// the other ranks had. It lives in the telemetry package (not
// internal/trace) so Report stays free of a trace dependency while trace
// depends on telemetry for the phase vocabulary.
type TraceSummary struct {
	// Events and Dropped count recorded and ring-wrap-overwritten events
	// across all ranks.
	Events  int64 `json:"events"`
	Dropped int64 `json:"dropped,omitempty"`
	// Steps holds one straggler record per step observed in the trace,
	// ascending by step.
	Steps []StragglerStep `json:"steps"`
	// RankSlackSeconds is each rank's total slack over the traced steps:
	// the busy time of the gating rank minus this rank's, summed. The
	// gating ranks' contributions are zero by construction; large values
	// mark ranks that habitually wait (the paper's transpose-imbalance
	// signature).
	RankSlackSeconds []float64 `json:"rank_slack_seconds,omitempty"`
}

// StragglerStep names the critical path of one step: the rank whose phase
// work finished last and the phase that set it apart from the pack.
type StragglerStep struct {
	Step int64 `json:"step"`
	// GatingRank is the rank with the most phase-busy time in this step.
	GatingRank int `json:"gating_rank"`
	// GatingPhase is the phase on which the gating rank lost the most time
	// relative to the cross-rank mean.
	GatingPhase string `json:"gating_phase"`
	// GatingSeconds is the gating rank's busy time in the step.
	GatingSeconds float64 `json:"gating_seconds"`
	// MaxSlackSeconds is the largest per-rank slack in the step (gating
	// busy minus the least-busy rank's) — 0 for a perfectly balanced step.
	MaxSlackSeconds float64 `json:"max_slack_seconds"`
	// ExposedWireSeconds is the transpose wire time the step's ranks
	// actually waited on, summed across ranks: per-peer receive waits inside
	// pipelined exchanges plus the whole window of serial one-shot
	// exchanges.
	ExposedWireSeconds float64 `json:"exposed_wire_seconds,omitempty"`
	// HiddenWireSeconds is the remainder of the pipelined exchange windows:
	// wire time overlapped with pack/unpack and interleaved FFT work rather
	// than waited on. Zero for serial runs by construction.
	HiddenWireSeconds float64 `json:"hidden_wire_seconds,omitempty"`
}

// NewReport assembles a report from a registry snapshot plus the ambient
// build metadata. config may be nil; it is stored as an empty (non-nil)
// map so the artifact always carries the field.
func NewReport(table string, reg *Registry, config map[string]string) *Report {
	snap := reg.Snapshot()
	return NewReportFromSnapshot(table, snap, config)
}

// NewReportFromSnapshot is NewReport for an already-taken snapshot.
func NewReportFromSnapshot(table string, snap Snapshot, config map[string]string) *Report {
	if config == nil {
		config = map[string]string{}
	}
	r := &Report{
		Schema:          SchemaVersion,
		Table:           table,
		GitRev:          GitRev(),
		GoVersion:       runtime.Version(),
		Host:            Host{OS: runtime.GOOS, Arch: runtime.GOARCH, CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)},
		Config:          config,
		Ranks:           snap.Ranks,
		WallSeconds:     snap.MeanStepSeconds,
		PhaseSecondsSum: snap.PhaseSecondsSum(),
		Steps:           snap.Steps,
		Phases:          snap.Phases,
		Comm:            snap.Comm,
		Flops:           snap.Flops,
	}
	if r.WallSeconds > 0 && r.Flops > 0 {
		// Flops is summed across ranks and steps; rate over the mean rank
		// wall clock, divided across ranks (every rank counts the full
		// step's flops in the serial-accounting model).
		r.GFlopsSustained = float64(r.Flops) / r.WallSeconds / 1e9 / float64(max(1, r.Ranks))
	}
	return r
}

// Validate checks the structural invariants the bench-smoke CI target
// (and the committed artifacts) rely on. It returns the first violation.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Table == "" {
		return fmt.Errorf("empty table name")
	}
	if r.GitRev == "" {
		return fmt.Errorf("empty git_rev (use \"unknown\" when unstamped)")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("empty go_version")
	}
	if r.Config == nil {
		return fmt.Errorf("missing config fingerprint")
	}
	if r.Ranks < 0 {
		return fmt.Errorf("negative ranks %d", r.Ranks)
	}
	if r.WallSeconds < 0 || r.PhaseSecondsSum < 0 {
		return fmt.Errorf("negative wall accounting")
	}
	seen := map[string]bool{}
	for _, p := range r.Phases {
		if _, ok := PhaseFromString(p.Phase); !ok {
			return fmt.Errorf("unknown phase %q", p.Phase)
		}
		if seen[p.Phase] {
			return fmt.Errorf("duplicate phase %q", p.Phase)
		}
		seen[p.Phase] = true
		if p.Calls <= 0 {
			return fmt.Errorf("phase %q: %d calls (zero-call phases must be omitted)", p.Phase, p.Calls)
		}
		if p.MinRankSeconds < 0 || p.MinRankSeconds > p.MeanRankSeconds || p.MeanRankSeconds > p.MaxRankSeconds {
			return fmt.Errorf("phase %q: min/mean/max out of order (%g/%g/%g)",
				p.Phase, p.MinRankSeconds, p.MeanRankSeconds, p.MaxRankSeconds)
		}
		if p.TotalSeconds < 0 {
			return fmt.Errorf("phase %q: negative total", p.Phase)
		}
		if p.Imbalance < 0 {
			return fmt.Errorf("phase %q: negative imbalance", p.Phase)
		}
		if p.P50Seconds < 0 || p.P99Seconds < p.P50Seconds {
			return fmt.Errorf("phase %q: quantiles out of order (p50=%g p99=%g)",
				p.Phase, p.P50Seconds, p.P99Seconds)
		}
	}
	seenOp := map[string]bool{}
	for _, cst := range r.Comm {
		if cst.Op == "" || seenOp[cst.Op] {
			return fmt.Errorf("bad or duplicate comm op %q", cst.Op)
		}
		seenOp[cst.Op] = true
		if cst.Calls <= 0 || cst.Messages < 0 || cst.Bytes < 0 {
			return fmt.Errorf("comm %q: bad counts (calls=%d messages=%d bytes=%d)",
				cst.Op, cst.Calls, cst.Messages, cst.Bytes)
		}
	}
	for k, v := range r.Metrics {
		if k == "" {
			return fmt.Errorf("empty metric name")
		}
		if v != v { // NaN poisons downstream JSON tooling
			return fmt.Errorf("metric %q is NaN", k)
		}
	}
	if t := r.Trace; t != nil {
		if t.Events < 0 || t.Dropped < 0 {
			return fmt.Errorf("trace: negative event counts (events=%d dropped=%d)", t.Events, t.Dropped)
		}
		var prev int64 = -1 << 62
		for _, s := range t.Steps {
			if s.Step <= prev {
				return fmt.Errorf("trace: steps not ascending at step %d", s.Step)
			}
			prev = s.Step
			if s.GatingRank < 0 {
				return fmt.Errorf("trace: step %d: negative gating rank", s.Step)
			}
			if _, ok := PhaseFromString(s.GatingPhase); !ok {
				return fmt.Errorf("trace: step %d: unknown gating phase %q", s.Step, s.GatingPhase)
			}
			if s.GatingSeconds < 0 || s.MaxSlackSeconds < 0 {
				return fmt.Errorf("trace: step %d: negative seconds", s.Step)
			}
			if s.ExposedWireSeconds < 0 || s.HiddenWireSeconds < 0 {
				return fmt.Errorf("trace: step %d: negative wire attribution", s.Step)
			}
			if s.MaxSlackSeconds > s.GatingSeconds {
				return fmt.Errorf("trace: step %d: slack %g exceeds gating busy %g",
					s.Step, s.MaxSlackSeconds, s.GatingSeconds)
			}
		}
		for i, v := range t.RankSlackSeconds {
			if v < 0 || v != v {
				return fmt.Errorf("trace: rank %d: bad slack %g", i, v)
			}
		}
	}
	if err := r.validateSchedule(); err != nil {
		return err
	}
	if err := r.validateWire(); err != nil {
		return err
	}
	return nil
}

// scheduleOpKinds is the closed op vocabulary a schedule block may use.
var scheduleOpKinds = map[string]bool{
	schedule.OpTranspose: true, schedule.OpReorder: true, schedule.OpFFT: true,
	schedule.OpSolve: true, schedule.OpCollective: true, schedule.OpOverlap: true,
}

var scheduleDirs = map[string]bool{
	schedule.DirYtoZ: true, schedule.DirZtoY: true,
	schedule.DirZtoX: true, schedule.DirXtoZ: true,
}

// validateSchedule checks the structural invariants of an attached schedule
// block: a non-empty op list, canonical phase names, the closed op-kind and
// direction vocabularies, and sane sizes.
func (r *Report) validateSchedule() error {
	s := r.Schedule
	if s == nil {
		return nil
	}
	if s.Name == "" {
		return fmt.Errorf("schedule: empty name")
	}
	if s.Ranks < 1 || s.PA < 1 || s.PB < 1 || s.PA*s.PB != s.Ranks {
		return fmt.Errorf("schedule: bad process grid %dx%d (ranks=%d)", s.PA, s.PB, s.Ranks)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("schedule: empty op list")
	}
	for i, op := range s.Ops {
		if !scheduleOpKinds[op.Kind] {
			return fmt.Errorf("schedule: op %d: unknown kind %q", i, op.Kind)
		}
		if _, ok := PhaseFromString(op.Phase); !ok {
			return fmt.Errorf("schedule: op %d (%s): unknown phase %q", i, op.Kind, op.Phase)
		}
		if op.BytesPerRank < 0 || op.Flops < 0 || op.Passes < 0 {
			return fmt.Errorf("schedule: op %d (%s): negative size", i, op.Kind)
		}
		if math.IsNaN(op.BytesPerRank) || math.IsNaN(op.Flops) {
			return fmt.Errorf("schedule: op %d (%s): NaN size", i, op.Kind)
		}
		switch op.Kind {
		case schedule.OpTranspose, schedule.OpReorder, schedule.OpOverlap:
			if !scheduleDirs[op.Dir] {
				return fmt.Errorf("schedule: op %d (%s): unknown direction %q", i, op.Kind, op.Dir)
			}
			if op.CommSize < 1 {
				return fmt.Errorf("schedule: op %d (%s %s): comm size %d", i, op.Kind, op.Dir, op.CommSize)
			}
		}
		switch op.Kind {
		case schedule.OpTranspose, schedule.OpOverlap:
			// One message per remote peer per chunk; a one-shot transpose is
			// the single-chunk case (Chunks omitted as 0).
			if want := max(1, op.Chunks) * (op.CommSize - 1); op.Messages != want {
				return fmt.Errorf("schedule: op %d (%s %s): %d messages for comm size %d with %d chunks",
					i, op.Kind, op.Dir, op.Messages, op.CommSize, op.Chunks)
			}
		}
		if op.Kind == schedule.OpOverlap {
			if op.Chunks < 1 {
				return fmt.Errorf("schedule: op %d (overlap %s): pipeline depth %d", i, op.Dir, op.Chunks)
			}
			if _, ok := PhaseFromString(op.FFTPhase); !ok {
				return fmt.Errorf("schedule: op %d (overlap %s): unknown fft phase %q", i, op.Dir, op.FFTPhase)
			}
		}
	}
	return nil
}

// CheckScheduleConsistency cross-checks the schedule block against the
// measured communication table. Each wire transpose moves one packed send
// image plus one unpacked receive image per rank — 2x the schedule op's
// bytes_per_rank — and Messages point-to-point messages, so for every
// direction the schedule declares, one execution of the whole program
// performs all of that direction's ops in order. With opsPerExec schedule
// ops in a direction, moving bytesPerExec payload and msgsPerExec messages
// between them, the measured comm channel must satisfy
//
//	calls    == executions * ops_per_exec    (exactly)
//	bytes    == executions * 2 * bytes_per_exec   (to 1e-6 relative)
//	messages == executions * msgs_per_exec   (exactly)
//
// independent of how many times the program ran. This covers programs
// whose executions of one direction vary in size (the scalar workload
// sends 6 channel fields and 4 scalar-excursion fields through YtoZ each
// substep); for uniform programs it reduces to the per-call invariant.
// Overlap ops count like transposes with messages = chunks *
// (comm_size - 1): the pipelined exchange sends one message per remote
// peer per chunk but moves the same images. When the report carries
// flop accounting driven by the same schedule (timestep runs), the total is
// checked against steps * schedule.TotalFlops to per-rank integer-truncation
// slack. A nil schedule passes: the check gates consistency, not presence.
func (r *Report) CheckScheduleConsistency() error {
	s := r.Schedule
	if s == nil {
		return nil
	}
	type dirShape struct {
		ops   int64   // schedule ops of this direction per execution
		bytes float64 // per-rank payload of one execution, summed over its ops
		msgs  int64   // messages of one execution, summed over its ops
	}
	shapes := map[string]dirShape{}
	for _, op := range s.Ops {
		if op.Kind != schedule.OpTranspose && op.Kind != schedule.OpOverlap {
			continue
		}
		sh := shapes[op.Dir]
		sh.ops++
		sh.bytes += op.BytesPerRank
		sh.msgs += int64(op.Messages)
		shapes[op.Dir] = sh
	}
	for _, c := range r.Comm {
		sh, ok := shapes[c.Op]
		if !ok {
			continue // collectives and channels outside the schedule
		}
		if c.Calls%sh.ops != 0 {
			return fmt.Errorf("schedule: %s: measured %d calls, schedule declares %d ops per execution",
				c.Op, c.Calls, sh.ops)
		}
		execs := c.Calls / sh.ops
		wantBytes := 2 * sh.bytes * float64(execs)
		if diff := math.Abs(float64(c.Bytes) - wantBytes); diff > 1e-6*wantBytes {
			return fmt.Errorf("schedule: %s: measured %d bytes over %d executions, schedule predicts %.0f",
				c.Op, c.Bytes, execs, wantBytes)
		}
		if want := execs * sh.msgs; c.Messages != want {
			return fmt.Errorf("schedule: %s: measured %d messages over %d executions, schedule predicts %d",
				c.Op, c.Messages, execs, want)
		}
	}
	if r.Flops > 0 && r.Steps > 0 && r.Ranks > 0 {
		if tf := s.TotalFlops(); tf > 0 {
			// Steps and Flops are both summed across ranks; each rank credits
			// int64(total/ranks) per step, so the whole-problem total appears
			// once per ranks rank-steps, with up to 1 flop of truncation per
			// credit.
			want := tf * float64(r.Steps) / float64(r.Ranks)
			slack := 1e-6*want + float64(r.Steps)
			if diff := math.Abs(float64(r.Flops) - want); diff > slack {
				return fmt.Errorf("schedule: %d flops over %d rank-steps on %d ranks, schedule predicts %.0f",
					r.Flops, r.Steps, r.Ranks, want)
			}
		}
	}
	return nil
}

// CheckCheckpointIO cross-checks the checkpoint-I/O accounting: every span
// internal/ckpt opens around a shard or manifest transfer credits exactly
// one comm record on the checkpoint channel, so a report that carries the
// checkpoint phase must carry the matching comm channel with equal call
// counts and a positive byte total (and vice versa). Reports of runs that
// never checkpointed carry neither and pass.
func (r *Report) CheckCheckpointIO() error {
	name := schedule.PhaseCheckpoint.String()
	var ph *PhaseStats
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			ph = &r.Phases[i]
		}
	}
	var cm *CommStats
	for i := range r.Comm {
		if r.Comm[i].Op == name {
			cm = &r.Comm[i]
		}
	}
	switch {
	case ph == nil && cm == nil:
		return nil
	case ph == nil:
		return fmt.Errorf("checkpoint: comm channel present without the %s phase", name)
	case cm == nil:
		return fmt.Errorf("checkpoint: %s phase present without its comm channel", name)
	}
	if cm.Bytes <= 0 {
		return fmt.Errorf("checkpoint: %d spans moved %d bytes", ph.Calls, cm.Bytes)
	}
	if cm.Calls != ph.Calls {
		return fmt.Errorf("checkpoint: %d comm records for %d spans (want 1:1)", cm.Calls, ph.Calls)
	}
	return nil
}

// ValidateJSON parses raw as a Report and validates it.
func ValidateJSON(raw []byte) (*Report, error) {
	var r Report
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Encode writes the canonical (deterministic, indented) JSON form.
func (r *Report) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile validates the report and writes its canonical encoding,
// creating parent directories as needed.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("telemetry: refusing to write invalid report %s: %w", path, err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GitRev returns the source revision: the build-info VCS stamp when the
// binary carries one, else the checked-out HEAD found by walking up from
// the working directory, else "unknown". `go run` does not stamp VCS
// info, which is why the .git fallback exists.
func GitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "unknown"
	}
	for {
		if rev := gitHead(filepath.Join(dir, ".git")); rev != "" {
			return rev
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "unknown"
		}
		dir = parent
	}
}

// gitHead resolves HEAD in a .git directory without invoking git.
func gitHead(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	s := strings.TrimSpace(string(head))
	if !strings.HasPrefix(s, "ref: ") {
		return s // detached HEAD: the hash itself
	}
	ref := strings.TrimPrefix(s, "ref: ")
	if b, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(b))
	}
	// Packed refs fallback.
	if b, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasSuffix(line, " "+ref) {
				return strings.Fields(line)[0]
			}
		}
	}
	return ""
}
