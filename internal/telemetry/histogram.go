package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is an HDR-style log-linear latency histogram: values (in
// nanoseconds) land in one of a fixed set of buckets laid out as 8 linear
// sub-buckets per power of two, giving a worst-case relative error of
// 12.5% across the full non-negative int64 range. The bucket array is
// preallocated inside the struct and recorded with atomic adds, so
// Record is safe for concurrent use and never allocates — the property
// the steady-state allocation budget depends on.
//
// Bucket counts are order-independent, so two histograms fed the same
// multiset of samples are identical regardless of interleaving; Merge and
// the quantile queries are therefore deterministic too.

// histSubBits fixes the sub-bucket resolution: 2^histSubBits linear
// sub-buckets per power-of-two major bucket.
const histSubBits = 3

// histSub is the sub-bucket count per major bucket.
const histSub = 1 << histSubBits

// histBuckets spans the full non-negative int64 range: values below
// histSub get exact buckets, and each of the remaining (63 - histSubBits)
// magnitudes contributes histSub sub-buckets.
const histBuckets = (64 - histSubBits) * histSub

// Histogram's zero value is an empty histogram ready for use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0; the top bucket absorbs any overflow (values with the highest
// magnitude bit set land there by construction).
func bucketOf(v int64) int {
	if v < 0 {
		return 0
	}
	if v < histSub {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - histSubBits
	idx := (shift+1)*histSub + int((uint64(v)>>uint(shift))&(histSub-1))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of a bucket, the value
// quantile queries report for samples in that bucket.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	sub := idx % histSub
	lower := int64(histSub+sub) << uint(shift)
	return lower + (int64(1) << uint(shift)) - 1
}

// Record adds one sample. It is lock-free and allocation-free.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded samples, with the histogram's relative resolution. An empty
// histogram returns 0. q <= 0 returns (a bound on) the minimum sample;
// q >= 1 the maximum.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the sample to report, 1-based, ceiling; q=0 -> first sample.
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Max returns an upper bound on the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 { return h.Quantile(1) }

// Merge adds other's counts into h. Safe against concurrent Record on
// either side; the merged counts are the element-wise sums.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(other.total.Load())
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := 0; i < histBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
}
